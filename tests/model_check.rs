//! Exhaustive small-network model checking.
//!
//! Property tests sample the schedule space; here we *enumerate* it for a
//! small network: every (node × crash-round × delivery-filter) single-crash
//! schedule, plus a dense sample of two-crash schedules, against both
//! protocols. Safety (Definitions 1–2) must hold in every single run.

use ftc::prelude::*;
use ftc::sim::adversary::DeliveryFilter;

const N: u32 = 32;
const ALPHA: f64 = 0.8;

fn filters() -> Vec<DeliveryFilter> {
    vec![
        DeliveryFilter::DropAll,
        DeliveryFilter::KeepFirst(1),
        DeliveryFilter::DeliverAll,
    ]
}

#[test]
fn exhaustive_single_crash_agreement_safety() {
    let p = Params::new(N, ALPHA).expect("valid");
    let mut runs = 0u32;
    for node in 0..N {
        for round in 0..8u32 {
            for filter in filters() {
                let plan = FaultPlan::new().crash(NodeId(node), round, filter);
                let mut adv = ScriptedCrash::new(plan);
                let cfg = SimConfig::new(N)
                    .seed(u64::from(node) * 100 + u64::from(round))
                    .max_rounds(p.agreement_round_budget());
                let r = run(
                    &cfg,
                    |id| AgreeNode::new(p.clone(), id.0 % 2 == 0),
                    &mut adv,
                );
                let o = AgreeOutcome::evaluate(&r);
                assert!(
                    o.consistent,
                    "split under crash(node {node}, round {round}): {:?}",
                    o.decisions
                );
                if o.agreed_value.is_some() {
                    assert!(o.valid, "invalid value under crash({node},{round})");
                }
                runs += 1;
            }
        }
    }
    assert_eq!(runs, N * 8 * 3);
}

#[test]
fn exhaustive_single_crash_le_uniqueness() {
    let p = Params::new(N, ALPHA).expect("valid");
    for node in 0..N {
        for round in (0..24u32).step_by(3) {
            let plan = FaultPlan::new().crash(NodeId(node), round, DeliveryFilter::KeepFirst(1));
            let mut adv = ScriptedCrash::new(plan);
            let cfg = SimConfig::new(N)
                .seed(u64::from(node) ^ (u64::from(round) << 8))
                .max_rounds(p.le_round_budget());
            let r = run(&cfg, |_| LeNode::new(p.clone()), &mut adv);
            let elected = r
                .surviving_states()
                .filter(|(_, s)| s.status() == LeStatus::Elected)
                .count();
            assert!(
                elected <= 1,
                "{elected} alive leaders under crash(node {node}, round {round})"
            );
        }
    }
}

#[test]
fn dense_two_crash_agreement_safety() {
    let p = Params::new(N, ALPHA).expect("valid");
    // All node pairs, staggered rounds, the nastiest filter.
    for a in 0..N {
        for b in (a + 1..N).step_by(5) {
            let plan = FaultPlan::new()
                .crash(NodeId(a), 1, DeliveryFilter::KeepFirst(1))
                .crash(NodeId(b), 3, DeliveryFilter::KeepFirst(1));
            let mut adv = ScriptedCrash::new(plan);
            let cfg = SimConfig::new(N)
                .seed(u64::from(a) << 16 | u64::from(b))
                .max_rounds(p.agreement_round_budget());
            let r = run(
                &cfg,
                |id| AgreeNode::new(p.clone(), id.0 % 4 == 0),
                &mut adv,
            );
            let o = AgreeOutcome::evaluate(&r);
            assert!(
                o.consistent,
                "split under crashes({a},{b}): {:?}",
                o.decisions
            );
        }
    }
}
