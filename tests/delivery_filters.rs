//! `DeliveryFilter` edge cases: the sim engine, the `ftc-net` channel
//! runtime, and the `ftc-mesh` socket runtime must agree on *exactly
//! which frames land* when a node crashes mid-round — including the degenerate filters (deliver nothing, filter
//! covering every port, probabilistic partial delivery).
//!
//! The per-message ground truth is the execution trace: one event per
//! send, flagged with whether the crash filter let it through. Equality of
//! full traces across substrates is a strictly stronger check than the
//! metric equality `tests/net_equivalence.rs` asserts.

use ftc::prelude::*;

const N: u32 = 16;
const SEED: u64 = 2026;

fn traced_cfg(params: &Params, seed: u64) -> SimConfig {
    SimConfig::new(N)
        .seed(seed)
        .max_rounds(params.le_round_budget())
        .record_trace(true)
}

/// Runs the LE protocol under `plan` on the engine, the channel runtime,
/// and the multiplexed mesh runtime, returning all three results.
fn run_all(
    plan: &FaultPlan,
    seed: u64,
) -> (RunResult<LeNode>, RunResult<LeNode>, RunResult<LeNode>) {
    let params = Params::new(N, 0.5).unwrap();
    let cfg = traced_cfg(&params, seed);
    let mut adv = ScriptedCrash::new(plan.clone());
    let engine = run(&cfg, |_| LeNode::new(params.clone()), &mut adv);
    let mut adv = ScriptedCrash::new(plan.clone());
    let channel = run_over_channel(&cfg, 3, |_| LeNode::new(params.clone()), &mut adv).run;
    let mut adv = ScriptedCrash::new(plan.clone());
    let mesh = run_over_mesh(&cfg, 3, |_| LeNode::new(params.clone()), &mut adv)
        .expect("mesh fabric")
        .run;
    (engine, channel, mesh)
}

/// Asserts the two substrates agree frame-for-frame: same sends, same
/// delivery verdicts, in the same order — plus identical accounting.
fn assert_frames_agree(engine: &RunResult<LeNode>, channel: &RunResult<LeNode>) {
    let et = engine.trace.as_ref().expect("engine trace");
    let ct = channel.trace.as_ref().expect("channel trace");
    assert_eq!(et.events(), ct.events(), "frame-level divergence");
    assert_eq!(engine.metrics.msgs_sent, channel.metrics.msgs_sent);
    assert_eq!(
        engine.metrics.msgs_delivered,
        channel.metrics.msgs_delivered
    );
    assert_eq!(engine.metrics.crashes, channel.metrics.crashes);
}

/// Frames the crashed node sent in its crash round, split into
/// (delivered, dropped) destination lists.
fn crash_round_frames(r: &RunResult<LeNode>, node: NodeId, round: Round) -> (Vec<u32>, Vec<u32>) {
    let trace = r.trace.as_ref().unwrap();
    let mut delivered = Vec::new();
    let mut dropped = Vec::new();
    for ev in trace.round_events(round).filter(|e| e.src == node) {
        if ev.delivered {
            delivered.push(ev.dst.0);
        } else {
            dropped.push(ev.dst.0);
        }
    }
    (delivered, dropped)
}

#[test]
fn empty_filters_deliver_no_crash_round_frames() {
    // KeepFirst(0) and an empty KeepToDestinations are both "crash before
    // anything escapes": every crash-round frame must be dropped, on both
    // substrates, identically.
    for filter in [
        DeliveryFilter::KeepFirst(0),
        DeliveryFilter::KeepToDestinations(Vec::new()),
    ] {
        let plan = FaultPlan::new().crash(NodeId(1), 0, filter.clone());
        let (engine, channel, mesh) = run_all(&plan, SEED);
        assert_frames_agree(&engine, &channel);
        assert_frames_agree(&engine, &mesh);
        for r in [&engine, &channel, &mesh] {
            let (delivered, _) = crash_round_frames(r, NodeId(1), 0);
            assert!(
                delivered.is_empty(),
                "{filter:?} leaked frames to {delivered:?}"
            );
            // A crashed node never produces frames after its crash round.
            let trace = r.trace.as_ref().unwrap();
            assert!(
                trace
                    .events()
                    .iter()
                    .all(|e| e.src != NodeId(1) || e.round == 0),
                "crashed node sent after its crash round"
            );
            assert_eq!(r.crashed_at[1], Some(0));
        }
    }
}

#[test]
fn filter_covering_all_ports_delivers_everything_then_silence() {
    // A KeepToDestinations filter listing every node cannot drop anything:
    // the crash round behaves like DeliverAll, and the node is silent
    // afterwards.
    let everyone: Vec<NodeId> = (0..N).map(NodeId).collect();
    let plan = FaultPlan::new().crash(NodeId(2), 1, DeliveryFilter::KeepToDestinations(everyone));
    let all = FaultPlan::new().crash(NodeId(2), 1, DeliveryFilter::DeliverAll);
    let (engine, channel, mesh) = run_all(&plan, SEED);
    assert_frames_agree(&engine, &channel);
    assert_frames_agree(&engine, &mesh);
    let (reference, _, _) = run_all(&all, SEED);
    for r in [&engine, &channel, &mesh] {
        let (delivered, dropped) = crash_round_frames(r, NodeId(2), 1);
        assert!(dropped.is_empty(), "all-ports filter dropped {dropped:?}");
        let (want, _) = crash_round_frames(&reference, NodeId(2), 1);
        assert_eq!(delivered, want, "all-ports filter != DeliverAll");
    }
}

#[test]
fn partial_delivery_mid_round_is_bit_identical_across_substrates() {
    // DeliverEachWithProbability tears the node down mid-round: some
    // frames land, some don't, decided by the engine's filter stream. The
    // channel runtime must reproduce the exact same delivered/dropped
    // split — this is the PR-3 bit-equivalence guarantee at its sharpest.
    for seed in [SEED, SEED + 1, SEED + 2] {
        let plan = FaultPlan::new()
            .crash(
                NodeId(3),
                0,
                DeliveryFilter::DeliverEachWithProbability(0.5),
            )
            .crash(NodeId(7), 1, DeliveryFilter::KeepFirst(1));
        let (engine, channel, mesh) = run_all(&plan, seed);
        assert_frames_agree(&engine, &channel);
        assert_frames_agree(&engine, &mesh);
        // KeepFirst(1) keeps at most one frame.
        for r in [&engine, &channel, &mesh] {
            let (delivered, _) = crash_round_frames(r, NodeId(7), 1);
            assert!(delivered.len() <= 1, "KeepFirst(1) kept {delivered:?}");
        }
        // Every delivered frame corresponds to a send: delivered ⊆ sent.
        let trace = engine.trace.as_ref().unwrap();
        let sends = trace.round_events(0).filter(|e| e.src == NodeId(3)).count();
        let landed = trace
            .round_events(0)
            .filter(|e| e.src == NodeId(3) && e.delivered)
            .count();
        assert!(landed <= sends);
    }
}

#[test]
fn delivery_filter_json_round_trips_every_variant() {
    // The artifact pipeline serialises filters; spot-check every variant
    // (including the edge-case shapes above) through the JSON codec.
    let filters = [
        DeliveryFilter::DeliverAll,
        DeliveryFilter::DropAll,
        DeliveryFilter::KeepFirst(0),
        DeliveryFilter::KeepFirst(3),
        DeliveryFilter::DeliverEachWithProbability(0.5),
        DeliveryFilter::KeepToDestinations(Vec::new()),
        DeliveryFilter::KeepToDestinations((0..N).map(NodeId).collect()),
    ];
    for f in filters {
        let json = f.to_json().render();
        let back = DeliveryFilter::from_json(&Json::parse(&json).unwrap()).unwrap();
        assert_eq!(back, f, "round-trip changed {json}");
    }
}
