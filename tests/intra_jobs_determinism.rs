//! Intra-trial sharding's central contract: `run_sharded` is
//! **bit-identical at any worker count** — splitting one trial's nodes
//! across threads must never leak into the science. The mirror of
//! `par_runner_determinism.rs` one level down: that suite pins
//! trial-level fan-out, this one pins node-level fan-out inside a
//! single trial.
//!
//! Sharding only engages above the engine's serial-fallback threshold
//! (1024 agenda entries), so every network here has n ≥ 1024 — smaller
//! cases would pass vacuously by taking the serial path at every
//! worker count.

use ftc::prelude::*;
use ftc::sim::engine::run_sharded;
use ftc::sim::perm::stream_seed;

/// Full comparable payload of one run: metrics (message/bit/round
/// breakdowns), the crash schedule, per-node terminal states, and the
/// event trace when recorded.
fn le_payload(cfg: &SimConfig, intra_jobs: usize) -> (Metrics, Vec<Option<Round>>, Vec<String>) {
    let p = Params::new(cfg.n, 0.5).expect("valid");
    let mut adv = RandomCrash::new(p.max_faults(), 30);
    let r = run_sharded(cfg, |_| LeNode::new(p.clone()), &mut adv, intra_jobs);
    let states = r
        .states
        .iter()
        .map(|s| format!("{:?}", s.status()))
        .collect();
    (r.metrics, r.crashed_at, states)
}

#[test]
fn le_run_is_intra_jobs_invariant() {
    let p = Params::new(2048, 0.5).expect("valid");
    let cfg = SimConfig::new(2048)
        .seed(0x5A4D)
        .max_rounds(p.le_round_budget());
    let reference = le_payload(&cfg, 1);
    for jobs in [2usize, 8] {
        assert_eq!(
            le_payload(&cfg, jobs),
            reference,
            "intra_jobs={jobs}: sharded run diverges from serial"
        );
    }
}

#[test]
fn traces_are_intra_jobs_invariant() {
    // The trace pins per-event order, not just totals: one send recorded
    // from a different shard interleaving would flip the comparison.
    let p = Params::new(1200, 0.5).expect("valid");
    let cfg = SimConfig::new(1200)
        .seed(77)
        .max_rounds(p.le_round_budget())
        .record_trace(true);
    let run_of = |jobs: usize| {
        let mut adv = EagerCrash::new(p.max_faults());
        let r = run_sharded(&cfg, |_| LeNode::new(p.clone()), &mut adv, jobs);
        (r.metrics, r.trace.expect("trace recorded"))
    };
    let (ref_metrics, ref_trace) = run_of(1);
    for jobs in [2usize, 8] {
        let (m, t) = run_of(jobs);
        assert_eq!(m, ref_metrics, "intra_jobs={jobs}");
        assert_eq!(
            t.events().len(),
            ref_trace.events().len(),
            "intra_jobs={jobs}: trace length diverges"
        );
        assert_eq!(
            format!("{:?}", t.events()),
            format!("{:?}", ref_trace.events()),
            "intra_jobs={jobs}: trace events diverge"
        );
    }
}

#[test]
fn agreement_with_edge_failures_is_intra_jobs_invariant() {
    // Edge fates are sampled lazily per touched edge; a shard probing
    // edges in a different order must still see identical fates, and
    // the delivery accounting must merge identically.
    let p = Params::new(1536, 0.5).expect("valid");
    let cfg = SimConfig::new(1536)
        .seed(0xA6EE)
        .max_rounds(p.agreement_round_budget())
        .edge_failure_prob(0.2);
    let run_of = |jobs: usize| {
        let mut adv = RandomCrash::new(p.max_faults(), 20);
        let r = run_sharded(
            &cfg,
            |id| AgreeNode::new(p.clone(), id.0 % 3 != 0),
            &mut adv,
            jobs,
        );
        let decisions: Vec<_> = r
            .states
            .iter()
            .map(|s| format!("{:?}", s.status()))
            .collect();
        (r.metrics, r.crashed_at, decisions)
    };
    let reference = run_of(1);
    for jobs in [2usize, 8] {
        assert_eq!(run_of(jobs), reference, "intra_jobs={jobs}");
    }
}

#[test]
fn oversubscribed_and_degenerate_worker_counts_are_safe() {
    // More workers than a round's agenda, and absurd counts, still land
    // on the identical result (excess shards are simply empty).
    let p = Params::new(1024, 0.5).expect("valid");
    let cfg = SimConfig::new(1024).seed(3).max_rounds(p.le_round_budget());
    let reference = le_payload(&cfg, 1);
    for jobs in [3usize, 64, 1025] {
        assert_eq!(le_payload(&cfg, jobs), reference, "intra_jobs={jobs}");
    }
}

/// Randomised configs: send caps, CONGEST budgets, and varying sizes all
/// preserve the invariant. Cases derive from a fixed base seed so a
/// failure reproduces from its printed case index.
#[test]
fn determinism_holds_across_random_configs() {
    use rand::prelude::*;
    use rand::rngs::SmallRng;
    const CASES: u64 = 4;
    for case in 0..CASES {
        let mut gen = SmallRng::seed_from_u64(stream_seed(0x017A_00B5, case));
        let n = gen.random_range(1024..1800u32);
        let mut cfg = SimConfig::new(n)
            .seed(gen.random())
            .max_rounds(gen.random_range(5..60u32));
        if gen.random_bool(0.5) {
            cfg = cfg.send_cap(gen.random_range(1..32u32));
        }
        if gen.random_bool(0.4) {
            cfg = cfg.edge_failure_prob(gen.random_range(0.0..0.4f64));
        }
        let p = Params::new(n, 0.5).expect("valid");
        let horizon = gen.random_range(1..30u32);
        let run_of = |jobs: usize| {
            let mut adv = RandomCrash::new(p.max_faults(), horizon);
            let r = run_sharded(&cfg, |_| LeNode::new(p.clone()), &mut adv, jobs);
            (r.metrics, r.crashed_at)
        };
        let reference = run_of(1);
        for jobs in [2usize, 8] {
            assert_eq!(run_of(jobs), reference, "case {case}, intra_jobs={jobs}");
        }
    }
}
