//! The parallel runner's central contract: per-seed results are
//! **bit-identical at any thread count** — worker scheduling must never
//! leak into the science.
//!
//! Every test compares full [`Metrics`] structures (message counts, bit
//! counts, per-round breakdowns, crash schedules), not just summaries: a
//! single message delivered in a different round would fail the comparison.

use ftc::prelude::*;
use ftc::sim::perm::stream_seed;
use ftc::sim::runner::{ParRunner, TrialPlan};
use rand::prelude::*;

/// Runs one leader-election trial and returns its complete metrics plus
/// the outcome — a pure function of `(cfg, seed)`.
fn le_trial(cfg: &SimConfig) -> (bool, Metrics) {
    let p = Params::new(cfg.n, 0.5).expect("valid");
    let mut adv = RandomCrash::new(p.max_faults(), 30);
    let r = run(cfg, |_| LeNode::new(p.clone()), &mut adv);
    (LeOutcome::evaluate(&r).success, r.metrics)
}

/// Sequential reference: the same trials run one after another on the
/// calling thread, seeds derived exactly as the runner derives them.
fn sequential_reference(cfg: &SimConfig, trials: u64) -> Vec<(bool, Metrics)> {
    (0..trials)
        .map(|t| {
            let mut c = cfg.clone();
            c.seed = stream_seed(cfg.seed, t.wrapping_add(1));
            le_trial(&c)
        })
        .collect()
}

#[test]
fn par_runner_matches_sequential_at_every_thread_count() {
    let cfg = SimConfig::new(128).seed(0xDE7).max_rounds(200);
    let trials = 12u64;
    let reference = sequential_reference(&cfg, trials);

    for jobs in [1usize, 2, 8] {
        let batch = ParRunner::new(TrialPlan::new(cfg.seed, trials).jobs(jobs)).run(|_, seed| {
            let mut c = cfg.clone();
            c.seed = seed;
            le_trial(&c)
        });
        assert_eq!(batch.len() as u64, trials);
        for (t, outcome) in batch.outcomes.iter().enumerate() {
            assert_eq!(
                outcome.value, reference[t],
                "jobs={jobs}, trial {t}: parallel metrics diverge from sequential"
            );
        }
    }
}

#[test]
fn run_trials_is_thread_count_invariant_for_agreement() {
    let p = Params::new(96, 0.5).expect("valid");
    let cfg = SimConfig::new(96)
        .seed(77)
        .max_rounds(p.agreement_round_budget());
    let job = |c: &SimConfig| {
        let mut adv = EagerCrash::new(p.max_faults());
        let r = run(c, |id| AgreeNode::new(p.clone(), id.0 % 3 != 0), &mut adv);
        (AgreeOutcome::evaluate(&r).success, r.metrics)
    };
    let seq: Vec<_> = run_trials_jobs(&cfg, 10, 1, job)
        .into_iter()
        .map(|t| (t.trial, t.seed, t.value))
        .collect();
    for jobs in [2usize, 8] {
        let par: Vec<_> = run_trials_jobs(&cfg, 10, jobs, job)
            .into_iter()
            .map(|t| (t.trial, t.seed, t.value))
            .collect();
        assert_eq!(seq, par, "jobs={jobs}");
    }
}

/// Property test: random `SimConfig`s (size, seed, round budget, CONGEST
/// bits, send caps, edge failures) all preserve the invariant. Cases
/// derive from a fixed base seed so a failure is reproducible from its
/// printed case index.
#[test]
fn determinism_holds_across_random_configs() {
    const CASES: u64 = 6;
    for case in 0..CASES {
        let mut gen = SmallRng::seed_from_u64(stream_seed(0x00C0_FFEE, case));
        // Params needs alpha >= log2^2(n)/n, so n floors at 128 for 0.5.
        let n = gen.random_range(128..256u32);
        let mut cfg = SimConfig::new(n)
            .seed(gen.random())
            .max_rounds(gen.random_range(5..120u32));
        if gen.random_bool(0.5) {
            cfg = cfg.send_cap(gen.random_range(1..32u32));
        }
        if gen.random_bool(0.3) {
            cfg = cfg.edge_failure_prob(gen.random_range(0.0..0.4f64));
        }
        let p = Params::new(n, 0.5).expect("valid");
        let horizon = gen.random_range(1..40u32);
        let job = move |c: &SimConfig| {
            let mut adv = RandomCrash::new(p.max_faults(), horizon);
            run(c, |_| LeNode::new(p.clone()), &mut adv).metrics
        };
        let trials = gen.random_range(1..8u64);
        let seq = run_trials_jobs(&cfg, trials, 1, &job);
        let par = run_trials_jobs(&cfg, trials, 4, &job);
        assert_eq!(seq.len(), par.len(), "case {case}");
        for (a, b) in seq.iter().zip(par.iter()) {
            assert_eq!(a.trial, b.trial, "case {case}");
            assert_eq!(a.seed, b.seed, "case {case}");
            assert_eq!(a.value, b.value, "case {case}: metrics diverge");
        }
    }
}

/// Aggregates built from parallel batches equal aggregates built
/// sequentially — the merge path introduces no order dependence.
#[test]
fn aggregates_are_thread_count_invariant() {
    let p = Params::new(128, 0.5).expect("valid");
    let cfg = SimConfig::new(128)
        .seed(5)
        .max_rounds(p.le_round_budget())
        .congest_bits(64);
    let job = |c: &SimConfig| {
        let mut adv = EagerCrash::new(p.max_faults());
        let r = run(c, |_| LeNode::new(p.clone()), &mut adv);
        (r.metrics, r.congest_violations)
    };
    let agg_of = |jobs: usize| {
        let out = run_trials_jobs(&cfg, 16, jobs, job);
        MetricsAggregate::collect(out.iter().map(|t| (&t.value.0, t.value.1)))
    };
    let seq = agg_of(1);
    for jobs in [2usize, 8] {
        assert_eq!(seq, agg_of(jobs), "jobs={jobs}");
    }
    assert_eq!(seq.trials, 16);
    assert!(seq.msgs_sent.mean().unwrap() > 0.0);
}
