//! Cross-crate tests: trace analysis on real protocol executions, CONGEST
//! model compliance, and KT0 enforcement.

use ftc::prelude::*;
use ftc::sim::payload::Payload;

#[test]
fn congest_compliance_of_both_protocols() {
    // Every message fits in O(log n) bits and no edge carries more than a
    // few messages per round.
    for &n in &[256u32, 1024] {
        let p = Params::new(n, 0.5).expect("valid");
        let budget_bits = 32 * 4 + 16; // 4 log2(n) + slack for tags

        let cfg = SimConfig::new(n)
            .seed(1)
            .max_rounds(p.le_round_budget())
            .congest_bits(3 * budget_bits);
        let mut adv = RandomCrash::new(p.max_faults(), 30);
        let r = run(&cfg, |_| LeNode::new(p.clone()), &mut adv);
        assert_eq!(
            r.congest_violations, 0,
            "LE exceeded the CONGEST budget at n={n}: max edge bits {}",
            r.metrics.max_edge_bits_per_round
        );

        let cfg = SimConfig::new(n)
            .seed(1)
            .max_rounds(p.agreement_round_budget())
            .congest_bits(budget_bits);
        let mut adv = RandomCrash::new(p.max_faults(), 10);
        let r = run(
            &cfg,
            |id| AgreeNode::new(p.clone(), id.0 % 2 == 0),
            &mut adv,
        );
        assert_eq!(
            r.congest_violations, 0,
            "agreement exceeded CONGEST at n={n}"
        );
    }
}

#[test]
fn message_sizes_are_logarithmic() {
    let le_msgs = [
        LeMsg::Register { rank: Rank(42) },
        LeMsg::Propose {
            id: Rank(1),
            value: Rank(2),
        },
        LeMsg::Echo {
            value: Rank(9),
            claimed: false,
        },
    ];
    for m in &le_msgs {
        assert!(m.size_bits() <= 100, "{m:?}");
    }
    assert!(AgreeMsg::Zero.size_bits() <= 2);
}

#[test]
fn agreement_bits_equal_two_per_message() {
    // Theorem 5.1 counts *bits*; the implementation sends 2-bit messages,
    // so bits == 2 × messages exactly.
    let p = Params::new(512, 1.0).expect("valid");
    let cfg = SimConfig::new(512)
        .seed(2)
        .max_rounds(p.agreement_round_budget());
    let r = run(
        &cfg,
        |id| AgreeNode::new(p.clone(), id.0 % 2 == 0),
        &mut NoFaults,
    );
    assert_eq!(r.metrics.bits_sent, 2 * r.metrics.msgs_sent);
}

#[test]
fn influence_analysis_of_a_real_le_run() {
    let p = Params::new(256, 1.0).expect("valid");
    let cfg = SimConfig::new(256)
        .seed(3)
        .max_rounds(p.le_round_budget())
        .record_trace(true);
    let r = run(&cfg, |_| LeNode::new(p.clone()), &mut NoFaults);
    let trace = r.trace.as_ref().expect("trace recorded");
    let a = InfluenceAnalysis::full(trace);

    // Initiators of the leader-election protocol are exactly the
    // candidates (only they send spontaneously in round 0).
    let candidates: Vec<NodeId> = r
        .all_states()
        .filter(|(_, s)| s.is_candidate())
        .map(|(id, _)| id)
        .collect();
    assert_eq!(a.initiator_count(), candidates.len());
    for c in &candidates {
        assert!(a.initiators.contains(c), "candidate {c} not an initiator");
    }

    // At full message budget the clouds must merge (that is *why* the
    // protocol agrees): event N must fail.
    assert!(!a.event_n(), "clouds disjoint despite full communication");

    // Every node that ever received a message belongs to some cloud.
    for ev in trace.events().iter().filter(|e| e.delivered) {
        assert!(
            a.cloud_of[ev.dst.index()].is_some(),
            "node {} received a message but belongs to no cloud",
            ev.dst
        );
    }
}

#[test]
fn starved_le_run_exhibits_disjoint_deciding_clouds() {
    // The lower-bound witness on a real execution: starve LE with a
    // send cap of 1 and find ≥ 2 initiators whose clouds stayed disjoint.
    let p = Params::new(1024, 0.5).expect("valid");
    let mut found_split = false;
    for seed in 0..10 {
        let cfg = SimConfig::new(1024)
            .seed(seed)
            .max_rounds(p.le_round_budget())
            .send_cap(1)
            .record_trace(true);
        let mut adv = EagerCrash::new(p.max_faults());
        let r = run(&cfg, |_| LeNode::new(p.clone()), &mut adv);
        let a = InfluenceAnalysis::full(r.trace.as_ref().expect("trace"));
        if a.event_n() && a.initiator_count() >= 2 {
            found_split = true;
            break;
        }
    }
    assert!(
        found_split,
        "no disjoint-cloud execution in 10 starved runs"
    );
}

#[test]
fn kt0_protocols_cannot_read_neighbour_identities() {
    struct Cheater;
    impl Protocol for Cheater {
        type Msg = ();
        fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
            // Illegal in KT0: asking who is behind a port.
            let _ = ctx.peer_of(Port(0));
        }
        fn on_round(&mut self, _: &mut Ctx<'_, ()>, _: &[Incoming<()>]) {}
    }
    let cfg = SimConfig::new(8).seed(0).max_rounds(2);
    let result = std::panic::catch_unwind(|| {
        let _ = run(&cfg, |_| Cheater, &mut NoFaults);
    });
    assert!(result.is_err(), "KT0 violation was not caught");
}

#[test]
fn send_cap_reduces_spend_without_breaking_accounting() {
    let p = Params::new(512, 0.5).expect("valid");
    let capped = {
        let cfg = SimConfig::new(512)
            .seed(4)
            .max_rounds(p.agreement_round_budget())
            .send_cap(4);
        let mut adv = EagerCrash::new(p.max_faults());
        run(
            &cfg,
            |id| AgreeNode::new(p.clone(), id.0 % 2 == 0),
            &mut adv,
        )
    };
    let free = {
        let cfg = SimConfig::new(512)
            .seed(4)
            .max_rounds(p.agreement_round_budget());
        let mut adv = EagerCrash::new(p.max_faults());
        run(
            &cfg,
            |id| AgreeNode::new(p.clone(), id.0 % 2 == 0),
            &mut adv,
        )
    };
    assert!(capped.metrics.msgs_sent < free.metrics.msgs_sent);
    assert!(capped.metrics.msgs_suppressed > 0);
    assert_eq!(free.metrics.msgs_suppressed, 0);
    assert_eq!(
        capped.metrics.msgs_sent,
        capped.metrics.msgs_delivered + capped.metrics.msgs_lost()
    );
}
