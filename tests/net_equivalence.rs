//! Transport equivalence: the network runtime replays the simulator.
//!
//! The defining property of `ftc-net` is that a cluster run is
//! bit-identical to an engine run of the same `(SimConfig, seed)` — same
//! elected leader, same agreement decision, same message/bit/round counts,
//! same crash schedule — independent of the transport and of how many
//! worker threads multiplex the nodes. These tests pin that property for
//! both of the paper's protocols under several seeds and adversaries, at
//! 1 and 4 workers (the acceptance configuration), on the channel
//! transport, plus TCP smoke coverage at n = 8.

use ftc::prelude::*;

const N: u32 = 64;
// n = 64 sits above the paper's resilience floor log₂²n/n = 0.5625, so
// the canonical alpha = 0.5 is inadmissible here; 0.75 keeps a hefty
// 16-crash budget while staying inside the guaranteed regime.
const ALPHA: f64 = 0.75;
const WORKER_COUNTS: [usize; 2] = [1, 4];

/// Everything observable that must match between substrates.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    success: bool,
    outcome: Option<u64>,
    msgs_sent: u64,
    msgs_delivered: u64,
    bits_sent: u64,
    rounds: u32,
    crashed_at: Vec<Option<u32>>,
}

fn le_fingerprint(r: &RunResult<LeNode>) -> Fingerprint {
    let out = LeOutcome::evaluate(r);
    Fingerprint {
        success: out.success,
        outcome: out.agreed_leader.map(|rank| rank.0),
        msgs_sent: r.metrics.msgs_sent,
        msgs_delivered: r.metrics.msgs_delivered,
        bits_sent: r.metrics.bits_sent,
        rounds: r.metrics.rounds,
        crashed_at: r.crashed_at.clone(),
    }
}

fn agree_fingerprint(r: &RunResult<AgreeNode>) -> Fingerprint {
    let out = AgreeOutcome::evaluate(r);
    Fingerprint {
        success: out.success,
        outcome: out.agreed_value.map(u64::from),
        msgs_sent: r.metrics.msgs_sent,
        msgs_delivered: r.metrics.msgs_delivered,
        bits_sent: r.metrics.bits_sent,
        rounds: r.metrics.rounds,
        crashed_at: r.crashed_at.clone(),
    }
}

fn le_adversary(kind: &str, f: usize) -> Box<dyn Adversary<LeMsg>> {
    match kind {
        "none" => Box::new(NoFaults),
        "eager" => Box::new(EagerCrash::new(f)),
        "random" => Box::new(RandomCrash::new(f, 60)),
        "targeted" => Box::new(MinRankCrasher::new(f)),
        other => panic!("unknown adversary {other}"),
    }
}

fn agree_adversary(kind: &str, f: usize) -> Box<dyn Adversary<AgreeMsg>> {
    match kind {
        "none" => Box::new(NoFaults),
        "eager" => Box::new(EagerCrash::new(f)),
        "random" => Box::new(RandomCrash::new(f, 20)),
        "targeted" => Box::new(ZeroHolderCrasher::new(f)),
        other => panic!("unknown adversary {other}"),
    }
}

#[test]
fn leader_election_matches_engine_on_channel_transport() {
    let params = Params::new(N, ALPHA).unwrap();
    let f = params.max_faults();
    for adversary in ["none", "eager", "random", "targeted"] {
        for seed in [1u64, 7, 99] {
            let cfg = SimConfig::new(N)
                .seed(seed)
                .max_rounds(params.le_round_budget());
            let sim = run(
                &cfg,
                |_| LeNode::new(params.clone()),
                le_adversary(adversary, f).as_mut(),
            );
            let expected = le_fingerprint(&sim);
            for workers in WORKER_COUNTS {
                let net = run_over_channel(
                    &cfg,
                    workers,
                    |_| LeNode::new(params.clone()),
                    le_adversary(adversary, f).as_mut(),
                );
                assert_eq!(
                    le_fingerprint(&net.run),
                    expected,
                    "LE diverged: adversary={adversary} seed={seed} workers={workers}"
                );
                assert_eq!(net.run.metrics.wire_bytes, net.net.wire_bytes);
            }
        }
    }
}

#[test]
fn agreement_matches_engine_on_channel_transport() {
    let params = Params::new(N, ALPHA).unwrap();
    let f = params.max_faults();
    // Every 8th node holds input 0, the rest hold 1.
    let input = |id: NodeId| !id.0.is_multiple_of(8);
    for adversary in ["none", "eager", "random", "targeted"] {
        for seed in [2u64, 13] {
            let cfg = SimConfig::new(N)
                .seed(seed)
                .max_rounds(params.agreement_round_budget());
            let sim = run(
                &cfg,
                |id| AgreeNode::new(params.clone(), input(id)),
                agree_adversary(adversary, f).as_mut(),
            );
            let expected = agree_fingerprint(&sim);
            for workers in WORKER_COUNTS {
                let net = run_over_channel(
                    &cfg,
                    workers,
                    |id| AgreeNode::new(params.clone(), input(id)),
                    agree_adversary(adversary, f).as_mut(),
                );
                assert_eq!(
                    agree_fingerprint(&net.run),
                    expected,
                    "agreement diverged: adversary={adversary} seed={seed} workers={workers}"
                );
            }
        }
    }
}

#[test]
fn worker_count_does_not_change_wire_accounting() {
    // Outcomes are covered above; wire bytes must also be schedule-free.
    let params = Params::new(N, ALPHA).unwrap();
    let cfg = SimConfig::new(N)
        .seed(5)
        .max_rounds(params.le_round_budget());
    let f = params.max_faults();
    let baseline = run_over_channel(
        &cfg,
        1,
        |_| LeNode::new(params.clone()),
        le_adversary("eager", f).as_mut(),
    );
    for workers in [2, 4, 8] {
        let net = run_over_channel(
            &cfg,
            workers,
            |_| LeNode::new(params.clone()),
            le_adversary("eager", f).as_mut(),
        );
        assert_eq!(net.net.wire_bytes, baseline.net.wire_bytes);
        assert_eq!(net.net.frames_sent, baseline.net.frames_sent);
    }
}

#[test]
fn committed_counterexample_replays_identically_across_worker_counts() {
    // `results/le-failure.counterexample.json` is a hunted, ddmin-shrunk
    // schedule under which leader election *fails* at the recorded seed
    // (a single node going silent in the late referee window). Replaying
    // it must reproduce the recorded fingerprint and verdict on the
    // engine and on the channel mesh at every worker count — the hunt
    // subsystem's acceptance property, pinned to a committed artifact.
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/results/le-failure.counterexample.json"
    ))
    .expect("committed counterexample artifact");
    let artifact = Artifact::parse(&text).expect("artifact parses");
    assert!(
        artifact.hit,
        "the committed artifact is a real counterexample"
    );

    let engine = artifact.replay(Substrate::Engine).expect("engine replay");
    assert!(engine.ok(), "engine replay diverged: {engine:?}");
    assert!(
        !engine.observation.fingerprint.success,
        "the counterexample must still make the protocol fail"
    );
    for workers in WORKER_COUNTS {
        let net = artifact
            .replay(Substrate::Channel(workers))
            .expect("channel replay");
        assert!(
            net.ok(),
            "channel replay diverged at workers={workers}: {net:?}"
        );
        assert_eq!(
            net.observation, engine.observation,
            "channel observation differs from engine at workers={workers}"
        );
    }
}

#[test]
fn tcp_smoke_leader_election_n8() {
    // The acceptance configuration: n = 8, alpha = 0.5 (tiny-n
    // best-effort regime), over real sockets.
    let n = 8;
    let params = Params::new(n, 0.5).unwrap();
    let cfg = SimConfig::new(n)
        .seed(1)
        .max_rounds(params.le_round_budget());
    let sim = run(&cfg, |_| LeNode::new(params.clone()), &mut NoFaults);
    let net = run_over_tcp(&cfg, 4, |_| LeNode::new(params.clone()), &mut NoFaults)
        .expect("tcp mesh at n=8");
    assert_eq!(le_fingerprint(&net.run), le_fingerprint(&sim));
    let out = LeOutcome::evaluate(&net.run);
    assert!(out.success, "exactly one leader over real sockets");
    assert!(net.net.wire_bytes > 0);
}

#[test]
fn tcp_smoke_agreement_n8_with_crashes() {
    let n = 8;
    let params = Params::new(n, 0.5).unwrap();
    let f = params.max_faults();
    let cfg = SimConfig::new(n)
        .seed(3)
        .max_rounds(params.agreement_round_budget());
    let input = |id: NodeId| id.0 != 0;
    let sim = run(
        &cfg,
        |id| AgreeNode::new(params.clone(), input(id)),
        agree_adversary("eager", f).as_mut(),
    );
    let net = run_over_tcp(
        &cfg,
        4,
        |id| AgreeNode::new(params.clone(), input(id)),
        agree_adversary("eager", f).as_mut(),
    )
    .expect("tcp mesh at n=8");
    assert_eq!(agree_fingerprint(&net.run), agree_fingerprint(&sim));
    assert!(AgreeOutcome::evaluate(&net.run).success);
}

// ---------------------------------------------------------------------
// Mesh runtime: the multiplexed socket substrate must replay the engine
// (and therefore the channel mesh) bit-for-bit at every process count.
// ---------------------------------------------------------------------

const MESH_PROC_COUNTS: [usize; 2] = [2, 5];

#[test]
fn leader_election_matches_engine_on_mesh_transport() {
    let params = Params::new(N, ALPHA).unwrap();
    let f = params.max_faults();
    for adversary in ["eager", "random", "targeted"] {
        for seed in [1u64, 99] {
            let cfg = SimConfig::new(N)
                .seed(seed)
                .max_rounds(params.le_round_budget());
            let sim = run(
                &cfg,
                |_| LeNode::new(params.clone()),
                le_adversary(adversary, f).as_mut(),
            );
            let expected = le_fingerprint(&sim);
            for procs in MESH_PROC_COUNTS {
                let net = run_over_mesh(
                    &cfg,
                    procs,
                    |_| LeNode::new(params.clone()),
                    le_adversary(adversary, f).as_mut(),
                )
                .expect("mesh fabric");
                assert_eq!(
                    le_fingerprint(&net.run),
                    expected,
                    "mesh LE diverged: adversary={adversary} seed={seed} procs={procs}"
                );
                assert_eq!(net.run.metrics.wire_bytes, net.net.wire_bytes);
            }
        }
    }
}

#[test]
fn agreement_matches_engine_on_mesh_transport() {
    let params = Params::new(N, ALPHA).unwrap();
    let f = params.max_faults();
    let input = |id: NodeId| !id.0.is_multiple_of(8);
    for adversary in ["eager", "random", "targeted"] {
        for seed in [2u64, 13] {
            let cfg = SimConfig::new(N)
                .seed(seed)
                .max_rounds(params.agreement_round_budget());
            let sim = run(
                &cfg,
                |id| AgreeNode::new(params.clone(), input(id)),
                agree_adversary(adversary, f).as_mut(),
            );
            let expected = agree_fingerprint(&sim);
            for procs in MESH_PROC_COUNTS {
                let net = run_over_mesh(
                    &cfg,
                    procs,
                    |id| AgreeNode::new(params.clone(), input(id)),
                    agree_adversary(adversary, f).as_mut(),
                )
                .expect("mesh fabric");
                assert_eq!(
                    agree_fingerprint(&net.run),
                    expected,
                    "mesh agreement diverged: adversary={adversary} seed={seed} procs={procs}"
                );
            }
        }
    }
}

#[test]
fn mesh_wire_accounting_is_procs_invariant_and_matches_the_channel_mesh() {
    // The envelope's dst word is transport overhead, not model traffic:
    // wire bytes and frame counts must agree with the channel runtime
    // exactly, at every process count (including the socketless procs=1).
    let params = Params::new(N, ALPHA).unwrap();
    let cfg = SimConfig::new(N)
        .seed(5)
        .max_rounds(params.le_round_budget());
    let f = params.max_faults();
    let baseline = run_over_channel(
        &cfg,
        1,
        |_| LeNode::new(params.clone()),
        le_adversary("eager", f).as_mut(),
    );
    for procs in [1, 2, 5, 8] {
        let net = run_over_mesh(
            &cfg,
            procs,
            |_| LeNode::new(params.clone()),
            le_adversary("eager", f).as_mut(),
        )
        .expect("mesh fabric");
        assert_eq!(net.net.wire_bytes, baseline.net.wire_bytes, "procs={procs}");
        assert_eq!(net.net.frames_sent, baseline.net.frames_sent);
    }
}

#[test]
fn committed_counterexample_replays_identically_on_the_mesh() {
    // The hunted artifact is a real-wire counterexample on every
    // substrate — including the multiplexed one.
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/results/le-failure.counterexample.json"
    ))
    .expect("committed counterexample artifact");
    let artifact = Artifact::parse(&text).expect("artifact parses");
    let engine = artifact.replay(Substrate::Engine).expect("engine replay");
    assert!(engine.ok());
    for procs in MESH_PROC_COUNTS {
        let net = artifact
            .replay(Substrate::Mesh(procs))
            .expect("mesh replay");
        assert!(net.ok(), "mesh replay diverged at procs={procs}: {net:?}");
        assert_eq!(
            net.observation, engine.observation,
            "mesh observation differs from engine at procs={procs}"
        );
    }
}

#[test]
fn mesh_socket_count_is_quadratic_in_procs_not_nodes() {
    // The scaling claim that makes n=1024 feasible: sockets depend on the
    // process count alone. fabric::build itself asserts the opened count;
    // this pins the arithmetic and that big n runs on few sockets.
    use ftc::mesh::fabric::socket_count;
    for procs in [1usize, 2, 4, 8, 16] {
        assert_eq!(socket_count(procs), procs * (procs - 1) / 2);
    }
    // n = 512 over 3 procs: 3 sockets carry the whole cluster.
    let params = Params::new(512, 0.5).unwrap();
    let cfg = SimConfig::new(512)
        .seed(2)
        .max_rounds(params.le_round_budget());
    let net = run_over_mesh(&cfg, 3, |_| LeNode::new(params.clone()), &mut NoFaults)
        .expect("mesh fabric");
    assert!(LeOutcome::evaluate(&net.run).success);
    assert!(net.net.wire_bytes > 0);
}
