//! Property-based tests on the protocols and the substrate.
//!
//! Generated fault plans, input vectors, seeds and network sizes; the
//! safety clauses of Definitions 1–2 and the simulator's structural
//! invariants must hold for every generated case.
//!
//! The generator is a self-contained seeded harness (the build environment
//! is fully offline, so `proptest` is unavailable): every case derives from
//! `CASE_SEED_BASE` through the same salted-stream scheme the simulator
//! itself uses, which makes a failing case reproducible by its printed
//! case index alone.

use ftc::prelude::*;
use ftc::sim::adversary::DeliveryFilter;
use ftc::sim::perm::{stream_seed, Perm};
use ftc::sim::ports::PortMap;
use rand::prelude::*;

/// Base seed for all generated cases; bump to explore a fresh corpus.
const CASE_SEED_BASE: u64 = 0x5EED_CA5E;

/// Runs `check` on `cases` generated inputs, each with its own derived RNG.
/// Panics with the case index on the first failure so it can be replayed.
fn for_cases(cases: u64, check: impl Fn(u64, &mut SmallRng)) {
    for case in 0..cases {
        let mut rng = SmallRng::seed_from_u64(stream_seed(CASE_SEED_BASE, case));
        check(case, &mut rng);
    }
}

/// A generated crash schedule: up to `max_crashes` distinct nodes, random
/// rounds in `[0, max_round)`, random delivery filters.
fn gen_plan(rng: &mut SmallRng, n: u32, max_crashes: usize, max_round: u32) -> FaultPlan {
    let mut plan = FaultPlan::new();
    let mut used = std::collections::HashSet::new();
    for _ in 0..rng.random_range(0..=max_crashes) {
        let node = NodeId(rng.random_range(0..n));
        if !used.insert(node) {
            continue; // a node crashes at most once
        }
        let filter = match rng.random_range(0..4u8) {
            0 => DeliveryFilter::DeliverAll,
            1 => DeliveryFilter::DropAll,
            2 => DeliveryFilter::KeepFirst(rng.random_range(0..64usize)),
            _ => DeliveryFilter::DeliverEachWithProbability(0.5),
        };
        plan = plan.crash(node, rng.random_range(0..max_round), filter);
    }
    plan
}

/// Agreement safety: for ANY generated fault plan and input vector,
/// decided survivors never disagree and never invent values.
#[test]
fn agreement_safety_under_arbitrary_fault_plans() {
    for_cases(24, |case, rng| {
        let n = 64u32;
        let p = Params::new(n, 0.6).expect("valid");
        let seed = rng.random_range(0..10_000u64);
        let input_stride = rng.random_range(1..8u32);
        let plan = gen_plan(rng, n, 20, 30);
        let mut adv = ScriptedCrash::new(plan);
        let cfg = SimConfig::new(n)
            .seed(seed)
            .max_rounds(p.agreement_round_budget());
        let r = run(
            &cfg,
            |id| AgreeNode::new(p.clone(), id.0 % input_stride != 0),
            &mut adv,
        );
        let o = AgreeOutcome::evaluate(&r);
        // Liveness may legitimately fail under extreme plans; safety never:
        assert!(
            o.consistent,
            "case {case}: split decision: {:?}",
            o.decisions
        );
        if let Some(v) = o.agreed_value {
            assert!(o.valid, "case {case}: agreed {v} is nobody's input");
        }
    });
}

/// Leader-election safety: never two alive ELECTED nodes.
#[test]
fn le_uniqueness_under_arbitrary_fault_plans() {
    for_cases(24, |case, rng| {
        let n = 64u32;
        let p = Params::new(n, 0.6).expect("valid");
        let seed = rng.random_range(0..10_000u64);
        let plan = gen_plan(rng, n, 16, 60);
        let mut adv = ScriptedCrash::new(plan);
        let cfg = SimConfig::new(n).seed(seed).max_rounds(p.le_round_budget());
        let r = run(&cfg, |_| LeNode::new(p.clone()), &mut adv);
        let elected: Vec<_> = r
            .surviving_states()
            .filter(|(_, s)| s.status() == LeStatus::Elected)
            .map(|(id, _)| id)
            .collect();
        assert!(
            elected.len() <= 1,
            "case {case}: two alive leaders: {elected:?}"
        );
    });
}

/// The Feistel permutation is a bijection for arbitrary domain/seed.
#[test]
fn perm_is_bijective() {
    for_cases(32, |case, rng| {
        let domain = rng.random_range(1..5000u64);
        let seed: u64 = rng.random();
        let p = Perm::new(domain, seed);
        let mut seen = vec![false; domain as usize];
        for x in 0..domain {
            let y = p.apply(x);
            assert!(y < domain, "case {case}: image out of domain");
            assert!(!seen[y as usize], "case {case}: collision at {y}");
            seen[y as usize] = true;
            assert_eq!(p.invert(y), x, "case {case}: inverse mismatch");
        }
    });
}

/// Port maps never wire a node to itself and invert consistently.
#[test]
fn portmap_wiring_is_sane() {
    for_cases(32, |case, rng| {
        let n = rng.random_range(2..300u32);
        let node = NodeId(rng.random_range(0..n));
        let seed: u64 = rng.random();
        let pm = PortMap::new(n, node, seed);
        for port in 0..n - 1 {
            let peer = pm.peer(Port(port));
            assert!(peer != node, "case {case}: self-wired port {port}");
            assert!(peer.0 < n, "case {case}: peer out of range");
            assert_eq!(pm.port_to(peer), Port(port), "case {case}: not inverse");
        }
    });
}

/// Engine conservation law: delivered + lost == sent; crashes only among
/// the faulty set; determinism of the metrics.
#[test]
fn engine_conservation_and_determinism() {
    for_cases(16, |case, rng| {
        let n = 64u32;
        let p = Params::new(n, 0.6).expect("valid");
        let seed = rng.random_range(0..10_000u64);
        let f = rng.random_range(0..32usize);
        let horizon = rng.random_range(1..20u32);
        let cfg = SimConfig::new(n)
            .seed(seed)
            .max_rounds(p.agreement_round_budget());
        let run_once = || {
            let mut adv = RandomCrash::new(f, horizon);
            run(
                &cfg,
                |id| AgreeNode::new(p.clone(), id.0 % 2 == 0),
                &mut adv,
            )
        };
        let r1 = run_once();
        let r2 = run_once();
        assert_eq!(r1.metrics.msgs_sent, r2.metrics.msgs_sent, "case {case}");
        assert_eq!(r1.metrics.rounds, r2.metrics.rounds, "case {case}");
        assert_eq!(
            r1.metrics.msgs_sent,
            r1.metrics.msgs_delivered + r1.metrics.msgs_lost(),
            "case {case}"
        );
        assert!(r1.metrics.crash_count() <= f, "case {case}");
        for (id, _) in &r1.metrics.crashes {
            assert!(r1.faulty.contains(*id), "case {case}");
        }
    });
}

/// Ranks always land in the documented domain.
#[test]
fn rank_domain_property() {
    for_cases(64, |case, rng| {
        let n = rng.random_range(2..=65_535u32);
        let mut draw_rng = SmallRng::seed_from_u64(rng.random());
        let r = Rank::draw(&mut draw_rng, n);
        assert!(r.0 >= 1, "case {case}: rank {} below domain", r.0);
        assert!(
            r.0 <= u64::from(n).pow(4),
            "case {case}: rank {} above n^4",
            r.0
        );
    });
}

/// Summary statistics are internally consistent for arbitrary samples.
#[test]
fn summary_invariants() {
    for_cases(48, |case, rng| {
        let len = rng.random_range(1..200usize);
        let values: Vec<f64> = (0..len).map(|_| rng.random_range(-1e6..1e6f64)).collect();
        let s = Summary::of(&values);
        assert!(s.min <= s.median && s.median <= s.max, "case {case}");
        assert!(s.min <= s.mean && s.mean <= s.max, "case {case}");
        assert!(s.median <= s.p95 && s.p95 <= s.max, "case {case}");
        assert!(s.std_dev >= 0.0, "case {case}");
        assert_eq!(s.count, values.len(), "case {case}");
    });
}
