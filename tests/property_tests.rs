//! Property-based tests (proptest) on the protocols and the substrate.
//!
//! Strategy-generated fault plans, input vectors, seeds and network sizes;
//! the safety clauses of Definitions 1–2 and the simulator's structural
//! invariants must hold for every generated case.

use ftc::prelude::*;
use ftc::sim::adversary::DeliveryFilter;
use ftc::sim::perm::Perm;
use ftc::sim::ports::PortMap;
use proptest::prelude::*;

/// A generated crash: node index (as fraction), round, filter choice.
#[derive(Clone, Debug)]
struct GenCrash {
    node_frac: f64,
    round: u32,
    filter_kind: u8,
    keep: usize,
}

fn crash_strategy(max_round: u32) -> impl Strategy<Value = GenCrash> {
    (0.0..1.0f64, 0..max_round, 0u8..4, 0usize..64).prop_map(
        |(node_frac, round, filter_kind, keep)| GenCrash {
            node_frac,
            round,
            filter_kind,
            keep,
        },
    )
}

fn build_plan(n: u32, crashes: &[GenCrash]) -> FaultPlan {
    let mut plan = FaultPlan::new();
    let mut used = std::collections::HashSet::new();
    for c in crashes {
        let node = NodeId(((c.node_frac * f64::from(n)) as u32).min(n - 1));
        if !used.insert(node) {
            continue; // a node crashes at most once
        }
        let filter = match c.filter_kind {
            0 => DeliveryFilter::DeliverAll,
            1 => DeliveryFilter::DropAll,
            2 => DeliveryFilter::KeepFirst(c.keep),
            _ => DeliveryFilter::DeliverEachWithProbability(0.5),
        };
        plan = plan.crash(node, c.round, filter);
    }
    plan
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Agreement safety: for ANY generated fault plan and input vector,
    /// decided survivors never disagree and never invent values.
    #[test]
    fn agreement_safety_under_arbitrary_fault_plans(
        seed in 0u64..10_000,
        input_stride in 1u32..8,
        crashes in prop::collection::vec(crash_strategy(30), 0..20),
    ) {
        let n = 64u32;
        let p = Params::new(n, 0.6).expect("valid");
        let plan = build_plan(n, &crashes);
        let mut adv = ScriptedCrash::new(plan);
        let cfg = SimConfig::new(n).seed(seed).max_rounds(p.agreement_round_budget());
        let r = run(&cfg, |id| AgreeNode::new(p.clone(), id.0 % input_stride != 0), &mut adv);
        let o = AgreeOutcome::evaluate(&r);
        // Liveness may legitimately fail under extreme plans; safety never:
        prop_assert!(o.consistent, "split decision: {:?}", o.decisions);
        if let Some(v) = o.agreed_value {
            prop_assert!(o.valid, "agreed {v} is nobody's input");
        }
    }

    /// Leader-election safety: never two alive ELECTED nodes.
    #[test]
    fn le_uniqueness_under_arbitrary_fault_plans(
        seed in 0u64..10_000,
        crashes in prop::collection::vec(crash_strategy(60), 0..16),
    ) {
        let n = 64u32;
        let p = Params::new(n, 0.6).expect("valid");
        let plan = build_plan(n, &crashes);
        let mut adv = ScriptedCrash::new(plan);
        let cfg = SimConfig::new(n).seed(seed).max_rounds(p.le_round_budget());
        let r = run(&cfg, |_| LeNode::new(p.clone()), &mut adv);
        let elected: Vec<_> = r
            .surviving_states()
            .filter(|(_, s)| s.status() == LeStatus::Elected)
            .map(|(id, _)| id)
            .collect();
        prop_assert!(elected.len() <= 1, "two alive leaders: {elected:?}");
    }

    /// The Feistel permutation is a bijection for arbitrary domain/seed.
    #[test]
    fn perm_is_bijective(domain in 1u64..5000, seed in any::<u64>()) {
        let p = Perm::new(domain, seed);
        let mut seen = vec![false; domain as usize];
        for x in 0..domain {
            let y = p.apply(x);
            prop_assert!(y < domain);
            prop_assert!(!seen[y as usize], "collision at {y}");
            seen[y as usize] = true;
            prop_assert_eq!(p.invert(y), x);
        }
    }

    /// Port maps never wire a node to itself and invert consistently.
    #[test]
    fn portmap_wiring_is_sane(n in 2u32..300, node_frac in 0.0..1.0f64, seed in any::<u64>()) {
        let node = NodeId(((node_frac * f64::from(n)) as u32).min(n - 1));
        let pm = PortMap::new(n, node, seed);
        for port in 0..n - 1 {
            let peer = pm.peer(Port(port));
            prop_assert!(peer != node);
            prop_assert!(peer.0 < n);
            prop_assert_eq!(pm.port_to(peer), Port(port));
        }
    }

    /// Engine conservation law: delivered + lost == sent; crashes only
    /// among the faulty set; determinism of the metrics.
    #[test]
    fn engine_conservation_and_determinism(
        seed in 0u64..10_000,
        f in 0usize..32,
        horizon in 1u32..20,
    ) {
        let n = 64u32;
        let p = Params::new(n, 0.6).expect("valid");
        let cfg = SimConfig::new(n).seed(seed).max_rounds(p.agreement_round_budget());
        let run_once = || {
            let mut adv = RandomCrash::new(f, horizon);
            run(&cfg, |id| AgreeNode::new(p.clone(), id.0 % 2 == 0), &mut adv)
        };
        let r1 = run_once();
        let r2 = run_once();
        prop_assert_eq!(r1.metrics.msgs_sent, r2.metrics.msgs_sent);
        prop_assert_eq!(r1.metrics.rounds, r2.metrics.rounds);
        prop_assert_eq!(
            r1.metrics.msgs_sent,
            r1.metrics.msgs_delivered + r1.metrics.msgs_lost()
        );
        prop_assert!(r1.metrics.crash_count() <= f);
        for (id, _) in r1.metrics.crashes.iter().map(|(id, rd)| (id, rd)) {
            prop_assert!(r1.faulty.contains(*id));
        }
    }

    /// Ranks always land in the documented domain.
    #[test]
    fn rank_domain_property(n in 2u32..=65_535, seed in any::<u64>()) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let r = Rank::draw(&mut rng, n);
        prop_assert!(r.0 >= 1);
        prop_assert!(r.0 <= u64::from(n).pow(4));
    }

    /// Summary statistics are internally consistent for arbitrary samples.
    #[test]
    fn summary_invariants(values in prop::collection::vec(-1e6..1e6f64, 1..200)) {
        let s = Summary::of(&values);
        prop_assert!(s.min <= s.median && s.median <= s.max);
        prop_assert!(s.min <= s.mean && s.mean <= s.max);
        prop_assert!(s.median <= s.p95 && s.p95 <= s.max);
        prop_assert!(s.std_dev >= 0.0);
        prop_assert_eq!(s.count, values.len());
    }
}
