//! End-to-end leader-election tests across the (n, α) × adversary grid.
//!
//! These are the Definition-1 acceptance tests of the reproduction: the
//! implicit leader election must elect exactly one leader, never a
//! crashed node, under every crash schedule, with high probability.

use ftc::prelude::*;

fn params(n: u32, alpha: f64) -> Params {
    Params::new(n, alpha).expect("valid params")
}

fn run_le_with(
    p: &Params,
    seed: u64,
    adv: &mut dyn Adversary<LeMsg>,
) -> ftc::sim::engine::RunResult<LeNode> {
    let cfg = SimConfig::new(p.n())
        .seed(seed)
        .max_rounds(p.le_round_budget());
    run(&cfg, |_| LeNode::new(p.clone()), adv)
}

#[test]
fn grid_of_sizes_and_alphas_under_random_crashes() {
    // n = 64 is below the α = 0.5 resilience limit (log²n/n = 0.56), so
    // the grid starts at 128.
    for &n in &[128u32, 256, 512] {
        for &alpha in &[1.0, 0.5] {
            let p = params(n, alpha);
            let mut ok = 0;
            let trials = 8;
            for seed in 0..trials {
                let mut adv = RandomCrash::new(p.max_faults(), 40);
                let r = run_le_with(&p, seed, &mut adv);
                if LeOutcome::evaluate(&r).success {
                    ok += 1;
                }
            }
            assert!(
                ok >= trials - 1,
                "n={n} alpha={alpha}: only {ok}/{trials} successes"
            );
        }
    }
}

#[test]
fn near_maximum_resilience() {
    // alpha close to the paper's limit log^2 n / n: n = 256 allows
    // alpha >= 0.25; run at exactly the limit.
    let n = 256u32;
    let alpha = Params::min_alpha(n);
    let p = params(n, alpha);
    let mut ok = 0;
    let trials = 6;
    for seed in 0..trials {
        let mut adv = EagerCrash::new(p.max_faults());
        let r = run_le_with(&p, seed, &mut adv);
        if LeOutcome::evaluate(&r).success {
            ok += 1;
        }
    }
    // At the resilience limit only ~log^2 n nodes survive; allow one miss.
    assert!(ok >= trials - 2, "only {ok}/{trials} at alpha={alpha}");
}

#[test]
fn unique_leader_invariant_across_many_seeds() {
    let p = params(128, 0.5);
    for seed in 0..30 {
        let mut adv = MinRankCrasher::new(p.max_faults());
        let r = run_le_with(&p, seed, &mut adv);
        // Regardless of success, never MORE than one alive elected node.
        let elected_alive = r
            .surviving_states()
            .filter(|(_, s)| s.status() == LeStatus::Elected)
            .count();
        assert!(elected_alive <= 1, "seed {seed}: {elected_alive} leaders");
    }
}

#[test]
fn elected_rank_matches_a_real_candidate() {
    let p = params(128, 0.5);
    for seed in 0..10 {
        let mut adv = RandomCrash::new(64, 40);
        let r = run_le_with(&p, seed, &mut adv);
        let o = LeOutcome::evaluate(&r);
        if let Some(leader_rank) = o.agreed_leader {
            // The agreed rank must be the rank of some candidate node.
            assert!(
                r.all_states().any(|(_, s)| s.rank() == Some(leader_rank)),
                "seed {seed}: agreed rank {leader_rank} belongs to nobody"
            );
        }
    }
}

#[test]
fn deterministic_replay_of_full_protocol() {
    let p = params(128, 0.5);
    let mut a1 = RandomCrash::new(64, 30);
    let mut a2 = RandomCrash::new(64, 30);
    let r1 = run_le_with(&p, 777, &mut a1);
    let r2 = run_le_with(&p, 777, &mut a2);
    assert_eq!(r1.metrics.msgs_sent, r2.metrics.msgs_sent);
    assert_eq!(r1.metrics.rounds, r2.metrics.rounds);
    assert_eq!(r1.crashed_at, r2.crashed_at);
    let o1 = LeOutcome::evaluate(&r1);
    let o2 = LeOutcome::evaluate(&r2);
    assert_eq!(o1.agreed_leader, o2.agreed_leader);
    assert_eq!(o1.leader_node, o2.leader_node);
}

#[test]
fn message_cost_tracks_alpha_budget() {
    // Halving alpha must not reduce the message cost (the 1/alpha^2.5
    // factor) — a sanity check on the resilience dial.
    let n = 512u32;
    let cheap = {
        let p = params(n, 1.0);
        let r = run_le_with(&p, 5, &mut NoFaults);
        r.metrics.msgs_sent
    };
    let dear = {
        let p = params(n, 0.25);
        let mut adv = EagerCrash::new(p.max_faults());
        let r = run_le_with(&p, 5, &mut adv);
        r.metrics.msgs_sent
    };
    assert!(
        dear > cheap,
        "alpha=0.25 cost {dear} not above alpha=1.0 cost {cheap}"
    );
}

#[test]
fn fault_free_leader_is_minimum_surviving_candidate_rank() {
    // With no crashes the protocol's converged rank is deterministic-ish:
    // it must be *some* candidate's rank and all candidates agree on it.
    let p = params(128, 1.0);
    for seed in 0..10 {
        let r = run_le_with(&p, seed, &mut NoFaults);
        let o = LeOutcome::evaluate(&r);
        assert!(o.success, "seed {seed}: {o:?}");
        let beliefs: Vec<_> = r
            .surviving_states()
            .filter(|(_, s)| s.is_candidate())
            .map(|(_, s)| s.leader_belief())
            .collect();
        assert!(beliefs.iter().all(|b| *b == Some(o.agreed_leader.unwrap())));
    }
}
