//! End-to-end coverage of the `ftc lab gate` CLI contract: a gate against
//! an honest baseline exits 0, and *any* perturbation of a measured
//! number in the baseline makes the gate exit non-zero. This drives the
//! real binary (not the library) so argument parsing, record loading and
//! process exit codes are all on the hook.

use std::path::PathBuf;
use std::process::Command;

use ftc::lab::{run_campaign, Adv, CampaignSpec, CellSpec, LabSubstrate, Store, Workload};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ftc-gate-cli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn gate(baseline: &std::path::Path) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_ftc"))
        .args(["lab", "gate"])
        .arg(baseline)
        .args(["--jobs", "1"])
        .output()
        .expect("spawn ftc")
}

#[test]
fn gate_passes_honest_baseline_and_fails_perturbed_one() {
    let dir = tmp_dir("perturb");
    let spec = CampaignSpec::new("gate-cli-e2e").cell(CellSpec::new(
        Workload::Le {
            adv: Adv::Random(5),
        },
        16,
        0.5,
        7,
        2,
    ));
    let record = run_campaign(&spec, 1, LabSubstrate::Engine).unwrap();
    let store = Store::at(&dir);
    let id = store.put(&record).unwrap();
    let honest = dir.join(format!("{id}.json"));

    let out = gate(&honest);
    assert!(
        out.status.success(),
        "honest gate failed:\n{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );

    // Perturb one measured number by the smallest visible amount and
    // write the doctored record next to the honest one.
    let mut doctored = record.clone();
    doctored.cells[0].msgs.mean += 1.0;
    let path = dir.join("doctored.json");
    std::fs::write(&path, doctored.to_json(true).render()).unwrap();

    let out = gate(&path);
    assert!(
        !out.status.success(),
        "gate accepted a perturbed baseline:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
    // Drift details and the final verdict go to stderr.
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("mismatch"),
        "gate failure output should name the mismatch, got:\n{stderr}"
    );
    assert!(
        stderr.contains("drift"),
        "gate failure output should list drifting cells, got:\n{stderr}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
