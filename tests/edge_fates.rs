//! Lazy edge-fault sampling vs the eager bitmap oracle.
//!
//! The sparse data plane asks [`EdgeFates`] for each touched edge's fate
//! on demand; [`DeadEdgeCache`] is the retired eager path, kept as an
//! oracle. Both must answer from the same per-edge hash — one divergent
//! pair would silently change every committed baseline that uses edge
//! failures, so the agreement is pinned exhaustively and the hash itself
//! is pinned against golden values.

use ftc::prelude::*;
use ftc::sim::ids::NodeId;
use ftc::sim::perm::stream_seed;
use ftc::sim::round::{DeadEdgeCache, EdgeFates};

#[test]
fn lazy_fates_match_eager_cache_on_every_pair() {
    for (case, &(n, p)) in [(48u32, 0.3f64), (17, 0.05), (96, 0.9)].iter().enumerate() {
        let cfg = SimConfig::new(n)
            .seed(stream_seed(0xED6E, case as u64))
            .edge_failure_prob(p);
        let fates = EdgeFates::new(&cfg);
        let mut cache = DeadEdgeCache::new(n).expect("small n fits the bitmap");
        for a in 0..n {
            for b in (a + 1)..n {
                let lazy = fates.is_dead(NodeId(a), NodeId(b));
                assert_eq!(
                    lazy,
                    cache.is_dead(a, b, &fates),
                    "case {case}: first probe of edge ({a},{b}) disagrees"
                );
                // Second probe answers from the memo — it must not flip.
                assert_eq!(
                    lazy,
                    cache.is_dead(a, b, &fates),
                    "case {case}: memoised probe of edge ({a},{b}) flipped"
                );
            }
        }
    }
}

#[test]
fn fates_are_symmetric_and_order_free() {
    let cfg = SimConfig::new(64).seed(0xABCD).edge_failure_prob(0.4);
    let fates = EdgeFates::new(&cfg);
    let pairs: Vec<(u32, u32)> = (0..64u32)
        .flat_map(|a| ((a + 1)..64).map(move |b| (a, b)))
        .collect();
    let reference: Vec<bool> = pairs
        .iter()
        .map(|&(a, b)| fates.is_dead(NodeId(a), NodeId(b)))
        .collect();
    // Re-probe in reverse order and flipped orientation: the fate is a
    // pure function of the unordered pair, never of probe history.
    for (&(a, b), &fate) in pairs.iter().zip(&reference).rev() {
        assert_eq!(fates.is_dead(NodeId(b), NodeId(a)), fate);
    }
}

#[test]
fn fates_depend_on_seed_and_probability() {
    let base = SimConfig::new(128).seed(1).edge_failure_prob(0.5);
    let fates = EdgeFates::new(&base);
    let other_seed = EdgeFates::new(&SimConfig::new(128).seed(2).edge_failure_prob(0.5));
    let mut seed_flips = 0u32;
    for a in 0..128u32 {
        for b in (a + 1)..128 {
            if fates.is_dead(NodeId(a), NodeId(b)) != other_seed.is_dead(NodeId(a), NodeId(b)) {
                seed_flips += 1;
            }
        }
    }
    // Independent 50/50 draws differ on about half the 8128 edges.
    assert!(
        (3000..5200).contains(&seed_flips),
        "seed change flipped {seed_flips} of 8128 edges — fates are not seed-derived"
    );
    // p = 0 kills nothing, ever.
    let none = EdgeFates::new(&SimConfig::new(128).seed(1));
    assert_eq!(none.failure_prob(), 0.0);
    for a in 0..128u32 {
        for b in (a + 1)..128 {
            assert!(!none.is_dead(NodeId(a), NodeId(b)));
        }
    }
}

#[test]
fn edge_failure_density_tracks_probability() {
    let cfg = SimConfig::new(192).seed(0x5EED).edge_failure_prob(0.25);
    let fates = EdgeFates::new(&cfg);
    let mut dead = 0u32;
    let mut total = 0u32;
    for a in 0..192u32 {
        for b in (a + 1)..192 {
            total += 1;
            dead += u32::from(fates.is_dead(NodeId(a), NodeId(b)));
        }
    }
    let density = f64::from(dead) / f64::from(total);
    assert!(
        (density - 0.25).abs() < 0.03,
        "dead-edge density {density} strays from p = 0.25"
    );
}

/// Golden pins: the exact fates of a handful of named edges at a fixed
/// seed. These fail if the edge-hash derivation (salt, packing order,
/// threshold comparison) changes in any way — which would desynchronise
/// every committed record with edge failures.
#[test]
fn golden_edge_fates_are_pinned() {
    let cfg = SimConfig::new(1024).seed(0xF00D).edge_failure_prob(0.5);
    let fates = EdgeFates::new(&cfg);
    let golden: Vec<bool> = [
        (0u32, 1u32),
        (0, 2),
        (1, 2),
        (3, 700),
        (511, 512),
        (0, 1023),
    ]
    .iter()
    .map(|&(a, b)| fates.is_dead(NodeId(a), NodeId(b)))
    .collect();
    assert_eq!(golden, vec![true, true, false, false, false, false]);
}
