//! Integration tests for the model extensions (beyond the paper's
//! crash-fault model): Byzantine tampering, adaptive adversaries, edge
//! failures, and send caps. Each extension must (a) behave as designed
//! and (b) leave the base model untouched when disabled.

use ftc::prelude::*;

#[test]
fn byzantine_zero_forger_violates_validity_only_with_b_positive() {
    let p = Params::new(256, 0.9).expect("valid");
    // b = 0: clean run, validity holds.
    let cfg = SimConfig::new(256)
        .seed(7)
        .max_rounds(p.agreement_round_budget());
    let mut adv = ZeroForger::new(0);
    let r = run(&cfg, |_| AgreeNode::new(p.clone(), true), &mut adv);
    let o = AgreeOutcome::evaluate(&r);
    assert!(o.success && o.agreed_value == Some(true));

    // b = 1: honest nodes decide a value nobody input.
    let mut violated = 0;
    for seed in 0..6 {
        let cfg = SimConfig::new(256)
            .seed(seed)
            .max_rounds(p.agreement_round_budget());
        let mut adv = ZeroForger::new(1);
        let r = run(&cfg, |_| AgreeNode::new(p.clone(), true), &mut adv);
        let honest_zero = r
            .surviving_states()
            .filter(|(id, _)| !r.faulty.contains(*id))
            .any(|(_, s)| s.status() == AgreeStatus::Decided(false));
        if honest_zero {
            violated += 1;
        }
    }
    assert!(violated >= 5, "{violated}/6");
}

#[test]
fn byzantine_equivocation_elects_phantom_ranks() {
    let p = Params::new(256, 0.9).expect("valid");
    for seed in 0..5 {
        let cfg = SimConfig::new(256)
            .seed(seed)
            .max_rounds(p.le_round_budget());
        let mut adv = EquivocatingClaimant::new(1);
        let r = run(&cfg, |_| LeNode::new(p.clone()), &mut adv);
        let o = LeOutcome::evaluate(&r);
        if let Some(rank) = o.agreed_leader {
            // If candidates agreed at all, they agreed on a rank that
            // belongs to no real node (the forged near-domain-top rank).
            let owner_exists = r.all_states().any(|(_, s)| s.rank() == Some(rank));
            assert!(!owner_exists, "seed {seed}: honest rank won despite attack");
        }
        assert!(!o.success, "seed {seed}: election survived equivocation");
    }
}

#[test]
fn adaptive_killer_contrast_with_static_budget() {
    let p = Params::new(512, 0.5).expect("valid");
    let budget = p.max_faults();
    let mut static_ok = 0;
    let mut adaptive_ok = 0;
    for seed in 0..6 {
        let cfg = SimConfig::new(512)
            .seed(seed)
            .max_rounds(p.le_round_budget());
        let mut adv = EagerCrash::new(budget);
        if LeOutcome::evaluate(&run(&cfg, |_| LeNode::new(p.clone()), &mut adv)).success {
            static_ok += 1;
        }
        let mut adv = AdaptiveCandidateKiller::new(budget);
        if LeOutcome::evaluate(&run(&cfg, |_| LeNode::new(p.clone()), &mut adv)).success {
            adaptive_ok += 1;
        }
    }
    assert!(static_ok >= 5, "static: {static_ok}/6");
    assert_eq!(adaptive_ok, 0, "adaptive adversary should always win");
}

#[test]
fn mild_edge_failures_are_absorbed_by_referee_redundancy() {
    let p = Params::new(512, 0.5).expect("valid");
    let mut ok = 0;
    for seed in 0..6 {
        let cfg = SimConfig::new(512)
            .seed(seed)
            .max_rounds(p.agreement_round_budget())
            .edge_failure_prob(0.02);
        let mut adv = RandomCrash::new(p.max_faults(), 20);
        let r = run(
            &cfg,
            |id| AgreeNode::new(p.clone(), id.0 % 8 == 0),
            &mut adv,
        );
        if AgreeOutcome::evaluate(&r).success {
            ok += 1;
        }
    }
    assert!(ok >= 5, "2% dead edges broke agreement: {ok}/6");
}

#[test]
fn extensions_off_reproduce_the_base_model_exactly() {
    // A config with all extension knobs at their defaults must produce
    // bit-identical metrics to an explicitly zeroed one.
    let p = Params::new(256, 0.5).expect("valid");
    let base = SimConfig::new(256)
        .seed(11)
        .max_rounds(p.agreement_round_budget());
    let mut zeroed = base.clone();
    zeroed.edge_failure_prob = 0.0;
    zeroed.send_cap = None;

    let mut a1 = EagerCrash::new(p.max_faults());
    let mut a2 = EagerCrash::new(p.max_faults());
    let r1 = run(
        &base,
        |id| AgreeNode::new(p.clone(), id.0 % 2 == 0),
        &mut a1,
    );
    let r2 = run(
        &zeroed,
        |id| AgreeNode::new(p.clone(), id.0 % 2 == 0),
        &mut a2,
    );
    assert_eq!(r1.metrics.msgs_sent, r2.metrics.msgs_sent);
    assert_eq!(r1.metrics.msgs_delivered, r2.metrics.msgs_delivered);
    assert_eq!(r1.metrics.msgs_lost_edges, 0);
    assert_eq!(r1.metrics.msgs_suppressed, 0);
}
