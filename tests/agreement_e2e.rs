//! End-to-end agreement tests: Definition 2 across the input × adversary
//! grid, plus the explicit extension.

use ftc::prelude::*;

fn params(n: u32, alpha: f64) -> Params {
    Params::new(n, alpha).expect("valid params")
}

fn run_agree_with(
    p: &Params,
    seed: u64,
    inputs: impl Fn(NodeId) -> bool,
    adv: &mut dyn Adversary<AgreeMsg>,
) -> ftc::sim::engine::RunResult<AgreeNode> {
    let cfg = SimConfig::new(p.n())
        .seed(seed)
        .max_rounds(p.agreement_round_budget());
    run(&cfg, |id| AgreeNode::new(p.clone(), inputs(id)), adv)
}

#[test]
fn input_density_grid_under_targeted_crashes() {
    let p = params(256, 0.5);
    for &(label, stride) in &[("all-zero", 1u32), ("half", 2), ("sparse", 32)] {
        for seed in 0..8 {
            let mut adv = ZeroHolderCrasher::new(p.max_faults());
            let r = run_agree_with(&p, seed, |id| id.0 % stride != 0, &mut adv);
            let o = AgreeOutcome::evaluate(&r);
            assert!(o.success, "{label} seed {seed}: {o:?}");
        }
    }
}

#[test]
fn unanimous_inputs_are_never_overturned() {
    let p = params(256, 0.5);
    for seed in 0..8 {
        let mut adv = RandomCrash::new(p.max_faults(), 20);
        let r = run_agree_with(&p, seed, |_| true, &mut adv);
        let o = AgreeOutcome::evaluate(&r);
        assert!(o.success, "seed {seed}: {o:?}");
        assert_eq!(o.agreed_value, Some(true), "invented a 0 from nowhere");

        let mut adv = RandomCrash::new(p.max_faults(), 20);
        let r = run_agree_with(&p, seed, |_| false, &mut adv);
        let o = AgreeOutcome::evaluate(&r);
        assert!(o.success, "seed {seed}: {o:?}");
        assert_eq!(o.agreed_value, Some(false));
    }
}

#[test]
fn all_ones_network_is_silent_after_registration() {
    let p = params(512, 1.0);
    let r = run_agree_with(&p, 3, |_| true, &mut NoFaults);
    let registration = r.metrics.per_round.first().map_or(0, |m| m.sent);
    assert_eq!(
        r.metrics.msgs_sent, registration,
        "iteration traffic in an all-ones network"
    );
}

#[test]
fn consistency_invariant_across_many_seeds() {
    // Even in (rare) failed runs, we record *which* definition clause
    // broke; consistency violations must be what the lower bound predicts
    // (splits), never validity violations (invented values).
    let p = params(128, 0.5);
    for seed in 0..30 {
        let mut adv = ZeroHolderCrasher::new(p.max_faults());
        let r = run_agree_with(&p, seed, |id| id.0 % 2 == 0, &mut adv);
        let o = AgreeOutcome::evaluate(&r);
        if let Some(v) = o.agreed_value {
            assert!(o.valid, "seed {seed}: agreed {v} is nobody's input");
        }
    }
}

#[test]
fn explicit_agreement_informs_every_survivor() {
    let p = params(128, 0.5);
    for seed in 0..6 {
        let cfg = SimConfig::new(128)
            .seed(seed)
            .max_rounds(ExplicitAgreeNode::round_budget(&p));
        let mut adv = RandomCrash::new(p.max_faults(), 20);
        let r = run(
            &cfg,
            |id| ExplicitAgreeNode::new(p.clone(), id.0 % 4 != 0),
            &mut adv,
        );
        let o = ExplicitAgreeOutcome::evaluate(&r);
        assert!(o.success, "seed {seed}: {o:?}");
        assert_eq!(o.value, Some(false), "the 0 minority must win");
    }
}

#[test]
fn explicit_leader_election_informs_every_survivor() {
    let p = params(128, 0.5);
    for seed in 0..6 {
        let cfg = SimConfig::new(128)
            .seed(seed)
            .max_rounds(ExplicitLeNode::round_budget(&p));
        let mut adv = RandomCrash::new(p.max_faults(), 20);
        let r = run(&cfg, |_| ExplicitLeNode::new(p.clone()), &mut adv);
        let o = ExplicitLeOutcome::evaluate(&r);
        assert!(o.success, "seed {seed}: {o:?}");
    }
}

#[test]
fn agreement_beats_leader_election_on_messages() {
    // Section V: agreement is strictly cheaper than electing a leader and
    // adopting its value — the reason the paper gives it its own protocol.
    let p = params(1024, 0.5);
    let mut a1 = EagerCrash::new(p.max_faults());
    let agree = run_agree_with(&p, 9, |id| id.0 % 2 == 0, &mut a1);

    let cfg = SimConfig::new(1024).seed(9).max_rounds(p.le_round_budget());
    let mut a2 = EagerCrash::new(p.max_faults());
    let le = run(&cfg, |_| LeNode::new(p.clone()), &mut a2);

    assert!(
        agree.metrics.msgs_sent * 2 < le.metrics.msgs_sent,
        "agreement {} not well below LE {}",
        agree.metrics.msgs_sent,
        le.metrics.msgs_sent
    );
}
