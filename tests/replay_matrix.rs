//! Replay matrix: every counterexample artifact committed under
//! `results/` must replay cleanly on every substrate — the deterministic
//! engine, the in-process channel runtime, localhost TCP, and the
//! multiplexed mesh runtime. This is the standing guarantee that the
//! artifacts in the repo are live evidence, not stale JSON: a protocol
//! or runtime change that breaks reproduction fails this test, not a
//! human re-running hunts by hand.
//!
//! Wire-fault artifacts ride the same matrix. On the engine the wire
//! plan is ignored (the engine has no wire), which is exactly the claim
//! the artifact makes: delivery-preserving wire faults do not change
//! observable outcomes, so the fingerprint must match anyway.

use std::fs;
use std::path::PathBuf;

use ftc::hunt::prelude::{Artifact, Substrate};

/// All committed counterexample artifacts, sorted for stable output.
fn committed_artifacts() -> Vec<(PathBuf, Artifact)> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("results");
    let mut found = Vec::new();
    for entry in fs::read_dir(&dir).expect("results/ exists") {
        let path = entry.unwrap().path();
        let name = path.file_name().and_then(|s| s.to_str()).unwrap_or("");
        if !name.ends_with(".counterexample.json") {
            continue;
        }
        let text = fs::read_to_string(&path).unwrap();
        let artifact = Artifact::parse(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        found.push((path, artifact));
    }
    found.sort_by(|a, b| a.0.cmp(&b.0));
    assert!(
        !found.is_empty(),
        "no *.counterexample.json committed under results/"
    );
    found
}

fn replay_all_on(substrate: Substrate) {
    for (path, artifact) in committed_artifacts() {
        let report = artifact
            .replay(substrate)
            .unwrap_or_else(|e| panic!("{} on {substrate:?}: {e}", path.display()));
        assert!(
            report.ok(),
            "{} diverged on {substrate:?}: fingerprint_matches={} verdict_matches={}",
            path.display(),
            report.fingerprint_matches,
            report.verdict_matches
        );
    }
}

#[test]
fn committed_artifacts_replay_on_engine() {
    replay_all_on(Substrate::Engine);
}

#[test]
fn committed_artifacts_replay_on_channel() {
    replay_all_on(Substrate::Channel(2));
}

#[test]
fn committed_artifacts_replay_on_tcp() {
    replay_all_on(Substrate::Tcp(2));
}

#[test]
fn committed_artifacts_replay_on_mesh() {
    replay_all_on(Substrate::Mesh(2));
}
