//! # `ftc` — fault-tolerant computation with sublinear message complexity
//!
//! Umbrella crate for the reproduction of Kumar & Molla, *"On the Message
//! Complexity of Fault-Tolerant Computation: Leader Election and
//! Agreement"* (PODC 2021 brief announcement; full version IEEE TPDS
//! 34(4), 2023). It re-exports the four member crates:
//!
//! * [`sim`] — the synchronous crash-fault complete-network simulator
//!   (KT0 ports, CONGEST accounting, adversaries, traces);
//! * [`core`] — the paper's protocols: implicit/explicit leader election
//!   and agreement, plus worst-case adversaries;
//! * [`baselines`] — the Table-I comparison protocols (FloodSet,
//!   broadcast LE, GK10-style, CK09-style gossip, Kutten et al.);
//! * [`lowerbound`] — influence-cloud analysis and message-budget sweeps
//!   for the `Ω(√n/α^{3/2})` lower bounds;
//! * [`net`] — the real message-passing runtime: the same protocols over
//!   in-process channels or localhost TCP sockets, bit-identical to the
//!   simulator for any `(SimConfig, seed)`;
//! * [`mesh`] — the multiplexed socket runtime: one socket per *process*
//!   pair and many simulated nodes per process, taking real cluster runs
//!   from n=8 to n=1024 on the same sans-I/O round core;
//! * [`hunt`] — adversary search: hunts, shrinks, and replays worst-case
//!   crash schedules as committed counterexample artifacts;
//! * [`chaos`] — portfolio hunts at campaign scale: the full strategies ×
//!   objectives × protocol grid as one self-describing record with a
//!   schedule-space coverage figure, plus socket-level wire-fault search;
//! * [`lab`] — declarative experiment campaigns: parameter grids over the
//!   protocols, a content-addressed results store under `results/store/`,
//!   cell-by-cell diffs with statistical tolerance bands, and the CI perf
//!   gate built on them;
//! * [`serve`] — a long-lived leader *service*: repeated election heights
//!   over the unmodified protocols, leader-kill churn with rejoin, a
//!   deterministic load generator, and a runtime invariant monitor that
//!   turns violations into replayable `hunt` artifacts.
//!
//! See `examples/quickstart.rs` for a end-to-end tour and `DESIGN.md` /
//! `EXPERIMENTS.md` for the experiment index.
//!
//! ```
//! use ftc::prelude::*;
//!
//! let params = Params::new(128, 0.5)?;
//! let cfg = SimConfig::new(128).seed(1).max_rounds(params.le_round_budget());
//! let mut adversary = EagerCrash::new(64);
//! let result = run(&cfg, |_| LeNode::new(params.clone()), &mut adversary);
//! assert!(LeOutcome::evaluate(&result).success);
//! # Ok::<(), ftc::core::params::ParamsError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ftc_baselines as baselines;
pub use ftc_chaos as chaos;
pub use ftc_core as core;
pub use ftc_hunt as hunt;
pub use ftc_lab as lab;
pub use ftc_lowerbound as lowerbound;
pub use ftc_mesh as mesh;
pub use ftc_net as net;
pub use ftc_serve as serve;
pub use ftc_sim as sim;

pub mod output;

/// Everything, in one import.
pub mod prelude {
    pub use crate::output::{emit_summaries, render_summaries, Format, RowWriter, Value};
    pub use ftc_baselines::prelude::*;
    pub use ftc_chaos::prelude::*;
    pub use ftc_core::prelude::*;
    pub use ftc_hunt::prelude::*;
    pub use ftc_lab::{
        diff_records, run_campaign, Adv, CampaignRecord, CampaignSpec, CellSpec, CheckAxis,
        CheckMetric, DiffReport, ExponentCheck, LabSubstrate, Store, Tolerance, Workload,
    };
    pub use ftc_lowerbound::prelude::*;
    pub use ftc_mesh::prelude::*;
    pub use ftc_net::prelude::*;
    pub use ftc_serve::prelude::*;
    pub use ftc_sim::prelude::*;
}
