//! `ftc` — command-line front end for the protocols and experiments.
//!
//! ```text
//! ftc le     --n 4096 --alpha 0.5 --adversary random --trials 10 [--csv]
//! ftc agree  --n 4096 --alpha 0.5 --zeros 0.05 --adversary targeted [--csv]
//! ftc sweep  --n 2048 --alpha 0.5 --caps 64,16,4,1 --trials 24 [--csv]
//! ftc trace  --n 512  --alpha 0.5 --seed 7          # influence-cloud report
//! ```
//!
//! All subcommands are deterministic given `--seed`.

use std::process::ExitCode;

use ftc::prelude::*;

/// Parsed command-line options (flat key-value flags).
#[derive(Clone, Debug)]
struct Opts {
    n: u32,
    alpha: f64,
    seed: u64,
    trials: u64,
    zeros: f64,
    adversary: String,
    caps: Vec<Option<u32>>,
    csv: bool,
    jobs: usize,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            n: 1024,
            alpha: 0.5,
            seed: 42,
            trials: 10,
            zeros: 0.05,
            adversary: "random".into(),
            caps: vec![None, Some(64), Some(16), Some(4), Some(1)],
            csv: false,
            jobs: 0,
        }
    }
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut o = Opts::default();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = |i: usize| -> Result<&String, String> {
            args.get(i + 1)
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag {
            "--n" => {
                o.n = value(i)?.parse().map_err(|e| format!("--n: {e}"))?;
                i += 2;
            }
            "--alpha" => {
                o.alpha = value(i)?.parse().map_err(|e| format!("--alpha: {e}"))?;
                i += 2;
            }
            "--seed" => {
                o.seed = value(i)?.parse().map_err(|e| format!("--seed: {e}"))?;
                i += 2;
            }
            "--trials" => {
                o.trials = value(i)?.parse().map_err(|e| format!("--trials: {e}"))?;
                i += 2;
            }
            "--zeros" => {
                o.zeros = value(i)?.parse().map_err(|e| format!("--zeros: {e}"))?;
                i += 2;
            }
            "--adversary" => {
                o.adversary = value(i)?.clone();
                i += 2;
            }
            "--caps" => {
                o.caps = value(i)?
                    .split(',')
                    .map(|c| {
                        if c == "none" {
                            Ok(None)
                        } else {
                            c.parse::<u32>()
                                .map(Some)
                                .map_err(|e| format!("--caps: {e}"))
                        }
                    })
                    .collect::<Result<_, _>>()?;
                i += 2;
            }
            "--csv" => {
                o.csv = true;
                i += 1;
            }
            "--jobs" => {
                o.jobs = value(i)?.parse().map_err(|e| format!("--jobs: {e}"))?;
                i += 2;
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(o)
}

fn le_adversary(kind: &str, f: usize) -> Result<Box<dyn Adversary<LeMsg>>, String> {
    Ok(match kind {
        "none" => Box::new(NoFaults),
        "eager" => Box::new(EagerCrash::new(f)),
        "random" => Box::new(RandomCrash::new(f, 60)),
        "targeted" => Box::new(MinRankCrasher::new(f)),
        other => {
            return Err(format!(
                "unknown adversary {other} (none|eager|random|targeted)"
            ))
        }
    })
}

fn agree_adversary(kind: &str, f: usize) -> Result<Box<dyn Adversary<AgreeMsg>>, String> {
    Ok(match kind {
        "none" => Box::new(NoFaults),
        "eager" => Box::new(EagerCrash::new(f)),
        "random" => Box::new(RandomCrash::new(f, 20)),
        "targeted" => Box::new(ZeroHolderCrasher::new(f)),
        other => {
            return Err(format!(
                "unknown adversary {other} (none|eager|random|targeted)"
            ))
        }
    })
}

fn cmd_le(o: &Opts) -> Result<(), String> {
    let params = Params::new(o.n, o.alpha).map_err(|e| e.to_string())?;
    let f = params.max_faults();
    let cfg = SimConfig::new(o.n)
        .seed(o.seed)
        .max_rounds(params.le_round_budget());
    if o.csv {
        println!("trial,seed,success,leader_rank,msgs,bits,rounds,crashes");
    }
    let mut successes = 0;
    let results = run_trials(&cfg, o.trials, |c| {
        let mut adv = le_adversary(&o.adversary, f).expect("validated");
        let r = run(c, |_| LeNode::new(params.clone()), adv.as_mut());
        let out = LeOutcome::evaluate(&r);
        (out.success, out.agreed_leader, r.metrics.clone())
    });
    for t in &results {
        let (ok, leader, m) = &t.value;
        if *ok {
            successes += 1;
        }
        if o.csv {
            println!(
                "{},{},{},{},{},{},{},{}",
                t.trial,
                t.seed,
                ok,
                leader.map_or(0, |r| r.0),
                m.msgs_sent,
                m.bits_sent,
                m.rounds,
                m.crash_count()
            );
        }
    }
    if !o.csv {
        let msgs = Summary::of_iter(results.iter().map(|t| t.value.2.msgs_sent as f64));
        let rounds = Summary::of_iter(results.iter().map(|t| f64::from(t.value.2.rounds)));
        println!(
            "leader election: n={} alpha={} adversary={} trials={}",
            o.n, o.alpha, o.adversary, o.trials
        );
        println!("  success: {successes}/{}", o.trials);
        println!("  messages: mean {:.0} (p95 {:.0})", msgs.mean, msgs.p95);
        println!("  rounds: mean {:.0} (max {:.0})", rounds.mean, rounds.max);
    }
    Ok(())
}

fn cmd_agree(o: &Opts) -> Result<(), String> {
    let params = Params::new(o.n, o.alpha).map_err(|e| e.to_string())?;
    let f = params.max_faults();
    let stride = if o.zeros <= 0.0 {
        u32::MAX
    } else {
        (1.0 / o.zeros).round().max(1.0) as u32
    };
    let cfg = SimConfig::new(o.n)
        .seed(o.seed)
        .max_rounds(params.agreement_round_budget());
    if o.csv {
        println!("trial,seed,success,value,msgs,bits,rounds");
    }
    let mut successes = 0;
    let results = run_trials(&cfg, o.trials, |c| {
        let mut adv = agree_adversary(&o.adversary, f).expect("validated");
        let r = run(
            c,
            |id| AgreeNode::new(params.clone(), !(stride != u32::MAX && id.0 % stride == 0)),
            adv.as_mut(),
        );
        let out = AgreeOutcome::evaluate(&r);
        (out.success, out.agreed_value, r.metrics.clone())
    });
    for t in &results {
        let (ok, value, m) = &t.value;
        if *ok {
            successes += 1;
        }
        if o.csv {
            println!(
                "{},{},{},{},{},{},{}",
                t.trial,
                t.seed,
                ok,
                value.map_or(-1, i64::from),
                m.msgs_sent,
                m.bits_sent,
                m.rounds
            );
        }
    }
    if !o.csv {
        let msgs = Summary::of_iter(results.iter().map(|t| t.value.2.msgs_sent as f64));
        println!(
            "agreement: n={} alpha={} zeros={} adversary={} trials={}",
            o.n, o.alpha, o.zeros, o.adversary, o.trials
        );
        println!("  success: {successes}/{}", o.trials);
        println!("  messages: mean {:.0} (bits ≈ 2x)", msgs.mean);
    }
    Ok(())
}

fn cmd_sweep(o: &Opts) -> Result<(), String> {
    let points = sweep_agreement(o.n, o.alpha, &o.caps, o.trials, o.seed, o.jobs);
    if o.csv {
        println!("cap,mean_msgs,suppressed,threshold_ratio,failure_rate,trials");
        for p in &points {
            println!(
                "{},{:.1},{:.1},{:.4},{:.4},{}",
                p.cap.map_or(-1, i64::from),
                p.mean_messages,
                p.mean_suppressed,
                p.threshold_ratio,
                p.failure_rate,
                p.trials
            );
        }
    } else {
        println!("send-cap sweep (agreement): n={} alpha={}", o.n, o.alpha);
        for p in &points {
            println!(
                "  cap {:>9}: {:>10.0} msgs ({:>7.2}x threshold), failure {:.2}",
                p.cap.map_or("unlimited".into(), |c| c.to_string()),
                p.mean_messages,
                p.threshold_ratio,
                p.failure_rate
            );
        }
    }
    Ok(())
}

fn cmd_trace(o: &Opts) -> Result<(), String> {
    let params = Params::new(o.n, o.alpha).map_err(|e| e.to_string())?;
    let cfg = SimConfig::new(o.n)
        .seed(o.seed)
        .max_rounds(params.le_round_budget())
        .record_trace(true);
    let mut adv = EagerCrash::new(params.max_faults());
    let r = run(&cfg, |_| LeNode::new(params.clone()), &mut adv);
    let trace = r.trace.as_ref().expect("trace enabled");
    let a = InfluenceAnalysis::full(trace);
    println!(
        "trace: n={} alpha={} seed={} — {} events, {} rounds",
        o.n,
        o.alpha,
        o.seed,
        trace.len(),
        r.metrics.rounds
    );
    println!(
        "influence: {} initiators, event N (disjoint clouds) = {}, {} untouched nodes",
        a.initiator_count(),
        a.event_n(),
        a.untouched()
    );
    let mut sizes: Vec<usize> = a.cloud_sizes().iter().map(|&(_, s)| s).collect();
    sizes.sort_unstable_by(|x, y| y.cmp(x));
    println!("largest clouds: {:?}", &sizes[..sizes.len().min(8)]);
    Ok(())
}

fn usage() -> &'static str {
    "usage: ftc <le|agree|sweep|trace> [--n N] [--alpha A] [--seed S] \
     [--trials T] [--zeros Z] [--adversary none|eager|random|targeted] \
     [--caps c1,c2,none] [--csv] [--jobs J]"
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    let opts = match parse_opts(&args[1..]) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n{}", usage());
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "le" => cmd_le(&opts),
        "agree" => cmd_agree(&opts),
        "sweep" => cmd_sweep(&opts),
        "trace" => cmd_trace(&opts),
        other => Err(format!("unknown command {other}\n{}", usage())),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn defaults_apply_without_flags() {
        let o = parse_opts(&[]).unwrap();
        assert_eq!(o.n, 1024);
        assert_eq!(o.adversary, "random");
        assert!(!o.csv);
    }

    #[test]
    fn flags_override_defaults() {
        let o = parse_opts(&args(
            "--n 256 --alpha 0.25 --trials 3 --csv --adversary eager",
        ))
        .unwrap();
        assert_eq!(o.n, 256);
        assert_eq!(o.alpha, 0.25);
        assert_eq!(o.trials, 3);
        assert!(o.csv);
        assert_eq!(o.adversary, "eager");
    }

    #[test]
    fn caps_parse_with_none() {
        let o = parse_opts(&args("--caps none,64,1")).unwrap();
        assert_eq!(o.caps, vec![None, Some(64), Some(1)]);
    }

    #[test]
    fn unknown_flag_is_an_error() {
        assert!(parse_opts(&args("--bogus 1")).is_err());
        assert!(parse_opts(&args("--n")).is_err());
    }

    #[test]
    fn adversary_factories_validate_names() {
        assert!(le_adversary("random", 3).is_ok());
        assert!(le_adversary("martian", 3).is_err());
        assert!(agree_adversary("targeted", 3).is_ok());
        assert!(agree_adversary("martian", 3).is_err());
    }

    #[test]
    fn end_to_end_small_le_run() {
        let o = Opts {
            n: 128,
            alpha: 0.5,
            trials: 2,
            ..Opts::default()
        };
        cmd_le(&o).unwrap();
        cmd_agree(&o).unwrap();
    }
}
