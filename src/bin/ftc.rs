//! `ftc` — command-line front end for the protocols and experiments.
//!
//! ```text
//! ftc le      --n 4096 --alpha 0.5 --adversary random --trials 10 [--format csv]
//! ftc agree   --n 4096 --alpha 0.5 --zeros 0.05 --adversary targeted [--format json]
//! ftc sweep   --n 2048 --alpha 0.5 --caps 64,16,4,1 --trials 24 [--format csv]
//! ftc trace   --n 512  --alpha 0.5 --seed 7          # influence-cloud report
//! ftc cluster --n 8 --alpha 0.5 --proto le --seed 1 --transport tcp
//! ftc serve   --n 64 --alpha 0.75 --heights 100 --kill-every 3 [--out results/]
//! ftc loadgen --n 16 --alpha 0.5 --heights 40 --arrivals 4 --capacity 8
//! ftc hunt    --n 64 --alpha 0.5 --proto le --objective failure --budget 256
//! ftc replay  results/le-failure.counterexample.json --transport channel
//! ftc lab     run gate-smoke --jobs 4
//! ftc lab     gate results/store/gate-smoke-<hash>.json
//! ```
//!
//! `cluster` runs the same protocols over a real transport (`ftc-net`):
//! localhost TCP sockets or in-process channels, with crash injection as
//! mid-round socket teardown. Simulator and cluster emit the same row
//! shapes, so `--format csv|json` output is interchangeable downstream.
//!
//! `serve` runs a long-lived leader service (`ftc-serve`): repeated
//! election heights with leader-kill churn, automatic re-election, and a
//! runtime invariant monitor; `--inject-split-brain H` seeds a two-leaders
//! fault at height `H` to demonstrate the monitor end to end, and `--out`
//! writes any violation as a replayable counterexample artifact. `loadgen`
//! drives the same service with the deterministic load generator and
//! reports request latency and availability.
//!
//! `hunt` searches the crash-schedule space for a schedule that breaks the
//! chosen objective (`ftc-hunt`), ddmin-shrinks the worst one it finds,
//! cross-checks it on the sim engine and the channel runtime, and (with
//! `--out`) writes a replayable counterexample artifact. `replay`
//! re-executes such an artifact and fails if the recorded fingerprint or
//! verdict is not reproduced bit-for-bit.
//!
//! All subcommands are deterministic given `--seed`.

use std::process::ExitCode;
use std::time::Duration;

use ftc::prelude::*;

/// Parsed command-line options (flat key-value flags).
#[derive(Clone, Debug)]
struct Opts {
    n: u32,
    alpha: f64,
    seed: u64,
    trials: u64,
    zeros: f64,
    adversary: String,
    caps: Vec<Option<u32>>,
    format: Format,
    jobs: usize,
    proto: String,
    transport: String,
    workers: usize,
    /// `cluster --transport mesh`: OS processes the nodes are packed
    /// onto (one socket per proc pair).
    procs: usize,
    /// `cluster`: how long a node waits on a frame before the run is
    /// declared wedged.
    recv_timeout: Duration,
    objective: String,
    strategy: String,
    budget: u64,
    probes: u64,
    out: Option<String>,
    /// `lab`: run campaigns at smoke scale.
    smoke: bool,
    /// `lab`: results-store directory.
    store: String,
    /// `lab`: execution substrate (`engine`, `channel:W`, `tcp:W`).
    substrate: String,
    /// `lab`: worker threads sharding one trial's nodes (engine
    /// substrate only; results are bit-identical at any value).
    intra_jobs: usize,
    /// `lab perf`: which campaign's latest trajectory entry to gate
    /// against (absent = the file's most recent entry).
    campaign: Option<String>,
    /// `lab diff`/`lab gate`: fractional tolerance band (absent = exact).
    tolerance: Option<f64>,
    /// `serve`/`loadgen`: election heights to run.
    heights: u32,
    /// `serve`: crash the leader after every this-many successful heights.
    kill_every: u32,
    /// `serve`: extra nodes crashed alongside the leader.
    bystanders: u32,
    /// `serve`: heights a downed node sits out before rejoining.
    rejoin_after: u32,
    /// `serve`/`loadgen`: serving rounds between elections.
    window: u32,
    /// `loadgen`: request arrivals per service round.
    arrivals: u32,
    /// `loadgen`: requests the leader completes per serving round.
    capacity: u32,
    /// `serve`: inject a verified split-brain schedule at this height (a
    /// monitor/artifact demonstration; see `ftc_serve::seeder`).
    inject_split_brain: Option<u32>,
    /// `hunt`: also search socket-level wire faults (reorder, duplicate,
    /// tear, delay) on the `--transport` substrate.
    wire_faults: bool,
    /// `hunt`: exit nonzero unless the hunt found a counterexample.
    expect_hit: bool,
    /// `hunt`: exit nonzero if the hunt found a counterexample.
    expect_empty: bool,
    /// `hunt portfolio`: minimum schedule-space coverage fraction.
    min_coverage: Option<f64>,
    /// `lab list`: only records of this kind (`lab`|`hunt`).
    kind: Option<String>,
    /// `le`/`agree`/`cluster`: the network graph
    /// (`complete` | `diam2:<clusters>` | `rr:<d>`).
    topology: Topology,
    /// Non-flag arguments (e.g. the artifact path for `replay`).
    positional: Vec<String>,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            n: 1024,
            alpha: 0.5,
            seed: 42,
            trials: 10,
            zeros: 0.05,
            adversary: "random".into(),
            caps: vec![None, Some(64), Some(16), Some(4), Some(1)],
            format: Format::Human,
            jobs: 0,
            proto: "le".into(),
            transport: "tcp".into(),
            workers: 4,
            procs: 4,
            recv_timeout: RECV_TIMEOUT,
            objective: "failure".into(),
            strategy: "random".into(),
            budget: 256,
            probes: 3,
            out: None,
            smoke: false,
            store: "results/store".into(),
            substrate: "engine".into(),
            intra_jobs: 1,
            campaign: None,
            tolerance: None,
            heights: 20,
            kill_every: 3,
            bystanders: 2,
            rejoin_after: 4,
            window: 12,
            arrivals: 2,
            capacity: 4,
            inject_split_brain: None,
            wire_faults: false,
            expect_hit: false,
            expect_empty: false,
            min_coverage: None,
            kind: None,
            topology: Topology::Complete,
            positional: Vec::new(),
        }
    }
}

/// Parses `--topology`: `complete`, `diam2:<clusters>` (the hub graph),
/// or `rr:<d>` (a seeded random `d`-regular graph). Shape parameters are
/// validated against `--n` when the command builds its `SimConfig`, not
/// here — parse time does not know the final `n`.
fn parse_topology(s: &str) -> Result<Topology, String> {
    if s == "complete" {
        return Ok(Topology::Complete);
    }
    if let Some(c) = s.strip_prefix("diam2:") {
        let clusters = c.parse().map_err(|e| format!("--topology diam2: {e}"))?;
        return Ok(Topology::DiameterTwo { clusters });
    }
    if let Some(d) = s.strip_prefix("rr:") {
        let d = d.parse().map_err(|e| format!("--topology rr: {e}"))?;
        return Ok(Topology::RandomRegular { d });
    }
    Err(format!(
        "unknown topology {s} (complete | diam2:<clusters> | rr:<d>)"
    ))
}

/// Applies `--topology` to a config, validating the shape against `--n`
/// first (the builder panics on invalid shapes; the CLI wants an error).
fn with_topology(o: &Opts, cfg: SimConfig) -> Result<SimConfig, String> {
    if o.topology.is_complete() {
        return Ok(cfg);
    }
    o.topology.validate(o.n).map_err(|e| e.to_string())?;
    Ok(cfg.topology(o.topology.clone()))
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut o = Opts::default();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = |i: usize| -> Result<&String, String> {
            args.get(i + 1)
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag {
            "--n" => {
                o.n = value(i)?.parse().map_err(|e| format!("--n: {e}"))?;
                i += 2;
            }
            "--alpha" => {
                o.alpha = value(i)?.parse().map_err(|e| format!("--alpha: {e}"))?;
                i += 2;
            }
            "--seed" => {
                o.seed = value(i)?.parse().map_err(|e| format!("--seed: {e}"))?;
                i += 2;
            }
            "--trials" => {
                o.trials = value(i)?.parse().map_err(|e| format!("--trials: {e}"))?;
                if o.trials == 0 {
                    return Err("--trials must be at least 1".into());
                }
                i += 2;
            }
            "--zeros" => {
                o.zeros = value(i)?.parse().map_err(|e| format!("--zeros: {e}"))?;
                i += 2;
            }
            "--adversary" => {
                o.adversary = value(i)?.clone();
                i += 2;
            }
            "--topology" => {
                o.topology = parse_topology(value(i)?)?;
                i += 2;
            }
            "--caps" => {
                o.caps = value(i)?
                    .split(',')
                    .map(|c| {
                        if c == "none" {
                            Ok(None)
                        } else {
                            c.parse::<u32>()
                                .map(Some)
                                .map_err(|e| format!("--caps: {e}"))
                        }
                    })
                    .collect::<Result<_, _>>()?;
                i += 2;
            }
            "--format" => {
                o.format = Format::parse(value(i)?)?;
                i += 2;
            }
            // Backwards-compatible alias for `--format csv`.
            "--csv" => {
                o.format = Format::Csv;
                i += 1;
            }
            "--jobs" => {
                o.jobs = value(i)?.parse().map_err(|e| format!("--jobs: {e}"))?;
                if o.jobs == 0 {
                    return Err(
                        "--jobs must be at least 1 (omit the flag to use every core)".into(),
                    );
                }
                i += 2;
            }
            "--proto" => {
                o.proto = value(i)?.clone();
                if !matches!(o.proto.as_str(), "le" | "agree") {
                    return Err(format!("unknown protocol {} (le|agree)", o.proto));
                }
                i += 2;
            }
            "--transport" => {
                o.transport = value(i)?.clone();
                if !matches!(o.transport.as_str(), "tcp" | "channel" | "mesh") {
                    return Err(format!(
                        "unknown transport {} (tcp|channel|mesh)",
                        o.transport
                    ));
                }
                i += 2;
            }
            "--workers" => {
                o.workers = value(i)?.parse().map_err(|e| format!("--workers: {e}"))?;
                if o.workers == 0 {
                    return Err("--workers must be at least 1".into());
                }
                i += 2;
            }
            "--procs" => {
                o.procs = value(i)?.parse().map_err(|e| format!("--procs: {e}"))?;
                if o.procs == 0 {
                    return Err("--procs must be at least 1".into());
                }
                i += 2;
            }
            "--recv-timeout" => {
                let secs: f64 = value(i)?
                    .parse()
                    .map_err(|e| format!("--recv-timeout: {e}"))?;
                if !secs.is_finite() || secs <= 0.0 {
                    return Err("--recv-timeout must be a positive number of seconds".into());
                }
                o.recv_timeout = Duration::from_secs_f64(secs);
                i += 2;
            }
            "--objective" => {
                o.objective = value(i)?.clone();
                Objective::parse(&o.objective)?;
                i += 2;
            }
            "--strategy" => {
                o.strategy = value(i)?.clone();
                Strategy::parse(&o.strategy)?;
                i += 2;
            }
            "--budget" => {
                o.budget = value(i)?.parse().map_err(|e| format!("--budget: {e}"))?;
                if o.budget == 0 {
                    return Err("--budget must be at least 1".into());
                }
                i += 2;
            }
            "--probes" => {
                o.probes = value(i)?.parse().map_err(|e| format!("--probes: {e}"))?;
                if o.probes == 0 {
                    return Err("--probes must be at least 1".into());
                }
                i += 2;
            }
            "--out" => {
                o.out = Some(value(i)?.clone());
                i += 2;
            }
            "--smoke" => {
                o.smoke = true;
                i += 1;
            }
            "--store" => {
                o.store = value(i)?.clone();
                i += 2;
            }
            "--substrate" => {
                o.substrate = value(i)?.clone();
                parse_substrate(&o.substrate)?;
                i += 2;
            }
            "--intra-jobs" => {
                o.intra_jobs = value(i)?
                    .parse()
                    .map_err(|e| format!("--intra-jobs: {e}"))?;
                if o.intra_jobs == 0 {
                    return Err("--intra-jobs must be at least 1".into());
                }
                i += 2;
            }
            "--campaign" => {
                o.campaign = Some(value(i)?.clone());
                i += 2;
            }
            "--tolerance" => {
                let t: f64 = value(i)?.parse().map_err(|e| format!("--tolerance: {e}"))?;
                if t <= 0.0 || t.is_nan() {
                    return Err("--tolerance must be positive".into());
                }
                o.tolerance = Some(t);
                i += 2;
            }
            "--heights" => {
                o.heights = value(i)?.parse().map_err(|e| format!("--heights: {e}"))?;
                if o.heights == 0 {
                    return Err("--heights must be at least 1".into());
                }
                i += 2;
            }
            "--kill-every" => {
                o.kill_every = value(i)?
                    .parse()
                    .map_err(|e| format!("--kill-every: {e}"))?;
                i += 2;
            }
            "--bystanders" => {
                o.bystanders = value(i)?
                    .parse()
                    .map_err(|e| format!("--bystanders: {e}"))?;
                i += 2;
            }
            "--rejoin-after" => {
                o.rejoin_after = value(i)?
                    .parse()
                    .map_err(|e| format!("--rejoin-after: {e}"))?;
                i += 2;
            }
            "--window" => {
                o.window = value(i)?.parse().map_err(|e| format!("--window: {e}"))?;
                if o.window == 0 {
                    return Err("--window must be at least 1".into());
                }
                i += 2;
            }
            "--arrivals" => {
                o.arrivals = value(i)?.parse().map_err(|e| format!("--arrivals: {e}"))?;
                i += 2;
            }
            "--capacity" => {
                o.capacity = value(i)?.parse().map_err(|e| format!("--capacity: {e}"))?;
                if o.capacity == 0 {
                    return Err("--capacity must be at least 1".into());
                }
                i += 2;
            }
            "--inject-split-brain" => {
                o.inject_split_brain = Some(
                    value(i)?
                        .parse()
                        .map_err(|e| format!("--inject-split-brain: {e}"))?,
                );
                i += 2;
            }
            "--wire-faults" => {
                o.wire_faults = true;
                i += 1;
            }
            "--expect-hit" => {
                if o.expect_empty {
                    return Err("--expect-hit and --expect-empty are mutually exclusive".into());
                }
                o.expect_hit = true;
                i += 1;
            }
            "--expect-empty" => {
                if o.expect_hit {
                    return Err("--expect-hit and --expect-empty are mutually exclusive".into());
                }
                o.expect_empty = true;
                i += 1;
            }
            "--min-coverage" => {
                let c: f64 = value(i)?
                    .parse()
                    .map_err(|e| format!("--min-coverage: {e}"))?;
                if !(0.0..=1.0).contains(&c) {
                    return Err("--min-coverage must be in [0, 1]".into());
                }
                o.min_coverage = Some(c);
                i += 2;
            }
            "--kind" => {
                let k = value(i)?.clone();
                if !matches!(k.as_str(), "lab" | "hunt") {
                    return Err(format!("unknown record kind {k} (lab|hunt)"));
                }
                o.kind = Some(k);
                i += 2;
            }
            other if !other.starts_with('-') => {
                o.positional.push(other.into());
                i += 1;
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(o)
}

fn le_adversary(kind: &str, f: usize) -> Result<Box<dyn Adversary<LeMsg>>, String> {
    Ok(match kind {
        "none" => Box::new(NoFaults),
        "eager" => Box::new(EagerCrash::new(f)),
        "random" => Box::new(RandomCrash::new(f, 60)),
        "targeted" => Box::new(MinRankCrasher::new(f)),
        other => {
            return Err(format!(
                "unknown adversary {other} (none|eager|random|targeted)"
            ))
        }
    })
}

fn agree_adversary(kind: &str, f: usize) -> Result<Box<dyn Adversary<AgreeMsg>>, String> {
    Ok(match kind {
        "none" => Box::new(NoFaults),
        "eager" => Box::new(EagerCrash::new(f)),
        "random" => Box::new(RandomCrash::new(f, 20)),
        "targeted" => Box::new(ZeroHolderCrasher::new(f)),
        other => {
            return Err(format!(
                "unknown adversary {other} (none|eager|random|targeted)"
            ))
        }
    })
}

fn cmd_le(o: &Opts) -> Result<(), String> {
    let params = Params::new(o.n, o.alpha).map_err(|e| e.to_string())?;
    let f = params.max_faults();
    let cfg = with_topology(
        o,
        SimConfig::new(o.n)
            .seed(o.seed)
            .max_rounds(params.le_round_budget()),
    )?;
    let mut writer = o.format.is_machine().then(|| {
        RowWriter::new(
            o.format,
            &[
                "trial",
                "seed",
                "success",
                "leader_rank",
                "msgs",
                "bits",
                "rounds",
                "crashes",
            ],
        )
    });
    let mut successes = 0;
    let results = run_trials(&cfg, o.trials, |c| {
        let mut adv = le_adversary(&o.adversary, f).expect("validated");
        let r = run(c, |_| LeNode::new(params.clone()), adv.as_mut());
        let out = LeOutcome::evaluate(&r);
        (out.success, out.agreed_leader, r.metrics.clone())
    });
    for t in &results {
        let (ok, leader, m) = &t.value;
        if *ok {
            successes += 1;
        }
        if let Some(w) = writer.as_mut() {
            w.emit(&[
                Value::UInt(t.trial),
                Value::UInt(t.seed),
                Value::Bool(*ok),
                Value::UInt(leader.map_or(0, |r| r.0)),
                Value::UInt(m.msgs_sent),
                Value::UInt(m.bits_sent),
                Value::UInt(u64::from(m.rounds)),
                Value::UInt(m.crash_count() as u64),
            ]);
        }
    }
    let msgs = Summary::of_iter(results.iter().map(|t| t.value.2.msgs_sent as f64));
    let rounds = Summary::of_iter(results.iter().map(|t| f64::from(t.value.2.rounds)));
    if writer.is_none() {
        println!(
            "leader election: n={} alpha={} adversary={} topology={} trials={}",
            o.n, o.alpha, o.adversary, o.topology, o.trials
        );
        println!("  success: {successes}/{}", o.trials);
        println!("  messages: mean {:.0} (p95 {:.0})", msgs.mean, msgs.p95);
        println!("  rounds: mean {:.0} (max {:.0})", rounds.mean, rounds.max);
    } else {
        let bits = Summary::of_iter(results.iter().map(|t| t.value.2.bits_sent as f64));
        emit_summaries(
            o.format,
            &[("msgs", &msgs), ("bits", &bits), ("rounds", &rounds)],
        );
    }
    Ok(())
}

fn cmd_agree(o: &Opts) -> Result<(), String> {
    let params = Params::new(o.n, o.alpha).map_err(|e| e.to_string())?;
    let f = params.max_faults();
    let stride = if o.zeros <= 0.0 {
        u32::MAX
    } else {
        (1.0 / o.zeros).round().max(1.0) as u32
    };
    let cfg = with_topology(
        o,
        SimConfig::new(o.n)
            .seed(o.seed)
            .max_rounds(params.agreement_round_budget()),
    )?;
    let mut writer = o.format.is_machine().then(|| {
        RowWriter::new(
            o.format,
            &[
                "trial", "seed", "success", "value", "msgs", "bits", "rounds",
            ],
        )
    });
    let mut successes = 0;
    let results = run_trials(&cfg, o.trials, |c| {
        let mut adv = agree_adversary(&o.adversary, f).expect("validated");
        let r = run(
            c,
            |id| {
                AgreeNode::new(
                    params.clone(),
                    !(stride != u32::MAX && id.0.is_multiple_of(stride)),
                )
            },
            adv.as_mut(),
        );
        let out = AgreeOutcome::evaluate(&r);
        (out.success, out.agreed_value, r.metrics.clone())
    });
    for t in &results {
        let (ok, value, m) = &t.value;
        if *ok {
            successes += 1;
        }
        if let Some(w) = writer.as_mut() {
            w.emit(&[
                Value::UInt(t.trial),
                Value::UInt(t.seed),
                Value::Bool(*ok),
                Value::Int(value.map_or(-1, i64::from)),
                Value::UInt(m.msgs_sent),
                Value::UInt(m.bits_sent),
                Value::UInt(u64::from(m.rounds)),
            ]);
        }
    }
    let msgs = Summary::of_iter(results.iter().map(|t| t.value.2.msgs_sent as f64));
    if writer.is_none() {
        println!(
            "agreement: n={} alpha={} zeros={} adversary={} topology={} trials={}",
            o.n, o.alpha, o.zeros, o.adversary, o.topology, o.trials
        );
        println!("  success: {successes}/{}", o.trials);
        println!("  messages: mean {:.0} (bits ≈ 2x)", msgs.mean);
    } else {
        let rounds = Summary::of_iter(results.iter().map(|t| f64::from(t.value.2.rounds)));
        emit_summaries(o.format, &[("msgs", &msgs), ("rounds", &rounds)]);
    }
    Ok(())
}

fn cmd_sweep(o: &Opts) -> Result<(), String> {
    let points = sweep_agreement(o.n, o.alpha, &o.caps, o.trials, o.seed, o.jobs);
    if o.format.is_machine() {
        let mut w = RowWriter::new(
            o.format,
            &[
                "cap",
                "mean_msgs",
                "median_msgs",
                "p95_msgs",
                "suppressed",
                "threshold_ratio",
                "failure_rate",
                "trials",
            ],
        );
        for p in &points {
            w.emit(&[
                Value::Int(p.cap.map_or(-1, i64::from)),
                Value::Float(p.mean_messages),
                Value::Float(p.messages.median),
                Value::Float(p.messages.p95),
                Value::Float(p.mean_suppressed),
                Value::Float(p.threshold_ratio),
                Value::Float(p.failure_rate),
                Value::UInt(p.trials),
            ]);
        }
    } else {
        println!("send-cap sweep (agreement): n={} alpha={}", o.n, o.alpha);
        for p in &points {
            println!(
                "  cap {:>9}: {:>10.0} msgs ({:>7.2}x threshold), failure {:.2}",
                p.cap.map_or("unlimited".into(), |c| c.to_string()),
                p.mean_messages,
                p.threshold_ratio,
                p.failure_rate
            );
        }
    }
    Ok(())
}

fn cmd_trace(o: &Opts) -> Result<(), String> {
    let params = Params::new(o.n, o.alpha).map_err(|e| e.to_string())?;
    let cfg = SimConfig::new(o.n)
        .seed(o.seed)
        .max_rounds(params.le_round_budget())
        .record_trace(true);
    let mut adv = EagerCrash::new(params.max_faults());
    let r = run(&cfg, |_| LeNode::new(params.clone()), &mut adv);
    let trace = r.trace.as_ref().expect("trace enabled");
    let a = InfluenceAnalysis::full(trace);
    println!(
        "trace: n={} alpha={} seed={} — {} events, {} rounds",
        o.n,
        o.alpha,
        o.seed,
        trace.len(),
        r.metrics.rounds
    );
    println!(
        "influence: {} initiators, event N (disjoint clouds) = {}, {} untouched nodes",
        a.initiator_count(),
        a.event_n(),
        a.untouched()
    );
    let mut sizes: Vec<usize> = a.cloud_sizes().iter().map(|&(_, s)| s).collect();
    sizes.sort_unstable_by(|x, y| y.cmp(x));
    println!("largest clouds: {:?}", &sizes[..sizes.len().min(8)]);
    Ok(())
}

/// One cluster trial's observable outcome, protocol-agnostic.
struct ClusterTrial {
    success: bool,
    /// Elected leader rank (LE) or agreed bit as 0/1 (agreement); -1 if none.
    outcome: i64,
    metrics: Metrics,
    net: NetMetrics,
}

fn cluster_trial(o: &Opts, seed: u64) -> Result<ClusterTrial, String> {
    let params = Params::new(o.n, o.alpha).map_err(|e| e.to_string())?;
    let f = params.max_faults();
    // Validate size and graph before any sockets are opened (n < 2 etc.);
    // the gated transports then only dial the topology's edges.
    let base = with_topology(o, SimConfig::try_new(o.n).map_err(|e| e.to_string())?)?;
    match o.proto.as_str() {
        "le" => {
            let cfg = base.seed(seed).max_rounds(params.le_round_budget());
            let mut adv = le_adversary(&o.adversary, f)?;
            let factory = |_| LeNode::new(params.clone());
            let res = match o.transport.as_str() {
                "tcp" => run_over_tcp_with(&cfg, o.workers, factory, adv.as_mut(), o.recv_timeout)
                    .map_err(|e| format!("tcp cluster: {e}"))?,
                "mesh" => run_over_mesh_with(&cfg, o.procs, factory, adv.as_mut(), o.recv_timeout)
                    .map_err(|e| format!("mesh cluster: {e}"))?,
                _ => run_over_channel_with(&cfg, o.workers, factory, adv.as_mut(), o.recv_timeout),
            };
            let out = LeOutcome::evaluate(&res.run);
            Ok(ClusterTrial {
                success: out.success,
                outcome: out.agreed_leader.map_or(-1, |r| r.0 as i64),
                metrics: res.run.metrics,
                net: res.net,
            })
        }
        "agree" => {
            let stride = if o.zeros <= 0.0 {
                u32::MAX
            } else {
                (1.0 / o.zeros).round().max(1.0) as u32
            };
            let cfg = base.seed(seed).max_rounds(params.agreement_round_budget());
            let mut adv = agree_adversary(&o.adversary, f)?;
            let factory = |id: NodeId| {
                AgreeNode::new(
                    params.clone(),
                    !(stride != u32::MAX && id.0.is_multiple_of(stride)),
                )
            };
            let res = match o.transport.as_str() {
                "tcp" => run_over_tcp_with(&cfg, o.workers, factory, adv.as_mut(), o.recv_timeout)
                    .map_err(|e| format!("tcp cluster: {e}"))?,
                "mesh" => run_over_mesh_with(&cfg, o.procs, factory, adv.as_mut(), o.recv_timeout)
                    .map_err(|e| format!("mesh cluster: {e}"))?,
                _ => run_over_channel_with(&cfg, o.workers, factory, adv.as_mut(), o.recv_timeout),
            };
            let out = AgreeOutcome::evaluate(&res.run);
            Ok(ClusterTrial {
                success: out.success,
                outcome: out.agreed_value.map_or(-1, i64::from),
                metrics: res.run.metrics,
                net: res.net,
            })
        }
        other => Err(format!("unknown protocol {other} (le|agree)")),
    }
}

fn cmd_cluster(o: &Opts) -> Result<(), String> {
    let mut writer = o.format.is_machine().then(|| {
        RowWriter::new(
            o.format,
            &[
                "trial",
                "seed",
                "transport",
                "proto",
                "success",
                "outcome",
                "msgs",
                "bits",
                "rounds",
                "crashes",
                "wire_bytes",
                "frames",
            ],
        )
    });
    let mut successes = 0u64;
    let mut trials = Vec::new();
    for trial in 0..o.trials.max(1) {
        let seed = o.seed.wrapping_add(trial);
        let t = cluster_trial(o, seed)?;
        if t.success {
            successes += 1;
        }
        if let Some(w) = writer.as_mut() {
            w.emit(&[
                Value::UInt(trial),
                Value::UInt(seed),
                Value::Str(o.transport.clone()),
                Value::Str(o.proto.clone()),
                Value::Bool(t.success),
                Value::Int(t.outcome),
                Value::UInt(t.metrics.msgs_sent),
                Value::UInt(t.metrics.bits_sent),
                Value::UInt(u64::from(t.metrics.rounds)),
                Value::UInt(t.metrics.crash_count() as u64),
                Value::UInt(t.net.wire_bytes),
                Value::UInt(t.net.frames_sent),
            ]);
        }
        trials.push(t);
    }
    let msgs = Summary::of_iter(trials.iter().map(|t| t.metrics.msgs_sent as f64));
    let wire = Summary::of_iter(trials.iter().map(|t| t.net.wire_bytes as f64));
    if writer.is_some() {
        let rounds = Summary::of_iter(trials.iter().map(|t| f64::from(t.metrics.rounds)));
        emit_summaries(
            o.format,
            &[("msgs", &msgs), ("wire_bytes", &wire), ("rounds", &rounds)],
        );
    }
    if writer.is_none() {
        let total = o.trials.max(1);
        if o.transport == "mesh" {
            println!(
                "cluster (mesh, {} protocol): n={} alpha={} adversary={} procs={} trials={total}",
                o.proto, o.n, o.alpha, o.adversary, o.procs
            );
        } else {
            println!(
                "cluster ({}, {} protocol): n={} alpha={} adversary={} workers={} trials={total}",
                o.transport, o.proto, o.n, o.alpha, o.adversary, o.workers
            );
        }
        println!("  success: {successes}/{total}");
        println!("  messages: mean {:.0} (p95 {:.0})", msgs.mean, msgs.p95);
        println!("  wire bytes: mean {:.0} (p95 {:.0})", wire.mean, wire.p95);
        if let Some(t) = trials.last() {
            let what = if o.proto == "le" {
                format!("leader rank {}", t.outcome)
            } else {
                format!("decision {}", t.outcome)
            };
            println!(
                "  last trial: {} in {} rounds, {} crashes survived",
                what,
                t.metrics.rounds,
                t.metrics.crash_count()
            );
        }
    }
    if successes < o.trials.max(1) {
        return Err(format!(
            "{} of {} cluster trials failed",
            o.trials.max(1) - successes,
            o.trials.max(1)
        ));
    }
    Ok(())
}

fn substrate_name(s: Substrate) -> &'static str {
    match s {
        Substrate::Engine => "engine",
        Substrate::Channel(_) => "channel",
        Substrate::Tcp(_) => "tcp",
        Substrate::Mesh(_) => "mesh",
    }
}

/// The `ftc-net` substrate selected by `--transport`/`--workers`.
fn net_substrate(o: &Opts) -> Substrate {
    match o.transport.as_str() {
        "tcp" => Substrate::Tcp(o.workers),
        "mesh" => Substrate::Mesh(o.procs),
        _ => Substrate::Channel(o.workers),
    }
}

/// Maps the `--substrate` flag onto the serve substrate (intra-trial
/// sharding has no meaning for a single service, so `engine` variants
/// collapse).
fn serve_substrate(o: &Opts) -> Result<Substrate, String> {
    Ok(match parse_substrate(&o.substrate)? {
        LabSubstrate::Engine | LabSubstrate::EngineSharded(_) => Substrate::Engine,
        LabSubstrate::Channel(w) => Substrate::Channel(w),
        LabSubstrate::Tcp(w) => Substrate::Tcp(w),
        LabSubstrate::Mesh(p) => Substrate::Mesh(p),
    })
}

/// Builds the service spec shared by `serve` and `loadgen`.
fn serve_config(o: &Opts) -> Result<ServeConfig, String> {
    let mut cfg = ServeConfig::new(o.n, o.alpha)
        .seed(o.seed)
        .heights(o.heights)
        .window_rounds(o.window)
        .substrate(serve_substrate(o)?)
        .churn(ChurnPlan {
            kill_leader_every: o.kill_every,
            bystanders: o.bystanders,
            rejoin_after: o.rejoin_after,
        })
        .load(LoadProfile {
            arrivals_per_round: o.arrivals,
            leader_capacity: o.capacity,
        });
    if let Some(h) = o.inject_split_brain {
        if h >= o.heights {
            return Err(format!(
                "--inject-split-brain {h} is past the last height {}",
                o.heights - 1
            ));
        }
        let params = Params::new(o.n, o.alpha).map_err(|e| e.to_string())?;
        let hcfg = SimConfig::new(o.n)
            .seed(height_seed(o.seed, h))
            .max_rounds(params.le_round_budget());
        let plan = split_brain_plan(&params, &hcfg)?;
        cfg = cfg.inject_at(h, plan);
    }
    Ok(cfg)
}

fn quantile(h: &LogHistogram, q: f64) -> u64 {
    h.quantile(q).unwrap_or(0)
}

fn cmd_serve(o: &Opts) -> Result<(), String> {
    let cfg = serve_config(o)?;
    let report = run_service(&cfg)?;
    let mut writer = o.format.is_machine().then(|| {
        RowWriter::new(
            o.format,
            &[
                "height",
                "seed",
                "success",
                "leader",
                "rank",
                "rounds",
                "msgs",
                "wire_bytes",
                "down",
            ],
        )
    });
    for h in &report.heights {
        if let Some(w) = writer.as_mut() {
            w.emit(&[
                Value::UInt(u64::from(h.height)),
                Value::UInt(h.seed),
                Value::Bool(h.success),
                Value::Int(h.leader.map_or(-1, |l| i64::from(l.0))),
                Value::UInt(h.rank.unwrap_or(0)),
                Value::UInt(u64::from(h.rounds)),
                Value::UInt(h.msgs_sent),
                Value::UInt(h.wire_bytes),
                Value::UInt(u64::from(h.down)),
            ]);
        }
    }
    let m = &report.metrics;
    if writer.is_none() {
        println!(
            "serve: n={} alpha={} heights={} substrate={} seed={}",
            o.n, o.alpha, o.heights, o.substrate, o.seed
        );
        println!(
            "  elections: {} ok, {} failed; leader changes {}",
            m.heights - m.failed_elections,
            m.failed_elections,
            m.leader_changes
        );
        println!(
            "  time-to-new-leader (rounds): p50 {} p95 {} p99 {}",
            quantile(&m.ttnl_rounds, 0.5),
            quantile(&m.ttnl_rounds, 0.95),
            quantile(&m.ttnl_rounds, 0.99)
        );
        println!(
            "  availability: {:.4} ({} of {} rounds with a leader)",
            m.availability().unwrap_or(0.0),
            m.available_rounds,
            m.total_rounds
        );
        println!("  churn crashes: {}", report.crashes);
    }
    for v in &report.violations {
        eprintln!("invariant violation: {}", v.describe());
    }
    if let Some(dir) = &o.out {
        std::fs::create_dir_all(dir).map_err(|e| format!("creating {dir}: {e}"))?;
        for art in &report.artifacts {
            let path = format!("{dir}/two-leaders-h{:04}.json", art.height.unwrap_or(0));
            std::fs::write(&path, art.render()).map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!("counterexample artifact written to {path} (check with `ftc replay`)");
        }
    }
    // A violation fails the run — unless it was deliberately injected,
    // in which case catching it is the expected outcome.
    if !report.ok() && o.inject_split_brain.is_none() {
        return Err(format!(
            "{} invariant violation(s) observed",
            report.violations.len()
        ));
    }
    if report.ok() && o.inject_split_brain.is_some() {
        return Err("injected split brain was not caught by the monitor".into());
    }
    Ok(())
}

fn cmd_loadgen(o: &Opts) -> Result<(), String> {
    let cfg = serve_config(o)?;
    let report = run_service(&cfg)?;
    let load = report
        .load
        .as_ref()
        .expect("serve_config always arms the load generator");
    let m = &report.metrics;
    if o.format.is_machine() {
        let mut w = RowWriter::new(
            o.format,
            &[
                "issued",
                "completed",
                "retried",
                "backlog",
                "lat_p50",
                "lat_p95",
                "lat_p99",
                "availability",
            ],
        );
        w.emit(&[
            Value::UInt(load.issued),
            Value::UInt(load.completed),
            Value::UInt(load.retried),
            Value::UInt(load.backlog),
            Value::UInt(quantile(&load.latency, 0.5)),
            Value::UInt(quantile(&load.latency, 0.95)),
            Value::UInt(quantile(&load.latency, 0.99)),
            Value::Float(m.availability().unwrap_or(0.0)),
        ]);
    } else {
        println!(
            "loadgen: n={} heights={} arrivals/round={} capacity/round={} seed={}",
            o.n, o.heights, o.arrivals, o.capacity, o.seed
        );
        println!(
            "  requests: issued {} completed {} retried {} backlog {}",
            load.issued, load.completed, load.retried, load.backlog
        );
        println!(
            "  latency (rounds): p50 {} p95 {} p99 {} max {}",
            quantile(&load.latency, 0.5),
            quantile(&load.latency, 0.95),
            quantile(&load.latency, 0.99),
            load.latency.max().unwrap_or(0)
        );
        println!("  availability: {:.4}", m.availability().unwrap_or(0.0));
    }
    if !report.ok() {
        return Err(format!(
            "{} invariant violation(s) observed",
            report.violations.len()
        ));
    }
    Ok(())
}

fn cmd_hunt(o: &Opts) -> Result<(), String> {
    if o.positional.first().map(String::as_str) == Some("portfolio") {
        return cmd_hunt_portfolio(o);
    }
    let proto = ProtoKind::parse(&o.proto)?;
    let objective = Objective::parse(&o.objective)?;
    let strategy = Strategy::parse(&o.strategy)?;
    let params = Params::new(o.n, o.alpha).map_err(|e| e.to_string())?;
    let cfg = SimConfig::try_new(o.n)
        .map_err(|e| e.to_string())?
        .max_rounds(proto.round_budget(&params));
    // Wire faults only exist below a real transport, so `--wire-faults`
    // moves the whole hunt onto the `--transport` substrate; plain hunts
    // stay on the (much faster, observation-identical) engine.
    let substrate = if o.wire_faults {
        net_substrate(o)
    } else {
        Substrate::Engine
    };
    let spec = HuntSpec {
        proto,
        objective,
        params,
        cfg,
        zeros: o.zeros,
        budget: o.budget,
        probes: o.probes,
        seed: o.seed,
        jobs: o.jobs,
        strategy,
        substrate,
        wire: o.wire_faults,
    };
    let report = run_hunt(&spec)?;
    if let Some(w) = o.format.is_machine().then(|| {
        RowWriter::new(
            o.format,
            &["generation", "best_score", "hits", "champion_score"],
        )
    }) {
        let mut w = w;
        for g in &report.generations {
            w.emit(&[
                Value::UInt(g.generation),
                Value::Float(g.best_score),
                Value::UInt(g.hits),
                Value::Float(g.champion_score),
            ]);
        }
    }

    let champ = &report.champion;
    let reduced = shrink(
        &spec,
        &report.bounds,
        champ.probe_seed,
        champ.score,
        &champ.plan,
    );
    let mut art_cfg = spec.cfg.clone();
    art_cfg.seed = champ.probe_seed;
    let artifact = Artifact {
        version: ARTIFACT_VERSION,
        proto,
        objective,
        alpha: o.alpha,
        zeros: o.zeros,
        height: None,
        config: art_cfg,
        schedule: reduced.plan.clone(),
        wire: champ.wire.clone(),
        score: objective.score(&reduced.observation),
        hit: objective.hit(&reduced.observation, &report.bounds),
        fingerprint: reduced.observation.fingerprint.clone(),
    };
    // Cross-check before emitting: the artifact must replay bit-for-bit on
    // the engine and on the real channel runtime (PR-3 bit-equivalence) —
    // plus the hunted substrate itself when wire faults are on, so the
    // wire plan is re-applied where it was found.
    let mut check_on = vec![Substrate::Engine, Substrate::Channel(o.workers)];
    if o.wire_faults {
        check_on.push(substrate);
    }
    for substrate in check_on {
        let check = artifact.replay(substrate)?;
        if !check.ok() {
            return Err(format!(
                "hunted schedule does not replay on {}: {check:?}",
                substrate_name(substrate)
            ));
        }
    }
    if !o.format.is_machine() {
        println!(
            "hunt: proto={} objective={} strategy={} n={} alpha={} seed={}",
            proto.name(),
            objective.name(),
            strategy.name(),
            o.n,
            o.alpha,
            o.seed
        );
        println!(
            "  evaluated {} schedules in {} generations, {} hit the objective",
            report.evaluated,
            report.generations.len(),
            report.hits
        );
        println!(
            "  bounds: whp message bound {:.0}, round budget {}",
            report.bounds.message_bound, report.bounds.round_budget
        );
        println!(
            "  champion: score {} ({}) at trial {}, probe seed {}",
            champ.score,
            if artifact.hit {
                "counterexample"
            } else {
                "no counterexample"
            },
            champ.trial,
            champ.probe_seed
        );
        println!(
            "  shrunk: {} -> {} crash entries ({} reduction probes)",
            reduced.entries_before, reduced.entries_after, reduced.probes
        );
        if let Some(wire) = &artifact.wire {
            let (_, residue) = wire.degrade();
            println!(
                "  wire faults: {} entr{} on {} (engine residue: {})",
                wire.len(),
                if wire.len() == 1 { "y" } else { "ies" },
                substrate_name(substrate),
                if residue.is_empty() {
                    "none".to_string()
                } else {
                    residue.join("; ")
                }
            );
        }
        if o.wire_faults {
            println!(
                "  replay: engine ok, channel ok, {} ok",
                substrate_name(substrate)
            );
        } else {
            println!("  replay: engine ok, channel ok");
        }
    }
    if let Some(path) = &o.out {
        std::fs::write(path, artifact.render()).map_err(|e| format!("{path}: {e}"))?;
        if !o.format.is_machine() {
            println!("  artifact written to {path}");
        }
    }
    if o.expect_hit && !artifact.hit {
        return Err(format!(
            "--expect-hit: no counterexample found (champion score {})",
            artifact.score
        ));
    }
    if o.expect_empty && artifact.hit {
        return Err(format!(
            "--expect-empty: found a counterexample (objective {}, score {}, {} crash entries)",
            artifact.objective.name(),
            artifact.score,
            artifact.schedule.entries().len()
        ));
    }
    Ok(())
}

fn cmd_replay(o: &Opts) -> Result<(), String> {
    let path = o
        .positional
        .first()
        .ok_or("replay needs an artifact file: ftc replay <file>")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let artifact = Artifact::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let substrates = [Substrate::Engine, net_substrate(o)];
    let mut writer = o.format.is_machine().then(|| {
        RowWriter::new(
            o.format,
            &[
                "substrate",
                "fingerprint_ok",
                "verdict_ok",
                "success",
                "msgs",
                "rounds",
            ],
        )
    });
    let mut failures = 0u32;
    for substrate in substrates {
        let report = artifact.replay(substrate)?;
        if !report.ok() {
            failures += 1;
        }
        if let Some(w) = writer.as_mut() {
            w.emit(&[
                Value::Str(substrate_name(substrate).into()),
                Value::Bool(report.fingerprint_matches),
                Value::Bool(report.verdict_matches),
                Value::Bool(report.observation.fingerprint.success),
                Value::UInt(report.observation.fingerprint.msgs_sent),
                Value::UInt(u64::from(report.observation.fingerprint.rounds)),
            ]);
        } else {
            println!(
                "replay {} on {}: fingerprint {}, verdict {} (score {}, hit {})",
                path,
                substrate_name(substrate),
                if report.fingerprint_matches {
                    "reproduced"
                } else {
                    "DIVERGED"
                },
                if report.verdict_matches {
                    "reproduced"
                } else {
                    "DIVERGED"
                },
                artifact.score,
                artifact.hit
            );
        }
    }
    if failures > 0 {
        return Err(format!("{failures} replay substrate(s) diverged"));
    }
    Ok(())
}

/// Resolves `hunt portfolio run`'s argument: a registry name, or a path
/// to a JSON portfolio spec.
fn resolve_hunt_spec(arg: &str, smoke: bool) -> Result<HuntCampaignSpec, String> {
    if let Some(spec) = ftc::chaos::campaigns::named(arg, smoke) {
        return Ok(spec);
    }
    if std::path::Path::new(arg).exists() {
        let text = std::fs::read_to_string(arg).map_err(|e| format!("{arg}: {e}"))?;
        let json = ftc::sim::json::Json::parse(&text).map_err(|e| format!("{arg}: {e}"))?;
        return HuntCampaignSpec::from_json(&json).map_err(|e| format!("{arg}: {e}"));
    }
    Err(format!(
        "`{arg}` is neither a known portfolio ({}) nor a spec file",
        ftc::chaos::campaigns::names().join("|")
    ))
}

/// A portfolio-record argument: a file path if one exists there, else a
/// store id or unique prefix (matched against `hunt`-kind records only).
fn load_hunt_record_arg(store: &Store, arg: &str) -> Result<HuntCampaignRecord, String> {
    let read = |path: &std::path::Path| -> Result<HuntCampaignRecord, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        HuntCampaignRecord::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    };
    let path = std::path::Path::new(arg);
    if path.exists() {
        return read(path);
    }
    let matches: Vec<String> = store
        .list()
        .map_err(|e| e.to_string())?
        .into_iter()
        .filter(|e| e.kind == "hunt" && e.id.starts_with(arg))
        .map(|e| e.id)
        .collect();
    match matches.len() {
        1 => read(&store.dir().join(format!("{}.json", matches[0]))),
        0 => Err(format!(
            "no portfolio record matching `{arg}` in {}",
            store.dir().display()
        )),
        k => Err(format!(
            "`{arg}` is ambiguous ({k} portfolio records match)"
        )),
    }
}

fn print_hunt_record(record: &HuntCampaignRecord, format: Format) {
    if format == Format::Json {
        println!("{}", record.to_json(true).render());
        return;
    }
    println!(
        "portfolio {} (spec {}, git {})",
        record.spec.name, record.spec_hash, record.git_rev
    );
    println!(
        "  {:<28} {:>9} {:>6} {:>12} {:>5} {:>7} {:>8}",
        "cell", "evaluated", "hits", "score", "hit", "shrunk", "wall_s"
    );
    for c in &record.cells {
        println!(
            "  {:<28} {:>9} {:>6} {:>12.1} {:>5} {:>3}->{:<3} {:>8.2}",
            c.cell.label,
            c.evaluated,
            c.hits,
            c.artifact.score,
            if c.artifact.hit { "HIT" } else { "-" },
            c.entries_before,
            c.entries_after,
            c.wall_s
        );
    }
    println!(
        "  coverage: {}/{} schedule-space buckets ({:.1}%), {} crash entries explored",
        record.coverage.covered(),
        ftc::chaos::coverage::BUCKETS,
        record.coverage.fraction() * 100.0,
        record.coverage.entries()
    );
}

/// `ftc hunt portfolio <run|gate>`: campaign-scale adversary search.
fn cmd_hunt_portfolio(o: &Opts) -> Result<(), String> {
    let verb = o
        .positional
        .get(1)
        .ok_or("hunt portfolio needs a verb: ftc hunt portfolio <run|gate> ...")?;
    let store = Store::at(&o.store);
    match verb.as_str() {
        "run" => {
            let arg = o
                .positional
                .get(2)
                .ok_or("hunt portfolio run needs a portfolio name or spec file")?;
            let spec = resolve_hunt_spec(arg, o.smoke)?;
            let record = run_hunt_campaign(&spec, o.jobs)?;
            let id = record.id();
            store
                .put_rendered(&id, &record.to_json(true).render())
                .map_err(|e| e.to_string())?;
            print_hunt_record(&record, o.format);
            if o.format != Format::Json {
                println!("  stored as {id} in {}", store.dir().display());
            }
            if let Some(floor) = o.min_coverage {
                if record.coverage.fraction() < floor {
                    return Err(format!(
                        "--min-coverage: explored {:.3} of schedule space, floor is {floor}",
                        record.coverage.fraction()
                    ));
                }
            }
            if o.expect_hit && record.hits() == 0 {
                return Err("--expect-hit: no cell found a counterexample".into());
            }
            if o.expect_empty && record.hits() > 0 {
                let hits: Vec<&str> = record
                    .cells
                    .iter()
                    .filter(|c| c.hits > 0)
                    .map(|c| c.cell.label.as_str())
                    .collect();
                return Err(format!(
                    "--expect-empty: {} cell(s) found counterexamples: {}",
                    hits.len(),
                    hits.join(", ")
                ));
            }
            Ok(())
        }
        "gate" => {
            let base = load_hunt_record_arg(
                &store,
                &o.positional
                    .get(2)
                    .cloned()
                    .ok_or("hunt portfolio gate needs a record id or file")?,
            )?;
            let fresh = run_hunt_campaign(&base.spec, o.jobs)?;
            if fresh.deterministic_render() == base.deterministic_render() {
                println!(
                    "ok: portfolio {} reproduced bit-for-bit ({} cells, coverage {:.1}%)",
                    base.id(),
                    base.cells.len(),
                    base.coverage.fraction() * 100.0
                );
                Ok(())
            } else {
                Err(format!(
                    "portfolio drifted from baseline {}: fresh deterministic id is {}",
                    base.id(),
                    fresh.id()
                ))
            }
        }
        other => Err(format!("unknown hunt portfolio verb {other} (run|gate)")),
    }
}

/// Parses `--substrate engine|channel[:W]|tcp[:W]|mesh[:P]` for `lab run`.
fn parse_substrate(s: &str) -> Result<LabSubstrate, String> {
    let (kind, workers) = match s.split_once(':') {
        Some((k, w)) => (
            k,
            w.parse::<usize>()
                .map_err(|e| format!("--substrate workers: {e}"))?,
        ),
        None => (s, 4),
    };
    if kind != "engine" && workers == 0 {
        return Err("--substrate workers must be at least 1".into());
    }
    match kind {
        "engine" => Ok(LabSubstrate::Engine),
        "channel" => Ok(LabSubstrate::Channel(workers)),
        "tcp" => Ok(LabSubstrate::Tcp(workers)),
        "mesh" => Ok(LabSubstrate::Mesh(workers)),
        other => Err(format!(
            "unknown substrate {other} (engine|channel[:W]|tcp[:W]|mesh[:P])"
        )),
    }
}

/// The substrate the `lab` verbs run on: `--substrate`, upgraded to the
/// sharded engine when `--intra-jobs J` asks for intra-trial parallelism.
fn lab_substrate(o: &Opts) -> Result<LabSubstrate, String> {
    let substrate = parse_substrate(&o.substrate)?;
    if o.intra_jobs <= 1 {
        return Ok(substrate);
    }
    match substrate {
        LabSubstrate::Engine => Ok(LabSubstrate::EngineSharded(o.intra_jobs)),
        other => Err(format!(
            "--intra-jobs shards the engine substrate only (got {})",
            other.name()
        )),
    }
}

/// Resolves `lab run`'s campaign argument: a registry name, or a path to
/// a JSON spec file.
fn resolve_spec(arg: &str, smoke: bool) -> Result<CampaignSpec, String> {
    if let Some(spec) = ftc::lab::campaigns::named(arg, smoke) {
        return Ok(spec);
    }
    if std::path::Path::new(arg).exists() {
        let text = std::fs::read_to_string(arg).map_err(|e| format!("{arg}: {e}"))?;
        let json = ftc::sim::json::Json::parse(&text).map_err(|e| format!("{arg}: {e}"))?;
        return CampaignSpec::from_json(&json).map_err(|e| format!("{arg}: {e}"));
    }
    Err(format!(
        "`{arg}` is neither a known campaign ({}) nor a spec file",
        ftc::lab::campaigns::names().join("|")
    ))
}

fn print_record(record: &CampaignRecord, format: Format) {
    if format == Format::Json {
        println!("{}", record.to_json(true).render());
        return;
    }
    println!(
        "campaign {} (spec {}, substrate {}, git {})",
        record.spec.name, record.spec_hash, record.substrate, record.git_rev
    );
    println!(
        "  {:<16} {:>6} {:>6} {:>8} {:>12} {:>12} {:>12} {:>7} {:>8}",
        "cell", "n", "alpha", "success", "msgs.mean", "msgs.median", "msgs.p95", "rounds", "wall_s"
    );
    for c in &record.cells {
        println!(
            "  {:<16} {:>6} {:>6} {:>7.0}% {:>12.0} {:>12.0} {:>12.0} {:>7.1} {:>8.2}",
            c.cell.label,
            c.cell.n,
            c.cell.alpha,
            c.success_rate() * 100.0,
            c.msgs.mean,
            c.msgs.median,
            c.msgs.p95,
            c.rounds.mean,
            c.wall_s
        );
    }
    for c in &record.checks {
        println!(
            "  check {}: exponent {} in [{}, {}] -> {}",
            c.check.name,
            c.exponent
                .map_or("unfittable".into(), |e| format!("{e:.3}")),
            c.check.min,
            c.check.max,
            if c.pass { "pass" } else { "FAIL" }
        );
    }
}

/// `ftc lab <run|list|show|diff|gate|baseline|perf>`.
fn cmd_lab(o: &Opts) -> Result<(), String> {
    let verb = o
        .positional
        .first()
        .ok_or("lab needs a verb: ftc lab <run|list|show|diff|gate|baseline|perf>")?;
    let store = Store::at(&o.store);
    let arg = |k: usize, what: &str| {
        o.positional
            .get(k)
            .cloned()
            .ok_or_else(|| format!("lab {verb} needs {what}"))
    };
    match verb.as_str() {
        "run" => {
            let spec = resolve_spec(&arg(1, "a campaign name or spec file")?, o.smoke)?;
            let substrate = lab_substrate(o)?;
            let record = run_campaign(&spec, o.jobs, substrate)?;
            let id = store.put(&record).map_err(|e| e.to_string())?;
            print_record(&record, o.format);
            if o.format != Format::Json {
                println!("  stored as {id} in {}", store.dir().display());
            }
            if record.checks.iter().any(|c| !c.pass) {
                return Err("one or more exponent checks failed".into());
            }
            Ok(())
        }
        "list" => {
            let entries: Vec<_> = store
                .list()
                .map_err(|e| e.to_string())?
                .into_iter()
                .filter(|e| o.kind.as_deref().is_none_or(|k| e.kind == k))
                .collect();
            let mut w = o.format.is_machine().then(|| {
                RowWriter::new(
                    o.format,
                    &["id", "kind", "spec_hash", "cells", "git_rev", "wall_s"],
                )
            });
            for e in &entries {
                if let Some(w) = w.as_mut() {
                    w.emit(&[
                        Value::Str(e.id.clone()),
                        Value::Str(e.kind.clone()),
                        Value::Str(e.spec_hash.clone()),
                        Value::UInt(e.cells as u64),
                        Value::Str(e.git_rev.clone()),
                        Value::Float(e.wall_s),
                    ]);
                } else {
                    println!(
                        "{}  [{}]  spec {}  {} cells  git {}  {:.2}s",
                        e.id, e.kind, e.spec_hash, e.cells, e.git_rev, e.wall_s
                    );
                }
            }
            if entries.is_empty() && !o.format.is_machine() {
                println!("no records in {}", store.dir().display());
            }
            Ok(())
        }
        "show" => {
            let record = store
                .resolve(&arg(1, "a record id (or unique prefix)")?)
                .map_err(|e| e.to_string())?;
            print_record(&record, o.format);
            Ok(())
        }
        "diff" => {
            let base = load_record_arg(&store, &arg(1, "a baseline record")?)?;
            let fresh = load_record_arg(&store, &arg(2, "a fresh record")?)?;
            let tol = o.tolerance.map_or_else(Tolerance::exact, Tolerance::banded);
            report_diff(&base, &fresh, &tol)
        }
        "gate" => {
            let base = load_record_arg(&store, &arg(1, "a baseline record or file")?)?;
            let substrate = lab_substrate(o)?;
            let fresh = run_campaign(&base.spec, o.jobs, substrate)?;
            let tol = o.tolerance.map_or_else(Tolerance::exact, Tolerance::banded);
            report_diff(&base, &fresh, &tol)
        }
        "baseline" => {
            let dir = std::path::Path::new(o.out.as_deref().unwrap_or("."));
            std::fs::create_dir_all(dir).map_err(|e| format!("--out {}: {e}", dir.display()))?;
            let only = o.positional.get(1);
            let all = [
                ("le-scaling", ftc::lab::baseline::BENCH_LE),
                ("agree-scaling", ftc::lab::baseline::BENCH_AGREE),
                ("engine-bench", ftc::lab::baseline::BENCH_ENGINE),
                ("scale-bench", ftc::lab::baseline::BENCH_ENGINE),
                ("wire-throughput", ftc::lab::baseline::BENCH_ENGINE),
            ];
            if let Some(name) = only {
                if !all.iter().any(|(n, _)| n == name) {
                    return Err(format!(
                        "lab baseline: unknown campaign {name} \
                         (le-scaling|agree-scaling|engine-bench|scale-bench|wire-throughput)"
                    ));
                }
            }
            // Trajectories are throughput history per substrate:
            // wire-throughput records the mesh, everything else the
            // engine — the cluster substrates would otherwise record
            // wall clocks of a different machine shape entirely.
            let substrate = match lab_substrate(o)? {
                s @ (LabSubstrate::Engine | LabSubstrate::EngineSharded(_)) => s,
                s @ LabSubstrate::Mesh(_) if only.is_some_and(|n| n == "wire-throughput") => s,
                other => {
                    return Err(format!(
                        "lab baseline records engine trajectories (or mesh, for \
                         wire-throughput only); got {}",
                        other.name()
                    ))
                }
            };
            for (name, file) in all {
                if only.is_some_and(|n| n != name) {
                    continue;
                }
                // The wire-throughput baseline always measures the mesh;
                // two procs by default — the multiplexing is what is
                // measured, not parallelism.
                let substrate = match (name, substrate) {
                    ("wire-throughput", s @ LabSubstrate::Mesh(_)) => s,
                    ("wire-throughput", _) => LabSubstrate::Mesh(2),
                    (_, s) => s,
                };
                let spec = ftc::lab::campaigns::named(name, o.smoke).expect("registry name");
                let record = run_campaign(&spec, o.jobs, substrate)?;
                let id = store.put(&record).map_err(|e| e.to_string())?;
                let path = dir.join(file);
                let entries =
                    ftc::lab::baseline::export(&record, &path).map_err(|e| e.to_string())?;
                print_record(&record, o.format);
                if o.format != Format::Json {
                    println!(
                        "  stored as {id}; {} now holds {entries} entr{}",
                        path.display(),
                        if entries == 1 { "y" } else { "ies" }
                    );
                }
                if record.checks.iter().any(|c| !c.pass) {
                    return Err(format!("exponent check failed in {name}"));
                }
            }
            Ok(())
        }
        "perf" => {
            let path =
                std::path::PathBuf::from(arg(1, "a trajectory file (e.g. BENCH_engine.json)")?);
            let entry = match &o.campaign {
                Some(name) => ftc::lab::baseline::latest_entry_named(&path, name),
                None => ftc::lab::baseline::latest_entry(&path),
            }
            .map_err(|e| format!("{}: {e}", path.display()))?;
            let name = entry
                .field("name")
                .and_then(ftc::sim::json::Json::as_str)
                .map_err(|e| format!("{}: {e}", path.display()))?
                .to_string();
            let base_hash = entry
                .field("spec_hash")
                .and_then(ftc::sim::json::Json::as_str)
                .map_err(|e| format!("{}: {e}", path.display()))?
                .to_string();
            // The committed trajectory may be at either scale; pick the
            // registry variant whose spec hash matches the entry.
            let spec = [false, true]
                .into_iter()
                .filter_map(|smoke| ftc::lab::campaigns::named(&name, smoke))
                .find(|s| s.hash() == base_hash)
                .ok_or_else(|| {
                    format!(
                        "baseline campaign {name} (spec {base_hash}) is not in the registry at \
                         either scale — regenerate the trajectory with ftc lab baseline"
                    )
                })?;
            let substrate = match lab_substrate(o)? {
                s @ (LabSubstrate::Engine
                | LabSubstrate::EngineSharded(_)
                | LabSubstrate::Mesh(_)) => s,
                other => {
                    return Err(format!(
                        "lab perf gates the engine and mesh substrates only (got {})",
                        other.name()
                    ))
                }
            };
            let fresh = run_campaign(&spec, o.jobs, substrate)?;
            store.put(&fresh).map_err(|e| e.to_string())?;
            let tolerance = o.tolerance.unwrap_or(0.2);
            let mut report = ftc::lab::baseline::perf_gate(&entry, &fresh, tolerance)?;
            if !report.pass() && report.mismatches.is_empty() {
                // Throughput shortfall with matching payloads can be a
                // scheduling hiccup rather than a regression: re-run once
                // and gate on each cell's best of the two runs. A real
                // hot-path regression fails both.
                eprintln!("throughput below floor; re-running once to rule out transient noise");
                let retry = run_campaign(&spec, o.jobs, substrate)?;
                let mut best = fresh.clone();
                for (b, r) in best.cells.iter_mut().zip(&retry.cells) {
                    if r.throughput() > b.throughput() {
                        b.wall_s = r.wall_s;
                    }
                }
                report = ftc::lab::baseline::perf_gate(&entry, &best, tolerance)?;
            }
            for c in &report.cells {
                println!(
                    "{} {:>6}  base {:>8.2}/s  fresh {:>8.2}/s  ratio {:.3}{}",
                    c.label,
                    c.n,
                    c.base_tps,
                    c.fresh_tps,
                    c.ratio,
                    if c.pass { "" } else { "  REGRESSED" }
                );
            }
            println!(
                "median ratio {:.3} (machine-speed estimate); floor {:.3}",
                report.median_ratio,
                report.median_ratio * (1.0 - tolerance)
            );
            for m in &report.mismatches {
                eprintln!("drift: {m}");
            }
            if report.pass() {
                println!(
                    "ok: {} cells within {:.0}% of the median ratio",
                    report.cells.len(),
                    tolerance * 100.0
                );
                Ok(())
            } else {
                Err(format!(
                    "perf gate failed: {} regressed cell(s), {} deterministic mismatch(es)",
                    report.cells.iter().filter(|c| !c.pass).count(),
                    report.mismatches.len()
                ))
            }
        }
        other => Err(format!(
            "unknown lab verb {other} (run|list|show|diff|gate|baseline|perf)"
        )),
    }
}

/// A record argument: a file path if one exists there, else a store id.
fn load_record_arg(store: &Store, arg: &str) -> Result<CampaignRecord, String> {
    let path = std::path::Path::new(arg);
    if path.exists() {
        Store::load_path(path).map_err(|e| format!("{arg}: {e}"))
    } else {
        store.resolve(arg).map_err(|e| e.to_string())
    }
}

fn report_diff(
    base: &CampaignRecord,
    fresh: &CampaignRecord,
    tol: &Tolerance,
) -> Result<(), String> {
    let report = diff_records(base, fresh, tol)?;
    if report.ok() {
        println!(
            "ok: {} cells agree{}",
            report.cells.len(),
            if tol.exact {
                " bit-for-bit"
            } else {
                " within tolerance"
            }
        );
        Ok(())
    } else {
        for line in report.lines() {
            eprintln!("drift: {line}");
        }
        Err(format!(
            "{} mismatch(es) against baseline {}",
            report.lines().len(),
            base.id()
        ))
    }
}

fn usage() -> &'static str {
    "usage: ftc <le|agree|sweep|trace|cluster|serve|loadgen|hunt|replay> [--n N] [--alpha A] \
     [--seed S] [--trials T] [--zeros Z] \
     [--adversary none|eager|random|targeted] [--topology complete|diam2:<c>|rr:<d>] \
     [--caps c1,c2,none] \
     [--format human|csv|json] [--csv] [--jobs J] [--proto le|agree] \
     [--transport tcp|channel|mesh] [--workers W] [--procs P] [--recv-timeout SECS] \
     [--objective two-leaders|disagreement|failure|max-messages|max-rounds] \
     [--strategy random|guided|anneal] [--budget B] [--probes P] [--out FILE] \
     [--wire-faults] [--expect-hit|--expect-empty]\n\
     ftc hunt portfolio run <name|spec.json> [--smoke] [--jobs J] [--store DIR] \
     [--min-coverage F] [--expect-hit|--expect-empty] [--format human|json]\n\
     ftc hunt portfolio gate <record|file> [--jobs J] [--store DIR]\n\
     ftc serve   [--n N] [--alpha A] [--seed S] [--heights H] [--kill-every K] \
     [--bystanders B] [--rejoin-after R] [--window W] [--substrate engine|channel:W|tcp:W|mesh:P] \
     [--inject-split-brain H] [--out DIR] [--format human|csv|json]\n\
     ftc loadgen [--n N] [--heights H] [--arrivals A] [--capacity C] [--window W] \
     [--kill-every K] [--format human|csv|json]\n\
     ftc replay <artifact.json> [--transport tcp|channel|mesh] [--workers W] [--procs P]\n\
     ftc lab run <campaign|spec.json> [--smoke] [--jobs J] [--intra-jobs J] [--store DIR] \
     [--substrate engine|channel:W|tcp:W|mesh:P] [--format human|json]\n\
     ftc lab list [--kind lab|hunt] [--store DIR]\n\
     ftc lab show <id> [--store DIR]\n\
     ftc lab diff <baseline> <fresh> [--tolerance F]\n\
     ftc lab gate <baseline> [--jobs J] [--tolerance F]\n\
     ftc lab baseline [NAME] [--smoke] [--jobs J] [--intra-jobs J] [--out DIR]\n\
     ftc lab perf <trajectory.json> [--campaign NAME] [--jobs J] [--intra-jobs J] [--tolerance F]"
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    let opts = match parse_opts(&args[1..]) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n{}", usage());
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "le" => cmd_le(&opts),
        "agree" => cmd_agree(&opts),
        "sweep" => cmd_sweep(&opts),
        "trace" => cmd_trace(&opts),
        "cluster" => cmd_cluster(&opts),
        "serve" => cmd_serve(&opts),
        "loadgen" => cmd_loadgen(&opts),
        "hunt" => cmd_hunt(&opts),
        "replay" => cmd_replay(&opts),
        "lab" => cmd_lab(&opts),
        other => Err(format!("unknown command {other}\n{}", usage())),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn defaults_apply_without_flags() {
        let o = parse_opts(&[]).unwrap();
        assert_eq!(o.n, 1024);
        assert_eq!(o.adversary, "random");
        assert_eq!(o.format, Format::Human);
        assert_eq!(o.transport, "tcp");
        assert_eq!(o.workers, 4);
    }

    #[test]
    fn flags_override_defaults() {
        let o = parse_opts(&args(
            "--n 256 --alpha 0.25 --trials 3 --format json --adversary eager",
        ))
        .unwrap();
        assert_eq!(o.n, 256);
        assert_eq!(o.alpha, 0.25);
        assert_eq!(o.trials, 3);
        assert_eq!(o.format, Format::Json);
        assert_eq!(o.adversary, "eager");
    }

    #[test]
    fn serve_flags_parse_and_validate() {
        let o = parse_opts(&args(
            "--heights 50 --kill-every 5 --bystanders 1 --rejoin-after 2 \
             --window 8 --arrivals 3 --capacity 6 --inject-split-brain 7",
        ))
        .unwrap();
        assert_eq!(o.heights, 50);
        assert_eq!(o.kill_every, 5);
        assert_eq!(o.bystanders, 1);
        assert_eq!(o.rejoin_after, 2);
        assert_eq!(o.window, 8);
        assert_eq!(o.arrivals, 3);
        assert_eq!(o.capacity, 6);
        assert_eq!(o.inject_split_brain, Some(7));
        // Defaults: monitor armed, no injection.
        let d = parse_opts(&[]).unwrap();
        assert_eq!(d.heights, 20);
        assert_eq!(d.inject_split_brain, None);
        // A service with zero heights or a zero-size window is meaningless.
        assert!(parse_opts(&args("--heights 0")).is_err());
        assert!(parse_opts(&args("--window 0")).is_err());
        assert!(parse_opts(&args("--capacity 0")).is_err());
    }

    #[test]
    fn split_brain_injection_past_the_last_height_is_rejected() {
        let o = parse_opts(&args("--n 16 --heights 4 --inject-split-brain 9")).unwrap();
        assert!(serve_config(&o)
            .unwrap_err()
            .contains("past the last height"));
    }

    #[test]
    fn topology_flag_parses_and_is_validated_against_n() {
        let o = parse_opts(&args("--n 128 --topology diam2:6")).unwrap();
        assert_eq!(o.topology, Topology::DiameterTwo { clusters: 6 });
        assert!(with_topology(&o, SimConfig::new(o.n)).is_ok());
        let o = parse_opts(&args("--n 128 --topology rr:8")).unwrap();
        assert_eq!(o.topology, Topology::RandomRegular { d: 8 });
        assert_eq!(
            parse_opts(&[]).unwrap().topology,
            Topology::Complete,
            "the paper's model stays the default"
        );
        // Junk shapes die at parse time, impossible parameters at
        // config time — with the ConfigError's context, not a panic.
        assert!(parse_opts(&args("--topology torus")).is_err());
        assert!(parse_opts(&args("--topology rr:x")).is_err());
        let o = parse_opts(&args("--n 8 --topology rr:9")).unwrap();
        let err = with_topology(&o, SimConfig::new(o.n)).unwrap_err();
        assert!(err.contains("degree"), "{err}");
    }

    #[test]
    fn csv_flag_is_an_alias_for_format_csv() {
        let o = parse_opts(&args("--csv")).unwrap();
        assert_eq!(o.format, Format::Csv);
        assert!(parse_opts(&args("--format xml")).is_err());
    }

    #[test]
    fn cluster_flags_are_validated_at_parse_time() {
        let o = parse_opts(&args("--proto agree --transport channel --workers 2")).unwrap();
        assert_eq!(o.proto, "agree");
        assert_eq!(o.transport, "channel");
        assert_eq!(o.workers, 2);
        assert!(parse_opts(&args("--proto paxos")).is_err());
        assert!(parse_opts(&args("--transport carrier-pigeon")).is_err());
        assert!(parse_opts(&args("--workers 0")).is_err());
    }

    #[test]
    fn recv_timeout_parses_seconds_and_rejects_nonsense() {
        assert_eq!(parse_opts(&args("")).unwrap().recv_timeout, RECV_TIMEOUT);
        let o = parse_opts(&args("--recv-timeout 5")).unwrap();
        assert_eq!(o.recv_timeout, Duration::from_secs(5));
        let o = parse_opts(&args("--recv-timeout 0.25")).unwrap();
        assert_eq!(o.recv_timeout, Duration::from_millis(250));
        assert!(parse_opts(&args("--recv-timeout 0")).is_err());
        assert!(parse_opts(&args("--recv-timeout -3")).is_err());
        assert!(parse_opts(&args("--recv-timeout soon")).is_err());
    }

    #[test]
    fn caps_parse_with_none() {
        let o = parse_opts(&args("--caps none,64,1")).unwrap();
        assert_eq!(o.caps, vec![None, Some(64), Some(1)]);
    }

    #[test]
    fn unknown_flag_is_an_error() {
        assert!(parse_opts(&args("--bogus 1")).is_err());
        assert!(parse_opts(&args("--n")).is_err());
    }

    #[test]
    fn zero_trials_and_zero_jobs_are_rejected_at_parse_time() {
        let err = parse_opts(&args("--trials 0")).unwrap_err();
        assert!(err.contains("--trials"), "{err}");
        let err = parse_opts(&args("--jobs 0")).unwrap_err();
        assert!(err.contains("--jobs"), "{err}");
        assert!(parse_opts(&args("--trials 1 --jobs 1")).is_ok());
    }

    #[test]
    fn hunt_flags_parse_and_validate() {
        let o = parse_opts(&args(
            "--objective max-messages --strategy anneal --budget 32 --probes 2 --out /tmp/a.json",
        ))
        .unwrap();
        assert_eq!(o.objective, "max-messages");
        assert_eq!(o.strategy, "anneal");
        assert_eq!(o.budget, 32);
        assert_eq!(o.probes, 2);
        assert_eq!(o.out.as_deref(), Some("/tmp/a.json"));
        assert!(parse_opts(&args("--objective world-peace")).is_err());
        assert!(parse_opts(&args("--strategy bfs")).is_err());
        assert!(parse_opts(&args("--budget 0")).is_err());
        assert!(parse_opts(&args("--probes 0")).is_err());
    }

    #[test]
    fn positional_arguments_are_collected() {
        let o = parse_opts(&args("results/ce.json --workers 2")).unwrap();
        assert_eq!(o.positional, vec!["results/ce.json".to_string()]);
        assert_eq!(o.workers, 2);
    }

    #[test]
    fn end_to_end_hunt_then_replay() {
        let out = std::env::temp_dir().join(format!("ftc-hunt-cli-{}.json", std::process::id()));
        let o = Opts {
            n: 16,
            alpha: 0.5,
            seed: 9,
            budget: 8,
            probes: 1,
            proto: "le".into(),
            objective: "max-messages".into(),
            transport: "channel".into(),
            workers: 2,
            jobs: 1,
            out: Some(out.to_string_lossy().into_owned()),
            ..Opts::default()
        };
        cmd_hunt(&o).unwrap();
        let replay = Opts {
            positional: vec![out.to_string_lossy().into_owned()],
            ..o
        };
        cmd_replay(&replay).unwrap();
        let _ = std::fs::remove_file(&out);
    }

    #[test]
    fn replay_of_a_missing_file_is_a_clean_error() {
        let o = Opts {
            positional: vec!["/nonexistent/ce.json".into()],
            ..Opts::default()
        };
        assert!(cmd_replay(&o).is_err());
        // No positional argument at all.
        assert!(cmd_replay(&Opts::default()).is_err());
    }

    #[test]
    fn adversary_factories_validate_names() {
        assert!(le_adversary("random", 3).is_ok());
        assert!(le_adversary("martian", 3).is_err());
        assert!(agree_adversary("targeted", 3).is_ok());
        assert!(agree_adversary("martian", 3).is_err());
    }

    #[test]
    fn end_to_end_small_le_run() {
        let o = Opts {
            n: 128,
            alpha: 0.5,
            trials: 2,
            ..Opts::default()
        };
        cmd_le(&o).unwrap();
        cmd_agree(&o).unwrap();
    }

    #[test]
    fn end_to_end_small_cluster_run_over_channels() {
        let o = Opts {
            n: 16,
            alpha: 0.5,
            trials: 2,
            transport: "channel".into(),
            workers: 2,
            adversary: "eager".into(),
            ..Opts::default()
        };
        cmd_cluster(&o).unwrap();
        let agree = Opts {
            proto: "agree".into(),
            ..o
        };
        cmd_cluster(&agree).unwrap();
    }

    #[test]
    fn expectation_flags_parse_and_exclude_each_other() {
        let o = parse_opts(&args("--expect-hit")).unwrap();
        assert!(o.expect_hit && !o.expect_empty);
        let o = parse_opts(&args("--expect-empty")).unwrap();
        assert!(o.expect_empty && !o.expect_hit);
        assert!(parse_opts(&args("--expect-hit --expect-empty")).is_err());
        assert!(parse_opts(&args("--expect-empty --expect-hit")).is_err());
        assert!(parse_opts(&args("--wire-faults")).unwrap().wire_faults);
    }

    #[test]
    fn coverage_and_kind_flags_validate_their_values() {
        let o = parse_opts(&args("--min-coverage 0.25")).unwrap();
        assert_eq!(o.min_coverage, Some(0.25));
        assert!(parse_opts(&args("--min-coverage 1.5")).is_err());
        assert!(parse_opts(&args("--min-coverage -0.1")).is_err());
        assert_eq!(
            parse_opts(&args("--kind hunt")).unwrap().kind.as_deref(),
            Some("hunt")
        );
        assert_eq!(
            parse_opts(&args("--kind lab")).unwrap().kind.as_deref(),
            Some("lab")
        );
        assert!(parse_opts(&args("--kind martian")).is_err());
    }

    #[test]
    fn end_to_end_portfolio_run_and_gate() {
        let dir = std::env::temp_dir().join(format!("ftc-portfolio-cli-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // A one-cell portfolio file keeps this test fast while still
        // driving spec resolution, the store round-trip, and the gate.
        let spec = ftc::chaos::prelude::HuntCampaignSpec::new("cli-unit").cell(
            ftc::chaos::prelude::HuntCellSpec {
                label: "le-msgs".into(),
                proto: ProtoKind::Le,
                objective: Objective::MaxMessages,
                strategy: Strategy::Random,
                n: 16,
                alpha: 0.5,
                zeros: 0.05,
                budget: 4,
                probes: 1,
                seed: 9,
                wire: false,
            },
        );
        std::fs::create_dir_all(&dir).unwrap();
        let spec_path = dir.join("spec.json");
        std::fs::write(&spec_path, spec.to_json().render()).unwrap();
        let store = dir.join("store");
        let o = Opts {
            positional: vec![
                "portfolio".into(),
                "run".into(),
                spec_path.to_string_lossy().into_owned(),
            ],
            store: store.to_string_lossy().into_owned(),
            jobs: 2,
            min_coverage: Some(0.01),
            expect_hit: true,
            ..Opts::default()
        };
        cmd_hunt(&o).unwrap();
        // The stored record gates clean against a fresh re-run, by id prefix.
        let gate = Opts {
            positional: vec!["portfolio".into(), "gate".into(), "cli-unit".into()],
            store: store.to_string_lossy().into_owned(),
            ..Opts::default()
        };
        cmd_hunt(&gate).unwrap();
        // An unknown portfolio name is a clean error naming the registry.
        let bad = Opts {
            positional: vec!["portfolio".into(), "run".into(), "martian".into()],
            store: store.to_string_lossy().into_owned(),
            ..Opts::default()
        };
        let err = cmd_hunt(&bad).unwrap_err();
        assert!(err.contains("adversary-portfolio"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn invalid_cluster_params_fail_fast_with_a_clear_error() {
        // n below the model minimum.
        let o = Opts {
            n: 1,
            transport: "channel".into(),
            ..Opts::default()
        };
        let err = cmd_cluster(&o).unwrap_err();
        assert!(err.contains("at least two"), "{err}");
        // alpha below the paper's log²n/n floor.
        let o = Opts {
            n: 1024,
            alpha: 0.001,
            transport: "channel".into(),
            ..Opts::default()
        };
        let err = cmd_cluster(&o).unwrap_err();
        assert!(err.to_lowercase().contains("alpha"), "{err}");
    }
}
