//! Machine-readable result rows shared by every `ftc` subcommand.
//!
//! Simulator runs (`le`, `agree`, `sweep`) and cluster runs (`cluster`)
//! emit the same row shapes through one [`RowWriter`], so downstream
//! tooling parses one format regardless of the execution substrate. Two
//! machine formats are supported: CSV (header row + comma-joined values)
//! and JSON Lines (one object per row, keys = column names).

use std::fmt;

use ftc_sim::stats::Summary;

/// Output format of a subcommand.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Format {
    /// Human-oriented summary prose (the default).
    #[default]
    Human,
    /// Comma-separated values with a header row.
    Csv,
    /// JSON Lines: one JSON object per row.
    Json,
}

impl Format {
    /// Parses a `--format` argument.
    pub fn parse(s: &str) -> Result<Format, String> {
        match s {
            "human" => Ok(Format::Human),
            "csv" => Ok(Format::Csv),
            "json" => Ok(Format::Json),
            other => Err(format!("unknown format {other} (human|csv|json)")),
        }
    }

    /// Whether this format emits per-trial rows (vs. a prose summary).
    pub fn is_machine(self) -> bool {
        self != Format::Human
    }
}

/// One cell of a result row.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// A boolean flag (CSV: `true`/`false`).
    Bool(bool),
    /// A signed integer (sentinels like `-1` included).
    Int(i64),
    /// An unsigned counter.
    UInt(u64),
    /// A float, printed with full precision.
    Float(f64),
    /// A short identifier-like string.
    Str(String),
}

impl fmt::Display for Value {
    /// CSV rendering.
    ///
    /// Non-finite floats render as an empty field — the CSV idiom for
    /// "no value" — matching the `null` the JSON rendering emits, so the
    /// two machine formats agree on which cells carry data. Strings
    /// containing a comma, quote or line break are quoted RFC 4180-style
    /// (wrapped in `"`, embedded `"` doubled), so no producer can corrupt
    /// a row.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::UInt(u) => write!(f, "{u}"),
            Value::Float(x) if x.is_finite() => write!(f, "{x}"),
            Value::Float(_) => Ok(()),
            Value::Str(s) if s.contains(['"', ',', '\n', '\r']) => {
                write!(f, "\"{}\"", s.replace('"', "\"\""))
            }
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl Value {
    /// JSON rendering of this cell.
    fn to_json(&self) -> String {
        match self {
            Value::Bool(b) => b.to_string(),
            Value::Int(i) => i.to_string(),
            Value::UInt(u) => u.to_string(),
            Value::Float(x) if x.is_finite() => x.to_string(),
            Value::Float(_) => "null".into(),
            Value::Str(s) => {
                let mut out = String::with_capacity(s.len() + 2);
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            out.push_str(&format!("\\u{:04x}", c as u32));
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
                out
            }
        }
    }
}

/// Renders result rows in a fixed column order, in CSV or JSON Lines.
#[derive(Debug)]
pub struct RowWriter {
    format: Format,
    columns: Vec<&'static str>,
    header_pending: bool,
}

impl RowWriter {
    /// A writer for rows of the given `columns`.
    pub fn new(format: Format, columns: &[&'static str]) -> Self {
        RowWriter {
            format,
            columns: columns.to_vec(),
            header_pending: format == Format::Csv,
        }
    }

    /// Renders one row. The first CSV row is preceded by the header line.
    ///
    /// # Panics
    ///
    /// Panics if `values` does not match the column count, or if called on
    /// a [`Format::Human`] writer (human output is free-form prose, not
    /// rows).
    pub fn render(&mut self, values: &[Value]) -> String {
        assert_eq!(
            values.len(),
            self.columns.len(),
            "row shape does not match columns"
        );
        match self.format {
            Format::Human => panic!("RowWriter is for machine formats"),
            Format::Csv => {
                let row = values
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join(",");
                if self.header_pending {
                    self.header_pending = false;
                    format!("{}\n{row}", self.columns.join(","))
                } else {
                    row
                }
            }
            Format::Json => {
                let fields = self
                    .columns
                    .iter()
                    .zip(values)
                    .map(|(c, v)| format!("\"{c}\":{}", v.to_json()))
                    .collect::<Vec<_>>()
                    .join(",");
                format!("{{{fields}}}")
            }
        }
    }

    /// Renders and prints one row to stdout.
    pub fn emit(&mut self, values: &[Value]) {
        println!("{}", self.render(values));
    }
}

/// Column names of the trailing per-metric summary table every
/// trial-emitting subcommand appends in machine formats.
pub const SUMMARY_COLUMNS: [&str; 8] = [
    "metric", "mean", "median", "p95", "p99", "p999", "min", "max",
];

/// Renders the trailing summary table: one row per metric with its
/// distribution quantiles. In CSV the table gets its own header line
/// (separating it from the per-trial rows above); in JSON Lines each row
/// carries a `metric` key, so consumers can split trial rows from
/// summary rows on key shape alone.
pub fn render_summaries(format: Format, metrics: &[(&str, &Summary)]) -> Vec<String> {
    let mut w = RowWriter::new(format, &SUMMARY_COLUMNS);
    metrics
        .iter()
        .map(|(name, s)| {
            w.render(&[
                Value::Str((*name).to_string()),
                Value::Float(s.mean),
                Value::Float(s.median),
                Value::Float(s.p95),
                Value::Float(s.p99),
                Value::Float(s.p999),
                Value::Float(s.min),
                Value::Float(s.max),
            ])
        })
        .collect()
}

/// Prints [`render_summaries`] to stdout.
pub fn emit_summaries(format: Format, metrics: &[(&str, &Summary)]) {
    for line in render_summaries(format, metrics) {
        println!("{line}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_format_names() {
        assert_eq!(Format::parse("csv").unwrap(), Format::Csv);
        assert_eq!(Format::parse("json").unwrap(), Format::Json);
        assert_eq!(Format::parse("human").unwrap(), Format::Human);
        assert!(Format::parse("xml").is_err());
        assert!(Format::Csv.is_machine());
        assert!(!Format::Human.is_machine());
    }

    #[test]
    fn csv_emits_header_once() {
        let mut w = RowWriter::new(Format::Csv, &["trial", "ok", "msgs"]);
        assert_eq!(
            w.render(&[Value::UInt(0), Value::Bool(true), Value::UInt(42)]),
            "trial,ok,msgs\n0,true,42"
        );
        assert_eq!(
            w.render(&[Value::UInt(1), Value::Bool(false), Value::UInt(7)]),
            "1,false,7"
        );
    }

    #[test]
    fn json_lines_are_self_describing() {
        let mut w = RowWriter::new(Format::Json, &["trial", "proto", "rate"]);
        assert_eq!(
            w.render(&[Value::UInt(3), Value::Str("le".into()), Value::Float(0.25)]),
            "{\"trial\":3,\"proto\":\"le\",\"rate\":0.25}"
        );
    }

    #[test]
    fn json_escapes_strings_and_nonfinite_floats() {
        let mut w = RowWriter::new(Format::Json, &["s", "x"]);
        assert_eq!(
            w.render(&[Value::Str("a\"b\\c\nd".into()), Value::Float(f64::NAN)]),
            "{\"s\":\"a\\\"b\\\\c\\nd\",\"x\":null}"
        );
    }

    #[test]
    fn csv_and_json_agree_on_nonfinite_floats() {
        // NaN/∞ must not leak literal `NaN`/`inf` tokens into CSV while
        // JSON says null: both formats treat the cell as "no value".
        let mut csv = RowWriter::new(Format::Csv, &["a", "b", "c"]);
        assert_eq!(
            csv.render(&[
                Value::Float(f64::NAN),
                Value::Float(f64::INFINITY),
                Value::Float(1.5),
            ]),
            "a,b,c\n,,1.5"
        );
        let mut json = RowWriter::new(Format::Json, &["a", "b", "c"]);
        assert_eq!(
            json.render(&[
                Value::Float(f64::NAN),
                Value::Float(f64::NEG_INFINITY),
                Value::Float(1.5),
            ]),
            "{\"a\":null,\"b\":null,\"c\":1.5}"
        );
    }

    #[test]
    fn csv_quotes_cells_that_would_corrupt_rows() {
        let mut w = RowWriter::new(Format::Csv, &["s", "n"]);
        assert_eq!(
            w.render(&[Value::Str("a,b".into()), Value::UInt(1)]),
            "s,n\n\"a,b\",1"
        );
        assert_eq!(
            w.render(&[Value::Str("say \"hi\"\nok".into()), Value::UInt(2)]),
            "\"say \"\"hi\"\"\nok\",2"
        );
        // Plain strings stay unquoted.
        assert_eq!(
            w.render(&[Value::Str("plain".into()), Value::UInt(3)]),
            "plain,3"
        );
    }

    #[test]
    #[should_panic(expected = "row shape")]
    fn mismatched_row_width_panics() {
        let mut w = RowWriter::new(Format::Csv, &["a", "b"]);
        let _ = w.render(&[Value::UInt(1)]);
    }

    #[test]
    fn summary_rows_surface_quantiles() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 100.0]);
        let lines = render_summaries(Format::Csv, &[("msgs", &s)]);
        assert_eq!(lines.len(), 1);
        let mut parts = lines[0].lines();
        assert_eq!(
            parts.next().unwrap(),
            "metric,mean,median,p95,p99,p999,min,max"
        );
        let row = parts.next().unwrap();
        assert!(row.starts_with("msgs,"), "{row}");
        assert!(row.contains(&format!(",{},", s.median)), "{row}");
        let json = render_summaries(Format::Json, &[("rounds", &s)]);
        assert!(json[0].contains("\"metric\":\"rounds\""), "{}", json[0]);
        assert!(json[0].contains("\"p95\":"), "{}", json[0]);
        assert!(json[0].contains("\"p99\":"), "{}", json[0]);
        assert!(json[0].contains("\"p999\":"), "{}", json[0]);
    }
}
