//! Quickstart: elect a leader and reach agreement in a crash-prone
//! anonymous network, and compare the measured message complexity with the
//! paper's bounds.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ftc::prelude::*;

fn main() -> Result<(), ParamsError> {
    let n = 4096;
    let alpha = 0.5; // at least half the nodes are non-faulty
    let params = Params::new(n, alpha)?;
    let faults = params.max_faults();

    println!("network: n = {n}, alpha = {alpha}, up to {faults} crash faults");
    println!(
        "paper bounds: LE ≈ O(√n·ln^2.5 n/α^2.5) = {:.0} msgs, agreement ≈ {:.0} msg-bits",
        params.le_message_bound(),
        params.agreement_message_bound()
    );
    println!();

    // ---- implicit leader election under mid-protocol random crashes ----
    let cfg = SimConfig::new(n)
        .seed(7)
        .max_rounds(params.le_round_budget());
    let mut adversary = RandomCrash::new(faults, 40);
    let result = run(&cfg, |_| LeNode::new(params.clone()), &mut adversary);
    let outcome = LeOutcome::evaluate(&result);

    println!("— leader election —");
    println!(
        "  success: {} (leader rank {:?}, node {:?})",
        outcome.success, outcome.agreed_leader, outcome.leader_node
    );
    println!(
        "  {} candidates ({} survived), {} crashes",
        outcome.candidate_count,
        outcome.alive_candidates,
        result.metrics.crash_count()
    );
    println!(
        "  cost: {} messages ({} bits) in {} rounds — vs n·log n = {:.0}, n² = {:.0}",
        result.metrics.msgs_sent,
        result.metrics.bits_sent,
        result.metrics.rounds,
        f64::from(n) * params.ln_n(),
        f64::from(n) * f64::from(n)
    );
    println!(
        "  leader is {} (non-faulty with probability ≥ α = {alpha})",
        if outcome.leader_is_faulty {
            "faulty (may crash later)"
        } else {
            "non-faulty"
        }
    );
    println!();

    // ---- implicit agreement: a 5% zero-minority must win over the 1s ----
    // (0 wins whenever any committee member holds it — with 5% zeros the
    // Θ(log n/α)-sized committee contains one with high probability.)
    let cfg = SimConfig::new(n)
        .seed(11)
        .max_rounds(params.agreement_round_budget());
    let mut adversary = RandomCrash::new(faults, 20);
    let result = run(
        &cfg,
        |id| AgreeNode::new(params.clone(), id.0 % 20 != 0),
        &mut adversary,
    );
    let outcome = AgreeOutcome::evaluate(&result);

    println!("— agreement —");
    println!(
        "  success: {} (agreed value {:?}, {} deciders among candidates)",
        outcome.success,
        outcome.agreed_value.map(u8::from),
        outcome.alive_candidates
    );
    println!(
        "  cost: {} messages ({} bits) in {} rounds",
        result.metrics.msgs_sent, result.metrics.bits_sent, result.metrics.rounds
    );
    println!(
        "  CONGEST: max {} bits over any edge in any round (budget O(log n) ≈ {} bits)",
        result.metrics.max_edge_bits_per_round,
        4 * (32 - n.leading_zeros())
    );

    Ok(())
}
