//! Sensor-swarm coordinator election: the paper's sublinear leader
//! election against the naive broadcast baseline, across crash severities.
//!
//! Scenario: a dense swarm of battery-powered sensors must elect a
//! coordinator after deployment. Radio messages are the dominant energy
//! cost, and a (1−α) fraction of sensors may be dead on arrival or die
//! mid-election. We sweep the faulty fraction from 0% to 87.5% and compare
//! the paper's protocol (Theorem 4.1) with deterministic flooding.
//!
//! ```sh
//! cargo run --release --example sensor_swarm
//! ```

use ftc::baselines::broadcast_le::{
    broadcast_le_round_budget, BroadcastLeNode, BroadcastLeOutcome,
};
use ftc::prelude::*;

const N: u32 = 2048;
const TRIALS: u64 = 10;

fn main() -> Result<(), ParamsError> {
    println!("sensor swarm: {N} sensors, electing one coordinator");
    println!();
    println!(
        "{:>8} {:>10} {:>14} {:>8} {:>14} {:>8} {:>9}",
        "faulty", "success", "FTC msgs", "rounds", "flood msgs", "rounds", "saving"
    );

    for &alpha in &[1.0, 0.75, 0.5, 0.25, 0.125] {
        let params = Params::new(N, alpha)?;
        let f = params.max_faults();

        // Paper protocol, adversarial random crash schedule.
        let cfg = SimConfig::new(N)
            .seed(1234)
            .max_rounds(params.le_round_budget());
        let sub = run_trials(&cfg, TRIALS, |c| {
            let mut adv = RandomCrash::new(f, 40);
            let params = params.clone();
            let r = run(c, |_| LeNode::new(params.clone()), &mut adv);
            let o = LeOutcome::evaluate(&r);
            (o.success, r.metrics.msgs_sent, r.metrics.rounds)
        });
        let ok = sub.iter().filter(|t| t.value.0).count();
        let msgs = Summary::of_iter(sub.iter().map(|t| t.value.1 as f64));
        let rounds = Summary::of_iter(sub.iter().map(|t| f64::from(t.value.2)));

        // Baseline: deterministic flooding, same fault severity.
        let fb = f as u32;
        let bcfg = SimConfig::new(N)
            .seed(1234)
            .max_rounds(broadcast_le_round_budget(fb));
        let base = run_trials(&bcfg, TRIALS, |c| {
            let mut adv = RandomCrash::new(f, 40);
            let r = run(c, |_| BroadcastLeNode::new(fb), &mut adv);
            let o = BroadcastLeOutcome::evaluate(&r);
            (o.success, r.metrics.msgs_sent, r.metrics.rounds)
        });
        let bmsgs = Summary::of_iter(base.iter().map(|t| t.value.1 as f64));
        let brounds = Summary::of_iter(base.iter().map(|t| f64::from(t.value.2)));

        println!(
            "{:>7.1}% {:>7}/{:<2} {:>14.0} {:>8.0} {:>14.0} {:>8.0} {:>8.1}x",
            (1.0 - alpha) * 100.0,
            ok,
            TRIALS,
            msgs.mean,
            rounds.mean,
            bmsgs.mean,
            brounds.mean,
            bmsgs.mean / msgs.mean
        );
    }

    println!();
    println!("reading: the paper's protocol stays far below the O(n^2) flood for");
    println!("moderate fault rates, at the price of polylog-factor more rounds. At");
    println!("extreme resilience (87.5% faulty) the 1/alpha^2.5 constants eat the");
    println!("gain at this small n — consistent with the paper, which proves LE is");
    println!("sublinear only for alpha > log n / n^(1/5) (an asymptotic regime).");
    Ok(())
}
