//! A long-lived leader service on the real runtime: re-election across
//! heights as leaders die, over actual message-passing.
//!
//! The paper's introduction motivates leader election as a fault-tolerance
//! subroutine of real systems (Akamai's CDN, Paxos). This example runs
//! such a service on `ftc-serve`: each election *height* elects a
//! coordinator with the paper's sublinear protocol over the `ftc-net`
//! channel transport — protocol messages travel as length-prefixed frames
//! between node threads, crashes are enacted as mid-round connection
//! teardown — then churn kills the coordinator (plus some bystanders) and
//! the next height re-elects among the survivors. Between elections the
//! deterministic load generator routes requests to the current leader,
//! and the invariant monitor checks leader uniqueness and request
//! linearity the whole time. The point: total coordination traffic stays
//! tiny — each height costs `Õ(√n)` messages instead of the `Θ(n²)` a
//! broadcast election would burn — and the cost is visible in real wire
//! bytes, not just simulator counters.
//!
//! The in-process channel transport is used so the example scales to 1024
//! nodes; swap `Substrate::Channel` for `Substrate::Tcp` (and shrink `N`
//! to ≤ 64) to watch the same service run over localhost TCP sockets.
//!
//! ```sh
//! cargo run --release --example leader_service
//! ```

use ftc::prelude::*;

const N: u32 = 1024;
const ALPHA: f64 = 0.5;
const HEIGHTS: u32 = 8;
const WORKERS: usize = 4;

fn main() -> Result<(), String> {
    let cfg = ServeConfig::new(N, ALPHA)
        .seed(1)
        .heights(HEIGHTS)
        .window_rounds(16)
        .substrate(Substrate::Channel(WORKERS))
        .churn(ChurnPlan {
            kill_leader_every: 1, // every height's coordinator dies...
            bystanders: 15,       // ...along with a handful of bystanders
            rejoin_after: 0,      // and nobody comes back
        })
        .load(LoadProfile {
            arrivals_per_round: 4,
            leader_capacity: 8,
        });

    println!("leader service: {N} nodes on the channel transport, {HEIGHTS} heights");
    println!("(each height the elected coordinator and 15 bystanders crash)");
    println!();
    println!(
        "{:>6} {:>8} {:>12} {:>8} {:>10} {:>12}",
        "height", "down", "leader", "success", "msgs", "wire bytes"
    );

    let report = run_service(&cfg)?;
    let mut total_msgs: u64 = 0;
    let mut total_wire: u64 = 0;
    for h in &report.heights {
        total_msgs += h.msgs_sent;
        total_wire += h.wire_bytes;
        println!(
            "{:>6} {:>8} {:>12} {:>8} {:>10} {:>12}",
            h.height,
            h.down,
            h.leader.map_or("-".into(), |l| l.to_string()),
            h.success,
            h.msgs_sent,
            h.wire_bytes
        );
    }

    let m = &report.metrics;
    let load = report.load.as_ref().expect("load generator is armed");
    println!();
    println!(
        "service: {} elections ok, {} failed; availability {:.3}; \
         time-to-new-leader p50 {} rounds",
        m.heights - m.failed_elections,
        m.failed_elections,
        m.availability().unwrap_or(0.0),
        m.ttnl_rounds.quantile(0.5).unwrap_or(0),
    );
    println!(
        "load: {} requests issued, {} completed, {} retried across an election; \
         latency p50 {} / p99 {} rounds",
        load.issued,
        load.completed,
        load.retried,
        load.latency.quantile(0.5).unwrap_or(0),
        load.latency.quantile(0.99).unwrap_or(0),
    );
    assert!(
        report.ok(),
        "invariant monitor flagged violations: {:?}",
        report.violations
    );
    println!("invariant monitor: leader uniqueness and request linearity held");

    println!();
    let naive = u64::from(N) * u64::from(N - 1) * u64::from(HEIGHTS);
    println!(
        "total coordination traffic: {total_msgs} messages / {total_wire} wire bytes \
         across {HEIGHTS} heights;"
    );
    println!(
        "a broadcast election would have cost ~{naive} messages ({}x more).",
        naive / total_msgs.max(1)
    );
    Ok(())
}
