//! A long-lived leader service on the real runtime: re-election across
//! epochs as leaders die, over actual message-passing.
//!
//! The paper's introduction motivates leader election as a fault-tolerance
//! subroutine of real systems (Akamai's CDN, Paxos). This example runs
//! such a service on `ftc-net`: in each epoch the cluster elects a
//! coordinator with the paper's sublinear protocol — protocol messages
//! travel as length-prefixed frames between node threads, crashes are
//! enacted as mid-round connection teardown — then the adversary kills the
//! coordinator (plus some bystanders) and the next epoch re-elects among
//! the survivors. The point: total coordination traffic stays tiny — each
//! epoch costs `Õ(√n)` messages instead of the `Θ(n²)` a broadcast
//! election would burn — and now the cost is visible in real wire bytes,
//! not just simulator counters.
//!
//! The in-process channel transport is used so the example scales to 1024
//! nodes; swap `run_over_channel` for `run_over_tcp` (and shrink `N` to
//! ≤ 64) to watch the same service run over localhost TCP sockets.
//!
//! ```sh
//! cargo run --release --example leader_service
//! ```

use ftc::prelude::*;
use ftc::sim::adversary::DeliveryFilter;

const N: u32 = 1024;
const ALPHA: f64 = 0.5;
const EPOCHS: u32 = 8;
const WORKERS: usize = 4;

fn main() -> Result<(), ParamsError> {
    let params = Params::new(N, ALPHA)?;
    println!("leader service: {N} nodes on the channel transport, {EPOCHS} epochs");
    println!("(each epoch the elected coordinator and 15 bystanders crash)");
    println!();
    println!(
        "{:>6} {:>8} {:>12} {:>8} {:>10} {:>12} {:>12}",
        "epoch", "dead", "leader", "success", "msgs", "wire bytes", "cum. msgs"
    );

    // Nodes that died in earlier epochs; they crash at round 0 of every
    // later epoch so they never participate again.
    let mut dead: Vec<NodeId> = Vec::new();
    let mut total_msgs: u64 = 0;
    let mut total_wire: u64 = 0;
    let mut rng_seed = 1u64;

    for epoch in 0..EPOCHS {
        let mut plan = FaultPlan::new();
        for &d in &dead {
            plan = plan.crash(d, 0, DeliveryFilter::DropAll);
        }
        let mut adv = ScriptedCrash::new(plan);
        let cfg = SimConfig::new(N)
            .seed(1000 + rng_seed)
            .max_rounds(params.le_round_budget());
        rng_seed += 7;

        let result = run_over_channel(&cfg, WORKERS, |_| LeNode::new(params.clone()), &mut adv);
        let outcome = LeOutcome::evaluate(&result.run);
        total_msgs += result.run.metrics.msgs_sent;
        total_wire += result.net.wire_bytes;

        println!(
            "{:>6} {:>8} {:>12} {:>8} {:>10} {:>12} {:>12}",
            epoch,
            dead.len(),
            outcome.leader_node.map_or("-".into(), |l| l.to_string()),
            outcome.success,
            result.run.metrics.msgs_sent,
            result.net.wire_bytes,
            total_msgs
        );

        // The adversary of "real life": this epoch's coordinator dies,
        // along with a handful of bystanders.
        if let Some(leader) = outcome.leader_node {
            dead.push(leader);
        }
        for i in 0..15u32 {
            let candidate = NodeId((epoch * 131 + i * 257) % N);
            if !dead.contains(&candidate) {
                dead.push(candidate);
            }
        }
        if !outcome.success {
            println!("  (epoch failed — service would retry with a fresh seed)");
        }
    }

    println!();
    let naive = u64::from(N) * u64::from(N - 1) * u64::from(EPOCHS);
    println!(
        "total coordination traffic: {total_msgs} messages / {total_wire} wire bytes \
         across {EPOCHS} epochs;"
    );
    println!(
        "a broadcast election would have cost ~{naive} messages ({}x more).",
        naive / total_msgs.max(1)
    );
    Ok(())
}
