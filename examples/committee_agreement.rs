//! Permissionless-style emergency agreement under a targeted adversary.
//!
//! Scenario: anonymous participants (no identities — the paper's KT0
//! model, motivated by permissionless systems) must agree whether to halt
//! ("0" = halt, "1" = continue). A handful of participants observed the
//! incident and hold 0; an adversary crashes exactly the nodes that are
//! about to spread the 0, letting one copy through per round — the paper's
//! slowest-propagation schedule. Implicit agreement must still land on 0,
//! and the explicit extension must inform every surviving participant.
//!
//! ```sh
//! cargo run --release --example committee_agreement
//! ```

use ftc::prelude::*;

fn main() -> Result<(), ParamsError> {
    let n = 2048;
    let alpha = 0.5;
    let witnesses = 200; // ~10% of nodes observed the incident (input 0)
    let params = Params::new(n, alpha)?;

    println!("{n} anonymous participants, {witnesses} witnesses holding 0");
    println!(
        "{} faulty nodes crashed exactly when forwarding the 0 (one copy escapes per round)",
        params.max_faults()
    );
    println!();

    // ---- implicit phase ----
    let mut successes = 0;
    let mut zero_wins = 0;
    let trials = 20;
    let cfg = SimConfig::new(n)
        .seed(2024)
        .max_rounds(params.agreement_round_budget());
    let outcomes = run_trials(&cfg, trials, |c| {
        let mut adv = ZeroHolderCrasher::new(params.max_faults());
        let r = run(
            c,
            |id| AgreeNode::new(params.clone(), id.0 >= witnesses),
            &mut adv,
        );
        let o = AgreeOutcome::evaluate(&r);
        (
            o.success,
            o.agreed_value,
            r.metrics.msgs_sent,
            r.metrics.rounds,
        )
    });
    for t in &outcomes {
        if t.value.0 {
            successes += 1;
        }
        if t.value.1 == Some(false) {
            zero_wins += 1;
        }
    }
    let msgs = Summary::of_iter(outcomes.iter().map(|t| t.value.2 as f64));
    let rounds = Summary::of_iter(outcomes.iter().map(|t| f64::from(t.value.3)));

    println!("— implicit agreement ({trials} trials) —");
    println!("  definition-2 success: {successes}/{trials}");
    println!(
        "  halt (0) agreed in {zero_wins}/{trials} trials (witnesses may all be crashed in the rest)"
    );
    println!(
        "  mean cost: {:.0} single-bit messages (bound {:.0}), {:.1} rounds (median {:.0}, p95 {:.0})",
        msgs.mean,
        params.agreement_message_bound(),
        rounds.mean,
        rounds.median,
        rounds.p95
    );
    println!();

    // ---- explicit phase: everyone must know ----
    let cfg = SimConfig::new(n).seed(77).max_rounds(
        ftc::core::explicit::ExplicitAgreeNode::round_budget(&params),
    );
    let mut adv = ZeroHolderCrasher::new(params.max_faults());
    let r = run(
        &cfg,
        |id| ExplicitAgreeNode::new(params.clone(), id.0 >= witnesses),
        &mut adv,
    );
    let o = ExplicitAgreeOutcome::evaluate(&r);
    println!("— explicit extension (single run) —");
    println!(
        "  every alive participant informed: {} (value {:?}, {} unaware)",
        o.success,
        o.value.map(u8::from),
        o.unaware
    );
    println!(
        "  total cost incl. broadcast: {} messages in {} rounds (rounds are dominated \n  by the fixed implicit-phase budget before the announcement; explicit bound O(n·log n/α) = {:.0})",
        r.metrics.msgs_sent,
        r.metrics.rounds,
        f64::from(n) * params.ln_n() / alpha
    );
    Ok(())
}
