//! The adversary gauntlet: leader election against every crash schedule
//! in the toolbox.
//!
//! Runs the paper's implicit leader election against five adversaries —
//! from the benign fault-free run to the paper's worst case (the
//! minimum-rank assassin of Section IV-A) — and prints success rates and
//! costs. The safety claims must hold against all of them.
//!
//! ```sh
//! cargo run --release --example adversary_gauntlet
//! ```

use ftc::prelude::*;

const N: u32 = 1024;
const ALPHA: f64 = 0.5;
const TRIALS: u64 = 15;

fn gauntlet<F>(name: &str, params: &Params, mut make_adv: F)
where
    F: FnMut() -> Box<dyn Adversary<LeMsg>>,
{
    let cfg = SimConfig::new(N)
        .seed(31337)
        .max_rounds(params.le_round_budget());
    let mut ok = 0;
    let mut faulty_leader = 0;
    let mut msgs = Vec::new();
    let mut rounds = Vec::new();
    for t in 0..TRIALS {
        let c = cfg.clone().seed(31337 + 7 * t);
        let mut adv = make_adv();
        let r = run(&c, |_| LeNode::new(params.clone()), adv.as_mut());
        let o = LeOutcome::evaluate(&r);
        if o.success {
            ok += 1;
            if o.leader_is_faulty {
                faulty_leader += 1;
            }
        }
        msgs.push(r.metrics.msgs_sent as f64);
        rounds.push(f64::from(r.metrics.rounds));
    }
    let m = Summary::of(&msgs);
    let r = Summary::of(&rounds);
    println!(
        "{name:<24} {ok:>3}/{TRIALS:<3} {faulty:>10} {mean:>12.0} {rounds:>8.0}",
        faulty = faulty_leader,
        mean = m.mean,
        rounds = r.mean,
    );
}

fn main() -> Result<(), ParamsError> {
    let params = Params::new(N, ALPHA)?;
    let f = params.max_faults();

    println!(
        "leader election, n = {N}, alpha = {ALPHA} ({f} faulty), {TRIALS} trials per adversary"
    );
    println!();
    println!(
        "{:<24} {:>7} {:>10} {:>12} {:>8}",
        "adversary", "success", "flt-leader", "mean msgs", "rounds"
    );

    gauntlet("fault-free", &params, || Box::new(NoFaults));
    gauntlet("eager mass crash", &params, || Box::new(EagerCrash::new(f)));
    gauntlet("random mid-protocol", &params, || {
        Box::new(RandomCrash::new(f, 60))
    });
    gauntlet("min-rank assassin", &params, || {
        Box::new(MinRankCrasher::new(f))
    });
    gauntlet("aggressive assassin x4", &params, || {
        Box::new(MinRankCrasher { f, per_round: 4 })
    });

    println!();
    println!("flt-leader: successful elections whose leader is in the faulty set —");
    println!("allowed by the model (a faulty leader may crash only after election);");
    println!("the paper guarantees the leader is non-faulty with probability ≥ α.");
    Ok(())
}
