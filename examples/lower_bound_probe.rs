//! Watching the lower bound happen: influence clouds of a message-starved
//! protocol.
//!
//! Theorems 4.2/5.2: below `Ω(√n/α^{3/2})` messages, executions decompose
//! into disjoint "influence clouds" that cannot tell each other apart —
//! so two of them elect two leaders, or decide opposite values. This
//! example starves the paper's agreement protocol of referees, records
//! the communication graph, and prints the cloud structure alongside the
//! observed failures.
//!
//! ```sh
//! cargo run --release --example lower_bound_probe
//! ```

use ftc::core::agreement::{AgreeNode, AgreeOutcome};
use ftc::prelude::*;

fn main() -> Result<(), ParamsError> {
    let n = 2048;
    let alpha = 0.5;
    let threshold = Params::new(n, alpha)?.lower_bound_threshold();

    println!("n = {n}, alpha = {alpha}: lower-bound threshold √n/α^1.5 = {threshold:.0} msgs");
    println!();
    println!(
        "{:>7} {:>12} {:>10} {:>11} {:>12} {:>9}",
        "scale", "mean msgs", "x-thresh", "failures", "initiators", "event N"
    );

    for &scale in &[1.0, 0.25, 0.05, 0.02, 0.01, 0.005] {
        let params = Params::new(n, alpha)?
            .with_referee_factor(2.0 * scale)
            .with_candidate_factor((6.0 * scale.sqrt()).max(0.5));
        let trials = 12u64;
        let cfg = SimConfig::new(n)
            .seed(5150)
            .max_rounds(params.agreement_round_budget())
            .record_trace(true);
        let results = run_trials(&cfg, trials, |c| {
            let mut adv = EagerCrash::new(params.max_faults());
            let r = run(
                c,
                |id| AgreeNode::new(params.clone(), id.0 % 2 == 0),
                &mut adv,
            );
            let o = AgreeOutcome::evaluate(&r);
            let analysis = InfluenceAnalysis::full(r.trace.as_ref().expect("trace on"));
            (
                r.metrics.msgs_sent,
                o.success,
                analysis.initiator_count(),
                analysis.event_n(),
            )
        });

        let msgs = Summary::of_iter(results.iter().map(|t| t.value.0 as f64));
        let failures = results.iter().filter(|t| !t.value.1).count();
        let initiators = Summary::of_iter(results.iter().map(|t| t.value.2 as f64));
        let disjoint = results.iter().filter(|t| t.value.3).count();

        println!(
            "{:>7.3} {:>12.0} {:>10.2} {:>8}/{:<2} {:>12.0} {:>6}/{:<2}",
            scale,
            msgs.mean,
            msgs.mean / threshold,
            failures,
            trials,
            initiators.mean,
            disjoint,
            trials,
        );
    }

    println!();
    println!("reading: at full budget the spend sits far above the threshold and");
    println!("failures are rare; as the budget drops toward (and below) 1x the");
    println!("threshold, executions fragment (event N: clouds stay disjoint) and");
    println!("the failure rate rises to a constant — the transition the proof");
    println!("of Theorems 4.2/5.2 predicts.");
    Ok(())
}
