//! Falsification objectives: what makes a schedule "worse".
//!
//! Each objective maps an [`Observation`] to a score (higher = worse for
//! the protocol = better for the hunter) and a *hit* predicate — the
//! schedule is an actual counterexample, not merely the worst sample seen.
//! Safety objectives hit on model violations (two alive elected nodes,
//! disagreeing alive decisions); the failure objective hits whenever the
//! protocol's success predicate fails; cost objectives hit when the run
//! exceeds the paper's whp bound (messages) or exhausts the round budget
//! without quiescing (rounds) — exactly the regimes Theorems 4.1/5.1 say a
//! static adversary should not be able to force, except with probability
//! `o(1)`.

use ftc_core::prelude::Params;

use crate::proto::{Observation, ProtoKind};

/// A property the hunt tries to falsify (or a cost it tries to maximise).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Objective {
    /// LE safety: two or more alive nodes consider themselves elected.
    TwoLeaders,
    /// LE safety inside one height of a long-lived service (`ftc-serve`):
    /// two or more alive nodes consider themselves elected at the same
    /// election height. Scored identically to [`Objective::TwoLeaders`] —
    /// a height is one complete election — but kept distinct so artifacts
    /// record *where* the split brain was observed (the artifact's
    /// `height` field) and the serve invariant monitor can file its
    /// counterexamples under the objective it actually checks.
    TwoLeadersAtHeight,
    /// Agreement safety: alive nodes decided different values.
    Disagreement,
    /// Success-probability minimisation: the run's success predicate fails.
    Failure,
    /// Message-cost maximisation; hits above the paper's whp bound.
    MaxMessages,
    /// Round-cost maximisation; hits when the round budget is exhausted.
    MaxRounds,
}

/// The protocol-derived thresholds cost objectives are judged against.
#[derive(Clone, Copy, Debug)]
pub struct Bounds {
    /// The paper's whp message bound for the hunted protocol.
    pub message_bound: f64,
    /// The round budget (`max_rounds` of every hunt execution).
    pub round_budget: u32,
}

impl Bounds {
    /// Derives the thresholds for `proto` under `params`.
    pub fn for_proto(proto: ProtoKind, params: &Params) -> Self {
        Bounds {
            message_bound: proto.message_bound(params),
            round_budget: proto.round_budget(params),
        }
    }
}

impl Objective {
    /// Parses an `--objective` argument.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "two-leaders" => Ok(Objective::TwoLeaders),
            "two-leaders-at-height" => Ok(Objective::TwoLeadersAtHeight),
            "disagreement" => Ok(Objective::Disagreement),
            "failure" => Ok(Objective::Failure),
            "max-messages" => Ok(Objective::MaxMessages),
            "max-rounds" => Ok(Objective::MaxRounds),
            other => Err(format!(
                "unknown objective {other} \
                 (two-leaders|two-leaders-at-height|disagreement|failure|\
                 max-messages|max-rounds)"
            )),
        }
    }

    /// The CLI name.
    pub fn name(self) -> &'static str {
        match self {
            Objective::TwoLeaders => "two-leaders",
            Objective::TwoLeadersAtHeight => "two-leaders-at-height",
            Objective::Disagreement => "disagreement",
            Objective::Failure => "failure",
            Objective::MaxMessages => "max-messages",
            Objective::MaxRounds => "max-rounds",
        }
    }

    /// Whether this objective is meaningful for `proto` (safety objectives
    /// are protocol-specific; the rest apply to both).
    pub fn supports(self, proto: ProtoKind) -> bool {
        match self {
            Objective::TwoLeaders | Objective::TwoLeadersAtHeight => proto == ProtoKind::Le,
            Objective::Disagreement => proto == ProtoKind::Agree,
            Objective::Failure | Objective::MaxMessages | Objective::MaxRounds => true,
        }
    }

    /// The score of one observation; higher is worse for the protocol.
    /// Monotone with [`Objective::hit`]: among a candidate's probe runs,
    /// the maximal-score probe is a hit iff any probe is.
    pub fn score(self, obs: &Observation) -> f64 {
        match self {
            Objective::TwoLeaders | Objective::TwoLeadersAtHeight | Objective::Disagreement => {
                f64::from(obs.distinct)
            }
            Objective::Failure => {
                if obs.fingerprint.success {
                    0.0
                } else {
                    1.0
                }
            }
            Objective::MaxMessages => obs.fingerprint.msgs_sent as f64,
            Objective::MaxRounds => f64::from(obs.fingerprint.rounds),
        }
    }

    /// Whether the observation is an actual counterexample.
    pub fn hit(self, obs: &Observation, bounds: &Bounds) -> bool {
        match self {
            Objective::TwoLeaders | Objective::TwoLeadersAtHeight | Objective::Disagreement => {
                obs.distinct >= 2
            }
            Objective::Failure => !obs.fingerprint.success,
            Objective::MaxMessages => obs.fingerprint.msgs_sent as f64 > bounds.message_bound,
            Objective::MaxRounds => obs.fingerprint.rounds >= bounds.round_budget,
        }
    }

    /// The shrink-preservation predicate: a reduced schedule is acceptable
    /// iff it keeps what made the original interesting — the hit, for
    /// falsification objectives; at least the original score, for cost
    /// objectives (whose every evaluation is deterministic, so the
    /// comparison is exact).
    pub fn preserved(self, original_score: f64, obs: &Observation, bounds: &Bounds) -> bool {
        match self {
            Objective::TwoLeaders
            | Objective::TwoLeadersAtHeight
            | Objective::Disagreement
            | Objective::Failure => self.hit(obs, bounds),
            Objective::MaxMessages | Objective::MaxRounds => self.score(obs) >= original_score,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::Fingerprint;

    fn obs(success: bool, distinct: u32, msgs: u64, rounds: u32) -> Observation {
        Observation {
            fingerprint: Fingerprint {
                success,
                outcome: None,
                msgs_sent: msgs,
                msgs_delivered: msgs,
                bits_sent: msgs * 2,
                rounds,
                crashed: Vec::new(),
            },
            distinct,
        }
    }

    #[test]
    fn parse_and_support_matrix() {
        assert_eq!(
            Objective::parse("two-leaders").unwrap(),
            Objective::TwoLeaders
        );
        assert!(Objective::parse("world-peace").is_err());
        assert!(Objective::TwoLeaders.supports(ProtoKind::Le));
        assert!(!Objective::TwoLeaders.supports(ProtoKind::Agree));
        assert_eq!(
            Objective::parse("two-leaders-at-height").unwrap(),
            Objective::TwoLeadersAtHeight
        );
        assert!(Objective::TwoLeadersAtHeight.supports(ProtoKind::Le));
        assert!(!Objective::TwoLeadersAtHeight.supports(ProtoKind::Agree));
        assert_eq!(
            Objective::TwoLeadersAtHeight.name(),
            "two-leaders-at-height"
        );
        assert!(!Objective::Disagreement.supports(ProtoKind::Le));
        assert!(Objective::Failure.supports(ProtoKind::Agree));
        assert_eq!(Objective::MaxRounds.name(), "max-rounds");
    }

    #[test]
    fn scores_and_hits_are_consistent() {
        let bounds = Bounds {
            message_bound: 100.0,
            round_budget: 20,
        };
        let clean = obs(true, 1, 50, 10);
        let split = obs(false, 2, 50, 10);
        assert!(!Objective::TwoLeaders.hit(&clean, &bounds));
        assert!(Objective::TwoLeaders.hit(&split, &bounds));
        assert!(Objective::TwoLeaders.score(&split) > Objective::TwoLeaders.score(&clean));
        assert!(Objective::Failure.hit(&split, &bounds));
        assert!(!Objective::Failure.hit(&clean, &bounds));
        assert!(Objective::MaxMessages.hit(&obs(true, 1, 101, 10), &bounds));
        assert!(!Objective::MaxMessages.hit(&obs(true, 1, 100, 10), &bounds));
        assert!(Objective::MaxRounds.hit(&obs(true, 1, 10, 20), &bounds));
    }

    #[test]
    fn shrink_preservation_matches_objective_family() {
        let bounds = Bounds {
            message_bound: 100.0,
            round_budget: 20,
        };
        // Falsification: the hit must survive, the score may drop.
        assert!(Objective::Failure.preserved(1.0, &obs(false, 1, 5, 3), &bounds));
        assert!(!Objective::Failure.preserved(1.0, &obs(true, 1, 5, 3), &bounds));
        // Cost: the score must not drop.
        assert!(Objective::MaxMessages.preserved(60.0, &obs(true, 1, 60, 3), &bounds));
        assert!(!Objective::MaxMessages.preserved(60.0, &obs(true, 1, 59, 3), &bounds));
    }
}
