//! The hunt itself: budgeted, deterministic, `--jobs`-invariant search
//! over crash-schedule space.
//!
//! The budget is spent in fixed-size *generations*. Every candidate in a
//! generation is an independent pure function of its own trial seed (plus,
//! for the annealing strategy, the incumbent chosen at the previous
//! generation boundary), so generations parallelise on [`ParRunner`]
//! without perturbing the result: the same `(spec, seed, budget)` hunt
//! finds the same candidates, in the same order, at any `--jobs`.
//!
//! Each candidate schedule is scored over a fixed panel of probe seeds
//! shared by all candidates; its score is the max over the panel (every
//! objective's score is monotone with its hit predicate, so the argmax
//! probe is a hit iff any probe is). The champion is the argmax-score
//! candidate, ties broken toward the lowest trial index.

use ftc_lowerbound::prelude::crash_targets;
use ftc_sim::engine::SimConfig;
use ftc_sim::perm::stream_seed;
use ftc_sim::prelude::{FaultPlan, ScriptedCrash};
use ftc_sim::runner::{ParRunner, TrialPlan};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use ftc_net::prelude::WireFaultPlan;

use crate::mutate::{
    guided_plan, mutate_plan, mutate_wire_plan, random_plan, random_wire_plan, PlanSpace,
};
use crate::objective::{Bounds, Objective};
use crate::proto::{observe_wire, Observation, ProtoKind, Substrate};

/// Candidates evaluated per generation (the parallelism grain; fixed so
/// the generation boundaries — and with them the annealing decisions —
/// do not depend on `--jobs`).
pub const GENERATION: u64 = 16;

/// Seed-stream salts, disjoint from the trial indices `ParRunner` salts
/// with (those are `1..=budget`, far below these).
const SALT_PROBES: u64 = u64::MAX - 0x01;
const SALT_ANNEAL: u64 = u64::MAX - 0x02;
const SALT_GUIDE: u64 = u64::MAX - 0x03;

/// How candidate schedules are proposed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// Independent uniform samples of the schedule space.
    Random,
    /// Uniform samples biased toward influence-cloud crash targets mined
    /// from a crash-free reference trace.
    Guided,
    /// Simulated annealing: generations of local mutations of an
    /// incumbent, with a cooling acceptance rule.
    Anneal,
}

impl Strategy {
    /// Parses a `--strategy` argument.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "random" => Ok(Strategy::Random),
            "guided" => Ok(Strategy::Guided),
            "anneal" => Ok(Strategy::Anneal),
            other => Err(format!("unknown strategy {other} (random|guided|anneal)")),
        }
    }

    /// The CLI name.
    pub fn name(self) -> &'static str {
        match self {
            Strategy::Random => "random",
            Strategy::Guided => "guided",
            Strategy::Anneal => "anneal",
        }
    }
}

/// Everything that defines one hunt. Two equal specs produce bit-equal
/// [`HuntReport`]s regardless of `jobs`.
#[derive(Clone, Debug)]
pub struct HuntSpec {
    /// The protocol under attack.
    pub proto: ProtoKind,
    /// What to falsify / maximise.
    pub objective: Objective,
    /// Protocol parameters (`n`, `alpha`, budgets).
    pub params: ftc_core::prelude::Params,
    /// Base execution config; its `seed` is overridden per probe and its
    /// `max_rounds` should be the protocol's round budget.
    pub cfg: SimConfig,
    /// Agreement input density (ignored for LE).
    pub zeros: f64,
    /// Candidate schedules to evaluate.
    pub budget: u64,
    /// Probe seeds per candidate.
    pub probes: u64,
    /// Search seed (drives plans AND the probe panel).
    pub seed: u64,
    /// Worker threads (`0` = all cores). Never changes the result.
    pub jobs: usize,
    /// Proposal strategy.
    pub strategy: Strategy,
    /// Which substrate evaluates candidates. [`Substrate::Engine`] is the
    /// fast default; a net substrate turns every evaluation into a
    /// differential check of that runtime against the model.
    pub substrate: Substrate,
    /// Whether to co-search socket-level [`WireFaultPlan`]s alongside
    /// crash schedules. Wire faults are delivery-preserving, so any hit
    /// they cause is a runtime bug; on [`Substrate::Engine`] they are
    /// drawn but invisible.
    pub wire: bool,
}

/// One evaluated schedule: its worst probe, per the objective.
#[derive(Clone, Debug)]
pub struct Candidate {
    /// Global trial index the candidate was derived from.
    pub trial: u64,
    /// The schedule.
    pub plan: FaultPlan,
    /// The socket-level chaos the schedule ran under (wire hunts only).
    pub wire: Option<WireFaultPlan>,
    /// Objective score at the argmax probe.
    pub score: f64,
    /// Whether the argmax probe is an actual counterexample.
    pub hit: bool,
    /// The execution seed of the argmax probe.
    pub probe_seed: u64,
    /// The argmax probe's observation.
    pub observation: Observation,
}

/// Per-generation progress, for `--format csv`-style reporting.
#[derive(Clone, Copy, Debug)]
pub struct GenSummary {
    /// Generation index.
    pub generation: u64,
    /// Best score inside this generation.
    pub best_score: f64,
    /// Hits inside this generation.
    pub hits: u64,
    /// Best score over all generations so far.
    pub champion_score: f64,
}

/// The hunt's deterministic result.
#[derive(Clone, Debug)]
pub struct HuntReport {
    /// The argmax-score candidate (lowest trial index on ties).
    pub champion: Candidate,
    /// Candidates evaluated (= min(budget, rounded-up generations)).
    pub evaluated: u64,
    /// Candidates whose argmax probe was a hit.
    pub hits: u64,
    /// Progress per generation, in order.
    pub generations: Vec<GenSummary>,
    /// The thresholds hits were judged against.
    pub bounds: Bounds,
}

/// The fixed probe-seed panel shared by every candidate of a hunt.
pub fn probe_seeds(spec_seed: u64, probes: u64) -> Vec<u64> {
    let base = stream_seed(spec_seed, SALT_PROBES);
    (0..probes.max(1))
        .map(|p| stream_seed(base, p.wrapping_add(1)))
        .collect()
}

/// Scores `plan` over the probe panel: the argmax-probe observation,
/// judged by `objective`. Pure in its arguments; runs on the spec's
/// substrate (under `wire` chaos, when set).
pub fn evaluate(
    spec: &HuntSpec,
    bounds: &Bounds,
    panel: &[u64],
    trial: u64,
    plan: FaultPlan,
    wire: Option<WireFaultPlan>,
) -> Result<Candidate, String> {
    let mut best: Option<(f64, u64, Observation)> = None;
    for &probe in panel {
        let mut cfg = spec.cfg.clone();
        cfg.seed = probe;
        let obs = observe_wire(
            spec.proto,
            &spec.params,
            &cfg,
            spec.zeros,
            &plan,
            wire.as_ref(),
            spec.substrate,
        )?;
        let score = spec.objective.score(&obs);
        if best.as_ref().is_none_or(|(s, _, _)| score > *s) {
            best = Some((score, probe, obs));
        }
    }
    let (score, probe_seed, observation) = best.expect("probe panel is non-empty");
    let hit = spec.objective.hit(&observation, bounds);
    Ok(Candidate {
        trial,
        plan,
        wire,
        score,
        hit,
        probe_seed,
        observation,
    })
}

/// Mines influence-cloud crash targets from a crash-free reference run of
/// the hunted protocol, for the guided strategy. Deterministic in `spec`.
fn mine_targets(spec: &HuntSpec, space: &PlanSpace) -> Vec<ftc_lowerbound::prelude::CrashTarget> {
    let mut cfg = spec.cfg.clone();
    cfg.seed = stream_seed(spec.seed, SALT_GUIDE);
    cfg.record_trace = true;
    let mut benign = ScriptedCrash::new(FaultPlan::new());
    let trace = match spec.proto {
        ProtoKind::Le => {
            let params = spec.params.clone();
            ftc_sim::engine::run(
                &cfg,
                |_| ftc_core::prelude::LeNode::new(params.clone()),
                &mut benign,
            )
            .trace
        }
        ProtoKind::Agree => {
            let params = spec.params.clone();
            let stride = crate::proto::input_stride(spec.zeros);
            ftc_sim::engine::run(
                &cfg,
                |id: ftc_sim::ids::NodeId| {
                    ftc_core::prelude::AgreeNode::new(
                        params.clone(),
                        !(stride != u32::MAX && id.0.is_multiple_of(stride)),
                    )
                },
                &mut benign,
            )
            .trace
        }
    };
    trace
        .map(|t| crash_targets(&t, (space.max_faults * 4).max(8)))
        .unwrap_or_default()
}

fn better(challenger: &Candidate, incumbent: &Candidate) -> bool {
    challenger.score > incumbent.score
        || (challenger.score == incumbent.score && challenger.trial < incumbent.trial)
}

/// Runs the hunt. Deterministic in `spec` minus `jobs`.
pub fn run_hunt(spec: &HuntSpec) -> Result<HuntReport, String> {
    run_hunt_observed(spec, |_| {})
}

/// [`run_hunt`], streaming every evaluated candidate — in trial order,
/// invariant under `jobs` — through `observer` as its generation closes.
/// This is the hook schedule-space coverage accounting hangs off: the
/// observer sees exactly the plans the budget explored, so a coverage
/// figure computed from it is as deterministic as the hunt itself.
pub fn run_hunt_observed(
    spec: &HuntSpec,
    mut observer: impl FnMut(&Candidate),
) -> Result<HuntReport, String> {
    if !spec.objective.supports(spec.proto) {
        return Err(format!(
            "objective {} does not apply to protocol {}",
            spec.objective.name(),
            spec.proto.name()
        ));
    }
    if spec.budget == 0 {
        return Err("hunt budget must be at least 1".into());
    }
    let bounds = Bounds::for_proto(spec.proto, &spec.params);
    let panel = probe_seeds(spec.seed, spec.probes);
    let mut space = PlanSpace::new(
        spec.cfg.n,
        spec.params.max_faults().max(1),
        spec.proto.round_budget(&spec.params),
    );
    if spec.strategy == Strategy::Guided {
        let targets = mine_targets(spec, &space);
        space = space.with_targets(targets);
    }

    let mut champion: Option<Candidate> = None;
    let mut incumbent: Option<Candidate> = None; // annealing walker state
    let mut generations = Vec::new();
    let mut evaluated = 0u64;
    let mut hits = 0u64;
    let mut first_error: Option<String> = None;

    let mut gen = 0u64;
    while evaluated < spec.budget {
        let batch_size = (spec.budget - evaluated).min(GENERATION);
        let plan = TrialPlan::new(spec.seed, batch_size)
            .first(evaluated)
            .jobs(spec.jobs);
        let incumbent_plan = incumbent.as_ref().map(|c| (c.plan.clone(), c.wire.clone()));
        let batch = ParRunner::new(plan).run(|trial, seed| {
            let mut rng = SmallRng::seed_from_u64(seed);
            let proposal = match (spec.strategy, &incumbent_plan) {
                (Strategy::Random, _) | (Strategy::Anneal, None) => random_plan(&mut rng, &space),
                (Strategy::Guided, _) => guided_plan(&mut rng, &space),
                (Strategy::Anneal, Some((base, _))) => mutate_plan(&mut rng, base, &space),
            };
            let wire = spec.wire.then(|| match (spec.strategy, &incumbent_plan) {
                (Strategy::Anneal, Some((_, Some(base)))) => {
                    mutate_wire_plan(&mut rng, base, &space)
                }
                _ => random_wire_plan(&mut rng, &space),
            });
            evaluate(spec, &bounds, &panel, trial, proposal, wire)
        });
        evaluated += batch.len() as u64;

        let mut gen_best: Option<Candidate> = None;
        for outcome in batch.outcomes {
            match outcome.value {
                Ok(cand) => {
                    observer(&cand);
                    hits += u64::from(cand.hit);
                    if gen_best.as_ref().is_none_or(|b| better(&cand, b)) {
                        gen_best = Some(cand);
                    }
                }
                Err(e) => {
                    if first_error.is_none() {
                        first_error = Some(e);
                    }
                }
            }
        }
        let Some(gen_best) = gen_best else {
            return Err(first_error.unwrap_or_else(|| "hunt evaluated no candidates".into()));
        };

        if champion.as_ref().is_none_or(|c| better(&gen_best, c)) {
            champion = Some(gen_best.clone());
        }
        // Annealing acceptance: always climb; sometimes accept a downhill
        // move early on. The coin is drawn from a per-generation stream, so
        // the walk is identical at any thread count.
        let accept = match incumbent.as_ref() {
            None => true,
            Some(inc) => {
                if gen_best.score >= inc.score {
                    true
                } else {
                    let temp = 0.5 * 0.85f64.powi(gen.min(64) as i32);
                    let scale = inc.score.abs().max(1.0);
                    let p = ((gen_best.score - inc.score) / (scale * temp)).exp();
                    let mut coin =
                        SmallRng::seed_from_u64(stream_seed(spec.seed, SALT_ANNEAL ^ gen));
                    coin.random_bool(p.clamp(0.0, 1.0))
                }
            }
        };
        if accept {
            incumbent = Some(gen_best.clone());
        }

        generations.push(GenSummary {
            generation: gen,
            best_score: gen_best.score,
            hits,
            champion_score: champion.as_ref().map_or(f64::NAN, |c| c.score),
        });
        gen += 1;
    }

    Ok(HuntReport {
        champion: champion.expect("budget >= 1 yields a champion"),
        evaluated,
        hits,
        generations,
        bounds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftc_core::prelude::Params;

    fn spec(strategy: Strategy, objective: Objective, jobs: usize) -> HuntSpec {
        let params = Params::new(16, 0.5).unwrap();
        let cfg = SimConfig::new(16).max_rounds(params.le_round_budget());
        HuntSpec {
            proto: ProtoKind::Le,
            objective,
            params,
            cfg,
            zeros: 0.05,
            budget: 24,
            probes: 2,
            seed: 42,
            jobs,
            strategy,
            substrate: Substrate::Engine,
            wire: false,
        }
    }

    fn plan_key(c: &Candidate) -> (u64, String, u64) {
        (c.trial, format!("{:?}", c.plan.entries()), c.probe_seed)
    }

    #[test]
    fn strategy_parses() {
        assert_eq!(Strategy::parse("anneal").unwrap(), Strategy::Anneal);
        assert_eq!(Strategy::parse("guided").unwrap().name(), "guided");
        assert!(Strategy::parse("bfs").is_err());
    }

    #[test]
    fn rejects_mismatched_objective_and_zero_budget() {
        let mut s = spec(Strategy::Random, Objective::Disagreement, 1);
        assert!(run_hunt(&s).is_err());
        s.objective = Objective::Failure;
        s.budget = 0;
        assert!(run_hunt(&s).is_err());
    }

    #[test]
    fn hunt_is_jobs_invariant_for_every_strategy() {
        for strategy in [Strategy::Random, Strategy::Guided, Strategy::Anneal] {
            let one = run_hunt(&spec(strategy, Objective::Failure, 1)).unwrap();
            let four = run_hunt(&spec(strategy, Objective::Failure, 4)).unwrap();
            assert_eq!(
                plan_key(&one.champion),
                plan_key(&four.champion),
                "champion diverged under --jobs for {strategy:?}"
            );
            assert_eq!(one.champion.score, four.champion.score);
            assert_eq!(one.hits, four.hits, "hit count diverged for {strategy:?}");
            assert_eq!(one.evaluated, 24);
            assert_eq!(one.generations.len(), four.generations.len());
            for (a, b) in one.generations.iter().zip(four.generations.iter()) {
                assert_eq!(a.best_score, b.best_score);
                assert_eq!(a.hits, b.hits);
            }
        }
    }

    #[test]
    fn observer_streams_every_candidate_in_trial_order_at_any_jobs() {
        for jobs in [1usize, 4] {
            let mut trials = Vec::new();
            let report =
                run_hunt_observed(&spec(Strategy::Random, Objective::Failure, jobs), |c| {
                    trials.push(c.trial);
                })
                .unwrap();
            assert_eq!(trials.len() as u64, report.evaluated);
            assert!(
                trials.windows(2).all(|w| w[0] < w[1]),
                "observer saw candidates out of trial order at jobs={jobs}: {trials:?}"
            );
        }
    }

    #[test]
    fn wire_hunts_on_the_channel_substrate_match_clean_engine_hunts() {
        // Wire faults are delivery-preserving and the channel runtime is
        // bit-identical to the engine, so the chaotic hunt must find the
        // same champion with the same score — the whole point of hunting
        // with --wire-faults is that any divergence here is a runtime bug.
        let mut clean = spec(Strategy::Anneal, Objective::MaxMessages, 1);
        clean.budget = 16;
        let mut chaotic = clean.clone();
        chaotic.substrate = Substrate::Channel(2);
        chaotic.wire = true;
        let a = run_hunt(&clean).unwrap();
        let b = run_hunt(&chaotic).unwrap();
        assert_eq!(plan_key(&a.champion), plan_key(&b.champion));
        assert_eq!(a.champion.score, b.champion.score);
        assert_eq!(a.hits, b.hits);
        assert!(a.champion.wire.is_none());
        assert!(b.champion.wire.is_some(), "wire hunt lost its wire plan");
    }

    #[test]
    fn max_messages_hunt_reports_costs() {
        let report = run_hunt(&spec(Strategy::Random, Objective::MaxMessages, 0)).unwrap();
        assert!(report.champion.score >= 1.0, "LE always sends messages");
        assert_eq!(
            report.champion.score,
            report.champion.observation.fingerprint.msgs_sent as f64
        );
        assert!(report.bounds.message_bound > 0.0);
    }

    #[test]
    fn probe_panel_is_stable_and_distinct() {
        let a = probe_seeds(9, 4);
        let b = probe_seeds(9, 4);
        assert_eq!(a, b);
        let mut u = a.clone();
        u.sort_unstable();
        u.dedup();
        assert_eq!(u.len(), 4);
        assert_eq!(probe_seeds(9, 0).len(), 1, "panel is never empty");
    }
}
