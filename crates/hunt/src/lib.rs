//! # ftc-hunt — adversary search over crash-schedule space
//!
//! The paper's theorems are `O(·)` upper bounds that hold *with high
//! probability against every static crash adversary*. The simulator can
//! only sample adversaries; this crate searches for the bad ones. It
//! hunts crash schedules ([`FaultPlan`]s) that falsify a property or blow
//! a cost bound, shrinks what it finds to a minimal reproducer, and emits
//! a replayable [`Artifact`] that re-executes bit-for-bit on the sim
//! engine **and** on the `ftc-net` cluster runtimes — so every
//! counterexample the hunt keeps is a real-wire counterexample, and every
//! committed artifact is a standing CI check.
//!
//! The pipeline, one module per stage:
//!
//! * [`proto`] — runs either protocol on any substrate and condenses the
//!   result into a replay-comparable [`Fingerprint`];
//! * [`objective`] — scores observations (two leaders, disagreement,
//!   failure, message/round cost) and decides what counts as a hit;
//! * [`mutate`] — proposes schedules: uniform, influence-cloud-guided
//!   (via `ftc-lowerbound`), or local mutations;
//! * [`search`] — the budgeted generation loop on [`ParRunner`]:
//!   deterministic in `(spec, seed, budget)` and invariant under
//!   `--jobs`;
//! * [`shrink`] — ddmin over crash entries, then filter and round
//!   simplification, all against the exact counterexample seed;
//! * [`artifact`] — the JSON bundle `ftc replay` re-checks.
//!
//! [`FaultPlan`]: ftc_sim::prelude::FaultPlan
//! [`ParRunner`]: ftc_sim::runner::ParRunner
//! [`Fingerprint`]: crate::proto::Fingerprint
//! [`Artifact`]: crate::artifact::Artifact

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod mutate;
pub mod objective;
pub mod proto;
pub mod search;
pub mod shrink;

/// Convenience re-exports of the subsystem's surface.
pub mod prelude {
    pub use crate::artifact::{Artifact, ReplayReport, ARTIFACT_VERSION};
    pub use crate::mutate::{
        guided_plan, mutate_plan, mutate_wire_plan, random_plan, random_wire_plan, PlanSpace,
    };
    pub use crate::objective::{Bounds, Objective};
    pub use crate::proto::{observe, observe_wire, Fingerprint, Observation, ProtoKind, Substrate};
    pub use crate::search::{
        run_hunt, run_hunt_observed, Candidate, HuntReport, HuntSpec, Strategy,
    };
    pub use crate::shrink::{shrink, ShrinkReport};
}
