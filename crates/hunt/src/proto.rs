//! Protocol bridging: one observation type for both of the paper's
//! protocols, on any execution substrate.
//!
//! The search layer is protocol-agnostic — it manipulates schedules and
//! scores — so this module concentrates everything that knows about
//! [`LeNode`]/[`AgreeNode`]: constructing node factories, running a
//! scripted schedule on the sim engine or the `ftc-net` runtimes, and
//! condensing the result into an [`Observation`] with a replay-comparable
//! [`Fingerprint`].

use ftc_core::prelude::*;
use ftc_mesh::runtime::{run_over_mesh, run_over_mesh_faulty};
use ftc_net::prelude::*;
use ftc_sim::engine::{run, RunResult, SimConfig};
use ftc_sim::ids::{NodeId, Round};
use ftc_sim::json::{Json, JsonError};
use ftc_sim::prelude::{FaultPlan, ScriptedCrash};

/// Which of the paper's protocols the hunt attacks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProtoKind {
    /// Implicit leader election (Theorem 4.1).
    Le,
    /// Implicit binary agreement (Theorem 5.1).
    Agree,
}

impl ProtoKind {
    /// Parses a `--proto` argument.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "le" => Ok(ProtoKind::Le),
            "agree" => Ok(ProtoKind::Agree),
            other => Err(format!("unknown protocol {other} (le|agree)")),
        }
    }

    /// The CLI name.
    pub fn name(self) -> &'static str {
        match self {
            ProtoKind::Le => "le",
            ProtoKind::Agree => "agree",
        }
    }

    /// The protocol's round budget under `params`.
    pub fn round_budget(self, params: &Params) -> u32 {
        match self {
            ProtoKind::Le => params.le_round_budget(),
            ProtoKind::Agree => params.agreement_round_budget(),
        }
    }

    /// The paper's whp message bound for this protocol under `params`.
    pub fn message_bound(self, params: &Params) -> f64 {
        match self {
            ProtoKind::Le => params.le_message_bound(),
            ProtoKind::Agree => params.agreement_message_bound(),
        }
    }
}

/// Which substrate executes the schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Substrate {
    /// The in-process sim engine (`ftc_sim::engine::run`).
    Engine,
    /// The `ftc-net` in-process channel mesh with this many workers.
    Channel(usize),
    /// The `ftc-net` localhost TCP mesh with this many workers.
    Tcp(usize),
    /// The `ftc-mesh` multiplexed socket runtime with this many procs.
    Mesh(usize),
}

/// Everything observable about one execution that replay must reproduce.
///
/// Equality of two fingerprints across substrates is exactly the PR-3
/// bit-equivalence guarantee projected onto the fields the objectives
/// read, which is what makes a hunted counterexample a real-wire
/// counterexample.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Fingerprint {
    /// Whether the protocol's success predicate held.
    pub success: bool,
    /// The agreed outcome: leader rank (LE) or decided bit (agreement).
    pub outcome: Option<u64>,
    /// Messages sent.
    pub msgs_sent: u64,
    /// Messages delivered.
    pub msgs_delivered: u64,
    /// Bits sent.
    pub bits_sent: u64,
    /// Rounds executed.
    pub rounds: u32,
    /// `(node, round)` crash schedule as it actually fired.
    pub crashed: Vec<(u32, Round)>,
}

impl Fingerprint {
    /// JSON encoding.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("success".into(), Json::Bool(self.success)),
            (
                "outcome".into(),
                self.outcome.map_or(Json::Null, Json::UInt),
            ),
            ("msgs_sent".into(), Json::UInt(self.msgs_sent)),
            ("msgs_delivered".into(), Json::UInt(self.msgs_delivered)),
            ("bits_sent".into(), Json::UInt(self.bits_sent)),
            ("rounds".into(), Json::UInt(u64::from(self.rounds))),
            (
                "crashed".into(),
                Json::Arr(
                    self.crashed
                        .iter()
                        .map(|&(node, round)| {
                            Json::Arr(vec![
                                Json::UInt(u64::from(node)),
                                Json::UInt(u64::from(round)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Decodes a fingerprint from its [`Fingerprint::to_json`] form.
    pub fn from_json(v: &Json) -> Result<Self, JsonError> {
        let crashed = v
            .field("crashed")?
            .as_arr()?
            .iter()
            .map(|pair| {
                let pair = pair.as_arr()?;
                match pair {
                    [node, round] => Ok((node.as_u64()? as u32, round.as_u64()? as u32)),
                    _ => Err(JsonError {
                        message: "crash entry must be a [node, round] pair".into(),
                    }),
                }
            })
            .collect::<Result<Vec<_>, JsonError>>()?;
        Ok(Fingerprint {
            success: v.field("success")?.as_bool()?,
            outcome: match v.field("outcome")? {
                Json::Null => None,
                other => Some(other.as_u64()?),
            },
            msgs_sent: v.field("msgs_sent")?.as_u64()?,
            msgs_delivered: v.field("msgs_delivered")?.as_u64()?,
            bits_sent: v.field("bits_sent")?.as_u64()?,
            rounds: v.field("rounds")?.as_u64()? as u32,
            crashed,
        })
    }
}

/// The condensed result of running one schedule once.
#[derive(Clone, Debug, PartialEq)]
pub struct Observation {
    /// Replay-comparable execution summary.
    pub fingerprint: Fingerprint,
    /// Safety-violation width: number of alive elected nodes (LE) or
    /// distinct alive decisions (agreement). `>= 2` is a violation.
    pub distinct: u32,
}

/// The agreement input assignment used by the CLI: every `stride`-th node
/// holds 0, the rest hold 1, with `stride` derived from the `zeros`
/// fraction. Kept as a function of `zeros` so artifacts can record one
/// number instead of `n` bits.
pub fn input_stride(zeros: f64) -> u32 {
    if zeros <= 0.0 {
        u32::MAX
    } else {
        (1.0 / zeros).round().max(1.0) as u32
    }
}

fn agree_input(stride: u32, id: NodeId) -> bool {
    !(stride != u32::MAX && id.0.is_multiple_of(stride))
}

fn le_observation(r: &RunResult<LeNode>) -> Observation {
    let out = LeOutcome::evaluate(r);
    Observation {
        fingerprint: Fingerprint {
            success: out.success,
            outcome: out.agreed_leader.map(|rank| rank.0),
            msgs_sent: r.metrics.msgs_sent,
            msgs_delivered: r.metrics.msgs_delivered,
            bits_sent: r.metrics.bits_sent,
            rounds: r.metrics.rounds,
            crashed: r
                .metrics
                .crashes
                .iter()
                .map(|&(node, round)| (node.0, round))
                .collect(),
        },
        distinct: out.elected_alive.len() as u32,
    }
}

fn agree_observation(r: &RunResult<AgreeNode>) -> Observation {
    let out = AgreeOutcome::evaluate(r);
    Observation {
        fingerprint: Fingerprint {
            success: out.success,
            outcome: out.agreed_value.map(u64::from),
            msgs_sent: r.metrics.msgs_sent,
            msgs_delivered: r.metrics.msgs_delivered,
            bits_sent: r.metrics.bits_sent,
            rounds: r.metrics.rounds,
            crashed: r
                .metrics
                .crashes
                .iter()
                .map(|&(node, round)| (node.0, round))
                .collect(),
        },
        distinct: out.decisions.len() as u32,
    }
}

/// Runs `plan` against `proto` on the chosen substrate and condenses the
/// result. Deterministic in `(cfg, plan)`; the substrate never changes the
/// observation (that is the bit-equivalence guarantee this crate leans on,
/// and what `ftc replay` re-asserts for every artifact).
pub fn observe(
    proto: ProtoKind,
    params: &Params,
    cfg: &SimConfig,
    zeros: f64,
    plan: &FaultPlan,
    substrate: Substrate,
) -> Result<Observation, String> {
    observe_wire(proto, params, cfg, zeros, plan, None, substrate)
}

/// [`observe`], with socket-level chaos layered under the crash schedule.
///
/// A [`WireFaultPlan`] perturbs only how frames travel (order, copies,
/// write fragmentation, pacing) — never *which* model messages arrive —
/// so the observation must be identical with and without it; hunting with
/// wire faults is differential testing of the runtimes, not a wider model
/// adversary. The engine has no wire, so `wire` is ignored there: that is
/// exactly [`WireFaultPlan::degrade`]'s empty-plan equivalence, which
/// makes engine replays of wire-fault counterexamples meaningful.
pub fn observe_wire(
    proto: ProtoKind,
    params: &Params,
    cfg: &SimConfig,
    zeros: f64,
    plan: &FaultPlan,
    wire: Option<&WireFaultPlan>,
    substrate: Substrate,
) -> Result<Observation, String> {
    let mut adversary = ScriptedCrash::new(plan.clone());
    match proto {
        ProtoKind::Le => {
            let factory = |_| LeNode::new(params.clone());
            let r = match (substrate, wire) {
                (Substrate::Engine, _) => run(cfg, factory, &mut adversary),
                (Substrate::Channel(workers), None) => {
                    run_over_channel(cfg, workers, factory, &mut adversary).run
                }
                (Substrate::Channel(workers), Some(w)) => {
                    run_over_channel_faulty(cfg, workers, factory, &mut adversary, w).run
                }
                (Substrate::Tcp(workers), None) => {
                    run_over_tcp(cfg, workers, factory, &mut adversary)
                        .map_err(|e| format!("tcp replay: {e}"))?
                        .run
                }
                (Substrate::Tcp(workers), Some(w)) => {
                    run_over_tcp_faulty(cfg, workers, factory, &mut adversary, w)
                        .map_err(|e| format!("tcp replay: {e}"))?
                        .run
                }
                (Substrate::Mesh(procs), None) => {
                    run_over_mesh(cfg, procs, factory, &mut adversary)
                        .map_err(|e| format!("mesh replay: {e}"))?
                        .run
                }
                (Substrate::Mesh(procs), Some(w)) => {
                    run_over_mesh_faulty(cfg, procs, factory, &mut adversary, w)
                        .map_err(|e| format!("mesh replay: {e}"))?
                        .run
                }
            };
            Ok(le_observation(&r))
        }
        ProtoKind::Agree => {
            let stride = input_stride(zeros);
            let factory = |id: NodeId| AgreeNode::new(params.clone(), agree_input(stride, id));
            let r = match (substrate, wire) {
                (Substrate::Engine, _) => run(cfg, factory, &mut adversary),
                (Substrate::Channel(workers), None) => {
                    run_over_channel(cfg, workers, factory, &mut adversary).run
                }
                (Substrate::Channel(workers), Some(w)) => {
                    run_over_channel_faulty(cfg, workers, factory, &mut adversary, w).run
                }
                (Substrate::Tcp(workers), None) => {
                    run_over_tcp(cfg, workers, factory, &mut adversary)
                        .map_err(|e| format!("tcp replay: {e}"))?
                        .run
                }
                (Substrate::Tcp(workers), Some(w)) => {
                    run_over_tcp_faulty(cfg, workers, factory, &mut adversary, w)
                        .map_err(|e| format!("tcp replay: {e}"))?
                        .run
                }
                (Substrate::Mesh(procs), None) => {
                    run_over_mesh(cfg, procs, factory, &mut adversary)
                        .map_err(|e| format!("mesh replay: {e}"))?
                        .run
                }
                (Substrate::Mesh(procs), Some(w)) => {
                    run_over_mesh_faulty(cfg, procs, factory, &mut adversary, w)
                        .map_err(|e| format!("mesh replay: {e}"))?
                        .run
                }
            };
            Ok(agree_observation(&r))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftc_sim::adversary::DeliveryFilter;

    #[test]
    fn proto_kind_parses_and_names() {
        assert_eq!(ProtoKind::parse("le").unwrap(), ProtoKind::Le);
        assert_eq!(ProtoKind::parse("agree").unwrap().name(), "agree");
        assert!(ProtoKind::parse("paxos").is_err());
    }

    #[test]
    fn input_stride_matches_cli_convention() {
        assert_eq!(input_stride(0.0), u32::MAX);
        assert_eq!(input_stride(0.05), 20);
        assert_eq!(input_stride(1.0), 1);
    }

    #[test]
    fn fingerprint_round_trips() {
        let fp = Fingerprint {
            success: false,
            outcome: Some(u64::MAX - 3),
            msgs_sent: 120,
            msgs_delivered: 100,
            bits_sent: 4096,
            rounds: 17,
            crashed: vec![(3, 0), (9, 2)],
        };
        let back = Fingerprint::from_json(&Json::parse(&fp.to_json().render()).unwrap()).unwrap();
        assert_eq!(back, fp);
        let none = Fingerprint {
            outcome: None,
            ..fp
        };
        let back = Fingerprint::from_json(&Json::parse(&none.to_json().render()).unwrap()).unwrap();
        assert_eq!(back.outcome, None);
    }

    #[test]
    fn wire_faults_never_change_the_observation() {
        let params = Params::new(12, 0.5).unwrap();
        let cfg = SimConfig::new(12)
            .seed(5)
            .max_rounds(params.le_round_budget());
        let plan = FaultPlan::new().crash(NodeId(3), 1, DeliveryFilter::KeepFirst(2));
        let wire = WireFaultPlan::new(17)
            .fault(NodeId(0), 0, WireFaultKind::Reorder)
            .fault(NodeId(1), 0, WireFaultKind::Duplicate)
            .fault(NodeId(3), 1, WireFaultKind::Duplicate);
        let clean = observe(ProtoKind::Le, &params, &cfg, 0.05, &plan, Substrate::Engine).unwrap();
        for substrate in [Substrate::Engine, Substrate::Channel(2)] {
            let chaotic = observe_wire(
                ProtoKind::Le,
                &params,
                &cfg,
                0.05,
                &plan,
                Some(&wire),
                substrate,
            )
            .unwrap();
            assert_eq!(chaotic, clean, "wire faults leaked into {substrate:?}");
        }
    }

    #[test]
    fn engine_and_channel_observations_agree() {
        let params = Params::new(16, 0.5).unwrap();
        let cfg = SimConfig::new(16)
            .seed(7)
            .max_rounds(params.le_round_budget());
        let plan = FaultPlan::new()
            .crash(NodeId(2), 0, DeliveryFilter::DropAll)
            .crash(NodeId(5), 1, DeliveryFilter::KeepFirst(1));
        let engine = observe(ProtoKind::Le, &params, &cfg, 0.05, &plan, Substrate::Engine).unwrap();
        let cluster = observe(
            ProtoKind::Le,
            &params,
            &cfg,
            0.05,
            &plan,
            Substrate::Channel(2),
        )
        .unwrap();
        assert_eq!(engine, cluster);
        assert_eq!(engine.fingerprint.crashed, vec![(2, 0), (5, 1)]);
    }
}
