//! ddmin-style reduction of a found counterexample schedule.
//!
//! Every probe of a reduced schedule replays the exact counterexample seed
//! on the deterministic engine, so the preservation predicate is exact —
//! no flakiness, no statistical re-testing. Reduction proceeds in three
//! passes, each of which can only make the schedule simpler:
//!
//! 1. **Entry ddmin** — delete crash entries in shrinking chunks (the
//!    classic Zeller/Hildebrandt delta-debugging loop over the entry list)
//!    until the schedule is 1-minimal: no single entry can be dropped.
//! 2. **Filter simplification** — replace each surviving entry's delivery
//!    filter with a strictly simpler one ([`DeliveryFilter::DropAll`],
//!    then [`DeliveryFilter::DeliverAll`]).
//! 3. **Round minimisation** — binary-search each surviving crash round
//!    down toward 0 (earlier crashes are simpler stories).

use ftc_sim::adversary::DeliveryFilter;
use ftc_sim::prelude::FaultPlan;

use crate::objective::Bounds;
use crate::proto::{observe, Observation, Substrate};
use crate::search::HuntSpec;

/// What the shrinker did, for reporting.
#[derive(Clone, Debug)]
pub struct ShrinkReport {
    /// The reduced schedule.
    pub plan: FaultPlan,
    /// The reduced schedule's observation at the counterexample seed.
    pub observation: Observation,
    /// Crash entries before reduction.
    pub entries_before: usize,
    /// Crash entries after reduction.
    pub entries_after: usize,
    /// Probes (engine runs) the reduction spent.
    pub probes: u64,
}

struct Ctx<'a> {
    spec: &'a HuntSpec,
    bounds: &'a Bounds,
    seed: u64,
    score: f64,
    probes: u64,
}

impl Ctx<'_> {
    /// Re-runs the counterexample probe under `plan`; `Some(obs)` iff the
    /// reduced plan still exhibits the property being preserved.
    fn keeps(&mut self, plan: &FaultPlan) -> Option<Observation> {
        self.probes += 1;
        let mut cfg = self.spec.cfg.clone();
        cfg.seed = self.seed;
        let obs = observe(
            self.spec.proto,
            &self.spec.params,
            &cfg,
            self.spec.zeros,
            plan,
            Substrate::Engine,
        )
        .ok()?;
        self.spec
            .objective
            .preserved(self.score, &obs, self.bounds)
            .then_some(obs)
    }
}

/// One ddmin pass over the entry list: returns a 1-minimal sub-plan that
/// still satisfies [`Ctx::keeps`].
fn ddmin_entries(ctx: &mut Ctx<'_>, plan: &FaultPlan) -> FaultPlan {
    let mut current: Vec<usize> = (0..plan.entries().len()).collect();
    let rebuild = |keep: &[usize]| {
        FaultPlan::from_entries(keep.iter().map(|&i| plan.entries()[i].clone()).collect())
    };
    let mut chunks = 2usize;
    while current.len() >= 2 {
        let chunk = current.len().div_ceil(chunks);
        let mut reduced = false;
        let mut start = 0usize;
        while start < current.len() {
            let end = (start + chunk).min(current.len());
            // Try the complement: everything except current[start..end].
            let complement: Vec<usize> = current[..start]
                .iter()
                .chain(&current[end..])
                .copied()
                .collect();
            if !complement.is_empty() && ctx.keeps(&rebuild(&complement)).is_some() {
                current = complement;
                chunks = chunks.saturating_sub(1).max(2);
                reduced = true;
                // Restart the sweep over the reduced list.
                start = 0;
            } else {
                start = end;
            }
        }
        if !reduced {
            if chunk <= 1 {
                break;
            }
            chunks = (chunks * 2).min(current.len());
        }
    }
    rebuild(&current)
}

/// Replaces each entry's filter with a simpler one where the property
/// survives it. Simplicity order: `DropAll` (clean stop) beats everything
/// except `DeliverAll` (the crash round does not matter at all).
fn simplify_filters(ctx: &mut Ctx<'_>, mut plan: FaultPlan) -> FaultPlan {
    for idx in 0..plan.entries().len() {
        let (node, round, filter) = plan.entries()[idx].clone();
        for simpler in [DeliveryFilter::DeliverAll, DeliveryFilter::DropAll] {
            if filter == simpler {
                break;
            }
            let candidate = plan.with_entry(idx, (node, round, simpler.clone()));
            if ctx.keeps(&candidate).is_some() {
                plan = candidate;
                break;
            }
        }
    }
    plan
}

/// Binary-searches each crash round down toward 0.
fn minimise_rounds(ctx: &mut Ctx<'_>, mut plan: FaultPlan) -> FaultPlan {
    for idx in 0..plan.entries().len() {
        let (node, round, filter) = plan.entries()[idx].clone();
        let mut lo = 0u32; // lowest untested-or-keeping round
        let mut hi = round; // known-keeping round
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let candidate = plan.with_entry(idx, (node, mid, filter.clone()));
            if ctx.keeps(&candidate).is_some() {
                plan = candidate;
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
    }
    plan
}

/// Shrinks `plan`, preserving the objective's verdict at `probe_seed`
/// with original score `score`. Deterministic in its arguments.
pub fn shrink(
    spec: &HuntSpec,
    bounds: &Bounds,
    probe_seed: u64,
    score: f64,
    plan: &FaultPlan,
) -> ShrinkReport {
    let mut ctx = Ctx {
        spec,
        bounds,
        seed: probe_seed,
        score,
        probes: 0,
    };
    let entries_before = plan.entries().len();
    if ctx.keeps(plan).is_none() {
        // The plan does not exhibit the property at this seed — e.g. the
        // hunt's budget ran out without a hit and the champion is merely
        // the worst sample. Nothing to preserve, so nothing to shrink.
        let mut cfg = spec.cfg.clone();
        cfg.seed = probe_seed;
        let observation = observe(
            spec.proto,
            &spec.params,
            &cfg,
            spec.zeros,
            plan,
            Substrate::Engine,
        )
        .expect("engine observation");
        return ShrinkReport {
            entries_before,
            entries_after: entries_before,
            plan: plan.clone(),
            observation,
            probes: ctx.probes,
        };
    }
    let reduced = ddmin_entries(&mut ctx, plan);
    let reduced = simplify_filters(&mut ctx, reduced);
    let reduced = minimise_rounds(&mut ctx, reduced);
    let observation = ctx
        .keeps(&reduced)
        .expect("shrinker invariant: the reduced plan keeps the property");
    ShrinkReport {
        entries_before,
        entries_after: reduced.entries().len(),
        plan: reduced,
        observation,
        probes: ctx.probes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::Objective;
    use crate::proto::ProtoKind;
    use crate::search::{probe_seeds, Strategy};
    use ftc_core::prelude::Params;
    use ftc_sim::engine::SimConfig;
    use ftc_sim::ids::NodeId;

    fn spec(objective: Objective, proto: ProtoKind) -> HuntSpec {
        let params = Params::new(16, 0.5).unwrap();
        let budget = proto.round_budget(&params);
        HuntSpec {
            proto,
            objective,
            params: params.clone(),
            cfg: SimConfig::new(16).max_rounds(budget),
            zeros: 0.05,
            budget: 1,
            probes: 1,
            seed: 7,
            jobs: 1,
            strategy: Strategy::Random,
            substrate: Substrate::Engine,
            wire: false,
        }
    }

    /// A deliberately bloated plan whose only load-bearing content is
    /// "everything crashes immediately": ddmin should strip it hard.
    fn bloated_plan() -> FaultPlan {
        let mut plan = FaultPlan::new();
        for node in 0..8u32 {
            plan = plan.crash(
                NodeId(node),
                u32::from(node % 3),
                if node % 2 == 0 {
                    DeliveryFilter::DropAll
                } else {
                    DeliveryFilter::KeepFirst(1)
                },
            );
        }
        plan
    }

    #[test]
    fn shrink_preserves_cost_verdict_and_reduces() {
        let spec = spec(Objective::MaxMessages, ProtoKind::Le);
        let bounds = Bounds::for_proto(spec.proto, &spec.params);
        let seed = probe_seeds(spec.seed, 1)[0];
        let plan = bloated_plan();
        // Baseline score of the bloated plan at the probe seed.
        let mut cfg = spec.cfg.clone();
        cfg.seed = seed;
        let obs = observe(
            spec.proto,
            &spec.params,
            &cfg,
            0.05,
            &plan,
            Substrate::Engine,
        )
        .unwrap();
        let score = spec.objective.score(&obs);

        let report = shrink(&spec, &bounds, seed, score, &plan);
        assert!(report.entries_after <= report.entries_before);
        assert!(
            spec.objective.score(&report.observation) >= score,
            "shrinking lost the cost"
        );
        assert!(report.probes > 0);
        // Determinism: shrinking again yields the identical plan.
        let again = shrink(&spec, &bounds, seed, score, &plan);
        assert_eq!(report.plan.entries(), again.plan.entries());
        assert_eq!(report.probes, again.probes);
    }

    #[test]
    fn shrinking_a_non_hit_is_a_harmless_no_op() {
        // A single benign crash at n=16 almost certainly does not break
        // LE; shrinking under the Failure objective must not panic and
        // must leave the plan untouched.
        let spec = spec(Objective::Failure, ProtoKind::Le);
        let bounds = Bounds::for_proto(spec.proto, &spec.params);
        let seed = probe_seeds(spec.seed, 1)[0];
        let plan = FaultPlan::new().crash(NodeId(0), 3, DeliveryFilter::DeliverAll);
        let mut cfg = spec.cfg.clone();
        cfg.seed = seed;
        let obs = observe(
            spec.proto,
            &spec.params,
            &cfg,
            0.05,
            &plan,
            Substrate::Engine,
        )
        .unwrap();
        if spec.objective.hit(&obs, &bounds) {
            return; // freak failure run: the other tests cover the hit path
        }
        let report = shrink(&spec, &bounds, seed, 0.0, &plan);
        assert_eq!(report.plan.entries(), plan.entries());
        assert_eq!(report.entries_before, report.entries_after);
    }

    #[test]
    fn shrink_keeps_failure_hits() {
        // Hunt cheaply for a failing LE run, then shrink it.
        let spec = spec(Objective::Failure, ProtoKind::Le);
        let bounds = Bounds::for_proto(spec.proto, &spec.params);
        let panel = probe_seeds(spec.seed, 3);
        let mut found = None;
        'outer: for salt in 0..200u64 {
            use rand::SeedableRng;
            let mut rng = rand::rngs::SmallRng::seed_from_u64(salt);
            let space = crate::mutate::PlanSpace::new(16, spec.params.max_faults().max(1), 6);
            let plan = crate::mutate::random_plan(&mut rng, &space);
            for &seed in &panel {
                let mut cfg = spec.cfg.clone();
                cfg.seed = seed;
                let obs = observe(
                    spec.proto,
                    &spec.params,
                    &cfg,
                    0.05,
                    &plan,
                    Substrate::Engine,
                )
                .unwrap();
                if spec.objective.hit(&obs, &bounds) {
                    found = Some((plan, seed));
                    break 'outer;
                }
            }
        }
        let Some((plan, seed)) = found else {
            // The protocol resisting 200 random schedules is itself fine;
            // the cost-objective test above still exercises the shrinker.
            return;
        };
        let report = shrink(&spec, &bounds, seed, 1.0, &plan);
        assert!(!report.observation.fingerprint.success);
        assert!(report.entries_after >= 1);
    }
}
