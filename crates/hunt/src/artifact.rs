//! Replayable counterexample bundles.
//!
//! An [`Artifact`] is the hunt's unit of evidence: everything needed to
//! re-execute a found schedule byte-for-byte — protocol, parameters,
//! the exact [`SimConfig`] (including the probe seed), the schedule — plus
//! what the hunt observed, so replay is a *check*, not just a rerun.
//! `ftc replay` re-executes the bundle on the sim engine or an `ftc-net`
//! runtime and diffs the fresh fingerprint against the recorded one;
//! a committed artifact thereby pins the PR-3 bit-equivalence guarantee to
//! a concrete adversarial schedule in CI.

use ftc_core::prelude::Params;
use ftc_net::prelude::WireFaultPlan;
use ftc_sim::engine::SimConfig;
use ftc_sim::json::{Json, JsonError};
use ftc_sim::prelude::FaultPlan;

use crate::objective::{Bounds, Objective};
use crate::proto::{observe_wire, Fingerprint, Observation, ProtoKind, Substrate};

/// Current artifact schema version.
pub const ARTIFACT_VERSION: u64 = 1;

/// A self-contained, replayable counterexample.
#[derive(Clone, Debug)]
pub struct Artifact {
    /// Schema version (see [`ARTIFACT_VERSION`]).
    pub version: u64,
    /// The protocol the schedule attacks.
    pub proto: ProtoKind,
    /// The objective the schedule was hunted under.
    pub objective: Objective,
    /// Resilience parameter the protocol ran with.
    pub alpha: f64,
    /// Agreement input density (ignored for LE, recorded regardless).
    pub zeros: f64,
    /// The service election height the schedule was observed at, when the
    /// artifact came out of a long-lived `ftc-serve` run (`None` for
    /// single-shot hunts). Heights replay as standalone elections — the
    /// schedule and config are complete without it — so this is
    /// provenance, not an execution input.
    pub height: Option<u32>,
    /// Exact execution config; `seed` is the counterexample probe seed.
    pub config: SimConfig,
    /// The (shrunk) crash schedule.
    pub schedule: FaultPlan,
    /// The socket-level chaos the counterexample was found under (`None`
    /// for plain hunts). Wire faults are delivery-preserving, so replay
    /// applies them on the socket substrates and ignores them on the
    /// engine — [`WireFaultPlan::degrade`]'s empty-plan equivalence —
    /// which is exactly what makes an engine replay of a wire-fault
    /// artifact a meaningful cross-check rather than a skipped one.
    pub wire: Option<WireFaultPlan>,
    /// Objective score the hunt observed.
    pub score: f64,
    /// Whether the observation was an actual counterexample (vs. merely
    /// the worst schedule the budget found).
    pub hit: bool,
    /// The recorded execution fingerprint replay must reproduce.
    pub fingerprint: Fingerprint,
}

/// The result of replaying an artifact on one substrate.
#[derive(Clone, Debug)]
pub struct ReplayReport {
    /// What the replay ran on.
    pub substrate: Substrate,
    /// The fresh observation.
    pub observation: Observation,
    /// Whether the fresh fingerprint equals the recorded one.
    pub fingerprint_matches: bool,
    /// Whether the objective's hit verdict was reproduced.
    pub verdict_matches: bool,
}

impl ReplayReport {
    /// Replay succeeded: same bytes, same verdict.
    pub fn ok(&self) -> bool {
        self.fingerprint_matches && self.verdict_matches
    }
}

impl Artifact {
    /// The protocol parameters the artifact's runs use.
    pub fn params(&self) -> Result<Params, String> {
        Params::new(self.config.n, self.alpha).map_err(|e| format!("bad artifact params: {e}"))
    }

    /// JSON encoding (compact, deterministic key order). The `height` key
    /// appears only when set, so single-shot artifacts keep their exact
    /// pre-service rendering (committed artifacts must not churn).
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("version".into(), Json::UInt(self.version)),
            ("proto".into(), Json::Str(self.proto.name().into())),
            ("objective".into(), Json::Str(self.objective.name().into())),
            ("alpha".into(), Json::Num(self.alpha)),
            ("zeros".into(), Json::Num(self.zeros)),
        ];
        if let Some(height) = self.height {
            fields.push(("height".into(), Json::UInt(u64::from(height))));
        }
        fields.extend([
            ("config".into(), self.config.to_json()),
            ("schedule".into(), self.schedule.to_json()),
        ]);
        if let Some(wire) = &self.wire {
            fields.push(("wire".into(), wire.to_json()));
        }
        fields.extend([(
            "observed".into(),
            Json::Obj(vec![
                ("score".into(), Json::Num(self.score)),
                ("hit".into(), Json::Bool(self.hit)),
                ("fingerprint".into(), self.fingerprint.to_json()),
            ]),
        )]);
        Json::Obj(fields)
    }

    /// Decodes an artifact from its [`Artifact::to_json`] form.
    pub fn from_json(v: &Json) -> Result<Self, JsonError> {
        let version = v.field("version")?.as_u64()?;
        if version != ARTIFACT_VERSION {
            return Err(JsonError {
                message: format!("unsupported artifact version {version}"),
            });
        }
        let err = |message: String| JsonError { message };
        let observed = v.field("observed")?;
        Ok(Artifact {
            version,
            proto: ProtoKind::parse(v.field("proto")?.as_str()?).map_err(err)?,
            objective: Objective::parse(v.field("objective")?.as_str()?).map_err(err)?,
            alpha: v.field("alpha")?.as_f64()?,
            zeros: v.field("zeros")?.as_f64()?,
            height: match v.get("height") {
                Some(h) => Some(h.as_u64()? as u32),
                None => None,
            },
            config: SimConfig::from_json(v.field("config")?)?,
            schedule: FaultPlan::from_json(v.field("schedule")?)?,
            wire: match v.get("wire") {
                Some(w) => Some(WireFaultPlan::from_json(w)?),
                None => None,
            },
            score: observed.field("score")?.as_f64()?,
            hit: observed.field("hit")?.as_bool()?,
            fingerprint: Fingerprint::from_json(observed.field("fingerprint")?)?,
        })
    }

    /// Renders the artifact as a JSON string (plus trailing newline, so
    /// committed artifacts diff cleanly).
    pub fn render(&self) -> String {
        let mut s = self.to_json().render();
        s.push('\n');
        s
    }

    /// Parses an artifact from a JSON string.
    pub fn parse(s: &str) -> Result<Self, String> {
        let v = Json::parse(s).map_err(|e| format!("artifact JSON: {}", e.message))?;
        Artifact::from_json(&v).map_err(|e| format!("artifact: {}", e.message))
    }

    /// Re-executes the bundle on `substrate` and diffs against the record.
    pub fn replay(&self, substrate: Substrate) -> Result<ReplayReport, String> {
        let params = self.params()?;
        let observation = observe_wire(
            self.proto,
            &params,
            &self.config,
            self.zeros,
            &self.schedule,
            self.wire.as_ref(),
            substrate,
        )?;
        let bounds = Bounds::for_proto(self.proto, &params);
        let fingerprint_matches = observation.fingerprint == self.fingerprint;
        let verdict_matches = self.objective.hit(&observation, &bounds) == self.hit;
        Ok(ReplayReport {
            substrate,
            observation,
            fingerprint_matches,
            verdict_matches,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::observe;
    use ftc_net::prelude::WireFaultKind;
    use ftc_sim::adversary::DeliveryFilter;
    use ftc_sim::ids::NodeId;

    fn sample_artifact() -> Artifact {
        let params = Params::new(16, 0.5).unwrap();
        let config = SimConfig::new(16)
            .seed(0xDEAD_BEEF_CAFE_F00D)
            .max_rounds(params.le_round_budget());
        let schedule = FaultPlan::new()
            .crash(NodeId(3), 0, DeliveryFilter::DropAll)
            .crash(NodeId(11), 2, DeliveryFilter::KeepFirst(1));
        let obs = observe(
            ProtoKind::Le,
            &params,
            &config,
            0.05,
            &schedule,
            Substrate::Engine,
        )
        .unwrap();
        let bounds = Bounds::for_proto(ProtoKind::Le, &params);
        Artifact {
            version: ARTIFACT_VERSION,
            proto: ProtoKind::Le,
            objective: Objective::Failure,
            alpha: 0.5,
            zeros: 0.05,
            height: None,
            config,
            schedule,
            wire: None,
            score: Objective::Failure.score(&obs),
            hit: Objective::Failure.hit(&obs, &bounds),
            fingerprint: obs.fingerprint,
        }
    }

    #[test]
    fn artifact_round_trips_through_json() {
        let art = sample_artifact();
        let back = Artifact::parse(&art.render()).unwrap();
        assert_eq!(back.version, art.version);
        assert_eq!(back.proto, art.proto);
        assert_eq!(back.objective, art.objective);
        assert_eq!(back.alpha, art.alpha);
        assert_eq!(back.config.seed, art.config.seed);
        assert_eq!(back.schedule.entries(), art.schedule.entries());
        assert_eq!(back.fingerprint, art.fingerprint);
        assert_eq!(back.hit, art.hit);
        // And the rendering is deterministic.
        assert_eq!(back.render(), art.render());
    }

    #[test]
    fn height_is_optional_and_round_trips() {
        // Absent: the key is not rendered, and parsing tolerates it.
        let art = sample_artifact();
        assert!(!art.render().contains("\"height\""));
        assert_eq!(Artifact::parse(&art.render()).unwrap().height, None);
        // Present: it renders and round-trips.
        let mut tall = sample_artifact();
        tall.height = Some(37);
        tall.objective = Objective::TwoLeadersAtHeight;
        let back = Artifact::parse(&tall.render()).unwrap();
        assert_eq!(back.height, Some(37));
        assert_eq!(back.objective, Objective::TwoLeadersAtHeight);
        assert_eq!(back.render(), tall.render());
    }

    #[test]
    fn wire_section_is_optional_and_round_trips() {
        // Absent: the key is not rendered, so pre-chaos artifacts keep
        // their committed bytes.
        let art = sample_artifact();
        assert!(!art.render().contains("\"wire\""));
        assert_eq!(Artifact::parse(&art.render()).unwrap().wire, None);
        // Present: it renders, round-trips, and replays on both the
        // engine (where it is ignored) and the channel substrate (where
        // it perturbs the transport without changing the observation).
        let mut chaotic = sample_artifact();
        chaotic.wire = Some(
            WireFaultPlan::new(29)
                .fault(NodeId(3), 0, WireFaultKind::Reorder)
                .fault(NodeId(5), 1, WireFaultKind::Duplicate),
        );
        let back = Artifact::parse(&chaotic.render()).unwrap();
        assert_eq!(back.wire, chaotic.wire);
        assert_eq!(back.render(), chaotic.render());
        let engine = chaotic.replay(Substrate::Engine).unwrap();
        assert!(engine.ok(), "engine replay diverged: {engine:?}");
        let channel = chaotic.replay(Substrate::Channel(2)).unwrap();
        assert!(channel.ok(), "channel replay diverged: {channel:?}");
    }

    #[test]
    fn replay_matches_on_engine_and_channel() {
        let art = sample_artifact();
        let engine = art.replay(Substrate::Engine).unwrap();
        assert!(engine.ok(), "engine replay diverged: {engine:?}");
        let channel = art.replay(Substrate::Channel(2)).unwrap();
        assert!(channel.ok(), "channel replay diverged: {channel:?}");
    }

    #[test]
    fn replay_detects_tampered_fingerprints() {
        let mut art = sample_artifact();
        art.fingerprint.msgs_sent += 1;
        let report = art.replay(Substrate::Engine).unwrap();
        assert!(!report.fingerprint_matches);
    }

    #[test]
    fn version_gate_rejects_future_schemas() {
        let mut art = sample_artifact();
        art.version = 99;
        let s = art.render();
        assert!(Artifact::parse(&s).is_err());
    }
}
