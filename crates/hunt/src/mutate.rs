//! Schedule generators and mutators over [`FaultPlan`] space.
//!
//! Three ways to produce a candidate, all deterministic in the RNG they
//! are handed (the search layer derives that RNG from the per-candidate
//! trial seed, which is what keeps the whole hunt `--jobs`-invariant):
//!
//! * [`random_plan`] — uniform faulty set, uniform crash rounds, uniform
//!   per-crash delivery filters;
//! * [`guided_plan`] — like `random_plan`, but the faulty set and crash
//!   rounds are biased toward high-influence `(node, round)` pairs mined
//!   from a reference trace by `ftc_lowerbound::crash_targets` — the
//!   hunter's approximation of the Section IV-B adversary that crashes
//!   cloud-bridging senders mid-broadcast;
//! * [`mutate_plan`] — one local edit (retarget, retime, refilter, add,
//!   or drop a crash entry) for hill-climbing / annealing.
//!
//! The wire-fault analogues [`random_wire_plan`] / [`mutate_wire_plan`]
//! draw socket-level perturbation schedules ([`WireFaultPlan`]) from the
//! same `(node, round)` box for `--wire-faults` hunts, which search the
//! product space of crash schedules and transport chaos.

use ftc_lowerbound::prelude::CrashTarget;
use ftc_net::prelude::{WireFaultEntry, WireFaultKind, WireFaultPlan};
use ftc_sim::adversary::DeliveryFilter;
use ftc_sim::ids::{NodeId, Round};
use ftc_sim::prelude::FaultPlan;
use rand::rngs::SmallRng;
use rand::Rng;

/// The search-space box a generator draws from.
#[derive(Clone, Debug)]
pub struct PlanSpace {
    /// Ring size.
    pub n: u32,
    /// Maximum number of crash entries (the paper's `f <= (1-alpha) n`).
    pub max_faults: usize,
    /// Crash rounds are drawn from `0..round_budget`.
    pub round_budget: u32,
    /// Influence-ranked `(node, round)` crash targets; empty disables
    /// guidance and [`guided_plan`] degenerates to [`random_plan`].
    pub targets: Vec<CrashTarget>,
}

impl PlanSpace {
    /// A space with no trace guidance.
    pub fn new(n: u32, max_faults: usize, round_budget: u32) -> Self {
        PlanSpace {
            n,
            max_faults: max_faults.min(n.saturating_sub(1) as usize),
            round_budget: round_budget.max(1),
            targets: Vec::new(),
        }
    }

    /// Installs influence-cloud crash targets for [`guided_plan`].
    pub fn with_targets(mut self, targets: Vec<CrashTarget>) -> Self {
        self.targets = targets;
        self
    }
}

/// Draws a delivery filter, spanning every [`DeliveryFilter`] variant so
/// the search can reach partial-delivery counterexamples, not just clean
/// stop failures.
pub fn random_filter(rng: &mut SmallRng, n: u32) -> DeliveryFilter {
    match rng.random_range(0..5u8) {
        0 => DeliveryFilter::DeliverAll,
        1 => DeliveryFilter::DropAll,
        2 => DeliveryFilter::KeepFirst(rng.random_range(0..=4u32) as usize),
        3 => DeliveryFilter::DeliverEachWithProbability(rng.random_range(0.0..1.0)),
        _ => {
            let k = rng.random_range(0..=3usize);
            let dsts = rand::seq::index::sample(rng, n as usize, k)
                .into_iter()
                .map(|i| NodeId(i as u32))
                .collect();
            DeliveryFilter::KeepToDestinations(dsts)
        }
    }
}

fn push_entry(
    entries: &mut Vec<(NodeId, Round, DeliveryFilter)>,
    node: NodeId,
    round: Round,
    filter: DeliveryFilter,
) {
    // FaultPlan semantics: one crash round per node; first entry wins the
    // faulty-set slot, so keep nodes distinct here.
    if entries.iter().all(|(existing, _, _)| *existing != node) {
        entries.push((node, round, filter));
    }
}

/// A uniformly random schedule: `1..=max_faults` distinct nodes, each
/// crashing at a uniform round with a uniform filter.
pub fn random_plan(rng: &mut SmallRng, space: &PlanSpace) -> FaultPlan {
    let faults = rng.random_range(1..=space.max_faults.max(1));
    let nodes = rand::seq::index::sample(rng, space.n as usize, faults);
    let mut entries = Vec::with_capacity(faults);
    for i in nodes {
        let round = rng.random_range(0..space.round_budget);
        let filter = random_filter(rng, space.n);
        push_entry(&mut entries, NodeId(i as u32), round, filter);
    }
    FaultPlan::from_entries(entries)
}

/// A trace-guided schedule: each crash slot is filled from the influence
/// ranking with probability 3/4 (weighted toward the head of the list,
/// crashing at the target's referee round), else uniformly. Falls back to
/// [`random_plan`] when the space carries no targets.
pub fn guided_plan(rng: &mut SmallRng, space: &PlanSpace) -> FaultPlan {
    if space.targets.is_empty() {
        return random_plan(rng, space);
    }
    let faults = rng.random_range(1..=space.max_faults.max(1));
    let mut entries = Vec::with_capacity(faults);
    for _ in 0..faults {
        if rng.random_bool(0.75) {
            // Geometric-ish head bias: halve the candidate window until it
            // sticks, so rank-0 targets are crashed most often.
            let mut window = space.targets.len();
            while window > 1 && rng.random_bool(0.5) {
                window = window.div_ceil(2);
            }
            let t = &space.targets[rng.random_range(0..window)];
            push_entry(&mut entries, t.node, t.round, random_filter(rng, space.n));
        } else {
            let node = NodeId(rng.random_range(0..space.n));
            let round = rng.random_range(0..space.round_budget);
            push_entry(&mut entries, node, round, random_filter(rng, space.n));
        }
    }
    if entries.is_empty() {
        return random_plan(rng, space);
    }
    FaultPlan::from_entries(entries)
}

/// One local edit of `plan`: retime, refilter, or retarget an existing
/// crash entry, add a fresh one, or drop one. Never returns an empty plan.
pub fn mutate_plan(rng: &mut SmallRng, plan: &FaultPlan, space: &PlanSpace) -> FaultPlan {
    let entries = plan.entries();
    if entries.is_empty() {
        return random_plan(rng, space);
    }
    let idx = rng.random_range(0..entries.len());
    let (node, round, _) = entries[idx].clone();
    match rng.random_range(0..5u8) {
        // Retime: nudge the crash round.
        0 => {
            let delta = rng.random_range(1..=3u32);
            let round = if rng.random_bool(0.5) {
                round.saturating_sub(delta)
            } else {
                (round + delta).min(space.round_budget - 1)
            };
            plan.with_entry(idx, (node, round, entries[idx].2.clone()))
        }
        // Refilter: redraw the delivery filter.
        1 => plan.with_entry(idx, (node, round, random_filter(rng, space.n))),
        // Retarget: move the crash to a node not already in the plan.
        2 => {
            let fresh = NodeId(rng.random_range(0..space.n));
            if entries.iter().any(|(existing, _, _)| *existing == fresh) {
                plan.with_entry(idx, (node, round, random_filter(rng, space.n)))
            } else {
                plan.with_entry(idx, (fresh, round, entries[idx].2.clone()))
            }
        }
        // Grow: add a crash if the budget allows.
        3 if entries.len() < space.max_faults => {
            let fresh = NodeId(rng.random_range(0..space.n));
            if entries.iter().any(|(existing, _, _)| *existing == fresh) {
                plan.with_entry(idx, (node, round, random_filter(rng, space.n)))
            } else {
                let round = rng.random_range(0..space.round_budget);
                let filter = random_filter(rng, space.n);
                plan.clone().crash(fresh, round, filter)
            }
        }
        // Shrink: drop a crash, keeping the plan non-empty.
        _ if entries.len() > 1 => plan.without_entry(idx),
        _ => plan.with_entry(idx, (node, round, random_filter(rng, space.n))),
    }
}

/// Draws a wire-fault kind. Tear chunks stay small (1..=32 bytes) so the
/// mesh write path is genuinely fragmented; delays stay in the tens of
/// microseconds so chaotic hunts keep their throughput.
pub fn random_wire_kind(rng: &mut SmallRng) -> WireFaultKind {
    match rng.random_range(0..4u8) {
        0 => WireFaultKind::Reorder,
        1 => WireFaultKind::Duplicate,
        2 => WireFaultKind::Tear {
            chunk: rng.random_range(1..=32usize),
        },
        _ => WireFaultKind::Delay {
            micros: rng.random_range(1..=50u64),
        },
    }
}

/// A uniformly random wire-fault plan over the same `(node, round)` box
/// the crash generators draw from: `1..=max_faults` scheduled transport
/// perturbations, plus a fresh shuffle seed. Unlike crash plans, several
/// faults may target the same node (a burst can be both duplicated and
/// reordered), so no distinctness is enforced.
pub fn random_wire_plan(rng: &mut SmallRng, space: &PlanSpace) -> WireFaultPlan {
    let faults = rng.random_range(1..=space.max_faults.max(1));
    let mut plan = WireFaultPlan::new(rng.random::<u64>());
    for _ in 0..faults {
        let node = NodeId(rng.random_range(0..space.n));
        let round = rng.random_range(0..space.round_budget);
        plan = plan.fault(node, round, random_wire_kind(rng));
    }
    plan
}

/// One local edit of a wire-fault plan: retime, rekind, or retarget an
/// entry, add a fresh one, or drop one. Never returns an empty plan; the
/// shuffle seed is preserved so the edit stays local.
pub fn mutate_wire_plan(
    rng: &mut SmallRng,
    plan: &WireFaultPlan,
    space: &PlanSpace,
) -> WireFaultPlan {
    if plan.is_empty() {
        return random_wire_plan(rng, space);
    }
    let mut entries: Vec<WireFaultEntry> = plan.entries().to_vec();
    let idx = rng.random_range(0..entries.len());
    match rng.random_range(0..5u8) {
        // Retime: nudge the perturbed round.
        0 => {
            let delta = rng.random_range(1..=3u32);
            let round = entries[idx].round;
            entries[idx].round = if rng.random_bool(0.5) {
                round.saturating_sub(delta)
            } else {
                (round + delta).min(space.round_budget - 1)
            };
        }
        // Rekind: redraw the perturbation.
        1 => entries[idx].kind = random_wire_kind(rng),
        // Retarget: move it to another sender.
        2 => entries[idx].node = NodeId(rng.random_range(0..space.n)),
        // Grow: schedule an extra perturbation if the budget allows.
        3 if entries.len() < space.max_faults.max(1) => {
            let node = NodeId(rng.random_range(0..space.n));
            let round = rng.random_range(0..space.round_budget);
            entries.push(WireFaultEntry {
                node,
                round,
                kind: random_wire_kind(rng),
            });
        }
        // Shrink: drop one, keeping the plan non-empty.
        _ if entries.len() > 1 => {
            entries.remove(idx);
        }
        _ => entries[idx].kind = random_wire_kind(rng),
    }
    WireFaultPlan::from_entries(plan.seed, entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn space() -> PlanSpace {
        PlanSpace::new(32, 8, 24)
    }

    fn check_invariants(plan: &FaultPlan, space: &PlanSpace) {
        let entries = plan.entries();
        assert!(!entries.is_empty());
        assert!(entries.len() <= space.max_faults);
        let mut nodes: Vec<u32> = entries.iter().map(|(node, _, _)| node.0).collect();
        nodes.sort_unstable();
        nodes.dedup();
        assert_eq!(nodes.len(), entries.len(), "duplicate crash node");
        for (node, round, _) in entries {
            assert!(node.0 < space.n);
            assert!(*round < space.round_budget);
        }
    }

    #[test]
    fn random_plans_stay_in_space() {
        let space = space();
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..200 {
            check_invariants(&random_plan(&mut rng, &space), &space);
        }
    }

    #[test]
    fn guided_plans_prefer_targets() {
        let targets = vec![
            CrashTarget {
                node: NodeId(7),
                round: 3,
                weight: 10.0,
            },
            CrashTarget {
                node: NodeId(21),
                round: 5,
                weight: 4.0,
            },
        ];
        let space = space().with_targets(targets);
        let mut rng = SmallRng::seed_from_u64(12);
        let mut targeted = 0usize;
        let mut total = 0usize;
        for _ in 0..200 {
            let plan = guided_plan(&mut rng, &space);
            check_invariants(&plan, &space);
            for (node, _, _) in plan.entries() {
                total += 1;
                if node.0 == 7 || node.0 == 21 {
                    targeted += 1;
                }
            }
        }
        // 2 of 32 nodes would get ~6% of crashes unbiased; guidance should
        // push them far past that.
        assert!(
            targeted * 3 > total,
            "guidance too weak: {targeted}/{total} crashes on targets"
        );
    }

    #[test]
    fn guided_without_targets_is_random() {
        let space = space();
        let mut a = SmallRng::seed_from_u64(13);
        let mut b = SmallRng::seed_from_u64(13);
        assert_eq!(
            guided_plan(&mut a, &space).entries(),
            random_plan(&mut b, &space).entries()
        );
    }

    #[test]
    fn wire_plans_stay_in_space() {
        let space = space();
        let mut rng = SmallRng::seed_from_u64(15);
        for _ in 0..200 {
            let plan = random_wire_plan(&mut rng, &space);
            assert!(!plan.is_empty());
            assert!(plan.len() <= space.max_faults);
            for entry in plan.entries() {
                assert!(entry.node.0 < space.n);
                assert!(entry.round < space.round_budget);
                match entry.kind {
                    WireFaultKind::Tear { chunk } => assert!((1..=32).contains(&chunk)),
                    WireFaultKind::Delay { micros } => assert!((1..=50).contains(&micros)),
                    WireFaultKind::Reorder | WireFaultKind::Duplicate => {}
                }
            }
        }
    }

    #[test]
    fn wire_mutations_preserve_invariants_and_the_seed() {
        let space = space();
        let mut rng = SmallRng::seed_from_u64(16);
        let mut plan = random_wire_plan(&mut rng, &space);
        let seed = plan.seed;
        let mut changed = 0usize;
        for _ in 0..300 {
            let next = mutate_wire_plan(&mut rng, &plan, &space);
            assert!(!next.is_empty());
            assert!(next.len() <= space.max_faults.max(1));
            assert_eq!(next.seed, seed, "mutation must not reseed the shuffle");
            for entry in next.entries() {
                assert!(entry.node.0 < space.n);
                assert!(entry.round < space.round_budget);
            }
            if next.entries() != plan.entries() {
                changed += 1;
            }
            plan = next;
        }
        assert!(changed > 250, "wire mutator mostly no-ops: {changed}/300");
    }

    #[test]
    fn mutations_preserve_invariants_and_usually_differ() {
        let space = space();
        let mut rng = SmallRng::seed_from_u64(14);
        let mut plan = random_plan(&mut rng, &space);
        let mut changed = 0usize;
        for _ in 0..300 {
            let next = mutate_plan(&mut rng, &plan, &space);
            check_invariants(&next, &space);
            if next.entries() != plan.entries() {
                changed += 1;
            }
            plan = next;
        }
        assert!(changed > 250, "mutator mostly no-ops: {changed}/300");
    }
}
