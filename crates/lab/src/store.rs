//! Content-addressed results store under `results/store/`.
//!
//! Each record is one JSON file named `<name>-<hash16>.json`, where the
//! hash is FNV-1a 64 over the record's deterministic payload (diag
//! fields stripped). Re-running the same spec at the same seed therefore
//! lands on the same id — `put` is idempotent — while any change in the
//! spec or measured numbers mints a new id. Files on disk keep the diag
//! fields (git rev, wall clock) because provenance matters to humans;
//! identity never depends on them.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use ftc_sim::json::Json;

use crate::run::CampaignRecord;

/// Default store location relative to the repo root.
pub const DEFAULT_DIR: &str = "results/store";

/// A directory of campaign records addressed by content.
#[derive(Clone, Debug)]
pub struct Store {
    dir: PathBuf,
}

/// One line of `list` output.
#[derive(Clone, Debug, PartialEq)]
pub struct StoreEntry {
    /// Record id (`<name>-<hash16>`), also the file stem.
    pub id: String,
    /// Record kind: `lab` (measurement campaigns), `hunt` (portfolio
    /// adversary hunts), or `unknown` for schemas this build predates.
    pub kind: String,
    /// Campaign name.
    pub name: String,
    /// Spec hash.
    pub spec_hash: String,
    /// Number of cells.
    pub cells: usize,
    /// Git revision recorded at run time.
    pub git_rev: String,
    /// Wall-clock seconds recorded at run time.
    pub wall_s: f64,
}

/// Maps a record's schema tag onto its listing kind.
fn kind_of(schema: &str) -> &'static str {
    match schema {
        "ftc-lab-record/v1" => "lab",
        "ftc-chaos-record/v1" => "hunt",
        _ => "unknown",
    }
}

impl Store {
    /// Opens (without creating) a store at `dir`.
    pub fn at(dir: impl Into<PathBuf>) -> Self {
        Store { dir: dir.into() }
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_of(&self, id: &str) -> PathBuf {
        self.dir.join(format!("{id}.json"))
    }

    /// Persists a record; returns its content id. Idempotent: an
    /// existing file with the same id is left untouched (its recorded
    /// provenance is from the first run that produced these numbers).
    pub fn put(&self, record: &CampaignRecord) -> io::Result<String> {
        fs::create_dir_all(&self.dir)?;
        let id = record.id();
        let path = self.path_of(&id);
        if !path.exists() {
            let mut text = record.to_json(true).render();
            text.push('\n');
            fs::write(&path, text)?;
        }
        Ok(id)
    }

    /// Loads a record by id.
    pub fn load(&self, id: &str) -> io::Result<CampaignRecord> {
        Self::load_path(&self.path_of(id))
    }

    /// Loads a record from an arbitrary file path (baselines committed
    /// outside the store use this too).
    pub fn load_path(path: &Path) -> io::Result<CampaignRecord> {
        let text = fs::read_to_string(path)?;
        let json = Json::parse(&text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        CampaignRecord::from_json(&json)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Persists an already-rendered record under `id` (the caller owns
    /// the schema — this is how non-lab records, e.g. `ftc-chaos`
    /// portfolio records, share the store). Idempotent like [`Store::put`].
    pub fn put_rendered(&self, id: &str, text: &str) -> io::Result<()> {
        fs::create_dir_all(&self.dir)?;
        let path = self.path_of(id);
        if !path.exists() {
            let mut text = text.to_string();
            if !text.ends_with('\n') {
                text.push('\n');
            }
            fs::write(&path, text)?;
        }
        Ok(())
    }

    /// Lists all records, sorted by id (so names cluster and output is
    /// stable). The listing skims the shared envelope fields (`schema`,
    /// `name`, `spec_hash`, `cells`, `diag`) rather than fully parsing
    /// each record, so records of every schema — lab campaigns and chaos
    /// portfolio hunts alike — appear side by side.
    pub fn list(&self) -> io::Result<Vec<StoreEntry>> {
        let mut entries = Vec::new();
        let dir = match fs::read_dir(&self.dir) {
            Ok(d) => d,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(entries),
            Err(e) => return Err(e),
        };
        for entry in dir {
            let path = entry?.path();
            if path.extension().and_then(|e| e.to_str()) != Some("json") {
                continue;
            }
            let text = fs::read_to_string(&path)?;
            let json = Json::parse(&text)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
            let str_field = |name: &str| {
                json.field(name)
                    .and_then(Json::as_str)
                    .unwrap_or("unknown")
                    .to_string()
            };
            let (git_rev, wall_s) = match json.get("diag") {
                Some(d) => (
                    d.field("git_rev")
                        .and_then(Json::as_str)
                        .unwrap_or("unknown")
                        .to_string(),
                    d.field("wall_s").and_then(Json::as_f64).unwrap_or(0.0),
                ),
                None => ("unknown".to_string(), 0.0),
            };
            entries.push(StoreEntry {
                id: path
                    .file_stem()
                    .and_then(|s| s.to_str())
                    .unwrap_or_default()
                    .to_string(),
                kind: kind_of(&str_field("schema")).to_string(),
                name: str_field("name"),
                spec_hash: str_field("spec_hash"),
                cells: json
                    .field("cells")
                    .and_then(Json::as_arr)
                    .map_or(0, <[Json]>::len),
                git_rev,
                wall_s,
            });
        }
        entries.sort_by(|a, b| a.id.cmp(&b.id));
        Ok(entries)
    }

    /// Finds the record whose id matches exactly, or — failing that —
    /// the unique record whose id starts with `needle` (so `show` can
    /// take a name or an abbreviated id).
    pub fn resolve(&self, needle: &str) -> io::Result<CampaignRecord> {
        if self.path_of(needle).exists() {
            return self.load(needle);
        }
        let matches: Vec<StoreEntry> = self
            .list()?
            .into_iter()
            .filter(|e| e.id.starts_with(needle))
            .collect();
        match matches.len() {
            1 => self.load(&matches[0].id),
            0 => Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("no record matching `{needle}` in {}", self.dir.display()),
            )),
            k => Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("`{needle}` is ambiguous ({k} records match)"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::{run_campaign, LabSubstrate};
    use crate::spec::{Adv, CampaignSpec, CellSpec, Workload};

    fn tmp_store(tag: &str) -> Store {
        let dir = std::env::temp_dir().join(format!("ftc-lab-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        Store::at(dir)
    }

    fn small_record(name: &str, seed: u64) -> CampaignRecord {
        let spec = CampaignSpec::new(name).cell(CellSpec::new(
            Workload::Le {
                adv: Adv::Random(5),
            },
            16,
            0.5,
            seed,
            2,
        ));
        run_campaign(&spec, 1, LabSubstrate::Engine).unwrap()
    }

    #[test]
    fn put_is_idempotent_and_load_round_trips() {
        let store = tmp_store("put");
        let record = small_record("store-unit", 1);
        let id = store.put(&record).unwrap();
        assert_eq!(id, record.id());
        assert_eq!(store.put(&record).unwrap(), id);
        let loaded = store.load(&id).unwrap();
        assert_eq!(loaded.deterministic_render(), record.deterministic_render());
        assert_eq!(store.list().unwrap().len(), 1);
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn distinct_seeds_mint_distinct_ids() {
        let store = tmp_store("ids");
        let a = store.put(&small_record("store-unit", 1)).unwrap();
        let b = store.put(&small_record("store-unit", 2)).unwrap();
        assert_ne!(a, b);
        assert_eq!(store.list().unwrap().len(), 2);
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn resolve_accepts_unique_prefixes_and_rejects_ambiguity() {
        let store = tmp_store("resolve");
        let a = store.put(&small_record("alpha", 1)).unwrap();
        store.put(&small_record("alpha", 2)).unwrap();
        assert!(store.resolve("alpha").is_err(), "two records share prefix");
        assert_eq!(store.resolve(&a).unwrap().id(), a);
        assert!(store.resolve("nope").is_err());
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn listing_a_missing_store_is_empty() {
        let store = Store::at("/nonexistent/ftc-lab-store");
        assert!(store.list().unwrap().is_empty());
    }

    #[test]
    fn foreign_schemas_list_side_by_side_with_lab_records() {
        let store = tmp_store("kinds");
        store.put(&small_record("store-unit", 1)).unwrap();
        // A chaos-style record: same envelope, different schema and body.
        let chaos = r#"{"schema":"ftc-chaos-record/v1","name":"portfolio","spec_hash":"abcd","spec":{},"cells":[{},{}],"coverage":{},"diag":{"git_rev":"f00","wall_s":1.5}}"#;
        store
            .put_rendered("portfolio-0123456789abcdef", chaos)
            .unwrap();
        // put_rendered is idempotent.
        store
            .put_rendered("portfolio-0123456789abcdef", chaos)
            .unwrap();
        let entries = store.list().unwrap();
        assert_eq!(entries.len(), 2);
        let hunt = entries.iter().find(|e| e.kind == "hunt").unwrap();
        assert_eq!(hunt.name, "portfolio");
        assert_eq!(hunt.spec_hash, "abcd");
        assert_eq!(hunt.cells, 2);
        assert_eq!(hunt.git_rev, "f00");
        assert_eq!(hunt.wall_s, 1.5);
        let lab = entries.iter().find(|e| e.kind == "lab").unwrap();
        assert_eq!(lab.name, "store-unit");
        let _ = fs::remove_dir_all(store.dir());
    }
}
