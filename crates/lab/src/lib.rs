//! `ftc-lab`: declarative experiment campaigns over the fault-tolerant
//! computation protocols.
//!
//! An experiment is data, not a binary: a [`CampaignSpec`] names a grid
//! of cells (workload × n × α × adversary, each with a seed and trial
//! budget) plus optional fitted-exponent assertions, and
//! [`run_campaign`] expands the grid onto the deterministic parallel
//! trial runner. The result is a [`CampaignRecord`] — a self-describing
//! JSON document carrying the spec, its hash, per-cell [`Summary`]s and
//! log-histograms, and wall-clock provenance — persisted in a
//! content-addressed [`store`], compared cell-by-cell by [`diff`] with
//! statistically justified tolerance bands, and gated in CI by
//! [`diff::gate`] against committed baselines.
//!
//! [`Summary`]: ftc_sim::stats::Summary

pub mod baseline;
pub mod campaigns;
pub mod diff;
pub mod run;
pub mod spec;
pub mod store;

pub use diff::{diff_records, CellDiff, DiffReport, Tolerance};
pub use run::{run_campaign, run_cell, CampaignRecord, CellResult, CheckResult, LabSubstrate};
pub use spec::{Adv, CampaignSpec, CellSpec, CheckAxis, CheckMetric, ExponentCheck, Workload};
pub use store::Store;
