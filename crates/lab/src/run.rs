//! Campaign execution: expand the grid onto the deterministic trial
//! runner and condense each cell into a stored result.
//!
//! Every cell fans its trials over [`ParRunner`] with the exact seed
//! derivation the figure binaries always used (`stream_seed(seed, i+1)`),
//! so a ported figure reproduces its historical numbers bit-for-bit and
//! results are `--jobs`-invariant by construction. Wall-clock times are
//! recorded but live outside the record's deterministic payload — two
//! runs of the same spec at the same seed produce byte-identical
//! deterministic renders (that is what `gate` compares and what the store
//! content-addresses).

use std::collections::HashSet;
use std::time::Instant;

use ftc_baselines::prelude::*;
use ftc_core::adversaries::{AdaptiveCandidateKiller, MinRankCrasher, ZeroHolderCrasher};
use ftc_core::byzantine::{EquivocatingClaimant, ZeroForger};
use ftc_core::prelude::*;
use ftc_core::sampling::draw_committee;
use ftc_mesh::runtime::run_over_mesh;
use ftc_net::prelude::*;
use ftc_serve::prelude::{run_service, ChurnPlan, LoadProfile, ServeConfig};
use ftc_sim::adversary::{Adversary, EagerCrash, NoFaults, RandomCrash};
use ftc_sim::engine::{run_sharded, RunResult, SimConfig};
use ftc_sim::ids::NodeId;
use ftc_sim::json::{Json, JsonError};
use ftc_sim::metrics::LogHistogram;
use ftc_sim::perm::stream_seed;
use ftc_sim::runner::{ParRunner, TrialPlan};
use ftc_sim::stats::{fit_power_law, Summary};
use ftc_sim::topology::Topology;
use rand::prelude::*;
use rand::rngs::SmallRng;

use crate::spec::{
    fnv1a64, input_stride, Adv, CampaignSpec, CellSpec, CheckAxis, CheckMetric, ExponentCheck,
    Workload,
};

/// Which execution substrate runs the trials.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LabSubstrate {
    /// The in-process sim engine (default).
    Engine,
    /// The sim engine with intra-trial sharding: one trial's nodes are
    /// split across this many worker threads per round. Results are
    /// bit-identical to [`LabSubstrate::Engine`] by construction, so the
    /// store label stays `"engine"` and record ids are unchanged.
    EngineSharded(usize),
    /// The `ftc-net` in-process channel mesh with this many workers.
    Channel(usize),
    /// The `ftc-net` localhost TCP mesh with this many workers.
    Tcp(usize),
    /// The `ftc-mesh` multiplexed socket runtime with this many procs.
    Mesh(usize),
}

impl LabSubstrate {
    /// Store-record label.
    pub fn name(self) -> String {
        match self {
            // Sharding is invisible in results (the deterministic render
            // is identical), so both engine variants share one label.
            LabSubstrate::Engine | LabSubstrate::EngineSharded(_) => "engine".into(),
            LabSubstrate::Channel(w) => format!("channel:{w}"),
            LabSubstrate::Tcp(w) => format!("tcp:{w}"),
            // The proc count is invisible in results (bit-identical at
            // any procs), so the label omits it and record ids are
            // procs-invariant — same reasoning as the engine variants.
            LabSubstrate::Mesh(_) => "mesh".into(),
        }
    }

    /// Worker threads sharding a single trial's nodes (1 = serial engine).
    pub fn intra_jobs(self) -> usize {
        match self {
            LabSubstrate::EngineSharded(j) => j.max(1),
            _ => 1,
        }
    }
}

/// What one trial yields, uniformly across workloads.
#[derive(Clone, Debug)]
pub struct TrialValue {
    /// The workload's success predicate.
    pub success: bool,
    /// Messages sent.
    pub msgs: u64,
    /// Bits sent.
    pub bits: u64,
    /// Rounds executed.
    pub rounds: u32,
    /// Crash events.
    pub crashes: u64,
    /// Workload-specific extra measurements (fixed small set per
    /// workload, e.g. `faulty_leader`, `suppressed`, `lost_edges`).
    pub extras: Vec<(&'static str, f64)>,
}

fn value_of<T>(r: &RunResult<T>, success: bool, extras: Vec<(&'static str, f64)>) -> TrialValue {
    TrialValue {
        success,
        msgs: r.metrics.msgs_sent,
        bits: r.metrics.bits_sent,
        rounds: r.metrics.rounds,
        crashes: r.metrics.crash_count() as u64,
        extras,
    }
}

/// The engine-bench canary: every node broadcasts a word per round for a
/// fixed number of rounds. Maximum delivery-path pressure (`n·(n-1)`
/// envelopes per round, fault-free), deterministic message counts.
struct BenchChatter {
    rounds_done: u32,
    budget: u32,
    heard: u64,
}

impl ftc_sim::protocol::Protocol for BenchChatter {
    type Msg = u64;
    fn on_start(&mut self, ctx: &mut ftc_sim::protocol::Ctx<'_, u64>) {
        ctx.broadcast(0);
    }
    fn on_round(
        &mut self,
        ctx: &mut ftc_sim::protocol::Ctx<'_, u64>,
        inbox: &[ftc_sim::protocol::Incoming<u64>],
    ) {
        self.heard += inbox.len() as u64;
        self.rounds_done += 1;
        if self.rounds_done < self.budget {
            ctx.broadcast(u64::from(ctx.round()));
        }
    }
    fn is_terminated(&self) -> bool {
        self.rounds_done >= self.budget
    }
}

/// Schedule-only adversaries (crash plans that never inspect protocol
/// traffic) — usable with any message type. The engine bench and the
/// topology baselines run these.
fn schedule_adversary<M>(adv: Adv, f: usize) -> Box<dyn Adversary<M>> {
    match adv {
        Adv::None => Box::new(NoFaults),
        Adv::Eager => Box::new(EagerCrash::new(f)),
        Adv::Random(h) => Box::new(RandomCrash::new(f, h)),
        Adv::Targeted | Adv::AdaptiveKiller => {
            panic!("this workload runs schedule-only adversaries (none|eager|random)")
        }
    }
}

fn le_adversary(adv: Adv, f: usize) -> Box<dyn Adversary<LeMsg>> {
    match adv {
        Adv::None => Box::new(NoFaults),
        Adv::Eager => Box::new(EagerCrash::new(f)),
        Adv::Random(h) => Box::new(RandomCrash::new(f, h)),
        Adv::Targeted => Box::new(MinRankCrasher::new(f)),
        Adv::AdaptiveKiller => Box::new(AdaptiveCandidateKiller::new(f)),
    }
}

fn agree_adversary(adv: Adv, f: usize) -> Box<dyn Adversary<AgreeMsg>> {
    match adv {
        Adv::None => Box::new(NoFaults),
        Adv::Eager => Box::new(EagerCrash::new(f)),
        Adv::Random(h) => Box::new(RandomCrash::new(f, h)),
        Adv::Targeted => Box::new(ZeroHolderCrasher::new(f)),
        Adv::AdaptiveKiller => panic!("the adaptive killer targets leader election only"),
    }
}

/// Runs the LE workload on the chosen substrate (the PR-3 bit-equivalence
/// guarantee makes the substrate invisible in the result).
fn run_le<A: Adversary<LeMsg> + ?Sized>(
    cfg: &SimConfig,
    params: &Params,
    adv: &mut A,
    substrate: LabSubstrate,
) -> Result<RunResult<LeNode>, String> {
    let factory = |_| LeNode::new(params.clone());
    Ok(match substrate {
        LabSubstrate::Engine | LabSubstrate::EngineSharded(_) => {
            run_sharded(cfg, factory, adv, substrate.intra_jobs())
        }
        LabSubstrate::Channel(w) => run_over_channel(cfg, w, factory, adv).run,
        LabSubstrate::Tcp(w) => {
            run_over_tcp(cfg, w, factory, adv)
                .map_err(|e| format!("tcp substrate: {e}"))?
                .run
        }
        LabSubstrate::Mesh(p) => {
            run_over_mesh(cfg, p, factory, adv)
                .map_err(|e| format!("mesh substrate: {e}"))?
                .run
        }
    })
}

fn run_agree<A: Adversary<AgreeMsg> + ?Sized>(
    cfg: &SimConfig,
    params: &Params,
    stride: u32,
    adv: &mut A,
    substrate: LabSubstrate,
) -> Result<RunResult<AgreeNode>, String> {
    let input = |id: NodeId| !(stride != u32::MAX && id.0.is_multiple_of(stride));
    let factory = |id: NodeId| AgreeNode::new(params.clone(), input(id));
    Ok(match substrate {
        LabSubstrate::Engine | LabSubstrate::EngineSharded(_) => {
            run_sharded(cfg, factory, adv, substrate.intra_jobs())
        }
        LabSubstrate::Channel(w) => run_over_channel(cfg, w, factory, adv).run,
        LabSubstrate::Tcp(w) => {
            run_over_tcp(cfg, w, factory, adv)
                .map_err(|e| format!("tcp substrate: {e}"))?
                .run
        }
        LabSubstrate::Mesh(p) => {
            run_over_mesh(cfg, p, factory, adv)
                .map_err(|e| format!("mesh substrate: {e}"))?
                .run
        }
    })
}

/// Runs one trial of `cell` at a fully derived `seed`. Pure in its
/// arguments; the cluster substrates are only supported for the plain
/// `Le`/`Agree` workloads (checked up front by [`run_campaign`]).
pub fn run_trial(
    cell: &CellSpec,
    seed: u64,
    substrate: LabSubstrate,
) -> Result<TrialValue, String> {
    let n = cell.n;
    let mut cfg = SimConfig::new(n).seed(seed);
    if !cell.topology.is_complete() {
        cfg = cfg.topology(cell.topology.clone());
    }
    let cfg = cfg;
    let ij = substrate.intra_jobs();
    Ok(match &cell.workload {
        Workload::Le { adv } => {
            let params = Params::new(n, cell.alpha).expect("valid params");
            let mut a = le_adversary(*adv, params.max_faults());
            let cfg = cfg.max_rounds(params.le_round_budget());
            let r = run_le(&cfg, &params, &mut *a, substrate)?;
            let o = LeOutcome::evaluate(&r);
            let mut extras = vec![(
                "faulty_leader",
                f64::from(u8::from(o.success && o.leader_is_faulty)),
            )];
            // Socket-substrate records additionally carry the wire
            // traffic; engine/channel records keep their historical
            // shape (and therefore their ids).
            if matches!(substrate, LabSubstrate::Mesh(_)) {
                extras.push(("wire_bytes", r.metrics.wire_bytes as f64));
            }
            value_of(&r, o.success, extras)
        }
        Workload::Agree { zeros, adv } => {
            let params = Params::new(n, cell.alpha).expect("valid params");
            let mut a = agree_adversary(*adv, params.max_faults());
            let cfg = cfg.max_rounds(params.agreement_round_budget());
            let r = run_agree(&cfg, &params, input_stride(*zeros), &mut *a, substrate)?;
            let o = AgreeOutcome::evaluate(&r);
            let mut extras = vec![];
            if matches!(substrate, LabSubstrate::Mesh(_)) {
                extras.push(("wire_bytes", r.metrics.wire_bytes as f64));
            }
            value_of(&r, o.success, extras)
        }
        Workload::LeIter { factor, per_round } => {
            let params = Params::new(n, cell.alpha)
                .expect("valid params")
                .with_iteration_factor(*factor);
            let f = params.max_faults();
            let cfg = cfg.max_rounds(params.le_round_budget());
            let mut adv = MinRankCrasher {
                f,
                per_round: *per_round as usize,
            };
            let r = run_sharded(&cfg, |_| LeNode::new(params.clone()), &mut adv, ij);
            value_of(&r, LeOutcome::evaluate(&r).success, vec![])
        }
        Workload::LeByzantine { b } => {
            let params = Params::new(n, cell.alpha).expect("valid params");
            let cfg = cfg.max_rounds(params.le_round_budget());
            let mut adv = EquivocatingClaimant::new(*b as usize);
            let r = run_sharded(&cfg, |_| LeNode::new(params.clone()), &mut adv, ij);
            value_of(&r, LeOutcome::evaluate(&r).success, vec![])
        }
        Workload::AgreeByzantine { b } => {
            let params = Params::new(n, cell.alpha).expect("valid params");
            let cfg = cfg.max_rounds(params.agreement_round_budget());
            let mut adv = ZeroForger::new(*b as usize);
            let r = run_sharded(&cfg, |_| AgreeNode::new(params.clone(), true), &mut adv, ij);
            // Success = validity holds: no honest survivor decided the
            // forged 0 nobody input.
            let honest_zero = r
                .surviving_states()
                .filter(|(id, _)| !r.faulty.contains(*id))
                .any(|(_, s)| s.status() == AgreeStatus::Decided(false));
            value_of(&r, !honest_zero, vec![])
        }
        Workload::LeEdge { p } => {
            let params = Params::new(n, cell.alpha).expect("valid params");
            let f = params.max_faults();
            let mut cfg = cfg.max_rounds(params.le_round_budget());
            if *p > 0.0 {
                cfg = cfg.edge_failure_prob(*p);
            }
            let mut adv = RandomCrash::new(f, 40);
            let r = run_sharded(&cfg, |_| LeNode::new(params.clone()), &mut adv, ij);
            let lost = r.metrics.msgs_lost_edges as f64;
            value_of(
                &r,
                LeOutcome::evaluate(&r).success,
                vec![("lost_edges", lost)],
            )
        }
        Workload::AgreeEdge { p } => {
            let params = Params::new(n, cell.alpha).expect("valid params");
            let f = params.max_faults();
            let mut cfg = cfg.max_rounds(params.agreement_round_budget());
            if *p > 0.0 {
                cfg = cfg.edge_failure_prob(*p);
            }
            let mut adv = RandomCrash::new(f, 20);
            let r = run_sharded(
                &cfg,
                |id| AgreeNode::new(params.clone(), id.0 % 8 == 0),
                &mut adv,
                ij,
            );
            value_of(&r, AgreeOutcome::evaluate(&r).success, vec![])
        }
        Workload::LeCapped { cap } => {
            let params = Params::new(n, cell.alpha).expect("valid params");
            let f = params.max_faults();
            let mut cfg = cfg.max_rounds(params.le_round_budget());
            if let Some(c) = cap {
                cfg = cfg.send_cap(*c);
            }
            let mut adv = EagerCrash::new(f);
            let r = run_sharded(&cfg, |_| LeNode::new(params.clone()), &mut adv, ij);
            let suppressed = r.metrics.msgs_suppressed as f64;
            value_of(
                &r,
                LeOutcome::evaluate(&r).success,
                vec![("suppressed", suppressed)],
            )
        }
        Workload::AgreeCapped { cap } => {
            let params = Params::new(n, cell.alpha).expect("valid params");
            let f = params.max_faults();
            let mut cfg = cfg.max_rounds(params.agreement_round_budget());
            if let Some(c) = cap {
                cfg = cfg.send_cap(*c);
            }
            let mut adv = EagerCrash::new(f);
            let r = run_sharded(
                &cfg,
                |id| AgreeNode::new(params.clone(), id.0 % 2 == 0),
                &mut adv,
                ij,
            );
            let suppressed = r.metrics.msgs_suppressed as f64;
            value_of(
                &r,
                AgreeOutcome::evaluate(&r).success,
                vec![("suppressed", suppressed)],
            )
        }
        Workload::LeExplicit => {
            let params = Params::new(n, cell.alpha).expect("valid params");
            let f = params.max_faults();
            let cfg = cfg.max_rounds(ExplicitLeNode::round_budget(&params));
            let mut adv = RandomCrash::new(f, 40);
            let r = run_sharded(&cfg, |_| ExplicitLeNode::new(params.clone()), &mut adv, ij);
            value_of(&r, ExplicitLeOutcome::evaluate(&r).success, vec![])
        }
        Workload::LeImplicitExplicitBudget => {
            let params = Params::new(n, cell.alpha).expect("valid params");
            let f = params.max_faults();
            let cfg = cfg.max_rounds(ExplicitLeNode::round_budget(&params));
            let mut adv = RandomCrash::new(f, 40);
            let r = run_sharded(&cfg, |_| LeNode::new(params.clone()), &mut adv, ij);
            value_of(&r, LeOutcome::evaluate(&r).success, vec![])
        }
        Workload::AgreeExplicit { zeros } => {
            let params = Params::new(n, cell.alpha).expect("valid params");
            let f = params.max_faults();
            let stride = input_stride(*zeros);
            let cfg = cfg.max_rounds(ExplicitAgreeNode::round_budget(&params));
            let mut adv = RandomCrash::new(f, 20);
            let r = run_sharded(
                &cfg,
                |id| {
                    ExplicitAgreeNode::new(
                        params.clone(),
                        !(stride != u32::MAX && id.0.is_multiple_of(stride)),
                    )
                },
                &mut adv,
                ij,
            );
            value_of(&r, ExplicitAgreeOutcome::evaluate(&r).success, vec![])
        }
        Workload::LeKutten => {
            let cfg = cfg.max_rounds(kutten_round_budget());
            let r = run_sharded(&cfg, |_| KuttenLeNode::new(), &mut NoFaults, ij);
            value_of(&r, KuttenOutcome::evaluate(&r).success, vec![])
        }
        Workload::LeDiamTwo { adv } => {
            let f = ((1.0 - cell.alpha) * f64::from(n)) as usize;
            let cfg = cfg.max_rounds(diam_two_round_budget());
            let mut a = schedule_adversary(*adv, f);
            let r = run_sharded(&cfg, |_| DiamTwoLeNode::new(), &mut *a, ij);
            value_of(&r, DiamTwoOutcome::evaluate(&r).success, vec![])
        }
        Workload::AgreeAugustine { zeros } => {
            let stride = input_stride(*zeros);
            let cfg = cfg.max_rounds(augustine_round_budget());
            let r = run_sharded(
                &cfg,
                |id: NodeId| {
                    AugustineNode::new(!(stride != u32::MAX && id.0.is_multiple_of(stride)))
                },
                &mut NoFaults,
                ij,
            );
            value_of(&r, AugustineOutcome::evaluate(&r).success, vec![])
        }
        Workload::MultiValue { k } => {
            let params = Params::new(n, cell.alpha).expect("valid params");
            let f = params.max_faults();
            let k = *k;
            let cfg = cfg.max_rounds(params.agreement_round_budget());
            let mut adv = RandomCrash::new(f, 20);
            let r = run_sharded(
                &cfg,
                |id| MultiAgreeNode::new(params.clone(), k, (id.0.wrapping_mul(2654435761)) % k),
                &mut adv,
                ij,
            );
            value_of(&r, MultiOutcome::evaluate(&r).success, vec![])
        }
        Workload::Flood { faults } => {
            let f = *faults as usize;
            let cfg = cfg.max_rounds(flood_round_budget(f as u32));
            let mut adv = RandomCrash::new(f, f as u32);
            let r = run_sharded(
                &cfg,
                |id| FloodAgreeNode::new(f as u32, id.0 % 7 != 0),
                &mut adv,
                ij,
            );
            value_of(&r, FloodOutcome::evaluate(&r).success, vec![])
        }
        Workload::Gk { faults } => {
            let cfg = cfg.kt1(true).max_rounds(gk_round_budget(n));
            let mut adv = RandomCrash::new(*faults as usize, 20);
            let r = run_sharded(&cfg, |id| GkNode::new(id.0 % 7 != 0), &mut adv, ij);
            value_of(&r, GkOutcome::evaluate(&r).success, vec![])
        }
        Workload::Gossip { faults } => {
            let cfg = cfg.max_rounds(gossip_round_budget(n));
            let mut adv = RandomCrash::new(*faults as usize, 10);
            let r = run_sharded(&cfg, |id| GossipNode::new(n, id.0 % 7 != 0), &mut adv, ij);
            value_of(&r, GossipOutcome::evaluate(&r).success, vec![])
        }
        Workload::SamplingLemmas {
            candidate_factor,
            referee_factor,
        } => {
            let params = Params::new(n, cell.alpha)
                .expect("valid params")
                .with_candidate_factor(*candidate_factor)
                .with_referee_factor(*referee_factor);
            let f = params.max_faults();
            let lo = 2.0 * params.ln_n() / params.alpha();
            let hi = 12.0 * params.ln_n() / params.alpha();
            let mut rng = SmallRng::seed_from_u64(seed);
            let faulty: HashSet<usize> = rand::seq::index::sample(&mut rng, n as usize, f)
                .into_iter()
                .collect();
            let (cands, refs) = draw_committee(&mut rng, &params);
            let committee = cands.len() as f64;
            let in_band = committee >= lo && committee <= hi;
            let nonfaulty = cands.iter().any(|c| !faulty.contains(c));
            let ref_sets: Vec<HashSet<usize>> = refs
                .iter()
                .map(|r| r.iter().copied().filter(|x| !faulty.contains(x)).collect())
                .collect();
            let mut all_pairs = true;
            'outer: for i in 0..cands.len() {
                for j in i + 1..cands.len() {
                    if ref_sets[i].is_disjoint(&ref_sets[j]) {
                        all_pairs = false;
                        break 'outer;
                    }
                }
            }
            TrialValue {
                success: in_band && nonfaulty && all_pairs,
                msgs: 0,
                bits: 0,
                rounds: 0,
                crashes: 0,
                extras: vec![
                    ("committee", committee),
                    ("in_band", f64::from(u8::from(in_band))),
                    ("nonfaulty", f64::from(u8::from(nonfaulty))),
                    ("pairs", f64::from(u8::from(all_pairs))),
                ],
            }
        }
        Workload::EngineBench { adv, p, rounds } => {
            let f = ((1.0 - cell.alpha) * f64::from(n)) as usize;
            let mut cfg = cfg.max_rounds(rounds + 2);
            if *p > 0.0 {
                cfg = cfg.edge_failure_prob(*p);
            }
            let mut a = schedule_adversary(*adv, f);
            let r = run_sharded(
                &cfg,
                |_| BenchChatter {
                    rounds_done: 0,
                    budget: *rounds,
                    heard: 0,
                },
                &mut *a,
                ij,
            );
            // Success = the run actually exercised the delivery path; the
            // interesting output is msgs/bits (deterministic payload) and
            // the cell's wall-clock throughput (diagnostic).
            value_of(&r, r.metrics.msgs_delivered > 0, vec![])
        }
        Workload::Soak {
            heights,
            kill_every,
            rejoin_after,
        } => {
            let scfg = ServeConfig::new(n, cell.alpha)
                .seed(seed)
                .heights(*heights)
                .churn(ChurnPlan {
                    kill_leader_every: *kill_every,
                    bystanders: 2,
                    rejoin_after: *rejoin_after,
                })
                .load(LoadProfile::default());
            let report = run_service(&scfg)?;
            let q = |h: &ftc_sim::prelude::LogHistogram, p: f64| {
                h.quantile(p).map_or(0.0, |v| v as f64)
            };
            let lat = report
                .load
                .as_ref()
                .map(|l| l.latency.clone())
                .unwrap_or_default();
            TrialValue {
                success: report.ok() && report.metrics.failed_elections == 0,
                msgs: report.total_msgs(),
                bits: report.total_bits(),
                rounds: report.total_rounds().min(u64::from(u32::MAX)) as u32,
                crashes: u64::from(report.crashes),
                extras: vec![
                    ("violations", report.violations.len() as f64),
                    (
                        "failed_elections",
                        f64::from(report.metrics.failed_elections),
                    ),
                    ("leader_changes", f64::from(report.metrics.leader_changes)),
                    ("availability", report.metrics.availability().unwrap_or(0.0)),
                    ("ttnl_p50", q(&report.metrics.ttnl_rounds, 0.5)),
                    ("ttnl_p95", q(&report.metrics.ttnl_rounds, 0.95)),
                    ("ttnl_p99", q(&report.metrics.ttnl_rounds, 0.99)),
                    ("lat_p50", q(&lat, 0.5)),
                    ("lat_p95", q(&lat, 0.95)),
                    ("lat_p99", q(&lat, 0.99)),
                ],
            }
        }
    })
}

/// Aggregated results of one cell.
#[derive(Clone, Debug, PartialEq)]
pub struct CellResult {
    /// The cell this aggregates (copied from the spec for
    /// self-description).
    pub cell: CellSpec,
    /// Trials satisfying the workload's success predicate.
    pub successes: u64,
    /// Messages sent per trial.
    pub msgs: Summary,
    /// Bits sent per trial.
    pub bits: Summary,
    /// Rounds executed per trial.
    pub rounds: Summary,
    /// Crash events per trial.
    pub crashes: Summary,
    /// Base-2 log histogram of per-trial messages.
    pub msgs_hist: LogHistogram,
    /// Base-2 log histogram of per-trial rounds.
    pub rounds_hist: LogHistogram,
    /// Workload-specific extra summaries, in workload order.
    pub extras: Vec<(String, Summary)>,
    /// Wall-clock seconds for this cell (diagnostic; excluded from the
    /// deterministic payload).
    pub wall_s: f64,
}

impl CellResult {
    /// Success fraction.
    pub fn success_rate(&self) -> f64 {
        self.successes as f64 / self.cell.trials.max(1) as f64
    }

    /// Trials per second of wall clock (diagnostic throughput figure).
    pub fn throughput(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.cell.trials as f64 / self.wall_s
        } else {
            0.0
        }
    }

    /// Looks up an extra summary by name.
    pub fn extra(&self, name: &str) -> Option<&Summary> {
        self.extras.iter().find(|(k, _)| k == name).map(|(_, s)| s)
    }

    /// Among successful LE trials, the fraction whose leader is faulty
    /// (the `faulty_leader` extra re-based onto successes).
    pub fn faulty_leader_rate(&self) -> f64 {
        self.extra("faulty_leader").map_or(0.0, |s| {
            s.mean * self.cell.trials as f64 / self.successes.max(1) as f64
        })
    }

    /// JSON encoding; `diag` controls whether wall-clock fields ride
    /// along (they are stripped from the deterministic payload).
    pub fn to_json(&self, diag: bool) -> Json {
        let mut fields = vec![
            ("label".into(), Json::Str(self.cell.label.clone())),
            ("n".into(), Json::UInt(u64::from(self.cell.n))),
            ("alpha".into(), Json::Num(self.cell.alpha)),
            ("seed".into(), Json::UInt(self.cell.seed)),
            ("trials".into(), Json::UInt(self.cell.trials)),
            ("workload".into(), self.cell.workload.to_json()),
        ];
        // Matches CellSpec: complete-graph cells keep their historical
        // shape (and therefore every committed record id).
        if !self.cell.topology.is_complete() {
            fields.push(("topology".into(), self.cell.topology.to_json()));
        }
        fields.extend(vec![
            ("successes".into(), Json::UInt(self.successes)),
            ("success_rate".into(), Json::Num(self.success_rate())),
            ("msgs".into(), self.msgs.to_json()),
            ("bits".into(), self.bits.to_json()),
            ("rounds".into(), self.rounds.to_json()),
            ("crashes".into(), self.crashes.to_json()),
            ("msgs_hist".into(), self.msgs_hist.to_json()),
            ("rounds_hist".into(), self.rounds_hist.to_json()),
            (
                "extras".into(),
                Json::Obj(
                    self.extras
                        .iter()
                        .map(|(k, s)| (k.clone(), s.to_json()))
                        .collect(),
                ),
            ),
        ]);
        if diag {
            fields.push(("wall_s".into(), Json::Num(self.wall_s)));
            fields.push(("trials_per_s".into(), Json::Num(self.throughput())));
        }
        Json::Obj(fields)
    }

    /// Decodes from the [`CellResult::to_json`] form (diag fields
    /// optional).
    pub fn from_json(v: &Json) -> Result<Self, JsonError> {
        let extras = match v.field("extras")? {
            Json::Obj(fields) => fields
                .iter()
                .map(|(k, s)| Ok((k.clone(), Summary::from_json(s)?)))
                .collect::<Result<Vec<_>, JsonError>>()?,
            _ => {
                return Err(JsonError {
                    message: "extras must be an object".into(),
                })
            }
        };
        Ok(CellResult {
            cell: CellSpec {
                label: v.field("label")?.as_str()?.to_string(),
                workload: Workload::from_json(v.field("workload")?)?,
                n: v.field("n")?.as_u64()? as u32,
                alpha: v.field("alpha")?.as_f64()?,
                seed: v.field("seed")?.as_u64()?,
                trials: v.field("trials")?.as_u64()?,
                topology: match v.get("topology") {
                    Some(t) => Topology::from_json(t)?,
                    None => Topology::Complete,
                },
            },
            successes: v.field("successes")?.as_u64()?,
            msgs: Summary::from_json(v.field("msgs")?)?,
            bits: Summary::from_json(v.field("bits")?)?,
            rounds: Summary::from_json(v.field("rounds")?)?,
            crashes: Summary::from_json(v.field("crashes")?)?,
            msgs_hist: LogHistogram::from_json(v.field("msgs_hist")?)?,
            rounds_hist: LogHistogram::from_json(v.field("rounds_hist")?)?,
            extras,
            wall_s: v.get("wall_s").map_or(Ok(0.0), Json::as_f64)?,
        })
    }
}

/// Runs all trials of one cell and aggregates. Deterministic in
/// `(cell, substrate)`; `jobs` only changes wall-clock.
pub fn run_cell(
    cell: &CellSpec,
    jobs: usize,
    substrate: LabSubstrate,
) -> Result<CellResult, String> {
    let start = Instant::now();
    let batch = ParRunner::new(TrialPlan::new(cell.seed, cell.trials).jobs(jobs))
        .run(|_, seed| run_trial(cell, seed, substrate));
    let mut values = Vec::with_capacity(batch.len());
    for v in batch.values() {
        values.push(v.clone()?);
    }
    let wall_s = start.elapsed().as_secs_f64();
    // NaN is rejected at ingestion (`Summary::try_of`); name the cell,
    // trial, and derived seed so a bad measurement replays directly
    // instead of surfacing as a percentile-sort panic mid-campaign.
    let summarise = |name: &str, sel: &dyn Fn(&TrialValue) -> f64| -> Result<Summary, String> {
        let series: Vec<f64> = values.iter().map(sel).collect();
        if let Some(i) = Summary::nan_index(&series) {
            return Err(format!(
                "cell `{}`: metric `{name}` is NaN at trial {i} (n={}, seed {:#018x})",
                cell.label,
                cell.n,
                stream_seed(cell.seed, i as u64 + 1)
            ));
        }
        Summary::try_of(&series).ok_or_else(|| format!("cell `{}` has no trials", cell.label))
    };
    let mut msgs_hist = LogHistogram::new();
    let mut rounds_hist = LogHistogram::new();
    for v in &values {
        msgs_hist.record(v.msgs);
        rounds_hist.record(u64::from(v.rounds));
    }
    // Extras keep the workload's fixed order; every trial of a cell
    // reports the same set.
    let extra_names: Vec<&'static str> = values
        .first()
        .map(|v| v.extras.iter().map(|(k, _)| *k).collect())
        .unwrap_or_default();
    let extras = extra_names
        .iter()
        .map(|name| {
            let s = summarise(name, &|v: &TrialValue| {
                v.extras
                    .iter()
                    .find(|(k, _)| k == name)
                    .map(|(_, x)| *x)
                    .unwrap_or(0.0)
            })?;
            Ok((name.to_string(), s))
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(CellResult {
        cell: cell.clone(),
        successes: values.iter().filter(|v| v.success).count() as u64,
        msgs: summarise("msgs", &|v| v.msgs as f64)?,
        bits: summarise("bits", &|v| v.bits as f64)?,
        rounds: summarise("rounds", &|v| f64::from(v.rounds))?,
        crashes: summarise("crashes", &|v| v.crashes as f64)?,
        msgs_hist,
        rounds_hist,
        extras,
        wall_s,
    })
}

/// The verdict of one [`ExponentCheck`] against measured means.
#[derive(Clone, Debug, PartialEq)]
pub struct CheckResult {
    /// The check evaluated.
    pub check: ExponentCheck,
    /// Fitted exponent, `None` when the series was unfittable (fewer
    /// than two cells or degenerate axis).
    pub exponent: Option<f64>,
    /// Points the fit used.
    pub points: u64,
    /// Whether the exponent landed inside `[min, max]`.
    pub pass: bool,
}

impl CheckResult {
    /// JSON encoding.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("check".into(), self.check.to_json()),
            (
                "exponent".into(),
                self.exponent.map_or(Json::Null, Json::Num),
            ),
            ("points".into(), Json::UInt(self.points)),
            ("pass".into(), Json::Bool(self.pass)),
        ])
    }

    /// Decodes from the [`CheckResult::to_json`] form.
    pub fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(CheckResult {
            check: ExponentCheck::from_json(v.field("check")?)?,
            exponent: match v.field("exponent")? {
                Json::Null => None,
                other => Some(other.as_f64()?),
            },
            points: v.field("points")?.as_u64()?,
            pass: v.field("pass")?.as_bool()?,
        })
    }
}

fn evaluate_check(check: &ExponentCheck, cells: &[CellResult]) -> CheckResult {
    let series: Vec<&CellResult> = cells
        .iter()
        .filter(|c| c.cell.label == check.series)
        .collect();
    let xs: Vec<f64> = series
        .iter()
        .map(|c| match check.axis {
            CheckAxis::N => f64::from(c.cell.n),
            CheckAxis::InvAlpha => 1.0 / c.cell.alpha,
        })
        .collect();
    let ys: Vec<f64> = series
        .iter()
        .map(|c| match check.metric {
            CheckMetric::Msgs => c.msgs.mean,
            CheckMetric::Rounds => c.rounds.mean,
        })
        .collect();
    let distinct_xs = {
        let mut sorted: Vec<u64> = xs.iter().map(|x| x.to_bits()).collect();
        sorted.sort_unstable();
        sorted.dedup();
        sorted.len()
    };
    let fittable =
        xs.len() >= 2 && distinct_xs >= 2 && xs.iter().chain(ys.iter()).all(|&v| v > 0.0);
    let exponent = fittable.then(|| fit_power_law(&xs, &ys).0);
    CheckResult {
        check: check.clone(),
        exponent,
        points: xs.len() as u64,
        pass: exponent.is_some_and(|e| e >= check.min && e <= check.max),
    }
}

/// One persisted campaign run: the spec, its per-cell results, the check
/// verdicts, and run provenance.
#[derive(Clone, Debug, PartialEq)]
pub struct CampaignRecord {
    /// The spec this run executed.
    pub spec: CampaignSpec,
    /// [`CampaignSpec::hash`] of `spec`.
    pub spec_hash: String,
    /// Execution substrate label.
    pub substrate: String,
    /// Per-cell results, aligned with `spec.cells`.
    pub cells: Vec<CellResult>,
    /// Exponent-check verdicts, aligned with `spec.checks`.
    pub checks: Vec<CheckResult>,
    /// Git revision of the producing tree (diagnostic).
    pub git_rev: String,
    /// Total wall-clock seconds (diagnostic).
    pub wall_s: f64,
}

impl CampaignRecord {
    /// JSON encoding. With `diag`, provenance and wall-clock figures ride
    /// along; without, the render is the deterministic payload that the
    /// store content-addresses and `gate` compares byte-for-byte.
    pub fn to_json(&self, diag: bool) -> Json {
        let mut fields = vec![
            ("schema".into(), Json::Str("ftc-lab-record/v1".into())),
            ("name".into(), Json::Str(self.spec.name.clone())),
            ("spec_hash".into(), Json::Str(self.spec_hash.clone())),
            ("substrate".into(), Json::Str(self.substrate.clone())),
            ("spec".into(), self.spec.to_json()),
            (
                "cells".into(),
                Json::Arr(self.cells.iter().map(|c| c.to_json(diag)).collect()),
            ),
            (
                "checks".into(),
                Json::Arr(self.checks.iter().map(CheckResult::to_json).collect()),
            ),
        ];
        if diag {
            fields.push((
                "diag".into(),
                Json::Obj(vec![
                    ("git_rev".into(), Json::Str(self.git_rev.clone())),
                    ("wall_s".into(), Json::Num(self.wall_s)),
                ]),
            ));
        }
        Json::Obj(fields)
    }

    /// The deterministic payload (diag stripped), rendered.
    pub fn deterministic_render(&self) -> String {
        self.to_json(false).render()
    }

    /// Content address: `<name>-<fnv64 of the deterministic payload>`.
    pub fn id(&self) -> String {
        format!(
            "{}-{:016x}",
            self.spec.name,
            fnv1a64(self.deterministic_render().as_bytes())
        )
    }

    /// Decodes from the [`CampaignRecord::to_json`] form.
    pub fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v.field("schema")?.as_str()? {
            "ftc-lab-record/v1" => {}
            other => {
                return Err(JsonError {
                    message: format!("unknown record schema `{other}`"),
                })
            }
        }
        let (git_rev, wall_s) = match v.get("diag") {
            Some(d) => (
                d.field("git_rev")?.as_str()?.to_string(),
                d.field("wall_s")?.as_f64()?,
            ),
            None => ("unknown".to_string(), 0.0),
        };
        Ok(CampaignRecord {
            spec: CampaignSpec::from_json(v.field("spec")?)?,
            spec_hash: v.field("spec_hash")?.as_str()?.to_string(),
            substrate: v.field("substrate")?.as_str()?.to_string(),
            cells: v
                .field("cells")?
                .as_arr()?
                .iter()
                .map(CellResult::from_json)
                .collect::<Result<_, _>>()?,
            checks: v
                .field("checks")?
                .as_arr()?
                .iter()
                .map(CheckResult::from_json)
                .collect::<Result<_, _>>()?,
            git_rev,
            wall_s,
        })
    }
}

/// Best-effort git revision of the working tree ("unknown" outside a
/// checkout). Diagnostic only — never part of the deterministic payload.
pub fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into())
}

/// Executes a campaign: every cell on the chosen substrate, then the
/// exponent checks over the measured means.
pub fn run_campaign(
    spec: &CampaignSpec,
    jobs: usize,
    substrate: LabSubstrate,
) -> Result<CampaignRecord, String> {
    if spec.cells.is_empty() {
        return Err(format!("campaign `{}` has no cells", spec.name));
    }
    if let Some(cell) = spec.cells.iter().find(|c| c.trials == 0) {
        return Err(format!("cell `{}` has zero trials", cell.label));
    }
    for cell in &spec.cells {
        // Configuration errors must surface here, before any trial runs —
        // a bad topology or an oversized Byzantine budget used to panic
        // mid-trial deep inside the engine.
        cell.topology
            .validate(cell.n)
            .map_err(|e| format!("cell `{}`: {e}", cell.label))?;
        match cell.workload {
            Workload::LeByzantine { b } => EquivocatingClaimant::new(b as usize).validate(cell.n),
            Workload::AgreeByzantine { b } => ZeroForger::new(b as usize).validate(cell.n),
            _ => Ok(()),
        }
        .map_err(|e| format!("cell `{}`: {e}", cell.label))?;
        if !cell.topology.is_complete()
            && matches!(
                cell.workload,
                Workload::Soak { .. } | Workload::SamplingLemmas { .. }
            )
        {
            return Err(format!(
                "cell `{}`: workload `{}` runs on the complete graph only",
                cell.label,
                cell.workload.tag()
            ));
        }
        if matches!(cell.workload, Workload::LeDiamTwo { .. })
            && !matches!(
                cell.topology,
                Topology::DiameterTwo { .. } | Topology::Complete
            )
        {
            return Err(format!(
                "cell `{}`: le_diam_two needs a diameter_two (or complete) topology",
                cell.label
            ));
        }
    }
    if !matches!(
        substrate,
        LabSubstrate::Engine | LabSubstrate::EngineSharded(_)
    ) {
        if let Some(cell) = spec
            .cells
            .iter()
            .find(|c| !matches!(c.workload, Workload::Le { .. } | Workload::Agree { .. }))
        {
            return Err(format!(
                "substrate `{}` only runs the plain le/agree workloads; cell `{}` is `{}`",
                substrate.name(),
                cell.label,
                cell.workload.tag()
            ));
        }
    }
    let start = Instant::now();
    let mut cells = Vec::with_capacity(spec.cells.len());
    for cell in &spec.cells {
        cells.push(run_cell(cell, jobs, substrate)?);
    }
    let checks = spec
        .checks
        .iter()
        .map(|c| evaluate_check(c, &cells))
        .collect();
    Ok(CampaignRecord {
        spec: spec.clone(),
        spec_hash: spec.hash(),
        substrate: substrate.name(),
        cells,
        checks,
        git_rev: git_rev(),
        wall_s: start.elapsed().as_secs_f64(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_spec() -> CampaignSpec {
        CampaignSpec::new("run-unit")
            .cell(
                CellSpec::new(
                    Workload::Le {
                        adv: Adv::Random(10),
                    },
                    128,
                    0.5,
                    11,
                    3,
                )
                .label("le"),
            )
            .cell(
                CellSpec::new(
                    Workload::Le {
                        adv: Adv::Random(10),
                    },
                    256,
                    0.5,
                    11,
                    3,
                )
                .label("le"),
            )
            .check(ExponentCheck {
                name: "le-msgs".into(),
                series: "le".into(),
                metric: CheckMetric::Msgs,
                axis: CheckAxis::N,
                min: -1.0,
                max: 3.0,
            })
    }

    #[test]
    fn campaign_runs_and_is_jobs_invariant() {
        let spec = smoke_spec();
        let a = run_campaign(&spec, 1, LabSubstrate::Engine).unwrap();
        let b = run_campaign(&spec, 4, LabSubstrate::Engine).unwrap();
        assert_eq!(a.deterministic_render(), b.deterministic_render());
        assert_eq!(a.id(), b.id());
        assert_eq!(a.cells[0].msgs.count, 3);
        assert!(a.checks[0].pass, "{:?}", a.checks[0]);
    }

    #[test]
    fn record_round_trips_with_and_without_diag() {
        let record = run_campaign(&smoke_spec(), 0, LabSubstrate::Engine).unwrap();
        let with = CampaignRecord::from_json(&Json::parse(&record.to_json(true).render()).unwrap())
            .unwrap();
        assert_eq!(with.deterministic_render(), record.deterministic_render());
        assert_eq!(with.git_rev, record.git_rev);
        let without =
            CampaignRecord::from_json(&Json::parse(&record.deterministic_render()).unwrap())
                .unwrap();
        assert_eq!(without.git_rev, "unknown");
        assert_eq!(without.id(), record.id());
    }

    #[test]
    fn le_cell_matches_bench_measurement_semantics() {
        // The lab cell must reproduce the exact numbers the figure
        // binaries produced via run_trials_jobs: same seed derivation,
        // same adversary construction.
        let cell = CellSpec::new(
            Workload::Le {
                adv: Adv::Random(10),
            },
            128,
            0.5,
            7,
            6,
        );
        let lab = run_cell(&cell, 1, LabSubstrate::Engine).unwrap();
        // Reference: inline re-implementation of measure_le's closure.
        let params = Params::new(128, 0.5).unwrap();
        let f = params.max_faults();
        let cfg = SimConfig::new(128)
            .seed(7)
            .max_rounds(params.le_round_budget());
        let reference = ftc_sim::runner::run_trials_jobs(&cfg, 6, 1, |c| {
            let mut adv = RandomCrash::new(f, 10);
            let r = ftc_sim::engine::run(c, |_| LeNode::new(params.clone()), &mut adv);
            (LeOutcome::evaluate(&r).success, r.metrics.msgs_sent)
        });
        let ref_msgs: Vec<f64> = reference.iter().map(|t| t.value.1 as f64).collect();
        assert_eq!(lab.msgs, Summary::of(&ref_msgs));
        assert_eq!(
            lab.successes,
            reference.iter().filter(|t| t.value.0).count() as u64
        );
    }

    #[test]
    fn substrate_is_invisible_in_results() {
        let spec = CampaignSpec::new("substrate-unit").cell(CellSpec::new(
            Workload::Le {
                adv: Adv::Random(5),
            },
            16,
            0.5,
            3,
            2,
        ));
        let engine = run_campaign(&spec, 1, LabSubstrate::Engine).unwrap();
        let channel = run_campaign(&spec, 1, LabSubstrate::Channel(2)).unwrap();
        // Substrate label differs, so compare cells, not whole renders.
        assert_eq!(
            engine.cells[0].to_json(false).render(),
            channel.cells[0].to_json(false).render()
        );
        // Intra-trial sharding shares the `engine` label, so the whole
        // deterministic render — record id included — must be identical.
        let sharded = run_campaign(&spec, 1, LabSubstrate::EngineSharded(3)).unwrap();
        assert_eq!(
            engine.deterministic_render(),
            sharded.deterministic_render()
        );
        assert_eq!(engine.id(), sharded.id());
    }

    #[test]
    fn soak_cell_runs_clean_and_is_jobs_invariant() {
        let spec = CampaignSpec::new("soak-unit").cell(CellSpec::new(
            Workload::Soak {
                heights: 12,
                kill_every: 2,
                rejoin_after: 3,
            },
            16,
            0.5,
            9,
            2,
        ));
        let a = run_campaign(&spec, 1, LabSubstrate::Engine).unwrap();
        let b = run_campaign(&spec, 4, LabSubstrate::Engine).unwrap();
        assert_eq!(a.deterministic_render(), b.deterministic_render());
        assert_eq!(a.id(), b.id());
        let cell = &a.cells[0];
        // Churn happened, the monitor stayed quiet, and the percentile
        // extras made it into the record.
        assert!(cell.crashes.mean > 0.0);
        assert_eq!(cell.extra("violations").unwrap().mean, 0.0);
        assert!(cell.extra("ttnl_p99").unwrap().mean >= cell.extra("ttnl_p50").unwrap().mean);
        assert!(cell.extra("lat_p99").unwrap().mean >= cell.extra("lat_p50").unwrap().mean);
        let avail = cell.extra("availability").unwrap().mean;
        assert!(avail > 0.0 && avail < 1.0, "availability {avail}");
        // Engine-only, like the other harness workloads.
        assert!(run_campaign(&spec, 1, LabSubstrate::Channel(2)).is_err());
    }

    #[test]
    fn substrate_rejects_non_protocol_workloads() {
        let spec = CampaignSpec::new("bad").cell(CellSpec::new(Workload::LeKutten, 16, 0.5, 3, 2));
        assert!(run_campaign(&spec, 1, LabSubstrate::Channel(2)).is_err());
        assert!(run_campaign(&spec, 1, LabSubstrate::Engine).is_ok());
        // The sharded engine is still the engine: every workload runs.
        assert!(run_campaign(&spec, 1, LabSubstrate::EngineSharded(2)).is_ok());
    }

    #[test]
    fn oversized_byzantine_budgets_fail_fast_with_context() {
        // Regression: `b > n` used to panic mid-trial inside
        // `FaultySet::random` ("cannot make 20 of 16 nodes faulty");
        // run_campaign now rejects the cell before any trial runs.
        for workload in [
            Workload::AgreeByzantine { b: 20 },
            Workload::LeByzantine { b: 20 },
        ] {
            let spec = CampaignSpec::new("byz-bad")
                .cell(CellSpec::new(workload, 16, 0.5, 3, 2).label("byz"));
            let err = run_campaign(&spec, 1, LabSubstrate::Engine).unwrap_err();
            assert!(err.contains("byz"), "{err}");
            assert!(err.contains("b=20"), "{err}");
            assert!(err.contains("n=16"), "{err}");
        }
        // Budgets within the network still run.
        let ok = CampaignSpec::new("byz-ok").cell(CellSpec::new(
            Workload::AgreeByzantine { b: 2 },
            16,
            0.5,
            3,
            2,
        ));
        assert!(run_campaign(&ok, 1, LabSubstrate::Engine).is_ok());
    }

    #[test]
    fn topology_cells_run_and_round_trip() {
        let spec = CampaignSpec::new("topo-unit")
            .cell(
                CellSpec::new(
                    Workload::Le {
                        adv: Adv::Random(10),
                    },
                    128,
                    0.5,
                    5,
                    2,
                )
                .label("le/rr8")
                .topology(Topology::RandomRegular { d: 8 }),
            )
            .cell(
                CellSpec::new(Workload::LeDiamTwo { adv: Adv::None }, 128, 0.5, 7, 2)
                    .label("cpr/diam2")
                    .topology(Topology::DiameterTwo { clusters: 6 }),
            );
        let a = run_campaign(&spec, 1, LabSubstrate::Engine).unwrap();
        let b = run_campaign(&spec, 4, LabSubstrate::Engine).unwrap();
        assert_eq!(a.deterministic_render(), b.deterministic_render());
        // The diam-two baseline is fault-free here: it must elect.
        assert_eq!(a.cells[1].successes, 2);
        // Sparse cells move fewer messages than the same protocol on the
        // complete graph would allow; the render must carry the topology.
        assert!(a.deterministic_render().contains("random_regular"));
        assert!(a.deterministic_render().contains("diameter_two"));
        let back =
            CampaignRecord::from_json(&Json::parse(&a.deterministic_render()).unwrap()).unwrap();
        assert_eq!(back.id(), a.id());
        assert_eq!(
            back.cells[0].cell.topology,
            Topology::RandomRegular { d: 8 }
        );
    }

    #[test]
    fn invalid_topologies_fail_fast_with_context() {
        // d > n-1 cannot wire; the error names the cell, not a panic site.
        let spec = CampaignSpec::new("topo-bad").cell(
            CellSpec::new(Workload::LeKutten, 8, 0.5, 3, 2)
                .label("bad")
                .topology(Topology::RandomRegular { d: 9 }),
        );
        let err = run_campaign(&spec, 1, LabSubstrate::Engine).unwrap_err();
        assert!(err.contains("bad"), "{err}");
        // Workloads that never touch the sim engine reject non-complete
        // topologies instead of silently ignoring them.
        let soak = CampaignSpec::new("topo-soak").cell(
            CellSpec::new(
                Workload::Soak {
                    heights: 5,
                    kill_every: 2,
                    rejoin_after: 2,
                },
                16,
                0.5,
                3,
                1,
            )
            .topology(Topology::DiameterTwo { clusters: 4 }),
        );
        assert!(run_campaign(&soak, 1, LabSubstrate::Engine).is_err());
    }

    #[test]
    fn empty_and_zero_trial_campaigns_are_rejected() {
        assert!(run_campaign(&CampaignSpec::new("empty"), 1, LabSubstrate::Engine).is_err());
        let zero = CampaignSpec::new("zero").cell(CellSpec::new(Workload::LeKutten, 16, 0.5, 3, 0));
        assert!(run_campaign(&zero, 1, LabSubstrate::Engine).is_err());
    }
}
