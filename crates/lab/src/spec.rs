//! Campaign specifications: experiments as data.
//!
//! A [`CampaignSpec`] is the complete, serialisable description of one
//! experiment: a list of [`CellSpec`]s (workload × `n` × `α` × seed ×
//! trial budget) plus optional fitted-exponent assertions
//! ([`ExponentCheck`]) that re-verify the paper's asymptotic claims
//! against the measured means. Because the spec is plain data with a
//! canonical JSON form, it has a stable content hash ([`CampaignSpec::hash`])
//! — the key that makes stored results diffable across commits: two
//! records with the same spec hash measured the same experiment.

use ftc_sim::json::{Json, JsonError};
use ftc_sim::topology::Topology;

/// Which crash schedule a cell runs under. Mirrors the schedules the
/// figure binaries always used; `AdaptiveKiller` is the model-boundary
/// adversary of E11 (leader election only).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Adv {
    /// No crashes.
    None,
    /// All faulty nodes crash at round 0 before sending.
    Eager,
    /// Random crash rounds within the given horizon.
    Random(u32),
    /// The paper's worst case: assassinate the current minimum proposer
    /// (LE) / the current zero-forwarder (agreement).
    Targeted,
    /// Adaptive candidate killer (breaks the static-adversary model;
    /// leader election only).
    AdaptiveKiller,
}

impl Adv {
    /// Human-readable label for tables.
    pub fn label(self) -> &'static str {
        match self {
            Adv::None => "fault-free",
            Adv::Eager => "eager",
            Adv::Random(_) => "random",
            Adv::Targeted => "targeted",
            Adv::AdaptiveKiller => "adaptive",
        }
    }

    /// JSON encoding, tagged by `kind`.
    pub fn to_json(self) -> Json {
        let kind = |k: &str| ("kind".to_string(), Json::Str(k.into()));
        match self {
            Adv::None => Json::Obj(vec![kind("none")]),
            Adv::Eager => Json::Obj(vec![kind("eager")]),
            Adv::Random(h) => Json::Obj(vec![
                kind("random"),
                ("horizon".into(), Json::UInt(u64::from(h))),
            ]),
            Adv::Targeted => Json::Obj(vec![kind("targeted")]),
            Adv::AdaptiveKiller => Json::Obj(vec![kind("adaptive_killer")]),
        }
    }

    /// Decodes from the [`Adv::to_json`] form.
    pub fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v.field("kind")?.as_str()? {
            "none" => Ok(Adv::None),
            "eager" => Ok(Adv::Eager),
            "random" => Ok(Adv::Random(v.field("horizon")?.as_u64()? as u32)),
            "targeted" => Ok(Adv::Targeted),
            "adaptive_killer" => Ok(Adv::AdaptiveKiller),
            other => Err(JsonError {
                message: format!("unknown adversary kind `{other}`"),
            }),
        }
    }
}

/// What one cell measures. Every variant corresponds to one trial closure
/// that used to live inline in a `fig_*` binary; the variant carries
/// exactly the knobs that closure had.
///
/// Input conventions: agreement-style workloads take a `zeros` fraction
/// and spread the 0-inputs round-robin with stride `round(1/zeros)`
/// (`0.0` = all ones), matching the CLI/hunt convention. `AgreeEdge`
/// inverts the pattern (E13 historically ran mostly-zero inputs).
#[derive(Clone, Debug, PartialEq)]
pub enum Workload {
    /// Implicit leader election (Theorem 4.1).
    Le {
        /// Crash schedule.
        adv: Adv,
    },
    /// Implicit binary agreement (Theorem 5.1).
    Agree {
        /// Fraction of 0-inputs.
        zeros: f64,
        /// Crash schedule.
        adv: Adv,
    },
    /// D4 ablation: LE with a scaled iteration budget under a multi-kill
    /// assassin.
    LeIter {
        /// Multiplier on the paper's iteration constant.
        factor: f64,
        /// Assassin kills per round.
        per_round: u32,
    },
    /// E12: LE with `b` equivocating Byzantine claimants.
    LeByzantine {
        /// Byzantine node count.
        b: u32,
    },
    /// E12: agreement (all-ones inputs) with `b` forged-zero senders;
    /// success means no honest validity violation.
    AgreeByzantine {
        /// Byzantine node count.
        b: u32,
    },
    /// E13: LE with each edge dead independently with probability `p`.
    LeEdge {
        /// Edge failure probability.
        p: f64,
    },
    /// E13: agreement under edge failures, inputs mostly zeros
    /// (`id % 8 == 0` holds 1).
    AgreeEdge {
        /// Edge failure probability.
        p: f64,
    },
    /// E8: LE under a per-node send cap (`None` = unlimited).
    LeCapped {
        /// Per-node send budget.
        cap: Option<u32>,
    },
    /// E8: agreement under a per-node send cap, inputs split 50/50.
    AgreeCapped {
        /// Per-node send budget.
        cap: Option<u32>,
    },
    /// E7: the explicit leader-election extension.
    LeExplicit,
    /// E7 comparator: the implicit protocol under the explicit budget and
    /// adversary (the announce cost is the difference to `LeExplicit`).
    LeImplicitExplicitBudget,
    /// E7/E1: the explicit agreement extension.
    AgreeExplicit {
        /// Fraction of 0-inputs.
        zeros: f64,
    },
    /// E9: Kutten et al. fault-free leader election.
    LeKutten,
    /// Topology-aware baseline: hub-relay leader election on the
    /// diameter-two topology (Chatterjee–Pandurangan–Robinson style).
    /// Requires the cell's topology to be `DiameterTwo` (or `Complete`,
    /// where every node acts as a hub).
    LeDiamTwo {
        /// Crash schedule (schedule-only: none/eager/random).
        adv: Adv,
    },
    /// E9: Augustine et al. fault-free agreement.
    AgreeAugustine {
        /// Fraction of 0-inputs.
        zeros: f64,
    },
    /// E14: multi-valued agreement over `{0..k}`.
    MultiValue {
        /// Input domain size.
        k: u32,
    },
    /// E1: folklore FloodSet at `faults` random crashes.
    Flood {
        /// Crash budget.
        faults: u64,
    },
    /// E1: Gilbert–Kowalski-style KT1 agreement at `faults` random crashes.
    Gk {
        /// Crash budget.
        faults: u64,
    },
    /// E1: Chlebus–Kowalski-style gossip at `faults` random crashes.
    Gossip {
        /// Crash budget.
        faults: u64,
    },
    /// E10: the sampling layer alone — Lemmas 1–3 concentration.
    SamplingLemmas {
        /// Candidate-probability constant (paper: 6).
        candidate_factor: f64,
        /// Referee-count constant (paper: 2).
        referee_factor: f64,
    },
    /// Engine hot-path benchmark: a broadcast-heavy canary protocol whose
    /// message counts pin the data plane bit-for-bit while the diagnostic
    /// `trials_per_s` field measures raw engine throughput (the quantity
    /// the `ftc lab perf` gate watches). Engine substrate only.
    EngineBench {
        /// Crash schedule.
        adv: Adv,
        /// Edge failure probability (`0.0` = reliable edges).
        p: f64,
        /// Broadcast rounds per trial.
        rounds: u32,
    },
    /// E18: an `ftc-serve` soak — a long-lived leader service running this
    /// many election heights with leader-kill churn, a deterministic load
    /// generator, and the invariant monitor armed. Success means zero
    /// invariant violations and zero failed elections; extras carry the
    /// TTNL and latency percentiles plus availability. Engine substrate
    /// only.
    Soak {
        /// Election heights per trial.
        heights: u32,
        /// Crash the leader after every this-many successful heights.
        kill_every: u32,
        /// Heights a downed node sits out before rejoining.
        rejoin_after: u32,
    },
}

impl Workload {
    /// The JSON tag / default label of this workload.
    pub fn tag(&self) -> &'static str {
        match self {
            Workload::Le { .. } => "le",
            Workload::Agree { .. } => "agree",
            Workload::LeIter { .. } => "le_iter",
            Workload::LeByzantine { .. } => "le_byzantine",
            Workload::AgreeByzantine { .. } => "agree_byzantine",
            Workload::LeEdge { .. } => "le_edge",
            Workload::AgreeEdge { .. } => "agree_edge",
            Workload::LeCapped { .. } => "le_capped",
            Workload::AgreeCapped { .. } => "agree_capped",
            Workload::LeExplicit => "le_explicit",
            Workload::LeImplicitExplicitBudget => "le_implicit_xbudget",
            Workload::AgreeExplicit { .. } => "agree_explicit",
            Workload::LeKutten => "le_kutten",
            Workload::LeDiamTwo { .. } => "le_diam_two",
            Workload::AgreeAugustine { .. } => "agree_augustine",
            Workload::MultiValue { .. } => "multi_value",
            Workload::Flood { .. } => "flood",
            Workload::Gk { .. } => "gk",
            Workload::Gossip { .. } => "gossip",
            Workload::SamplingLemmas { .. } => "sampling_lemmas",
            Workload::EngineBench { .. } => "engine_bench",
            Workload::Soak { .. } => "soak",
        }
    }

    /// JSON encoding, tagged by `kind`.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![("kind".to_string(), Json::Str(self.tag().into()))];
        match self {
            Workload::Le { adv } | Workload::LeDiamTwo { adv } => {
                fields.push(("adv".into(), adv.to_json()))
            }
            Workload::Agree { zeros, adv } => {
                fields.push(("zeros".into(), Json::Num(*zeros)));
                fields.push(("adv".into(), adv.to_json()));
            }
            Workload::LeIter { factor, per_round } => {
                fields.push(("factor".into(), Json::Num(*factor)));
                fields.push(("per_round".into(), Json::UInt(u64::from(*per_round))));
            }
            Workload::LeByzantine { b } | Workload::AgreeByzantine { b } => {
                fields.push(("b".into(), Json::UInt(u64::from(*b))));
            }
            Workload::LeEdge { p } | Workload::AgreeEdge { p } => {
                fields.push(("p".into(), Json::Num(*p)));
            }
            Workload::LeCapped { cap } | Workload::AgreeCapped { cap } => {
                fields.push((
                    "cap".into(),
                    cap.map_or(Json::Null, |c| Json::UInt(u64::from(c))),
                ));
            }
            Workload::LeExplicit | Workload::LeImplicitExplicitBudget | Workload::LeKutten => {}
            Workload::AgreeExplicit { zeros } | Workload::AgreeAugustine { zeros } => {
                fields.push(("zeros".into(), Json::Num(*zeros)));
            }
            Workload::MultiValue { k } => fields.push(("k".into(), Json::UInt(u64::from(*k)))),
            Workload::Flood { faults } | Workload::Gk { faults } | Workload::Gossip { faults } => {
                fields.push(("faults".into(), Json::UInt(*faults)));
            }
            Workload::SamplingLemmas {
                candidate_factor,
                referee_factor,
            } => {
                fields.push(("candidate_factor".into(), Json::Num(*candidate_factor)));
                fields.push(("referee_factor".into(), Json::Num(*referee_factor)));
            }
            Workload::EngineBench { adv, p, rounds } => {
                fields.push(("adv".into(), adv.to_json()));
                fields.push(("p".into(), Json::Num(*p)));
                fields.push(("rounds".into(), Json::UInt(u64::from(*rounds))));
            }
            Workload::Soak {
                heights,
                kill_every,
                rejoin_after,
            } => {
                fields.push(("heights".into(), Json::UInt(u64::from(*heights))));
                fields.push(("kill_every".into(), Json::UInt(u64::from(*kill_every))));
                fields.push(("rejoin_after".into(), Json::UInt(u64::from(*rejoin_after))));
            }
        }
        Json::Obj(fields)
    }

    /// Decodes from the [`Workload::to_json`] form.
    pub fn from_json(v: &Json) -> Result<Self, JsonError> {
        let cap = |v: &Json| -> Result<Option<u32>, JsonError> {
            match v.field("cap")? {
                Json::Null => Ok(None),
                other => Ok(Some(other.as_u64()? as u32)),
            }
        };
        match v.field("kind")?.as_str()? {
            "le" => Ok(Workload::Le {
                adv: Adv::from_json(v.field("adv")?)?,
            }),
            "agree" => Ok(Workload::Agree {
                zeros: v.field("zeros")?.as_f64()?,
                adv: Adv::from_json(v.field("adv")?)?,
            }),
            "le_iter" => Ok(Workload::LeIter {
                factor: v.field("factor")?.as_f64()?,
                per_round: v.field("per_round")?.as_u64()? as u32,
            }),
            "le_byzantine" => Ok(Workload::LeByzantine {
                b: v.field("b")?.as_u64()? as u32,
            }),
            "agree_byzantine" => Ok(Workload::AgreeByzantine {
                b: v.field("b")?.as_u64()? as u32,
            }),
            "le_edge" => Ok(Workload::LeEdge {
                p: v.field("p")?.as_f64()?,
            }),
            "agree_edge" => Ok(Workload::AgreeEdge {
                p: v.field("p")?.as_f64()?,
            }),
            "le_capped" => Ok(Workload::LeCapped { cap: cap(v)? }),
            "agree_capped" => Ok(Workload::AgreeCapped { cap: cap(v)? }),
            "le_explicit" => Ok(Workload::LeExplicit),
            "le_implicit_xbudget" => Ok(Workload::LeImplicitExplicitBudget),
            "agree_explicit" => Ok(Workload::AgreeExplicit {
                zeros: v.field("zeros")?.as_f64()?,
            }),
            "le_kutten" => Ok(Workload::LeKutten),
            "le_diam_two" => Ok(Workload::LeDiamTwo {
                adv: Adv::from_json(v.field("adv")?)?,
            }),
            "agree_augustine" => Ok(Workload::AgreeAugustine {
                zeros: v.field("zeros")?.as_f64()?,
            }),
            "multi_value" => Ok(Workload::MultiValue {
                k: v.field("k")?.as_u64()? as u32,
            }),
            "flood" => Ok(Workload::Flood {
                faults: v.field("faults")?.as_u64()?,
            }),
            "gk" => Ok(Workload::Gk {
                faults: v.field("faults")?.as_u64()?,
            }),
            "gossip" => Ok(Workload::Gossip {
                faults: v.field("faults")?.as_u64()?,
            }),
            "sampling_lemmas" => Ok(Workload::SamplingLemmas {
                candidate_factor: v.field("candidate_factor")?.as_f64()?,
                referee_factor: v.field("referee_factor")?.as_f64()?,
            }),
            "engine_bench" => Ok(Workload::EngineBench {
                adv: Adv::from_json(v.field("adv")?)?,
                p: v.field("p")?.as_f64()?,
                rounds: v.field("rounds")?.as_u64()? as u32,
            }),
            "soak" => Ok(Workload::Soak {
                heights: v.field("heights")?.as_u64()? as u32,
                kill_every: v.field("kill_every")?.as_u64()? as u32,
                rejoin_after: v.field("rejoin_after")?.as_u64()? as u32,
            }),
            other => Err(JsonError {
                message: format!("unknown workload kind `{other}`"),
            }),
        }
    }
}

/// One point of a campaign's parameter grid.
#[derive(Clone, Debug, PartialEq)]
pub struct CellSpec {
    /// Free-form cell label; exponent checks and diffs select by it, so
    /// keep it stable across runs (the series name, e.g. `"le/random"`).
    pub label: String,
    /// What to measure.
    pub workload: Workload,
    /// Network size.
    pub n: u32,
    /// Guaranteed non-faulty fraction.
    pub alpha: f64,
    /// Base seed; trial `i` runs at `stream_seed(seed, i + 1)`, exactly
    /// the `ParRunner` derivation the figure binaries always used.
    pub seed: u64,
    /// Trials in this cell.
    pub trials: u64,
    /// Network graph the trials run on. `Complete` is the default and is
    /// omitted from the JSON form, so pre-topology specs — and therefore
    /// every committed complete-graph spec hash and record id — are
    /// unchanged.
    pub topology: Topology,
}

impl CellSpec {
    /// Creates a cell with the label defaulting to the workload tag.
    pub fn new(workload: Workload, n: u32, alpha: f64, seed: u64, trials: u64) -> Self {
        CellSpec {
            label: workload.tag().to_string(),
            workload,
            n,
            alpha,
            seed,
            trials,
            topology: Topology::Complete,
        }
    }

    /// Overrides the label (builder style).
    pub fn label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// Overrides the topology (builder style).
    pub fn topology(mut self, topology: Topology) -> Self {
        self.topology = topology;
        self
    }

    /// JSON encoding.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("label".into(), Json::Str(self.label.clone())),
            ("workload".into(), self.workload.to_json()),
            ("n".into(), Json::UInt(u64::from(self.n))),
            ("alpha".into(), Json::Num(self.alpha)),
            ("seed".into(), Json::UInt(self.seed)),
            ("trials".into(), Json::UInt(self.trials)),
        ];
        if !self.topology.is_complete() {
            fields.push(("topology".into(), self.topology.to_json()));
        }
        Json::Obj(fields)
    }

    /// Decodes from the [`CellSpec::to_json`] form.
    pub fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(CellSpec {
            label: v.field("label")?.as_str()?.to_string(),
            workload: Workload::from_json(v.field("workload")?)?,
            n: v.field("n")?.as_u64()? as u32,
            alpha: v.field("alpha")?.as_f64()?,
            seed: v.field("seed")?.as_u64()?,
            trials: v.field("trials")?.as_u64()?,
            topology: match v.get("topology") {
                Some(t) => Topology::from_json(t)?,
                None => Topology::Complete,
            },
        })
    }
}

/// Which measured quantity a check fits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CheckMetric {
    /// Mean messages sent per trial.
    Msgs,
    /// Mean rounds per trial.
    Rounds,
}

impl CheckMetric {
    fn name(self) -> &'static str {
        match self {
            CheckMetric::Msgs => "msgs",
            CheckMetric::Rounds => "rounds",
        }
    }

    fn parse(s: &str) -> Result<Self, JsonError> {
        match s {
            "msgs" => Ok(CheckMetric::Msgs),
            "rounds" => Ok(CheckMetric::Rounds),
            other => Err(JsonError {
                message: format!("unknown check metric `{other}`"),
            }),
        }
    }
}

/// The x-axis a check fits against.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CheckAxis {
    /// Network size `n`.
    N,
    /// `1/α` (resilience dial).
    InvAlpha,
}

impl CheckAxis {
    fn name(self) -> &'static str {
        match self {
            CheckAxis::N => "n",
            CheckAxis::InvAlpha => "inv_alpha",
        }
    }

    fn parse(s: &str) -> Result<Self, JsonError> {
        match s {
            "n" => Ok(CheckAxis::N),
            "inv_alpha" => Ok(CheckAxis::InvAlpha),
            other => Err(JsonError {
                message: format!("unknown check axis `{other}`"),
            }),
        }
    }
}

/// A fitted-exponent assertion: fit `metric ~ axis^e` over the cells
/// labelled `series` and require `e ∈ [min, max]`.
///
/// This is how the store continuously re-verifies Theorem 1's shape: the
/// LE message exponent on `n` must stay decisively sublinear (the paper's
/// `Õ(n^{1-α/2})` with polylog slack), and rounds must stay polylog
/// (near-zero power-law exponent).
#[derive(Clone, Debug, PartialEq)]
pub struct ExponentCheck {
    /// Check name, unique within the campaign.
    pub name: String,
    /// Cell label selecting the series.
    pub series: String,
    /// Quantity to fit.
    pub metric: CheckMetric,
    /// X-axis.
    pub axis: CheckAxis,
    /// Inclusive lower bound on the fitted exponent.
    pub min: f64,
    /// Inclusive upper bound on the fitted exponent.
    pub max: f64,
}

impl ExponentCheck {
    /// JSON encoding.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".into(), Json::Str(self.name.clone())),
            ("series".into(), Json::Str(self.series.clone())),
            ("metric".into(), Json::Str(self.metric.name().into())),
            ("axis".into(), Json::Str(self.axis.name().into())),
            ("min".into(), Json::Num(self.min)),
            ("max".into(), Json::Num(self.max)),
        ])
    }

    /// Decodes from the [`ExponentCheck::to_json`] form.
    pub fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(ExponentCheck {
            name: v.field("name")?.as_str()?.to_string(),
            series: v.field("series")?.as_str()?.to_string(),
            metric: CheckMetric::parse(v.field("metric")?.as_str()?)?,
            axis: CheckAxis::parse(v.field("axis")?.as_str()?)?,
            min: v.field("min")?.as_f64()?,
            max: v.field("max")?.as_f64()?,
        })
    }
}

/// A complete experiment campaign: the grid plus its assertions.
#[derive(Clone, Debug, PartialEq)]
pub struct CampaignSpec {
    /// Campaign name (also the store-id prefix).
    pub name: String,
    /// The parameter grid.
    pub cells: Vec<CellSpec>,
    /// Fitted-exponent assertions over the grid.
    pub checks: Vec<ExponentCheck>,
}

impl CampaignSpec {
    /// Creates an empty campaign.
    pub fn new(name: impl Into<String>) -> Self {
        CampaignSpec {
            name: name.into(),
            cells: Vec::new(),
            checks: Vec::new(),
        }
    }

    /// Adds a cell (builder style).
    pub fn cell(mut self, cell: CellSpec) -> Self {
        self.cells.push(cell);
        self
    }

    /// Adds a check (builder style).
    pub fn check(mut self, check: ExponentCheck) -> Self {
        self.checks.push(check);
        self
    }

    /// JSON encoding (the canonical form the spec hash covers).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".into(), Json::Str(self.name.clone())),
            (
                "cells".into(),
                Json::Arr(self.cells.iter().map(CellSpec::to_json).collect()),
            ),
            (
                "checks".into(),
                Json::Arr(self.checks.iter().map(ExponentCheck::to_json).collect()),
            ),
        ])
    }

    /// Decodes from the [`CampaignSpec::to_json`] form.
    pub fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(CampaignSpec {
            name: v.field("name")?.as_str()?.to_string(),
            cells: v
                .field("cells")?
                .as_arr()?
                .iter()
                .map(CellSpec::from_json)
                .collect::<Result<_, _>>()?,
            checks: v
                .field("checks")?
                .as_arr()?
                .iter()
                .map(ExponentCheck::from_json)
                .collect::<Result<_, _>>()?,
        })
    }

    /// Content hash of the canonical JSON render (FNV-1a 64, hex).
    ///
    /// Two records are comparable iff their spec hashes agree; `gate`
    /// refuses to compare across differing specs.
    pub fn hash(&self) -> String {
        format!("{:016x}", fnv1a64(self.to_json().render().as_bytes()))
    }
}

/// FNV-1a 64-bit over a byte string. Stable, dependency-free, and good
/// enough for content addressing human-scale result sets.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The round-robin 0-input stride for a `zeros` fraction (the CLI/hunt
/// convention: node holds 1 unless `id % stride == 0`).
pub fn input_stride(zeros: f64) -> u32 {
    if zeros <= 0.0 {
        u32::MAX
    } else {
        (1.0 / zeros).round().max(1.0) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_spec() -> CampaignSpec {
        CampaignSpec::new("unit")
            .cell(CellSpec::new(
                Workload::Le {
                    adv: Adv::Random(60),
                },
                256,
                0.5,
                7,
                4,
            ))
            .cell(
                CellSpec::new(Workload::AgreeCapped { cap: Some(8) }, 128, 0.25, 9, 6)
                    .label("agree/cap8"),
            )
            .check(ExponentCheck {
                name: "le-msgs-vs-n".into(),
                series: "le".into(),
                metric: CheckMetric::Msgs,
                axis: CheckAxis::N,
                min: 0.3,
                max: 0.9,
            })
    }

    #[test]
    fn spec_round_trips_through_json() {
        let spec = sample_spec();
        let back =
            CampaignSpec::from_json(&Json::parse(&spec.to_json().render()).unwrap()).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn every_workload_round_trips() {
        let workloads = vec![
            Workload::Le { adv: Adv::None },
            Workload::Le { adv: Adv::Eager },
            Workload::Le {
                adv: Adv::AdaptiveKiller,
            },
            Workload::Agree {
                zeros: 0.05,
                adv: Adv::Targeted,
            },
            Workload::LeIter {
                factor: 0.1,
                per_round: 4,
            },
            Workload::LeByzantine { b: 2 },
            Workload::AgreeByzantine { b: 1 },
            Workload::LeEdge { p: 0.4 },
            Workload::AgreeEdge { p: 0.9 },
            Workload::LeCapped { cap: None },
            Workload::LeCapped { cap: Some(16) },
            Workload::AgreeCapped { cap: Some(0) },
            Workload::LeExplicit,
            Workload::LeImplicitExplicitBudget,
            Workload::AgreeExplicit { zeros: 0.05 },
            Workload::LeKutten,
            Workload::LeDiamTwo { adv: Adv::Eager },
            Workload::AgreeAugustine { zeros: 0.0625 },
            Workload::MultiValue { k: 4096 },
            Workload::Flood { faults: 127 },
            Workload::Gk { faults: 127 },
            Workload::Gossip { faults: 128 },
            Workload::SamplingLemmas {
                candidate_factor: 6.0,
                referee_factor: 0.5,
            },
            Workload::EngineBench {
                adv: Adv::None,
                p: 0.0,
                rounds: 3,
            },
            Workload::EngineBench {
                adv: Adv::Eager,
                p: 0.3,
                rounds: 5,
            },
            Workload::Soak {
                heights: 120,
                kill_every: 3,
                rejoin_after: 4,
            },
        ];
        for w in workloads {
            let back = Workload::from_json(&Json::parse(&w.to_json().render()).unwrap()).unwrap();
            assert_eq!(back, w, "workload {w:?}");
        }
    }

    #[test]
    fn spec_hash_is_stable_and_content_sensitive() {
        let spec = sample_spec();
        assert_eq!(spec.hash(), spec.hash());
        let mut other = spec.clone();
        other.cells[0].seed ^= 1;
        assert_ne!(spec.hash(), other.hash());
        let mut renamed = spec.clone();
        renamed.cells[1].label = "renamed".into();
        assert_ne!(spec.hash(), renamed.hash());
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn input_stride_matches_cli_convention() {
        assert_eq!(input_stride(0.0), u32::MAX);
        assert_eq!(input_stride(0.05), 20);
        assert_eq!(input_stride(1.0 / 7.0), 7);
        assert_eq!(input_stride(1.0), 1);
    }

    #[test]
    fn complete_cells_render_without_a_topology_field() {
        // Committed complete-graph spec hashes must not move: the
        // `topology` key only appears for non-complete cells.
        let spec = sample_spec();
        assert!(!spec.to_json().render().contains("topology"));
        let back =
            CampaignSpec::from_json(&Json::parse(&spec.to_json().render()).unwrap()).unwrap();
        assert!(back.cells.iter().all(|c| c.topology.is_complete()));
        assert_eq!(back.hash(), spec.hash());
    }

    #[test]
    fn topology_cells_round_trip_and_shift_the_hash() {
        let base = sample_spec();
        let mut spec = sample_spec();
        spec.cells[0] = spec.cells[0]
            .clone()
            .topology(Topology::DiameterTwo { clusters: 8 });
        spec.cells[1] = spec.cells[1]
            .clone()
            .topology(Topology::RandomRegular { d: 6 });
        assert_ne!(spec.hash(), base.hash());
        let back =
            CampaignSpec::from_json(&Json::parse(&spec.to_json().render()).unwrap()).unwrap();
        assert_eq!(back, spec);
        assert_eq!(back.hash(), spec.hash());
    }

    #[test]
    fn unknown_tags_are_rejected() {
        let bad = Json::parse(r#"{"kind":"paxos"}"#).unwrap();
        assert!(Workload::from_json(&bad).is_err());
        assert!(Adv::from_json(&bad).is_err());
    }
}
