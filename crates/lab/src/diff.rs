//! Cell-by-cell comparison of campaign records, and the perf gate built
//! on it.
//!
//! Two runs of the same spec at the same seed must be byte-identical —
//! that is the strict mode `gate` uses by default. When comparing runs
//! at *different* seeds (e.g. a re-measured baseline), exactness is the
//! wrong bar; [`Tolerance`] instead accepts a cell when
//!
//! - the success counts' 95% Wilson intervals overlap, and
//! - mean and p95 of messages and rounds agree within a fractional
//!   band (absolute slack floor for near-zero values).
//!
//! A spec-hash mismatch is never waved through: comparing different
//! experiments is a category error, so [`diff_records`] refuses.

use ftc_sim::stats::wilson_interval;

use crate::run::{CampaignRecord, CellResult};

/// How much two cells may differ before the diff flags them.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Tolerance {
    /// Require byte-identical deterministic payloads (same-seed gate
    /// mode). When set the band fields are ignored.
    pub exact: bool,
    /// Fractional band on mean/p95 of messages and rounds (0.15 = 15%).
    pub frac: f64,
    /// Absolute slack added to every band, so near-zero metrics (e.g.
    /// rounds of a trivially failing cell) don't divide by nothing.
    pub abs: f64,
}

impl Tolerance {
    /// Same-seed strict mode: any drift is a regression.
    pub fn exact() -> Self {
        Tolerance {
            exact: true,
            frac: 0.0,
            abs: 0.0,
        }
    }

    /// Cross-seed statistical mode with a fractional band.
    pub fn banded(frac: f64) -> Self {
        Tolerance {
            exact: false,
            frac,
            abs: 1.0,
        }
    }

    fn within(&self, base: f64, fresh: f64) -> bool {
        let band = self.frac * base.abs().max(fresh.abs()) + self.abs;
        (fresh - base).abs() <= band
    }
}

impl Default for Tolerance {
    fn default() -> Self {
        Tolerance::banded(0.15)
    }
}

/// The comparison of one cell across two records.
#[derive(Clone, Debug, PartialEq)]
pub struct CellDiff {
    /// Cell label (baseline side).
    pub label: String,
    /// Human-readable mismatch descriptions; empty means the cell passed.
    pub mismatches: Vec<String>,
}

impl CellDiff {
    /// Whether this cell agreed within tolerance.
    pub fn ok(&self) -> bool {
        self.mismatches.is_empty()
    }
}

/// The outcome of diffing two records.
#[derive(Clone, Debug, PartialEq)]
pub struct DiffReport {
    /// Per-cell verdicts, in spec order.
    pub cells: Vec<CellDiff>,
    /// Record-level mismatches (cell count, check verdicts, exact-mode
    /// payload drift).
    pub record_mismatches: Vec<String>,
}

impl DiffReport {
    /// Whether the records agree within tolerance.
    pub fn ok(&self) -> bool {
        self.record_mismatches.is_empty() && self.cells.iter().all(CellDiff::ok)
    }

    /// All mismatch lines, cell-prefixed, for printing.
    pub fn lines(&self) -> Vec<String> {
        let mut out = self.record_mismatches.clone();
        for cell in &self.cells {
            for m in &cell.mismatches {
                out.push(format!("cell `{}`: {m}", cell.label));
            }
        }
        out
    }
}

fn wilson_overlap(base: &CellResult, fresh: &CellResult) -> bool {
    let (blo, bhi) = wilson_interval(base.successes, base.cell.trials.max(1));
    let (flo, fhi) = wilson_interval(fresh.successes, fresh.cell.trials.max(1));
    blo <= fhi && flo <= bhi
}

fn diff_cell(base: &CellResult, fresh: &CellResult, tol: &Tolerance) -> CellDiff {
    let mut mismatches = Vec::new();
    if base.cell.workload != fresh.cell.workload
        || base.cell.n != fresh.cell.n
        || base.cell.alpha != fresh.cell.alpha
    {
        mismatches.push("cells describe different experiments".to_string());
        return CellDiff {
            label: base.cell.label.clone(),
            mismatches,
        };
    }
    if tol.exact {
        // Compare deterministic payloads — wall-clock diag must never
        // trip the gate.
        if base.to_json(false).render() != fresh.to_json(false).render() {
            let detail = [
                ("successes", base.successes as f64, fresh.successes as f64),
                ("msgs.mean", base.msgs.mean, fresh.msgs.mean),
                ("rounds.mean", base.rounds.mean, fresh.rounds.mean),
            ]
            .iter()
            .find(|(_, b, f)| b != f)
            .map_or("aggregate drift".to_string(), |(k, b, f)| {
                format!("{k} {b} -> {f}")
            });
            mismatches.push(format!("exact mismatch ({detail})"));
        }
        return CellDiff {
            label: base.cell.label.clone(),
            mismatches,
        };
    }
    if !wilson_overlap(base, fresh) {
        mismatches.push(format!(
            "success rate {:.3} -> {:.3} (Wilson 95% intervals disjoint)",
            base.success_rate(),
            fresh.success_rate()
        ));
    }
    let metrics = [
        ("msgs.mean", base.msgs.mean, fresh.msgs.mean),
        ("msgs.p95", base.msgs.p95, fresh.msgs.p95),
        ("rounds.mean", base.rounds.mean, fresh.rounds.mean),
        ("rounds.p95", base.rounds.p95, fresh.rounds.p95),
    ];
    for (name, b, f) in metrics {
        if !tol.within(b, f) {
            mismatches.push(format!(
                "{name} {b:.1} -> {f:.1} (outside {:.0}% band)",
                tol.frac * 100.0
            ));
        }
    }
    CellDiff {
        label: base.cell.label.clone(),
        mismatches,
    }
}

/// Compares two records cell-by-cell. Refuses (Err) when the spec hashes
/// differ — that is two different experiments, not a regression.
pub fn diff_records(
    base: &CampaignRecord,
    fresh: &CampaignRecord,
    tol: &Tolerance,
) -> Result<DiffReport, String> {
    if base.spec_hash != fresh.spec_hash {
        return Err(format!(
            "spec hash mismatch: baseline {} vs fresh {} — these are different experiments",
            base.spec_hash, fresh.spec_hash
        ));
    }
    let mut record_mismatches = Vec::new();
    if base.cells.len() != fresh.cells.len() {
        record_mismatches.push(format!(
            "cell count {} -> {}",
            base.cells.len(),
            fresh.cells.len()
        ));
    }
    if tol.exact && base.deterministic_render() != fresh.deterministic_render() {
        record_mismatches.push("deterministic payloads differ".to_string());
    }
    for (b, f) in base.checks.iter().zip(&fresh.checks) {
        if b.pass && !f.pass {
            record_mismatches.push(format!(
                "exponent check `{}` regressed: {:?} -> {:?} (want [{}, {}])",
                b.check.name, b.exponent, f.exponent, f.check.min, f.check.max
            ));
        }
    }
    let cells = base
        .cells
        .iter()
        .zip(&fresh.cells)
        .map(|(b, f)| diff_cell(b, f, tol))
        .collect();
    Ok(DiffReport {
        cells,
        record_mismatches,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::{run_campaign, LabSubstrate};
    use crate::spec::{Adv, CampaignSpec, CellSpec, Workload};

    fn record(seed: u64, trials: u64) -> CampaignRecord {
        let spec = CampaignSpec::new("diff-unit").cell(CellSpec::new(
            Workload::Le {
                adv: Adv::Random(8),
            },
            16,
            0.5,
            seed,
            trials,
        ));
        run_campaign(&spec, 1, LabSubstrate::Engine).unwrap()
    }

    #[test]
    fn same_seed_runs_diff_clean_in_exact_mode() {
        let a = record(5, 4);
        let b = record(5, 4);
        let report = diff_records(&a, &b, &Tolerance::exact()).unwrap();
        assert!(report.ok(), "{:?}", report.lines());
    }

    #[test]
    fn different_seed_runs_fail_exact_but_pass_banded() {
        let a = record(5, 12);
        let mut spec = a.spec.clone();
        spec.cells[0].seed = 6;
        // Same hash requirement: seeds are part of the spec, so fake the
        // cross-seed case by comparing against a re-measured copy with a
        // hand-aligned hash (what `diff --tolerance` does for trend
        // comparisons of the same experiment re-seeded).
        let mut b = run_campaign(&spec, 1, LabSubstrate::Engine).unwrap();
        b.spec_hash = a.spec_hash.clone();
        let exact = diff_records(&a, &b, &Tolerance::exact()).unwrap();
        assert!(!exact.ok());
        let banded = diff_records(&a, &b, &Tolerance::banded(0.5)).unwrap();
        assert!(banded.ok(), "{:?}", banded.lines());
    }

    #[test]
    fn perturbed_baseline_is_flagged_in_both_modes() {
        let a = record(5, 8);
        let mut b = record(5, 8);
        b.cells[0].msgs.mean *= 2.0;
        b.cells[0].msgs.p95 *= 2.0;
        let exact = diff_records(&a, &b, &Tolerance::exact()).unwrap();
        assert!(!exact.ok());
        let banded = diff_records(&a, &b, &Tolerance::banded(0.15)).unwrap();
        assert!(!banded.ok());
        assert!(banded.lines().iter().any(|l| l.contains("msgs.mean")));
    }

    #[test]
    fn success_rate_collapse_is_flagged() {
        let a = record(5, 40);
        let mut b = record(5, 40);
        b.cells[0].successes = 0;
        let report = diff_records(&a, &b, &Tolerance::banded(10.0)).unwrap();
        assert!(
            !report.ok(),
            "wide metric band must not mask a success collapse"
        );
    }

    #[test]
    fn spec_hash_mismatch_is_refused() {
        let a = record(5, 2);
        let mut b = record(5, 2);
        b.spec_hash = "0000000000000000".into();
        assert!(diff_records(&a, &b, &Tolerance::exact()).is_err());
    }
}
