//! Benchmark trajectory export: `BENCH_leader_election.json` and
//! `BENCH_agreement.json` at the repo root.
//!
//! Each file is an append-only trajectory of campaign runs: one entry
//! per (spec hash, record id) pair, carrying the per-cell success rate,
//! message/round summaries, wall clock and throughput, plus provenance
//! (git rev, seed). Re-exporting an unchanged run is a no-op; a changed
//! measurement (new code, new spec) appends, so the file accumulates the
//! perf history of the protocols across the repo's life.

use std::fs;
use std::io;
use std::path::Path;

use ftc_sim::json::{Json, JsonError};

use crate::run::CampaignRecord;

/// Repo-root file for the leader-election trajectory.
pub const BENCH_LE: &str = "BENCH_leader_election.json";
/// Repo-root file for the agreement trajectory.
pub const BENCH_AGREE: &str = "BENCH_agreement.json";
/// Repo-root file for the engine hot-path throughput trajectory (the
/// `engine-bench` campaign; gated by `ftc lab perf`).
pub const BENCH_ENGINE: &str = "BENCH_engine.json";

fn cell_entry(cell: &crate::run::CellResult) -> Json {
    Json::Obj(vec![
        ("label".into(), Json::Str(cell.cell.label.clone())),
        ("n".into(), Json::UInt(u64::from(cell.cell.n))),
        ("alpha".into(), Json::Num(cell.cell.alpha)),
        ("seed".into(), Json::UInt(cell.cell.seed)),
        ("trials".into(), Json::UInt(cell.cell.trials)),
        ("success_rate".into(), Json::Num(cell.success_rate())),
        ("msgs".into(), cell.msgs.to_json()),
        ("rounds".into(), cell.rounds.to_json()),
        ("wall_s".into(), Json::Num(cell.wall_s)),
        ("trials_per_s".into(), Json::Num(cell.throughput())),
    ])
}

fn record_entry(record: &CampaignRecord) -> Json {
    Json::Obj(vec![
        ("id".into(), Json::Str(record.id())),
        ("name".into(), Json::Str(record.spec.name.clone())),
        ("spec_hash".into(), Json::Str(record.spec_hash.clone())),
        ("git_rev".into(), Json::Str(record.git_rev.clone())),
        ("substrate".into(), Json::Str(record.substrate.clone())),
        ("wall_s".into(), Json::Num(record.wall_s)),
        (
            "cells".into(),
            Json::Arr(record.cells.iter().map(cell_entry).collect()),
        ),
        (
            "checks".into(),
            Json::Arr(
                record
                    .checks
                    .iter()
                    .map(|c| {
                        Json::Obj(vec![
                            ("name".into(), Json::Str(c.check.name.clone())),
                            ("exponent".into(), c.exponent.map_or(Json::Null, Json::Num)),
                            ("pass".into(), Json::Bool(c.pass)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn load_entries(path: &Path) -> io::Result<Vec<Json>> {
    if !path.exists() {
        return Ok(Vec::new());
    }
    let text = fs::read_to_string(path)?;
    let json = Json::parse(&text)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    let schema_err = |m: String| io::Error::new(io::ErrorKind::InvalidData, m);
    match json.field("schema").map(Json::as_str) {
        Ok(Ok("ftc-lab-bench/v1")) => {}
        _ => {
            return Err(schema_err(format!(
                "{} is not a bench trajectory",
                path.display()
            )))
        }
    }
    json.field("entries")
        .and_then(Json::as_arr)
        .map(<[Json]>::to_vec)
        .map_err(|e: JsonError| schema_err(e.to_string()))
}

/// Returns the most recent entry of the trajectory at `path`.
pub fn latest_entry(path: &Path) -> io::Result<Json> {
    load_entries(path)?.pop().ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{} has no entries", path.display()),
        )
    })
}

/// Returns the most recent entry for the campaign called `name`. A
/// trajectory file can interleave entries from several campaigns (e.g.
/// `engine-bench` and `scale-bench` both append to `BENCH_engine.json`),
/// and the perf gate must compare against the right one.
pub fn latest_entry_named(path: &Path, name: &str) -> io::Result<Json> {
    load_entries(path)?
        .into_iter()
        .rev()
        .find(|e| {
            e.field("name")
                .and_then(Json::as_str)
                .is_ok_and(|n| n == name)
        })
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{} has no `{name}` entries", path.display()),
            )
        })
}

/// One cell's verdict from [`perf_gate`].
#[derive(Clone, Debug)]
pub struct PerfCellReport {
    /// Cell label (e.g. `bcast`).
    pub label: String,
    /// Network size.
    pub n: u64,
    /// Baseline throughput, trials/s.
    pub base_tps: f64,
    /// Fresh throughput, trials/s.
    pub fresh_tps: f64,
    /// `fresh_tps / base_tps`, before normalisation.
    pub ratio: f64,
    /// Whether this cell clears the normalised floor.
    pub pass: bool,
}

/// What [`perf_gate`] found: per-cell throughput verdicts plus any
/// deterministic-payload drift between the baseline and the fresh run.
#[derive(Clone, Debug)]
pub struct PerfReport {
    /// Per-cell verdicts, in campaign order.
    pub cells: Vec<PerfCellReport>,
    /// Median of the per-cell throughput ratios — the machine-speed
    /// estimate the floor is relative to.
    pub median_ratio: f64,
    /// Allowed per-cell shortfall below the median ratio.
    pub tolerance: f64,
    /// Deterministic fields (success rate, message/round summaries) that
    /// differ from the baseline. Non-empty means the comparison is about
    /// different work, so the gate fails regardless of throughput.
    pub mismatches: Vec<String>,
}

impl PerfReport {
    /// True iff every cell passes and the deterministic payloads agree.
    pub fn pass(&self) -> bool {
        self.mismatches.is_empty() && self.cells.iter().all(|c| c.pass)
    }
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let m = xs.len() / 2;
    if xs.len() % 2 == 1 {
        xs[m]
    } else {
        (xs[m - 1] + xs[m]) / 2.0
    }
}

/// Gates a fresh run of a bench campaign against a committed trajectory
/// entry. Wall clocks differ across machines, so absolute throughput is
/// not comparable; instead the per-cell ratios fresh/baseline are
/// normalised by their median — a uniformly slower machine shifts every
/// ratio equally and passes, while a hot-path regression drags specific
/// cells below `median × (1 − tolerance)` and fails. Deterministic
/// payload fields (success rate, message and round summaries) must match
/// exactly: a drifted payload means the bench is no longer measuring the
/// same work.
pub fn perf_gate(
    entry: &Json,
    fresh: &CampaignRecord,
    tolerance: f64,
) -> Result<PerfReport, String> {
    let field_str = |j: &Json, k: &str| -> Result<String, String> {
        j.field(k)
            .map(|v| v.render())
            .map_err(|e| format!("baseline entry: {e}"))
    };
    let base_hash = entry
        .field("spec_hash")
        .and_then(Json::as_str)
        .map_err(|e| format!("baseline entry: {e}"))?;
    if base_hash != fresh.spec_hash {
        return Err(format!(
            "spec hash mismatch: baseline {base_hash}, fresh {} — the campaign changed; regenerate the baseline",
            fresh.spec_hash
        ));
    }
    let base_cells = entry
        .field("cells")
        .and_then(Json::as_arr)
        .map_err(|e| format!("baseline entry: {e}"))?;
    if base_cells.len() != fresh.cells.len() {
        return Err(format!(
            "cell count mismatch: baseline {}, fresh {}",
            base_cells.len(),
            fresh.cells.len()
        ));
    }
    let mut mismatches = Vec::new();
    let mut cells = Vec::with_capacity(fresh.cells.len());
    for (base, fresh_cell) in base_cells.iter().zip(&fresh.cells) {
        let label = base
            .field("label")
            .and_then(Json::as_str)
            .map_err(|e| format!("baseline entry: {e}"))?
            .to_string();
        let mine = cell_entry(fresh_cell);
        for key in [
            "label",
            "n",
            "alpha",
            "seed",
            "trials",
            "success_rate",
            "msgs",
            "rounds",
        ] {
            let (b, f) = (field_str(base, key)?, field_str(&mine, key)?);
            if b != f {
                mismatches.push(format!("cell {label}: {key} baseline {b} != fresh {f}"));
            }
        }
        let base_tps = base
            .field("trials_per_s")
            .and_then(Json::as_f64)
            .map_err(|e| format!("baseline entry: {e}"))?;
        if base_tps <= 0.0 {
            return Err(format!(
                "cell {label}: baseline throughput {base_tps} is not positive"
            ));
        }
        let fresh_tps = fresh_cell.throughput();
        cells.push(PerfCellReport {
            label,
            n: u64::from(fresh_cell.cell.n),
            base_tps,
            fresh_tps,
            ratio: fresh_tps / base_tps,
            pass: true,
        });
    }
    let median_ratio = median(cells.iter().map(|c| c.ratio).collect());
    let floor = median_ratio * (1.0 - tolerance);
    for c in &mut cells {
        c.pass = c.ratio >= floor;
    }
    Ok(PerfReport {
        cells,
        median_ratio,
        tolerance,
        mismatches,
    })
}

/// Appends `record` to the trajectory at `path` (creating it if absent).
/// Idempotent per record id: exporting the same measurement twice keeps
/// one entry. Returns the number of entries now in the file.
pub fn export(record: &CampaignRecord, path: &Path) -> io::Result<usize> {
    let mut entries = load_entries(path)?;
    let id = Json::Str(record.id());
    if !entries.iter().any(|e| e.get("id") == Some(&id)) {
        entries.push(record_entry(record));
    }
    let count = entries.len();
    let doc = Json::Obj(vec![
        ("schema".into(), Json::Str("ftc-lab-bench/v1".into())),
        ("protocol".into(), Json::Str(record.spec.name.clone())),
        ("entries".into(), Json::Arr(entries)),
    ]);
    let mut text = doc.render();
    text.push('\n');
    fs::write(path, text)?;
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::{run_campaign, LabSubstrate};
    use crate::spec::{Adv, CampaignSpec, CellSpec, Workload};

    fn record(seed: u64) -> CampaignRecord {
        let spec = CampaignSpec::new("bench-unit").cell(CellSpec::new(
            Workload::Le {
                adv: Adv::Random(5),
            },
            16,
            0.5,
            seed,
            2,
        ));
        run_campaign(&spec, 1, LabSubstrate::Engine).unwrap()
    }

    #[test]
    fn export_appends_and_dedupes() {
        let path = std::env::temp_dir().join(format!("ftc-lab-bench-{}.json", std::process::id()));
        let _ = fs::remove_file(&path);
        assert_eq!(export(&record(1), &path).unwrap(), 1);
        assert_eq!(export(&record(1), &path).unwrap(), 1, "same id dedupes");
        assert_eq!(export(&record(2), &path).unwrap(), 2, "new id appends");
        let text = fs::read_to_string(&path).unwrap();
        let json = Json::parse(&text).unwrap();
        assert_eq!(
            json.field("schema").unwrap().as_str().unwrap(),
            "ftc-lab-bench/v1"
        );
        let entries = json.field("entries").unwrap().as_arr().unwrap();
        assert_eq!(entries.len(), 2);
        let cell = &entries[0].field("cells").unwrap().as_arr().unwrap()[0];
        assert!(cell.get("success_rate").is_some());
        assert!(cell.field("msgs").unwrap().get("median").is_some());
        let _ = fs::remove_file(&path);
    }

    fn bench_record() -> CampaignRecord {
        let mut spec = CampaignSpec::new("perf-unit");
        for (i, n) in [8u32, 16, 32].into_iter().enumerate() {
            spec = spec.cell(
                CellSpec::new(
                    Workload::EngineBench {
                        adv: Adv::None,
                        p: 0.0,
                        rounds: 3,
                    },
                    n,
                    0.5,
                    0xBE ^ i as u64,
                    2,
                )
                .label("bcast"),
            );
        }
        let mut record = run_campaign(&spec, 1, LabSubstrate::Engine).unwrap();
        // Pin wall clocks so the test reasons about ratios, not noise.
        for (i, cell) in record.cells.iter_mut().enumerate() {
            cell.wall_s = (i + 1) as f64;
        }
        record
    }

    #[test]
    fn perf_gate_normalises_by_median_ratio() {
        let path = std::env::temp_dir().join(format!("ftc-lab-perf-{}.json", std::process::id()));
        let _ = fs::remove_file(&path);
        let base = bench_record();
        export(&base, &path).unwrap();
        let entry = latest_entry(&path).unwrap();

        // A uniformly 3x slower machine shifts every ratio equally: pass.
        let mut slow = base.clone();
        for cell in &mut slow.cells {
            cell.wall_s *= 3.0;
        }
        let report = perf_gate(&entry, &slow, 0.2).unwrap();
        assert!(report.pass(), "uniform slowdown must pass: {report:?}");
        assert!((report.median_ratio - 1.0 / 3.0).abs() < 1e-9);

        // One cell regressing 2x while the rest hold drags only that
        // cell below the normalised floor: fail, and name the cell.
        let mut regressed = base.clone();
        regressed.cells[1].wall_s *= 2.0;
        let report = perf_gate(&entry, &regressed, 0.2).unwrap();
        assert!(!report.pass());
        assert!(report.cells[0].pass && report.cells[2].pass);
        assert!(!report.cells[1].pass);
        assert!(report.mismatches.is_empty());
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn perf_gate_rejects_drift() {
        let path = std::env::temp_dir().join(format!("ftc-lab-drift-{}.json", std::process::id()));
        let _ = fs::remove_file(&path);
        let base = bench_record();
        export(&base, &path).unwrap();
        let entry = latest_entry(&path).unwrap();

        // A different campaign is an error, not a throughput verdict.
        let other = record(1);
        assert!(perf_gate(&entry, &other, 0.2)
            .unwrap_err()
            .contains("spec hash mismatch"));

        // Same spec but drifted deterministic payload fails the gate
        // even at full throughput.
        let mut drifted = base.clone();
        drifted.cells[0].successes = 0;
        let report = perf_gate(&entry, &drifted, 0.2).unwrap();
        assert!(!report.pass());
        assert!(report.mismatches.iter().any(|m| m.contains("success_rate")));
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn non_trajectory_files_are_refused() {
        let path = std::env::temp_dir().join(format!("ftc-lab-junk-{}.json", std::process::id()));
        fs::write(&path, "{\"schema\":\"other\"}").unwrap();
        assert!(export(&record(1), &path).is_err());
        let _ = fs::remove_file(&path);
    }
}
