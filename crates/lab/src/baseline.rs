//! Benchmark trajectory export: `BENCH_leader_election.json` and
//! `BENCH_agreement.json` at the repo root.
//!
//! Each file is an append-only trajectory of campaign runs: one entry
//! per (spec hash, record id) pair, carrying the per-cell success rate,
//! message/round summaries, wall clock and throughput, plus provenance
//! (git rev, seed). Re-exporting an unchanged run is a no-op; a changed
//! measurement (new code, new spec) appends, so the file accumulates the
//! perf history of the protocols across the repo's life.

use std::fs;
use std::io;
use std::path::Path;

use ftc_sim::json::{Json, JsonError};

use crate::run::CampaignRecord;

/// Repo-root file for the leader-election trajectory.
pub const BENCH_LE: &str = "BENCH_leader_election.json";
/// Repo-root file for the agreement trajectory.
pub const BENCH_AGREE: &str = "BENCH_agreement.json";

fn cell_entry(cell: &crate::run::CellResult) -> Json {
    Json::Obj(vec![
        ("label".into(), Json::Str(cell.cell.label.clone())),
        ("n".into(), Json::UInt(u64::from(cell.cell.n))),
        ("alpha".into(), Json::Num(cell.cell.alpha)),
        ("seed".into(), Json::UInt(cell.cell.seed)),
        ("trials".into(), Json::UInt(cell.cell.trials)),
        ("success_rate".into(), Json::Num(cell.success_rate())),
        ("msgs".into(), cell.msgs.to_json()),
        ("rounds".into(), cell.rounds.to_json()),
        ("wall_s".into(), Json::Num(cell.wall_s)),
        ("trials_per_s".into(), Json::Num(cell.throughput())),
    ])
}

fn record_entry(record: &CampaignRecord) -> Json {
    Json::Obj(vec![
        ("id".into(), Json::Str(record.id())),
        ("name".into(), Json::Str(record.spec.name.clone())),
        ("spec_hash".into(), Json::Str(record.spec_hash.clone())),
        ("git_rev".into(), Json::Str(record.git_rev.clone())),
        ("substrate".into(), Json::Str(record.substrate.clone())),
        ("wall_s".into(), Json::Num(record.wall_s)),
        (
            "cells".into(),
            Json::Arr(record.cells.iter().map(cell_entry).collect()),
        ),
        (
            "checks".into(),
            Json::Arr(
                record
                    .checks
                    .iter()
                    .map(|c| {
                        Json::Obj(vec![
                            ("name".into(), Json::Str(c.check.name.clone())),
                            ("exponent".into(), c.exponent.map_or(Json::Null, Json::Num)),
                            ("pass".into(), Json::Bool(c.pass)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn load_entries(path: &Path) -> io::Result<Vec<Json>> {
    if !path.exists() {
        return Ok(Vec::new());
    }
    let text = fs::read_to_string(path)?;
    let json = Json::parse(&text)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    let schema_err = |m: String| io::Error::new(io::ErrorKind::InvalidData, m);
    match json.field("schema").map(Json::as_str) {
        Ok(Ok("ftc-lab-bench/v1")) => {}
        _ => {
            return Err(schema_err(format!(
                "{} is not a bench trajectory",
                path.display()
            )))
        }
    }
    json.field("entries")
        .and_then(Json::as_arr)
        .map(<[Json]>::to_vec)
        .map_err(|e: JsonError| schema_err(e.to_string()))
}

/// Appends `record` to the trajectory at `path` (creating it if absent).
/// Idempotent per record id: exporting the same measurement twice keeps
/// one entry. Returns the number of entries now in the file.
pub fn export(record: &CampaignRecord, path: &Path) -> io::Result<usize> {
    let mut entries = load_entries(path)?;
    let id = Json::Str(record.id());
    if !entries.iter().any(|e| e.get("id") == Some(&id)) {
        entries.push(record_entry(record));
    }
    let count = entries.len();
    let doc = Json::Obj(vec![
        ("schema".into(), Json::Str("ftc-lab-bench/v1".into())),
        ("protocol".into(), Json::Str(record.spec.name.clone())),
        ("entries".into(), Json::Arr(entries)),
    ]);
    let mut text = doc.render();
    text.push('\n');
    fs::write(path, text)?;
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::{run_campaign, LabSubstrate};
    use crate::spec::{Adv, CampaignSpec, CellSpec, Workload};

    fn record(seed: u64) -> CampaignRecord {
        let spec = CampaignSpec::new("bench-unit").cell(CellSpec::new(
            Workload::Le {
                adv: Adv::Random(5),
            },
            16,
            0.5,
            seed,
            2,
        ));
        run_campaign(&spec, 1, LabSubstrate::Engine).unwrap()
    }

    #[test]
    fn export_appends_and_dedupes() {
        let path = std::env::temp_dir().join(format!("ftc-lab-bench-{}.json", std::process::id()));
        let _ = fs::remove_file(&path);
        assert_eq!(export(&record(1), &path).unwrap(), 1);
        assert_eq!(export(&record(1), &path).unwrap(), 1, "same id dedupes");
        assert_eq!(export(&record(2), &path).unwrap(), 2, "new id appends");
        let text = fs::read_to_string(&path).unwrap();
        let json = Json::parse(&text).unwrap();
        assert_eq!(
            json.field("schema").unwrap().as_str().unwrap(),
            "ftc-lab-bench/v1"
        );
        let entries = json.field("entries").unwrap().as_arr().unwrap();
        assert_eq!(entries.len(), 2);
        let cell = &entries[0].field("cells").unwrap().as_arr().unwrap()[0];
        assert!(cell.get("success_rate").is_some());
        assert!(cell.field("msgs").unwrap().get("median").is_some());
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn non_trajectory_files_are_refused() {
        let path = std::env::temp_dir().join(format!("ftc-lab-junk-{}.json", std::process::id()));
        fs::write(&path, "{\"schema\":\"other\"}").unwrap();
        assert!(export(&record(1), &path).is_err());
        let _ = fs::remove_file(&path);
    }
}
