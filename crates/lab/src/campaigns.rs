//! Named campaign registry.
//!
//! The CLI (`ftc lab run <name>`) and CI gate resolve campaign names
//! here. Every builder is a pure function of its arguments, so the spec
//! hash of a named campaign is stable across machines and sessions —
//! which is what lets a committed baseline record gate a fresh run.
//!
//! Scale convention follows the figure binaries: each campaign has a
//! full-scale and a smoke-scale variant (`--smoke`), with the smoke
//! variant small enough for CI on one core.

use ftc_sim::topology::Topology;

use crate::spec::{Adv, CampaignSpec, CellSpec, CheckAxis, CheckMetric, ExponentCheck, Workload};

/// Seed used by the gate campaign (committed baseline; never change it
/// without regenerating `results/store/`).
pub const GATE_SEED: u64 = 0x1AB;

/// All registry names, for `ftc lab run --help`.
pub fn names() -> &'static [&'static str] {
    &[
        "gate-smoke",
        "le-scaling",
        "agree-scaling",
        "alpha-sweep",
        "engine-bench",
        "scale-bench",
        "soak",
        "topology-matrix",
        "wire-throughput",
    ]
}

/// Resolves a named campaign at the given scale.
pub fn named(name: &str, smoke: bool) -> Option<CampaignSpec> {
    match name {
        "gate-smoke" => Some(gate_smoke()),
        "le-scaling" => Some(le_scaling(smoke)),
        "agree-scaling" => Some(agree_scaling(smoke)),
        "alpha-sweep" => Some(alpha_sweep(smoke)),
        "engine-bench" => Some(engine_bench(smoke)),
        "scale-bench" => Some(scale_bench(smoke)),
        "soak" => Some(soak(smoke)),
        "topology-matrix" => Some(topology_matrix(smoke)),
        "wire-throughput" => Some(wire_throughput(smoke)),
        _ => None,
    }
}

/// The CI gate campaign: a fixed-seed smoke-scale mix of both protocols
/// under the adversaries the figures exercise most. Always smoke-sized —
/// the gate must run in seconds, and its baseline is committed.
pub fn gate_smoke() -> CampaignSpec {
    let mut spec = CampaignSpec::new("gate-smoke");
    for n in [128u32, 256] {
        spec = spec.cell(
            CellSpec::new(
                Workload::Le {
                    adv: Adv::Random(60),
                },
                n,
                0.5,
                GATE_SEED ^ u64::from(n),
                6,
            )
            .label("le"),
        );
        spec = spec.cell(
            CellSpec::new(
                Workload::Agree {
                    zeros: 0.05,
                    adv: Adv::Random(20),
                },
                n,
                0.5,
                GATE_SEED ^ 0x100 ^ u64::from(n),
                6,
            )
            .label("agree"),
        );
    }
    spec.cell(
        CellSpec::new(
            Workload::Le { adv: Adv::Targeted },
            128,
            0.5,
            GATE_SEED ^ 0x200,
            6,
        )
        .label("le-targeted"),
    )
    .cell(CellSpec::new(Workload::LeKutten, 128, 0.5, GATE_SEED ^ 0x300, 4).label("kutten"))
}

fn scaling_sizes(smoke: bool) -> &'static [u32] {
    if smoke {
        &[256, 512, 1024]
    } else {
        &[1024, 2048, 4096, 8192, 16384]
    }
}

/// Leader election message/round scaling in `n` at α = 0.5, with the
/// paper's bound re-verified as fitted-exponent assertions: messages
/// Õ(n^{1-α/2}) (≈ n^0.75 up to log factors) and O(log n) rounds (≈ n^0
/// as a power law). Exported to `BENCH_leader_election.json`.
pub fn le_scaling(smoke: bool) -> CampaignSpec {
    let trials = if smoke { 6 } else { 8 };
    let mut spec = CampaignSpec::new("le-scaling");
    for &n in scaling_sizes(smoke) {
        spec = spec.cell(
            CellSpec::new(
                Workload::Le {
                    adv: Adv::Random(60),
                },
                n,
                0.5,
                0xE2 ^ u64::from(n),
                trials,
            )
            .label("le"),
        );
    }
    // At smoke scale the additive polylog terms still dominate, so the
    // finite-size fit sits lower; the tight bands are the full-scale claim.
    spec.check(ExponentCheck {
        name: "le-msgs-sublinear".into(),
        series: "le".into(),
        metric: CheckMetric::Msgs,
        axis: CheckAxis::N,
        min: if smoke { 0.25 } else { 0.55 },
        max: 1.05,
    })
    .check(ExponentCheck {
        name: "le-rounds-polylog".into(),
        series: "le".into(),
        metric: CheckMetric::Rounds,
        axis: CheckAxis::N,
        min: if smoke { -0.35 } else { -0.15 },
        max: 0.45,
    })
}

/// Agreement scaling in `n` at α = 0.5; exported to
/// `BENCH_agreement.json`.
pub fn agree_scaling(smoke: bool) -> CampaignSpec {
    let trials = if smoke { 6 } else { 8 };
    let mut spec = CampaignSpec::new("agree-scaling");
    for &n in scaling_sizes(smoke) {
        spec = spec.cell(
            CellSpec::new(
                Workload::Agree {
                    zeros: 0.05,
                    adv: Adv::Random(20),
                },
                n,
                0.5,
                0xA9 ^ u64::from(n),
                trials,
            )
            .label("agree"),
        );
    }
    // Smoke-scale bands widened as in `le_scaling`.
    spec.check(ExponentCheck {
        name: "agree-msgs-sublinear".into(),
        series: "agree".into(),
        metric: CheckMetric::Msgs,
        axis: CheckAxis::N,
        min: if smoke { 0.25 } else { 0.55 },
        max: 1.05,
    })
    .check(ExponentCheck {
        name: "agree-rounds-polylog".into(),
        series: "agree".into(),
        metric: CheckMetric::Rounds,
        axis: CheckAxis::N,
        min: if smoke { -0.35 } else { -0.15 },
        max: 0.45,
    })
}

/// Message cost as a function of 1/α at fixed n — the other axis of the
/// Õ(n^{1-α/2}) trade-off.
pub fn alpha_sweep(smoke: bool) -> CampaignSpec {
    let n = if smoke { 1024 } else { 4096 };
    let trials = if smoke { 4 } else { 6 };
    let mut spec = CampaignSpec::new("alpha-sweep");
    for alpha in [1.0, 0.5, 0.25, 0.125] {
        spec = spec.cell(
            CellSpec::new(
                Workload::Le {
                    adv: Adv::Random(60),
                },
                n,
                alpha,
                0xE3 ^ alpha.to_bits(),
                trials,
            )
            .label("le"),
        );
    }
    spec
}

/// The engine hot-path benchmark: broadcast chatter at three sizes under
/// the three schedules that stress distinct delivery paths (fault-free
/// fast path, eager crashes, probabilistic edge failures). Message counts
/// are deterministic (pinned by `lab gate` semantics); the committed
/// `BENCH_engine.json` trajectory carries the throughput history that
/// `ftc lab perf` gates against. Trial counts shrink as `n` grows but
/// are chosen so every cell runs for seconds of wall clock — sub-second
/// cells are jitter-dominated and too noisy for a 20% throughput gate
/// (the criterion benches cover the larger sizes).
pub fn engine_bench(smoke: bool) -> CampaignSpec {
    let sizes: &[(u32, u64)] = if smoke {
        &[(64, 8), (256, 4)]
    } else {
        &[(256, 128), (1024, 12), (2048, 6)]
    };
    let mut spec = CampaignSpec::new("engine-bench");
    for &(n, trials) in sizes {
        spec = spec.cell(
            CellSpec::new(
                Workload::EngineBench {
                    adv: Adv::None,
                    p: 0.0,
                    rounds: 3,
                },
                n,
                0.5,
                GATE_SEED ^ 0x400 ^ u64::from(n),
                trials,
            )
            .label("bcast"),
        );
        spec = spec.cell(
            CellSpec::new(
                Workload::EngineBench {
                    adv: Adv::Eager,
                    p: 0.0,
                    rounds: 3,
                },
                n,
                0.5,
                GATE_SEED ^ 0x500 ^ u64::from(n),
                trials,
            )
            .label("eager"),
        );
        spec = spec.cell(
            CellSpec::new(
                Workload::EngineBench {
                    adv: Adv::None,
                    p: 0.3,
                    rounds: 3,
                },
                n,
                0.5,
                GATE_SEED ^ 0x600 ^ u64::from(n),
                trials,
            )
            .label("edge"),
        );
    }
    spec
}

/// The sparse-engine scale proof: full leader-election trials at sizes
/// the dense data plane could never touch, topping out at n = 1,000,000.
/// Fault-free on purpose — the point is the traffic-proportional round
/// cost (a dense round at n = 10⁶ would be 10¹² edge probes), so the
/// workload is the protocol's own sparse traffic, not an injected storm.
/// Message counts are deterministic; the committed trajectory in
/// `BENCH_engine.json` carries the throughput history that
/// `ftc lab perf --campaign scale-bench` gates against. The smoke scale
/// keeps one calibration size next to the million-node cell so the
/// median-normalised gate has a machine-speed reference.
pub fn scale_bench(smoke: bool) -> CampaignSpec {
    let sizes: &[(u32, u64)] = if smoke {
        &[(65_536, 2), (1_000_000, 1)]
    } else {
        &[(65_536, 4), (262_144, 2), (1_000_000, 2)]
    };
    let mut spec = CampaignSpec::new("scale-bench");
    for &(n, trials) in sizes {
        spec = spec.cell(
            CellSpec::new(
                Workload::Le { adv: Adv::None },
                n,
                0.5,
                GATE_SEED ^ 0x700 ^ u64::from(n),
                trials,
            )
            .label("le"),
        );
    }
    spec
}

/// E18: the `ftc-serve` soak — a long-lived leader service driven through
/// a hundred-plus election heights with leader-kill churn, rejoin, offered
/// load, and the invariant monitor armed. Success per trial means zero
/// invariant violations and zero failed elections; the extras carry TTNL
/// and request-latency percentiles plus availability, so the committed
/// record pins the service's steady-state behaviour, not just one
/// election. Full scale runs n=64 at 120 heights (α=0.75, within the
/// resilience floor `log₂²n/n ≈ 0.56`); smoke scale is a CI-sized n=16
/// service at 30 heights.
pub fn soak(smoke: bool) -> CampaignSpec {
    let cells: &[(u32, f64, u32, u64)] = if smoke {
        &[(16, 0.5, 30, 2)]
    } else {
        &[(16, 0.5, 60, 4), (64, 0.75, 120, 4)]
    };
    let mut spec = CampaignSpec::new("soak");
    for &(n, alpha, heights, trials) in cells {
        spec = spec.cell(
            CellSpec::new(
                Workload::Soak {
                    heights,
                    kill_every: 3,
                    rejoin_after: 4,
                },
                n,
                alpha,
                GATE_SEED ^ 0x800 ^ u64::from(n),
                trials,
            )
            .label("soak"),
        );
    }
    spec
}

/// The topology × adversary matrix: the paper's protocols off the
/// complete graph. Two non-complete topologies (the diameter-two hub
/// graph with `⌈log₂ n⌉` hubs, and a random 8-regular graph) each run
/// leader election under two crash schedules plus agreement, and the
/// diameter-two topology additionally carries the
/// Chatterjee–Pandurangan–Robinson-style hub-relay baseline. The
/// exponent checks pin the fitted message-complexity slope per topology:
/// the sparse graphs bound every node's fan-out by its degree, so the
/// message growth stays near-linear in `n` instead of picking up the
/// complete graph's referee fan-out.
pub fn topology_matrix(smoke: bool) -> CampaignSpec {
    let sizes: &[u32] = if smoke {
        &[128, 256]
    } else {
        &[256, 512, 1024]
    };
    let trials = if smoke { 4 } else { 6 };
    let base = GATE_SEED ^ 0xB00;
    let mut spec = CampaignSpec::new("topology-matrix");
    for &n in sizes {
        let clusters = 32 - (n - 1).leading_zeros(); // ⌈log₂ n⌉ hubs
        let topologies = [
            ("diam2", Topology::DiameterTwo { clusters }),
            ("rr8", Topology::RandomRegular { d: 8 }),
        ];
        for (t, (tname, topo)) in topologies.into_iter().enumerate() {
            let t = t as u64;
            for (a, (aname, adv)) in [("random", Adv::Random(60)), ("eager", Adv::Eager)]
                .into_iter()
                .enumerate()
            {
                spec = spec.cell(
                    CellSpec::new(
                        Workload::Le { adv },
                        n,
                        0.5,
                        base ^ (t << 12) ^ ((a as u64) << 8) ^ u64::from(n),
                        trials,
                    )
                    .label(format!("le/{tname}/{aname}"))
                    .topology(topo.clone()),
                );
            }
            spec = spec.cell(
                CellSpec::new(
                    Workload::Agree {
                        zeros: 0.05,
                        adv: Adv::Random(20),
                    },
                    n,
                    0.5,
                    base ^ (t << 12) ^ 0x400 ^ u64::from(n),
                    trials,
                )
                .label(format!("agree/{tname}/random"))
                .topology(topo.clone()),
            );
        }
        spec = spec.cell(
            CellSpec::new(
                Workload::LeDiamTwo { adv: Adv::None },
                n,
                0.5,
                base ^ 0x4000 ^ u64::from(n),
                trials,
            )
            .label("cpr/diam2")
            .topology(Topology::DiameterTwo { clusters }),
        );
    }
    // Bands measured at full scale (n = 256..1024). On the hub graph the
    // paper's election keeps a sublinear slope (~0.5 measured) — degree
    // caps the referee fan-out. On the degree-8 random-regular graph the
    // protocol structurally fails (0% success, every run exhausts its
    // round budget): that is the CPR "chasm at diameter two" showing up
    // in the matrix, and it makes the message slope meaningless as a
    // growth law (measured ~-0.5). The rr8 band is therefore a blowup
    // tripwire, not a scaling claim: a regression that floods the dense
    // plane would push the slope towards 2 and fail it. The smoke
    // profile is a two-point fit at toy sizes where budget-exhausted
    // runs dominate either series, so its bands only guard the blowup
    // direction — smoke validates plumbing and determinism, not the
    // scaling law.
    let diam2_min = if smoke { -1.4 } else { 0.2 };
    spec.check(ExponentCheck {
        name: "le-diam2-msgs".into(),
        series: "le/diam2/random".into(),
        metric: CheckMetric::Msgs,
        axis: CheckAxis::N,
        min: diam2_min,
        max: 1.4,
    })
    .check(ExponentCheck {
        name: "le-rr8-msgs".into(),
        series: "le/rr8/random".into(),
        metric: CheckMetric::Msgs,
        axis: CheckAxis::N,
        min: -1.0,
        max: 1.2,
    })
    .check(ExponentCheck {
        name: "cpr-msgs-near-linear".into(),
        series: "cpr/diam2".into(),
        metric: CheckMetric::Msgs,
        axis: CheckAxis::N,
        min: 0.9,
        max: 1.45,
    })
}

/// The socket-substrate throughput benchmark: plain LE and agreement at
/// cluster sizes the per-edge TCP transport could never reach, meant to
/// run on the mesh substrate (`--substrate mesh:P`). Message counts are
/// deterministic and bit-identical to the engine; the diagnostic
/// `trials_per_s` together with the recorded `wire_bytes` extra gives
/// real bytes/sec over sockets, and the committed trajectory in
/// `BENCH_engine.json` carries the history that
/// `ftc lab perf --campaign wire-throughput` gates against.
pub fn wire_throughput(smoke: bool) -> CampaignSpec {
    // Agreement heights are ~20x shorter than elections, so the agree
    // cells get proportionally more trials — every cell should run for
    // around a second of wall clock, below which the 20% gate is
    // jitter-dominated (same tuning rule as `engine_bench`).
    let sizes: &[(u32, u64, u64)] = if smoke {
        &[(128, 4, 40), (256, 3, 25)]
    } else {
        &[(256, 8, 120), (1024, 4, 40)]
    };
    let mut spec = CampaignSpec::new("wire-throughput");
    for &(n, le_trials, agree_trials) in sizes {
        spec = spec.cell(
            CellSpec::new(
                Workload::Le {
                    adv: Adv::Random(60),
                },
                n,
                0.5,
                GATE_SEED ^ 0x900 ^ u64::from(n),
                le_trials,
            )
            .label("le"),
        );
        spec = spec.cell(
            CellSpec::new(
                Workload::Agree {
                    zeros: 0.05,
                    adv: Adv::Random(20),
                },
                n,
                0.5,
                GATE_SEED ^ 0xA00 ^ u64::from(n),
                agree_trials,
            )
            .label("agree"),
        );
    }
    spec
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_name_resolves_at_both_scales() {
        for &name in names() {
            for smoke in [false, true] {
                let spec = named(name, smoke).unwrap();
                assert_eq!(spec.name, name);
                assert!(!spec.cells.is_empty());
            }
        }
        assert!(named("nope", true).is_none());
    }

    #[test]
    fn named_specs_hash_stably() {
        // The gate baseline is committed; its spec hash must not drift
        // across builds. This pins it: if you change gate_smoke(), you
        // must regenerate results/store/ and update this hash.
        let a = gate_smoke().hash();
        let b = gate_smoke().hash();
        assert_eq!(a, b);
        assert_ne!(le_scaling(true).hash(), le_scaling(false).hash());
        // The committed complete-graph baseline's spec hash, pinned: the
        // topology field must serialize to *nothing* on complete-graph
        // cells, or every committed record id moves. If this fails you
        // changed the spec schema, not just this campaign.
        assert_eq!(a, "41ededd6dd20afde");
    }

    #[test]
    fn specs_survive_json_round_trip() {
        for &name in names() {
            let spec = named(name, true).unwrap();
            let back = crate::spec::CampaignSpec::from_json(
                &ftc_sim::json::Json::parse(&spec.to_json().render()).unwrap(),
            )
            .unwrap();
            assert_eq!(back.hash(), spec.hash());
        }
    }
}
