//! Node churn for the long-lived service.
//!
//! Between elections the service crashes nodes (the sitting leader plus
//! deterministic bystanders) and lets them rejoin a fixed number of heights
//! later. Because every height runs on a fresh mesh, a "down" node is
//! simply scheduled to crash at round 0 of each election it sits out — the
//! per-height [`FaultPlan`] is the entire churn mechanism, so the engine
//! and the `ftc-net` substrates see byte-identical schedules.

use ftc_sim::prelude::{DeliveryFilter, FaultPlan, NodeId};

/// The churn policy of a service run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChurnPlan {
    /// Crash the sitting leader after every this-many successful heights
    /// (`0` disables churn entirely).
    pub kill_leader_every: u32,
    /// Additional non-leader nodes crashed alongside the leader at each
    /// churn event.
    pub bystanders: u32,
    /// Heights a downed node sits out before rejoining (`0` = never
    /// rejoins; the down-set only grows).
    pub rejoin_after: u32,
}

impl ChurnPlan {
    /// No churn: every node stays up for the whole run.
    pub fn none() -> Self {
        ChurnPlan {
            kill_leader_every: 0,
            bystanders: 0,
            rejoin_after: 0,
        }
    }

    /// Whether this plan ever crashes anybody.
    pub fn is_none(&self) -> bool {
        self.kill_leader_every == 0
    }
}

impl Default for ChurnPlan {
    fn default() -> Self {
        ChurnPlan::none()
    }
}

/// The set of currently-down nodes, with the height each went down at.
#[derive(Clone, Debug, Default)]
pub struct ChurnState {
    down: Vec<(NodeId, u32)>,
}

impl ChurnState {
    /// An empty down-set.
    pub fn new() -> Self {
        ChurnState::default()
    }

    /// Releases every node whose outage has lasted `rejoin_after` heights
    /// by the start of `height`, returning the rejoiners. A plan with
    /// `rejoin_after == 0` never releases.
    pub fn release(&mut self, plan: &ChurnPlan, height: u32) -> Vec<NodeId> {
        if plan.rejoin_after == 0 {
            return Vec::new();
        }
        let mut rejoined = Vec::new();
        self.down.retain(|&(node, went_down)| {
            if height - went_down >= plan.rejoin_after {
                rejoined.push(node);
                false
            } else {
                true
            }
        });
        rejoined
    }

    /// Whether `node` is currently down.
    pub fn is_down(&self, node: NodeId) -> bool {
        self.down.iter().any(|&(d, _)| d == node)
    }

    /// How many nodes are currently down.
    pub fn down_count(&self) -> usize {
        self.down.len()
    }

    /// Takes `node` down starting at `height`. No-op if already down.
    pub fn crash(&mut self, node: NodeId, height: u32) {
        if !self.is_down(node) {
            self.down.push((node, height));
        }
    }

    /// The fault plan a single height runs under: every down node crashes
    /// at round 0 with all its messages dropped, i.e. it simply does not
    /// participate in this election.
    pub fn fault_plan(&self) -> FaultPlan {
        let mut plan = FaultPlan::new();
        for &(node, _) in &self.down {
            plan = plan.crash(node, 0, DeliveryFilter::DropAll);
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn down_nodes_rejoin_after_the_configured_outage() {
        let plan = ChurnPlan {
            kill_leader_every: 1,
            bystanders: 0,
            rejoin_after: 3,
        };
        let mut state = ChurnState::new();
        state.crash(NodeId(4), 2);
        state.crash(NodeId(9), 3);
        assert!(state.is_down(NodeId(4)));
        assert_eq!(state.fault_plan().entries().len(), 2);

        assert!(state.release(&plan, 4).is_empty());
        assert_eq!(state.release(&plan, 5), vec![NodeId(4)]);
        assert_eq!(state.release(&plan, 6), vec![NodeId(9)]);
        assert_eq!(state.down_count(), 0);
        assert!(state.fault_plan().is_empty());
    }

    #[test]
    fn zero_rejoin_means_permanent_crashes() {
        let plan = ChurnPlan {
            kill_leader_every: 1,
            bystanders: 0,
            rejoin_after: 0,
        };
        let mut state = ChurnState::new();
        state.crash(NodeId(1), 0);
        assert!(state.release(&plan, 100).is_empty());
        assert!(state.is_down(NodeId(1)));
    }

    #[test]
    fn crashing_twice_is_idempotent() {
        let mut state = ChurnState::new();
        state.crash(NodeId(7), 1);
        state.crash(NodeId(7), 5);
        assert_eq!(state.down_count(), 1);
        // The original outage height is kept.
        let plan = ChurnPlan {
            kill_leader_every: 1,
            bystanders: 0,
            rejoin_after: 2,
        };
        assert_eq!(state.release(&plan, 3), vec![NodeId(7)]);
    }
}
