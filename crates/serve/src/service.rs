//! The long-lived leader service.
//!
//! A service run is a sequence of *heights*: monotonically numbered
//! election instances, each executed as one complete, unmodified
//! [`LeNode`] protocol run on a fresh mesh. Height `h` runs under the
//! derived seed [`height_seed`]`(seed, h)`, so the whole multi-height
//! history — topologies, ranks, referee samples, churn victims, load
//! arrivals — is a deterministic function of one `(ServeConfig)` value,
//! on every substrate: the in-process engine, the channel mesh, or
//! localhost TCP (which replay each height bit-identically via
//! `run_over_*_at_height`).
//!
//! Between elections the service serves client load for a fixed window,
//! then (per the [`ChurnPlan`]) crashes the sitting leader and a few
//! bystanders, forcing a re-election at the next height. Downed nodes
//! rejoin after a configurable outage. The [`Monitor`] checks leader
//! uniqueness and request linearity throughout and mints replayable
//! artifacts for any protocol-level violation.

use ftc_core::prelude::{LeNode, LeOutcome, Params};
use ftc_hunt::prelude::{Artifact, Substrate};
use ftc_mesh::runtime::run_over_mesh_at_height;
use ftc_net::prelude::{run_over_channel_at_height, run_over_tcp_at_height, RECV_TIMEOUT};
use ftc_sim::engine::{run, SimConfig};
use ftc_sim::perm::stream_seed;
use ftc_sim::prelude::{FaultPlan, NodeId, ScriptedCrash, ServiceMetrics};

use crate::churn::{ChurnPlan, ChurnState};
use crate::loadgen::{LoadGen, LoadProfile, LoadReport};
use crate::monitor::{Monitor, Violation};

/// Salt space for per-height election seeds (low bits carry the height).
const SALT_HEIGHT_BASE: u64 = 0x5E2E_E000_0000_0000;
/// Salt for the load generator's arrival stream.
const SALT_LOAD: u64 = 0x10AD;
/// Salt space for churn victim selection.
const SALT_CHURN_BASE: u64 = 0xC42A_0000_0000_0000;

/// The election seed of height `h` under service seed `seed`.
pub fn height_seed(seed: u64, h: u32) -> u64 {
    stream_seed(seed, SALT_HEIGHT_BASE | u64::from(h))
}

/// A full service-run specification.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Network size.
    pub n: u32,
    /// Resilience parameter of the election protocol.
    pub alpha: f64,
    /// Master seed; everything derives from it.
    pub seed: u64,
    /// Heights (election instances) to run.
    pub heights: u32,
    /// Serving rounds between a successful election and the next height.
    pub window_rounds: u32,
    /// Which substrate executes the elections.
    pub substrate: Substrate,
    /// The churn policy.
    pub churn: ChurnPlan,
    /// Client load, if any. Without it the service still tracks
    /// availability and time-to-new-leader, just not request latency.
    pub load: Option<LoadProfile>,
    /// Extra fault-plan entries merged into specific heights — the
    /// fault-injection hook the split-brain seeder and tests use.
    pub inject: Vec<(u32, FaultPlan)>,
}

impl ServeConfig {
    /// A default service: 8 heights on the engine, no churn, no load.
    pub fn new(n: u32, alpha: f64) -> Self {
        ServeConfig {
            n,
            alpha,
            seed: 1,
            heights: 8,
            window_rounds: 12,
            substrate: Substrate::Engine,
            churn: ChurnPlan::none(),
            load: None,
            inject: Vec::new(),
        }
    }

    /// Sets the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the number of heights.
    pub fn heights(mut self, heights: u32) -> Self {
        self.heights = heights;
        self
    }

    /// Sets the serving window length.
    pub fn window_rounds(mut self, rounds: u32) -> Self {
        self.window_rounds = rounds;
        self
    }

    /// Sets the substrate.
    pub fn substrate(mut self, substrate: Substrate) -> Self {
        self.substrate = substrate;
        self
    }

    /// Sets the churn policy.
    pub fn churn(mut self, churn: ChurnPlan) -> Self {
        self.churn = churn;
        self
    }

    /// Enables the load generator.
    pub fn load(mut self, profile: LoadProfile) -> Self {
        self.load = Some(profile);
        self
    }

    /// Merges `plan` into the fault plan of height `h`.
    pub fn inject_at(mut self, h: u32, plan: FaultPlan) -> Self {
        self.inject.push((h, plan));
        self
    }
}

/// What one height produced.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HeightOutcome {
    /// The height number.
    pub height: u32,
    /// The election seed this height ran under.
    pub seed: u64,
    /// The elected leader, if the election succeeded.
    pub leader: Option<NodeId>,
    /// The leader's rank.
    pub rank: Option<u64>,
    /// Whether the election met the protocol's success predicate.
    pub success: bool,
    /// Election rounds executed.
    pub rounds: u32,
    /// Protocol messages sent during the election.
    pub msgs_sent: u64,
    /// Protocol bits sent during the election.
    pub bits_sent: u64,
    /// Transport bytes (0 on the engine substrate).
    pub wire_bytes: u64,
    /// Size of the down-set this height ran with.
    pub down: u32,
}

/// The result of a whole service run.
#[derive(Debug)]
pub struct ServiceReport {
    /// Per-height outcomes, in height order.
    pub heights: Vec<HeightOutcome>,
    /// Cross-height service metrics (TTNL histogram, availability, ...).
    pub metrics: ServiceMetrics,
    /// The load generator's report, when load was configured.
    pub load: Option<LoadReport>,
    /// Every invariant violation the monitor observed.
    pub violations: Vec<Violation>,
    /// Replayable artifacts for the protocol-level violations.
    pub artifacts: Vec<Artifact>,
    /// Churn crash events that actually fired.
    pub crashes: u32,
}

impl ServiceReport {
    /// The safety verdict: no invariant violation observed.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Total protocol messages across all heights.
    pub fn total_msgs(&self) -> u64 {
        self.heights.iter().map(|h| h.msgs_sent).sum()
    }

    /// Total protocol bits across all heights.
    pub fn total_bits(&self) -> u64 {
        self.heights.iter().map(|h| h.bits_sent).sum()
    }

    /// Total service rounds (election + serving).
    pub fn total_rounds(&self) -> u64 {
        self.metrics.total_rounds
    }
}

/// Runs the service to completion.
pub fn run_service(cfg: &ServeConfig) -> Result<ServiceReport, String> {
    let params = Params::new(cfg.n, cfg.alpha).map_err(|e| format!("serve: bad params: {e}"))?;
    let mut churn = ChurnState::new();
    let mut monitor = Monitor::new();
    let mut metrics = ServiceMetrics::new();
    let mut load = cfg
        .load
        .clone()
        .map(|p| LoadGen::new(p, stream_seed(cfg.seed, SALT_LOAD)));
    let mut heights = Vec::with_capacity(cfg.heights as usize);
    let mut seqno: u64 = 0;
    let mut since_kill = 0u32;
    let mut crashes = 0u32;

    for h in 0..cfg.heights {
        churn.release(&cfg.churn, h);
        let mut plan = churn.fault_plan();
        for (ih, extra) in &cfg.inject {
            if *ih == h {
                for (node, round, filter) in extra.entries() {
                    // A node already down this height stays down; the
                    // engine rejects double crashes.
                    if plan.entries().iter().any(|(d, _, _)| d == node) {
                        continue;
                    }
                    plan = plan.crash(*node, *round, filter.clone());
                }
            }
        }
        let hseed = height_seed(cfg.seed, h);
        let hcfg = SimConfig::new(cfg.n)
            .seed(hseed)
            .max_rounds(params.le_round_budget());
        let factory = |_| LeNode::new(params.clone());
        let mut adv = ScriptedCrash::new(plan.clone());
        let (r, wire_bytes) = match cfg.substrate {
            Substrate::Engine => (run(&hcfg, factory, &mut adv), 0),
            Substrate::Channel(workers) => {
                let nr =
                    run_over_channel_at_height(&hcfg, workers, factory, &mut adv, RECV_TIMEOUT, h);
                let wire = nr.net.wire_bytes;
                (nr.run, wire)
            }
            Substrate::Tcp(workers) => {
                let nr = run_over_tcp_at_height(&hcfg, workers, factory, &mut adv, RECV_TIMEOUT, h)
                    .map_err(|e| format!("serve: height {h}: tcp: {e}"))?;
                let wire = nr.net.wire_bytes;
                (nr.run, wire)
            }
            Substrate::Mesh(procs) => {
                let nr = run_over_mesh_at_height(&hcfg, procs, factory, &mut adv, RECV_TIMEOUT, h)
                    .map_err(|e| format!("serve: height {h}: mesh: {e}"))?;
                let wire = nr.net.wire_bytes;
                (nr.run, wire)
            }
        };
        let outcome = LeOutcome::evaluate(&r);
        monitor.election(h, &params, &hcfg, &plan, &outcome);
        let success = outcome.success && outcome.leader_node.is_some();
        let rank = outcome.agreed_leader.map(|rk| rk.0);
        metrics.record_election(if success { rank } else { None }, r.metrics.rounds);
        if let Some(lg) = &mut load {
            lg.election_window(r.metrics.rounds);
        }
        heights.push(HeightOutcome {
            height: h,
            seed: hseed,
            leader: if success { outcome.leader_node } else { None },
            rank: if success { rank } else { None },
            success,
            rounds: r.metrics.rounds,
            msgs_sent: r.metrics.msgs_sent,
            bits_sent: r.metrics.bits_sent,
            wire_bytes,
            down: churn.down_count() as u32,
        });
        if !success {
            // No leader: the next height re-elects immediately; the
            // election rounds already counted as unavailable time.
            continue;
        }
        let leader = outcome.leader_node.expect("success implies a leader");
        if let Some(lg) = &mut load {
            lg.serving_window(cfg.window_rounds, |id, _lat| {
                monitor.request_completed(h, id, seqno, Some(leader));
                seqno += 1;
            });
        }
        metrics.record_serving_window(u64::from(cfg.window_rounds));

        // Churn: after enough successful heights, take the leader (and a
        // few bystanders) down — capped so the down-set never exceeds the
        // adversary's fault budget.
        since_kill += 1;
        if !cfg.churn.is_none() && since_kill >= cfg.churn.kill_leader_every {
            since_kill = 0;
            if churn.down_count() < params.max_faults() {
                churn.crash(leader, h + 1);
                crashes += 1;
            }
            for i in 0..cfg.churn.bystanders {
                if churn.down_count() >= params.max_faults() {
                    break;
                }
                let salt = SALT_CHURN_BASE | (u64::from(h) << 16) | u64::from(i);
                let pick = NodeId((stream_seed(cfg.seed, salt) % u64::from(cfg.n)) as u32);
                if pick != leader && !churn.is_down(pick) {
                    churn.crash(pick, h + 1);
                    crashes += 1;
                }
            }
        }
    }

    let (violations, artifacts) = monitor.into_findings();
    Ok(ServiceReport {
        heights,
        metrics,
        load: load.map(|lg| lg.report()),
        violations,
        artifacts,
        crashes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seeder::split_brain_plan;
    use ftc_hunt::prelude::Substrate;

    fn churny(n: u32, seed: u64, heights: u32) -> ServeConfig {
        ServeConfig::new(n, 0.5)
            .seed(seed)
            .heights(heights)
            .churn(ChurnPlan {
                kill_leader_every: 2,
                bystanders: 1,
                rejoin_after: 3,
            })
            .load(LoadProfile::default())
    }

    #[test]
    fn a_churny_service_stays_safe_and_keeps_electing() {
        let report = run_service(&churny(16, 11, 20)).unwrap();
        assert!(report.ok(), "violations: {:?}", report.violations);
        assert_eq!(report.metrics.heights, 20);
        assert_eq!(report.heights.len(), 20);
        assert!(report.crashes > 0, "churn never fired");
        assert!(
            report.metrics.leader_changes >= 2,
            "leader never changed despite churn: {:?}",
            report.metrics
        );
        // TTNL histogram has one sample per successful election.
        assert_eq!(
            report.metrics.ttnl_rounds.count(),
            u64::from(report.metrics.heights - report.metrics.failed_elections)
        );
        let avail = report.metrics.availability().unwrap();
        assert!(avail > 0.0 && avail < 1.0, "availability {avail}");
        let load = report.load.unwrap();
        assert!(load.completed > 0);
        assert!(load.latency.quantile(0.99) >= load.latency.quantile(0.5));
    }

    #[test]
    fn service_runs_are_deterministic() {
        let a = run_service(&churny(16, 7, 12)).unwrap();
        let b = run_service(&churny(16, 7, 12)).unwrap();
        assert_eq!(a.heights, b.heights);
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.load, b.load);
        assert_eq!(a.crashes, b.crashes);
    }

    #[test]
    fn engine_and_channel_substrates_agree_per_height() {
        let base = churny(16, 5, 6);
        let engine = run_service(&base).unwrap();
        let channel = run_service(&base.clone().substrate(Substrate::Channel(3))).unwrap();
        // Bit-equivalence, lifted to the whole service history: every
        // height elects the same leader with the same traffic.
        for (e, c) in engine.heights.iter().zip(&channel.heights) {
            assert_eq!(e.leader, c.leader, "height {}", e.height);
            assert_eq!(e.rank, c.rank, "height {}", e.height);
            assert_eq!(e.msgs_sent, c.msgs_sent, "height {}", e.height);
            assert_eq!(e.rounds, c.rounds, "height {}", e.height);
            assert!(c.wire_bytes > 0, "height {} paid no wire bytes", e.height);
        }
        assert_eq!(engine.metrics, channel.metrics);
    }

    #[test]
    fn tcp_substrate_smoke() {
        let cfg = ServeConfig::new(8, 0.5)
            .seed(3)
            .heights(3)
            .substrate(Substrate::Tcp(2));
        let engine = run_service(&ServeConfig {
            substrate: Substrate::Engine,
            ..cfg.clone()
        })
        .unwrap();
        let tcp = run_service(&cfg).unwrap();
        assert_eq!(
            engine.heights.iter().map(|h| h.leader).collect::<Vec<_>>(),
            tcp.heights.iter().map(|h| h.leader).collect::<Vec<_>>()
        );
        assert!(tcp.heights.iter().all(|h| h.wire_bytes > 0));
    }

    #[test]
    fn monitor_catches_a_seeded_split_brain_and_mints_a_replayable_artifact() {
        let params = Params::new(256, 0.5).unwrap();
        // Find a service seed whose height-0 election admits the
        // construction, exactly as the CLI's --inject-split-brain does.
        let (seed, plan) = (1..32)
            .find_map(|seed| {
                let hcfg = SimConfig::new(256)
                    .seed(height_seed(seed, 0))
                    .max_rounds(params.le_round_budget());
                split_brain_plan(&params, &hcfg).ok().map(|p| (seed, p))
            })
            .expect("no service seed in 1..32 admits a split brain at n=256");
        let cfg = ServeConfig::new(256, 0.5)
            .seed(seed)
            .heights(3)
            .load(LoadProfile::default())
            .inject_at(0, plan);
        let report = run_service(&cfg).unwrap();
        assert!(!report.ok(), "monitor missed the seeded split brain");
        assert!(matches!(
            report.violations[0],
            Violation::TwoLeaders { height: 0, .. }
        ));
        // The artifact replays: same fingerprint, same verdict, on both
        // the engine and a real channel mesh.
        assert_eq!(report.artifacts.len(), 1);
        let art = &report.artifacts[0];
        assert_eq!(art.height, Some(0));
        assert!(art.hit);
        let replay = art.replay(Substrate::Engine).unwrap();
        assert!(replay.ok(), "engine replay diverged: {replay:?}");
        let wire = art.replay(Substrate::Channel(2)).unwrap();
        assert!(wire.ok(), "channel replay diverged: {wire:?}");
        // And it survives the JSON round trip `ftc replay` reads.
        let parsed = Artifact::parse(&art.render()).unwrap();
        assert_eq!(parsed.height, Some(0));
        assert_eq!(parsed.render(), art.render());
        // Later heights recovered: fresh elections, unique leaders.
        assert!(report.heights[1].success || report.heights[2].success);
    }

    #[test]
    fn failed_elections_are_counted_not_fatal() {
        // Crash enough nodes up front that some election fails: inject a
        // big round-0 crash set at every height with a tiny n.
        let params = Params::new(16, 0.5).unwrap();
        let f = params.max_faults();
        let mut cfg = ServeConfig::new(16, 0.5).seed(2).heights(6);
        for h in 0..6 {
            let mut plan = FaultPlan::new();
            // Crash f distinct nodes, offset per height.
            for i in 0..f as u32 {
                plan = plan.crash(
                    NodeId((h * 3 + i) % 16),
                    0,
                    ftc_sim::adversary::DeliveryFilter::DropAll,
                );
            }
            cfg = cfg.inject_at(h, plan);
        }
        let report = run_service(&cfg).unwrap();
        assert_eq!(report.metrics.heights, 6);
        // Whatever happened, accounting is consistent and safety held.
        assert!(report.ok());
        assert_eq!(
            report.metrics.ttnl_rounds.count() + u64::from(report.metrics.failed_elections),
            6
        );
    }
}
