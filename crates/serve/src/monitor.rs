//! The runtime invariant monitor.
//!
//! The monitor watches a service run from the outside and checks the two
//! safety properties a leader service owes its clients:
//!
//! 1. **Leader uniqueness per height** — at most one node believes it won
//!    each election. A violation here is a *protocol* counterexample, so
//!    the monitor packages it as a replayable [`Artifact`] (objective
//!    `two-leaders-at-height`, tagged with the height it fired at): the
//!    exact per-height `SimConfig` and `FaultPlan` plus the engine
//!    fingerprint, which `ftc replay` re-executes and diffs byte-for-byte.
//! 2. **Request linearity** — the replicated log the leader builds is a
//!    single totally-ordered sequence: every request completes at most
//!    once, log sequence numbers strictly increase, and nothing completes
//!    while no leader is in place.
//!
//! The monitor never influences the run it observes; it only records.

use std::collections::HashSet;

use ftc_core::prelude::{LeOutcome, Params};
use ftc_hunt::prelude::{observe, Artifact, Bounds, Objective, ProtoKind, Substrate};
use ftc_sim::engine::SimConfig;
use ftc_sim::prelude::{FaultPlan, NodeId};

/// One observed invariant violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// Two or more alive nodes claimed leadership at the same height.
    TwoLeaders {
        /// The height the split brain happened at.
        height: u32,
        /// Every alive node that claimed the election.
        leaders: Vec<NodeId>,
    },
    /// A request completed while no leader was installed.
    ServedWithoutLeader {
        /// The height the completion was attributed to.
        height: u32,
        /// The offending request id.
        request: u64,
    },
    /// A request completed twice.
    DuplicateServe {
        /// The height of the second completion.
        height: u32,
        /// The offending request id.
        request: u64,
    },
    /// A log sequence number failed to strictly increase.
    NonMonotoneLog {
        /// The height the regression happened at.
        height: u32,
        /// The offending request id.
        request: u64,
        /// The sequence number it was assigned.
        seqno: u64,
        /// The highest sequence number seen before it.
        last: u64,
    },
}

impl Violation {
    /// A one-line human description.
    pub fn describe(&self) -> String {
        match self {
            Violation::TwoLeaders { height, leaders } => {
                let ids: Vec<String> = leaders.iter().map(|l| l.0.to_string()).collect();
                format!(
                    "height {height}: {} alive nodes claimed leadership (nodes {})",
                    leaders.len(),
                    ids.join(", ")
                )
            }
            Violation::ServedWithoutLeader { height, request } => {
                format!("height {height}: request {request} completed with no leader installed")
            }
            Violation::DuplicateServe { height, request } => {
                format!("height {height}: request {request} completed twice")
            }
            Violation::NonMonotoneLog {
                height,
                request,
                seqno,
                last,
            } => format!("height {height}: request {request} got log seqno {seqno} after {last}"),
        }
    }
}

/// The monitor: violations observed so far plus the replayable evidence
/// for the protocol-level ones.
#[derive(Default)]
pub struct Monitor {
    violations: Vec<Violation>,
    artifacts: Vec<Artifact>,
    served: HashSet<u64>,
    last_seqno: Option<u64>,
}

impl Monitor {
    /// A fresh monitor.
    pub fn new() -> Self {
        Monitor::default()
    }

    /// Checks leader uniqueness for one completed election. On a split
    /// brain this re-observes the exact `(config, plan)` on the engine to
    /// mint the canonical fingerprint and records a replayable artifact.
    pub fn election(
        &mut self,
        height: u32,
        params: &Params,
        cfg: &SimConfig,
        plan: &FaultPlan,
        outcome: &LeOutcome,
    ) {
        if outcome.elected_alive.len() < 2 {
            return;
        }
        self.violations.push(Violation::TwoLeaders {
            height,
            leaders: outcome.elected_alive.clone(),
        });
        if let Ok(obs) = observe(ProtoKind::Le, params, cfg, 0.0, plan, Substrate::Engine) {
            let objective = Objective::TwoLeadersAtHeight;
            let bounds = Bounds::for_proto(ProtoKind::Le, params);
            self.artifacts.push(Artifact {
                version: ftc_hunt::prelude::ARTIFACT_VERSION,
                proto: ProtoKind::Le,
                objective,
                alpha: params.alpha(),
                zeros: 0.0,
                height: Some(height),
                config: cfg.clone(),
                schedule: plan.clone(),
                wire: None,
                score: objective.score(&obs),
                hit: objective.hit(&obs, &bounds),
                fingerprint: obs.fingerprint,
            });
        }
    }

    /// Checks request linearity for one completion: `seqno` is the log
    /// position the service assigned, `leader` whoever it believes served
    /// the request.
    pub fn request_completed(
        &mut self,
        height: u32,
        request: u64,
        seqno: u64,
        leader: Option<NodeId>,
    ) {
        if leader.is_none() {
            self.violations
                .push(Violation::ServedWithoutLeader { height, request });
        }
        if !self.served.insert(request) {
            self.violations
                .push(Violation::DuplicateServe { height, request });
        }
        if let Some(last) = self.last_seqno {
            if seqno <= last {
                self.violations.push(Violation::NonMonotoneLog {
                    height,
                    request,
                    seqno,
                    last,
                });
            }
        }
        self.last_seqno = Some(self.last_seqno.map_or(seqno, |l| l.max(seqno)));
    }

    /// No violations observed.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Everything observed so far.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// The replayable counterexamples minted so far.
    pub fn artifacts(&self) -> &[Artifact] {
        &self.artifacts
    }

    /// Consumes the monitor into its findings.
    pub fn into_findings(self) -> (Vec<Violation>, Vec<Artifact>) {
        (self.violations, self.artifacts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linearity_checks_fire_on_bad_logs() {
        let mut m = Monitor::new();
        m.request_completed(0, 1, 0, Some(NodeId(3)));
        m.request_completed(0, 2, 1, Some(NodeId(3)));
        assert!(m.ok());
        // Duplicate id.
        m.request_completed(1, 2, 2, Some(NodeId(3)));
        // Seqno regression.
        m.request_completed(1, 3, 1, Some(NodeId(3)));
        // No leader.
        m.request_completed(1, 4, 3, None);
        assert_eq!(m.violations().len(), 3);
        assert!(matches!(
            m.violations()[0],
            Violation::DuplicateServe { request: 2, .. }
        ));
        assert!(matches!(
            m.violations()[1],
            Violation::NonMonotoneLog {
                seqno: 1,
                last: 2,
                ..
            }
        ));
        assert!(matches!(
            m.violations()[2],
            Violation::ServedWithoutLeader { request: 4, .. }
        ));
        for v in m.violations() {
            assert!(!v.describe().is_empty());
        }
    }

    #[test]
    fn clean_elections_record_nothing() {
        let params = Params::new(16, 0.5).unwrap();
        let cfg = SimConfig::new(16)
            .seed(5)
            .max_rounds(params.le_round_budget());
        let r = ftc_sim::engine::run(
            &cfg,
            |_| ftc_core::prelude::LeNode::new(params.clone()),
            &mut ftc_sim::prelude::NoFaults,
        );
        let outcome = LeOutcome::evaluate(&r);
        let mut m = Monitor::new();
        m.election(0, &params, &cfg, &FaultPlan::new(), &outcome);
        assert!(m.ok());
        assert!(m.artifacts().is_empty());
    }
}
