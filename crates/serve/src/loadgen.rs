//! A deterministic closed-loop load generator.
//!
//! The generator models clients that route requests to the current leader.
//! Time advances in service rounds on a single global clock: during an
//! election window requests arrive but nothing completes (there is no
//! leader to serve them — they queue and retry), and during a serving
//! window the leader completes queued requests in FIFO order up to a fixed
//! per-round capacity. Arrivals are a pure function of `(seed, round)`, so
//! the entire request trace — ids, latencies, retry counts — is
//! reproducible from the service seed alone. Election outages surface as
//! latency tail mass: a request issued just before a leader crash waits
//! out the whole re-election before it can complete.

use std::collections::VecDeque;

use ftc_sim::perm::stream_seed;
use ftc_sim::prelude::LogHistogram;

/// The offered load and the leader's service rate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LoadProfile {
    /// Base request arrivals per service round (each round adds a
    /// seed-deterministic jitter of 0 or 1 on top).
    pub arrivals_per_round: u32,
    /// Requests the leader completes per serving round.
    pub leader_capacity: u32,
}

impl Default for LoadProfile {
    fn default() -> Self {
        LoadProfile {
            arrivals_per_round: 2,
            leader_capacity: 4,
        }
    }
}

/// What happened to the offered load over a whole service run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LoadReport {
    /// Requests issued.
    pub issued: u64,
    /// Requests completed.
    pub completed: u64,
    /// Completed requests that had to wait through at least one election
    /// window before being served.
    pub retried: u64,
    /// Requests still queued when the run ended.
    pub backlog: u64,
    /// Request latency in service rounds (issue round to completion round,
    /// inclusive — a request served the round it arrives scores 1).
    pub latency: LogHistogram,
}

struct Request {
    id: u64,
    issued_at: u64,
    saw_outage: bool,
}

/// The generator itself: a FIFO queue of outstanding requests plus the
/// global round clock.
pub struct LoadGen {
    profile: LoadProfile,
    seed: u64,
    now: u64,
    next_id: u64,
    queue: VecDeque<Request>,
    issued: u64,
    completed: u64,
    retried: u64,
    latency: LogHistogram,
}

impl LoadGen {
    /// A fresh generator. `seed` should be derived from the service seed so
    /// the arrival trace is part of the run's determinism contract.
    pub fn new(profile: LoadProfile, seed: u64) -> Self {
        LoadGen {
            profile,
            seed,
            now: 0,
            next_id: 0,
            queue: VecDeque::new(),
            issued: 0,
            completed: 0,
            retried: 0,
            latency: LogHistogram::new(),
        }
    }

    /// The current service round.
    pub fn now(&self) -> u64 {
        self.now
    }

    fn arrivals(&mut self) {
        let jitter = (stream_seed(self.seed, self.now) & 1) as u32;
        for _ in 0..self.profile.arrivals_per_round + jitter {
            self.queue.push_back(Request {
                id: self.next_id,
                issued_at: self.now,
                saw_outage: false,
            });
            self.next_id += 1;
            self.issued += 1;
        }
    }

    /// Advances the clock through an election: `rounds` rounds of arrivals
    /// with no completions. Everything queued at the end has witnessed an
    /// outage and will count as retried when it eventually completes.
    pub fn election_window(&mut self, rounds: u32) {
        for _ in 0..rounds {
            self.arrivals();
            self.now += 1;
        }
        for req in &mut self.queue {
            req.saw_outage = true;
        }
    }

    /// Advances the clock through `rounds` serving rounds: arrivals keep
    /// coming and the leader drains the queue in FIFO order at
    /// `leader_capacity` per round. `complete` is called once per finished
    /// request with `(request id, latency in rounds)` — the service uses it
    /// to append to the replicated log and feed the invariant monitor.
    pub fn serving_window(&mut self, rounds: u32, mut complete: impl FnMut(u64, u64)) {
        for _ in 0..rounds {
            self.arrivals();
            for _ in 0..self.profile.leader_capacity {
                let Some(req) = self.queue.pop_front() else {
                    break;
                };
                let lat = self.now - req.issued_at + 1;
                if req.saw_outage {
                    self.retried += 1;
                }
                self.completed += 1;
                self.latency.record(lat);
                complete(req.id, lat);
            }
            self.now += 1;
        }
    }

    /// The run-level report.
    pub fn report(&self) -> LoadReport {
        LoadReport {
            issued: self.issued,
            completed: self.completed,
            retried: self.retried,
            backlog: self.queue.len() as u64,
            latency: self.latency.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrivals_are_deterministic_in_the_seed() {
        let run = |seed| {
            let mut lg = LoadGen::new(LoadProfile::default(), seed);
            lg.election_window(5);
            let mut ids = Vec::new();
            lg.serving_window(10, |id, lat| ids.push((id, lat)));
            (ids, lg.report())
        };
        let (ids_a, rep_a) = run(42);
        let (ids_b, rep_b) = run(42);
        assert_eq!(ids_a, ids_b);
        assert_eq!(rep_a, rep_b);
        let (ids_c, _) = run(43);
        assert_ne!(ids_a, ids_c);
    }

    #[test]
    fn completions_are_fifo_and_capacity_bounded() {
        let profile = LoadProfile {
            arrivals_per_round: 3,
            leader_capacity: 2,
        };
        let mut lg = LoadGen::new(profile, 7);
        let mut served = Vec::new();
        lg.serving_window(4, |id, _| served.push(id));
        // FIFO: ids come out in issue order.
        let sorted = {
            let mut s = served.clone();
            s.sort_unstable();
            s
        };
        assert_eq!(served, sorted);
        // Capacity 2 over 4 rounds, but round 0 has nothing queued before
        // its own arrivals, which are served same-round.
        assert_eq!(served.len() as u64, lg.report().completed);
        assert!(lg.report().completed <= 8);
    }

    #[test]
    fn requests_spanning_an_election_count_as_retried() {
        let profile = LoadProfile {
            arrivals_per_round: 1,
            leader_capacity: 8,
        };
        let mut lg = LoadGen::new(profile, 3);
        lg.election_window(6);
        let queued = lg.report().issued;
        assert!(queued >= 6);
        lg.serving_window(4, |_, _| {});
        let rep = lg.report();
        // Everything issued during the outage completed and was a retry.
        assert_eq!(rep.retried, queued);
        // Outage survivors waited at least the outage tail.
        assert!(rep.latency.max().unwrap() >= 6);
    }

    #[test]
    fn overload_builds_backlog() {
        let profile = LoadProfile {
            arrivals_per_round: 5,
            leader_capacity: 1,
        };
        let mut lg = LoadGen::new(profile, 9);
        lg.serving_window(10, |_, _| {});
        let rep = lg.report();
        assert!(rep.backlog > 0);
        assert_eq!(rep.issued, rep.completed + rep.backlog);
    }
}
