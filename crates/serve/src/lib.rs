//! # `ftc-serve` — a long-lived leader service on the ftc substrates
//!
//! The protocols of Kumar & Molla are one-shot: a single election, a
//! single agreement. Real systems elect *repeatedly* — a leader serves
//! until it dies, the survivors elect again, clients retry through the
//! outage. This crate closes that gap without touching the protocols: a
//! service run is a sequence of monotonically numbered **heights**, each
//! a complete, unmodified [`LeNode`](ftc_core::prelude::LeNode) election
//! on a fresh mesh, glued together by
//!
//! * a **churn plan** ([`churn::ChurnPlan`]) that crashes the sitting
//!   leader (plus bystanders) and lets downed nodes rejoin later,
//! * a deterministic **load generator** ([`loadgen::LoadGen`]) whose
//!   request latencies make election outages *measurable* (a request
//!   issued before a leader crash waits out the whole re-election),
//! * a runtime **invariant monitor** ([`monitor::Monitor`]) checking
//!   leader uniqueness per height and request linearity, and minting
//!   replayable `ftc-hunt` artifacts for protocol-level violations,
//! * a **split-brain seeder** ([`seeder::split_brain_plan`]) that
//!   manufactures real two-leader schedules so the monitor's evidence
//!   pipeline can be demonstrated end-to-end.
//!
//! Everything — election outcomes, churn victims, arrivals, latencies —
//! is a deterministic function of the [`service::ServeConfig`], on every
//! substrate: the same service history replays on the in-process engine,
//! the channel mesh, and localhost TCP (heights ride the height-tagged
//! frames of `ftc-net`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod churn;
pub mod loadgen;
pub mod monitor;
pub mod seeder;
pub mod service;

/// Convenient glob import for service users.
pub mod prelude {
    pub use crate::churn::{ChurnPlan, ChurnState};
    pub use crate::loadgen::{LoadGen, LoadProfile, LoadReport};
    pub use crate::monitor::{Monitor, Violation};
    pub use crate::seeder::split_brain_plan;
    pub use crate::service::{height_seed, run_service, HeightOutcome, ServeConfig, ServiceReport};
}
