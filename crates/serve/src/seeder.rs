//! Constructs crash schedules that actually split the election.
//!
//! The LE protocol elects whoever hears its own rank echoed back as the
//! maximum by its sampled referees. To manufacture two leaders the seeder
//! probes a fault-free run of the target `(config, seed)`, reads each
//! candidate's sampled referee set (resolved from KT0 ports to node ids
//! via the run's topology), and looks for a candidate pair whose referee
//! sets can be made *disjoint views*: crash every other candidate and
//! every shared referee at round 0, and each survivor's remaining referees
//! hear exactly one proposal — its own — so both claim. The construction
//! is verified empirically (the plan is only returned if the engine really
//! produces two leaders under it), which keeps the seeder honest against
//! protocol details like multi-phase sampling.
//!
//! This is a *fault-injection* tool: it exists so the invariant monitor
//! and its replayable artifacts can be demonstrated end-to-end, not
//! because the protocol is wrong. The seeder cheats in a way the paper's
//! adversary cannot: it *peeks at the run's random choices* (who
//! self-selected as candidate, who they sampled) before committing its
//! crash set, whereas Theorem 4.1's whp guarantee is over exactly that
//! randomness against an adversary that fixes the faulty set without
//! seeing it. A seeded split brain therefore demonstrates the monitor's
//! evidence pipeline without contradicting the theorem.

use std::collections::BTreeSet;

use ftc_core::prelude::{LeNode, Params};
use ftc_hunt::prelude::{observe, ProtoKind, Substrate};
use ftc_sim::engine::{run, SimConfig};
use ftc_sim::prelude::{DeliveryFilter, FaultPlan, NoFaults, NodeId};
use ftc_sim::round::network_ports;

/// Candidate pairs the seeder will verify on the engine before giving
/// up — each verification is one full election run.
const MAX_VERIFY_ATTEMPTS: usize = 24;

/// Builds a round-0 crash schedule under which the election at
/// `(params, cfg)` produces two alive leaders, verified on the engine.
///
/// Fails if no candidate pair admits the construction for this seed's
/// topology and samples — try another seed.
pub fn split_brain_plan(params: &Params, cfg: &SimConfig) -> Result<FaultPlan, String> {
    let probe = run(cfg, |_| LeNode::new(params.clone()), &mut NoFaults);
    let ports = network_ports(cfg);
    // Every candidate with its referee set resolved to node ids.
    let cands: Vec<(NodeId, BTreeSet<NodeId>)> = probe
        .states
        .iter()
        .enumerate()
        .filter_map(|(i, s)| {
            s.referee_ports().map(|refs| {
                let node = NodeId(i as u32);
                let set = refs.iter().map(|&p| ports[i].peer(p)).collect();
                (node, set)
            })
        })
        .collect();
    if cands.len() < 2 {
        return Err(format!(
            "seed {} produced {} candidates; need at least 2",
            cfg.seed,
            cands.len()
        ));
    }
    let mut attempts = 0;
    for (ai, (a, refs_a)) in cands.iter().enumerate() {
        for (b, refs_b) in cands.iter().skip(ai + 1) {
            if attempts >= MAX_VERIFY_ATTEMPTS {
                return Err(format!(
                    "no split-brain schedule within {MAX_VERIFY_ATTEMPTS} attempts \
                     for n={} seed {}; try another seed",
                    cfg.n, cfg.seed
                ));
            }
            // Neither candidate may referee the other: a crashed referee
            // can't echo, but an alive cross-referee would merge the views.
            if refs_a.contains(b) || refs_b.contains(a) {
                continue;
            }
            let mut victims: BTreeSet<NodeId> = refs_a.intersection(refs_b).copied().collect();
            victims.extend(cands.iter().map(|(c, _)| *c).filter(|c| c != a && c != b));
            victims.remove(a);
            victims.remove(b);
            // Each survivor still needs at least one alive referee to
            // echo its proposal back.
            if refs_a.iter().all(|r| victims.contains(r))
                || refs_b.iter().all(|r| victims.contains(r))
            {
                continue;
            }
            let mut plan = FaultPlan::new();
            for v in &victims {
                plan = plan.crash(*v, 0, DeliveryFilter::DropAll);
            }
            attempts += 1;
            let obs = observe(ProtoKind::Le, params, cfg, 0.0, &plan, Substrate::Engine)?;
            if obs.distinct >= 2 {
                return Ok(plan);
            }
        }
    }
    Err(format!(
        "no split-brain schedule found for n={} seed {}; try another seed",
        cfg.n, cfg.seed
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftc_core::prelude::LeOutcome;
    use ftc_sim::prelude::ScriptedCrash;

    /// A `(params, config)` pair for which the construction is known to
    /// work — the other tests in this crate reuse it.
    fn known_good() -> (Params, SimConfig, FaultPlan) {
        let params = Params::new(256, 0.5).unwrap();
        for seed in 1..32 {
            let cfg = SimConfig::new(256)
                .seed(seed)
                .max_rounds(params.le_round_budget());
            if let Ok(plan) = split_brain_plan(&params, &cfg) {
                return (params, cfg, plan);
            }
        }
        panic!("no seed in 1..32 admits a split-brain schedule at n=256");
    }

    #[test]
    fn seeded_plan_really_elects_two_leaders() {
        let (params, cfg, plan) = known_good();
        assert!(!plan.is_empty());
        let r = run(
            &cfg,
            |_| LeNode::new(params.clone()),
            &mut ScriptedCrash::new(plan.clone()),
        );
        let outcome = LeOutcome::evaluate(&r);
        assert!(
            outcome.elected_alive.len() >= 2,
            "expected a split brain, got {:?}",
            outcome.elected_alive
        );
    }
}
