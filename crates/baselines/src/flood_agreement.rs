//! FloodSet: the folklore `(f+1)`-round crash-fault consensus.
//!
//! The classical baseline every message-complexity paper implicitly
//! compares against (cf. the deterministic rows of Table I): every node
//! broadcasts its value; whenever a node's value decreases it re-broadcasts;
//! after `f+1` rounds everyone decides its current value. Correctness is
//! the standard argument — in at least one of the `f+1` rounds no node
//! crashes, and after such a clean round all alive nodes hold the same
//! minimum.
//!
//! Costs: `O(n²)` messages for binary inputs (each node broadcasts at most
//! twice), `f+1` rounds, works for **any** `f ≤ n−1`, explicit output,
//! KT0. Message complexity is what the paper's protocols beat.

use ftc_sim::prelude::*;

/// One node of the FloodSet binary consensus.
#[derive(Clone, Debug)]
pub struct FloodAgreeNode {
    /// Crash budget `f`; the protocol decides after `f+1` rounds.
    f: u32,
    /// Current value (`false` = 0 wins over `true` = 1).
    value: bool,
    /// Decided output, set at round `f+1`.
    decision: Option<bool>,
}

impl FloodAgreeNode {
    /// Creates a node with the given input bit, tolerating `f` crashes.
    pub fn new(f: u32, input_one: bool) -> Self {
        FloodAgreeNode {
            f,
            value: input_one,
            decision: None,
        }
    }

    /// The node's decision, once made (`None` before round `f+1`).
    pub fn decision(&self) -> Option<bool> {
        self.decision
    }

    /// The node's current (pre-decision) value.
    pub fn value(&self) -> bool {
        self.value
    }
}

impl Protocol for FloodAgreeNode {
    type Msg = bool;

    fn on_start(&mut self, ctx: &mut Ctx<'_, bool>) {
        ctx.broadcast(self.value);
    }

    fn on_round(&mut self, ctx: &mut Ctx<'_, bool>, inbox: &[Incoming<bool>]) {
        if self.decision.is_some() {
            return;
        }
        let heard_zero = inbox.iter().any(|m| !m.msg);
        if heard_zero && self.value {
            self.value = false;
            ctx.broadcast(false);
        }
        if ctx.round() > self.f {
            self.decision = Some(self.value);
        }
    }

    fn is_terminated(&self) -> bool {
        self.decision.is_some()
    }
}

/// Outcome of a FloodSet run: explicit agreement among alive nodes.
#[derive(Clone, Debug)]
pub struct FloodOutcome {
    /// The value all alive nodes decided, when consistent.
    pub value: Option<bool>,
    /// Alive nodes that never decided.
    pub undecided: usize,
    /// Whether all alive nodes decided the same value.
    pub success: bool,
}

impl FloodOutcome {
    /// Scores a finished run.
    pub fn evaluate(result: &RunResult<FloodAgreeNode>) -> Self {
        let decisions: Vec<Option<bool>> = result
            .surviving_states()
            .map(|(_, s)| s.decision())
            .collect();
        let undecided = decisions.iter().filter(|d| d.is_none()).count();
        let distinct: std::collections::BTreeSet<bool> =
            decisions.iter().flatten().copied().collect();
        FloodOutcome {
            value: (distinct.len() == 1).then(|| *distinct.first().unwrap()),
            undecided,
            success: undecided == 0 && distinct.len() == 1,
        }
    }
}

/// Round budget for a FloodSet run tolerating `f` crashes.
pub fn flood_round_budget(f: u32) -> u32 {
    f + 4
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_flood(
        n: u32,
        f: u32,
        seed: u64,
        inputs: impl Fn(NodeId) -> bool,
        adv: &mut dyn Adversary<bool>,
    ) -> RunResult<FloodAgreeNode> {
        let cfg = SimConfig::new(n)
            .seed(seed)
            .max_rounds(flood_round_budget(f));
        run(&cfg, |id| FloodAgreeNode::new(f, inputs(id)), adv)
    }

    #[test]
    fn fault_free_agrees_on_minimum() {
        let r = run_flood(64, 0, 1, |id| id.0 != 7, &mut NoFaults);
        let o = FloodOutcome::evaluate(&r);
        assert!(o.success);
        assert_eq!(o.value, Some(false));
    }

    #[test]
    fn all_ones_stays_one() {
        let r = run_flood(64, 8, 2, |_| true, &mut NoFaults);
        let o = FloodOutcome::evaluate(&r);
        assert!(o.success);
        assert_eq!(o.value, Some(true));
    }

    #[test]
    fn agrees_under_adversarial_partial_crashes() {
        for seed in 0..20 {
            let f = 24;
            let mut adv = RandomCrash::new(f as usize, f);
            let r = run_flood(64, f, seed, |id| id.0 != 0, &mut adv);
            let o = FloodOutcome::evaluate(&r);
            assert!(o.success, "seed {seed}: {o:?}");
        }
    }

    #[test]
    fn message_complexity_is_quadratic_class() {
        let n = 256u32;
        let r = run_flood(n, 8, 3, |id| id.0 % 2 == 0, &mut NoFaults);
        let msgs = r.metrics.msgs_sent;
        // At least one full broadcast, at most three (initial + one change
        // + slack).
        let full = u64::from(n) * u64::from(n - 1);
        assert!(msgs >= full, "msgs {msgs}");
        assert!(msgs <= 3 * full, "msgs {msgs}");
    }

    #[test]
    fn takes_f_plus_one_rounds() {
        let f = 16;
        let r = run_flood(64, f, 4, |_| true, &mut NoFaults);
        assert!(r.metrics.rounds >= f + 1);
    }
}
