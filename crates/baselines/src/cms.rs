//! A Chor–Merritt–Shmoys-style constant-expected-time consensus.
//!
//! Chor, Merritt & Shmoys (JACM 1989, `[25]` in the paper) gave simple
//! randomized consensus protocols running in *constant expected time*
//! against realistic (crash) failure models with `f < n/2` — and the
//! matching `Ω(log n/log log n)` round lower bound the paper cites for
//! its own round-optimality claim. As with the other baselines we
//! implement a simplified variant with the same headline behaviour:
//!
//! In each phase every alive node draws a fresh random rank and
//! broadcasts `(rank, value)`; everyone adopts the value of the highest
//! rank heard (a random "phase leader"). If the phase leader survives its
//! broadcast, the whole network agrees from that phase on — which happens
//! with constant probability per phase — so the network *stabilises* in
//! `O(1)` expected phases. After a fixed `K` phases everyone decides.
//!
//! Headline: `O(1)` expected stabilisation, `Θ(K·n²)` messages, `f < n/2`
//! whp-correctness, KT0, explicit output.

use ftc_sim::payload::Payload;
use ftc_sim::prelude::*;
use rand::prelude::*;

/// Number of phases (each one round): failure probability decays
/// geometrically per phase.
pub const CMS_PHASES: u32 = 8;

/// Phase message: a fresh random rank and the sender's current value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CmsMsg {
    /// Fresh random rank for this phase.
    pub rank: u64,
    /// Sender's current value.
    pub value: bool,
}

impl Payload for CmsMsg {
    fn size_bits(&self) -> u32 {
        49
    }
}

/// One node of the CMS-style consensus.
#[derive(Clone, Debug)]
pub struct CmsNode {
    input: bool,
    value: bool,
    decision: Option<bool>,
    /// First phase after which this node's value never changed again
    /// (measured stabilisation time).
    stable_since: u32,
}

impl CmsNode {
    /// Creates a node with the given input bit.
    pub fn new(input_one: bool) -> Self {
        CmsNode {
            input: input_one,
            value: input_one,
            decision: None,
            stable_since: 0,
        }
    }

    /// The node's input.
    pub fn input(&self) -> bool {
        self.input
    }

    /// The node's decision (explicit output after [`CMS_PHASES`] phases).
    pub fn decision(&self) -> Option<bool> {
        self.decision
    }

    /// The phase since which this node's value was stable.
    pub fn stable_since(&self) -> u32 {
        self.stable_since
    }

    fn broadcast_phase(&self, ctx: &mut Ctx<'_, CmsMsg>) {
        let rank: u64 = ctx.rng().random();
        ctx.broadcast(CmsMsg {
            rank,
            value: self.value,
        });
    }
}

impl Protocol for CmsNode {
    type Msg = CmsMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, CmsMsg>) {
        self.broadcast_phase(ctx);
    }

    fn on_round(&mut self, ctx: &mut Ctx<'_, CmsMsg>, inbox: &[Incoming<CmsMsg>]) {
        if self.decision.is_some() {
            return;
        }
        // Adopt the phase leader's value (own implicit rank loses ties —
        // ranks are 64-bit, collisions are negligible).
        if let Some(leader) = inbox.iter().max_by_key(|m| m.msg.rank) {
            if leader.msg.value != self.value {
                self.value = leader.msg.value;
                self.stable_since = ctx.round();
            }
        }
        if ctx.round() >= CMS_PHASES {
            self.decision = Some(self.value);
        } else {
            self.broadcast_phase(ctx);
        }
    }

    fn is_terminated(&self) -> bool {
        self.decision.is_some()
    }
}

/// Round budget for a CMS run.
pub fn cms_round_budget() -> u32 {
    CMS_PHASES + 3
}

/// Outcome of a CMS-style consensus run.
#[derive(Clone, Debug)]
pub struct CmsOutcome {
    /// The common decision, when consistent.
    pub value: Option<bool>,
    /// Alive nodes without a decision.
    pub undecided: usize,
    /// Largest `stable_since` among alive nodes — the phase at which the
    /// whole network had stabilised (the paper's expected-constant).
    pub stabilised_at: u32,
    /// Whether all alive nodes decided the same, valid value.
    pub success: bool,
}

impl CmsOutcome {
    /// Scores a finished run.
    pub fn evaluate(result: &RunResult<CmsNode>) -> Self {
        let decisions: Vec<Option<bool>> = result
            .surviving_states()
            .map(|(_, s)| s.decision())
            .collect();
        let undecided = decisions.iter().filter(|d| d.is_none()).count();
        let distinct: std::collections::BTreeSet<bool> =
            decisions.iter().flatten().copied().collect();
        let value = (distinct.len() == 1).then(|| *distinct.first().unwrap());
        let valid = value.is_some_and(|v| result.all_states().any(|(_, s)| s.input() == v));
        let stabilised_at = result
            .surviving_states()
            .map(|(_, s)| s.stable_since())
            .max()
            .unwrap_or(0);
        CmsOutcome {
            value,
            undecided,
            stabilised_at,
            success: undecided == 0 && distinct.len() == 1 && valid,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_cms(
        n: u32,
        seed: u64,
        inputs: impl Fn(NodeId) -> bool,
        adv: &mut dyn Adversary<CmsMsg>,
    ) -> RunResult<CmsNode> {
        let cfg = SimConfig::new(n).seed(seed).max_rounds(cms_round_budget());
        run(&cfg, |id| CmsNode::new(inputs(id)), adv)
    }

    #[test]
    fn fault_free_agrees_quickly() {
        for seed in 0..10 {
            let r = run_cms(128, seed, |id| id.0 % 2 == 0, &mut NoFaults);
            let o = CmsOutcome::evaluate(&r);
            assert!(o.success, "seed {seed}: {o:?}");
            // Fault-free: the very first phase leader settles everything.
            assert!(o.stabilised_at <= 2, "stabilised at {}", o.stabilised_at);
        }
    }

    #[test]
    fn survives_minority_crashes_whp() {
        let mut ok = 0;
        for seed in 0..20 {
            let mut adv = RandomCrash::new(60, 6);
            let r = run_cms(128, seed, |id| id.0 % 3 == 0, &mut adv);
            if CmsOutcome::evaluate(&r).success {
                ok += 1;
            }
        }
        assert!(ok >= 19, "{ok}/20");
    }

    #[test]
    fn unanimous_inputs_preserved() {
        let r = run_cms(64, 3, |_| true, &mut NoFaults);
        let o = CmsOutcome::evaluate(&r);
        assert_eq!(o.value, Some(true));
        assert!(o.success);
    }

    #[test]
    fn message_cost_is_quadratic_per_phase() {
        let n = 128u32;
        let r = run_cms(n, 4, |id| id.0 == 0, &mut NoFaults);
        let per_phase = u64::from(n) * u64::from(n - 1);
        assert!(r.metrics.msgs_sent >= u64::from(CMS_PHASES) * per_phase);
        assert!(r.metrics.msgs_sent <= u64::from(CMS_PHASES + 2) * per_phase);
    }

    #[test]
    fn expected_stabilisation_is_constant() {
        // Average stabilisation phase over seeds stays a small constant
        // even with crashes.
        let mut total = 0u32;
        let trials = 20u64;
        for seed in 0..trials {
            let mut adv = RandomCrash::new(40, 6);
            let r = run_cms(128, seed, |id| id.0 % 2 == 0, &mut adv);
            total += CmsOutcome::evaluate(&r).stabilised_at;
        }
        let mean = f64::from(total) / trials as f64;
        assert!(mean < 4.0, "mean stabilisation phase {mean}");
    }
}
