//! The fault-free sublinear implicit agreement of Augustine, Molla &
//! Pandurangan (PODC 2018, `[23]` in the paper).
//!
//! Reference `[23]` introduced the *implicit agreement* problem and gave
//! sublinear message bounds in the **fault-free** complete network —
//! the result Corollary 3 of the paper matches in the *crash-fault*
//! setting (up to polylog factors). Like the Kutten et al. leader
//! election, the structure is one-shot: `Θ(log n)` self-selected
//! candidates each consult `Θ(√(n·log n))` random referees; a referee
//! replies to each consulting candidate with the minimum input bit it
//! has been shown; candidates decide the minimum they hear back. Since
//! every pair of candidates shares a referee whp, all candidates see the
//! committee-global minimum and agree. `O(√n·log^{3/2}n)` messages,
//! `O(1)` rounds, zero fault tolerance — one crashed referee reply can
//! already split the committee, which is exactly the gap the paper
//! closes.

use ftc_sim::payload::Payload;
use ftc_sim::prelude::*;
use rand::prelude::*;

/// Messages of the fault-free implicit agreement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AugustineMsg {
    /// Candidate → referee: my input bit.
    Show(bool),
    /// Referee → candidate: the minimum bit shown to me.
    MinSeen(bool),
}

impl Payload for AugustineMsg {
    fn size_bits(&self) -> u32 {
        2
    }
}

/// One node of the fault-free implicit agreement.
#[derive(Clone, Debug)]
pub struct AugustineNode {
    input: bool,
    candidate: bool,
    value: bool,
    decision: Option<bool>,
    /// Referee role: minimum bit shown so far.
    min_seen: Option<bool>,
}

impl AugustineNode {
    /// Creates a node with the given input bit.
    pub fn new(input_one: bool) -> Self {
        AugustineNode {
            input: input_one,
            candidate: false,
            value: input_one,
            decision: None,
            min_seen: None,
        }
    }

    /// The node's input.
    pub fn input(&self) -> bool {
        self.input
    }

    /// Whether this node became a candidate.
    pub fn is_candidate(&self) -> bool {
        self.candidate
    }

    /// The node's decision (`None` = ⊥, the implicit-agreement default).
    pub fn decision(&self) -> Option<bool> {
        self.decision
    }
}

impl Protocol for AugustineNode {
    type Msg = AugustineMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, AugustineMsg>) {
        let n = ctx.n();
        let nf = f64::from(n);
        let cand_prob = (8.0 * nf.ln() / nf).min(1.0);
        if !ctx.rng().random_bool(cand_prob) {
            return;
        }
        self.candidate = true;
        let referees = ((2.0 * (nf * nf.ln()).sqrt()).ceil() as usize).min(n as usize - 1);
        let input = self.input;
        for p in ctx.sample_ports(referees) {
            ctx.send(p, AugustineMsg::Show(input));
        }
    }

    fn on_round(&mut self, ctx: &mut Ctx<'_, AugustineMsg>, inbox: &[Incoming<AugustineMsg>]) {
        let mut shows: Vec<(ftc_sim::ids::Port, bool)> = Vec::new();
        for inc in inbox {
            match inc.msg {
                AugustineMsg::Show(b) => shows.push((inc.port, b)),
                AugustineMsg::MinSeen(b) => {
                    if !b {
                        self.value = false;
                    }
                }
            }
        }
        if !shows.is_empty() {
            let round_min = shows.iter().all(|&(_, b)| b);
            let prev = self.min_seen.unwrap_or(true);
            self.min_seen = Some(prev && round_min);
            let reply = self.min_seen.expect("just set");
            for (p, _) in shows {
                ctx.send(p, AugustineMsg::MinSeen(reply));
            }
        }
        if self.candidate && self.decision.is_none() && ctx.round() >= 2 {
            self.decision = Some(self.value);
        }
    }

    fn is_terminated(&self) -> bool {
        !self.candidate || self.decision.is_some()
    }
}

/// Round budget (the protocol is `O(1)`).
pub fn augustine_round_budget() -> u32 {
    5
}

/// Outcome of a fault-free implicit agreement run.
#[derive(Clone, Debug)]
pub struct AugustineOutcome {
    /// Distinct decisions among deciders.
    pub decisions: Vec<bool>,
    /// The agreed value, when consistent.
    pub agreed_value: Option<bool>,
    /// Implicit-agreement success (non-empty + consistent + valid).
    pub success: bool,
}

impl AugustineOutcome {
    /// Scores a finished run.
    pub fn evaluate(result: &RunResult<AugustineNode>) -> Self {
        let decided: std::collections::BTreeSet<bool> = result
            .surviving_states()
            .filter_map(|(_, s)| s.decision())
            .collect();
        let decisions: Vec<bool> = decided.iter().copied().collect();
        let agreed_value = (decisions.len() == 1).then(|| decisions[0]);
        let valid = agreed_value.is_some_and(|v| result.all_states().any(|(_, s)| s.input() == v));
        AugustineOutcome {
            success: decisions.len() == 1 && valid,
            decisions,
            agreed_value,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_aug(
        n: u32,
        seed: u64,
        inputs: impl Fn(NodeId) -> bool,
        adv: &mut dyn Adversary<AugustineMsg>,
    ) -> RunResult<AugustineNode> {
        let cfg = SimConfig::new(n)
            .seed(seed)
            .max_rounds(augustine_round_budget());
        run(&cfg, |id| AugustineNode::new(inputs(id)), adv)
    }

    #[test]
    fn fault_free_agrees_whp() {
        let mut ok = 0;
        for seed in 0..20 {
            let r = run_aug(1024, seed, |id| id.0 % 2 == 0, &mut NoFaults);
            if AugustineOutcome::evaluate(&r).success {
                ok += 1;
            }
        }
        assert!(ok >= 19, "{ok}/20");
    }

    #[test]
    fn committee_minimum_wins() {
        for seed in 0..10 {
            let r = run_aug(1024, seed, |id| id.0 % 2 == 0, &mut NoFaults);
            let o = AugustineOutcome::evaluate(&r);
            if !o.success {
                continue;
            }
            let min_cand_input = r
                .all_states()
                .filter(|(_, s)| s.is_candidate())
                .map(|(_, s)| s.input())
                .min();
            assert_eq!(o.agreed_value, min_cand_input, "seed {seed}");
        }
    }

    #[test]
    fn messages_are_sublinear() {
        let n = 4096u32;
        let cfg = SimConfig::new(n)
            .seed(1)
            .max_rounds(augustine_round_budget());
        let r = run(&cfg, |id| AugustineNode::new(id.0 % 3 == 0), &mut NoFaults);
        let bound = f64::from(n).sqrt() * f64::from(n).ln().powf(1.5);
        assert!(
            (r.metrics.msgs_sent as f64) < 60.0 * bound,
            "messages {} vs bound {bound}",
            r.metrics.msgs_sent
        );
    }

    #[test]
    fn crashes_can_split_the_committee() {
        // Zero fault tolerance: crash the single 0-showing candidate
        // mid-registration and the committee may split or decide 1 while
        // a decided 0 exists elsewhere — count any definition violation
        // across seeds. (This motivates the paper's protocol.)
        let mut violations = 0;
        for seed in 0..40 {
            // Find a candidate with input 0 in a probe run.
            let probe = run_aug(512, seed, |id| id.0 >= 40, &mut NoFaults);
            let zero_cand = probe
                .all_states()
                .find(|(_, s)| s.is_candidate() && !s.input())
                .map(|(id, _)| id);
            let Some(target) = zero_cand else { continue };
            let plan =
                FaultPlan::new().crash(target, 0, ftc_sim::adversary::DeliveryFilter::KeepFirst(3));
            let mut adv = ScriptedCrash::new(plan);
            let r = run_aug(512, seed, |id| id.0 >= 40, &mut adv);
            let o = AugustineOutcome::evaluate(&r);
            if !o.success || o.agreed_value == Some(true) {
                // Split, or the surviving committee missed the 0 that a
                // (now dead) decider may have decided — fragile either way.
                violations += 1;
            }
        }
        assert!(violations > 0, "expected fragility under crashes");
    }
}
