//! Hub-relay leader election for diameter-two networks.
//!
//! Chatterjee, Pandurangan & Robinson (ICDCN 2020) showed that
//! sublinear-message leader election extends beyond complete graphs to
//! any diameter-two network. This module implements the message-bounded
//! stand-in the topology matrix measures: on the hub topology
//! ([`ftc_sim::topology::Topology::DiameterTwo`]) every node forwards its
//! rank to all of its neighbours, hubs aggregate and re-broadcast the
//! running maximum, and after two relay rounds every node has seen the
//! global maximum — `O(n·h + h·n)` messages for `h` hubs, against the
//! `Θ(n²)` a flooding election pays on the complete graph.
//!
//! The protocol never asks for the graph: it broadcasts over whatever
//! ports the topology wired, so it also runs unmodified on the complete
//! graph (where every node acts as a hub and the cost degrades to the
//! flooding baseline — that contrast is the point of the matrix row).
//!
//! **Crash-fragile by design**: a crashed hub silently partitions its
//! spokes' view, which is exactly the kind of gap the paper's
//! crash-tolerant machinery exists to close.

use ftc_core::rank::Rank;
use ftc_sim::payload::Payload;
use ftc_sim::prelude::*;

/// Messages of the hub-relay election.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DiamTwoMsg {
    /// Round 0: my drawn rank.
    Rank(u64),
    /// Round 1: the largest rank I have seen (hub relay).
    Max(u64),
}

impl Payload for DiamTwoMsg {
    fn size_bits(&self) -> u32 {
        50
    }
}

/// One node of the hub-relay election.
#[derive(Clone, Debug)]
pub struct DiamTwoLeNode {
    rank: u64,
    max_seen: u64,
    phase: u32,
    elected: Option<bool>,
}

impl DiamTwoLeNode {
    /// Creates a node.
    pub fn new() -> Self {
        DiamTwoLeNode {
            rank: 0,
            max_seen: 0,
            phase: 0,
            elected: None,
        }
    }

    /// Final verdict: `Some(true)` = ELECTED.
    pub fn elected(&self) -> Option<bool> {
        self.elected
    }
}

impl Default for DiamTwoLeNode {
    fn default() -> Self {
        Self::new()
    }
}

impl Protocol for DiamTwoLeNode {
    type Msg = DiamTwoMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, DiamTwoMsg>) {
        let n = ctx.n();
        self.rank = Rank::draw(ctx.rng(), n).0;
        self.max_seen = self.rank;
        ctx.broadcast(DiamTwoMsg::Rank(self.rank));
    }

    fn on_round(&mut self, ctx: &mut Ctx<'_, DiamTwoMsg>, inbox: &[Incoming<DiamTwoMsg>]) {
        for inc in inbox {
            let v = match inc.msg {
                DiamTwoMsg::Rank(r) | DiamTwoMsg::Max(r) => r,
            };
            self.max_seen = self.max_seen.max(v);
        }
        self.phase += 1;
        match self.phase {
            // Relay the running maximum; on the hub topology this is the
            // hop that carries spoke ranks across the hubs.
            1 => ctx.broadcast(DiamTwoMsg::Max(self.max_seen)),
            // Diameter two: every surviving node has now seen the global
            // maximum through some common hub.
            2 => self.elected = Some(self.max_seen == self.rank),
            _ => {}
        }
    }

    fn is_terminated(&self) -> bool {
        self.elected.is_some()
    }
}

/// Round budget: two relay rounds plus slack.
pub fn diam_two_round_budget() -> u32 {
    4
}

/// Outcome of a hub-relay election run.
#[derive(Clone, Debug)]
pub struct DiamTwoOutcome {
    /// Number of surviving nodes that output ELECTED.
    pub elected: usize,
    /// Implicit-LE success: exactly one elected survivor.
    pub success: bool,
}

impl DiamTwoOutcome {
    /// Scores a finished run.
    pub fn evaluate(result: &RunResult<DiamTwoLeNode>) -> Self {
        let elected = result
            .surviving_states()
            .filter(|(_, s)| s.elected() == Some(true))
            .count();
        DiamTwoOutcome {
            elected,
            success: elected == 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftc_sim::topology::Topology;

    fn hub_cfg(n: u32, clusters: u32, seed: u64) -> SimConfig {
        SimConfig::new(n)
            .seed(seed)
            .max_rounds(diam_two_round_budget())
            .topology(Topology::DiameterTwo { clusters })
    }

    #[test]
    fn fault_free_unique_leader_on_the_hub_topology() {
        for seed in 0..20 {
            let cfg = hub_cfg(512, 9, seed);
            let r = run(&cfg, |_| DiamTwoLeNode::new(), &mut NoFaults);
            let o = DiamTwoOutcome::evaluate(&r);
            assert_eq!(o.elected, 1, "seed {seed}: {} elected", o.elected);
        }
    }

    #[test]
    fn messages_scale_with_hub_count_not_n_squared() {
        let (n, h) = (1024u32, 10u32);
        let cfg = hub_cfg(n, h, 3);
        let r = run(&cfg, |_| DiamTwoLeNode::new(), &mut NoFaults);
        // Two broadcast rounds: spokes pay 2h each, hubs pay 2(n-1) each.
        let exact = u64::from(n - h) * 2 * u64::from(h) + u64::from(h) * 2 * u64::from(n - 1);
        assert_eq!(r.metrics.msgs_sent, exact);
        assert!(r.metrics.msgs_sent < u64::from(n) * u64::from(n) / 10);
    }

    #[test]
    fn also_runs_on_the_complete_graph() {
        let cfg = SimConfig::new(128)
            .seed(5)
            .max_rounds(diam_two_round_budget());
        let r = run(&cfg, |_| DiamTwoLeNode::new(), &mut NoFaults);
        assert!(DiamTwoOutcome::evaluate(&r).success);
        // Every node is its own hub: flooding cost.
        assert_eq!(r.metrics.msgs_sent, 128 * 127 * 2);
    }

    #[test]
    fn mid_protocol_crashes_can_break_the_election() {
        // Crash-fragility motivates the paper's machinery: when the
        // maximum-rank node dies after broadcasting, every survivor sees
        // a maximum belonging to nobody and the election elects no one.
        let mut failures = 0;
        for seed in 0..30 {
            let cfg = hub_cfg(64, 4, seed);
            let mut adv = RandomCrash::new(16, 2);
            let r = run(&cfg, |_| DiamTwoLeNode::new(), &mut adv);
            if !DiamTwoOutcome::evaluate(&r).success {
                failures += 1;
            }
        }
        assert!(failures > 0, "expected at least one crash-induced failure");
    }
}
