//! Deterministic broadcast leader election: the `O(n²)` baseline.
//!
//! Every node draws a rank and floods it; whenever a node learns a smaller
//! rank it re-floods; after `f+1` rounds each node knows the minimum rank
//! among nodes that survived long enough, and the owner of that rank
//! outputs `ELECTED`. This is the FloodSet structure applied to leader
//! election — explicit, deterministic given the ranks, `O(n²)` messages,
//! `f+1` rounds, any `f`.
//!
//! Against this, Theorem 4.1's `Õ(√n/α^{5/2})` is the headline improvement
//! (at the price of randomization and an implicit output).

use ftc_core::rank::Rank;
use ftc_sim::prelude::*;

/// One node of the broadcast (flooding) leader election.
#[derive(Clone, Debug)]
pub struct BroadcastLeNode {
    f: u32,
    rank: Option<Rank>,
    min_seen: Option<Rank>,
    elected: Option<bool>,
}

impl BroadcastLeNode {
    /// Creates a node tolerating `f` crashes.
    pub fn new(f: u32) -> Self {
        BroadcastLeNode {
            f,
            rank: None,
            min_seen: None,
            elected: None,
        }
    }

    /// Whether the node has decided, and what.
    pub fn elected(&self) -> Option<bool> {
        self.elected
    }

    /// The node's own rank.
    pub fn rank(&self) -> Option<Rank> {
        self.rank
    }

    /// The minimum rank this node has seen.
    pub fn min_seen(&self) -> Option<Rank> {
        self.min_seen
    }
}

impl Protocol for BroadcastLeNode {
    type Msg = u64;

    fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
        let n = ctx.n();
        let rank = Rank::draw(ctx.rng(), n);
        self.rank = Some(rank);
        self.min_seen = Some(rank);
        ctx.broadcast(rank.0);
    }

    fn on_round(&mut self, ctx: &mut Ctx<'_, u64>, inbox: &[Incoming<u64>]) {
        if self.elected.is_some() {
            return;
        }
        let incoming_min = inbox.iter().map(|m| Rank(m.msg)).min();
        if let (Some(new), Some(cur)) = (incoming_min, self.min_seen) {
            if new < cur {
                self.min_seen = Some(new);
                ctx.broadcast(new.0);
            }
        }
        if ctx.round() > self.f {
            self.elected = Some(self.min_seen == self.rank);
        }
    }

    fn is_terminated(&self) -> bool {
        self.elected.is_some()
    }
}

/// Outcome of a broadcast leader election.
#[derive(Clone, Debug)]
pub struct BroadcastLeOutcome {
    /// Alive nodes that output `ELECTED`.
    pub elected_alive: usize,
    /// Whether all alive nodes agree on the minimum rank.
    pub agreed_min: bool,
    /// Success: exactly one alive elected node (or the unique minimum
    /// holder crashed post-election) and agreement on the minimum.
    pub success: bool,
}

impl BroadcastLeOutcome {
    /// Scores a finished run.
    pub fn evaluate(result: &RunResult<BroadcastLeNode>) -> Self {
        let elected_alive = result
            .surviving_states()
            .filter(|(_, s)| s.elected() == Some(true))
            .count();
        let mins: std::collections::BTreeSet<Option<Rank>> = result
            .surviving_states()
            .map(|(_, s)| s.min_seen())
            .collect();
        let agreed_min = mins.len() == 1;
        BroadcastLeOutcome {
            elected_alive,
            agreed_min,
            success: agreed_min && elected_alive <= 1,
        }
    }
}

/// Round budget for a broadcast LE run tolerating `f` crashes.
pub fn broadcast_le_round_budget(f: u32) -> u32 {
    f + 4
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_unique_leader() {
        let cfg = SimConfig::new(64)
            .seed(1)
            .max_rounds(broadcast_le_round_budget(0));
        let r = run(&cfg, |_| BroadcastLeNode::new(0), &mut NoFaults);
        let o = BroadcastLeOutcome::evaluate(&r);
        assert!(o.success);
        assert_eq!(o.elected_alive, 1);
    }

    #[test]
    fn survives_random_crashes() {
        for seed in 0..10 {
            let f = 24u32;
            let cfg = SimConfig::new(64)
                .seed(seed)
                .max_rounds(broadcast_le_round_budget(f));
            let mut adv = RandomCrash::new(f as usize, f);
            let r = run(&cfg, |_| BroadcastLeNode::new(f), &mut adv);
            let o = BroadcastLeOutcome::evaluate(&r);
            assert!(o.success, "seed {seed}: {o:?}");
        }
    }

    #[test]
    fn cost_is_quadratic_class() {
        let n = 256u32;
        let cfg = SimConfig::new(n)
            .seed(3)
            .max_rounds(broadcast_le_round_budget(4));
        let r = run(&cfg, |_| BroadcastLeNode::new(4), &mut NoFaults);
        let full = u64::from(n) * u64::from(n - 1);
        assert!(r.metrics.msgs_sent >= full);
        // Each node re-broadcasts only on strict decrease; with random
        // ranks that is O(log n) times in expectation — still Θ(n²) total.
        assert!(r.metrics.msgs_sent <= 20 * full);
    }
}
