//! The fault-free sublinear leader election of Kutten et al. (TCS 2015).
//!
//! In a complete network with **no** faults, Kutten, Pandurangan, Peleg,
//! Robinson & Trehan elect a leader in `O(1)` rounds with
//! `O(√n·log^{3/2} n)` messages — the result the paper extends to the
//! crash-fault setting, and the comparison point for the paper's
//! "asymptotically the same as fault-free" observation (experiment E9).
//!
//! One-shot structure: `Θ(log n)` self-selected candidates each contact
//! `Θ(√(n·log n))` random referees with their rank; each referee replies
//! with the maximum rank it has seen; a candidate that hears only its own
//! rank back from every referee is the leader. Pairwise referee
//! intersection whp makes the winner unique.
//!
//! **Fault-free only**: a single crash can break it, which is precisely
//! the gap the paper fills.

use ftc_core::rank::Rank;
use ftc_sim::ids::Port;
use ftc_sim::payload::Payload;
use ftc_sim::prelude::*;
use rand::prelude::*;

/// Messages of the Kutten et al. protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KuttenMsg {
    /// Candidate → referee: my rank.
    Bid(u64),
    /// Referee → candidate: largest rank I have seen.
    MaxSeen(u64),
}

impl Payload for KuttenMsg {
    fn size_bits(&self) -> u32 {
        50
    }
}

/// One node of the fault-free sublinear leader election.
#[derive(Clone, Debug)]
pub struct KuttenLeNode {
    rank: Option<Rank>,
    referees: Vec<Port>,
    /// Replies received so far (referee port, max rank it saw).
    replies: usize,
    beaten: bool,
    elected: Option<bool>,
    /// Referee role: the largest bid seen.
    max_bid: Option<u64>,
}

impl KuttenLeNode {
    /// Creates a node.
    pub fn new() -> Self {
        KuttenLeNode {
            rank: None,
            referees: Vec::new(),
            replies: 0,
            beaten: false,
            elected: None,
            max_bid: None,
        }
    }

    /// Whether this node is a candidate.
    pub fn is_candidate(&self) -> bool {
        self.rank.is_some()
    }

    /// Final verdict: `Some(true)` = ELECTED.
    pub fn elected(&self) -> Option<bool> {
        self.elected
    }
}

impl Default for KuttenLeNode {
    fn default() -> Self {
        Self::new()
    }
}

impl Protocol for KuttenLeNode {
    type Msg = KuttenMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, KuttenMsg>) {
        let n = ctx.n();
        let nf = f64::from(n);
        let cand_prob = (8.0 * nf.ln() / nf).min(1.0);
        if !ctx.rng().random_bool(cand_prob) {
            self.elected = Some(false);
            return;
        }
        let rank = Rank::draw(ctx.rng(), n);
        self.rank = Some(rank);
        let referees = ((2.0 * (nf * nf.ln()).sqrt()).ceil() as usize).min(n as usize - 1);
        self.referees = ctx.sample_ports(referees);
        for &p in &self.referees.clone() {
            ctx.send(p, KuttenMsg::Bid(rank.0));
        }
    }

    fn on_round(&mut self, ctx: &mut Ctx<'_, KuttenMsg>, inbox: &[Incoming<KuttenMsg>]) {
        let mut bids: Vec<(Port, u64)> = Vec::new();
        for inc in inbox {
            match inc.msg {
                KuttenMsg::Bid(b) => bids.push((inc.port, b)),
                KuttenMsg::MaxSeen(m) => {
                    self.replies += 1;
                    if let Some(r) = self.rank {
                        if m > r.0 {
                            self.beaten = true;
                        }
                    }
                }
            }
        }
        // Referee role: answer each bid with the running maximum.
        if !bids.is_empty() {
            let round_max = bids.iter().map(|&(_, b)| b).max().expect("non-empty");
            self.max_bid = Some(self.max_bid.map_or(round_max, |m| m.max(round_max)));
            let reply = self.max_bid.expect("just set");
            for (p, _) in bids {
                ctx.send(p, KuttenMsg::MaxSeen(reply));
            }
        }
        // Candidate role: after the single reply round, decide.
        if self.rank.is_some() && self.elected.is_none() && ctx.round() >= 2 {
            self.elected = Some(!self.beaten && self.replies > 0);
        }
    }

    fn is_terminated(&self) -> bool {
        self.elected.is_some()
    }
}

/// Round budget for the fault-free protocol (it is `O(1)`).
pub fn kutten_round_budget() -> u32 {
    5
}

/// Outcome of a Kutten et al. run.
#[derive(Clone, Debug)]
pub struct KuttenOutcome {
    /// Number of nodes that output ELECTED.
    pub elected: usize,
    /// Number of candidates.
    pub candidates: usize,
    /// Implicit-LE success: exactly one elected node.
    pub success: bool,
}

impl KuttenOutcome {
    /// Scores a finished run.
    pub fn evaluate(result: &RunResult<KuttenLeNode>) -> Self {
        let elected = result
            .surviving_states()
            .filter(|(_, s)| s.elected() == Some(true))
            .count();
        let candidates = result.states.iter().filter(|s| s.is_candidate()).count();
        KuttenOutcome {
            elected,
            candidates,
            success: elected == 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_unique_leader_whp() {
        let mut wins = 0;
        for seed in 0..20 {
            let cfg = SimConfig::new(1024)
                .seed(seed)
                .max_rounds(kutten_round_budget());
            let r = run(&cfg, |_| KuttenLeNode::new(), &mut NoFaults);
            let o = KuttenOutcome::evaluate(&r);
            if o.success {
                wins += 1;
            }
        }
        assert!(wins >= 19, "{wins}/20 unique-leader runs");
    }

    #[test]
    fn messages_are_sublinear() {
        let n = 4096u32;
        let cfg = SimConfig::new(n).seed(1).max_rounds(kutten_round_budget());
        let r = run(&cfg, |_| KuttenLeNode::new(), &mut NoFaults);
        // O(√n·log^{3/2} n): far below n·log n at this size.
        let bound = f64::from(n).sqrt() * f64::from(n).ln().powf(1.5);
        assert!(
            (r.metrics.msgs_sent as f64) < 60.0 * bound,
            "messages {} vs bound {bound}",
            r.metrics.msgs_sent
        );
    }

    #[test]
    fn terminates_in_constant_rounds() {
        let cfg = SimConfig::new(2048)
            .seed(2)
            .max_rounds(kutten_round_budget());
        let r = run(&cfg, |_| KuttenLeNode::new(), &mut NoFaults);
        assert!(r.metrics.rounds <= 5);
    }

    #[test]
    fn breaks_under_a_single_adversarial_crash() {
        // Motivates the paper: crash the would-be winner mid-reply and the
        // fault-free protocol can produce zero or duplicate leaders.
        let mut failures = 0;
        for seed in 0..30 {
            let cfg = SimConfig::new(256)
                .seed(seed)
                .max_rounds(kutten_round_budget());
            // Probe to find the winner.
            let probe = run(&cfg, |_| KuttenLeNode::new(), &mut NoFaults);
            let winner = probe
                .all_states()
                .enumerate()
                .find(|(_, (_, s))| s.elected() == Some(true))
                .map(|(i, _)| NodeId(i as u32));
            let Some(w) = winner else { continue };
            let plan = FaultPlan::new().crash(w, 0, DeliveryFilter::KeepFirst(2));
            let mut adv = ScriptedCrash::new(plan);
            let r = run(&cfg, |_| KuttenLeNode::new(), &mut adv);
            let o = KuttenOutcome::evaluate(&r);
            if !o.success {
                failures += 1;
            }
        }
        assert!(failures > 0, "expected at least one fault-induced failure");
    }
}
