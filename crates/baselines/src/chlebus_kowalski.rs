//! A Chlebus–Kowalski-style gossip consensus (`O(n log n)` messages).
//!
//! Chlebus & Kowalski (SPAA 2009) gave a "locally scalable" randomized
//! consensus with `O(n log n)` messages and `O(log n)` rounds *in
//! expectation*, tolerating a linear fraction of crash faults — the
//! `[36]` row of Table I. As with the GK10 baseline (DESIGN.md §5), we
//! implement a simplified variant with the same headline behaviour: a
//! push-epidemic on the minimum value. Every node, every round, pushes its
//! current minimum to `FANOUT` uniformly random ports for `Θ(log n)`
//! rounds, then decides its minimum. A standard epidemic argument gives
//! all-alive-nodes convergence whp when the fault pattern is random; the
//! cost is exactly `FANOUT · n · Θ(log n)` messages — `O(n log n)`.
//!
//! Explicit output, KT0, linear resilience (in the measured, whp sense).

use ftc_sim::prelude::*;

/// Number of random push targets per node per round.
const FANOUT: u32 = 2;

/// Multiplier on `log₂ n` for the gossip length.
const ROUND_FACTOR: u32 = 3;

/// One node of the gossip (epidemic) consensus.
#[derive(Clone, Debug)]
pub struct GossipNode {
    input: bool,
    value: bool,
    rounds_total: u32,
    decision: Option<bool>,
}

impl GossipNode {
    /// Creates a node with the given input for an `n`-node network.
    pub fn new(n: u32, input_one: bool) -> Self {
        GossipNode {
            input: input_one,
            value: input_one,
            rounds_total: gossip_rounds(n),
            decision: None,
        }
    }

    /// The node's decision (explicit output).
    pub fn decision(&self) -> Option<bool> {
        self.decision
    }

    /// The node's input bit.
    pub fn input(&self) -> bool {
        self.input
    }

    fn push(&self, ctx: &mut Ctx<'_, bool>) {
        for _ in 0..FANOUT {
            let p = ctx.random_port();
            ctx.send(p, self.value);
        }
    }
}

/// Number of gossip rounds for an `n`-node network: `3·⌈log₂ n⌉ + 2`.
pub fn gossip_rounds(n: u32) -> u32 {
    ROUND_FACTOR * (32 - n.leading_zeros()) + 2
}

/// Round budget for a gossip run.
pub fn gossip_round_budget(n: u32) -> u32 {
    gossip_rounds(n) + 4
}

impl Protocol for GossipNode {
    type Msg = bool;

    fn on_start(&mut self, ctx: &mut Ctx<'_, bool>) {
        self.push(ctx);
    }

    fn on_round(&mut self, ctx: &mut Ctx<'_, bool>, inbox: &[Incoming<bool>]) {
        if self.decision.is_some() {
            return;
        }
        if inbox.iter().any(|m| !m.msg) {
            self.value = false;
        }
        if ctx.round() >= self.rounds_total {
            self.decision = Some(self.value);
        } else {
            self.push(ctx);
        }
    }

    fn is_terminated(&self) -> bool {
        self.decision.is_some()
    }
}

/// Outcome of a gossip consensus run.
#[derive(Clone, Debug)]
pub struct GossipOutcome {
    /// The common decision, when consistent.
    pub value: Option<bool>,
    /// Alive nodes without a decision.
    pub undecided: usize,
    /// Whether all alive nodes decided the same, valid value.
    pub success: bool,
}

impl GossipOutcome {
    /// Scores a finished run.
    pub fn evaluate(result: &RunResult<GossipNode>) -> Self {
        let decisions: Vec<Option<bool>> = result
            .surviving_states()
            .map(|(_, s)| s.decision())
            .collect();
        let undecided = decisions.iter().filter(|d| d.is_none()).count();
        let distinct: std::collections::BTreeSet<bool> =
            decisions.iter().flatten().copied().collect();
        let value = (distinct.len() == 1).then(|| *distinct.first().unwrap());
        let valid = value.is_some_and(|v| result.all_states().any(|(_, s)| s.input() == v));
        GossipOutcome {
            value,
            undecided,
            success: undecided == 0 && distinct.len() == 1 && valid,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_gossip(
        n: u32,
        seed: u64,
        inputs: impl Fn(NodeId) -> bool,
        adv: &mut dyn Adversary<bool>,
    ) -> RunResult<GossipNode> {
        let cfg = SimConfig::new(n)
            .seed(seed)
            .max_rounds(gossip_round_budget(n));
        run(&cfg, |id| GossipNode::new(n, inputs(id)), adv)
    }

    #[test]
    fn fault_free_converges_to_minimum() {
        for seed in 0..5 {
            let r = run_gossip(256, seed, |id| id.0 != 31, &mut NoFaults);
            let o = GossipOutcome::evaluate(&r);
            assert!(o.success, "seed {seed}: {o:?}");
            assert_eq!(o.value, Some(false));
        }
    }

    #[test]
    fn survives_linear_random_crashes() {
        for seed in 0..10 {
            let mut adv = RandomCrash::new(100, 10);
            let r = run_gossip(256, seed, |id| id.0 % 4 == 0, &mut adv);
            let o = GossipOutcome::evaluate(&r);
            assert!(o.success, "seed {seed}: {o:?}");
        }
    }

    #[test]
    fn message_complexity_is_n_log_n_class() {
        let n = 1024u32;
        let r = run_gossip(n, 3, |_| true, &mut NoFaults);
        let expected = u64::from(FANOUT) * u64::from(n) * u64::from(gossip_rounds(n) + 1);
        assert!(r.metrics.msgs_sent <= expected);
        assert!(r.metrics.msgs_sent >= expected / 2);
    }

    #[test]
    fn all_zero_inputs_decide_zero() {
        let r = run_gossip(128, 5, |_| false, &mut NoFaults);
        let o = GossipOutcome::evaluate(&r);
        assert!(o.success);
        assert_eq!(o.value, Some(false));
    }
}
