//! A Gilbert–Kowalski-style `O(n)`-message explicit agreement (KT1).
//!
//! Gilbert & Kowalski (SODA 2010) gave an `O(n)`-message, `O(log n)`-round
//! explicit crash-fault agreement tolerating up to `n/2 − 1` faults in the
//! KT1 model — the closest prior work the paper compares against
//! (Table I). Their full construction (checkpointed gossip with fountains)
//! is far more intricate than its headline bounds; as documented in
//! DESIGN.md §5, we implement a *simplified variant with the same headline
//! behaviour*:
//!
//! 1. **Gather** — inputs are aggregated (minimum) up a static binary tree
//!    over node ids, depth-synchronised: `n − O(log n)` messages,
//!    `O(log n)` rounds.
//! 2. **Committee FloodSet** — the top `K = Θ(log n)` tree nodes run the
//!    classic `(K+1)`-round flooding consensus among themselves on the
//!    gathered minima: `O(log² n)` messages.
//! 3. **Disseminate + repair** — the decision flows back down the tree;
//!    nodes orphaned by crashed ancestors query random committee members
//!    directly (one query per round until answered): `n + O(#orphans)`
//!    messages in expectation.
//!
//! The variant keeps `O(n)` messages and `O(log n)` rounds under random
//! crash faults below `n/2` and requires KT1 (nodes address each other by
//! id), exactly the row Table I reports for \[24\]. Unlike the real GK10 it
//! can fail if an adversary crashes the *entire* committee — a measurable
//! simplification, probability `2^{-Θ(log n)}` under random faults.

use ftc_sim::ids::{NodeId, Round};
use ftc_sim::payload::Payload;
use ftc_sim::prelude::*;
use rand::prelude::*;

/// Messages of the GK10-style protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GkMsg {
    /// Subtree minimum flowing up the gather tree.
    Gather(bool),
    /// Committee-internal FloodSet value.
    Flood(bool),
    /// Decision flowing down the tree.
    Decide(bool),
    /// Orphan → committee: "what was decided?"
    Query,
    /// Committee → orphan: the decision.
    Reply(bool),
}

impl Payload for GkMsg {
    fn size_bits(&self) -> u32 {
        match self {
            GkMsg::Query => 3,
            _ => 4,
        }
    }
}

/// Static tree/committee geometry shared by all nodes.
#[derive(Clone, Copy, Debug)]
struct Geometry {
    n: u32,
    /// Committee size (`min(n, 2·⌈log₂ n⌉ + 1)`).
    k: u32,
    /// Maximum tree depth.
    max_depth: u32,
}

impl Geometry {
    fn new(n: u32) -> Self {
        let log2n = 32 - n.leading_zeros();
        let k = (2 * log2n + 1).min(n);
        let max_depth = n.ilog2(); // depth of node n-1 in the heap order
        Geometry { n, k, max_depth }
    }

    fn depth(self, id: u32) -> u32 {
        (id + 1).ilog2()
    }

    fn parent(self, id: u32) -> Option<u32> {
        (id > 0).then(|| (id - 1) / 2)
    }

    fn children(self, id: u32) -> impl Iterator<Item = u32> {
        let n = self.n;
        [2 * id + 1, 2 * id + 2].into_iter().filter(move |&c| c < n)
    }

    fn is_committee(self, id: u32) -> bool {
        id < self.k
    }

    /// Round at which node `id` fires its gather message.
    fn gather_round(self, id: u32) -> Round {
        self.max_depth - self.depth(id)
    }

    /// First round of the committee FloodSet.
    fn flood_start(self) -> Round {
        self.max_depth + 1
    }

    /// Round at which committee members decide and start dissemination.
    fn decide_round(self) -> Round {
        self.flood_start() + self.k + 2
    }

    /// Round after which an undecided node starts querying the committee.
    fn repair_round(self, id: u32) -> Round {
        self.decide_round() + self.depth(id) + 4
    }
}

/// One node of the GK10-style explicit agreement. Requires a KT1
/// simulation (`SimConfig::kt1(true)`).
#[derive(Clone, Debug)]
pub struct GkNode {
    input: bool,
    /// Current minimum (gather / flood value).
    value: bool,
    geo: Option<Geometry>,
    decision: Option<bool>,
    relayed_down: bool,
}

impl GkNode {
    /// Creates a node with the given input bit.
    pub fn new(input_one: bool) -> Self {
        GkNode {
            input: input_one,
            value: input_one,
            geo: None,
            decision: None,
            relayed_down: false,
        }
    }

    /// The node's decision (explicit output).
    pub fn decision(&self) -> Option<bool> {
        self.decision
    }

    /// The node's input bit.
    pub fn input(&self) -> bool {
        self.input
    }

    fn decide_and_relay(&mut self, ctx: &mut Ctx<'_, GkMsg>, v: bool) {
        let geo = self.geo.expect("geometry set in on_start");
        if self.decision.is_none() {
            self.decision = Some(v);
        }
        if !self.relayed_down {
            self.relayed_down = true;
            let me = ctx.node_id().0;
            for c in geo.children(me) {
                let port = ctx.port_to(NodeId(c));
                ctx.send(port, GkMsg::Decide(v));
            }
        }
    }
}

impl Protocol for GkNode {
    type Msg = GkMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, GkMsg>) {
        assert!(ctx.is_kt1(), "the GK10-style baseline requires KT1");
        self.geo = Some(Geometry::new(ctx.n()));
    }

    fn on_round(&mut self, ctx: &mut Ctx<'_, GkMsg>, inbox: &[Incoming<GkMsg>]) {
        let geo = self.geo.expect("geometry set in on_start");
        let me = ctx.node_id().0;
        let round = ctx.round();

        // Ingest messages.
        let mut got_decide: Option<bool> = None;
        let mut queries: Vec<ftc_sim::ids::Port> = Vec::new();
        let mut flood_changed = false;
        for inc in inbox {
            match inc.msg {
                GkMsg::Gather(v) | GkMsg::Flood(v) if !v => {
                    if self.value {
                        self.value = false;
                        if matches!(inc.msg, GkMsg::Flood(_)) {
                            flood_changed = true;
                        }
                    }
                }
                GkMsg::Gather(_) | GkMsg::Flood(_) => {}
                GkMsg::Decide(v) | GkMsg::Reply(v) => {
                    got_decide = Some(got_decide.map_or(v, |g| g && v));
                }
                GkMsg::Query => queries.push(inc.port),
            }
        }

        // Phase 1: gather up the tree.
        if !geo.is_committee(me) && round == geo.gather_round(me) {
            if let Some(p) = geo.parent(me) {
                let port = ctx.port_to(NodeId(p));
                ctx.send(port, GkMsg::Gather(self.value));
            }
        }

        // Phase 2: committee FloodSet.
        if geo.is_committee(me) {
            let start = geo.flood_start();
            if round == start || (flood_changed && round > start && round < geo.decide_round()) {
                for peer in 0..geo.k {
                    if peer != me {
                        let port = ctx.port_to(NodeId(peer));
                        ctx.send(port, GkMsg::Flood(self.value));
                    }
                }
            }
            // Phase 3 kick-off: decide and push down the tree.
            if round >= geo.decide_round() && self.decision.is_none() {
                let v = self.value;
                self.decide_and_relay(ctx, v);
            }
            // Serve repair queries.
            if let Some(v) = self.decision {
                for q in queries {
                    ctx.send(q, GkMsg::Reply(v));
                }
            }
            return;
        }

        // Phase 3 (non-committee): adopt and relay the decision.
        if let Some(v) = got_decide {
            self.decide_and_relay(ctx, v);
        }
        // Repair: orphaned by crashed ancestors — query a random committee
        // member each round until someone answers.
        if self.decision.is_none() && round >= geo.repair_round(me) {
            let target = loop {
                let t = ctx.rng().random_range(0..geo.k);
                if t != me {
                    break t;
                }
            };
            let port = ctx.port_to(NodeId(target));
            ctx.send(port, GkMsg::Query);
        }
    }

    fn is_terminated(&self) -> bool {
        self.decision.is_some()
    }
}

/// Round budget for the GK10-style protocol on an `n`-node network.
pub fn gk_round_budget(n: u32) -> u32 {
    let geo = Geometry::new(n);
    geo.decide_round() + geo.max_depth + geo.k + 16
}

/// Outcome of a GK10-style run.
#[derive(Clone, Debug)]
pub struct GkOutcome {
    /// The common decision, when consistent.
    pub value: Option<bool>,
    /// Alive nodes without a decision.
    pub undecided: usize,
    /// Explicit-agreement success: everyone alive decided the same value,
    /// and the value is some node's input.
    pub success: bool,
}

impl GkOutcome {
    /// Scores a finished run.
    pub fn evaluate(result: &RunResult<GkNode>) -> Self {
        let decisions: Vec<Option<bool>> = result
            .surviving_states()
            .map(|(_, s)| s.decision())
            .collect();
        let undecided = decisions.iter().filter(|d| d.is_none()).count();
        let distinct: std::collections::BTreeSet<bool> =
            decisions.iter().flatten().copied().collect();
        let value = (distinct.len() == 1).then(|| *distinct.first().unwrap());
        let valid = value.is_some_and(|v| result.all_states().any(|(_, s)| s.input() == v));
        GkOutcome {
            value,
            undecided,
            success: undecided == 0 && distinct.len() == 1 && valid,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_gk(
        n: u32,
        seed: u64,
        inputs: impl Fn(NodeId) -> bool,
        adv: &mut dyn Adversary<GkMsg>,
    ) -> RunResult<GkNode> {
        let cfg = SimConfig::new(n)
            .seed(seed)
            .kt1(true)
            .max_rounds(gk_round_budget(n));
        run(&cfg, |id| GkNode::new(inputs(id)), adv)
    }

    #[test]
    fn fault_free_decides_minimum() {
        let r = run_gk(256, 1, |id| id.0 != 200, &mut NoFaults);
        let o = GkOutcome::evaluate(&r);
        assert!(o.success, "{o:?}");
        assert_eq!(o.value, Some(false));
    }

    #[test]
    fn all_ones_decides_one() {
        let r = run_gk(256, 2, |_| true, &mut NoFaults);
        let o = GkOutcome::evaluate(&r);
        assert!(o.success, "{o:?}");
        assert_eq!(o.value, Some(true));
    }

    #[test]
    fn survives_random_crashes_below_half() {
        for seed in 0..10 {
            let mut adv = RandomCrash::new(100, 20);
            let r = run_gk(256, seed, |id| id.0 % 3 == 0, &mut adv);
            let o = GkOutcome::evaluate(&r);
            assert!(o.success, "seed {seed}: {o:?}");
        }
    }

    #[test]
    fn message_complexity_is_linear_class() {
        let n = 4096u32;
        let r = run_gk(n, 3, |id| id.0 == 9, &mut NoFaults);
        let o = GkOutcome::evaluate(&r);
        assert!(o.success, "{o:?}");
        // O(n): gather (≈ n) + committee flooding (O(log² n)) +
        // dissemination (≈ n). Well below n·log n.
        assert!(
            r.metrics.msgs_sent < 4 * u64::from(n),
            "messages {}",
            r.metrics.msgs_sent
        );
    }

    #[test]
    fn rounds_are_logarithmic_class() {
        let n = 4096u32;
        let r = run_gk(n, 4, |_| true, &mut NoFaults);
        assert!(
            r.metrics.rounds <= gk_round_budget(n),
            "rounds {}",
            r.metrics.rounds
        );
        // decide_round + tree depth + slack ≈ 3·log n + const.
        assert!(r.metrics.rounds < 8 * 12 + 40);
    }

    #[test]
    fn orphan_repair_reaches_leaves() {
        // Crash a band of internal tree nodes right after gather so entire
        // subtrees are orphaned during dissemination; repair must still
        // deliver the decision.
        let n = 256u32;
        let geo_probe = Geometry::new(n);
        let mut plan = FaultPlan::new();
        for id in geo_probe.k..geo_probe.k + 20 {
            plan = plan.crash(NodeId(id), geo_probe.flood_start(), DeliveryFilter::DropAll);
        }
        let mut adv = ScriptedCrash::new(plan);
        let r = run_gk(n, 5, |_| true, &mut adv);
        let o = GkOutcome::evaluate(&r);
        assert!(o.success, "{o:?}");
    }
}
