//! # `ftc-baselines` — comparison protocols for Table I and the figures
//!
//! The paper's evaluation artifact is Table I: a comparison of the
//! agreement protocol against the best known algorithms in the same model.
//! This crate implements each comparison row (or the closest faithful
//! stand-in, see DESIGN.md §5) plus the classic baselines the sublinear
//! bounds are measured against:
//!
//! | Module | Stands for | Messages | Rounds | Resilience | Model |
//! |--------|-----------|----------|--------|-----------|-------|
//! | [`flood_agreement`] | folklore FloodSet | `O(n²)` | `f+1` | any `f` | KT0 |
//! | [`broadcast_le`] | deterministic LE | `O(n²)` | `f+1` | any `f` | KT0 |
//! | [`gilbert_kowalski`] | Gilbert–Kowalski SODA'10 `[24]` | `O(n)` | `O(log n)` | `n/2−1` | KT1 |
//! | [`chlebus_kowalski`] | Chlebus–Kowalski SPAA'09 `[36]` | `O(n log n)` exp. | `O(log n)` exp. | linear | KT0 |
//! | [`kutten_le`] | Kutten et al. TCS'15 `[21]` (fault-free) | `O(√n·log^{3/2}n)` | `O(1)` | none | KT0 |
//! | [`diam_two_le`] | Chatterjee–Pandurangan–Robinson ICDCN'20 (hub relay, diameter-two) | `O(n·h)` | `O(1)` | none | KT0 |
//! | [`cms`] | Chor–Merritt–Shmoys JACM'89 `[25]` | `Θ(n²)`/phase | `O(1)` expected | `< n/2` whp | KT0 |
//! | [`augustine_agreement`] | Augustine–Molla–Pandurangan PODC'18 `[23]` (fault-free) | `O(√n·log^{3/2}n)` | `O(1)` | none | KT0 |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod augustine_agreement;
pub mod broadcast_le;
pub mod chlebus_kowalski;
pub mod cms;
pub mod diam_two_le;
pub mod flood_agreement;
pub mod gilbert_kowalski;
pub mod kutten_le;

/// Convenient glob import for baseline users.
pub mod prelude {
    pub use crate::augustine_agreement::{
        augustine_round_budget, AugustineMsg, AugustineNode, AugustineOutcome,
    };
    pub use crate::broadcast_le::{broadcast_le_round_budget, BroadcastLeNode, BroadcastLeOutcome};
    pub use crate::chlebus_kowalski::{
        gossip_round_budget, gossip_rounds, GossipNode, GossipOutcome,
    };
    pub use crate::cms::{cms_round_budget, CmsMsg, CmsNode, CmsOutcome, CMS_PHASES};
    pub use crate::diam_two_le::{
        diam_two_round_budget, DiamTwoLeNode, DiamTwoMsg, DiamTwoOutcome,
    };
    pub use crate::flood_agreement::{flood_round_budget, FloodAgreeNode, FloodOutcome};
    pub use crate::gilbert_kowalski::{gk_round_budget, GkMsg, GkNode, GkOutcome};
    pub use crate::kutten_le::{kutten_round_budget, KuttenLeNode, KuttenMsg, KuttenOutcome};
}
