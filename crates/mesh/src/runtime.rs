//! The multiplexed mesh runtime: drives the sans-I/O cores of
//! [`ftc_net::core`] over the proc-pair socket fabric.
//!
//! ## Architecture
//!
//! `procs` threads each own a contiguous-by-residue slice of the nodes
//! (node `u` lives on proc `u mod procs`) as [`RoundCore`] state
//! machines. The coordinator — a [`CoordinatorCore`] on the calling
//! thread — runs the same control plane as the engine and the other
//! runtimes; commands travel to procs over in-process channels (the
//! control plane never touches the sockets), and the *data plane* moves
//! over the fabric as [`crate::wire`] envelopes:
//!
//! 1. **activate** — each proc activates its alive nodes and submits;
//! 2. **adjudicate** — the coordinator routes, filters, and answers with
//!    one command batch per proc;
//! 3. **transmit** — each proc stages its nodes' outbound frames:
//!    proc-local destinations are fed straight into the destination
//!    core's inbox (no socket, no copy), remote ones are coalesced per
//!    peer proc and flushed with few large nonblocking writes;
//! 4. **collect** — a mio-style readiness loop drains whichever sockets
//!    have data, feeding decoded envelopes to the local cores, until
//!    every write buffer is empty and every active core reports
//!    [`RoundCore::ready`].
//!
//! ## Backpressure without deadlock
//!
//! There are no unbounded intake queues and no reader threads. Writes
//! are nonblocking: when the kernel's socket buffer fills (`WouldBlock`),
//! the proc keeps draining its *own* readable sockets — freeing its
//! peers' send paths — and retries the flush. Every proc transmits
//! before it collects and never blocks on a write, so the round loop
//! cannot deadlock; in-flight data per socket is bounded by the kernel
//! buffer plus at most one round of traffic per sender (procs are never
//! more than one round apart — the coordinator's lock-step sees to it).
//!
//! ## Accounting
//!
//! Every transmitted frame — socket or proc-local — charges exactly
//! [`Frame::encoded_len`], the same rule the channel and TCP runtimes
//! use, so `wire_bytes` is bit-identical across substrates and process
//! counts. The envelope's 4-byte `dst` word is transport overhead, not
//! model traffic, and is excluded (see [`crate::wire`]).

use std::io;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread;
use std::time::{Duration, Instant};

use ftc_net::core::{Command, CoordinatorCore, RoundCore, Submission};
use ftc_net::fault::{ChunkedWriter, FrameDedup, WireFaultPlan};
use ftc_net::sync::{NetMetrics, NetRunResult};
use ftc_net::transport::RECV_TIMEOUT;
use ftc_sim::adversary::Adversary;
use ftc_sim::engine::{RunResult, SimConfig};
use ftc_sim::ids::NodeId;
use ftc_sim::payload::Wire;
use ftc_sim::protocol::Protocol;

use ftc_sim::round::topology_seed;

use crate::fabric::{self, ProcLinks};
use crate::wire::{EnvelopeDecoder, WriteBuf};

/// Opens the proc-pair fabric for `cfg`. On the complete graph every
/// pair of procs shares traffic, so this is plain [`fabric::build`]; on
/// a sparse topology a pair gets a socket only when some model edge
/// crosses between its procs' node slices — the mesh analogue of the TCP
/// runtime opening one connection per topology edge.
fn build_links(cfg: &SimConfig, procs: usize) -> io::Result<Vec<ProcLinks>> {
    if cfg.topology.is_complete() || procs <= 1 {
        return fabric::build(procs);
    }
    let edges = cfg.topology.edge_set(cfg.n, topology_seed(cfg));
    let mut crossed = vec![false; procs * procs];
    edges.for_each_edge(|u, v| {
        let (p, q) = (u as usize % procs, v as usize % procs);
        if p != q {
            crossed[p * procs + q] = true;
            crossed[q * procs + p] = true;
        }
    });
    fabric::build_where(procs, |p, q| crossed[p * procs + q])
}

/// How long one readiness wait lasts before the proc re-checks its write
/// buffers and the timeout clock. Short enough to keep flush retries
/// snappy under backpressure, long enough not to spin.
const POLL_SLICE: Duration = Duration::from_millis(1);

/// Runs `cfg` over the multiplexed socket mesh with `procs` processes and
/// the default receive timeout ([`RECV_TIMEOUT`]).
///
/// The result is bit-identical to [`ftc_sim::engine::run`] (and to the
/// channel and TCP runtimes) for the same `(SimConfig, seed)` at any
/// `procs` — asserted by `tests/net_equivalence.rs`.
///
/// Fails if the socket fabric cannot be built; panics on invalid
/// configurations or mid-run transport failures, like the other runtimes.
pub fn run_over_mesh<P, F, A>(
    cfg: &SimConfig,
    procs: usize,
    factory: F,
    adversary: &mut A,
) -> io::Result<NetRunResult<P>>
where
    P: Protocol,
    P::Msg: Wire,
    F: FnMut(NodeId) -> P,
    A: Adversary<P::Msg> + ?Sized,
{
    run_over_mesh_with(cfg, procs, factory, adversary, RECV_TIMEOUT)
}

/// Like [`run_over_mesh`], but nodes give up after `recv_timeout` when
/// blocked on a frame (a wedged run fails fast instead of hanging).
pub fn run_over_mesh_with<P, F, A>(
    cfg: &SimConfig,
    procs: usize,
    factory: F,
    adversary: &mut A,
    recv_timeout: Duration,
) -> io::Result<NetRunResult<P>>
where
    P: Protocol,
    P::Msg: Wire,
    F: FnMut(NodeId) -> P,
    A: Adversary<P::Msg> + ?Sized,
{
    run_over_mesh_at_height(cfg, procs, factory, adversary, recv_timeout, 0)
}

/// Like [`run_over_mesh`], but with a scripted
/// [`WireFaultPlan`] perturbing the socket layer: transmit bursts are
/// reordered, duplicated, and delayed per node and round, coalesced
/// writes are torn into scheduled fragment sizes, and receive edges
/// dedup frames before they reach the cores. Every v1 wire fault is
/// delivery-preserving, so the result — including `wire_bytes` and
/// `frames_sent` — is bit-identical to the faultless run; that is the
/// property `ftc hunt --wire-faults` attacks.
pub fn run_over_mesh_faulty<P, F, A>(
    cfg: &SimConfig,
    procs: usize,
    factory: F,
    adversary: &mut A,
    wire: &WireFaultPlan,
) -> io::Result<NetRunResult<P>>
where
    P: Protocol,
    P::Msg: Wire,
    F: FnMut(NodeId) -> P,
    A: Adversary<P::Msg> + ?Sized,
{
    run_over_mesh_wired(cfg, procs, factory, adversary, RECV_TIMEOUT, 0, Some(wire))
}

/// [`run_over_mesh_with`] with every frame tagged as belonging to
/// election instance `height` (the `ftc-serve` counter); each height gets
/// a fresh fabric, and a foreign-height frame fails the run loudly.
pub fn run_over_mesh_at_height<P, F, A>(
    cfg: &SimConfig,
    procs: usize,
    factory: F,
    adversary: &mut A,
    recv_timeout: Duration,
    height: u32,
) -> io::Result<NetRunResult<P>>
where
    P: Protocol,
    P::Msg: Wire,
    F: FnMut(NodeId) -> P,
    A: Adversary<P::Msg> + ?Sized,
{
    run_over_mesh_wired(cfg, procs, factory, adversary, recv_timeout, height, None)
}

/// The shared driver: [`run_over_mesh_at_height`] plus an optional
/// [`WireFaultPlan`] applied at the adapter boundary (never inside the
/// cores). `None` is the exact pre-fault code path.
#[allow(clippy::too_many_arguments)]
fn run_over_mesh_wired<P, F, A>(
    cfg: &SimConfig,
    procs: usize,
    mut factory: F,
    adversary: &mut A,
    recv_timeout: Duration,
    height: u32,
    wire: Option<&WireFaultPlan>,
) -> io::Result<NetRunResult<P>>
where
    P: Protocol,
    P::Msg: Wire,
    F: FnMut(NodeId) -> P,
    A: Adversary<P::Msg> + ?Sized,
{
    cfg.validate().expect("invalid SimConfig");
    assert!(cfg.max_rounds > 0, "cluster runs need at least one round");
    let nn = cfg.n as usize;
    let procs = procs.clamp(1, nn.min(fabric::MAX_MESH_PROCS));
    let links = build_links(cfg, procs)?;

    let mut coord = CoordinatorCore::<P::Msg>::new(cfg, height, adversary);

    // Nodes in id order through the factory (same call order as every
    // other runtime), then partitioned by residue.
    let mut pools: Vec<Vec<RoundCore<P>>> = (0..procs).map(|_| Vec::new()).collect();
    for i in 0..nn {
        let id = NodeId(i as u32);
        pools[i % procs].push(RoundCore::new(cfg, id, factory(id), height));
    }
    let proc_nodes: Vec<Vec<NodeId>> = pools
        .iter()
        .map(|pool| pool.iter().map(|c| c.id()).collect())
        .collect();

    let (submit_tx, submit_rx) = channel::<Submission<P::Msg>>();
    let (report_tx, report_rx) = channel::<ProcReport<P>>();
    let mut batch_txs: Vec<Sender<Vec<(NodeId, Command)>>> = Vec::with_capacity(procs);

    let mut states: Vec<Option<P>> = (0..nn).map(|_| None).collect();
    let mut net = NetMetrics::default();
    let mut failure: Option<String> = None;

    thread::scope(|scope| {
        let mut link_iter = links.into_iter();
        for (index, pool) in pools.into_iter().enumerate() {
            let (tx, rx) = channel();
            batch_txs.push(tx);
            let proc = Proc {
                index,
                procs,
                nodes: pool,
                links: link_iter.next().expect("one link set per proc"),
                batches: rx,
                recv_timeout,
            };
            let submit_tx = submit_tx.clone();
            let report_tx = report_tx.clone();
            scope.spawn(move || proc_loop(proc, submit_tx, report_tx, wire));
        }
        drop(submit_tx);
        drop(report_tx);

        'rounds: loop {
            let expected = coord.alive().len();
            let mut submissions = Vec::with_capacity(expected);
            for _ in 0..expected {
                let sub = submit_rx.recv().expect("a proc died mid-round");
                if sub.failed.is_some() {
                    failure = sub.failed;
                    break 'rounds;
                }
                submissions.push(sub);
            }
            let plan = match coord.adjudicate(submissions, adversary) {
                Ok(plan) => plan,
                Err(err) => {
                    failure = Some(err);
                    break 'rounds;
                }
            };
            let mut batches: Vec<Vec<(NodeId, Command)>> = (0..procs).map(|_| Vec::new()).collect();
            for (u, command) in plan.commands {
                batches[u.index() % procs].push((u, command));
            }
            for (p, batch) in batches.into_iter().enumerate() {
                if !batch.is_empty() {
                    batch_txs[p].send(batch).expect("a proc died mid-round");
                }
            }
            if plan.stop {
                break;
            }
        }

        if failure.is_some() {
            // Unwedge the lock-step: stop every proc's surviving nodes so
            // the threads drain and join (the failed proc's batch receiver
            // may already be gone — ignore send errors).
            for (p, tx) in batch_txs.iter().enumerate() {
                let batch = proc_nodes[p]
                    .iter()
                    .map(|&u| (u, Command::stop()))
                    .collect();
                let _ = tx.send(batch);
            }
        }

        while let Ok(report) = report_rx.recv() {
            net.wire_bytes += report.wire_bytes;
            net.frames_sent += report.frames_sent;
            for (id, state) in report.states {
                states[id.index()] = Some(state);
            }
        }
    });

    if let Some(err) = failure {
        panic!("cluster run wedged: {err}");
    }

    let out = coord.finish(net.wire_bytes);
    Ok(NetRunResult {
        run: RunResult {
            metrics: out.metrics,
            states: states
                .into_iter()
                .map(|s| s.expect("proc returned no state for a node"))
                .collect(),
            crashed_at: out.crashed_at,
            faulty: out.faulty,
            trace: out.trace,
            congest_violations: out.congest_violations,
        },
        net,
    })
}

/// What one proc hands back when all its nodes are done.
struct ProcReport<P> {
    wire_bytes: u64,
    frames_sent: u64,
    states: Vec<(NodeId, P)>,
}

/// One proc: its nodes' state machines plus its half of the fabric.
struct Proc<P: Protocol> {
    index: usize,
    procs: usize,
    nodes: Vec<RoundCore<P>>,
    links: ProcLinks,
    batches: Receiver<Vec<(NodeId, Command)>>,
    recv_timeout: Duration,
}

impl<P> Proc<P>
where
    P: Protocol,
    P::Msg: Wire,
{
    /// Local pool slot of a node on this proc (`id ≡ index (mod procs)`).
    fn slot(&self, id: NodeId) -> usize {
        debug_assert_eq!(id.index() % self.procs, self.index);
        id.index() / self.procs
    }
}

/// Drives one proc until every owned node has crashed or stopped.
fn proc_loop<P>(
    mut proc: Proc<P>,
    submit_tx: Sender<Submission<P::Msg>>,
    report_tx: Sender<ProcReport<P>>,
    wire: Option<&WireFaultPlan>,
) where
    P: Protocol,
    P::Msg: Wire,
{
    let mut wire_bytes = 0u64;
    let mut frames_sent = 0u64;
    // Receive-edge dedup, one set per owned node slot, engaged only under
    // a wire plan (the faultless path stays byte-for-byte untouched).
    let mut dedups: Vec<FrameDedup> = if wire.is_some() {
        proc.nodes.iter().map(|_| FrameDedup::new()).collect()
    } else {
        Vec::new()
    };

    // The readiness loop: every peer socket registered once, token =
    // peer proc index.
    let mut poll = mio::Poll::new().expect("poll");
    for (peer, link) in proc.links.iter().enumerate() {
        if let Some(stream) = link {
            poll.registry()
                .register(stream, mio::Token(peer), mio::Interest::READABLE)
                .expect("register");
        }
    }
    let mut events = mio::Events::with_capacity(proc.procs.max(4));
    let mut out: Vec<WriteBuf> = (0..proc.procs).map(|_| WriteBuf::new()).collect();
    let mut dec: Vec<EnvelopeDecoder> = (0..proc.procs).map(|_| EnvelopeDecoder::new()).collect();
    let mut read_buf = vec![0u8; 64 * 1024];

    // Reports a failure through the submission channel (where the
    // coordinator blocks next round) and abandons the proc.
    macro_rules! fail {
        ($node:expr, $msg:expr) => {{
            let _ = submit_tx.send(Submission::failure($node, $msg));
            return;
        }};
    }

    loop {
        // Phase 1: activate and submit.
        let mut any_active = false;
        for node in proc.nodes.iter_mut().filter(|n| n.is_active()) {
            any_active = true;
            submit_tx.send(node.activate()).expect("coordinator gone");
        }
        if !any_active {
            break;
        }

        // Phase 2: apply the coordinator's batch; stage frames. Under a
        // wire plan, each node's burst is perturbed between core and
        // fabric: reorder/duplicate/delay per the schedule, with the
        // appended duplicate suffix transmitted but *not* charged, so
        // model accounting stays identical to a faultless wire.
        let batch = proc.batches.recv().expect("coordinator gone");
        let mut tear: Option<usize> = None;
        for (id, command) in batch {
            let slot = proc.slot(id);
            if !proc.nodes[slot].is_active() {
                continue; // unwedge stop for an already-finished node
            }
            let mut burst = proc.nodes[slot].apply(command);
            let mut charged = burst.len();
            if let Some(plan) = wire {
                if let Some(round) = burst.first().map(|(_, f)| f.round) {
                    if let Some(pause) = plan.delay(id, round) {
                        thread::sleep(pause);
                    }
                    if let Some(chunk) = plan.tear_chunk(id, round) {
                        tear = Some(tear.map_or(chunk, |t| t.min(chunk)));
                    }
                    let dups = plan.perturb_batch(id, round, &mut burst);
                    charged = burst.len() - dups;
                }
            }
            for (k, (dst, frame)) in burst.into_iter().enumerate() {
                if k < charged {
                    // Model accounting is per frame, local or remote —
                    // identical to the channel/TCP rule, hence
                    // procs-invariant.
                    wire_bytes += frame.encoded_len();
                    frames_sent += 1;
                }
                let peer = dst.index() % proc.procs;
                if peer == proc.index {
                    let dst_slot = proc.slot(dst);
                    if let Some(dedup) = dedups.get_mut(dst_slot) {
                        if !dedup.admit(&frame) {
                            continue;
                        }
                    }
                    if let Err(err) = proc.nodes[dst_slot].feed(frame) {
                        fail!(dst, err);
                    }
                } else {
                    out[peer].stage(dst, &frame);
                }
            }
        }

        // Phase 3: flush + collect under the readiness loop.
        let mut last_progress = Instant::now();
        loop {
            // Flush whatever the kernel will take; WouldBlock is
            // backpressure and handled by draining reads below.
            let mut progressed = false;
            for (peer, wb) in out.iter_mut().enumerate() {
                if wb.is_empty() {
                    continue;
                }
                let stream = proc.links[peer].as_mut().expect("link to peer");
                // A scheduled tear caps every write syscall, so the peer
                // reads the round's envelopes in worst-case fragments;
                // the loop still drains the full buffer (delivery is
                // preserved, only the fragmentation changes).
                let flushed = match tear {
                    Some(chunk) => {
                        let mut torn = ChunkedWriter::new(stream, chunk);
                        wb.flush_into(&mut torn)
                    }
                    None => wb.flush_into(stream),
                };
                match flushed {
                    Ok(p) => progressed |= p,
                    Err(e) => {
                        let node = proc
                            .nodes
                            .iter()
                            .map(RoundCore::id)
                            .next()
                            .unwrap_or(NodeId(0));
                        fail!(
                            node,
                            format!("mesh proc {} write to proc {peer}: {e}", proc.index)
                        );
                    }
                }
            }

            let all_sent = out.iter().all(WriteBuf::is_empty);
            let all_ready = proc
                .nodes
                .iter()
                .filter(|n| n.is_active())
                .all(RoundCore::ready);
            if all_sent && all_ready {
                break;
            }

            // Drain readable sockets into the decoders, envelopes into
            // the destination cores.
            poll.poll(&mut events, Some(POLL_SLICE)).expect("poll");
            for event in &events {
                let peer = event.token().0;
                let stream = proc.links[peer].as_mut().expect("link to peer");
                loop {
                    match io::Read::read(stream, &mut read_buf) {
                        Ok(0) => break, // peer closed; its frames are all in
                        Ok(k) => {
                            dec[peer].extend(&read_buf[..k]);
                            progressed = true;
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                        Err(e) => {
                            let node = proc
                                .nodes
                                .iter()
                                .map(RoundCore::id)
                                .next()
                                .unwrap_or(NodeId(0));
                            fail!(
                                node,
                                format!("mesh proc {} read from proc {peer}: {e}", proc.index)
                            );
                        }
                    }
                    // One burst per event is enough; the next poll
                    // re-reports the socket if more is queued.
                    break;
                }
                loop {
                    match dec[peer].next() {
                        Ok(Some((dst, frame))) => {
                            if dst.index() % proc.procs != proc.index {
                                let node = proc
                                    .nodes
                                    .iter()
                                    .map(RoundCore::id)
                                    .next()
                                    .unwrap_or(NodeId(0));
                                fail!(
                                    node,
                                    format!(
                                        "mesh proc {} got an envelope for node {dst} owned by proc {}",
                                        proc.index,
                                        dst.index() % proc.procs
                                    )
                                );
                            }
                            let slot = proc.slot(dst);
                            if let Some(dedup) = dedups.get_mut(slot) {
                                if !dedup.admit(&frame) {
                                    continue;
                                }
                            }
                            if let Err(err) = proc.nodes[slot].feed(frame) {
                                fail!(dst, err);
                            }
                        }
                        Ok(None) => break,
                        Err(e) => {
                            let node = proc
                                .nodes
                                .iter()
                                .map(RoundCore::id)
                                .next()
                                .unwrap_or(NodeId(0));
                            fail!(
                                node,
                                format!("mesh proc {} envelope from proc {peer}: {e}", proc.index)
                            );
                        }
                    }
                }
            }

            if progressed {
                last_progress = Instant::now();
            } else if last_progress.elapsed() >= proc.recv_timeout {
                let stalled = proc.nodes.iter().find(|n| n.is_active() && !n.ready());
                match stalled {
                    Some(node) => fail!(
                        node.id(),
                        format!(
                            "node {} timed out collecting round {}: got {} of {} frames \
                             (mesh proc {} waited {:?})",
                            node.id(),
                            node.round(),
                            node.received(),
                            node.expect(),
                            proc.index,
                            proc.recv_timeout
                        )
                    ),
                    None => {
                        let node = proc
                            .nodes
                            .iter()
                            .map(RoundCore::id)
                            .next()
                            .unwrap_or(NodeId(0));
                        fail!(
                            node,
                            format!(
                                "mesh proc {} timed out flushing {} staged bytes after {:?}",
                                proc.index,
                                out.iter().map(|w| !w.is_empty() as usize).sum::<usize>(),
                                proc.recv_timeout
                            )
                        )
                    }
                }
            }
        }

        // Phase 4: close the round on every active core.
        for node in proc.nodes.iter_mut().filter(|n| n.is_active()) {
            if let Err(err) = node.end_round() {
                let id = node.id();
                fail!(id, err);
            }
        }
    }

    let _ = report_tx.send(ProcReport {
        wire_bytes,
        frames_sent,
        states: proc
            .nodes
            .into_iter()
            .map(|n| (n.id(), n.into_state()))
            .collect(),
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftc_sim::adversary::{DeliveryFilter, EagerCrash, FaultPlan, NoFaults, ScriptedCrash};
    use ftc_sim::engine::run;
    use ftc_sim::protocol::{Ctx, Incoming};

    struct Chatter {
        heard: u64,
        rounds: u32,
    }

    impl Protocol for Chatter {
        type Msg = u64;
        fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
            ctx.broadcast(0);
        }
        fn on_round(&mut self, ctx: &mut Ctx<'_, u64>, inbox: &[Incoming<u64>]) {
            self.heard += inbox.iter().map(|m| m.msg + 1).sum::<u64>();
            self.rounds += 1;
            if self.rounds < 3 {
                ctx.broadcast(u64::from(ctx.round()));
            }
        }
        fn is_terminated(&self) -> bool {
            self.rounds >= 3
        }
    }

    fn chatter(_: NodeId) -> Chatter {
        Chatter {
            heard: 0,
            rounds: 0,
        }
    }

    fn assert_matches_engine(net: &NetRunResult<Chatter>, sim: &RunResult<Chatter>) {
        assert_eq!(net.run.metrics.msgs_sent, sim.metrics.msgs_sent);
        assert_eq!(net.run.metrics.msgs_delivered, sim.metrics.msgs_delivered);
        assert_eq!(net.run.metrics.bits_sent, sim.metrics.bits_sent);
        assert_eq!(net.run.metrics.rounds, sim.metrics.rounds);
        assert_eq!(net.run.crashed_at, sim.crashed_at);
        let net_heard: Vec<u64> = net.run.states.iter().map(|s| s.heard).collect();
        let sim_heard: Vec<u64> = sim.states.iter().map(|s| s.heard).collect();
        assert_eq!(net_heard, sim_heard, "per-node observations diverged");
    }

    #[test]
    fn mesh_replays_the_engine_fault_free_at_any_proc_count() {
        let cfg = SimConfig::new(16).seed(5).max_rounds(10);
        let sim = run(&cfg, chatter, &mut NoFaults);
        for procs in [1, 2, 5, 16] {
            let net = run_over_mesh(&cfg, procs, chatter, &mut NoFaults).expect("fabric");
            assert_matches_engine(&net, &sim);
            assert!(net.net.frames_sent > 0);
            assert_eq!(net.run.metrics.wire_bytes, net.net.wire_bytes);
        }
    }

    #[test]
    fn mesh_replays_the_engine_on_sparse_topologies() {
        use ftc_sim::topology::Topology;
        // The gated fabric (sockets only where a model edge crosses
        // between proc slices) must not change a single bit of the run,
        // at any proc count.
        for topology in [
            Topology::DiameterTwo { clusters: 3 },
            Topology::RandomRegular { d: 4 },
        ] {
            let cfg = SimConfig::new(16)
                .seed(21)
                .max_rounds(10)
                .topology(topology.clone());
            let sim = run(&cfg, chatter, &mut NoFaults);
            for procs in [1, 3, 8] {
                let net = run_over_mesh(&cfg, procs, chatter, &mut NoFaults).expect("fabric");
                assert_matches_engine(&net, &sim);
            }
        }
    }

    #[test]
    fn gated_fabric_skips_proc_pairs_with_no_crossing_edge() {
        use ftc_sim::topology::Topology;
        use std::sync::Arc;
        // Two disjoint components {0,1} and {2,3} on 4 procs (one node
        // per proc): only pairs (0,1) and (2,3) ever share traffic, so
        // only they get sockets — and the run still replays the engine.
        let split = Topology::Explicit {
            adjacency: Arc::new(vec![vec![1], vec![0], vec![3], vec![2]]),
        };
        let cfg = SimConfig::new(4)
            .seed(2)
            .max_rounds(6)
            .topology(split.clone());
        let links = build_links(&cfg, 4).expect("fabric");
        for (p, mine) in links.iter().enumerate() {
            for (q, link) in mine.iter().enumerate() {
                let expect = matches!((p.min(q), p.max(q)), (0, 1) | (2, 3));
                assert_eq!(link.is_some(), expect, "pair ({p},{q})");
            }
        }
        let sim = run(&cfg, chatter, &mut NoFaults);
        let net = run_over_mesh(&cfg, 4, chatter, &mut NoFaults).expect("fabric");
        assert_matches_engine(&net, &sim);
    }

    #[test]
    fn mesh_replays_the_engine_under_crashes_and_filters() {
        let plan = FaultPlan::new()
            .crash(NodeId(2), 1, DeliveryFilter::KeepFirst(3))
            .crash(
                NodeId(5),
                0,
                DeliveryFilter::DeliverEachWithProbability(0.5),
            );
        let cfg = SimConfig::new(12).seed(3).max_rounds(8);
        let sim = run(&cfg, chatter, &mut ScriptedCrash::new(plan.clone()));
        for procs in [1, 3] {
            let net = run_over_mesh(&cfg, procs, chatter, &mut ScriptedCrash::new(plan.clone()))
                .expect("fabric");
            assert_matches_engine(&net, &sim);
        }
    }

    #[test]
    fn mesh_wire_accounting_is_procs_invariant_and_matches_channel() {
        let cfg = SimConfig::new(24).seed(9).max_rounds(12);
        let channel = ftc_net::sync::run_over_channel(&cfg, 3, chatter, &mut EagerCrash::new(4));
        for procs in [1, 2, 6] {
            let net = run_over_mesh(&cfg, procs, chatter, &mut EagerCrash::new(4)).expect("fabric");
            assert_eq!(net.net.wire_bytes, channel.net.wire_bytes);
            assert_eq!(net.net.frames_sent, channel.net.frames_sent);
        }
    }

    #[test]
    fn wire_faults_are_model_invisible_on_the_mesh() {
        use ftc_net::fault::{WireFaultKind, WireFaultPlan};
        // Crash schedule plus wire chaos — reorder, duplicate (including
        // the crashing node's crash-round burst), torn writes, delay.
        // Delivery-preserving faults must leave the model result and the
        // byte accounting bit-identical to the engine and the clean run,
        // at every proc count.
        let plan = FaultPlan::new().crash(NodeId(2), 1, DeliveryFilter::KeepFirst(3));
        let cfg = SimConfig::new(12).seed(3).max_rounds(8);
        let sim = run(&cfg, chatter, &mut ScriptedCrash::new(plan.clone()));
        let clean =
            run_over_mesh(&cfg, 2, chatter, &mut ScriptedCrash::new(plan.clone())).expect("fabric");
        let wire = WireFaultPlan::new(23)
            .fault(NodeId(0), 0, WireFaultKind::Reorder)
            .fault(NodeId(1), 0, WireFaultKind::Duplicate)
            .fault(NodeId(2), 1, WireFaultKind::Duplicate)
            .fault(NodeId(2), 1, WireFaultKind::Reorder)
            .fault(NodeId(3), 1, WireFaultKind::Tear { chunk: 1 })
            .fault(NodeId(4), 2, WireFaultKind::Delay { micros: 200 });
        for procs in [1, 3] {
            let net = run_over_mesh_faulty(
                &cfg,
                procs,
                chatter,
                &mut ScriptedCrash::new(plan.clone()),
                &wire,
            )
            .expect("fabric");
            assert_matches_engine(&net, &sim);
            assert_eq!(net.net.wire_bytes, clean.net.wire_bytes);
            assert_eq!(net.net.frames_sent, clean.net.frames_sent);
        }
    }

    #[test]
    fn repeated_heights_replay_with_a_mid_broadcast_crash() {
        let cfg = SimConfig::new(10).seed(21).max_rounds(8);
        let plan = FaultPlan::new().crash(NodeId(3), 1, DeliveryFilter::KeepFirst(2));
        let sim = run(&cfg, chatter, &mut ScriptedCrash::new(plan.clone()));
        for height in [0, 1, 7] {
            let net = run_over_mesh_at_height(
                &cfg,
                3,
                chatter,
                &mut ScriptedCrash::new(plan.clone()),
                RECV_TIMEOUT,
                height,
            )
            .expect("fabric");
            assert_matches_engine(&net, &sim);
        }
    }

    #[test]
    fn recv_timeout_reports_the_stalled_node_instead_of_deadlocking() {
        // The watchdog is no-progress-based, so a healthy run never trips
        // it; starve one proc loop directly: promise its node a frame
        // (expect = 1) that no peer ever sends.
        let cfg = SimConfig::new(2).seed(1).max_rounds(4);
        let links = fabric::build(2).expect("fabric");
        let mut link_iter = links.into_iter();
        let my_links = link_iter.next().unwrap();
        let _peer_links = link_iter.next().unwrap(); // held open: no EOF
        let proc = Proc {
            index: 0,
            procs: 2,
            nodes: vec![RoundCore::new(&cfg, NodeId(0), chatter(NodeId(0)), 0)],
            links: my_links,
            batches: {
                let (tx, rx) = channel();
                tx.send(vec![(
                    NodeId(0),
                    Command {
                        frames: Vec::new(),
                        expect: 1,
                        crashed: false,
                        stop: false,
                    },
                )])
                .unwrap();
                std::mem::forget(tx);
                rx
            },
            recv_timeout: Duration::from_millis(50),
        };
        let (submit_tx, submit_rx) = channel();
        let (report_tx, _report_rx) = channel();
        let handle = thread::spawn(move || proc_loop(proc, submit_tx, report_tx, None));
        let activation = submit_rx.recv().expect("activation submission");
        assert!(activation.failed.is_none());
        let failure = submit_rx.recv().expect("watchdog submission");
        let msg = failure.failed.expect("the starved proc must fail");
        assert!(
            msg.contains("node n0 timed out collecting round 0: got 0 of 1 frames"),
            "unexpected diagnostic: {msg}"
        );
        handle.join().unwrap();
    }

    #[test]
    fn large_network_runs_on_few_sockets() {
        // n = 512 on 4 procs: 6 sockets total where the per-edge TCP mesh
        // would need 130,816. The run must still replay the engine.
        let cfg = SimConfig::new(512).seed(2).max_rounds(6);
        let sim = run(&cfg, chatter, &mut NoFaults);
        let net = run_over_mesh(&cfg, 4, chatter, &mut NoFaults).expect("fabric");
        assert_matches_engine(&net, &sim);
    }
}
