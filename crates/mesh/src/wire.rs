//! The multiplexed envelope layer: many node pairs on one socket.
//!
//! A proc-pair socket carries traffic for every `(src, dst)` node pair
//! whose endpoints live on those two procs, so each [`Frame`] is wrapped
//! in an envelope that names its destination node:
//!
//! ```text
//! [dst: u32 LE] [frame bytes — the ftc-net length-prefixed codec]
//! ```
//!
//! `src`, `round`, and `height` already live inside the frame header; the
//! envelope adds only the 4-byte `dst` word the demultiplexer needs.
//! Model byte accounting (`wire_bytes`) deliberately charges
//! [`Frame::encoded_len`] and *not* the envelope word: the frame is what
//! the complete-network model pays for, the envelope is an artifact of
//! how this runtime packs node pairs onto sockets, and excluding it keeps
//! `wire_bytes` bit-identical across the channel, TCP, and mesh runtimes
//! at any process count.
//!
//! Writes are coalesced: a proc stages a whole round's envelopes for one
//! peer proc into a [`WriteBuf`] and flushes it with few large
//! nonblocking writes, instead of one syscall per protocol message.
//! Reads mirror that: whatever burst `read` returns goes into an
//! [`EnvelopeDecoder`], which hands back complete envelopes and keeps
//! partial tails for the next burst.

use std::io::{self, Write};

use ftc_net::frame::{Frame, HEADER_LEN, MAX_FRAME_LEN};
use ftc_sim::ids::NodeId;

/// Envelope bytes preceding the frame (the `dst` word).
pub const ENVELOPE_PREFIX: usize = 4;

/// Appends one envelope (`dst` word + encoded frame) to `out`.
pub fn encode_envelope(dst: NodeId, frame: &Frame, out: &mut Vec<u8>) {
    out.extend_from_slice(&dst.0.to_le_bytes());
    frame.encode(out);
}

/// Incremental decoder for a stream of envelopes arriving in arbitrary
/// read-sized bursts.
#[derive(Debug, Default)]
pub struct EnvelopeDecoder {
    buf: Vec<u8>,
    /// Consumed prefix of `buf`; compacted periodically instead of on
    /// every envelope so decoding stays O(bytes).
    pos: usize,
}

impl EnvelopeDecoder {
    /// A fresh decoder with nothing buffered.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one burst of bytes from the socket.
    pub fn extend(&mut self, bytes: &[u8]) {
        // Compact once the consumed prefix dominates, amortized O(1).
        if self.pos > 4096 && self.pos * 2 > self.buf.len() {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet decoded (partial envelope tail).
    pub fn pending_bytes(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Decodes the next complete envelope, if one is buffered.
    ///
    /// Returns `Ok(None)` when more bytes are needed, and
    /// [`io::ErrorKind::InvalidData`] on a corrupt frame length — the
    /// same validation (and the same `MAX_FRAME_LEN` allocation guard) as
    /// the underlying frame codec.
    #[allow(clippy::should_implement_trait)] // fallible: Result<Option<_>>, not an Iterator
    pub fn next(&mut self) -> io::Result<Option<(NodeId, Frame)>> {
        let avail = &self.buf[self.pos..];
        if avail.len() < ENVELOPE_PREFIX + 4 {
            return Ok(None);
        }
        let dst = u32::from_le_bytes(avail[..4].try_into().unwrap());
        let len = u32::from_le_bytes(avail[4..8].try_into().unwrap()) as usize;
        if !(HEADER_LEN..=MAX_FRAME_LEN).contains(&len) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("corrupt frame length {len} in envelope"),
            ));
        }
        let total = ENVELOPE_PREFIX + 4 + len;
        if avail.len() < total {
            return Ok(None);
        }
        let mut r = &avail[ENVELOPE_PREFIX..total];
        let frame = Frame::read_from(&mut r)?.expect("length checked above");
        self.pos += total;
        Ok(Some((NodeId(dst), frame)))
    }
}

/// A per-peer coalescing write buffer flushed with nonblocking writes.
#[derive(Debug, Default)]
pub struct WriteBuf {
    buf: Vec<u8>,
    pos: usize,
}

impl WriteBuf {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stages one envelope for the peer this buffer belongs to.
    pub fn stage(&mut self, dst: NodeId, frame: &Frame) {
        encode_envelope(dst, frame, &mut self.buf);
    }

    /// Nothing staged or everything flushed.
    pub fn is_empty(&self) -> bool {
        self.pos >= self.buf.len()
    }

    /// Writes as much staged data as the socket accepts right now.
    ///
    /// Returns whether any bytes moved. `WouldBlock` is backpressure, not
    /// an error: the caller keeps draining its own inbound sockets (so
    /// peers can make progress) and retries. Hard write errors propagate —
    /// in this runtime every socket peer lives in the same OS process, so
    /// a failed write is a bug, never a model event.
    pub fn flush_into<W: Write>(&mut self, w: &mut W) -> io::Result<bool> {
        let mut progressed = false;
        while self.pos < self.buf.len() {
            match w.write(&self.buf[self.pos..]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ))
                }
                Ok(n) => {
                    self.pos += n;
                    progressed = true;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        if self.is_empty() {
            self.buf.clear();
            self.pos = 0;
        }
        Ok(progressed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(round: u32, src: u32, seq: u32, payload: &[u8]) -> Frame {
        Frame {
            height: 0,
            round,
            src: NodeId(src),
            seq,
            payload: payload.to_vec(),
        }
    }

    #[test]
    fn envelopes_roundtrip_byte_by_byte() {
        let items = [
            (NodeId(3), frame(0, 1, 0, b"hello")),
            (NodeId(900_000), frame(7, 2, 4, b"")),
            (NodeId(0), frame(1, 5, 1, &[0xEE; 200])),
        ];
        let mut stream = Vec::new();
        for (dst, f) in &items {
            encode_envelope(*dst, f, &mut stream);
        }
        // Feed one byte at a time — the worst read fragmentation possible.
        let mut dec = EnvelopeDecoder::new();
        let mut got = Vec::new();
        for b in &stream {
            dec.extend(std::slice::from_ref(b));
            while let Some(pair) = dec.next().unwrap() {
                got.push(pair);
            }
        }
        assert_eq!(got, items.to_vec());
        assert_eq!(dec.pending_bytes(), 0);
    }

    #[test]
    fn corrupt_length_in_envelope_is_an_error() {
        let mut dec = EnvelopeDecoder::new();
        let mut bad = Vec::new();
        bad.extend_from_slice(&7u32.to_le_bytes()); // dst
        bad.extend_from_slice(&3u32.to_le_bytes()); // len < HEADER_LEN
        dec.extend(&bad);
        assert!(dec.next().is_err());
    }

    /// Deterministic xorshift64* — the same fuzz driver idiom as the
    /// `ftc-net` frame codec tests.
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        fn below(&mut self, n: u64) -> u64 {
            self.next() % n
        }
    }

    fn random_stream(rng: &mut Rng, frames: usize) -> (Vec<(NodeId, Frame)>, Vec<u8>) {
        let mut items = Vec::new();
        let mut stream = Vec::new();
        for _ in 0..frames {
            let payload: Vec<u8> = (0..rng.below(64)).map(|_| rng.next() as u8).collect();
            let item = (
                NodeId(rng.below(1 << 20) as u32),
                frame(
                    rng.below(100) as u32,
                    rng.below(4096) as u32,
                    rng.below(1 << 16) as u32,
                    &payload,
                ),
            );
            encode_envelope(item.0, &item.1, &mut stream);
            items.push(item);
        }
        (items, stream)
    }

    #[test]
    fn fuzz_split_streams_decode_exactly() {
        // Valid envelope streams fed in adversarial read-sized fragments
        // must decode to exactly the encoded sequence — the torn-frame
        // path a scheduled `Tear` wire fault exercises on a live socket.
        let mut rng = Rng(0x5EED_0001);
        for _ in 0..200 {
            let count = 1 + rng.below(8) as usize;
            let (items, stream) = random_stream(&mut rng, count);
            let mut dec = EnvelopeDecoder::new();
            let mut got = Vec::new();
            let mut pos = 0;
            while pos < stream.len() {
                let chunk = 1 + rng.below(13) as usize;
                let end = (pos + chunk).min(stream.len());
                dec.extend(&stream[pos..end]);
                pos = end;
                while let Some(pair) = dec.next().expect("valid stream") {
                    got.push(pair);
                }
            }
            assert_eq!(got, items);
            assert_eq!(dec.pending_bytes(), 0);
        }
    }

    #[test]
    fn fuzz_duplicated_and_interleaved_streams_decode_exactly() {
        // A duplicated stream (every envelope twice — the wire form of a
        // `Duplicate` fault) and two independent streams interleaved at
        // arbitrary burst boundaries (two peers sharing a decoder's
        // lifetime) both decode exactly: dedup is the *adapter's* job,
        // the decoder reports precisely what arrived.
        let mut rng = Rng(0x5EED_0002);
        for _ in 0..100 {
            let count = 1 + rng.below(5) as usize;
            let (items, stream) = random_stream(&mut rng, count);
            let mut doubled = Vec::new();
            for (dst, f) in &items {
                encode_envelope(*dst, f, &mut doubled);
                encode_envelope(*dst, f, &mut doubled);
            }
            let mut dec = EnvelopeDecoder::new();
            // Feed the doubled stream, then the original again, byte by
            // byte in random-sized bursts.
            for chunk in doubled.chunks(1 + rng.below(7) as usize) {
                dec.extend(chunk);
            }
            for chunk in stream.chunks(1 + rng.below(7) as usize) {
                dec.extend(chunk);
            }
            let mut got = Vec::new();
            while let Some(pair) = dec.next().expect("valid stream") {
                got.push(pair);
            }
            let mut expected = Vec::new();
            for item in &items {
                expected.push(item.clone());
                expected.push(item.clone());
            }
            expected.extend(items.iter().cloned());
            assert_eq!(got, expected);
        }
    }

    #[test]
    fn fuzz_garbage_streams_error_or_starve_but_never_panic() {
        // Arbitrary bytes through the decoder: every outcome must be a
        // clean `Ok(Some)`, `Ok(None)`, or `Err` — no panic, no runaway
        // allocation (the MAX_FRAME_LEN guard), regardless of how the
        // garbage fragments.
        let mut rng = Rng(0x5EED_0003);
        for _ in 0..300 {
            let len = rng.below(160) as usize;
            let garbage: Vec<u8> = (0..len).map(|_| rng.next() as u8).collect();
            let mut dec = EnvelopeDecoder::new();
            let mut pos = 0;
            'outer: while pos < garbage.len() {
                let end = (pos + 1 + rng.below(9) as usize).min(garbage.len());
                dec.extend(&garbage[pos..end]);
                pos = end;
                loop {
                    match dec.next() {
                        Ok(Some(_)) => {}
                        Ok(None) => break,
                        Err(_) => break 'outer, // corrupt length: done
                    }
                }
            }
        }
    }

    #[test]
    fn fuzz_valid_prefix_then_corruption_yields_prefix_then_error() {
        // A valid stream with one length word smashed afterwards: the
        // decoder must hand back every envelope before the corruption,
        // then report InvalidData — exact-or-error, nothing silently
        // skipped.
        let mut rng = Rng(0x5EED_0004);
        for _ in 0..100 {
            let count = 1 + rng.below(6) as usize;
            let (items, mut stream) = random_stream(&mut rng, count);
            stream.extend_from_slice(&9u32.to_le_bytes()); // dst of a new envelope
            stream.extend_from_slice(&3u32.to_le_bytes()); // len < HEADER_LEN: corrupt
            let mut dec = EnvelopeDecoder::new();
            for chunk in stream.chunks(1 + rng.below(11) as usize) {
                dec.extend(chunk);
            }
            let mut got = Vec::new();
            let err = loop {
                match dec.next() {
                    Ok(Some(pair)) => got.push(pair),
                    Ok(None) => panic!("corruption must surface as an error"),
                    Err(e) => break e,
                }
            };
            assert_eq!(got, items, "the valid prefix decodes exactly");
            assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        }
    }

    #[test]
    fn write_buf_coalesces_and_survives_short_writes() {
        /// Accepts at most 5 bytes per call, then signals WouldBlock once.
        struct Throttled {
            sink: Vec<u8>,
            starve: bool,
        }
        impl Write for Throttled {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                if self.starve {
                    self.starve = false;
                    return Err(io::Error::new(io::ErrorKind::WouldBlock, "full"));
                }
                self.starve = true;
                let k = buf.len().min(5);
                self.sink.extend_from_slice(&buf[..k]);
                Ok(k)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }

        let mut wb = WriteBuf::new();
        let items = [
            (NodeId(1), frame(2, 0, 0, b"abc")),
            (NodeId(2), frame(2, 0, 1, b"defgh")),
        ];
        for (dst, f) in &items {
            wb.stage(*dst, f);
        }
        let mut w = Throttled {
            sink: Vec::new(),
            starve: false,
        };
        while !wb.is_empty() {
            wb.flush_into(&mut w).unwrap();
        }
        let mut dec = EnvelopeDecoder::new();
        dec.extend(&w.sink);
        let mut got = Vec::new();
        while let Some(pair) = dec.next().unwrap() {
            got.push(pair);
        }
        assert_eq!(got, items.to_vec());
    }
}
