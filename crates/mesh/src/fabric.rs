//! The proc-pair socket fabric: O(procs²) sockets, independent of n.
//!
//! The per-edge TCP transport needs `n·(n-1)/2` sockets and `n·(n-1)`
//! reader threads — fatal past n≈32. The mesh runtime instead opens
//! exactly **one localhost TCP connection per unordered pair of procs**
//! (`procs·(procs-1)/2` in total, [`socket_count`]) and multiplexes every
//! node pair whose endpoints live on those procs over it, so a 1024-node
//! cluster on 4 procs uses 6 sockets where the per-edge mesh would need
//! 523,776.
//!
//! Setup mirrors `ftc_net::tcp`: one listener per proc, the upper
//! triangle dialed sequentially with a 4-byte hello naming the dialing
//! proc, `TCP_NODELAY` everywhere. Streams are then handed to the
//! nonblocking [`mio`] layer — the readiness loop owns them from there.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};

/// Upper bound on the proc count. Sockets scale as O(procs²), and a proc
/// maps onto an OS thread with its own readiness loop — past this, more
/// procs only add scheduler pressure.
pub const MAX_MESH_PROCS: usize = 64;

/// The number of sockets a `procs`-proc fabric opens: one per unordered
/// proc pair. This is the whole point — O(procs²), not O(n²).
pub fn socket_count(procs: usize) -> usize {
    procs * (procs - 1) / 2
}

/// One proc's view of the fabric: its socket to every peer proc (`None`
/// at its own index).
pub type ProcLinks = Vec<Option<mio::net::TcpStream>>;

/// Builds the localhost socket fabric for `procs` procs.
///
/// Returns one [`ProcLinks`] per proc. Fails with
/// [`io::ErrorKind::InvalidInput`] for `procs == 0` or
/// `procs > `[`MAX_MESH_PROCS`], and propagates socket errors otherwise.
/// A single-proc fabric is valid and opens no sockets (all traffic is
/// proc-local).
pub fn build(procs: usize) -> io::Result<Vec<ProcLinks>> {
    let links = build_where(procs, |_, _| true)?;
    // The load-bearing scaling claim, enforced rather than assumed.
    let opened = links
        .iter()
        .map(|mine| mine.iter().filter(|l| l.is_some()).count())
        .sum::<usize>()
        / 2;
    assert_eq!(
        opened,
        socket_count(procs),
        "fabric must open exactly one socket per proc pair"
    );
    Ok(links)
}

/// Like [`build`], but only opens a socket for the proc pairs `(u, v)`,
/// `u < v`, where `need(u, v)` is true — the topology-aware fabric. A
/// pair of procs with no model edge crossing between them shares no
/// traffic, so it gets no socket; writes towards a missing link are a
/// runtime bug and panic in the mesh loop rather than vanishing.
pub fn build_where(
    procs: usize,
    need: impl Fn(usize, usize) -> bool,
) -> io::Result<Vec<ProcLinks>> {
    if procs == 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "a mesh needs at least one proc",
        ));
    }
    if procs > MAX_MESH_PROCS {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("mesh capped at {MAX_MESH_PROCS} procs (sockets scale as procs²)"),
        ));
    }
    let listeners: Vec<TcpListener> = (0..procs)
        .map(|_| TcpListener::bind("127.0.0.1:0"))
        .collect::<io::Result<_>>()?;
    let addrs: Vec<SocketAddr> = listeners
        .iter()
        .map(|l| l.local_addr())
        .collect::<io::Result<_>>()?;

    let mut links: Vec<ProcLinks> = (0..procs)
        .map(|_| (0..procs).map(|_| None).collect())
        .collect();
    for v in 1..procs {
        // Indexing is the clearest shape here: each iteration writes both
        // halves of the pair, links[u][v] and links[v][u].
        #[allow(clippy::needless_range_loop)]
        for u in 0..v {
            if !need(u, v) {
                continue;
            }
            let dialed = TcpStream::connect(addrs[v])?;
            dialed.set_nodelay(true)?;
            (&dialed).write_all(&(u as u32).to_le_bytes())?;
            let (accepted, _) = listeners[v].accept()?;
            accepted.set_nodelay(true)?;
            let mut hello = [0u8; 4];
            (&accepted).read_exact(&mut hello)?;
            let who = u32::from_le_bytes(hello) as usize;
            if who != u {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("fabric handshake mismatch: expected proc {u}, peer says {who}"),
                ));
            }
            links[u][v] = Some(mio::net::TcpStream::from_std(dialed));
            links[v][u] = Some(mio::net::TcpStream::from_std(accepted));
        }
    }
    Ok(links)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn socket_count_is_quadratic_in_procs_only() {
        assert_eq!(socket_count(1), 0);
        assert_eq!(socket_count(2), 1);
        assert_eq!(socket_count(4), 6);
        assert_eq!(socket_count(8), 28);
    }

    #[test]
    fn fabric_links_form_one_connection_per_pair() {
        let links = build(4).unwrap();
        for (p, mine) in links.iter().enumerate() {
            assert!(mine[p].is_none(), "no self-link");
            let peers = mine.iter().filter(|l| l.is_some()).count();
            assert_eq!(peers, 3, "proc {p} links to every other proc");
        }
        // Both halves of each pair are ends of the same connection.
        let mut a = links[0][1].as_ref().unwrap();
        let mut b = links[1][0].as_ref().unwrap();
        a.write_all(b"pair").unwrap();
        let mut buf = [0u8; 4];
        // Nonblocking read: spin briefly until the kernel moves the bytes.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            match b.read(&mut buf) {
                Ok(4) => break,
                Ok(_) | Err(_) if std::time::Instant::now() < deadline => {
                    std::thread::sleep(std::time::Duration::from_millis(1))
                }
                other => panic!("pair link never delivered: {other:?}"),
            }
        }
        assert_eq!(&buf, b"pair");
    }

    #[test]
    fn gated_fabric_opens_only_the_requested_pairs() {
        // Ring of 4 procs: pairs (0,1), (1,2), (2,3), (0,3) — the
        // diagonal pairs (0,2) and (1,3) carry no traffic and get no
        // socket.
        let ring = |u: usize, v: usize| v - u == 1 || (u == 0 && v == 3);
        let links = build_where(4, ring).unwrap();
        for (p, mine) in links.iter().enumerate() {
            for (q, link) in mine.iter().enumerate() {
                let (lo, hi) = (p.min(q), p.max(q));
                let expect = p != q && ring(lo, hi);
                assert_eq!(link.is_some(), expect, "pair ({p},{q})");
            }
        }
    }

    #[test]
    fn single_proc_fabric_is_socketless() {
        let links = build(1).unwrap();
        assert_eq!(links.len(), 1);
        assert!(links[0].iter().all(Option::is_none));
    }

    #[test]
    fn size_limits_are_enforced() {
        assert_eq!(build(0).unwrap_err().kind(), io::ErrorKind::InvalidInput);
        assert_eq!(
            build(MAX_MESH_PROCS + 1).unwrap_err().kind(),
            io::ErrorKind::InvalidInput
        );
    }
}
