//! # ftc-mesh — the multiplexed socket runtime
//!
//! The fourth execution substrate for the ftc protocol stack, built for
//! real cluster runs at n in the hundreds and thousands where the
//! per-edge TCP transport (one socket and two reader threads per node
//! pair) stops being physically possible.
//!
//! The design is two cleanly separated layers:
//!
//! - **Layer 1 — the sans-I/O round core.** [`RoundCore`] (per node) and
//!   [`CoordinatorCore`] (control plane) are pure state machines: feed
//!   inbound frames in, poll outbound frames and round transitions out.
//!   No sockets, no threads, no clocks — unit-testable in isolation and
//!   shared by *every* runtime. They physically live in
//!   [`ftc_net::core`] so the channel and TCP runtimes run on the same
//!   core (that is the point: one adjudication path, bit-identical
//!   results); this crate re-exports them as its Layer 1.
//! - **Layer 2 — the multiplexed runtime.** [`fabric`] opens exactly one
//!   localhost socket per unordered *process* pair — O(procs²) sockets,
//!   independent of n — and [`runtime`] drives many node cores per
//!   process over it with a readiness loop: [`wire`] envelopes
//!   (`[dst][frame]`) are coalesced per peer into large nonblocking
//!   writes, and reads are drained into incremental decoders whenever
//!   the poller reports data. Backpressure comes from the kernel socket
//!   buffers (`WouldBlock` ⇒ drain reads, retry), never from unbounded
//!   queues.
//!
//! [`runtime::run_over_mesh`] is bit-identical to the engine, channel,
//! and TCP runtimes for the same `(SimConfig, seed)` — at any process
//! count. `tests/net_equivalence.rs` pins that four ways.

pub mod fabric;
pub mod runtime;
pub mod wire;

// Layer 1 of this crate: the sans-I/O round state machines, hosted in
// ftc-net so every runtime (channel, TCP, mesh) shares one control plane.
pub use ftc_net::core::{Command, CoordinatorCore, NodeStatus, RoundCore, RoundPlan, Submission};

/// Everything a cluster caller needs.
pub mod prelude {
    pub use crate::fabric::{socket_count, MAX_MESH_PROCS};
    pub use crate::runtime::{
        run_over_mesh, run_over_mesh_at_height, run_over_mesh_faulty, run_over_mesh_with,
    };
    pub use ftc_net::core::{
        Command, CoordinatorCore, NodeStatus, RoundCore, RoundPlan, Submission,
    };
}
