//! Explicit extensions of the two implicit protocols.
//!
//! Both papers' protocols solve the *implicit* problems; Sections IV-A and
//! V-A note that one extra broadcast round turns them explicit:
//!
//! * **Explicit leader election**: every settled candidate broadcasts the
//!   agreed leader rank to all `n−1` ports — `O(n·log n/α)` messages,
//!   `O(1)` extra rounds. All nodes then know the leader's identity.
//! * **Explicit agreement**: every decided candidate broadcasts the agreed
//!   bit — same cost. All nodes then hold the agreed value.
//!
//! The broadcast is performed by *all* candidates (not just the leader)
//! because any single candidate might crash mid-broadcast; with at least
//! one non-faulty candidate (Lemma 2) every alive node hears the result.

use ftc_sim::ids::Round;
use ftc_sim::prelude::*;

use crate::agreement::{AgreeNode, AgreeStatus};
use crate::leader_election::LeNode;
use crate::messages::{AgreeMsg, LeMsg};
use crate::params::Params;
use crate::rank::Rank;

/// Who performs the explicit announcement broadcast.
///
/// The paper has all candidates broadcast (any single node might crash
/// mid-broadcast); `LeaderOnly` is the tempting cheaper alternative that
/// the D7 ablation shows to be fragile: if the elected node crashes
/// after electing but before (or during) its broadcast, nobody learns
/// the result.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum AnnouncePolicy {
    /// Every settled candidate broadcasts (paper; crash-safe).
    #[default]
    AllCandidates,
    /// Only the elected node broadcasts (cheaper; crash-fragile).
    LeaderOnly,
}

/// Leader election with the explicit final broadcast.
///
/// Wraps [`LeNode`]; after `announce_round` every settled candidate
/// broadcasts `Announce{leader}` and all nodes record the highest
/// announced rank as the leader.
#[derive(Clone, Debug)]
pub struct ExplicitLeNode {
    inner: LeNode,
    announce_round: Round,
    announced: bool,
    policy: AnnouncePolicy,
    /// The leader this node learned from announcements.
    known_leader: Option<Rank>,
}

impl ExplicitLeNode {
    /// Wraps a fresh implicit node; announcements fire at the end of the
    /// implicit round budget.
    pub fn new(params: Params) -> Self {
        Self::with_policy(params, AnnouncePolicy::AllCandidates)
    }

    /// Like [`ExplicitLeNode::new`] with an explicit announce policy
    /// (ablation D7).
    pub fn with_policy(params: Params, policy: AnnouncePolicy) -> Self {
        let announce_round = params.le_round_budget();
        ExplicitLeNode {
            inner: LeNode::new(params),
            announce_round,
            announced: false,
            policy,
            known_leader: None,
        }
    }

    /// Access to the wrapped implicit state.
    pub fn inner(&self) -> &LeNode {
        &self.inner
    }

    /// The leader rank this node ended up knowing (explicit output).
    pub fn known_leader(&self) -> Option<Rank> {
        self.known_leader.or(self.inner.leader_belief())
    }

    /// Total round budget including the announcement exchange.
    pub fn round_budget(params: &Params) -> u32 {
        params.le_round_budget() + 3
    }
}

impl Protocol for ExplicitLeNode {
    type Msg = LeMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, LeMsg>) {
        self.inner.on_start(ctx);
    }

    fn on_round(&mut self, ctx: &mut Ctx<'_, LeMsg>, inbox: &[Incoming<LeMsg>]) {
        // Intercept announcements; forward the rest to the implicit layer.
        let mut rest: Vec<Incoming<LeMsg>> = Vec::with_capacity(inbox.len());
        for inc in inbox {
            if let LeMsg::Announce { leader } = inc.msg {
                self.known_leader = Some(match self.known_leader {
                    Some(l) => l.max(leader),
                    None => leader,
                });
            } else {
                rest.push(inc.clone());
            }
        }
        self.inner.on_round(ctx, &rest);

        if ctx.round() == self.announce_round && !self.announced {
            self.announced = true;
            let may_announce = match self.policy {
                AnnouncePolicy::AllCandidates => {
                    self.inner.is_candidate() && self.inner.is_settled()
                }
                AnnouncePolicy::LeaderOnly => {
                    self.inner.status() == crate::leader_election::LeStatus::Elected
                }
            };
            if may_announce {
                if let Some(leader) = self.inner.leader_belief() {
                    self.known_leader = Some(self.known_leader.map_or(leader, |l| l.max(leader)));
                    ctx.broadcast(LeMsg::Announce { leader });
                }
            }
        }
    }

    fn is_terminated(&self) -> bool {
        // Cannot quiesce before the scheduled announcement.
        self.announced && self.inner.is_terminated()
    }

    fn is_inert(&self) -> bool {
        // The announcement fires at a fixed round regardless of traffic,
        // so the node must keep being activated until it has announced.
        self.announced && self.inner.is_inert()
    }
}

/// Agreement with the explicit final broadcast.
#[derive(Clone, Debug)]
pub struct ExplicitAgreeNode {
    inner: AgreeNode,
    announce_round: Round,
    announced: bool,
    /// The value this node learned from announcements.
    known_value: Option<bool>,
}

impl ExplicitAgreeNode {
    /// Wraps a fresh implicit node with the given input bit.
    pub fn new(params: Params, input_one: bool) -> Self {
        let announce_round = params.agreement_round_budget();
        ExplicitAgreeNode {
            inner: AgreeNode::new(params, input_one),
            announce_round,
            announced: false,
            known_value: None,
        }
    }

    /// Access to the wrapped implicit state.
    pub fn inner(&self) -> &AgreeNode {
        &self.inner
    }

    /// The agreed value this node ended up knowing (explicit output).
    /// Zero-announcements dominate one-announcements, mirroring the
    /// implicit protocol's bias.
    pub fn known_value(&self) -> Option<bool> {
        self.known_value.or(match self.inner.status() {
            AgreeStatus::Decided(v) => Some(v),
            AgreeStatus::Undecided => None,
        })
    }

    /// Total round budget including the announcement exchange.
    pub fn round_budget(params: &Params) -> u32 {
        params.agreement_round_budget() + 3
    }
}

impl Protocol for ExplicitAgreeNode {
    type Msg = AgreeMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, AgreeMsg>) {
        self.inner.on_start(ctx);
    }

    fn on_round(&mut self, ctx: &mut Ctx<'_, AgreeMsg>, inbox: &[Incoming<AgreeMsg>]) {
        let mut rest: Vec<Incoming<AgreeMsg>> = Vec::with_capacity(inbox.len());
        for inc in inbox {
            if let AgreeMsg::Announce(v) = inc.msg {
                // 0 beats 1, matching the implicit bias.
                self.known_value = Some(self.known_value.map_or(v, |k| k && v));
            } else {
                rest.push(inc.clone());
            }
        }
        self.inner.on_round(ctx, &rest);

        if ctx.round() == self.announce_round && !self.announced {
            self.announced = true;
            if let AgreeStatus::Decided(v) = self.inner.status() {
                self.known_value = Some(self.known_value.map_or(v, |k| k && v));
                ctx.broadcast(AgreeMsg::Announce(v));
            }
        }
    }

    fn is_terminated(&self) -> bool {
        self.announced && self.inner.is_terminated()
    }

    fn is_inert(&self) -> bool {
        self.announced && self.inner.is_inert()
    }
}

/// Outcome of an explicit leader election: did *every* alive node learn
/// the same leader?
#[derive(Clone, Debug)]
pub struct ExplicitLeOutcome {
    /// The leader all alive nodes agree on, if they do.
    pub leader: Option<Rank>,
    /// Number of alive nodes that know no leader.
    pub unaware: usize,
    /// Whether every alive node knows the same leader.
    pub success: bool,
}

impl ExplicitLeOutcome {
    /// Scores a finished explicit run.
    pub fn evaluate(result: &RunResult<ExplicitLeNode>) -> Self {
        let mut leaders: Vec<Option<Rank>> = Vec::new();
        for (_, s) in result.surviving_states() {
            leaders.push(s.known_leader());
        }
        let unaware = leaders.iter().filter(|l| l.is_none()).count();
        let distinct: std::collections::BTreeSet<Rank> =
            leaders.iter().flatten().copied().collect();
        let success = unaware == 0 && distinct.len() == 1;
        ExplicitLeOutcome {
            leader: (distinct.len() == 1).then(|| *distinct.first().unwrap()),
            unaware,
            success,
        }
    }
}

/// Outcome of an explicit agreement: did *every* alive node learn the same
/// value?
#[derive(Clone, Debug)]
pub struct ExplicitAgreeOutcome {
    /// The value all alive nodes agree on, if they do.
    pub value: Option<bool>,
    /// Number of alive nodes that know no value.
    pub unaware: usize,
    /// Whether every alive node knows the same value.
    pub success: bool,
}

impl ExplicitAgreeOutcome {
    /// Scores a finished explicit run.
    pub fn evaluate(result: &RunResult<ExplicitAgreeNode>) -> Self {
        let values: Vec<Option<bool>> = result
            .surviving_states()
            .map(|(_, s)| s.known_value())
            .collect();
        let unaware = values.iter().filter(|v| v.is_none()).count();
        let distinct: std::collections::BTreeSet<bool> = values.iter().flatten().copied().collect();
        let success = unaware == 0 && distinct.len() == 1;
        ExplicitAgreeOutcome {
            value: (distinct.len() == 1).then(|| *distinct.first().unwrap()),
            unaware,
            success,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_leader_reaches_every_alive_node() {
        let params = Params::new(128, 1.0).unwrap();
        let cfg = SimConfig::new(128)
            .seed(4)
            .max_rounds(ExplicitLeNode::round_budget(&params));
        let result = run(&cfg, |_| ExplicitLeNode::new(params.clone()), &mut NoFaults);
        let o = ExplicitLeOutcome::evaluate(&result);
        assert!(o.success, "{o:?}");
        assert!(o.leader.is_some());
    }

    #[test]
    fn explicit_leader_survives_crashes() {
        let params = Params::new(128, 0.5).unwrap();
        for seed in 0..5 {
            let cfg = SimConfig::new(128)
                .seed(seed)
                .max_rounds(ExplicitLeNode::round_budget(&params));
            let mut adv = RandomCrash::new(64, 30);
            let result = run(&cfg, |_| ExplicitLeNode::new(params.clone()), &mut adv);
            let o = ExplicitLeOutcome::evaluate(&result);
            assert!(o.success, "seed {seed}: {o:?}");
        }
    }

    #[test]
    fn explicit_agreement_reaches_every_alive_node() {
        let params = Params::new(128, 1.0).unwrap();
        let cfg = SimConfig::new(128)
            .seed(4)
            .max_rounds(ExplicitAgreeNode::round_budget(&params));
        let result = run(
            &cfg,
            |id| ExplicitAgreeNode::new(params.clone(), id.0 % 2 == 0),
            &mut NoFaults,
        );
        let o = ExplicitAgreeOutcome::evaluate(&result);
        assert!(o.success, "{o:?}");
        assert_eq!(o.value, Some(false), "zero must win");
    }

    #[test]
    fn explicit_agreement_survives_crashes() {
        let params = Params::new(128, 0.5).unwrap();
        for seed in 0..5 {
            let cfg = SimConfig::new(128)
                .seed(seed)
                .max_rounds(ExplicitAgreeNode::round_budget(&params));
            let mut adv = RandomCrash::new(64, 20);
            let result = run(
                &cfg,
                |id| ExplicitAgreeNode::new(params.clone(), id.0 < 4),
                &mut adv,
            );
            let o = ExplicitAgreeOutcome::evaluate(&result);
            assert!(o.success, "seed {seed}: {o:?}");
        }
    }

    #[test]
    fn d7_leader_only_announce_is_fragile() {
        // Elect, find the leader, then crash it just before the announce
        // round: LeaderOnly leaves the network uninformed, AllCandidates
        // does not.
        let params = Params::new(128, 0.5).unwrap();
        let probe_cfg = SimConfig::new(128)
            .seed(21)
            .max_rounds(ExplicitLeNode::round_budget(&params));
        let probe = run(
            &probe_cfg,
            |_| ExplicitLeNode::new(params.clone()),
            &mut NoFaults,
        );
        let leader = probe
            .all_states()
            .find(|(_, s)| s.inner().status() == crate::leader_election::LeStatus::Elected)
            .map(|(id, _)| id)
            .expect("probe elected a leader");

        let kill_round = params.le_round_budget() - 1;
        let run_policy = |policy: AnnouncePolicy| {
            let plan = FaultPlan::new().crash(
                leader,
                kill_round,
                ftc_sim::adversary::DeliveryFilter::DropAll,
            );
            let mut adv = ScriptedCrash::new(plan);
            let r = run(
                &probe_cfg,
                |_| ExplicitLeNode::with_policy(params.clone(), policy),
                &mut adv,
            );
            ExplicitLeOutcome::evaluate(&r)
        };

        let all = run_policy(AnnouncePolicy::AllCandidates);
        let only = run_policy(AnnouncePolicy::LeaderOnly);
        assert!(all.success, "all-candidates policy broke: {all:?}");
        assert!(
            !only.success && only.unaware > 0,
            "leader-only policy unexpectedly survived: {only:?}"
        );
    }

    #[test]
    fn explicit_cost_is_linear_not_quadratic() {
        let n = 1024u32;
        let params = Params::new(n, 1.0).unwrap();
        let cfg = SimConfig::new(n)
            .seed(2)
            .max_rounds(ExplicitLeNode::round_budget(&params));
        let result = run(&cfg, |_| ExplicitLeNode::new(params.clone()), &mut NoFaults);
        let o = ExplicitLeOutcome::evaluate(&result);
        assert!(o.success, "{o:?}");
        // O(n·log n/α) with a generous constant (the implicit phase and
        // the |C| parallel announcements both contribute), far below n².
        let bound = f64::from(n) * params.ln_n() / params.alpha();
        assert!((result.metrics.msgs_sent as f64) < f64::from(n) * f64::from(n) / 8.0);
        assert!(
            (result.metrics.msgs_sent as f64) < 20.0 * bound,
            "messages {} vs bound {bound}",
            result.metrics.msgs_sent
        );
    }
}
