//! Fault-tolerant implicit agreement (Section V-A, Theorem 5.1).
//!
//! The protocol biases the candidate committee towards 0: a candidate
//! whose input is 0 immediately decides 0 and pushes a `0` to its
//! referees; a referee holding a `0` forwards it (once) to all its
//! candidates; a candidate receiving a `0` decides 0 and forwards it
//! (once) to its own referees. Because every pair of candidates shares a
//! non-faulty referee (Lemma 3) and at least one candidate is non-faulty
//! (Lemma 2), a single `0` held by any non-faulty candidate floods the
//! whole committee even if a crash severs one link per iteration. After
//! `O(log n/α)` two-round iterations, candidates still holding only `1`s
//! decide 1. If no candidate ever held a 0, the protocol is completely
//! silent after registration — agreement on 1 for free.
//!
//! Message complexity: `O(√n·log^{3/2}n/α^{3/2})` bits whp — every message
//! is a single bit plus a tag, so messages ≈ bits (Theorem 5.1). Rounds:
//! `O(log n/α)`.

use std::collections::BTreeSet;

use ftc_sim::ids::{NodeId, Port};
use ftc_sim::prelude::*;

use crate::messages::AgreeMsg;
use crate::params::Params;
use crate::sampling;

/// A node's final verdict for the implicit agreement problem
/// (Definition 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AgreeStatus {
    /// The node decided the given bit.
    Decided(bool),
    /// The node never decided (`⊥`) — the normal state of non-candidates.
    Undecided,
}

/// State of this node's candidate role.
#[derive(Clone, Debug)]
struct CandidateState {
    /// Sampled referee ports.
    referees: Vec<Port>,
    /// Whether this candidate currently holds (and has decided) 0.
    has_zero: bool,
    /// Whether the `0` has already been pushed to the referees.
    zero_sent: bool,
}

/// One node of the fault-tolerant implicit agreement protocol.
///
/// ```
/// use ftc_sim::prelude::*;
/// use ftc_core::agreement::{AgreeNode, AgreeOutcome};
/// use ftc_core::params::Params;
///
/// let params = Params::new(64, 1.0)?;
/// let cfg = SimConfig::new(64).seed(1).max_rounds(params.agreement_round_budget());
/// // Node 0 starts with input 0, everyone else with 1.
/// let result = run(
///     &cfg,
///     |id| AgreeNode::new(params.clone(), id.0 == 0),
///     &mut NoFaults,
/// );
/// let outcome = AgreeOutcome::evaluate(&result);
/// assert!(outcome.success);
/// # Ok::<(), ftc_core::params::ParamsError>(())
/// ```
#[derive(Clone, Debug)]
pub struct AgreeNode {
    params: Params,
    /// This node's input bit (`false` = 0, `true` = 1).
    input: bool,
    candidate: Option<CandidateState>,
    /// Referee role: candidate ports that registered with us.
    referee_candidates: Vec<Port>,
    /// Referee role: whether we hold a 0...
    referee_has_zero: bool,
    /// ...and whether we have already forwarded it.
    referee_zero_sent: bool,
}

impl AgreeNode {
    /// Creates the protocol state for one node with the given input bit
    /// (`false` encodes 0, `true` encodes 1).
    pub fn new(params: Params, input_one: bool) -> Self {
        AgreeNode {
            params,
            input: input_one,
            candidate: None,
            referee_candidates: Vec::new(),
            referee_has_zero: false,
            referee_zero_sent: false,
        }
    }

    /// The node's input bit.
    pub fn input(&self) -> bool {
        self.input
    }

    /// Whether this node made itself a candidate.
    pub fn is_candidate(&self) -> bool {
        self.candidate.is_some()
    }

    /// The node's verdict (Definition 2): candidates decide — 0 as soon as
    /// they hold one, 1 implicitly at termination; non-candidates stay ⊥.
    pub fn status(&self) -> AgreeStatus {
        match &self.candidate {
            Some(c) if c.has_zero => AgreeStatus::Decided(false),
            Some(_) => AgreeStatus::Decided(true),
            None => AgreeStatus::Undecided,
        }
    }

    /// Candidate acquires a 0: decide and (lazily) propagate.
    fn acquire_zero(&mut self, ctx: &mut Ctx<'_, AgreeMsg>) {
        if let Some(c) = self.candidate.as_mut() {
            c.has_zero = true;
            if !c.zero_sent {
                c.zero_sent = true;
                for &p in &c.referees.clone() {
                    ctx.send(p, AgreeMsg::Zero);
                }
            }
        }
    }

    /// Referee acquires a 0: forward once to all registered candidates.
    fn referee_acquire_zero(&mut self, ctx: &mut Ctx<'_, AgreeMsg>) {
        self.referee_has_zero = true;
        if !self.referee_zero_sent {
            self.referee_zero_sent = true;
            for &p in &self.referee_candidates.clone() {
                ctx.send(p, AgreeMsg::Zero);
            }
        }
    }
}

impl Protocol for AgreeNode {
    type Msg = AgreeMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, AgreeMsg>) {
        if !sampling::decide_candidate(ctx.rng(), &self.params) {
            return;
        }
        // Via the Ctx: identical RNG draws on the complete graph,
        // degree-clamped on sparse topologies (see LeNode::on_start).
        let referees = ctx.sample_ports(self.params.referee_count());
        let zero = !self.input;
        // Step 0: register with the referees — a 0-holder registers by
        // sending the 0 itself, a 1-holder sends a plain registration.
        for &p in &referees {
            ctx.send(
                p,
                if zero {
                    AgreeMsg::Zero
                } else {
                    AgreeMsg::RegisterOne
                },
            );
        }
        self.candidate = Some(CandidateState {
            referees,
            has_zero: zero,
            zero_sent: zero,
        });
    }

    fn on_round(&mut self, ctx: &mut Ctx<'_, AgreeMsg>, inbox: &[Incoming<AgreeMsg>]) {
        let mut candidate_zero = false;
        let mut referee_zero = false;
        for inc in inbox {
            match inc.msg {
                AgreeMsg::RegisterOne => {
                    if !self.referee_candidates.contains(&inc.port) {
                        self.referee_candidates.push(inc.port);
                    }
                }
                AgreeMsg::Zero => {
                    // A zero from a *candidate* registers it and infects
                    // our referee role; a zero from a *referee* infects our
                    // candidate role. We cannot tell which of our roles was
                    // addressed, so we conservatively serve both — this at
                    // most doubles constants and only strengthens
                    // propagation.
                    if !self.referee_candidates.contains(&inc.port) {
                        self.referee_candidates.push(inc.port);
                    }
                    referee_zero = true;
                    candidate_zero = true;
                }
                AgreeMsg::Announce(_) => {
                    // Explicit-extension message; ignored by the implicit
                    // protocol.
                }
            }
        }
        if referee_zero {
            self.referee_acquire_zero(ctx);
        }
        if candidate_zero && self.candidate.is_some() {
            self.acquire_zero(ctx);
        }
    }

    fn is_terminated(&self) -> bool {
        // Purely reactive after round 0: safe to stop whenever the network
        // is silent.
        true
    }

    fn is_inert(&self) -> bool {
        // An empty inbox leaves both role flags unset, so `on_round`
        // touches no state and draws no randomness — always skippable.
        true
    }
}

/// Evaluation of one agreement execution against Definition 2.
#[derive(Clone, Debug)]
pub struct AgreeOutcome {
    /// Nodes that became candidates.
    pub candidate_count: usize,
    /// Candidates alive at the end.
    pub alive_candidates: usize,
    /// Distinct decisions of *alive* nodes.
    pub decisions: Vec<bool>,
    /// The agreed value, when consistent.
    pub agreed_value: Option<bool>,
    /// Whether at least one alive node decided (non-emptiness).
    pub some_decided: bool,
    /// Whether all alive decided nodes agree (consensus condition).
    pub consistent: bool,
    /// Whether the agreed value is the input of some node (validity).
    pub valid: bool,
    /// Definition-2 success: non-empty, consistent, valid.
    pub success: bool,
}

impl AgreeOutcome {
    /// Scores a finished run.
    pub fn evaluate(result: &RunResult<AgreeNode>) -> AgreeOutcome {
        let candidate_count = result.states.iter().filter(|s| s.is_candidate()).count();
        let alive_candidates = result
            .surviving_states()
            .filter(|(_, s)| s.is_candidate())
            .count();

        let decided: BTreeSet<bool> = result
            .surviving_states()
            .filter_map(|(_, s)| match s.status() {
                AgreeStatus::Decided(v) => Some(v),
                AgreeStatus::Undecided => None,
            })
            .collect();
        let decisions: Vec<bool> = decided.iter().copied().collect();
        let some_decided = !decisions.is_empty();
        let consistent = decisions.len() <= 1;
        let agreed_value = (decisions.len() == 1).then(|| decisions[0]);

        let valid = agreed_value.is_some_and(|v| result.all_states().any(|(_, s)| s.input() == v));

        AgreeOutcome {
            candidate_count,
            alive_candidates,
            decisions,
            agreed_value,
            some_decided,
            consistent,
            valid,
            success: some_decided && consistent && valid,
        }
    }

    /// Convenience: the set of nodes whose decision differs from the
    /// majority — used by failure-injection tests to localise splits.
    pub fn dissenters(result: &RunResult<AgreeNode>) -> Vec<NodeId> {
        let outcome = AgreeOutcome::evaluate(result);
        let Some(v) = outcome.agreed_value else {
            return result
                .surviving_states()
                .filter(|(_, s)| matches!(s.status(), AgreeStatus::Decided(_)))
                .map(|(id, _)| id)
                .collect();
        };
        result
            .surviving_states()
            .filter(|(_, s)| matches!(s.status(), AgreeStatus::Decided(d) if d != v))
            .map(|(id, _)| id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_agree(
        n: u32,
        alpha: f64,
        seed: u64,
        inputs: impl Fn(NodeId) -> bool + Copy,
        adv: &mut dyn Adversary<AgreeMsg>,
    ) -> RunResult<AgreeNode> {
        let params = Params::new(n, alpha).unwrap();
        let cfg = SimConfig::new(n)
            .seed(seed)
            .max_rounds(params.agreement_round_budget());
        run(&cfg, |id| AgreeNode::new(params.clone(), inputs(id)), adv)
    }

    #[test]
    fn all_ones_is_silent_and_agrees_one() {
        for seed in 0..10 {
            let result = run_agree(256, 1.0, seed, |_| true, &mut NoFaults);
            let o = AgreeOutcome::evaluate(&result);
            assert!(o.success, "seed {seed}: {o:?}");
            assert_eq!(o.agreed_value, Some(true));
            // Only registration traffic, nothing after.
            let reg: u64 = result.metrics.per_round[0].sent;
            assert_eq!(result.metrics.msgs_sent, reg, "iteration msgs sent");
        }
    }

    #[test]
    fn all_zeros_agrees_zero() {
        for seed in 0..10 {
            let result = run_agree(256, 1.0, seed, |_| false, &mut NoFaults);
            let o = AgreeOutcome::evaluate(&result);
            assert!(o.success, "seed {seed}: {o:?}");
            assert_eq!(o.agreed_value, Some(false));
        }
    }

    #[test]
    fn zero_biased_decision_with_mixed_inputs() {
        // A candidate holding 0 exists whp when half the inputs are 0, so
        // the committee must agree on 0.
        for seed in 0..10 {
            let result = run_agree(256, 1.0, seed, |id| id.0 % 2 == 0, &mut NoFaults);
            let o = AgreeOutcome::evaluate(&result);
            assert!(o.success, "seed {seed}: {o:?}");
            assert_eq!(o.agreed_value, Some(false), "0 must win: {o:?}");
        }
    }

    #[test]
    fn agreement_survives_mass_eager_crash() {
        for seed in 0..10 {
            let mut adv = EagerCrash::new(192);
            let result = run_agree(256, 0.25, seed, |id| id.0 % 2 == 0, &mut adv);
            let o = AgreeOutcome::evaluate(&result);
            assert!(o.success, "seed {seed}: {o:?}");
        }
    }

    #[test]
    fn agreement_survives_random_crashes_mid_protocol() {
        for seed in 0..10 {
            let mut adv = RandomCrash::new(128, 20);
            let result = run_agree(256, 0.5, seed, |id| id.0 < 8, &mut adv);
            let o = AgreeOutcome::evaluate(&result);
            assert!(o.success, "seed {seed}: {o:?}");
        }
    }

    #[test]
    fn validity_one_requires_a_one_input() {
        // All inputs 0 ⇒ decision 0 is forced; deciding 1 would violate
        // validity, which `evaluate` would flag.
        let result = run_agree(128, 1.0, 3, |_| false, &mut NoFaults);
        let o = AgreeOutcome::evaluate(&result);
        assert_eq!(o.agreed_value, Some(false));
        assert!(o.valid);
    }

    #[test]
    fn non_candidates_stay_undecided() {
        let result = run_agree(256, 1.0, 5, |id| id.0 % 2 == 0, &mut NoFaults);
        for (_, s) in result.all_states() {
            if !s.is_candidate() {
                assert_eq!(s.status(), AgreeStatus::Undecided);
            }
        }
    }

    #[test]
    fn message_bits_are_sublinear_at_scale() {
        let n = 4096u32;
        let result = run_agree(n, 1.0, 7, |id| id.0 == 0, &mut NoFaults);
        let o = AgreeOutcome::evaluate(&result);
        assert!(o.success, "{o:?}");
        // The theoretical bound is constant-free; the protocol's own
        // constant is 12 (candidate factor 6 x referee factor 2) with up to
        // three traversals of the candidate-referee edges.
        let bound = Params::new(n, 1.0).unwrap().agreement_message_bound();
        assert!(
            (result.metrics.msgs_sent as f64) < 60.0 * bound,
            "messages {} vs bound {bound}",
            result.metrics.msgs_sent
        );
    }

    #[test]
    fn dissenters_empty_on_success() {
        let result = run_agree(128, 1.0, 9, |id| id.0 % 3 == 0, &mut NoFaults);
        assert!(AgreeOutcome::dissenters(&result).is_empty());
    }

    #[test]
    fn terminates_quickly_via_quiescence() {
        let params = Params::new(512, 1.0).unwrap();
        let result = run_agree(512, 1.0, 2, |id| id.0 == 0, &mut NoFaults);
        assert!(
            result.metrics.rounds < params.agreement_round_budget() / 2,
            "took {} rounds",
            result.metrics.rounds
        );
    }
}
