//! The sampling layer shared by both protocols.
//!
//! Both algorithms start from the same two local random choices
//! (Section IV-A / V-A):
//!
//! 1. **Candidate self-selection**: each node independently makes itself a
//!    candidate with probability `Θ(log n / (α·n))`, so the committee has
//!    `Θ(log n / α)` members and contains a non-faulty node whp
//!    (Lemmas 1–2).
//! 2. **Referee sampling**: each candidate samples `Θ(√(n·log n / α))`
//!    uniformly random nodes, guaranteeing every *pair* of candidates a
//!    common non-faulty referee whp (Lemma 3) — the channel through which
//!    anonymous candidates communicate.
//!
//! These helpers are deliberately free functions over an RNG so that they
//! can be Monte-Carlo-tested (experiment E10) without a full simulation.

use rand::prelude::*;
use rand::rngs::SmallRng;

use ftc_sim::ids::Port;

use crate::params::Params;

/// Flips the candidate coin (Lemma 1: probability `6·ln n/(α·n)`).
pub fn decide_candidate(rng: &mut SmallRng, params: &Params) -> bool {
    rng.random_bool(params.candidate_probability())
}

/// Samples the candidate's referee ports: `referee_count()` distinct
/// uniform ports (Lemma 3).
pub fn sample_referee_ports(rng: &mut SmallRng, params: &Params) -> Vec<Port> {
    let count = params.referee_count();
    let ports = params.n() as usize - 1;
    rand::seq::index::sample(rng, ports, count.min(ports))
        .into_iter()
        .map(|i| Port(i as u32))
        .collect()
}

/// One Monte-Carlo draw of the whole sampling layer, for testing the
/// concentration lemmas without running a protocol: returns the candidate
/// node indices and, per candidate, its referee node indices.
pub fn draw_committee(rng: &mut SmallRng, params: &Params) -> (Vec<usize>, Vec<Vec<usize>>) {
    let n = params.n() as usize;
    let mut candidates = Vec::new();
    for node in 0..n {
        if decide_candidate(rng, params) {
            candidates.push(node);
        }
    }
    let referees = candidates
        .iter()
        .map(|&c| {
            // Convert ports to global indices by skipping `c` itself.
            sample_referee_ports(rng, params)
                .into_iter()
                .map(|p| {
                    let k = p.index();
                    if k < c {
                        k
                    } else {
                        k + 1
                    }
                })
                .collect()
        })
        .collect();
    (candidates, referees)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed)
    }

    #[test]
    fn candidate_count_concentrates_lemma1() {
        // Lemma 1: 2·ln n/α ≤ |C| ≤ 12·ln n/α whp.
        let params = Params::new(4096, 0.5).unwrap();
        let lo = 2.0 * params.ln_n() / 0.5;
        let hi = 12.0 * params.ln_n() / 0.5;
        let mut in_range = 0;
        let trials = 200;
        for t in 0..trials {
            let (c, _) = draw_committee(&mut rng(t), &params);
            if (c.len() as f64) >= lo && (c.len() as f64) <= hi {
                in_range += 1;
            }
        }
        assert!(in_range >= trials - 2, "only {in_range}/{trials} in range");
    }

    #[test]
    fn committee_hits_non_faulty_node_lemma2() {
        // With f = n/2 random faults, P[all candidates faulty] ≤ 1/n².
        let params = Params::new(1024, 0.5).unwrap();
        let n = 1024usize;
        let mut all_faulty = 0;
        for t in 0..200u64 {
            let mut r = rng(t);
            let faulty: std::collections::HashSet<usize> =
                rand::seq::index::sample(&mut r, n, n / 2)
                    .into_iter()
                    .collect();
            let (c, _) = draw_committee(&mut r, &params);
            if !c.is_empty() && c.iter().all(|i| faulty.contains(i)) {
                all_faulty += 1;
            }
        }
        assert_eq!(all_faulty, 0);
    }

    #[test]
    fn candidate_pairs_share_referee_lemma3() {
        let params = Params::new(1024, 0.5).unwrap();
        for t in 0..20u64 {
            let (c, refs) = draw_committee(&mut rng(t), &params);
            for i in 0..c.len() {
                for j in i + 1..c.len() {
                    let a: std::collections::HashSet<_> = refs[i].iter().collect();
                    let shared = refs[j].iter().any(|x| a.contains(x));
                    assert!(
                        shared,
                        "candidates {} and {} share no referee (trial {t})",
                        c[i], c[j]
                    );
                }
            }
        }
    }

    #[test]
    fn referee_ports_are_distinct() {
        let params = Params::new(256, 1.0).unwrap();
        let ports = sample_referee_ports(&mut rng(3), &params);
        let mut sorted: Vec<u32> = ports.iter().map(|p| p.0).collect();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ports.len());
        assert!(sorted.iter().all(|&p| p < 255));
    }

    #[test]
    fn draw_committee_never_maps_port_to_self() {
        let params = Params::new(128, 1.0).unwrap();
        for t in 0..50 {
            let (c, refs) = draw_committee(&mut rng(t), &params);
            for (ci, rs) in c.iter().zip(&refs) {
                assert!(rs.iter().all(|r| r != ci), "candidate refereed itself");
                assert!(rs.iter().all(|&r| r < 128));
            }
        }
    }
}
