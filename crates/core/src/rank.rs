//! Random ranks: the self-assigned identities of anonymous nodes.
//!
//! The network is anonymous, so each node draws an integer *rank* uniformly
//! from `[1, n⁴]` and uses it as its ID (Section IV-A, footnote 4). The
//! range is chosen so that all `n` ranks are distinct with high probability
//! (a birthday-bound argument: collision probability ≤ `n²/n⁴ = 1/n²`).

use rand::prelude::*;
use rand::rngs::SmallRng;

/// A node's randomly drawn rank (also its self-assigned ID).
///
/// Ordered: the protocol elects (roughly) the smallest surviving rank.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Rank(pub u64);

impl std::fmt::Display for Rank {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl Rank {
    /// Draws a uniform rank from `[1, n⁴]`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn draw(rng: &mut SmallRng, n: u32) -> Rank {
        Rank(rng.random_range(1..=Rank::domain(n)))
    }

    /// Upper end of the rank domain, `n⁴`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `n > 65535` (`n⁴` must fit in a `u64`; for
    /// larger networks use a wider rank type — collision probability is
    /// what matters, and 64 bits already gives `< n²/2⁶⁴`).
    pub fn domain(n: u32) -> u64 {
        assert!(n >= 2, "rank domain needs n >= 2");
        assert!(n <= 65_535, "rank domain n^4 overflows u64 for n > 65535");
        u64::from(n).pow(4)
    }

    /// Bits needed to transmit a rank (`4·log₂ n`), for CONGEST sizing.
    pub fn bits(n: u32) -> u32 {
        ftc_sim::payload::bits_for(Rank::domain(n))
    }

    /// Union-bound estimate of the probability that *any* two of `n` drawn
    /// ranks collide: `≤ n(n−1)/2 · 1/n⁴ < 1/n²`.
    pub fn collision_probability_bound(n: u32) -> f64 {
        let nf = f64::from(n);
        (nf * (nf - 1.0) / 2.0) / (nf.powi(4))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn draw_is_in_domain() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let r = Rank::draw(&mut rng, 64);
            assert!(r.0 >= 1 && r.0 <= 64u64.pow(4));
        }
    }

    #[test]
    fn ranks_are_distinct_whp_in_practice() {
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 1024u32;
        let mut ranks: Vec<u64> = (0..n).map(|_| Rank::draw(&mut rng, n).0).collect();
        ranks.sort_unstable();
        ranks.dedup();
        assert_eq!(ranks.len(), n as usize, "collision at n=1024 (prob < 1e-6)");
    }

    #[test]
    fn collision_bound_shrinks_quadratically() {
        assert!(Rank::collision_probability_bound(100) < 1.0 / (100.0 * 100.0));
        assert!(
            Rank::collision_probability_bound(1000) < Rank::collision_probability_bound(100) / 99.0
        );
    }

    #[test]
    fn bits_match_four_logs() {
        assert_eq!(Rank::bits(1 << 8), 32);
        assert_eq!(Rank::bits(1 << 10), 40);
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn oversized_network_panics() {
        let _ = Rank::domain(70_000);
    }

    #[test]
    fn rank_orders_numerically() {
        assert!(Rank(3) < Rank(10));
        assert_eq!(Rank(5).to_string(), "r5");
    }
}
