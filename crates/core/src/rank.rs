//! Random ranks: the self-assigned identities of anonymous nodes.
//!
//! The network is anonymous, so each node draws an integer *rank* uniformly
//! from `[1, n⁴]` and uses it as its ID (Section IV-A, footnote 4). The
//! range is chosen so that all `n` ranks are distinct with high probability
//! (a birthday-bound argument: collision probability ≤ `n²/n⁴ = 1/n²`).

use rand::prelude::*;
use rand::rngs::SmallRng;

/// A node's randomly drawn rank (also its self-assigned ID).
///
/// Ordered: the protocol elects (roughly) the smallest surviving rank.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Rank(pub u64);

impl std::fmt::Display for Rank {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl Rank {
    /// Draws a uniform rank from `[1, n⁴]`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn draw(rng: &mut SmallRng, n: u32) -> Rank {
        Rank(rng.random_range(1..=Rank::domain(n)))
    }

    /// Upper end of the rank domain: `n⁴`, saturating at `u64::MAX` for
    /// `n > 65535` (where `n⁴` no longer fits). Collision probability is
    /// what the domain buys, and the full 64-bit range already gives
    /// `< n²/2⁶⁴` — below `10⁻⁷` even at `n = 10⁶` — so saturation keeps
    /// the whp-distinctness argument intact at every supported size.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn domain(n: u32) -> u64 {
        assert!(n >= 2, "rank domain needs n >= 2");
        u64::from(n).checked_pow(4).unwrap_or(u64::MAX)
    }

    /// Bits needed to transmit a rank (`4·log₂ n`, capped at the 64-bit
    /// word where the domain saturates), for CONGEST sizing.
    pub fn bits(n: u32) -> u32 {
        ftc_sim::payload::bits_for(Rank::domain(n))
    }

    /// Union-bound estimate of the probability that *any* two of `n` drawn
    /// ranks collide: `≤ n(n−1)/2 / domain(n)` — `< 1/n²` while the domain
    /// is the exact `n⁴`, and still `< 10⁻⁷` at `n = 10⁶` after it
    /// saturates to `2⁶⁴ − 1`.
    pub fn collision_probability_bound(n: u32) -> f64 {
        let nf = f64::from(n);
        (nf * (nf - 1.0) / 2.0) / (Rank::domain(n) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn draw_is_in_domain() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let r = Rank::draw(&mut rng, 64);
            assert!(r.0 >= 1 && r.0 <= 64u64.pow(4));
        }
    }

    #[test]
    fn ranks_are_distinct_whp_in_practice() {
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 1024u32;
        let mut ranks: Vec<u64> = (0..n).map(|_| Rank::draw(&mut rng, n).0).collect();
        ranks.sort_unstable();
        ranks.dedup();
        assert_eq!(ranks.len(), n as usize, "collision at n=1024 (prob < 1e-6)");
    }

    #[test]
    fn collision_bound_shrinks_quadratically() {
        assert!(Rank::collision_probability_bound(100) < 1.0 / (100.0 * 100.0));
        assert!(
            Rank::collision_probability_bound(1000) < Rank::collision_probability_bound(100) / 99.0
        );
    }

    #[test]
    fn bits_match_four_logs() {
        assert_eq!(Rank::bits(1 << 8), 32);
        assert_eq!(Rank::bits(1 << 10), 40);
    }

    #[test]
    fn oversized_network_saturates() {
        // Above 65535 the n^4 domain no longer fits a u64; the domain
        // saturates instead of panicking so million-node runs work, and
        // the exact n^4 value is preserved right up to the edge.
        assert_eq!(Rank::domain(65_535), 65_535u64.pow(4));
        assert_eq!(Rank::domain(70_000), u64::MAX);
        assert_eq!(Rank::domain(1_000_000), u64::MAX);
        assert_eq!(Rank::bits(1_000_000), 64);
    }

    #[test]
    fn rank_orders_numerically() {
        assert!(Rank(3) < Rank(10));
        assert_eq!(Rank(5).to_string(), "r5");
    }
}
