//! # `ftc-core` — sublinear-message fault-tolerant leader election & agreement
//!
//! Rust implementation of the protocols of Kumar & Molla, *"On the Message
//! Complexity of Fault-Tolerant Computation: Leader Election and
//! Agreement"* (PODC 2021 brief announcement; full version IEEE TPDS 34(4),
//! 2023):
//!
//! * [`leader_election`] — implicit leader election in `O(log n/α)` rounds
//!   and `O(√n·log^{5/2}n/α^{5/2})` messages whp (Theorem 4.1);
//! * [`agreement`] — implicit binary agreement in `O(log n/α)` rounds and
//!   `O(√n·log^{3/2}n/α^{3/2})` message bits whp (Theorem 5.1);
//! * [`explicit`] — the `O(n·log n/α)`-message explicit extensions;
//! * [`multi_agreement`] — multi-valued generalisation (extension);
//! * [`byzantine`] — Byzantine attacks probing open question 3 (extension);
//! * [`adversaries`] — the paper's worst-case crash schedules;
//! * [`params`], [`rank`], [`sampling`], [`messages`] — the shared
//!   building blocks (Lemmas 1–3).
//!
//! All protocols run on the [`ftc_sim`] substrate: a synchronous,
//! fully-connected, **anonymous (KT0)** network in the CONGEST model with
//! up to `n − log²n` crash faults under a static adversary with adaptive
//! crash timing.
//!
//! ## Quick start
//!
//! ```
//! use ftc_sim::prelude::*;
//! use ftc_core::prelude::*;
//!
//! // 256 nodes, at least half of them non-faulty.
//! let params = Params::new(256, 0.5)?;
//! let cfg = SimConfig::new(256).seed(42).max_rounds(params.le_round_budget());
//!
//! // Crash 128 nodes at adversarially chosen times.
//! let mut adversary = RandomCrash::new(128, 30);
//! let result = run(&cfg, |_| LeNode::new(params.clone()), &mut adversary);
//!
//! let outcome = LeOutcome::evaluate(&result);
//! assert!(outcome.success);
//! println!(
//!     "leader {:?} elected with {} messages in {} rounds",
//!     outcome.agreed_leader, result.metrics.msgs_sent, result.metrics.rounds
//! );
//! # Ok::<(), ftc_core::params::ParamsError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversaries;
pub mod agreement;
pub mod byzantine;
pub mod explicit;
pub mod leader_election;
pub mod messages;
pub mod multi_agreement;
pub mod params;
pub mod rank;
pub mod sampling;

/// Convenient glob import for protocol users.
pub mod prelude {
    pub use crate::adversaries::{AdaptiveCandidateKiller, MinRankCrasher, ZeroHolderCrasher};
    pub use crate::agreement::{AgreeNode, AgreeOutcome, AgreeStatus};
    pub use crate::byzantine::{EquivocatingClaimant, ZeroForger};
    pub use crate::explicit::{
        AnnouncePolicy, ExplicitAgreeNode, ExplicitAgreeOutcome, ExplicitLeNode, ExplicitLeOutcome,
    };
    pub use crate::leader_election::{LeNode, LeOutcome, LeStatus};
    pub use crate::messages::{AgreeMsg, LeMsg};
    pub use crate::multi_agreement::{MultiAgreeNode, MultiMsg, MultiOutcome};
    pub use crate::params::{Params, ParamsError};
    pub use crate::rank::Rank;
}
