//! Byzantine attack strategies — the paper's open question 3, probed.
//!
//! The paper closes with: *"whether a sub-linear message bound agreement
//! protocol is possible in the presence of Byzantine node failure"* is
//! open. These adversaries make the gap concrete: they upgrade crash
//! faults to Byzantine behaviour (via [`ftc_sim::adversary::Adversary::tamper`])
//! and demonstrate that the paper's crash-fault protocols offer **no**
//! Byzantine tolerance — a single corrupted node suffices:
//!
//! * [`ZeroForger`] injects a forged `0` into an all-ones network; honest
//!   candidates dutifully decide 0, violating validity.
//! * [`EquivocatingClaimant`] forges two different gigantic leadership
//!   claims towards two halves of the referee fabric; honest candidates
//!   settle on ranks that belong to no real node (and possibly on two
//!   different ones), destroying the election.
//!
//! Experiment E12 (`fig_byzantine`) quantifies both.

use rand::prelude::*;
use rand::rngs::SmallRng;

use ftc_sim::adversary::{Adversary, AdversaryView, CrashDirective, FaultySet, Tamper};
use ftc_sim::engine::ConfigError;
use ftc_sim::ids::NodeId;

use crate::messages::{AgreeMsg, LeMsg};

/// Checks a Byzantine corruption budget against the network size.
///
/// `FaultySet::random(n, b)` asserts `b <= n` deep inside a trial; callers
/// that take `b` from a CLI or a campaign grid must reject oversized
/// budgets *before* any trial runs, so the failure is a configuration
/// error with context instead of a mid-trial panic.
pub fn validate_budget(b: usize, n: u32) -> Result<(), ConfigError> {
    if b as u64 > u64::from(n) {
        Err(ConfigError::ByzantineBudgetExceedsN {
            b: u32::try_from(b).unwrap_or(u32::MAX),
            n,
        })
    } else {
        Ok(())
    }
}

/// Byzantine agreement attack: corrupted nodes flood forged `Zero`s.
///
/// Validity dies immediately when every honest input is 1: the paper's
/// agreement protocol trusts any received 0.
#[derive(Clone, Debug)]
pub struct ZeroForger {
    /// Number of corrupted nodes.
    pub b: usize,
    /// Forged zeros each corrupted node sends per round.
    pub fanout: usize,
    /// Rounds during which forging happens.
    pub rounds: u32,
}

impl ZeroForger {
    /// `b` corrupted nodes, 8 forged zeros per node per round for the
    /// first 4 rounds.
    pub fn new(b: usize) -> Self {
        ZeroForger {
            b,
            fanout: 8,
            rounds: 4,
        }
    }

    /// Rejects budgets that cannot fit an `n`-node network (`b > n`).
    pub fn validate(&self, n: u32) -> Result<(), ConfigError> {
        validate_budget(self.b, n)
    }
}

impl Adversary<AgreeMsg> for ZeroForger {
    fn faulty_set(&mut self, n: u32, rng: &mut SmallRng) -> FaultySet {
        FaultySet::random(n, self.b, rng)
    }

    fn on_round(
        &mut self,
        _view: &AdversaryView<'_, AgreeMsg>,
        _rng: &mut SmallRng,
    ) -> Vec<CrashDirective> {
        Vec::new() // Byzantine nodes do not crash; they lie.
    }

    fn tamper(
        &mut self,
        view: &AdversaryView<'_, AgreeMsg>,
        rng: &mut SmallRng,
    ) -> Vec<Tamper<AgreeMsg>> {
        if view.round() >= self.rounds {
            return Vec::new();
        }
        let n = view.n();
        view.crashable()
            .map(|node| {
                let sends = (0..self.fanout)
                    .map(|_| {
                        let dst = loop {
                            let d = NodeId(rng.random_range(0..n));
                            if d != node {
                                break d;
                            }
                        };
                        (dst, AgreeMsg::Zero)
                    })
                    .collect();
                Tamper { node, sends }
            })
            .collect()
    }
}

/// Byzantine leader-election attack: equivocating leadership claims.
///
/// The corrupted nodes watch round-0 registrations to learn which nodes
/// serve as referees, then send claim `⟨R₁,R₁⟩` to one half of them and
/// claim `⟨R₂,R₂⟩` (a different gigantic rank) to the other half. Honest
/// candidates adopt whichever claim their referees echo — ranks that
/// belong to **no node** — and may split between the two.
#[derive(Clone, Debug)]
pub struct EquivocatingClaimant {
    /// Number of corrupted nodes.
    pub b: usize,
    referees: Vec<NodeId>,
    /// The two forged ranks (near the top of the rank domain).
    forged: (u64, u64),
}

impl EquivocatingClaimant {
    /// `b` corrupted nodes.
    pub fn new(b: usize) -> Self {
        EquivocatingClaimant {
            b,
            referees: Vec::new(),
            forged: (0, 0),
        }
    }

    /// Rejects budgets that cannot fit an `n`-node network (`b > n`).
    pub fn validate(&self, n: u32) -> Result<(), ConfigError> {
        validate_budget(self.b, n)
    }
}

impl Adversary<LeMsg> for EquivocatingClaimant {
    fn faulty_set(&mut self, n: u32, rng: &mut SmallRng) -> FaultySet {
        let domain = u64::from(n).pow(4);
        self.forged = (domain - 1, domain); // two distinct, unbeatable ranks
        FaultySet::random(n, self.b, rng)
    }

    fn on_round(
        &mut self,
        _view: &AdversaryView<'_, LeMsg>,
        _rng: &mut SmallRng,
    ) -> Vec<CrashDirective> {
        Vec::new()
    }

    fn tamper(
        &mut self,
        view: &AdversaryView<'_, LeMsg>,
        _rng: &mut SmallRng,
    ) -> Vec<Tamper<LeMsg>> {
        // Learn the referee fabric from registration traffic.
        if view.round() == 0 {
            for e in view.all_outgoing() {
                if matches!(e.msg, LeMsg::Register { .. }) && !self.referees.contains(&e.dst) {
                    self.referees.push(e.dst);
                }
            }
            return Vec::new();
        }
        // Strike once, two rounds after registrations landed (the referee
        // fabric is live and candidates are listening for echoes).
        if view.round() != 3 {
            return Vec::new();
        }
        let (r1, r2) = self.forged;
        let half = self.referees.len() / 2;
        view.crashable()
            .map(|node| {
                let sends = self
                    .referees
                    .iter()
                    .enumerate()
                    .filter(|&(_, &d)| d != node)
                    .map(|(i, &d)| {
                        let rank = if i < half { r1 } else { r2 };
                        (
                            d,
                            LeMsg::Propose {
                                id: crate::rank::Rank(rank),
                                value: crate::rank::Rank(rank),
                            },
                        )
                    })
                    .collect();
                Tamper { node, sends }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agreement::{AgreeNode, AgreeStatus};
    use crate::leader_election::{LeNode, LeOutcome};
    use crate::params::Params;
    use ftc_sim::prelude::*;

    #[test]
    fn single_zero_forger_breaks_validity() {
        // All honest inputs are 1; one Byzantine node forges 0s. Any
        // honest decision of 0 is a validity violation.
        let params = Params::new(256, 0.9).unwrap();
        let mut violated = 0;
        for seed in 0..10 {
            let cfg = SimConfig::new(256)
                .seed(seed)
                .max_rounds(params.agreement_round_budget());
            let mut adv = ZeroForger::new(1);
            let r = run(&cfg, |_| AgreeNode::new(params.clone(), true), &mut adv);
            let honest_decided_zero = r
                .surviving_states()
                .filter(|(id, _)| !r.faulty.contains(*id))
                .any(|(_, s)| s.status() == AgreeStatus::Decided(false));
            if honest_decided_zero {
                violated += 1;
            }
        }
        assert!(
            violated >= 8,
            "forged zeros rarely landed: {violated}/10 — attack ineffective?"
        );
    }

    #[test]
    fn equivocating_claimant_destroys_the_election() {
        let params = Params::new(256, 0.9).unwrap();
        let mut broken = 0;
        for seed in 0..10 {
            let cfg = SimConfig::new(256)
                .seed(seed)
                .max_rounds(params.le_round_budget());
            let mut adv = EquivocatingClaimant::new(1);
            let r = run(&cfg, |_| LeNode::new(params.clone()), &mut adv);
            let o = LeOutcome::evaluate(&r);
            // Either outright failure, or the "agreed" rank belongs to no
            // real node (leader_node is None in that case).
            if !o.success {
                broken += 1;
            }
        }
        assert!(broken >= 8, "equivocation rarely worked: {broken}/10");
    }

    #[test]
    fn oversized_budgets_are_rejected_before_any_trial() {
        // Regression: `b > n` used to surface as a mid-trial panic inside
        // `FaultySet::random`; validation now catches it up front with a
        // ConfigError carrying both numbers.
        assert_eq!(
            ZeroForger::new(17).validate(16),
            Err(ConfigError::ByzantineBudgetExceedsN { b: 17, n: 16 })
        );
        assert_eq!(
            EquivocatingClaimant::new(300).validate(256),
            Err(ConfigError::ByzantineBudgetExceedsN { b: 300, n: 256 })
        );
        assert!(ZeroForger::new(16).validate(16).is_ok());
        assert!(EquivocatingClaimant::new(0).validate(2).is_ok());
        let msg = ConfigError::ByzantineBudgetExceedsN { b: 17, n: 16 }.to_string();
        assert!(msg.contains("b=17"), "{msg}");
        assert!(msg.contains("n=16"), "{msg}");
    }

    #[test]
    fn byzantine_nodes_do_not_crash() {
        let params = Params::new(128, 0.9).unwrap();
        let cfg = SimConfig::new(128)
            .seed(1)
            .max_rounds(params.agreement_round_budget());
        let mut adv = ZeroForger::new(2);
        let r = run(&cfg, |_| AgreeNode::new(params.clone(), true), &mut adv);
        assert_eq!(r.metrics.crash_count(), 0);
        assert_eq!(r.survivor_count(), 128);
    }
}
