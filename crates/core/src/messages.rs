//! Wire messages of the two protocols, with CONGEST bit sizes.
//!
//! Every message fits in `O(log n)` bits as the CONGEST model requires:
//! ranks are `4·log₂ n` bits (domain `[1, n⁴]`), everything else is
//! constant-size tags.

use ftc_sim::payload::{Payload, Wire};

use crate::rank::Rank;

/// Messages of the fault-tolerant leader-election protocol (Section IV-A).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LeMsg {
    /// Candidate → referee (pre-processing): "you are my referee; my
    /// rank/ID is `rank`".
    Register {
        /// The candidate's rank.
        rank: Rank,
    },
    /// Referee → candidate (pre-processing): one rank from the referee's
    /// collected rank list, forwarded at one rank per edge per round.
    ForwardRank {
        /// A rank of some other candidate of this referee.
        rank: Rank,
    },
    /// Candidate → referee (Steps 1/3/4): `⟨ID_u, p_u⟩` — `id` proposes
    /// `value` as the potential leader. A *self-proposal* (`id == value`)
    /// is a leadership claim.
    Propose {
        /// The proposing candidate's own rank.
        id: Rank,
        /// The rank it proposes as leader.
        value: Rank,
    },
    /// Referee → candidate (Step 2): the maximum proposal the referee has
    /// seen this round; `claimed` is true when the proposal was the
    /// proposer's own rank (`⟨ID_u, p^max⟩` vs `⟨⊥, p^max⟩` in the paper).
    Echo {
        /// Maximum proposed rank.
        value: Rank,
        /// Whether the maximum was a self-proposal.
        claimed: bool,
    },
    /// Settled candidate → everyone (explicit extension): the elected
    /// leader's rank.
    Announce {
        /// The agreed leader rank.
        leader: Rank,
    },
}

impl Payload for LeMsg {
    fn size_bits(&self) -> u32 {
        // Sizes assume ranks of a reasonably large network (48 bits covers
        // n up to 2^12 exactly; we charge a fixed 48 + tag for simplicity
        // and conservatism, still O(log n)).
        const RANK_BITS: u32 = 48;
        const TAG_BITS: u32 = 3;
        match self {
            LeMsg::Register { .. } | LeMsg::ForwardRank { .. } | LeMsg::Announce { .. } => {
                TAG_BITS + RANK_BITS
            }
            LeMsg::Propose { .. } => TAG_BITS + 2 * RANK_BITS,
            LeMsg::Echo { .. } => TAG_BITS + RANK_BITS + 1,
        }
    }
}

impl Wire for LeMsg {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            LeMsg::Register { rank } => {
                buf.push(0);
                buf.extend_from_slice(&rank.0.to_le_bytes());
            }
            LeMsg::ForwardRank { rank } => {
                buf.push(1);
                buf.extend_from_slice(&rank.0.to_le_bytes());
            }
            LeMsg::Propose { id, value } => {
                buf.push(2);
                buf.extend_from_slice(&id.0.to_le_bytes());
                buf.extend_from_slice(&value.0.to_le_bytes());
            }
            LeMsg::Echo { value, claimed } => {
                buf.push(3);
                buf.extend_from_slice(&value.0.to_le_bytes());
                buf.push(u8::from(*claimed));
            }
            LeMsg::Announce { leader } => {
                buf.push(4);
                buf.extend_from_slice(&leader.0.to_le_bytes());
            }
        }
    }

    fn decode(bytes: &[u8]) -> Option<Self> {
        let (&tag, rest) = bytes.split_first()?;
        let rank =
            |b: &[u8]| -> Option<Rank> { Some(Rank(u64::from_le_bytes(b.try_into().ok()?))) };
        match tag {
            0 => Some(LeMsg::Register { rank: rank(rest)? }),
            1 => Some(LeMsg::ForwardRank { rank: rank(rest)? }),
            2 if rest.len() == 16 => Some(LeMsg::Propose {
                id: rank(&rest[..8])?,
                value: rank(&rest[8..])?,
            }),
            3 if rest.len() == 9 => Some(LeMsg::Echo {
                value: rank(&rest[..8])?,
                claimed: match rest[8] {
                    0 => false,
                    1 => true,
                    _ => return None,
                },
            }),
            4 => Some(LeMsg::Announce {
                leader: rank(rest)?,
            }),
            _ => None,
        }
    }
}

/// Messages of the fault-tolerant agreement protocol (Section V-A).
///
/// All messages carry a single bit of value (plus a registration tag),
/// which is why the agreement protocol's *bit* complexity matches its
/// message complexity (Theorem 5.1 counts message bits).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AgreeMsg {
    /// Candidate → referee (Step 0): "you are my referee, my input is 1".
    /// Carries no zero, so referees only register the sender.
    RegisterOne,
    /// "0" flowing in either direction: candidate → referee (Step 0/1) or
    /// referee → candidate (Step 2). Doubles as registration when coming
    /// from a candidate.
    Zero,
    /// Decided candidate → everyone (explicit extension): the agreed bit.
    Announce(bool),
}

impl Payload for AgreeMsg {
    fn size_bits(&self) -> u32 {
        match self {
            AgreeMsg::RegisterOne | AgreeMsg::Zero => 2,
            AgreeMsg::Announce(_) => 3,
        }
    }
}

impl Wire for AgreeMsg {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            AgreeMsg::RegisterOne => buf.push(0),
            AgreeMsg::Zero => buf.push(1),
            AgreeMsg::Announce(v) => {
                buf.push(2);
                buf.push(u8::from(*v));
            }
        }
    }

    fn decode(bytes: &[u8]) -> Option<Self> {
        match bytes {
            [0] => Some(AgreeMsg::RegisterOne),
            [1] => Some(AgreeMsg::Zero),
            [2, 0] => Some(AgreeMsg::Announce(false)),
            [2, 1] => Some(AgreeMsg::Announce(true)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn le_messages_are_congest_sized() {
        let msgs = [
            LeMsg::Register { rank: Rank(1) },
            LeMsg::ForwardRank { rank: Rank(2) },
            LeMsg::Propose {
                id: Rank(1),
                value: Rank(2),
            },
            LeMsg::Echo {
                value: Rank(3),
                claimed: true,
            },
            LeMsg::Announce { leader: Rank(1) },
        ];
        for m in &msgs {
            // O(log n): at most 2 ranks + tags; for n ≤ 2^12 that is ≤ 99 bits.
            assert!(m.size_bits() <= 99, "{m:?} too large");
            assert!(m.size_bits() >= 2);
        }
    }

    #[test]
    fn agreement_messages_are_single_bit_class() {
        assert_eq!(AgreeMsg::Zero.size_bits(), 2);
        assert_eq!(AgreeMsg::RegisterOne.size_bits(), 2);
        assert_eq!(AgreeMsg::Announce(true).size_bits(), 3);
    }

    #[test]
    fn wire_roundtrips_every_variant() {
        let le = [
            LeMsg::Register { rank: Rank(7) },
            LeMsg::ForwardRank {
                rank: Rank(u64::MAX),
            },
            LeMsg::Propose {
                id: Rank(3),
                value: Rank(9),
            },
            LeMsg::Echo {
                value: Rank(12),
                claimed: true,
            },
            LeMsg::Echo {
                value: Rank(0),
                claimed: false,
            },
            LeMsg::Announce { leader: Rank(42) },
        ];
        for m in &le {
            let mut buf = Vec::new();
            m.encode(&mut buf);
            assert_eq!(LeMsg::decode(&buf).as_ref(), Some(m), "{m:?}");
        }
        let ag = [
            AgreeMsg::RegisterOne,
            AgreeMsg::Zero,
            AgreeMsg::Announce(false),
            AgreeMsg::Announce(true),
        ];
        for m in &ag {
            let mut buf = Vec::new();
            m.encode(&mut buf);
            assert_eq!(AgreeMsg::decode(&buf).as_ref(), Some(m), "{m:?}");
        }
        // Malformed inputs are rejected, not misparsed.
        assert_eq!(LeMsg::decode(&[]), None);
        assert_eq!(LeMsg::decode(&[0, 1, 2]), None);
        assert_eq!(LeMsg::decode(&[9, 0, 0, 0, 0, 0, 0, 0, 0]), None);
        assert_eq!(AgreeMsg::decode(&[2, 7]), None);
        assert_eq!(AgreeMsg::decode(&[]), None);
    }

    #[test]
    fn propose_is_largest_le_message() {
        let p = LeMsg::Propose {
            id: Rank(1),
            value: Rank(1),
        };
        let e = LeMsg::Echo {
            value: Rank(1),
            claimed: false,
        };
        assert!(p.size_bits() > e.size_bits());
    }
}
