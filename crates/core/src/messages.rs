//! Wire messages of the two protocols, with CONGEST bit sizes.
//!
//! Every message fits in `O(log n)` bits as the CONGEST model requires:
//! ranks are `4·log₂ n` bits (domain `[1, n⁴]`), everything else is
//! constant-size tags.

use ftc_sim::payload::Payload;

use crate::rank::Rank;

/// Messages of the fault-tolerant leader-election protocol (Section IV-A).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LeMsg {
    /// Candidate → referee (pre-processing): "you are my referee; my
    /// rank/ID is `rank`".
    Register {
        /// The candidate's rank.
        rank: Rank,
    },
    /// Referee → candidate (pre-processing): one rank from the referee's
    /// collected rank list, forwarded at one rank per edge per round.
    ForwardRank {
        /// A rank of some other candidate of this referee.
        rank: Rank,
    },
    /// Candidate → referee (Steps 1/3/4): `⟨ID_u, p_u⟩` — `id` proposes
    /// `value` as the potential leader. A *self-proposal* (`id == value`)
    /// is a leadership claim.
    Propose {
        /// The proposing candidate's own rank.
        id: Rank,
        /// The rank it proposes as leader.
        value: Rank,
    },
    /// Referee → candidate (Step 2): the maximum proposal the referee has
    /// seen this round; `claimed` is true when the proposal was the
    /// proposer's own rank (`⟨ID_u, p^max⟩` vs `⟨⊥, p^max⟩` in the paper).
    Echo {
        /// Maximum proposed rank.
        value: Rank,
        /// Whether the maximum was a self-proposal.
        claimed: bool,
    },
    /// Settled candidate → everyone (explicit extension): the elected
    /// leader's rank.
    Announce {
        /// The agreed leader rank.
        leader: Rank,
    },
}

impl Payload for LeMsg {
    fn size_bits(&self) -> u32 {
        // Sizes assume ranks of a reasonably large network (48 bits covers
        // n up to 2^12 exactly; we charge a fixed 48 + tag for simplicity
        // and conservatism, still O(log n)).
        const RANK_BITS: u32 = 48;
        const TAG_BITS: u32 = 3;
        match self {
            LeMsg::Register { .. } | LeMsg::ForwardRank { .. } | LeMsg::Announce { .. } => {
                TAG_BITS + RANK_BITS
            }
            LeMsg::Propose { .. } => TAG_BITS + 2 * RANK_BITS,
            LeMsg::Echo { .. } => TAG_BITS + RANK_BITS + 1,
        }
    }
}

/// Messages of the fault-tolerant agreement protocol (Section V-A).
///
/// All messages carry a single bit of value (plus a registration tag),
/// which is why the agreement protocol's *bit* complexity matches its
/// message complexity (Theorem 5.1 counts message bits).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AgreeMsg {
    /// Candidate → referee (Step 0): "you are my referee, my input is 1".
    /// Carries no zero, so referees only register the sender.
    RegisterOne,
    /// "0" flowing in either direction: candidate → referee (Step 0/1) or
    /// referee → candidate (Step 2). Doubles as registration when coming
    /// from a candidate.
    Zero,
    /// Decided candidate → everyone (explicit extension): the agreed bit.
    Announce(bool),
}

impl Payload for AgreeMsg {
    fn size_bits(&self) -> u32 {
        match self {
            AgreeMsg::RegisterOne | AgreeMsg::Zero => 2,
            AgreeMsg::Announce(_) => 3,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn le_messages_are_congest_sized() {
        let msgs = [
            LeMsg::Register { rank: Rank(1) },
            LeMsg::ForwardRank { rank: Rank(2) },
            LeMsg::Propose {
                id: Rank(1),
                value: Rank(2),
            },
            LeMsg::Echo {
                value: Rank(3),
                claimed: true,
            },
            LeMsg::Announce { leader: Rank(1) },
        ];
        for m in &msgs {
            // O(log n): at most 2 ranks + tags; for n ≤ 2^12 that is ≤ 99 bits.
            assert!(m.size_bits() <= 99, "{m:?} too large");
            assert!(m.size_bits() >= 2);
        }
    }

    #[test]
    fn agreement_messages_are_single_bit_class() {
        assert_eq!(AgreeMsg::Zero.size_bits(), 2);
        assert_eq!(AgreeMsg::RegisterOne.size_bits(), 2);
        assert_eq!(AgreeMsg::Announce(true).size_bits(), 3);
    }

    #[test]
    fn propose_is_largest_le_message() {
        let p = LeMsg::Propose {
            id: Rank(1),
            value: Rank(1),
        };
        let e = LeMsg::Echo {
            value: Rank(1),
            claimed: false,
        };
        assert!(p.size_bits() > e.size_bits());
    }
}
