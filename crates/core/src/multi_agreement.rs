//! Multi-valued implicit agreement — a natural generalisation of the
//! paper's binary protocol (extension, not in the paper).
//!
//! The binary protocol of Section V-A is "0-propagation": the committee
//! is biased towards the smaller value, and a single bit per message
//! suffices. Generalising to inputs from `{0, …, k−1}` is mechanical —
//! propagate the *minimum* value seen instead of just "a 0" — but the
//! accounting changes in an instructive way: messages now carry
//! `⌈log₂ k⌉` bits, and a candidate/referee may forward up to `log₂ k`
//! *improvements* instead of one, so the message complexity picks up a
//! `log k` factor: `O(√n·log^{3/2}n·log k/α^{3/2})` messages of
//! `O(log k)` bits. Validity and consistency carry over verbatim: the
//! agreed value is the minimum input held by any (surviving chain of)
//! candidate(s).
//!
//! The binary protocol is exactly the `k = 2` special case (with the
//! all-ones silence optimisation, which generalises to "nodes holding the
//! maximum possible value send only registrations").

use std::collections::BTreeSet;

use ftc_sim::ids::Port;
use ftc_sim::payload::{bits_for, Payload};
use ftc_sim::prelude::*;

use crate::params::Params;
use crate::sampling;

/// Messages of the multi-valued agreement protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MultiMsg {
    /// Candidate → referee: registration, no value improvement implied
    /// (sent by candidates holding the maximum value, like `RegisterOne`).
    Register,
    /// A value flowing through the referee fabric (candidate → referee or
    /// referee → candidate). Doubles as registration.
    Value(u32),
}

impl Payload for MultiMsg {
    fn size_bits(&self) -> u32 {
        match self {
            MultiMsg::Register => 2,
            // Tag + value; the engine has no global k, so charge the
            // width of the carried value itself (≤ 32, O(log k) in use).
            MultiMsg::Value(v) => 2 + bits_for(u64::from(*v) + 2),
        }
    }
}

/// One node of the multi-valued implicit agreement protocol.
///
/// ```
/// use ftc_sim::prelude::*;
/// use ftc_core::multi_agreement::{MultiAgreeNode, MultiOutcome};
/// use ftc_core::params::Params;
///
/// let params = Params::new(128, 1.0)?;
/// let k = 16u32;
/// let cfg = SimConfig::new(128).seed(2).max_rounds(params.agreement_round_budget());
/// let result = run(
///     &cfg,
///     |id| MultiAgreeNode::new(params.clone(), k, 3 + (id.0 % 13)),
///     &mut NoFaults,
/// );
/// let o = MultiOutcome::evaluate(&result);
/// assert!(o.success);
/// assert_eq!(o.agreed_value, Some(3)); // the minimum input wins
/// # Ok::<(), ftc_core::params::ParamsError>(())
/// ```
#[derive(Clone, Debug)]
pub struct MultiAgreeNode {
    params: Params,
    /// Domain size `k` (inputs are `0..k`).
    k: u32,
    input: u32,
    /// Candidate role: referees + current minimum, if a candidate.
    candidate: Option<(Vec<Port>, u32)>,
    /// Referee role: registered candidate ports and current minimum.
    referee_candidates: Vec<Port>,
    referee_min: Option<u32>,
}

impl MultiAgreeNode {
    /// Creates a node with input `input ∈ {0, …, k−1}`.
    ///
    /// # Panics
    ///
    /// Panics if `input >= k` or `k < 2`.
    pub fn new(params: Params, k: u32, input: u32) -> Self {
        assert!(k >= 2, "domain must have at least two values");
        assert!(input < k, "input {input} outside domain 0..{k}");
        MultiAgreeNode {
            params,
            k,
            input,
            candidate: None,
            referee_candidates: Vec::new(),
            referee_min: None,
        }
    }

    /// The node's input value.
    pub fn input(&self) -> u32 {
        self.input
    }

    /// Whether this node made itself a candidate.
    pub fn is_candidate(&self) -> bool {
        self.candidate.is_some()
    }

    /// The candidate's current (and at termination, decided) value;
    /// `None` for non-candidates (`⊥`).
    pub fn decision(&self) -> Option<u32> {
        self.candidate.as_ref().map(|(_, v)| *v)
    }

    /// Candidate adopts `v` if it improves the current minimum, pushing
    /// the improvement to its referees.
    fn candidate_improve(&mut self, ctx: &mut Ctx<'_, MultiMsg>, v: u32) {
        if let Some((referees, cur)) = self.candidate.as_mut() {
            if v < *cur {
                *cur = v;
                let rs = referees.clone();
                for p in rs {
                    ctx.send(p, MultiMsg::Value(v));
                }
            }
        }
    }

    /// Referee adopts `v` if it improves, forwarding to its candidates.
    fn referee_improve(&mut self, ctx: &mut Ctx<'_, MultiMsg>, v: u32) {
        let improves = self.referee_min.is_none_or(|m| v < m);
        if improves {
            self.referee_min = Some(v);
            for p in self.referee_candidates.clone() {
                ctx.send(p, MultiMsg::Value(v));
            }
        }
    }
}

impl Protocol for MultiAgreeNode {
    type Msg = MultiMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, MultiMsg>) {
        if !sampling::decide_candidate(ctx.rng(), &self.params) {
            return;
        }
        let referees = sampling::sample_referee_ports(ctx.rng(), &self.params);
        // The maximum value plays the role of the binary protocol's "1":
        // holders only register. Everyone else pushes their value.
        let msg = if self.input == self.k - 1 {
            MultiMsg::Register
        } else {
            MultiMsg::Value(self.input)
        };
        for &p in &referees {
            ctx.send(p, msg);
        }
        self.candidate = Some((referees, self.input));
    }

    fn on_round(&mut self, ctx: &mut Ctx<'_, MultiMsg>, inbox: &[Incoming<MultiMsg>]) {
        let mut best: Option<u32> = None;
        for inc in inbox {
            match inc.msg {
                MultiMsg::Register => {
                    if !self.referee_candidates.contains(&inc.port) {
                        self.referee_candidates.push(inc.port);
                    }
                }
                MultiMsg::Value(v) => {
                    if !self.referee_candidates.contains(&inc.port) {
                        self.referee_candidates.push(inc.port);
                    }
                    best = Some(best.map_or(v, |b| b.min(v)));
                }
            }
        }
        if let Some(v) = best {
            self.referee_improve(ctx, v);
            if self.candidate.is_some() {
                self.candidate_improve(ctx, v);
            }
        }
    }

    fn is_terminated(&self) -> bool {
        true // purely reactive after round 0
    }

    fn is_inert(&self) -> bool {
        true // empty inbox ⇒ `best` stays `None` ⇒ strict no-op
    }
}

/// Evaluation of a multi-valued agreement run (Definition 2, generalised).
#[derive(Clone, Debug)]
pub struct MultiOutcome {
    /// Distinct decisions among alive candidates.
    pub decisions: Vec<u32>,
    /// The agreed value, when consistent.
    pub agreed_value: Option<u32>,
    /// Whether at least one alive node decided.
    pub some_decided: bool,
    /// Whether all alive decided nodes agree.
    pub consistent: bool,
    /// Whether the agreed value is some node's input.
    pub valid: bool,
    /// Non-emptiness + consistency + validity.
    pub success: bool,
}

impl MultiOutcome {
    /// Scores a finished run.
    pub fn evaluate(result: &RunResult<MultiAgreeNode>) -> Self {
        let decided: BTreeSet<u32> = result
            .surviving_states()
            .filter_map(|(_, s)| s.decision())
            .collect();
        let decisions: Vec<u32> = decided.iter().copied().collect();
        let some_decided = !decisions.is_empty();
        let consistent = decisions.len() <= 1;
        let agreed_value = (decisions.len() == 1).then(|| decisions[0]);
        let valid = agreed_value.is_some_and(|v| result.all_states().any(|(_, s)| s.input() == v));
        MultiOutcome {
            decisions,
            agreed_value,
            some_decided,
            consistent,
            valid,
            success: some_decided && consistent && valid,
        }
    }

    /// The minimum input among nodes that became candidates — the value
    /// a fault-free run must agree on.
    pub fn min_candidate_input(result: &RunResult<MultiAgreeNode>) -> Option<u32> {
        result
            .all_states()
            .filter(|(_, s)| s.is_candidate())
            .map(|(_, s)| s.input())
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftc_sim::ids::NodeId;

    fn run_multi(
        n: u32,
        alpha: f64,
        k: u32,
        seed: u64,
        inputs: impl Fn(NodeId) -> u32,
        adv: &mut dyn Adversary<MultiMsg>,
    ) -> RunResult<MultiAgreeNode> {
        let params = Params::new(n, alpha).unwrap();
        let cfg = SimConfig::new(n)
            .seed(seed)
            .max_rounds(params.agreement_round_budget());
        run(
            &cfg,
            |id| MultiAgreeNode::new(params.clone(), k, inputs(id)),
            adv,
        )
    }

    #[test]
    fn fault_free_agrees_on_min_candidate_input() {
        for seed in 0..10 {
            let r = run_multi(256, 1.0, 64, seed, |id| 5 + (id.0 * 7) % 59, &mut NoFaults);
            let o = MultiOutcome::evaluate(&r);
            assert!(o.success, "seed {seed}: {o:?}");
            assert_eq!(o.agreed_value, MultiOutcome::min_candidate_input(&r));
        }
    }

    #[test]
    fn unanimous_input_survives() {
        let r = run_multi(128, 1.0, 16, 3, |_| 9, &mut NoFaults);
        let o = MultiOutcome::evaluate(&r);
        assert!(o.success);
        assert_eq!(o.agreed_value, Some(9));
    }

    #[test]
    fn all_maximum_inputs_stay_silent() {
        let r = run_multi(256, 1.0, 8, 4, |_| 7, &mut NoFaults);
        let o = MultiOutcome::evaluate(&r);
        assert!(o.success);
        assert_eq!(o.agreed_value, Some(7));
        let registration = r.metrics.per_round.first().map_or(0, |m| m.sent);
        assert_eq!(
            r.metrics.msgs_sent, registration,
            "max-holders must be quiet"
        );
    }

    #[test]
    fn survives_mass_crashes() {
        for seed in 0..10 {
            let mut adv = RandomCrash::new(128, 20);
            let r = run_multi(256, 0.5, 32, seed, |id| (id.0 * 13) % 32, &mut adv);
            let o = MultiOutcome::evaluate(&r);
            assert!(o.success, "seed {seed}: {o:?}");
        }
    }

    #[test]
    fn binary_case_matches_binary_protocol_semantics() {
        // k = 2 must behave like the binary protocol: decide 0 iff some
        // candidate holds 0.
        for seed in 0..10 {
            let r = run_multi(
                256,
                1.0,
                2,
                seed,
                |id| u32::from(id.0 % 9 != 0),
                &mut NoFaults,
            );
            let o = MultiOutcome::evaluate(&r);
            assert!(o.success, "seed {seed}");
            let min_cand = MultiOutcome::min_candidate_input(&r);
            assert_eq!(o.agreed_value, min_cand);
        }
    }

    #[test]
    fn message_bits_scale_with_log_k() {
        // Same inputs modulo domain size: wider domains cost more bits
        // per message but the same order of messages.
        let small = run_multi(512, 1.0, 4, 7, |id| id.0 % 4, &mut NoFaults);
        let large = run_multi(
            512,
            1.0,
            1 << 16,
            7,
            |id| (id.0 * 7919) % (1 << 16),
            &mut NoFaults,
        );
        assert!(MultiOutcome::evaluate(&small).success);
        assert!(MultiOutcome::evaluate(&large).success);
        let small_bits_per_msg = small.metrics.bits_sent as f64 / small.metrics.msgs_sent as f64;
        let large_bits_per_msg = large.metrics.bits_sent as f64 / large.metrics.msgs_sent as f64;
        assert!(large_bits_per_msg > small_bits_per_msg);
        assert!(large_bits_per_msg <= 2.0 + 17.0, "still O(log k)");
    }

    #[test]
    fn chain_of_improvements_converges() {
        // Adversarial input layout: values descend so the minimum is held
        // by exactly one node; improvements must cascade.
        for seed in 0..5 {
            let r = run_multi(
                256,
                1.0,
                300,
                seed,
                |id| 299 - (id.0 % 300).min(299),
                &mut NoFaults,
            );
            let o = MultiOutcome::evaluate(&r);
            assert!(o.success, "seed {seed}: {o:?}");
            assert_eq!(o.agreed_value, MultiOutcome::min_candidate_input(&r));
        }
    }

    #[test]
    #[should_panic(expected = "outside domain")]
    fn out_of_domain_input_rejected() {
        let params = Params::new(64, 1.0).unwrap();
        let _ = MultiAgreeNode::new(params, 4, 4);
    }
}
