//! Protocol parameters and the quantities derived from them.
//!
//! Every constant of the paper's algorithms is surfaced here so the bench
//! harness can ablate them (DESIGN.md §6):
//!
//! * candidate self-selection probability `6·ln n / (α·n)` (Lemma 1),
//! * referee sample size `2·√(n·ln n / α)` (Lemma 3),
//! * iteration budget `Θ(log n / α)` (Theorem 4.1 / 5.1).
//!
//! `α` is the guaranteed fraction of non-faulty nodes; the paper allows
//! `α ∈ [log² n / n, 1]`, i.e. up to `n - log² n` crash faults.

use std::fmt;

/// Errors from invalid parameter combinations.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ParamsError {
    /// `n < 2` — not a network.
    NetworkTooSmall,
    /// `α` outside `(0, 1]`.
    AlphaOutOfRange {
        /// The offending value.
        alpha: f64,
    },
    /// `α < log² n / n`: more faults than the algorithms tolerate.
    AlphaBelowResilience {
        /// The offending value.
        alpha: f64,
        /// The smallest admissible `α` for this `n`.
        min_alpha: f64,
    },
}

impl fmt::Display for ParamsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamsError::NetworkTooSmall => write!(f, "network must have at least two nodes"),
            ParamsError::AlphaOutOfRange { alpha } => {
                write!(f, "alpha {alpha} outside (0, 1]")
            }
            ParamsError::AlphaBelowResilience { alpha, min_alpha } => write!(
                f,
                "alpha {alpha} below the tolerated minimum log^2(n)/n = {min_alpha}"
            ),
        }
    }
}

impl std::error::Error for ParamsError {}

/// Parameters of the fault-tolerant leader-election and agreement
/// protocols.
///
/// Construct with [`Params::new`] (paper defaults) and adjust individual
/// constants with the `with_*` methods for ablation studies.
///
/// ```
/// use ftc_core::params::Params;
///
/// let p = Params::new(1024, 0.5)?;
/// assert!(p.candidate_probability() < 0.1);
/// assert!(p.referee_count() > 100);
/// # Ok::<(), ftc_core::params::ParamsError>(())
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Params {
    n: u32,
    alpha: f64,
    candidate_factor: f64,
    referee_factor: f64,
    iteration_factor: f64,
}

impl Params {
    /// Paper-default parameters for an `n`-node network with at least
    /// `α·n` non-faulty nodes.
    ///
    /// # Errors
    ///
    /// Returns [`ParamsError`] if `n < 2`, `α ∉ (0, 1]`, or
    /// `α < log²n/n` (the paper's resilience limit — enforced whenever
    /// the floor is below 1; see [`Params::min_alpha`] for the tiny-`n`
    /// exception).
    pub fn new(n: u32, alpha: f64) -> Result<Self, ParamsError> {
        if n < 2 {
            return Err(ParamsError::NetworkTooSmall);
        }
        if !(alpha > 0.0 && alpha <= 1.0) {
            return Err(ParamsError::AlphaOutOfRange { alpha });
        }
        let min_alpha = Self::min_alpha(n);
        if alpha < min_alpha {
            return Err(ParamsError::AlphaBelowResilience { alpha, min_alpha });
        }
        Ok(Params {
            n,
            alpha,
            candidate_factor: 6.0,
            referee_factor: 2.0,
            iteration_factor: 14.0,
        })
    }

    /// The enforced minimum `α` for a given `n`: the paper's resilience
    /// floor `log₂²n / n`, or `0` when that floor exceeds 1.
    ///
    /// For tiny networks (`n ≤ 16`) the floor is above 1, i.e. the
    /// paper's admissible range `[log²n/n, 1]` is empty — the asymptotic
    /// regime simply has not kicked in yet. Rather than reject every `α`,
    /// such networks accept the full `(0, 1]` range and run best-effort:
    /// the algorithms stay correct, only the whp guarantees are vacuous.
    pub fn min_alpha(n: u32) -> f64 {
        let log2n = (f64::from(n)).log2();
        let floor = log2n * log2n / f64::from(n);
        if floor >= 1.0 {
            0.0
        } else {
            floor
        }
    }

    /// Overrides the candidate-probability constant (paper: 6, Lemma 1).
    pub fn with_candidate_factor(mut self, factor: f64) -> Self {
        assert!(factor > 0.0, "candidate factor must be positive");
        self.candidate_factor = factor;
        self
    }

    /// Overrides the referee-sample constant (paper: 2, Lemma 3).
    pub fn with_referee_factor(mut self, factor: f64) -> Self {
        assert!(factor > 0.0, "referee factor must be positive");
        self.referee_factor = factor;
        self
    }

    /// Overrides the iteration-budget constant.
    pub fn with_iteration_factor(mut self, factor: f64) -> Self {
        assert!(factor > 0.0, "iteration factor must be positive");
        self.iteration_factor = factor;
        self
    }

    /// Network size `n`.
    pub fn n(&self) -> u32 {
        self.n
    }

    /// Guaranteed non-faulty fraction `α`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Maximum number of crash faults these parameters tolerate:
    /// `⌊(1 − α)·n⌋`.
    pub fn max_faults(&self) -> usize {
        ((1.0 - self.alpha) * f64::from(self.n)).floor() as usize
    }

    /// `ln n` (natural log), the `log n` of all derived formulas.
    pub fn ln_n(&self) -> f64 {
        f64::from(self.n).ln()
    }

    /// Probability with which a node makes itself a candidate:
    /// `min(1, c·ln n / (α·n))` (Lemma 1, `c = 6` by default).
    pub fn candidate_probability(&self) -> f64 {
        (self.candidate_factor * self.ln_n() / (self.alpha * f64::from(self.n))).min(1.0)
    }

    /// Expected number of candidates, `n · candidate_probability`.
    pub fn expected_candidates(&self) -> f64 {
        self.candidate_probability() * f64::from(self.n)
    }

    /// Number of referees each candidate samples:
    /// `min(n−1, ⌈c·√(n·ln n / α)⌉)` (Lemma 3, `c = 2` by default).
    pub fn referee_count(&self) -> usize {
        let raw = self.referee_factor * (f64::from(self.n) * self.ln_n() / self.alpha).sqrt();
        (raw.ceil() as usize).min(self.n as usize - 1)
    }

    /// Iteration budget `⌈c·ln n / α⌉` (Theorems 4.1/5.1). The default
    /// constant 14 covers the whp upper bound `12·ln n/α` on the candidate
    /// count (Lemma 1): one crash can stall at most one iteration.
    pub fn iterations(&self) -> u32 {
        (self.iteration_factor * self.ln_n() / self.alpha).ceil() as u32
    }

    /// Rounds reserved for the pre-processing phase in which referees
    /// forward the ranks they collected to their candidates (one rank per
    /// edge per round, CONGEST). Sized at three times the expected
    /// referee in-degree plus a `log n` tail margin.
    pub fn preprocess_rounds(&self) -> u32 {
        let indegree =
            self.expected_candidates() * self.referee_count() as f64 / f64::from(self.n - 1);
        (3.0 * indegree + 2.0 * self.ln_n() + 4.0).ceil() as u32
    }

    /// Total round budget for implicit leader election:
    /// pre-processing + 4 rounds per iteration + drain slack.
    pub fn le_round_budget(&self) -> u32 {
        self.preprocess_rounds() + 4 * self.iterations() + 8
    }

    /// Total round budget for implicit agreement:
    /// registration + 2 rounds per iteration + drain slack.
    pub fn agreement_round_budget(&self) -> u32 {
        1 + 2 * self.iterations() + 8
    }

    /// The paper's predicted message bound for implicit leader election,
    /// `√n · ln^{5/2} n / α^{5/2}` (Theorem 4.1, constant-free).
    pub fn le_message_bound(&self) -> f64 {
        f64::from(self.n).sqrt() * self.ln_n().powf(2.5) / self.alpha.powf(2.5)
    }

    /// The paper's predicted message bound for implicit agreement,
    /// `√n · ln^{3/2} n / α^{3/2}` (Theorem 5.1, constant-free).
    pub fn agreement_message_bound(&self) -> f64 {
        f64::from(self.n).sqrt() * self.ln_n().powf(1.5) / self.alpha.powf(1.5)
    }

    /// The lower-bound threshold `√n / α^{3/2}` (Theorems 4.2 / 5.2).
    pub fn lower_bound_threshold(&self) -> f64 {
        f64::from(self.n).sqrt() / self.alpha.powf(1.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_formulas() {
        let p = Params::new(4096, 0.5).unwrap();
        let ln_n = 4096f64.ln();
        assert!((p.candidate_probability() - 6.0 * ln_n / (0.5 * 4096.0)).abs() < 1e-12);
        assert_eq!(
            p.referee_count(),
            (2.0 * (4096.0 * ln_n / 0.5).sqrt()).ceil() as usize
        );
        assert_eq!(p.iterations(), (14.0 * ln_n / 0.5).ceil() as u32);
    }

    #[test]
    fn caps_apply_for_tiny_networks() {
        let p = Params::new(8, 1.0).unwrap();
        assert!(p.candidate_probability() <= 1.0);
        assert!(p.referee_count() <= 7);
    }

    #[test]
    fn tiny_networks_escape_the_resilience_floor() {
        // log₂²n/n > 1 for n ≤ 16: the paper's admissible α-range is
        // empty, so any α ∈ (0, 1] is accepted (best-effort regime).
        assert_eq!(Params::min_alpha(8), 0.0);
        assert_eq!(Params::min_alpha(16), 0.0);
        assert!(Params::new(8, 0.5).is_ok());
        assert!(Params::new(16, 0.25).is_ok());
        // From n = 32 on the floor is real again.
        assert!(Params::min_alpha(32) > 0.75);
        assert!(matches!(
            Params::new(32, 0.5),
            Err(ParamsError::AlphaBelowResilience { .. })
        ));
    }

    #[test]
    fn alpha_resilience_limit_enforced() {
        // n = 1024: log2^2(n)/n = 100/1024 ≈ 0.0977.
        let err = Params::new(1024, 0.05).unwrap_err();
        match err {
            ParamsError::AlphaBelowResilience { min_alpha, .. } => {
                assert!((min_alpha - 100.0 / 1024.0).abs() < 1e-12);
            }
            other => panic!("wrong error {other:?}"),
        }
        assert!(Params::new(1024, 0.1).is_ok());
    }

    #[test]
    fn invalid_alpha_and_n_rejected() {
        assert_eq!(
            Params::new(1, 0.5).unwrap_err(),
            ParamsError::NetworkTooSmall
        );
        assert!(matches!(
            Params::new(16, 0.0),
            Err(ParamsError::AlphaOutOfRange { .. })
        ));
        assert!(matches!(
            Params::new(16, 1.5),
            Err(ParamsError::AlphaOutOfRange { .. })
        ));
        assert!(matches!(
            Params::new(16, f64::NAN),
            Err(ParamsError::AlphaOutOfRange { .. })
        ));
    }

    #[test]
    fn max_faults_counts_complement() {
        let p = Params::new(4096, 0.25).unwrap();
        assert_eq!(p.max_faults(), 3072);
        let p1 = Params::new(100, 1.0).unwrap();
        assert_eq!(p1.max_faults(), 0);
    }

    #[test]
    fn ablation_setters_change_derived_quantities() {
        let p = Params::new(1024, 0.5).unwrap();
        let thin = p.clone().with_referee_factor(0.5);
        assert!(thin.referee_count() < p.referee_count());
        let dense = p.clone().with_candidate_factor(12.0);
        assert!(dense.expected_candidates() > p.expected_candidates());
        let quick = p.clone().with_iteration_factor(1.0);
        assert!(quick.iterations() < p.iterations());
    }

    #[test]
    fn message_bounds_are_asymptotically_sublinear() {
        // The bounds carry polylog factors, so check the *ratio* to n
        // shrinks as n grows (true sublinearity is asymptotic).
        let ratios: Vec<f64> = [1u32 << 12, 1 << 16, 1 << 20, 1 << 26]
            .iter()
            .map(|&n| {
                let p = Params::new(n, 0.5).unwrap();
                assert!(p.lower_bound_threshold() < p.agreement_message_bound());
                assert!(p.agreement_message_bound() < p.le_message_bound());
                p.agreement_message_bound() / f64::from(n)
            })
            .collect();
        assert!(ratios.windows(2).all(|w| w[1] < w[0]), "{ratios:?}");
        // At n = 2^26 the agreement bound is decisively sublinear.
        let p = Params::new(1 << 26, 0.5).unwrap();
        assert!(p.agreement_message_bound() < f64::from(1u32 << 26) / 10.0);
    }

    #[test]
    fn round_budgets_are_positive_and_ordered() {
        let p = Params::new(256, 0.5).unwrap();
        assert!(p.preprocess_rounds() > 0);
        assert!(p.le_round_budget() > p.preprocess_rounds());
        assert!(p.agreement_round_budget() > p.iterations());
    }
}
