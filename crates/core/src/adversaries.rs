//! The paper's worst-case crash schedules, as concrete adversaries.
//!
//! Section IV-A's analysis is driven by the schedule "the minimum-ID
//! candidate crashes in each iteration, just as it broadcasts": the
//! protocol then needs a full `Θ(log n/α)` iterations. [`MinRankCrasher`]
//! implements exactly that against the leader-election messages.
//! Section V-A's analog — "the single node with value 0 crashes in each
//! iteration", making the 0 propagate maximally slowly — is
//! [`ZeroHolderCrasher`].
//!
//! Both are *static* adversaries in the paper's sense: the faulty set is
//! fixed before execution; only the crash *timing* adapts (which the model
//! explicitly allows).

use rand::rngs::SmallRng;

use ftc_sim::adversary::{Adversary, AdversaryView, CrashDirective, DeliveryFilter, FaultySet};
use ftc_sim::ids::NodeId;

use crate::messages::{AgreeMsg, LeMsg};
use crate::rank::Rank;

/// Crashes, each round, the faulty candidate that is currently
/// *self-proposing* the smallest rank — i.e. repeatedly assassinates the
/// would-be leader mid-claim, delivering only half of its claim messages
/// to maximise disagreement.
#[derive(Clone, Debug)]
pub struct MinRankCrasher {
    /// Size of the (random) faulty set.
    pub f: usize,
    /// Maximum assassinations per round (paper intuition: one per
    /// iteration).
    pub per_round: usize,
}

impl MinRankCrasher {
    /// `f` random faulty nodes; one assassination per round.
    pub fn new(f: usize) -> Self {
        MinRankCrasher { f, per_round: 1 }
    }
}

impl Adversary<LeMsg> for MinRankCrasher {
    fn faulty_set(&mut self, n: u32, rng: &mut SmallRng) -> FaultySet {
        FaultySet::random(n, self.f, rng)
    }

    fn on_round(
        &mut self,
        view: &AdversaryView<'_, LeMsg>,
        _rng: &mut SmallRng,
    ) -> Vec<CrashDirective> {
        // Find crashable nodes currently sending a self-proposal (a claim
        // or an initial self-min proposal) and snipe the smallest.
        let mut claimants: Vec<(Rank, NodeId, usize)> = view
            .crashable()
            .filter_map(|node| {
                let out = view.outgoing_of(node);
                out.iter()
                    .filter_map(|e| match e.msg {
                        LeMsg::Propose { id, value } if id == value => Some(value),
                        LeMsg::Register { rank } => Some(rank),
                        _ => None,
                    })
                    .min()
                    .map(|r| (r, node, out.len()))
            })
            .collect();
        claimants.sort();
        claimants
            .into_iter()
            .take(self.per_round)
            .map(|(_, node, out_len)| CrashDirective {
                node,
                // Deliver only the first half of the claim: some referees
                // hear it, some do not — the paper's split-view scenario.
                filter: DeliveryFilter::KeepFirst(out_len / 2),
            })
            .collect()
    }
}

/// Crashes, each round, one faulty node that is currently forwarding a
/// `0`, letting only a single copy through — the slowest admissible
/// propagation of the decisive value.
#[derive(Clone, Debug)]
pub struct ZeroHolderCrasher {
    /// Size of the (random) faulty set.
    pub f: usize,
    /// Maximum crashes per round.
    pub per_round: usize,
}

impl ZeroHolderCrasher {
    /// `f` random faulty nodes; one crash per round.
    pub fn new(f: usize) -> Self {
        ZeroHolderCrasher { f, per_round: 1 }
    }
}

impl Adversary<AgreeMsg> for ZeroHolderCrasher {
    fn faulty_set(&mut self, n: u32, rng: &mut SmallRng) -> FaultySet {
        FaultySet::random(n, self.f, rng)
    }

    fn on_round(
        &mut self,
        view: &AdversaryView<'_, AgreeMsg>,
        _rng: &mut SmallRng,
    ) -> Vec<CrashDirective> {
        let zero_senders: Vec<NodeId> = view
            .crashable()
            .filter(|&node| {
                view.outgoing_of(node)
                    .iter()
                    .any(|e| matches!(e.msg, AgreeMsg::Zero))
            })
            .collect();
        zero_senders
            .into_iter()
            .take(self.per_round)
            .map(|node| CrashDirective {
                node,
                filter: DeliveryFilter::KeepFirst(1),
            })
            .collect()
    }
}

/// An **adaptive** adversary — deliberately *outside* the paper's model.
///
/// The paper assumes a static adversary: the faulty set is fixed before
/// the run, so it cannot know which nodes will flip the candidate coin.
/// This adversary cheats exactly there: it watches round-0 traffic,
/// identifies the nodes that just became candidates (they register with
/// referees), and crashes them before their registrations leave — up to
/// a budget of `f` crashes. Because the committee has only `Θ(log n/α)`
/// members while the budget is `Θ(n)`, it wipes the committee out and
/// the election fails — the experiment (E11) that motivates the paper's
/// static-adversary assumption and connects to the adaptive-adversary
/// line of work (Bar-Joseph & Ben-Or; Hajiaghayi et al.).
///
/// It satisfies the [`Adversary`] interface by declaring *every* node
/// potentially faulty, which is precisely what "adaptive" means; do not
/// use it to evaluate the paper's guarantees.
#[derive(Clone, Debug)]
pub struct AdaptiveCandidateKiller {
    /// Total crash budget.
    pub budget: usize,
    crashed: usize,
}

impl AdaptiveCandidateKiller {
    /// An adaptive adversary allowed `budget` crashes.
    pub fn new(budget: usize) -> Self {
        AdaptiveCandidateKiller { budget, crashed: 0 }
    }
}

impl Adversary<LeMsg> for AdaptiveCandidateKiller {
    fn faulty_set(&mut self, n: u32, _rng: &mut SmallRng) -> FaultySet {
        // Adaptivity = the faulty set is unconstrained a priori.
        FaultySet::from_nodes(n, (0..n).map(NodeId))
    }

    fn on_round(
        &mut self,
        view: &AdversaryView<'_, LeMsg>,
        _rng: &mut SmallRng,
    ) -> Vec<CrashDirective> {
        let mut out = Vec::new();
        for node in view.crashable() {
            if self.crashed >= self.budget {
                break;
            }
            let registering = view
                .outgoing_of(node)
                .iter()
                .any(|e| matches!(e.msg, LeMsg::Register { .. } | LeMsg::Propose { .. }));
            if registering {
                self.crashed += 1;
                out.push(CrashDirective {
                    node,
                    filter: DeliveryFilter::DropAll,
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agreement::{AgreeNode, AgreeOutcome};
    use crate::leader_election::{LeNode, LeOutcome};
    use crate::params::Params;
    use ftc_sim::prelude::*;

    #[test]
    fn le_survives_min_rank_assassin() {
        let params = Params::new(256, 0.5).unwrap();
        for seed in 0..10 {
            let cfg = SimConfig::new(256)
                .seed(seed)
                .max_rounds(params.le_round_budget());
            let mut adv = MinRankCrasher::new(128);
            let result = run(&cfg, |_| LeNode::new(params.clone()), &mut adv);
            let o = LeOutcome::evaluate(&result);
            assert!(o.success, "seed {seed}: {o:?}");
        }
    }

    #[test]
    fn assassin_costs_extra_rounds_but_not_correctness() {
        let params = Params::new(256, 0.5).unwrap();
        let cfg = SimConfig::new(256)
            .seed(3)
            .max_rounds(params.le_round_budget());
        let mut benign_rounds = 0u64;
        let mut attacked_rounds = 0u64;
        for seed in 0..5 {
            let c = cfg.clone().seed(seed);
            let r1 = run(&c, |_| LeNode::new(params.clone()), &mut NoFaults);
            benign_rounds += u64::from(r1.metrics.rounds);
            let mut adv = MinRankCrasher::new(128);
            let r2 = run(&c, |_| LeNode::new(params.clone()), &mut adv);
            attacked_rounds += u64::from(r2.metrics.rounds);
            assert!(LeOutcome::evaluate(&r2).success, "seed {seed}");
        }
        assert!(
            attacked_rounds >= benign_rounds,
            "assassin should not speed things up: {attacked_rounds} vs {benign_rounds}"
        );
    }

    #[test]
    fn agreement_survives_zero_holder_crasher() {
        let params = Params::new(256, 0.5).unwrap();
        for seed in 0..10 {
            let cfg = SimConfig::new(256)
                .seed(seed)
                .max_rounds(params.agreement_round_budget());
            let mut adv = ZeroHolderCrasher::new(128);
            let result = run(
                &cfg,
                |id| AgreeNode::new(params.clone(), id.0 >= 4),
                &mut adv,
            );
            let o = AgreeOutcome::evaluate(&result);
            assert!(o.success, "seed {seed}: {o:?}");
        }
    }

    #[test]
    fn adaptive_killer_defeats_the_protocol() {
        // E11: with an adaptive adversary and a linear crash budget, the
        // committee is annihilated and the election must fail — the
        // protocol's guarantees are for *static* adversaries only.
        let params = Params::new(256, 0.5).unwrap();
        let mut failures = 0;
        for seed in 0..10 {
            let cfg = SimConfig::new(256)
                .seed(seed)
                .max_rounds(params.le_round_budget());
            let mut adv = AdaptiveCandidateKiller::new(128);
            let result = run(&cfg, |_| LeNode::new(params.clone()), &mut adv);
            if !LeOutcome::evaluate(&result).success {
                failures += 1;
            }
        }
        assert!(
            failures >= 9,
            "adaptive adversary failed to win: {failures}/10"
        );
    }

    #[test]
    fn adversaries_respect_fault_budget() {
        let params = Params::new(128, 0.75).unwrap();
        let cfg = SimConfig::new(128)
            .seed(1)
            .max_rounds(params.le_round_budget());
        let mut adv = MinRankCrasher::new(32);
        let result = run(&cfg, |_| LeNode::new(params.clone()), &mut adv);
        assert!(result.metrics.crash_count() <= 32);
        assert!(result
            .metrics
            .crashes
            .iter()
            .all(|(id, _)| result.faulty.contains(*id)));
    }
}
