//! Fault-tolerant implicit leader election (Section IV-A, Theorem 4.1).
//!
//! The protocol in one breath: every node makes itself a *candidate* with
//! probability `Θ(log n/(α·n))`; each candidate samples `Θ(√(n·log n/α))`
//! *referee* nodes and registers its random rank with them; referees
//! forward the ranks they collect, giving every candidate a `rankList`;
//! then, in `O(log n/α)` four-round iterations, candidates repeatedly
//! propose the minimum viable rank they know through their referees,
//! referees echo back the *maximum* proposal they heard (flagging whether
//! it was a self-proposal, i.e. a leadership claim), and candidates prune
//! every rank below the echoed maximum. A candidate whose own rank comes
//! back as the maximum claims leadership; a claim that is delivered without
//! the claimer crashing settles every candidate on that leader, because any
//! two candidates share a non-faulty referee (Lemma 3). If the current
//! minimum crashes mid-broadcast, its rank is eventually timed out and
//! removed, and the next minimum takes its place — at most one rank dies
//! per iteration, and the committee has `O(log n/α)` members (Lemma 1).
//!
//! The result: `O(log n/α)` rounds and `O(√n·log^{5/2}n/α^{5/2})` messages
//! whp, tolerating up to `n − log²n` crash faults, in an anonymous KT0
//! network. A crashed node is never elected (it may crash *after* the
//! election; the leader is non-faulty with probability ≥ α).

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use ftc_sim::ids::{NodeId, Port, Round};
use ftc_sim::prelude::*;

use crate::messages::LeMsg;
use crate::params::Params;
use crate::rank::Rank;
use crate::sampling;

/// How many proposer-silent phase-A activations a candidate waits on one
/// support target before declaring the target dead (the paper's "didn't
/// receive any updates in the next 4 rounds", Step 4, with slack for the
/// two-hop candidate↔referee round trip).
const SUPPORT_PATIENCE: u32 = 3;

/// A node's final verdict for the implicit leader-election problem
/// (Definition 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LeStatus {
    /// The node output `ELECTED` (claimed leadership and never retracted).
    Elected,
    /// The node output `NON_ELECTED`.
    NonElected,
}

/// State of a node that chose to be a candidate.
#[derive(Clone, Debug)]
struct CandidateState {
    /// Own rank (= own ID).
    id: Rank,
    /// Ports of the sampled referees.
    referees: Vec<Port>,
    /// Ranks of (known) candidates, own rank included; pruned from below
    /// as higher maxima are echoed.
    rank_list: BTreeSet<Rank>,
    /// Ranks this candidate has already proposed at a phase-A activation
    /// ("a node proposes a rank from its rankList only once").
    proposed: BTreeSet<Rank>,
    /// Ranks discovered to be dead (timed out); never re-admitted.
    dead: BTreeSet<Rank>,
    /// Largest echoed maximum processed so far; everything below is pruned.
    floor: Rank,
    /// The rank this candidate is currently waiting on (its own last
    /// proposal or an adopted support target).
    support: Option<Rank>,
    /// Phase-A activations spent waiting on `support` without progress.
    support_age: u32,
    /// Support values already relayed (the paper's "sends ⟨ID_u, p̃max⟩"
    /// happens once per adopted value).
    relayed: BTreeSet<Rank>,
    /// Current leader belief.
    leader: Option<Rank>,
    /// Whether this node claimed leadership (and hasn't been superseded).
    marked_leader: bool,
    /// Settled: believes a leader and awaits nothing.
    settled: bool,
}

/// State of a node in its referee role (any node may be sampled).
#[derive(Clone, Debug, Default)]
struct RefereeState {
    /// Ports of the candidates that registered with this referee.
    candidates: Vec<Port>,
    /// First-seen arrival port of each known rank (to avoid echoing a
    /// candidate its own rank during pre-processing). Ordered map: the
    /// forward queue is built by iterating the keys, so the container's
    /// iteration order must be deterministic for runs to replay exactly.
    rank_origin: BTreeMap<Rank, Port>,
    /// Pending `(destination port, rank)` forwards, drained at one message
    /// per port per round (CONGEST).
    forward_queue: VecDeque<(Port, Rank)>,
}

/// One node of the fault-tolerant implicit leader-election protocol.
///
/// Construct per node with [`LeNode::new`] and run with
/// [`ftc_sim::engine::run`]; evaluate the outcome with
/// [`LeOutcome::evaluate`].
///
/// ```
/// use ftc_sim::prelude::*;
/// use ftc_core::leader_election::{LeNode, LeOutcome};
/// use ftc_core::params::Params;
///
/// let params = Params::new(64, 1.0)?;
/// let cfg = SimConfig::new(64).seed(3).max_rounds(params.le_round_budget());
/// let result = run(&cfg, |_| LeNode::new(params.clone()), &mut NoFaults);
/// let outcome = LeOutcome::evaluate(&result);
/// assert!(outcome.success);
/// # Ok::<(), ftc_core::params::ParamsError>(())
/// ```
#[derive(Clone, Debug)]
pub struct LeNode {
    params: Params,
    candidate: Option<CandidateState>,
    referee: RefereeState,
}

impl LeNode {
    /// Creates the protocol state for one node.
    pub fn new(params: Params) -> Self {
        LeNode {
            params,
            candidate: None,
            referee: RefereeState::default(),
        }
    }

    /// This node's verdict (Definition 1). Every node outputs; unsettled
    /// candidates output `NON_ELECTED` like everyone else.
    pub fn status(&self) -> LeStatus {
        match &self.candidate {
            Some(c) if c.marked_leader => LeStatus::Elected,
            _ => LeStatus::NonElected,
        }
    }

    /// Whether this node made itself a candidate.
    pub fn is_candidate(&self) -> bool {
        self.candidate.is_some()
    }

    /// The candidate's rank, if this node is a candidate.
    pub fn rank(&self) -> Option<Rank> {
        self.candidate.as_ref().map(|c| c.id)
    }

    /// The candidate's current leader belief, if any.
    pub fn leader_belief(&self) -> Option<Rank> {
        self.candidate.as_ref().and_then(|c| c.leader)
    }

    /// Whether this candidate has settled on a leader.
    pub fn is_settled(&self) -> bool {
        self.candidate.as_ref().is_none_or(|c| c.settled)
    }

    /// The KT0 ports of the referees this candidate sampled, if this node
    /// is a candidate. Ports are the node's private view of its neighbours;
    /// callers map them to node ids with [`ftc_sim::round::PortMap`].
    ///
    /// Fault seeders use this: constructing a split-brain counterexample
    /// requires crashing exactly the referees two candidates share, which
    /// means reading the sampled sets out of a probe run.
    pub fn referee_ports(&self) -> Option<&[Port]> {
        self.candidate.as_ref().map(|c| c.referees.as_slice())
    }

    /// First round of the iteration phase.
    fn t0(&self) -> Round {
        self.params.preprocess_rounds()
    }

    /// Whether `round` is a phase-A (proposal) activation.
    fn is_phase_a(&self, round: Round) -> bool {
        round >= self.t0() && (round - self.t0()).is_multiple_of(4)
    }

    // ------------------------------------------------------------------
    // Referee role
    // ------------------------------------------------------------------

    fn referee_register(&mut self, from: Port, rank: Rank) {
        let r = &mut self.referee;
        if r.rank_origin.contains_key(&rank) {
            // Duplicate rank (collision or rebroadcast): remember only the
            // first origin, still queue forwards below for a new port.
        }
        let is_new_port = !r.candidates.contains(&from);
        if is_new_port {
            // Forward all previously known ranks to the newcomer...
            let known: Vec<Rank> = r.rank_origin.keys().copied().collect();
            for k in known {
                if r.rank_origin[&k] != from {
                    r.forward_queue.push_back((from, k));
                }
            }
            r.candidates.push(from);
        }
        if !r.rank_origin.contains_key(&rank) {
            // ...and the new rank to all previously registered candidates.
            for &p in &r.candidates {
                if p != from {
                    r.forward_queue.push_back((p, rank));
                }
            }
            r.rank_origin.insert(rank, from);
        }
    }

    fn referee_drain_forwards(&mut self, ctx: &mut Ctx<'_, LeMsg>) {
        // One forwarded rank per destination port per round (CONGEST).
        let r = &mut self.referee;
        if r.forward_queue.is_empty() {
            return;
        }
        let mut used: BTreeSet<Port> = BTreeSet::new();
        let mut requeue: VecDeque<(Port, Rank)> = VecDeque::new();
        while let Some((port, rank)) = r.forward_queue.pop_front() {
            if used.contains(&port) {
                requeue.push_back((port, rank));
            } else {
                used.insert(port);
                ctx.send(port, LeMsg::ForwardRank { rank });
            }
        }
        r.forward_queue = requeue;
    }

    fn referee_echo(
        &mut self,
        ctx: &mut Ctx<'_, LeMsg>,
        proposals: &[(Rank, Rank)], // (id, value) received this round
    ) {
        if proposals.is_empty() {
            return;
        }
        let value = proposals.iter().map(|&(_, v)| v).max().expect("non-empty");
        let claimed = proposals.iter().any(|&(id, v)| v == value && id == value);
        for &p in &self.referee.candidates {
            ctx.send(p, LeMsg::Echo { value, claimed });
        }
    }

    // ------------------------------------------------------------------
    // Candidate role
    // ------------------------------------------------------------------

    /// Sends `Propose{id, value}` to all referees.
    fn send_proposal(cand: &CandidateState, ctx: &mut Ctx<'_, LeMsg>, value: Rank) {
        for &p in &cand.referees {
            ctx.send(p, LeMsg::Propose { id: cand.id, value });
        }
    }

    /// Processes the maximum echo of this activation (Step 3 logic).
    fn candidate_process_echo(&mut self, ctx: &mut Ctx<'_, LeMsg>, value: Rank, claimed: bool) {
        let Some(cand) = self.candidate.as_mut() else {
            return;
        };
        if value < cand.floor {
            return; // stale echo, already superseded
        }
        cand.floor = cand.floor.max(value);
        // "removes all the ranks smaller than the received rank"
        cand.rank_list = cand.rank_list.split_off(&value);

        if value == cand.id {
            // Our own rank is the maximum: claim leadership (once) and
            // re-broadcast the claim so it reaches every candidate's
            // referees (Step 3, "sends ⟨ID_u, p̃max⟩ ... and marks itself").
            if !cand.marked_leader {
                cand.marked_leader = true;
                cand.leader = Some(cand.id);
                cand.settled = true;
                cand.support = None;
                let id = cand.id;
                Self::send_proposal(cand, ctx, id);
            }
            return;
        }

        // The maximum is someone else's rank; a claim we may have made for
        // a smaller rank is superseded.
        if cand.marked_leader && cand.id < value {
            cand.marked_leader = false;
            cand.settled = false;
            cand.leader = None;
        }

        if claimed {
            // The owner of `value` proposed itself and the claim got
            // through: adopt it and relay once ("u sends ⟨ID_u, p̃max⟩ and
            // considers v as the leader until any further updates").
            cand.leader = Some(value);
            cand.settled = true;
            cand.support = None;
            cand.support_age = 0;
            if cand.relayed.insert(value) {
                Self::send_proposal(cand, ctx, value);
            }
        } else {
            // An unclaimed maximum: support it if we know the rank,
            // otherwise out-propose it with the next higher rank we know
            // (or adopt it into the list if we know nothing higher).
            cand.settled = false;
            if cand.dead.contains(&value) {
                // We already know this rank is dead; ignore — our next
                // phase-A proposal will out-propose it.
                return;
            }
            if !cand.rank_list.contains(&value) {
                match cand.rank_list.range(value..).next().copied() {
                    Some(_higher) => {
                        // Next phase-A proposal (min of pruned list) is
                        // already ≥ `value`; nothing extra to send now.
                    }
                    None => {
                        cand.rank_list.insert(value);
                    }
                }
            }
            if cand.rank_list.contains(&value) && cand.support != Some(value) {
                cand.support = Some(value);
                cand.support_age = 0;
                if cand.relayed.insert(value) {
                    let cc = cand.clone();
                    Self::send_proposal(&cc, ctx, value);
                }
            }
        }
    }

    /// Phase-A activation: propose the minimum viable rank (Step 1),
    /// ageing out dead support targets (Step 4).
    fn candidate_phase_a(&mut self, ctx: &mut Ctx<'_, LeMsg>) {
        let Some(cand) = self.candidate.as_mut() else {
            return;
        };
        if cand.settled {
            return;
        }

        // Step 4: if we have been waiting on the same target too long, the
        // target's owner crashed before its claim reached us — drop it.
        if let Some(target) = cand.support {
            cand.support_age += 1;
            if cand.support_age >= SUPPORT_PATIENCE {
                cand.rank_list.remove(&target);
                cand.dead.insert(target);
                cand.support = None;
                cand.support_age = 0;
            }
        }

        // Step 1: propose the smallest not-yet-proposed rank; fall back to
        // re-proposing the current minimum so an unsettled candidate never
        // goes silent (its referees then echo *something* back).
        let value = cand
            .rank_list
            .iter()
            .find(|r| !cand.proposed.contains(r))
            .copied()
            .or_else(|| cand.rank_list.first().copied());
        let Some(value) = value else {
            // Rank list empty (everything timed out): fall back to self.
            cand.rank_list.insert(cand.id);
            return;
        };
        cand.proposed.insert(value);
        if cand.support.is_none() {
            cand.support = Some(value);
            cand.support_age = 0;
        }
        Self::send_proposal(cand, ctx, value);
    }
}

impl Protocol for LeNode {
    type Msg = LeMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, LeMsg>) {
        if !sampling::decide_candidate(ctx.rng(), &self.params) {
            return;
        }
        let n = ctx.n();
        let id = Rank::draw(ctx.rng(), n);
        // Drawn through the Ctx so the sample ranges over the node's
        // actual ports: bit-identical to the historical complete-graph
        // draw (degree = n-1 there), degree-clamped on sparse topologies.
        let referees = ctx.sample_ports(self.params.referee_count());
        let mut rank_list = BTreeSet::new();
        rank_list.insert(id);
        for &p in &referees {
            ctx.send(p, LeMsg::Register { rank: id });
        }
        self.candidate = Some(CandidateState {
            id,
            referees,
            rank_list,
            proposed: BTreeSet::new(),
            dead: BTreeSet::new(),
            floor: Rank(0),
            support: None,
            support_age: 0,
            relayed: BTreeSet::new(),
            leader: None,
            marked_leader: false,
            settled: false,
        });
    }

    fn on_round(&mut self, ctx: &mut Ctx<'_, LeMsg>, inbox: &[Incoming<LeMsg>]) {
        // Split the inbox by role.
        let mut proposals: Vec<(Rank, Rank)> = Vec::new();
        let mut echo_max: Option<(Rank, bool)> = None;
        for inc in inbox {
            match &inc.msg {
                LeMsg::Register { rank } => self.referee_register(inc.port, *rank),
                LeMsg::ForwardRank { rank } => {
                    if let Some(cand) = self.candidate.as_mut() {
                        if *rank >= cand.floor && !cand.dead.contains(rank) {
                            cand.rank_list.insert(*rank);
                        }
                    }
                }
                LeMsg::Propose { id, value } => proposals.push((*id, *value)),
                LeMsg::Echo { value, claimed } => {
                    echo_max = match echo_max {
                        Some((v, c)) if v > *value => Some((v, c)),
                        Some((v, c)) if v == *value => Some((v, c || *claimed)),
                        _ => Some((*value, *claimed)),
                    };
                }
                LeMsg::Announce { .. } => {
                    // Only used by the explicit extension; ignored here.
                }
            }
        }

        // Referee role: forward pre-processing ranks, echo proposals.
        self.referee_drain_forwards(ctx);
        self.referee_echo(ctx, &proposals);

        // Candidate role: process the round's maximum echo, then (on
        // phase-A activations) propose.
        if let Some((value, claimed)) = echo_max {
            self.candidate_process_echo(ctx, value, claimed);
        }
        if self.is_phase_a(ctx.round()) {
            self.candidate_phase_a(ctx);
        }
    }

    fn is_terminated(&self) -> bool {
        let cand_done = self.candidate.as_ref().is_none_or(|c| c.settled);
        cand_done && self.referee.forward_queue.is_empty()
    }

    fn is_inert(&self) -> bool {
        // With an empty inbox, `on_round` only acts through the referee's
        // forward queue and the candidate's phase-A timer, and phase A is a
        // no-op for a settled (or absent) candidate — exactly the
        // `is_terminated` condition. No RNG is drawn on that path, so a
        // skipped activation is indistinguishable from a run one.
        self.is_terminated()
    }
}

/// Evaluation of one leader-election execution against Definition 1 and
/// Theorem 4.1's guarantees.
#[derive(Clone, Debug)]
pub struct LeOutcome {
    /// Nodes that made themselves candidates.
    pub candidate_count: usize,
    /// Candidates alive at the end.
    pub alive_candidates: usize,
    /// Alive nodes whose status is `Elected`.
    pub elected_alive: Vec<NodeId>,
    /// All nodes (alive or crashed) whose status is `Elected`.
    pub elected_total: usize,
    /// The leader rank all alive candidates agree on, when they do.
    pub agreed_leader: Option<Rank>,
    /// Whether all alive candidates hold *some* leader belief.
    pub all_settled: bool,
    /// The elected node, when the election succeeded.
    pub leader_node: Option<NodeId>,
    /// Whether the elected node is in the adversary's faulty set (it may
    /// still be alive — faulty nodes may never crash).
    pub leader_is_faulty: bool,
    /// Whether the elected node had crashed by the end of the run.
    pub leader_crashed: bool,
    /// Definition-1 success: a unique elected node, consistent beliefs.
    pub success: bool,
}

impl LeOutcome {
    /// Scores a finished run.
    pub fn evaluate(result: &RunResult<LeNode>) -> LeOutcome {
        let candidate_count = result.states.iter().filter(|s| s.is_candidate()).count();
        let alive_candidates = result
            .surviving_states()
            .filter(|(_, s)| s.is_candidate())
            .count();

        let elected_alive: Vec<NodeId> = result
            .surviving_states()
            .filter(|(_, s)| s.status() == LeStatus::Elected)
            .map(|(id, _)| id)
            .collect();
        let elected_total = result
            .all_states()
            .filter(|(_, s)| s.status() == LeStatus::Elected)
            .count();

        // Beliefs of alive candidates.
        let beliefs: Vec<Option<Rank>> = result
            .surviving_states()
            .filter(|(_, s)| s.is_candidate())
            .map(|(_, s)| s.leader_belief())
            .collect();
        let all_settled = !beliefs.is_empty() && beliefs.iter().all(|b| b.is_some());
        let distinct: BTreeSet<Rank> = beliefs.iter().flatten().copied().collect();
        let agreed_leader = if all_settled && distinct.len() == 1 {
            distinct.first().copied()
        } else {
            None
        };

        // The elected node: the unique node (alive or crashed) whose
        // marked claim matches the agreed leader rank.
        let leader_node = agreed_leader.and_then(|l| {
            let holders: Vec<NodeId> = result
                .all_states()
                .filter(|(_, s)| s.status() == LeStatus::Elected && s.rank() == Some(l))
                .map(|(id, _)| id)
                .collect();
            (holders.len() == 1).then(|| holders[0])
        });

        // Definition 1: exactly one node ELECTED, everyone else
        // NON_ELECTED. We additionally require belief consistency among
        // alive candidates (the paper's correctness argument, Thm 4.1).
        let unique_elected = match (leader_node, elected_alive.len()) {
            (Some(ln), 0) => {
                // Leader crashed after election — allowed, as long as no
                // *alive* node also claims.
                result.crashed_at[ln.index()].is_some()
            }
            (Some(ln), 1) => elected_alive[0] == ln && elected_total == 1,
            _ => false,
        };
        let success = unique_elected && agreed_leader.is_some();

        let (leader_is_faulty, leader_crashed) = leader_node
            .map(|id| {
                (
                    result.faulty.contains(id),
                    result.crashed_at[id.index()].is_some(),
                )
            })
            .unwrap_or((false, false));

        LeOutcome {
            candidate_count,
            alive_candidates,
            elected_alive,
            elected_total,
            agreed_leader,
            all_settled,
            leader_node,
            leader_is_faulty,
            leader_crashed,
            success,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftc_sim::adversary::{DeliveryFilter, FaultPlan, ScriptedCrash};

    fn run_le(n: u32, alpha: f64, seed: u64, adv: &mut dyn Adversary<LeMsg>) -> RunResult<LeNode> {
        let params = Params::new(n, alpha).unwrap();
        let cfg = SimConfig::new(n)
            .seed(seed)
            .max_rounds(params.le_round_budget());
        run(&cfg, |_| LeNode::new(params.clone()), adv)
    }

    #[test]
    fn fault_free_elects_unique_leader() {
        for seed in 0..10 {
            let result = run_le(128, 1.0, seed, &mut NoFaults);
            let o = LeOutcome::evaluate(&result);
            assert!(o.success, "seed {seed}: {o:?}");
            assert_eq!(o.elected_alive.len(), 1);
            assert!(o.all_settled);
        }
    }

    #[test]
    fn survives_eager_mass_crash() {
        // Half the network crashes before sending anything.
        for seed in 0..10 {
            let mut adv = EagerCrash::new(64);
            let result = run_le(128, 0.5, seed, &mut adv);
            let o = LeOutcome::evaluate(&result);
            assert!(o.success, "seed {seed}: {o:?}");
        }
    }

    #[test]
    fn survives_random_mid_protocol_crashes() {
        for seed in 0..10 {
            let mut adv = RandomCrash::new(96, 40);
            let result = run_le(256, 0.5, seed, &mut adv);
            let o = LeOutcome::evaluate(&result);
            assert!(o.success, "seed {seed}: {o:?}");
        }
    }

    #[test]
    fn crashed_node_is_never_the_agreed_leader() {
        // Even when the leader crashes post-election, the agreed rank must
        // belong to a node that was alive when it claimed.
        for seed in 0..20 {
            let mut adv = RandomCrash::new(100, 60);
            let result = run_le(200, 0.5, seed, &mut adv);
            let o = LeOutcome::evaluate(&result);
            if !o.success {
                continue; // rare failures counted elsewhere
            }
            let leader = o.leader_node.unwrap();
            // The claim itself happened pre-crash by construction: the
            // node's own state says Elected, which only a live activation
            // can set.
            assert!(result.states[leader.index()].status() == LeStatus::Elected);
        }
    }

    #[test]
    fn message_complexity_is_sublinear_at_scale() {
        let n = 4096u32;
        let result = run_le(n, 1.0, 7, &mut NoFaults);
        let o = LeOutcome::evaluate(&result);
        assert!(o.success, "{o:?}");
        let msgs = result.metrics.msgs_sent as f64;
        // Theorem 4.1 bound with generous constant; must at least be o(n²)
        // and in practice well below n·log n at this size.
        let bound = Params::new(n, 1.0).unwrap().le_message_bound();
        assert!(
            msgs < 20.0 * bound,
            "messages {msgs} vs theoretical bound {bound}"
        );
    }

    #[test]
    fn scripted_crash_of_min_rank_candidate_recovers() {
        // Find the minimum-rank candidate of a seeded run, then re-run with
        // that node crashing right as iterations begin.
        let params = Params::new(128, 0.5).unwrap();
        let probe = run_le(128, 0.5, 11, &mut NoFaults);
        let min_cand = probe
            .all_states()
            .filter_map(|(id, s)| s.rank().map(|r| (r, id)))
            .min()
            .expect("some candidate")
            .1;
        let plan = FaultPlan::new().crash(
            min_cand,
            params.preprocess_rounds(),
            DeliveryFilter::KeepFirst(1),
        );
        let mut adv = ScriptedCrash::new(plan);
        let result = run_le(128, 0.5, 11, &mut adv);
        let o = LeOutcome::evaluate(&result);
        assert!(o.success, "{o:?}");
        assert_ne!(o.leader_node, Some(min_cand), "dead node won");
    }

    #[test]
    fn non_candidates_output_non_elected() {
        let result = run_le(64, 1.0, 3, &mut NoFaults);
        for (_, s) in result.all_states() {
            if !s.is_candidate() {
                assert_eq!(s.status(), LeStatus::NonElected);
            }
        }
    }

    #[test]
    fn terminates_well_before_round_budget() {
        let params = Params::new(256, 1.0).unwrap();
        let result = run_le(256, 1.0, 5, &mut NoFaults);
        assert!(
            result.metrics.rounds < params.le_round_budget() / 2,
            "took {} of {} rounds",
            result.metrics.rounds,
            params.le_round_budget()
        );
    }

    #[test]
    fn congest_per_edge_load_is_logarithmic() {
        let result = run_le(512, 1.0, 9, &mut NoFaults);
        // Largest per-edge-per-round load should be one message (≤ 100
        // bits), not a growing function of n.
        assert!(
            result.metrics.max_edge_bits_per_round <= 200,
            "edge load {}",
            result.metrics.max_edge_bits_per_round
        );
    }

    #[test]
    fn capped_run_metrics_replay_exactly() {
        // Regression: referee forwarding once iterated a HashMap to build
        // its forward queue, so the number of *attempted* sends varied
        // between identical runs. Delivered messages were unaffected, but
        // under a send cap the suppressed counter (and with edge failures
        // the lost counter) drifted. Every metric must replay bit-exact.
        let params = Params::new(256, 0.5).unwrap();
        let run_once = || {
            let cfg = SimConfig::new(256)
                .seed(0x8E)
                .max_rounds(params.le_round_budget())
                .send_cap(48)
                .edge_failure_prob(0.3);
            let mut adv = EagerCrash::new(params.max_faults());
            run(&cfg, |_| LeNode::new(params.clone()), &mut adv)
        };
        let a = run_once();
        let b = run_once();
        assert_eq!(a.metrics.msgs_sent, b.metrics.msgs_sent);
        assert_eq!(a.metrics.msgs_suppressed, b.metrics.msgs_suppressed);
        assert_eq!(a.metrics.msgs_lost_edges, b.metrics.msgs_lost_edges);
        assert_eq!(a.metrics.rounds, b.metrics.rounds);
        assert_eq!(a.metrics.bits_sent, b.metrics.bits_sent);
    }
}
