//! # `ftc-net` — a real message-passing runtime for the ftc protocols
//!
//! The simulator (`ftc-sim`) executes the model of Kumar & Molla — a
//! synchronous crash-fault complete network — entirely in process. This
//! crate is the second execution substrate: the *same* unmodified
//! [`Protocol`](ftc_sim::protocol::Protocol) state machines run over a real
//! transport, with protocol messages serialised into length-prefixed
//! [`frame::Frame`]s, KT0 port wiring preserved on the wire, crashes
//! enacted as mid-round connection teardown, and per-run byte accounting
//! (`wire_bytes`) reported next to the model metrics.
//!
//! Two transports ship:
//!
//! * [`channel`] — in-process `mpsc` mesh: dependency-free, fast, scales to
//!   thousands of nodes; the workhorse for equivalence tests;
//! * [`tcp`] — localhost TCP over `std::net`: real sockets, real bytes,
//!   one bidirectional connection per edge.
//!
//! The [`sync`] module contains the round synchronizer that drives either
//! transport. Its defining property: a network run is **bit-identical** to
//! an engine run of the same `(SimConfig, seed)` — same leaders, same
//! decisions, same message/round counts, same crash schedule — because both
//! drivers are built on the simulator's shared control plane
//! ([`ftc_sim::round::ControlCore`]) and per-node harness
//! ([`ftc_sim::node::NodeHarness`]). The network does not *approximate* the
//! simulator; it *replays* it over sockets, so every claim validated in
//! simulation transfers to the wire.
//!
//! ## Example
//!
//! ```
//! use ftc_net::prelude::*;
//! use ftc_sim::prelude::*;
//!
//! /// Every node greets all neighbours once.
//! struct Hello { greeted: u64, done: bool }
//!
//! impl Protocol for Hello {
//!     type Msg = u64;
//!     fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
//!         ctx.broadcast(42);
//!     }
//!     fn on_round(&mut self, _ctx: &mut Ctx<'_, u64>, inbox: &[Incoming<u64>]) {
//!         self.greeted += inbox.len() as u64;
//!         self.done = true;
//!     }
//!     fn is_terminated(&self) -> bool { self.done }
//! }
//!
//! let cfg = SimConfig::new(8).seed(1);
//! let result = run_over_channel(&cfg, 2, |_| Hello { greeted: 0, done: false }, &mut NoFaults);
//! assert_eq!(result.run.metrics.msgs_delivered, 8 * 7);
//! assert!(result.net.wire_bytes > 0); // real frames were paid for
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod core;
pub mod fault;
pub mod frame;
pub mod sync;
pub mod tcp;
pub mod transport;

/// Convenient glob import for runtime users.
pub mod prelude {
    pub use crate::channel::ChannelEndpoint;
    pub use crate::core::{Command, CoordinatorCore, NodeStatus, RoundCore, RoundPlan, Submission};
    pub use crate::fault::{
        ChunkedWriter, FrameDedup, WireFaultEntry, WireFaultKind, WireFaultPlan,
    };
    pub use crate::frame::Frame;
    pub use crate::sync::{
        run_over, run_over_at_height, run_over_channel, run_over_channel_at_height,
        run_over_channel_faulty, run_over_channel_with, run_over_tcp, run_over_tcp_at_height,
        run_over_tcp_faulty, run_over_tcp_with, NetMetrics, NetRunResult,
    };
    pub use crate::tcp::TcpEndpoint;
    pub use crate::transport::{Endpoint, RoundAssembler, RECV_TIMEOUT};
}
