//! The pluggable transport abstraction and the round assembler.
//!
//! An [`Endpoint`] is one node's attachment to a transport: it can push a
//! [`Frame`] to any peer, pull the next frame addressed to itself, and tear
//! itself down (the physical half of a crash). Two implementations ship:
//! [`crate::channel`] (in-process `mpsc`, for fast deterministic tests) and
//! [`crate::tcp`] (localhost TCP over `std::net`, real sockets).
//!
//! Transports deliver frames reliably and FIFO per link but with no
//! cross-link ordering, and fast nodes may run rounds ahead of slow ones —
//! so a receiver cannot just take the next `k` frames. The
//! [`RoundAssembler`] does the reassembly: it buffers early frames, blocks
//! until the current round is complete, and returns the round's frames in
//! the canonical `(src, seq)` order that reproduces the simulator's inbox
//! order.

use std::io;
use std::time::Duration;

use ftc_sim::ids::{NodeId, Round};

use crate::frame::Frame;

/// Default for how long an endpoint waits for a frame before concluding
/// the cluster is wedged. The synchronizer's accounting guarantees every
/// awaited frame was (or will be) sent, so in a healthy run this never
/// fires; it exists to turn bugs and killed peers into loud errors instead
/// of hangs. Both mesh builders accept an explicit timeout
/// ([`crate::channel::mesh_with_timeout`], [`crate::tcp::mesh_with_timeout`])
/// and `ftc cluster --recv-timeout` exposes it on the command line.
pub const RECV_TIMEOUT: Duration = Duration::from_secs(60);

/// One node's attachment to a transport.
pub trait Endpoint: Send {
    /// The node this endpoint belongs to.
    fn node(&self) -> NodeId;

    /// Sends `frame` to `dst`, returning the bytes put on the wire.
    ///
    /// Must not block indefinitely: the synchronizer's phase discipline
    /// (every node transmits before any node collects) relies on sends
    /// completing while receivers are not yet draining.
    fn send(&mut self, dst: NodeId, frame: &Frame) -> io::Result<u64>;

    /// Blocks for the next frame addressed to this node, from any peer.
    ///
    /// Fails with [`io::ErrorKind::TimedOut`] after the endpoint's receive
    /// timeout (default [`RECV_TIMEOUT`]) and with an error when the
    /// endpoint is torn down or all links are gone.
    fn recv(&mut self) -> io::Result<Frame>;

    /// Tears the endpoint down — the physical enactment of a crash.
    ///
    /// Frames already handed to `send` must still reach their receivers
    /// (crash semantics drop *unsent* messages via delivery filters, not
    /// in-flight bytes); everything after this call fails. Idempotent.
    fn teardown(&mut self);
}

/// Reassembles a per-link FIFO frame stream into complete synchronous
/// rounds (one assembler per node).
#[derive(Debug, Default)]
pub struct RoundAssembler {
    /// Frames that arrived for rounds we have not collected yet.
    pending: Vec<Frame>,
}

impl RoundAssembler {
    /// A fresh assembler with nothing buffered.
    pub fn new() -> Self {
        RoundAssembler::default()
    }

    /// Blocks until all `expect` frames of `round` have arrived and returns
    /// them sorted by `(src, seq)` — the engine's delivery order.
    ///
    /// Frames for later rounds encountered along the way are buffered for
    /// future calls; a frame for an earlier round is a protocol violation
    /// and reported as [`io::ErrorKind::InvalidData`].
    ///
    /// A receive timeout is annotated with who was blocked and on what —
    /// node id, round, and the `got`/`expect` frame counts — so a wedged
    /// cluster reports exactly which node stalled where instead of a bare
    /// "timed out".
    pub fn collect<E: Endpoint + ?Sized>(
        &mut self,
        round: Round,
        expect: usize,
        endpoint: &mut E,
    ) -> io::Result<Vec<Frame>> {
        let mut got: Vec<Frame> = Vec::with_capacity(expect);
        let mut i = 0;
        while i < self.pending.len() {
            if self.pending[i].round == round {
                got.push(self.pending.swap_remove(i));
            } else {
                i += 1;
            }
        }
        while got.len() < expect {
            let frame = endpoint.recv().map_err(|e| {
                if e.kind() == io::ErrorKind::TimedOut {
                    io::Error::new(
                        io::ErrorKind::TimedOut,
                        format!(
                            "node {} timed out collecting round {round}: got {} of {expect} frames ({e})",
                            endpoint.node(),
                            got.len(),
                        ),
                    )
                } else {
                    e
                }
            })?;
            match frame.round.cmp(&round) {
                std::cmp::Ordering::Equal => got.push(frame),
                std::cmp::Ordering::Greater => self.pending.push(frame),
                std::cmp::Ordering::Less => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!(
                            "node {} got a frame for past round {} while collecting round {}",
                            endpoint.node(),
                            frame.round,
                            round
                        ),
                    ));
                }
            }
        }
        got.sort_by_key(|f| (f.src.0, f.seq));
        Ok(got)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;

    /// An endpoint fed from a scripted queue.
    struct Scripted {
        node: NodeId,
        queue: VecDeque<Frame>,
    }

    impl Endpoint for Scripted {
        fn node(&self) -> NodeId {
            self.node
        }
        fn send(&mut self, _dst: NodeId, frame: &Frame) -> io::Result<u64> {
            Ok(frame.encoded_len())
        }
        fn recv(&mut self) -> io::Result<Frame> {
            self.queue
                .pop_front()
                .ok_or_else(|| io::Error::new(io::ErrorKind::TimedOut, "script exhausted"))
        }
        fn teardown(&mut self) {}
    }

    fn frame(round: Round, src: u32, seq: u32) -> Frame {
        Frame {
            height: 0,
            round,
            src: NodeId(src),
            seq,
            payload: vec![],
        }
    }

    #[test]
    fn sorts_by_src_then_seq() {
        let mut ep = Scripted {
            node: NodeId(0),
            queue: VecDeque::from(vec![frame(0, 2, 0), frame(0, 1, 1), frame(0, 1, 0)]),
        };
        let mut asm = RoundAssembler::new();
        let got = asm.collect(0, 3, &mut ep).unwrap();
        let order: Vec<(u32, u32)> = got.iter().map(|f| (f.src.0, f.seq)).collect();
        assert_eq!(order, vec![(1, 0), (1, 1), (2, 0)]);
    }

    #[test]
    fn buffers_frames_from_future_rounds() {
        let mut ep = Scripted {
            node: NodeId(0),
            queue: VecDeque::from(vec![frame(1, 3, 0), frame(0, 1, 0), frame(1, 1, 0)]),
        };
        let mut asm = RoundAssembler::new();
        // Round 0 completes even though a round-1 frame arrived first...
        let r0 = asm.collect(0, 1, &mut ep).unwrap();
        assert_eq!(r0.len(), 1);
        assert_eq!(r0[0].src, NodeId(1));
        // ...and the buffered round-1 frame is not lost.
        let r1 = asm.collect(1, 2, &mut ep).unwrap();
        assert_eq!(r1.iter().map(|f| f.src.0).collect::<Vec<_>>(), vec![1, 3]);
    }

    #[test]
    fn stale_frame_is_a_protocol_violation() {
        let mut ep = Scripted {
            node: NodeId(0),
            queue: VecDeque::from(vec![frame(0, 1, 0)]),
        };
        let mut asm = RoundAssembler::new();
        let err = asm.collect(5, 1, &mut ep).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn timeout_reports_node_round_and_frame_counts() {
        let mut ep = Scripted {
            node: NodeId(7),
            queue: VecDeque::from(vec![frame(3, 1, 0)]),
        };
        let mut asm = RoundAssembler::new();
        let err = asm.collect(3, 4, &mut ep).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        let msg = err.to_string();
        assert!(msg.contains("node n7"), "{msg}");
        assert!(msg.contains("round 3"), "{msg}");
        assert!(msg.contains("got 1 of 4"), "{msg}");
    }

    #[test]
    fn zero_expected_returns_immediately() {
        let mut ep = Scripted {
            node: NodeId(0),
            queue: VecDeque::new(),
        };
        let got = RoundAssembler::new().collect(0, 0, &mut ep).unwrap();
        assert!(got.is_empty());
    }
}
