//! The sans-I/O round core: the complete round state machine of a cluster
//! run, with every socket, channel, and thread factored out.
//!
//! This module is the answer to "what does the synchronizer *decide*,
//! independent of how bytes move?" — the design popularized by sans-I/O
//! protocol libraries (and by `manul`'s round abstraction for distributed
//! protocols): state machines are fed inbound messages and polled for
//! outbound ones, early next-round traffic is cached and replayed when that
//! round starts, and a round finalizes on quiescence. Everything here is
//! pure data in, pure data out — unit-testable without a single socket —
//! and every I/O runtime (the in-process channel mesh, the per-edge TCP
//! mesh, and the multiplexed `ftc-mesh` socket runtime) is a thin adapter
//! over the same two machines:
//!
//! * [`RoundCore`] — one node's half of the round loop. Feed it the frames
//!   that arrive ([`RoundCore::feed`] buffers out-of-order next-round
//!   frames and rejects stale or foreign-height ones), ask it whether the
//!   round is quiescent ([`RoundCore::ready`] — all frames the coordinator
//!   promised have arrived), and step it ([`RoundCore::activate`] →
//!   submission out, [`RoundCore::apply`] → routed frames to transmit,
//!   [`RoundCore::end_round`] → next round's inbox assembled in the
//!   engine's canonical `(src, seq)` order).
//! * [`CoordinatorCore`] — the global control plane. Collect one
//!   [`Submission`] per alive node, call
//!   [`CoordinatorCore::adjudicate`]: it routes sends through the KT0 port
//!   permutations, consults the adversary, applies crash filters via the
//!   engine's own [`ControlCore`], and returns one [`Command`] per
//!   participant plus the stop verdict.
//!
//! Because the adjudication path *is* [`ControlCore::finish_round`] — the
//! same code the in-process engine runs — any driver built on these cores
//! is bit-identical to the engine for the same `(SimConfig, seed)`,
//! whatever its transport does.

use ftc_sim::adversary::{Adversary, Envelope};
use ftc_sim::engine::SimConfig;
use ftc_sim::ids::{NodeId, Port, Round};
use ftc_sim::node::NodeHarness;
use ftc_sim::payload::Wire;
use ftc_sim::ports::PortMap;
use ftc_sim::protocol::{Incoming, Protocol};
use ftc_sim::round::{network_ports, resolve_sends, ControlCore, ControlOutput};

use crate::frame::Frame;

/// One node's round submission to the coordinator: its queued sends, still
/// in KT0 port space (the coordinator routes them).
#[derive(Debug)]
pub struct Submission<M> {
    /// The submitting node.
    pub node: NodeId,
    /// Queued sends in the node's private port space.
    pub sends: Vec<(Port, M)>,
    /// Sends the harness suppressed under the send cap.
    pub suppressed: u64,
    /// The node's protocol reports termination.
    pub terminated: bool,
    /// A transport failure (e.g. a recv timeout) that wedged this node.
    /// Reported through the submission path — the coordinator blocks
    /// there, so a silently dying node would deadlock the lock-step round
    /// loop instead of failing the run.
    pub failed: Option<String>,
}

impl<M> Submission<M> {
    /// A failure submission: no sends, just the error that wedged `node`.
    pub fn failure(node: NodeId, err: String) -> Self {
        Submission {
            node,
            sends: Vec::new(),
            suppressed: 0,
            terminated: false,
            failed: Some(err),
        }
    }
}

/// The coordinator's round verdict for one node.
#[derive(Debug)]
pub struct Command {
    /// Frames to transmit, already routed and filtered.
    pub frames: Vec<(NodeId, Frame)>,
    /// How many frames to expect for this round's collect phase.
    pub expect: usize,
    /// This node crashed this round: transmit, then tear down.
    pub crashed: bool,
    /// The run is over after this round: transmit nothing, collect nothing.
    pub stop: bool,
}

impl Command {
    /// A bare stop command — used to unwedge surviving nodes after a run
    /// failure.
    pub fn stop() -> Self {
        Command {
            frames: Vec::new(),
            expect: 0,
            crashed: false,
            stop: true,
        }
    }
}

/// One round's adjudicated output: per-participant commands, in node-id
/// order over the nodes that were alive at the round's start.
#[derive(Debug)]
pub struct RoundPlan {
    /// One command per node alive at the start of the round.
    pub commands: Vec<(NodeId, Command)>,
    /// The run is over after this round.
    pub stop: bool,
}

/// Lifecycle of a [`RoundCore`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeStatus {
    /// Participating in rounds.
    Active,
    /// Crashed by the adversary; transmits its filter-surviving frames and
    /// never acts again.
    Crashed,
    /// Run over; final state available.
    Stopped,
}

/// The sans-I/O state machine for one node's half of the round loop.
///
/// Drivers own one `RoundCore` per local node and move pure data:
///
/// ```text
/// loop {
///     let sub    = core.activate();          // -> ship to coordinator
///     let frames = core.apply(command);      // <- coordinator; -> transmit
///     while !core.ready() { core.feed(recv_frame)?; }   // quiescence
///     core.end_round()?;                     // inbox for next activate
/// }
/// ```
///
/// `feed` accepts frames in any arrival order: frames for the *next* round
/// (a fast peer ran ahead) are buffered and replayed when that round
/// starts; frames for a *past* round or a foreign height are protocol
/// violations and error.
pub struct RoundCore<P: Protocol> {
    id: NodeId,
    harness: NodeHarness<P>,
    height: u32,
    round: Round,
    status: NodeStatus,
    expect: usize,
    /// Frames collected for the current round.
    got: Vec<Frame>,
    /// Early frames for rounds we have not reached yet.
    pending: Vec<Frame>,
    inbox: Vec<Incoming<P::Msg>>,
}

impl<P> RoundCore<P>
where
    P: Protocol,
    P::Msg: Wire,
{
    /// A fresh node core at round 0 of election instance `height`.
    pub fn new(cfg: &SimConfig, id: NodeId, state: P, height: u32) -> Self {
        RoundCore {
            id,
            harness: NodeHarness::new(cfg, id, state),
            height,
            round: 0,
            status: NodeStatus::Active,
            expect: 0,
            got: Vec::new(),
            pending: Vec::new(),
            inbox: Vec::new(),
        }
    }

    /// The node this core drives.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Current lifecycle state.
    pub fn status(&self) -> NodeStatus {
        self.status
    }

    /// Whether this node still participates in rounds.
    pub fn is_active(&self) -> bool {
        self.status == NodeStatus::Active
    }

    /// The round the core is currently in.
    pub fn round(&self) -> Round {
        self.round
    }

    /// Frames collected so far this round (for timeout diagnostics).
    pub fn received(&self) -> usize {
        self.got.len()
    }

    /// Frames the coordinator told us to expect this round.
    pub fn expect(&self) -> usize {
        self.expect
    }

    /// Runs the protocol against the inbox assembled by the previous
    /// [`end_round`](RoundCore::end_round) and returns the submission to
    /// ship to the coordinator. Only valid while active.
    pub fn activate(&mut self) -> Submission<P::Msg> {
        debug_assert_eq!(self.status, NodeStatus::Active);
        let inbox = std::mem::take(&mut self.inbox);
        let activation = self.harness.activate(self.round, &inbox);
        Submission {
            node: self.id,
            sends: activation.sends,
            suppressed: activation.suppressed,
            terminated: activation.terminated,
            failed: None,
        }
    }

    /// Applies the coordinator's verdict and returns the frames this node
    /// must put on the wire (empty on stop). After this call the node is
    /// [`Crashed`](NodeStatus::Crashed), [`Stopped`](NodeStatus::Stopped),
    /// or collecting `expect` frames for the current round.
    pub fn apply(&mut self, command: Command) -> Vec<(NodeId, Frame)> {
        debug_assert_eq!(self.status, NodeStatus::Active);
        let frames = if command.stop {
            Vec::new()
        } else {
            command.frames
        };
        if command.crashed {
            self.status = NodeStatus::Crashed;
        } else if command.stop {
            self.status = NodeStatus::Stopped;
        } else {
            self.expect = command.expect;
        }
        frames
    }

    /// Feeds one inbound frame.
    ///
    /// Frames for the current round count toward
    /// [`ready`](RoundCore::ready); frames for a later round are buffered
    /// and replayed when [`end_round`](RoundCore::end_round) reaches that
    /// round (fast peers may legitimately run one round ahead). A frame
    /// for a past round or a foreign height is a protocol violation.
    pub fn feed(&mut self, frame: Frame) -> Result<(), String> {
        if frame.height != self.height {
            return Err(format!(
                "node {} got a frame for height {} during height {}",
                self.id.0, frame.height, self.height
            ));
        }
        match frame.round.cmp(&self.round) {
            std::cmp::Ordering::Equal => self.got.push(frame),
            std::cmp::Ordering::Greater => self.pending.push(frame),
            std::cmp::Ordering::Less => {
                return Err(format!(
                    "node {} got a frame for past round {} while collecting round {}",
                    self.id.0, frame.round, self.round
                ));
            }
        }
        Ok(())
    }

    /// Per-round quiescence: everything the coordinator promised for this
    /// round has arrived.
    pub fn ready(&self) -> bool {
        self.got.len() >= self.expect
    }

    /// Closes the current round: sorts the collected frames into the
    /// engine's canonical `(src, seq)` delivery order, decodes them into
    /// next round's inbox (mapping wire addresses to private KT0 ports),
    /// advances the round counter, and replays any buffered frames that
    /// were early for the round just entered.
    pub fn end_round(&mut self) -> Result<(), String> {
        debug_assert!(self.ready());
        let mut frames = std::mem::take(&mut self.got);
        frames.sort_by_key(|f| (f.src.0, f.seq));
        self.inbox.clear();
        for f in &frames {
            let msg = <P::Msg as Wire>::decode(&f.payload).ok_or_else(|| {
                format!(
                    "node {} got a malformed frame payload from node {} in round {}",
                    self.id.0, f.src.0, f.round
                )
            })?;
            self.inbox.push(Incoming {
                port: self.harness.port_from(f.src),
                msg,
            });
        }
        self.round += 1;
        let round = self.round;
        let mut i = 0;
        while i < self.pending.len() {
            if self.pending[i].round == round {
                let f = self.pending.swap_remove(i);
                self.got.push(f);
            } else {
                i += 1;
            }
        }
        Ok(())
    }

    /// Consumes the core and returns the final protocol state.
    pub fn into_state(self) -> P {
        self.harness.into_state()
    }
}

/// The sans-I/O control plane of a cluster run: the coordinator's half of
/// the round loop, built directly on the engine's [`ControlCore`].
///
/// Per round the driver collects one [`Submission`] from every node in
/// [`alive`](CoordinatorCore::alive) (in any order — submissions are keyed
/// by node id) and calls [`adjudicate`](CoordinatorCore::adjudicate). When
/// the returned plan says stop, [`finish`](CoordinatorCore::finish) yields
/// the run's [`ControlOutput`] — metrics, crash schedule, trace — exactly
/// as the engine would have produced it.
pub struct CoordinatorCore<M> {
    n: u32,
    max_rounds: u32,
    height: u32,
    round: Round,
    ports: Vec<PortMap>,
    core: ControlCore,
    terminated: Vec<bool>,
    stopped: bool,
    _msg: std::marker::PhantomData<fn() -> M>,
}

impl<M: Wire> CoordinatorCore<M> {
    /// A coordinator for one execution of `cfg` at election instance
    /// `height` (0 for single-shot runs).
    ///
    /// # Panics
    ///
    /// Panics on invalid configurations ([`SimConfig::validate`],
    /// `max_rounds == 0`) — same contract as the engine.
    pub fn new<A>(cfg: &SimConfig, height: u32, adversary: &mut A) -> Self
    where
        A: Adversary<M> + ?Sized,
    {
        cfg.validate().expect("invalid SimConfig");
        assert!(cfg.max_rounds > 0, "cluster runs need at least one round");
        CoordinatorCore {
            n: cfg.n,
            max_rounds: cfg.max_rounds,
            height,
            round: 0,
            ports: network_ports(cfg),
            core: ControlCore::new::<M, _>(cfg, adversary),
            terminated: vec![false; cfg.n as usize],
            stopped: false,
            _msg: std::marker::PhantomData,
        }
    }

    /// The election instance frames must be tagged with.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// The round about to be adjudicated.
    pub fn round(&self) -> Round {
        self.round
    }

    /// Whether the run is over (set by the last
    /// [`adjudicate`](CoordinatorCore::adjudicate)).
    pub fn stopped(&self) -> bool {
        self.stopped
    }

    /// The nodes that must submit this round.
    pub fn alive(&self) -> Vec<NodeId> {
        (0..self.n)
            .map(NodeId)
            .filter(|&u| self.core.is_alive(u))
            .collect()
    }

    /// Adjudicates one round: routes every submission's sends through the
    /// KT0 port permutations, lets the adversary crash and filter via the
    /// engine's [`ControlCore::finish_round`], and returns one [`Command`]
    /// per participant. Errors if any submission carries a transport
    /// failure.
    ///
    /// The run stops exactly when the engine's loop would: round limit
    /// hit, or a quiescent round (nothing delivered, all survivors
    /// terminated). The final round's messages are already fully
    /// accounted; physically shipping bytes no activation will ever read
    /// is skipped, so stop commands carry no frames.
    pub fn adjudicate<A>(
        &mut self,
        submissions: Vec<Submission<M>>,
        adversary: &mut A,
    ) -> Result<RoundPlan, String>
    where
        A: Adversary<M> + ?Sized,
    {
        let nn = self.n as usize;
        let round = self.round;
        let alive_before = self.alive();
        let mut outgoing: Vec<Vec<Envelope<M>>> = vec![Vec::new(); nn];
        let mut suppressed = 0u64;
        for sub in submissions {
            if let Some(err) = sub.failed {
                return Err(err);
            }
            suppressed += sub.suppressed;
            self.terminated[sub.node.index()] = sub.terminated;
            outgoing[sub.node.index()] = resolve_sends(&self.ports, sub.node, sub.sends);
        }

        // Adjudicate: `outgoing` is filtered in place down to the
        // deliverable envelopes.
        let verdict =
            self.core
                .finish_round(round, &mut outgoing, suppressed, adversary, &self.ports);

        let mut expect = vec![0usize; nn];
        for e in outgoing.iter().flatten() {
            expect[e.dst.index()] += 1;
        }
        let mut frames: Vec<Vec<(NodeId, Frame)>> = vec![Vec::new(); nn];
        for (u, sends) in outgoing.iter().enumerate() {
            for (seq, e) in sends.iter().enumerate() {
                let mut payload = Vec::new();
                e.msg.encode(&mut payload);
                frames[u].push((
                    e.dst,
                    Frame {
                        height: self.height,
                        round,
                        src: NodeId(u as u32),
                        seq: seq as u32,
                        payload,
                    },
                ));
            }
        }

        let stop = round + 1 == self.max_rounds
            || (verdict.delivered == 0
                && (0..self.n)
                    .map(NodeId)
                    .filter(|&u| self.core.is_alive(u))
                    .all(|u| self.terminated[u.index()]));
        self.stopped = stop;
        self.round += 1;

        let commands = alive_before
            .into_iter()
            .map(|u| {
                (
                    u,
                    Command {
                        frames: std::mem::take(&mut frames[u.index()]),
                        expect: expect[u.index()],
                        crashed: verdict.crashed.contains(&u),
                        stop,
                    },
                )
            })
            .collect();
        Ok(RoundPlan { commands, stop })
    }

    /// Closes the books: records the transport's byte accounting and
    /// returns the run's control-plane output (metrics, crash schedule,
    /// faulty set, trace).
    pub fn finish(mut self, wire_bytes: u64) -> ControlOutput {
        self.core.record_wire_bytes(wire_bytes);
        self.core.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftc_sim::adversary::{DeliveryFilter, FaultPlan, NoFaults, ScriptedCrash};
    use ftc_sim::engine::run;
    use ftc_sim::protocol::Ctx;

    /// Broadcasts its round number for 3 rounds and counts what it hears.
    struct Chatter {
        heard: u64,
        rounds: u32,
    }

    impl Protocol for Chatter {
        type Msg = u64;
        fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
            ctx.broadcast(0);
        }
        fn on_round(&mut self, ctx: &mut Ctx<'_, u64>, inbox: &[Incoming<u64>]) {
            self.heard += inbox.iter().map(|m| m.msg + 1).sum::<u64>();
            self.rounds += 1;
            if self.rounds < 3 {
                ctx.broadcast(u64::from(ctx.round()));
            }
        }
        fn is_terminated(&self) -> bool {
            self.rounds >= 3
        }
    }

    fn chatter() -> Chatter {
        Chatter {
            heard: 0,
            rounds: 0,
        }
    }

    /// Drives a full run with the two cores and nothing else — pure data
    /// movement, no threads, no sockets. `scramble` controls the order
    /// frames are fed to receivers.
    fn drive<A: Adversary<u64> + ?Sized>(
        cfg: &SimConfig,
        adversary: &mut A,
        scramble: bool,
    ) -> (Vec<Chatter>, ControlOutput, u64) {
        let mut coord = CoordinatorCore::<u64>::new(cfg, 0, adversary);
        let mut nodes: Vec<RoundCore<Chatter>> = (0..cfg.n)
            .map(|i| RoundCore::new(cfg, NodeId(i), chatter(), 0))
            .collect();
        let mut wire_bytes = 0u64;
        while !coord.stopped() {
            let subs: Vec<Submission<u64>> = coord
                .alive()
                .iter()
                .map(|&u| nodes[u.index()].activate())
                .collect();
            let plan = coord.adjudicate(subs, adversary).expect("no failures");
            // Transmit: deliver every frame as pure data, optionally in
            // reversed order to exercise out-of-order feeding.
            let mut in_flight: Vec<(NodeId, Frame)> = Vec::new();
            for (u, command) in plan.commands {
                in_flight.extend(nodes[u.index()].apply(command));
            }
            if scramble {
                in_flight.reverse();
            }
            for (dst, frame) in in_flight {
                wire_bytes += frame.encoded_len();
                nodes[dst.index()].feed(frame).expect("valid frame");
            }
            if plan.stop {
                break;
            }
            for node in nodes.iter_mut().filter(|n| n.is_active()) {
                assert!(node.ready(), "round incomplete after full delivery");
                node.end_round().expect("well-formed round");
            }
        }
        let out = coord.finish(wire_bytes);
        let states = nodes.into_iter().map(RoundCore::into_state).collect();
        (states, out, wire_bytes)
    }

    #[test]
    fn pure_core_replays_the_engine_fault_free() {
        let cfg = SimConfig::new(16).seed(5).max_rounds(10);
        let sim = run(&cfg, |_| chatter(), &mut NoFaults);
        for scramble in [false, true] {
            let (states, out, wire) = drive(&cfg, &mut NoFaults, scramble);
            assert_eq!(out.metrics.msgs_sent, sim.metrics.msgs_sent);
            assert_eq!(out.metrics.msgs_delivered, sim.metrics.msgs_delivered);
            assert_eq!(out.metrics.rounds, sim.metrics.rounds);
            assert_eq!(out.metrics.wire_bytes, wire);
            let heard: Vec<u64> = states.iter().map(|s| s.heard).collect();
            let sim_heard: Vec<u64> = sim.states.iter().map(|s| s.heard).collect();
            assert_eq!(heard, sim_heard);
        }
    }

    #[test]
    fn pure_core_replays_the_engine_under_partial_delivery() {
        let plan = FaultPlan::new()
            .crash(NodeId(2), 1, DeliveryFilter::KeepFirst(3))
            .crash(
                NodeId(5),
                0,
                DeliveryFilter::DeliverEachWithProbability(0.5),
            );
        let cfg = SimConfig::new(12).seed(3).max_rounds(8);
        let sim = run(&cfg, |_| chatter(), &mut ScriptedCrash::new(plan.clone()));
        let (states, out, _) = drive(&cfg, &mut ScriptedCrash::new(plan), true);
        assert_eq!(out.metrics.msgs_delivered, sim.metrics.msgs_delivered);
        assert_eq!(out.crashed_at, sim.crashed_at);
        let heard: Vec<u64> = states.iter().map(|s| s.heard).collect();
        let sim_heard: Vec<u64> = sim.states.iter().map(|s| s.heard).collect();
        assert_eq!(heard, sim_heard);
    }

    #[test]
    fn feed_buffers_early_rounds_and_replays_them() {
        let cfg = SimConfig::new(4).seed(1).max_rounds(4);
        let mut node = RoundCore::new(&cfg, NodeId(0), chatter(), 0);
        let early = Frame {
            height: 0,
            round: 1,
            src: NodeId(2),
            seq: 0,
            payload: {
                let mut b = Vec::new();
                7u64.encode(&mut b);
                b
            },
        };
        node.feed(early).unwrap();
        // The early frame does not complete round 0...
        node.expect = 0;
        assert!(node.ready());
        node.end_round().unwrap();
        // ...but is replayed the moment round 1 starts.
        assert_eq!(node.round(), 1);
        assert_eq!(node.received(), 1);
    }

    #[test]
    fn feed_rejects_stale_rounds_and_foreign_heights() {
        let cfg = SimConfig::new(4).seed(1).max_rounds(4);
        let mut node = RoundCore::new(&cfg, NodeId(1), chatter(), 3);
        let mk = |height, round| Frame {
            height,
            round,
            src: NodeId(0),
            seq: 0,
            payload: Vec::new(),
        };
        let err = node.feed(mk(2, 0)).unwrap_err();
        assert!(err.contains("height 2 during height 3"), "{err}");
        node.end_round().unwrap();
        let err = node.feed(mk(3, 0)).unwrap_err();
        assert!(err.contains("past round 0"), "{err}");
    }

    #[test]
    fn malformed_payload_is_an_error_not_a_panic() {
        let cfg = SimConfig::new(4).seed(1).max_rounds(4);
        let mut node = RoundCore::new(&cfg, NodeId(0), chatter(), 0);
        node.feed(Frame {
            height: 0,
            round: 0,
            src: NodeId(1),
            seq: 0,
            payload: vec![0xFF; 3], // too short for a u64
        })
        .unwrap();
        let err = node.end_round().unwrap_err();
        assert!(err.contains("malformed frame payload"), "{err}");
    }
}
