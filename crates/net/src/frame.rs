//! The wire format: length-prefixed frames carrying one protocol message.
//!
//! A frame is what one model message becomes on a real link:
//!
//! ```text
//! [len: u32 LE] [height: u32 LE] [round: u32 LE] [src: u32 LE] [seq: u32 LE] [payload...]
//! ```
//!
//! where `len` counts everything after itself (16 header bytes + payload).
//! `height` identifies the election instance a long-lived service is
//! running (`ftc-serve` re-elects at monotonically increasing heights over
//! the same substrate); single-shot runs use height 0. `round` lets
//! receivers assemble round-synchronous inboxes out of a stream that may
//! run ahead (a fast sender can enter round `r+1` while a slow receiver is
//! still collecting round `r`). `(src, seq)` gives receivers a canonical
//! inbox order — ascending `(src, seq)` — that matches the in-process
//! engine's delivery order exactly, so network runs replay simulator runs.
//! `src` is a transport-level address (like an IP address); protocols never
//! see it — the receiver maps it to a local KT0 port through its own
//! private permutation.

use std::io::{self, Read, Write};

use ftc_sim::ids::{NodeId, Round};

/// Frame header bytes following the length prefix.
pub const HEADER_LEN: usize = 16;

/// Hard cap on one frame's declared length; anything larger is treated as
/// stream corruption rather than allocated.
pub const MAX_FRAME_LEN: usize = 1 << 24;

/// One protocol message in flight on a transport link.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// The election instance this message belongs to (0 for single runs).
    /// Meshes are per-height, so a frame from another height on a link is
    /// a wiring bug; the tag makes that loud instead of silently wrong.
    pub height: u32,
    /// The synchronous round this message belongs to.
    pub round: Round,
    /// The sending node (transport address, invisible to protocols).
    pub src: NodeId,
    /// Position of this message within the sender's round — receivers sort
    /// by `(src, seq)` to reproduce the engine's inbox order.
    pub seq: u32,
    /// The [`ftc_sim::payload::Wire`]-encoded protocol message.
    pub payload: Vec<u8>,
}

impl Frame {
    /// Total bytes this frame occupies on the wire (prefix + header +
    /// payload) — the unit of real byte accounting.
    pub fn encoded_len(&self) -> u64 {
        (4 + HEADER_LEN + self.payload.len()) as u64
    }

    /// Serialises the frame into `buf` (appended).
    pub fn encode(&self, buf: &mut Vec<u8>) {
        let len = (HEADER_LEN + self.payload.len()) as u32;
        buf.extend_from_slice(&len.to_le_bytes());
        buf.extend_from_slice(&self.height.to_le_bytes());
        buf.extend_from_slice(&self.round.to_le_bytes());
        buf.extend_from_slice(&self.src.0.to_le_bytes());
        buf.extend_from_slice(&self.seq.to_le_bytes());
        buf.extend_from_slice(&self.payload);
    }

    /// Writes the frame to `w` as one `write_all` (one syscall per frame
    /// in the common case, which matters with `TCP_NODELAY`).
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<u64> {
        let mut buf = Vec::with_capacity(4 + HEADER_LEN + self.payload.len());
        self.encode(&mut buf);
        w.write_all(&buf)?;
        Ok(buf.len() as u64)
    }

    /// Reads one frame from `r`.
    ///
    /// Returns `Ok(None)` on clean end-of-stream (the peer closed between
    /// frames — how a crash teardown looks from the receiving side), an
    /// error on truncation mid-frame or on a corrupt length.
    pub fn read_from<R: Read>(r: &mut R) -> io::Result<Option<Frame>> {
        let mut len_buf = [0u8; 4];
        // A clean EOF before any length byte is a closed link, not an error.
        match r.read(&mut len_buf) {
            Ok(0) => return Ok(None),
            Ok(k) => r.read_exact(&mut len_buf[k..])?,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {
                r.read_exact(&mut len_buf)?;
            }
            Err(e) => return Err(e),
        }
        let len = u32::from_le_bytes(len_buf) as usize;
        if !(HEADER_LEN..=MAX_FRAME_LEN).contains(&len) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("corrupt frame length {len}"),
            ));
        }
        let mut rest = vec![0u8; len];
        r.read_exact(&mut rest)?;
        let word = |i: usize| u32::from_le_bytes(rest[i..i + 4].try_into().unwrap());
        Ok(Some(Frame {
            height: word(0),
            round: word(4),
            src: NodeId(word(8)),
            seq: word(12),
            payload: rest[HEADER_LEN..].to_vec(),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(height: u32, round: Round, src: u32, seq: u32, payload: &[u8]) -> Frame {
        Frame {
            height,
            round,
            src: NodeId(src),
            seq,
            payload: payload.to_vec(),
        }
    }

    #[test]
    fn roundtrips_through_a_stream() {
        let frames = [
            frame(0, 0, 3, 0, b""),
            frame(12, 7, 0, 2, b"\x01"),
            frame(u32::MAX, u32::MAX, 255, u32::MAX, &[0xAB; 100]),
        ];
        let mut stream = Vec::new();
        let mut bytes = 0u64;
        for f in &frames {
            bytes += f.write_to(&mut stream).unwrap();
            assert_eq!(
                bytes,
                stream.len() as u64,
                "write_to reports exact wire bytes"
            );
            assert_eq!(f.encoded_len(), 20 + f.payload.len() as u64);
        }
        let mut r = &stream[..];
        for f in &frames {
            assert_eq!(Frame::read_from(&mut r).unwrap().as_ref(), Some(f));
        }
        // Clean EOF after the last frame reads as a closed link.
        assert_eq!(Frame::read_from(&mut r).unwrap(), None);
    }

    #[test]
    fn height_survives_the_wire() {
        let mut stream = Vec::new();
        frame(41, 2, 9, 1, b"hi").write_to(&mut stream).unwrap();
        let mut r = &stream[..];
        let back = Frame::read_from(&mut r).unwrap().unwrap();
        assert_eq!(back.height, 41);
        assert_eq!(back.round, 2);
    }

    #[test]
    fn truncated_frame_is_an_error_not_eof() {
        let mut stream = Vec::new();
        frame(0, 1, 2, 3, b"abcdef").write_to(&mut stream).unwrap();
        stream.truncate(stream.len() - 2);
        let mut r = &stream[..];
        assert!(Frame::read_from(&mut r).is_err());
    }

    #[test]
    fn corrupt_length_is_rejected_before_allocating() {
        // Declared length below the header size.
        let mut r: &[u8] = &5u32.to_le_bytes();
        assert!(Frame::read_from(&mut r).is_err());
        // Declared length absurdly large.
        let big = (MAX_FRAME_LEN as u32 + 1).to_le_bytes();
        let mut r: &[u8] = &big;
        assert!(Frame::read_from(&mut r).is_err());
    }

    /// Deterministic xorshift64* generator — the fuzz corpus must be
    /// reproducible from the printed seed.
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            self.0.wrapping_mul(0x2545F4914F6CDD1D)
        }
        fn below(&mut self, n: usize) -> usize {
            (self.next() % n.max(1) as u64) as usize
        }
        fn bytes(&mut self, len: usize) -> Vec<u8> {
            (0..len).map(|_| self.next() as u8).collect()
        }
    }

    /// A reader that hands out at most `chunk` bytes per `read` call —
    /// partial reads, the normal case on a real nonblocking-then-readable
    /// socket, must decode identically to one contiguous slice.
    struct Chunked<'a> {
        data: &'a [u8],
        chunk: usize,
    }

    impl Read for Chunked<'_> {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            let k = self.chunk.min(buf.len()).min(self.data.len());
            buf[..k].copy_from_slice(&self.data[..k]);
            self.data = &self.data[k..];
            Ok(k)
        }
    }

    #[test]
    fn every_torn_prefix_of_a_valid_stream_errors_or_ends_cleanly() {
        // Cut a valid multi-frame stream at every byte offset: decoding
        // the prefix must either yield complete frames and a clean EOF
        // (cut on a frame boundary) or a truncation error — never a panic,
        // never a phantom frame.
        let mut stream = Vec::new();
        let frames = [
            frame(1, 0, 2, 0, b"ab"),
            frame(1, 1, 7, 3, b""),
            frame(2, 9, 1, 1, &[0x5A; 33]),
        ];
        let mut boundaries = vec![0usize];
        for f in &frames {
            f.write_to(&mut stream).unwrap();
            boundaries.push(stream.len());
        }
        for cut in 0..=stream.len() {
            let mut r = &stream[..cut];
            let mut decoded = 0usize;
            let outcome = loop {
                match Frame::read_from(&mut r) {
                    Ok(Some(f)) => {
                        assert_eq!(f, frames[decoded], "cut at {cut}");
                        decoded += 1;
                    }
                    Ok(None) => break Ok(()),
                    Err(e) => break Err(e),
                }
            };
            if boundaries.contains(&cut) {
                assert!(outcome.is_ok(), "boundary cut at {cut} should be clean EOF");
                assert_eq!(
                    decoded,
                    boundaries.iter().filter(|&&b| b <= cut).count() - 1
                );
            } else {
                assert!(outcome.is_err(), "mid-frame cut at {cut} must error");
            }
        }
    }

    #[test]
    fn partial_reads_decode_identically_to_contiguous_reads() {
        let mut stream = Vec::new();
        let frames = [
            frame(0, 3, 1, 0, b"tiny"),
            frame(4, 0, 0, 9, &[0xC3; 257]),
            frame(0, 1, 2, 3, b""),
        ];
        for f in &frames {
            f.write_to(&mut stream).unwrap();
        }
        for chunk in [1, 2, 3, 7, 16] {
            let mut r = Chunked {
                data: &stream,
                chunk,
            };
            for f in &frames {
                assert_eq!(Frame::read_from(&mut r).unwrap().as_ref(), Some(f));
            }
            assert_eq!(Frame::read_from(&mut r).unwrap(), None);
        }
    }

    #[test]
    fn oversized_length_prefixes_never_allocate_or_panic() {
        for declared in [
            MAX_FRAME_LEN as u32 + 1,
            1 << 28,
            u32::MAX / 2,
            u32::MAX - 1,
            u32::MAX,
        ] {
            let mut corrupt = declared.to_le_bytes().to_vec();
            corrupt.extend_from_slice(&[0u8; 64]);
            let mut r = &corrupt[..];
            let err = Frame::read_from(&mut r).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "len {declared}");
        }
    }

    #[test]
    fn garbage_byte_fuzz_errors_cleanly_and_never_panics() {
        // 2000 random byte strings, plus valid streams with random
        // corruption — every outcome must be Ok or Err, reached without
        // panicking and without reading past the input.
        let mut rng = Rng(0x0DDB1A5E5BAD5EED);
        for case in 0..2000u32 {
            let len = rng.below(96);
            let garbage = rng.bytes(len);
            let mut r = &garbage[..];
            loop {
                match Frame::read_from(&mut r) {
                    Ok(Some(_)) => continue, // garbage can spell a frame
                    Ok(None) => break,
                    Err(_) => break,
                }
            }
            // Corrupt one byte of an otherwise valid stream.
            let mut stream = Vec::new();
            let payload_len = rng.below(40);
            frame(case, case % 7, case % 5, case % 3, &rng.bytes(payload_len))
                .write_to(&mut stream)
                .unwrap();
            let pos = rng.below(stream.len());
            stream[pos] ^= (rng.next() as u8) | 1;
            let mut r = Chunked {
                data: &stream,
                chunk: 1 + rng.below(8),
            };
            loop {
                match Frame::read_from(&mut r) {
                    Ok(Some(_)) => continue, // a flipped payload bit still parses
                    Ok(None) => break,
                    Err(_) => break,
                }
            }
        }
    }

    #[test]
    fn random_valid_frames_roundtrip_through_chunked_readers() {
        let mut rng = Rng(0xF00DF4CE);
        for _ in 0..200 {
            let payload_len = rng.below(300);
            let f = frame(
                rng.next() as u32,
                rng.next() as u32,
                rng.next() as u32,
                rng.next() as u32,
                &rng.bytes(payload_len),
            );
            let mut stream = Vec::new();
            f.write_to(&mut stream).unwrap();
            assert_eq!(stream.len() as u64, f.encoded_len());
            let mut r = Chunked {
                data: &stream,
                chunk: 1 + rng.below(9),
            };
            assert_eq!(Frame::read_from(&mut r).unwrap(), Some(f));
        }
    }
}
