//! The wire format: length-prefixed frames carrying one protocol message.
//!
//! A frame is what one model message becomes on a real link:
//!
//! ```text
//! [len: u32 LE] [height: u32 LE] [round: u32 LE] [src: u32 LE] [seq: u32 LE] [payload...]
//! ```
//!
//! where `len` counts everything after itself (16 header bytes + payload).
//! `height` identifies the election instance a long-lived service is
//! running (`ftc-serve` re-elects at monotonically increasing heights over
//! the same substrate); single-shot runs use height 0. `round` lets
//! receivers assemble round-synchronous inboxes out of a stream that may
//! run ahead (a fast sender can enter round `r+1` while a slow receiver is
//! still collecting round `r`). `(src, seq)` gives receivers a canonical
//! inbox order — ascending `(src, seq)` — that matches the in-process
//! engine's delivery order exactly, so network runs replay simulator runs.
//! `src` is a transport-level address (like an IP address); protocols never
//! see it — the receiver maps it to a local KT0 port through its own
//! private permutation.

use std::io::{self, Read, Write};

use ftc_sim::ids::{NodeId, Round};

/// Frame header bytes following the length prefix.
pub const HEADER_LEN: usize = 16;

/// Hard cap on one frame's declared length; anything larger is treated as
/// stream corruption rather than allocated.
pub const MAX_FRAME_LEN: usize = 1 << 24;

/// One protocol message in flight on a transport link.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// The election instance this message belongs to (0 for single runs).
    /// Meshes are per-height, so a frame from another height on a link is
    /// a wiring bug; the tag makes that loud instead of silently wrong.
    pub height: u32,
    /// The synchronous round this message belongs to.
    pub round: Round,
    /// The sending node (transport address, invisible to protocols).
    pub src: NodeId,
    /// Position of this message within the sender's round — receivers sort
    /// by `(src, seq)` to reproduce the engine's inbox order.
    pub seq: u32,
    /// The [`ftc_sim::payload::Wire`]-encoded protocol message.
    pub payload: Vec<u8>,
}

impl Frame {
    /// Total bytes this frame occupies on the wire (prefix + header +
    /// payload) — the unit of real byte accounting.
    pub fn encoded_len(&self) -> u64 {
        (4 + HEADER_LEN + self.payload.len()) as u64
    }

    /// Serialises the frame into `buf` (appended).
    pub fn encode(&self, buf: &mut Vec<u8>) {
        let len = (HEADER_LEN + self.payload.len()) as u32;
        buf.extend_from_slice(&len.to_le_bytes());
        buf.extend_from_slice(&self.height.to_le_bytes());
        buf.extend_from_slice(&self.round.to_le_bytes());
        buf.extend_from_slice(&self.src.0.to_le_bytes());
        buf.extend_from_slice(&self.seq.to_le_bytes());
        buf.extend_from_slice(&self.payload);
    }

    /// Writes the frame to `w` as one `write_all` (one syscall per frame
    /// in the common case, which matters with `TCP_NODELAY`).
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<u64> {
        let mut buf = Vec::with_capacity(4 + HEADER_LEN + self.payload.len());
        self.encode(&mut buf);
        w.write_all(&buf)?;
        Ok(buf.len() as u64)
    }

    /// Reads one frame from `r`.
    ///
    /// Returns `Ok(None)` on clean end-of-stream (the peer closed between
    /// frames — how a crash teardown looks from the receiving side), an
    /// error on truncation mid-frame or on a corrupt length.
    pub fn read_from<R: Read>(r: &mut R) -> io::Result<Option<Frame>> {
        let mut len_buf = [0u8; 4];
        // A clean EOF before any length byte is a closed link, not an error.
        match r.read(&mut len_buf) {
            Ok(0) => return Ok(None),
            Ok(k) => r.read_exact(&mut len_buf[k..])?,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {
                r.read_exact(&mut len_buf)?;
            }
            Err(e) => return Err(e),
        }
        let len = u32::from_le_bytes(len_buf) as usize;
        if !(HEADER_LEN..=MAX_FRAME_LEN).contains(&len) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("corrupt frame length {len}"),
            ));
        }
        let mut rest = vec![0u8; len];
        r.read_exact(&mut rest)?;
        let word = |i: usize| u32::from_le_bytes(rest[i..i + 4].try_into().unwrap());
        Ok(Some(Frame {
            height: word(0),
            round: word(4),
            src: NodeId(word(8)),
            seq: word(12),
            payload: rest[HEADER_LEN..].to_vec(),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(height: u32, round: Round, src: u32, seq: u32, payload: &[u8]) -> Frame {
        Frame {
            height,
            round,
            src: NodeId(src),
            seq,
            payload: payload.to_vec(),
        }
    }

    #[test]
    fn roundtrips_through_a_stream() {
        let frames = [
            frame(0, 0, 3, 0, b""),
            frame(12, 7, 0, 2, b"\x01"),
            frame(u32::MAX, u32::MAX, 255, u32::MAX, &[0xAB; 100]),
        ];
        let mut stream = Vec::new();
        let mut bytes = 0u64;
        for f in &frames {
            bytes += f.write_to(&mut stream).unwrap();
            assert_eq!(
                bytes,
                stream.len() as u64,
                "write_to reports exact wire bytes"
            );
            assert_eq!(f.encoded_len(), 20 + f.payload.len() as u64);
        }
        let mut r = &stream[..];
        for f in &frames {
            assert_eq!(Frame::read_from(&mut r).unwrap().as_ref(), Some(f));
        }
        // Clean EOF after the last frame reads as a closed link.
        assert_eq!(Frame::read_from(&mut r).unwrap(), None);
    }

    #[test]
    fn height_survives_the_wire() {
        let mut stream = Vec::new();
        frame(41, 2, 9, 1, b"hi").write_to(&mut stream).unwrap();
        let mut r = &stream[..];
        let back = Frame::read_from(&mut r).unwrap().unwrap();
        assert_eq!(back.height, 41);
        assert_eq!(back.round, 2);
    }

    #[test]
    fn truncated_frame_is_an_error_not_eof() {
        let mut stream = Vec::new();
        frame(0, 1, 2, 3, b"abcdef").write_to(&mut stream).unwrap();
        stream.truncate(stream.len() - 2);
        let mut r = &stream[..];
        assert!(Frame::read_from(&mut r).is_err());
    }

    #[test]
    fn corrupt_length_is_rejected_before_allocating() {
        // Declared length below the header size.
        let mut r: &[u8] = &5u32.to_le_bytes();
        assert!(Frame::read_from(&mut r).is_err());
        // Declared length absurdly large.
        let big = (MAX_FRAME_LEN as u32 + 1).to_le_bytes();
        let mut r: &[u8] = &big;
        assert!(Frame::read_from(&mut r).is_err());
    }
}
