//! The round synchronizer: drives [`Protocol`] state machines over a real
//! transport, reproducing the in-process engine bit for bit.
//!
//! ## Architecture
//!
//! The model's *data plane* (protocol messages between nodes) moves over
//! the transport as [`Frame`]s. The *control plane* — the adversary, its
//! delivery filters, liveness, and all accounting — is inherently global
//! (the model's adversary sees the whole round's traffic before choosing
//! crashes), so it runs in one coordinator built on the same
//! [`ControlCore`] the simulator uses. Per round:
//!
//! 1. **activate** — every alive node runs its protocol against the inbox
//!    assembled from last round's frames and submits its queued sends to
//!    the coordinator;
//! 2. **adjudicate** — the coordinator routes the sends through the KT0
//!    port permutations, consults the adversary, applies crash filters and
//!    closes the round's books ([`ControlCore::finish_round`]);
//! 3. **transmit** — each node physically sends its surviving messages as
//!    frames; a node crashed this round sends its filter-surviving frames
//!    and then tears its endpoint down (mid-round socket teardown — the
//!    wire form of crash-with-partial-delivery);
//! 4. **collect** — each surviving node blocks until the frames the
//!    coordinator told it to expect have arrived, reassembling them into
//!    next round's inbox in canonical `(src, seq)` order.
//!
//! Nodes are multiplexed onto a worker pool. Because every decision is
//! centralized and submissions are keyed by node id, results are
//! independent of the worker count — `workers = 1` and `workers = 4`
//! produce identical executions (asserted by `tests/net_equivalence.rs`).
//!
//! All round *logic* lives in the sans-I/O [`crate::core`] module
//! ([`RoundCore`] per node, [`CoordinatorCore`] for the control plane);
//! this module is the threads-and-channels adapter that moves the cores'
//! data over an [`Endpoint`] mesh. The multiplexed socket runtime
//! (`ftc-mesh`) is a second adapter over the same cores.
//!
//! ## Why this cannot deadlock
//!
//! Within a round, every worker transmits *all* its nodes' frames before
//! collecting for *any* of them, transmits never block (channel sends are
//! unbounded; TCP receivers drain sockets into unbounded intake queues from
//! dedicated reader threads), and the coordinator's phase barriers order
//! activation before adjudication before transmission. Every frame a node
//! waits for has therefore already been sent, or will be sent by a worker
//! that is still transmitting and never blocks first.

use std::io;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread;
use std::time::Duration;

use ftc_sim::adversary::Adversary;
use ftc_sim::engine::{RunResult, SimConfig};
use ftc_sim::ids::NodeId;
use ftc_sim::payload::Wire;
use ftc_sim::protocol::Protocol;
use ftc_sim::round::topology_seed;
use ftc_sim::topology::EdgeSet;

use crate::channel::{self};
use crate::core::{Command, CoordinatorCore, RoundCore, Submission};
use crate::fault::{FrameDedup, WireFaultPlan};
use crate::tcp;
use crate::transport::{Endpoint, RECV_TIMEOUT};

/// The run's edge oracle: which links the TCP mesh must open. The
/// channel transport needs no counterpart — its sender registry is O(n)
/// regardless of the graph (there is no per-edge resource to gate), and
/// the coordinator only ever routes frames along topology edges.
fn edge_set_of(cfg: &SimConfig) -> EdgeSet {
    cfg.topology.edge_set(cfg.n, topology_seed(cfg))
}

/// Transport-level accounting of one cluster run, on top of the model
/// metrics in [`RunResult`].
#[derive(Clone, Copy, Debug, Default)]
pub struct NetMetrics {
    /// Total bytes pushed onto the wire (length prefixes + frame headers +
    /// encoded payloads), summed over all nodes.
    pub wire_bytes: u64,
    /// Total frames transmitted.
    pub frames_sent: u64,
}

/// A completed cluster run: the model-level result (identical to what
/// [`ftc_sim::engine::run`] returns for the same `(SimConfig, seed)`) plus
/// transport-level byte accounting.
#[derive(Debug)]
pub struct NetRunResult<P> {
    /// The model-level result; `run.metrics.wire_bytes` is filled in from
    /// the transport accounting.
    pub run: RunResult<P>,
    /// Transport-level accounting.
    pub net: NetMetrics,
}

/// What a worker hands back when all its nodes are done.
struct WorkerReport<P> {
    wire_bytes: u64,
    frames_sent: u64,
    states: Vec<(NodeId, P)>,
}

/// One node as owned by a worker thread: the sans-I/O state machine plus
/// this runtime's I/O attachments (an endpoint and a command channel).
struct WorkerNode<P: Protocol, E> {
    core: RoundCore<P>,
    endpoint: E,
    commands: Receiver<Command>,
}

/// Runs `cfg` over an in-process channel mesh with `workers` worker
/// threads and the default receive timeout
/// ([`crate::transport::RECV_TIMEOUT`]). Infallible transport, any
/// `n ≥ 2`.
///
/// See [`run_over`] for semantics and panics.
pub fn run_over_channel<P, F, A>(
    cfg: &SimConfig,
    workers: usize,
    factory: F,
    adversary: &mut A,
) -> NetRunResult<P>
where
    P: Protocol,
    P::Msg: Wire,
    F: FnMut(NodeId) -> P,
    A: Adversary<P::Msg> + ?Sized,
{
    run_over_channel_with(cfg, workers, factory, adversary, RECV_TIMEOUT)
}

/// Like [`run_over_channel`], but nodes give up after `recv_timeout` when
/// blocked on a frame (a wedged run fails fast instead of hanging for the
/// default 60 s).
pub fn run_over_channel_with<P, F, A>(
    cfg: &SimConfig,
    workers: usize,
    factory: F,
    adversary: &mut A,
    recv_timeout: Duration,
) -> NetRunResult<P>
where
    P: Protocol,
    P::Msg: Wire,
    F: FnMut(NodeId) -> P,
    A: Adversary<P::Msg> + ?Sized,
{
    let endpoints = channel::mesh_with_timeout(cfg.n, recv_timeout);
    run_over(cfg, workers, factory, adversary, endpoints)
}

/// Like [`run_over_channel_with`], but frames are tagged with `height` —
/// the election-instance counter of a long-lived service (`ftc-serve`).
/// Each height gets a fresh mesh, so the tag is provenance: a frame whose
/// height disagrees with the run's aborts the run instead of silently
/// feeding one election's traffic to another.
pub fn run_over_channel_at_height<P, F, A>(
    cfg: &SimConfig,
    workers: usize,
    factory: F,
    adversary: &mut A,
    recv_timeout: Duration,
    height: u32,
) -> NetRunResult<P>
where
    P: Protocol,
    P::Msg: Wire,
    F: FnMut(NodeId) -> P,
    A: Adversary<P::Msg> + ?Sized,
{
    let endpoints = channel::mesh_with_timeout(cfg.n, recv_timeout);
    run_over_at_height(cfg, workers, factory, adversary, endpoints, height)
}

/// Like [`run_over_channel`], but with a scripted [`WireFaultPlan`]
/// perturbing the wire between the cores and the transport: transmit
/// bursts are reordered/duplicated/delayed per the plan, and receive
/// edges dedup frames. The model result and accounting are bit-identical
/// to the faultless run — every v1 wire fault is delivery-preserving
/// (see [`crate::fault`]) — which is exactly the property
/// `ftc hunt --wire-faults` searches for violations of.
pub fn run_over_channel_faulty<P, F, A>(
    cfg: &SimConfig,
    workers: usize,
    factory: F,
    adversary: &mut A,
    wire: &WireFaultPlan,
) -> NetRunResult<P>
where
    P: Protocol,
    P::Msg: Wire,
    F: FnMut(NodeId) -> P,
    A: Adversary<P::Msg> + ?Sized,
{
    let endpoints = channel::mesh_with_timeout(cfg.n, RECV_TIMEOUT);
    run_over_wired(cfg, workers, factory, adversary, endpoints, 0, Some(wire))
}

/// Runs `cfg` over a localhost TCP mesh (real sockets) with `workers`
/// worker threads and the default receive timeout
/// ([`crate::transport::RECV_TIMEOUT`]). Limited to [`tcp::MAX_TCP_NODES`]
/// nodes.
///
/// Fails if the mesh cannot be built; see [`run_over`] for run semantics.
pub fn run_over_tcp<P, F, A>(
    cfg: &SimConfig,
    workers: usize,
    factory: F,
    adversary: &mut A,
) -> std::io::Result<NetRunResult<P>>
where
    P: Protocol,
    P::Msg: Wire,
    F: FnMut(NodeId) -> P,
    A: Adversary<P::Msg> + ?Sized,
{
    run_over_tcp_with(cfg, workers, factory, adversary, RECV_TIMEOUT)
}

/// Like [`run_over_tcp`], but nodes give up after `recv_timeout` when
/// blocked on a frame.
pub fn run_over_tcp_with<P, F, A>(
    cfg: &SimConfig,
    workers: usize,
    factory: F,
    adversary: &mut A,
    recv_timeout: Duration,
) -> std::io::Result<NetRunResult<P>>
where
    P: Protocol,
    P::Msg: Wire,
    F: FnMut(NodeId) -> P,
    A: Adversary<P::Msg> + ?Sized,
{
    let endpoints = tcp::mesh_on(&edge_set_of(cfg), recv_timeout)?;
    Ok(run_over(cfg, workers, factory, adversary, endpoints))
}

/// TCP counterpart of [`run_over_channel_faulty`].
pub fn run_over_tcp_faulty<P, F, A>(
    cfg: &SimConfig,
    workers: usize,
    factory: F,
    adversary: &mut A,
    wire: &WireFaultPlan,
) -> std::io::Result<NetRunResult<P>>
where
    P: Protocol,
    P::Msg: Wire,
    F: FnMut(NodeId) -> P,
    A: Adversary<P::Msg> + ?Sized,
{
    let endpoints = tcp::mesh_on(&edge_set_of(cfg), RECV_TIMEOUT)?;
    Ok(run_over_wired(
        cfg,
        workers,
        factory,
        adversary,
        endpoints,
        0,
        Some(wire),
    ))
}

/// TCP counterpart of [`run_over_channel_at_height`].
pub fn run_over_tcp_at_height<P, F, A>(
    cfg: &SimConfig,
    workers: usize,
    factory: F,
    adversary: &mut A,
    recv_timeout: Duration,
    height: u32,
) -> std::io::Result<NetRunResult<P>>
where
    P: Protocol,
    P::Msg: Wire,
    F: FnMut(NodeId) -> P,
    A: Adversary<P::Msg> + ?Sized,
{
    let endpoints = tcp::mesh_on(&edge_set_of(cfg), recv_timeout)?;
    Ok(run_over_at_height(
        cfg, workers, factory, adversary, endpoints, height,
    ))
}

/// Runs one execution of `cfg` over `endpoints` (one per node, in id
/// order), multiplexing nodes onto `workers` threads.
///
/// The result is bit-identical to [`ftc_sim::engine::run`] with the same
/// configuration — same elected leaders, same decisions, same message and
/// round counts, same crash schedule — because both drivers share the
/// model's control plane and seed derivation. On top, `wire_bytes` /
/// `frames_sent` report what the run actually cost on the wire.
///
/// # Panics
///
/// Panics on invalid configurations ([`SimConfig::validate`],
/// `max_rounds == 0`, endpoint count mismatch), if the adversary violates
/// the model, or if the transport fails mid-run (a torn socket outside the
/// crash schedule is a bug, not a model event — the model's faults are
/// *injected*, never spontaneous).
pub fn run_over<P, F, A, E>(
    cfg: &SimConfig,
    workers: usize,
    factory: F,
    adversary: &mut A,
    endpoints: Vec<E>,
) -> NetRunResult<P>
where
    P: Protocol,
    P::Msg: Wire,
    F: FnMut(NodeId) -> P,
    A: Adversary<P::Msg> + ?Sized,
    E: Endpoint,
{
    run_over_at_height(cfg, workers, factory, adversary, endpoints, 0)
}

/// [`run_over`] with every frame tagged as belonging to election instance
/// `height`. The tag does not change the execution — heights use fresh
/// meshes, and the model result stays bit-identical to the engine for the
/// same `(SimConfig, seed)` — but workers verify it on every collected
/// frame, so cross-height contamination is an immediate run failure.
pub fn run_over_at_height<P, F, A, E>(
    cfg: &SimConfig,
    workers: usize,
    factory: F,
    adversary: &mut A,
    endpoints: Vec<E>,
    height: u32,
) -> NetRunResult<P>
where
    P: Protocol,
    P::Msg: Wire,
    F: FnMut(NodeId) -> P,
    A: Adversary<P::Msg> + ?Sized,
    E: Endpoint,
{
    run_over_wired(cfg, workers, factory, adversary, endpoints, height, None)
}

/// The shared driver: [`run_over_at_height`] plus an optional
/// [`WireFaultPlan`] applied at the adapter boundary (never inside the
/// cores). `None` is the exact pre-fault code path.
fn run_over_wired<P, F, A, E>(
    cfg: &SimConfig,
    workers: usize,
    mut factory: F,
    adversary: &mut A,
    endpoints: Vec<E>,
    height: u32,
    wire: Option<&WireFaultPlan>,
) -> NetRunResult<P>
where
    P: Protocol,
    P::Msg: Wire,
    F: FnMut(NodeId) -> P,
    A: Adversary<P::Msg> + ?Sized,
    E: Endpoint,
{
    cfg.validate().expect("invalid SimConfig");
    assert!(cfg.max_rounds > 0, "cluster runs need at least one round");
    let nn = cfg.n as usize;
    assert_eq!(endpoints.len(), nn, "need exactly one endpoint per node");
    let workers = workers.clamp(1, nn);

    let mut coord = CoordinatorCore::<P::Msg>::new(cfg, height, adversary);

    let (submit_tx, submit_rx) = channel::<Submission<P::Msg>>();
    let (report_tx, report_rx) = channel::<WorkerReport<P>>();
    let mut command_txs: Vec<Sender<Command>> = Vec::with_capacity(nn);
    let mut pools: Vec<Vec<WorkerNode<P, E>>> = (0..workers).map(|_| Vec::new()).collect();
    for (i, endpoint) in endpoints.into_iter().enumerate() {
        let id = NodeId(i as u32);
        let (tx, rx) = channel();
        command_txs.push(tx);
        pools[i % workers].push(WorkerNode {
            core: RoundCore::new(cfg, id, factory(id), height),
            endpoint,
            commands: rx,
        });
    }

    let mut states: Vec<Option<P>> = (0..nn).map(|_| None).collect();
    let mut net = NetMetrics::default();
    let mut failure: Option<String> = None;

    thread::scope(|scope| {
        for pool in pools {
            let submit_tx = submit_tx.clone();
            let report_tx = report_tx.clone();
            scope.spawn(move || worker_loop(pool, submit_tx, report_tx, wire));
        }
        drop(submit_tx);
        drop(report_tx);

        'rounds: loop {
            // --- activate: collect one submission per alive node. ---
            let expected = coord.alive().len();
            let mut submissions = Vec::with_capacity(expected);
            for _ in 0..expected {
                let sub = submit_rx.recv().expect("a worker died mid-round");
                if sub.failed.is_some() {
                    failure = sub.failed;
                    break 'rounds;
                }
                submissions.push(sub);
            }

            // --- adjudicate and fan the verdicts out. ---
            let plan = match coord.adjudicate(submissions, adversary) {
                Ok(plan) => plan,
                Err(err) => {
                    failure = Some(err);
                    break 'rounds;
                }
            };
            for (u, command) in plan.commands {
                command_txs[u.index()]
                    .send(command)
                    .expect("a worker died mid-round");
            }
            if plan.stop {
                break;
            }
        }

        if failure.is_some() {
            // Unwedge the lock-step: stop every surviving node so the
            // workers drain and join (the failed worker's command
            // receiver is already gone — ignore send errors).
            for tx in &command_txs {
                let _ = tx.send(Command::stop());
            }
        }

        while let Ok(report) = report_rx.recv() {
            net.wire_bytes += report.wire_bytes;
            net.frames_sent += report.frames_sent;
            for (id, state) in report.states {
                states[id.index()] = Some(state);
            }
        }
    });

    if let Some(err) = failure {
        panic!("cluster run wedged: {err}");
    }

    let out = coord.finish(net.wire_bytes);
    NetRunResult {
        run: RunResult {
            metrics: out.metrics,
            states: states
                .into_iter()
                .map(|s| s.expect("worker returned no state for a node"))
                .collect(),
            crashed_at: out.crashed_at,
            faulty: out.faulty,
            trace: out.trace,
            congest_violations: out.congest_violations,
        },
        net,
    }
}

/// Drives one worker's share of the nodes, phase-locked to the
/// coordinator, until every owned node has crashed or stopped. All round
/// logic lives in each node's [`RoundCore`]; this loop only moves data
/// between the cores and their I/O attachments.
fn worker_loop<P, E>(
    mut nodes: Vec<WorkerNode<P, E>>,
    submit_tx: Sender<Submission<P::Msg>>,
    report_tx: Sender<WorkerReport<P>>,
    wire: Option<&WireFaultPlan>,
) where
    P: Protocol,
    P::Msg: Wire,
    E: Endpoint,
{
    let mut wire_bytes = 0u64;
    let mut frames_sent = 0u64;
    // Receive-edge dedup, one set per owned node, engaged only under a
    // wire plan (the faultless path must stay byte-for-byte untouched).
    let mut dedups: Vec<FrameDedup> = if wire.is_some() {
        nodes.iter().map(|_| FrameDedup::new()).collect()
    } else {
        Vec::new()
    };
    loop {
        // Phase 1: activate and submit.
        let mut any_active = false;
        for node in nodes.iter_mut().filter(|n| n.core.is_active()) {
            any_active = true;
            submit_tx
                .send(node.core.activate())
                .expect("coordinator gone");
        }
        if !any_active {
            break;
        }

        // Phase 2: transmit for *all* owned nodes before collecting for
        // *any* (the deadlock-freedom invariant — see module docs).
        for node in nodes.iter_mut().filter(|n| n.core.is_active()) {
            let command = node.commands.recv().expect("coordinator gone");
            let crashed = command.crashed;
            let mut burst = node.core.apply(command);
            // Wire faults perturb the burst between core and endpoint:
            // duplicates (the appended suffix) go on the wire uncharged,
            // so model accounting stays identical to a faultless run.
            // Tear is absorbed trivially here — this transport sends
            // whole frames.
            let mut charged = burst.len();
            if let Some(plan) = wire {
                if let Some(round) = burst.first().map(|(_, f)| f.round) {
                    let id = node.core.id();
                    if let Some(pause) = plan.delay(id, round) {
                        thread::sleep(pause);
                    }
                    let dups = plan.perturb_batch(id, round, &mut burst);
                    charged = burst.len() - dups;
                }
            }
            for (k, (dst, frame)) in burst.into_iter().enumerate() {
                let sent = node
                    .endpoint
                    .send(dst, &frame)
                    .expect("transport send failed");
                if k < charged {
                    wire_bytes += sent;
                    frames_sent += 1;
                }
            }
            if crashed {
                // Mid-round socket teardown — the wire form of
                // crash-with-partial-delivery.
                node.endpoint.teardown();
            }
        }

        // Phase 3: collect next round's inboxes. Failures surface through
        // the submission channel (where the coordinator blocks next
        // round) — dying silently here would deadlock the lock-step loop.
        for (slot, node) in nodes.iter_mut().enumerate() {
            if !node.core.is_active() {
                continue;
            }
            while !node.core.ready() {
                let frame = match node.endpoint.recv() {
                    Ok(frame) => frame,
                    Err(e) => {
                        let msg = if e.kind() == io::ErrorKind::TimedOut {
                            format!(
                                "node {} timed out collecting round {}: got {} of {} frames ({e})",
                                node.core.id(),
                                node.core.round(),
                                node.core.received(),
                                node.core.expect(),
                            )
                        } else {
                            e.to_string()
                        };
                        let _ = submit_tx.send(Submission::failure(node.core.id(), msg));
                        return;
                    }
                };
                // Under a wire plan, a duplicate (possibly straggling
                // from an earlier round) is dropped before the core sees
                // it — it would otherwise falsely complete the round or
                // trip the past-round check.
                if let Some(dedup) = dedups.get_mut(slot) {
                    if !dedup.admit(&frame) {
                        continue;
                    }
                }
                if let Err(err) = node.core.feed(frame) {
                    let _ = submit_tx.send(Submission::failure(node.core.id(), err));
                    return;
                }
            }
            if let Err(err) = node.core.end_round() {
                let _ = submit_tx.send(Submission::failure(node.core.id(), err));
                return;
            }
        }
    }

    let _ = report_tx.send(WorkerReport {
        wire_bytes,
        frames_sent,
        states: nodes
            .into_iter()
            .map(|n| (n.core.id(), n.core.into_state()))
            .collect(),
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftc_sim::adversary::{DeliveryFilter, EagerCrash, FaultPlan, NoFaults, ScriptedCrash};
    use ftc_sim::engine::run;
    use ftc_sim::protocol::{Ctx, Incoming};

    /// Broadcasts its round number for 3 rounds and counts what it hears —
    /// the same canary protocol the engine tests use.
    struct Chatter {
        heard: u64,
        rounds: u32,
    }

    impl Protocol for Chatter {
        type Msg = u64;
        fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
            ctx.broadcast(0);
        }
        fn on_round(&mut self, ctx: &mut Ctx<'_, u64>, inbox: &[Incoming<u64>]) {
            self.heard += inbox.iter().map(|m| m.msg + 1).sum::<u64>();
            self.rounds += 1;
            if self.rounds < 3 {
                ctx.broadcast(u64::from(ctx.round()));
            }
        }
        fn is_terminated(&self) -> bool {
            self.rounds >= 3
        }
    }

    fn chatter(_: NodeId) -> Chatter {
        Chatter {
            heard: 0,
            rounds: 0,
        }
    }

    fn assert_matches_engine(
        cfg: &SimConfig,
        net: &NetRunResult<Chatter>,
        sim: &RunResult<Chatter>,
    ) {
        assert_eq!(net.run.metrics.msgs_sent, sim.metrics.msgs_sent, "{cfg:?}");
        assert_eq!(net.run.metrics.msgs_delivered, sim.metrics.msgs_delivered);
        assert_eq!(net.run.metrics.bits_sent, sim.metrics.bits_sent);
        assert_eq!(net.run.metrics.rounds, sim.metrics.rounds);
        assert_eq!(net.run.crashed_at, sim.crashed_at);
        let net_heard: Vec<u64> = net.run.states.iter().map(|s| s.heard).collect();
        let sim_heard: Vec<u64> = sim.states.iter().map(|s| s.heard).collect();
        assert_eq!(net_heard, sim_heard, "per-node observations diverged");
    }

    #[test]
    fn recv_timeout_aborts_the_run_instead_of_deadlocking() {
        // A 1 ns recv timeout trips essentially always on a real
        // scheduler, but not deterministically — retry a few runs so the
        // test doesn't hinge on one interleaving. The load-bearing claim:
        // a node timing out must abort the whole run with the transport
        // error (via the submission channel), never deadlock the
        // coordinator's lock-step loop.
        for attempt in 0..5 {
            let result = std::panic::catch_unwind(|| {
                let cfg = SimConfig::new(16).seed(9 + attempt).max_rounds(30);
                let mut adv = NoFaults;
                run_over_channel_with(&cfg, 4, chatter, &mut adv, Duration::from_nanos(1))
            });
            if let Err(payload) = result {
                let msg = payload
                    .downcast_ref::<String>()
                    .cloned()
                    .unwrap_or_default();
                assert!(
                    msg.contains("cluster run wedged") && msg.contains("timed out"),
                    "unexpected panic: {msg}"
                );
                return;
            }
        }
        panic!("a 1ns recv timeout never tripped in 5 runs");
    }

    #[test]
    fn channel_run_replays_the_engine_fault_free() {
        let cfg = SimConfig::new(16).seed(5).max_rounds(10);
        let sim = run(&cfg, chatter, &mut NoFaults);
        for workers in [1, 3, 16] {
            let net = run_over_channel(&cfg, workers, chatter, &mut NoFaults);
            assert_matches_engine(&cfg, &net, &sim);
            assert!(net.net.frames_sent > 0);
            assert_eq!(net.run.metrics.wire_bytes, net.net.wire_bytes);
            assert!(net.net.wire_bytes >= 20 * net.net.frames_sent);
        }
    }

    #[test]
    fn channel_run_replays_the_engine_under_crashes() {
        let cfg = SimConfig::new(16).seed(7).max_rounds(10);
        for workers in [1, 4] {
            let mut sim_adv = EagerCrash::new(5);
            let sim = run(&cfg, chatter, &mut sim_adv);
            let mut net_adv = EagerCrash::new(5);
            let net = run_over_channel(&cfg, workers, chatter, &mut net_adv);
            assert_matches_engine(&cfg, &net, &sim);
            assert_eq!(net.run.survivor_count(), sim.survivor_count());
        }
    }

    #[test]
    fn channel_run_respects_partial_delivery_filters() {
        let plan = FaultPlan::new()
            .crash(NodeId(2), 1, DeliveryFilter::KeepFirst(3))
            .crash(
                NodeId(5),
                0,
                DeliveryFilter::DeliverEachWithProbability(0.5),
            );
        let cfg = SimConfig::new(12).seed(3).max_rounds(8);
        let mut sim_adv = ScriptedCrash::new(plan.clone());
        let sim = run(&cfg, chatter, &mut sim_adv);
        let mut net_adv = ScriptedCrash::new(plan);
        let net = run_over_channel(&cfg, 2, chatter, &mut net_adv);
        assert_matches_engine(&cfg, &net, &sim);
    }

    #[test]
    fn tcp_run_replays_the_engine() {
        let cfg = SimConfig::new(8).seed(11).max_rounds(10);
        let plan = FaultPlan::new().crash(NodeId(1), 1, DeliveryFilter::KeepFirst(2));
        let mut sim_adv = ScriptedCrash::new(plan.clone());
        let sim = run(&cfg, chatter, &mut sim_adv);
        let mut net_adv = ScriptedCrash::new(plan);
        let net = run_over_tcp(&cfg, 4, chatter, &mut net_adv).expect("tcp mesh");
        assert_matches_engine(&cfg, &net, &sim);
        assert!(net.net.wire_bytes > 0);
    }

    #[test]
    fn runs_replay_the_engine_on_sparse_topologies() {
        use ftc_sim::topology::Topology;
        // The gated runtimes must stay bit-identical to the engine off
        // the complete graph too — over real sockets (opening only the
        // topology's links) and over channels alike.
        for topology in [
            Topology::DiameterTwo { clusters: 3 },
            Topology::RandomRegular { d: 4 },
        ] {
            let cfg = SimConfig::new(12)
                .seed(17)
                .max_rounds(10)
                .topology(topology);
            let sim = run(&cfg, chatter, &mut NoFaults);
            let tcp = run_over_tcp(&cfg, 3, chatter, &mut NoFaults).expect("tcp mesh");
            assert_matches_engine(&cfg, &tcp, &sim);
            let chan = run_over_channel(&cfg, 4, chatter, &mut NoFaults);
            assert_matches_engine(&cfg, &chan, &sim);
        }
    }

    #[test]
    fn wire_faults_are_model_invisible_on_the_channel_path() {
        use crate::fault::{WireFaultKind, WireFaultPlan};
        // A crash schedule *plus* a wire schedule that reorders, delays,
        // and duplicates bursts — including the crashing node's own
        // crash-round burst. Delivery-preserving wire chaos must change
        // nothing: not the model result, not even the byte accounting.
        let cfg = SimConfig::new(12).seed(3).max_rounds(8);
        let plan = FaultPlan::new().crash(NodeId(2), 1, DeliveryFilter::KeepFirst(3));
        let sim = run(&cfg, chatter, &mut ScriptedCrash::new(plan.clone()));
        let clean = run_over_channel(&cfg, 2, chatter, &mut ScriptedCrash::new(plan.clone()));
        let wire = WireFaultPlan::new(11)
            .fault(NodeId(0), 0, WireFaultKind::Reorder)
            .fault(NodeId(1), 0, WireFaultKind::Duplicate)
            .fault(NodeId(2), 1, WireFaultKind::Duplicate)
            .fault(NodeId(2), 1, WireFaultKind::Reorder)
            .fault(NodeId(3), 1, WireFaultKind::Delay { micros: 200 })
            .fault(NodeId(4), 2, WireFaultKind::Tear { chunk: 3 });
        for workers in [1, 4] {
            let net = run_over_channel_faulty(
                &cfg,
                workers,
                chatter,
                &mut ScriptedCrash::new(plan.clone()),
                &wire,
            );
            assert_matches_engine(&cfg, &net, &sim);
            assert_eq!(net.net.wire_bytes, clean.net.wire_bytes);
            assert_eq!(net.net.frames_sent, clean.net.frames_sent);
        }
    }

    #[test]
    fn send_cap_and_suppression_survive_the_network_path() {
        let cfg = SimConfig::new(8).seed(2).max_rounds(10).send_cap(5);
        let sim = run(&cfg, chatter, &mut NoFaults);
        let net = run_over_channel(&cfg, 3, chatter, &mut NoFaults);
        assert_eq!(net.run.metrics.msgs_suppressed, sim.metrics.msgs_suppressed);
        assert_matches_engine(&cfg, &net, &sim);
    }

    #[test]
    fn repeated_heights_replay_the_engine_with_a_leader_crash_mid_broadcast() {
        // Node 3 dies in round 1 with only its first two frames delivered —
        // a leader crashing partway through a broadcast. A service re-runs
        // the same election shape at successive heights over fresh meshes;
        // every height must replay the engine bit for bit.
        let cfg = SimConfig::new(10).seed(21).max_rounds(8);
        let plan = FaultPlan::new().crash(NodeId(3), 1, DeliveryFilter::KeepFirst(2));
        let sim = run(&cfg, chatter, &mut ScriptedCrash::new(plan.clone()));
        for height in [0, 1, 7, 40] {
            let net = run_over_channel_at_height(
                &cfg,
                3,
                chatter,
                &mut ScriptedCrash::new(plan.clone()),
                RECV_TIMEOUT,
                height,
            );
            assert_matches_engine(&cfg, &net, &sim);
        }
    }

    #[test]
    fn coordinator_adjacent_crash_does_not_wedge_any_height() {
        // Node 0 sits in the first worker pool and submits first each
        // round; crashing it mid-round exercises the coordinator's
        // accounting right where a miscount would deadlock the lock-step
        // loop. Repeat across heights to cover the service's re-election
        // path.
        let cfg = SimConfig::new(8).seed(13).max_rounds(8);
        let plan = FaultPlan::new().crash(NodeId(0), 1, DeliveryFilter::KeepFirst(1));
        let sim = run(&cfg, chatter, &mut ScriptedCrash::new(plan.clone()));
        for height in [2, 3, 9] {
            let net = run_over_channel_at_height(
                &cfg,
                4,
                chatter,
                &mut ScriptedCrash::new(plan.clone()),
                RECV_TIMEOUT,
                height,
            );
            assert_matches_engine(&cfg, &net, &sim);
        }
    }

    #[test]
    fn rejoin_at_a_height_boundary_restores_full_participation() {
        // A long-lived service keeps a crashed node in its down-set by
        // silencing it from round 0 of each height; rejoining is simply
        // dropping it from the plan at the next height's fresh mesh. Both
        // heights must match the engine under their respective plans.
        let cfg = SimConfig::new(6).seed(4).max_rounds(6);
        let down = FaultPlan::new().crash(NodeId(2), 0, DeliveryFilter::DropAll);
        let sim_down = run(&cfg, chatter, &mut ScriptedCrash::new(down.clone()));
        let net_down = run_over_channel_at_height(
            &cfg,
            2,
            chatter,
            &mut ScriptedCrash::new(down),
            RECV_TIMEOUT,
            5,
        );
        assert_matches_engine(&cfg, &net_down, &sim_down);
        assert_eq!(net_down.run.survivor_count(), 5);

        let sim_up = run(&cfg, chatter, &mut NoFaults);
        let net_up = run_over_channel_at_height(&cfg, 2, chatter, &mut NoFaults, RECV_TIMEOUT, 6);
        assert_matches_engine(&cfg, &net_up, &sim_up);
        assert_eq!(net_up.run.survivor_count(), 6);
    }

    /// Kernel-reported thread count for this process, from
    /// `/proc/self/status` (hence Linux-only).
    #[cfg(target_os = "linux")]
    fn thread_count() -> usize {
        std::fs::read_to_string("/proc/self/status")
            .unwrap()
            .lines()
            .find_map(|l| l.strip_prefix("Threads:"))
            .expect("Threads: line in /proc/self/status")
            .trim()
            .parse()
            .unwrap()
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn tcp_reader_threads_do_not_accumulate_across_heights() {
        // 100 heights over TCP spawn 100 · n·(n-1) = 1200 reader threads;
        // with deterministic joins in teardown the process thread count
        // stays flat. The slack absorbs unrelated test threads churning in
        // parallel — it is two orders of magnitude below the leak this
        // guards against.
        let cfg = SimConfig::new(4).seed(1).max_rounds(6);
        let _ = run_over_tcp_at_height(&cfg, 2, chatter, &mut NoFaults, RECV_TIMEOUT, 0).unwrap();
        let baseline = thread_count();
        for height in 1..=100 {
            let _ = run_over_tcp_at_height(&cfg, 2, chatter, &mut NoFaults, RECV_TIMEOUT, height)
                .unwrap();
        }
        let after = thread_count();
        assert!(
            after <= baseline + 32,
            "reader threads accumulated across heights: {baseline} -> {after}"
        );
    }

    #[test]
    #[should_panic(expected = "one endpoint per node")]
    fn endpoint_count_must_match_network_size() {
        let cfg = SimConfig::new(4).seed(0);
        let endpoints = crate::channel::mesh(3);
        let _ = run_over(&cfg, 1, chatter, &mut NoFaults, endpoints);
    }
}
