//! Socket-level fault injection: the `FaultyWire` layer.
//!
//! The model's adversary ([`ftc_sim::adversary`]) crashes nodes and drops
//! crash-round messages — faults the engine can express. Real wires
//! misbehave in ways the engine cannot: frames arrive out of order, get
//! duplicated by retransmission layers, are torn into arbitrary
//! read-sized fragments, or are simply late. This module scripts exactly
//! those behaviours as a seeded, deterministic [`WireFaultPlan`] that the
//! transport *adapters* (the channel/TCP synchronizer and the `ftc-mesh`
//! runtime) apply between the sans-I/O cores and the sockets. The cores
//! themselves are never touched — injection is an adapter concern, the
//! same boundary that keeps all runtimes bit-identical.
//!
//! Every fault kind in this v1 plan is **delivery-preserving**: each
//! original frame still reaches its destination exactly once, in time for
//! its round. Reordering is absorbed by the core's canonical `(src, seq)`
//! sort at `end_round`; duplicates are dropped by receive-edge dedup
//! ([`FrameDedup`]) before they can falsely complete a round; torn writes
//! are reassembled by the incremental decoders; delays hide behind the
//! round barrier. That is a theorem about the stack, and the hunt
//! (`ftc hunt --wire-faults`) turns it into a checked property: any wire
//! schedule that changes an observation is a runtime bug, and the
//! counterexample replays on every substrate.
//!
//! The same property pins down the engine degradation
//! ([`WireFaultPlan::degrade`]): the nearest engine-expressible
//! [`FaultPlan`] for a delivery-preserving wire schedule is the *empty*
//! plan, and the per-entry residue strings document exactly which
//! mechanism absorbs each fault. Lossy wire faults (true frame drops)
//! would degrade to crash entries instead; they are deliberately out of
//! scope here because a dropped frame without a crash deadlocks the
//! lock-step round protocol by design (a torn socket outside the crash
//! schedule is a bug, not a model event).

use std::collections::HashSet;
use std::io::{self, Write};
use std::time::Duration;

use ftc_sim::adversary::FaultPlan;
use ftc_sim::ids::{NodeId, Round};
use ftc_sim::json::{Json, JsonError};

use crate::frame::Frame;

/// One kind of wire misbehaviour, applied to a node's transmit burst for
/// one round.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireFaultKind {
    /// Shuffle the burst's frame order deterministically (seeded).
    Reorder,
    /// Transmit every frame of the burst twice.
    Duplicate,
    /// Tear the node's coalesced writes into fragments of at most `chunk`
    /// bytes (multiplexed runtimes only; per-frame transports send whole
    /// frames and absorb this trivially).
    Tear {
        /// Largest write the wire will accept, in bytes (clamped to ≥ 1).
        chunk: usize,
    },
    /// Hold the burst back for this long before transmitting (wall-clock
    /// only — the round barrier makes it model-invisible).
    Delay {
        /// Delay in microseconds.
        micros: u64,
    },
}

impl WireFaultKind {
    /// The JSON/CLI tag.
    pub fn name(&self) -> &'static str {
        match self {
            WireFaultKind::Reorder => "reorder",
            WireFaultKind::Duplicate => "duplicate",
            WireFaultKind::Tear { .. } => "tear",
            WireFaultKind::Delay { .. } => "delay",
        }
    }

    /// Which stack mechanism absorbs this fault (the degradation residue).
    fn absorbed_by(&self) -> &'static str {
        match self {
            WireFaultKind::Reorder => "the core's canonical (src, seq) sort at end_round",
            WireFaultKind::Duplicate => "receive-edge frame dedup in the adapter",
            WireFaultKind::Tear { .. } => "incremental frame/envelope reassembly",
            WireFaultKind::Delay { .. } => "the lock-step round barrier (wall-clock only)",
        }
    }
}

/// A scripted wire fault: `kind` hits `node`'s transmit burst at `round`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireFaultEntry {
    /// The sending node whose burst is perturbed.
    pub node: NodeId,
    /// The round whose burst is perturbed.
    pub round: Round,
    /// What happens to the burst.
    pub kind: WireFaultKind,
}

/// A deterministic, seeded schedule of socket-level faults.
///
/// The plan is pure data — the searchable/replayable unit the hunt
/// manipulates, exactly as [`FaultPlan`] is for model-level crashes. The
/// `seed` feeds the reorder shuffle so the same plan perturbs the same
/// burst the same way on every run and substrate.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WireFaultPlan {
    /// Seed for the deterministic shuffle.
    pub seed: u64,
    entries: Vec<WireFaultEntry>,
}

/// SplitMix64: one deterministic draw per call, robust to any seed.
fn splitmix(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl WireFaultPlan {
    /// An empty plan (a faultless wire) shuffling under `seed`.
    pub fn new(seed: u64) -> Self {
        WireFaultPlan {
            seed,
            entries: Vec::new(),
        }
    }

    /// Adds one fault; returns `self` for chaining.
    pub fn fault(mut self, node: NodeId, round: Round, kind: WireFaultKind) -> Self {
        self.entries.push(WireFaultEntry { node, round, kind });
        self
    }

    /// Builds a plan from explicit entries (the mutation entry point).
    pub fn from_entries(seed: u64, entries: Vec<WireFaultEntry>) -> Self {
        WireFaultPlan { seed, entries }
    }

    /// The scheduled faults, in insertion order.
    pub fn entries(&self) -> &[WireFaultEntry] {
        &self.entries
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the wire is faultless.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn kinds_for<'a>(
        &'a self,
        node: NodeId,
        round: Round,
    ) -> impl Iterator<Item = &'a WireFaultKind> + 'a {
        self.entries
            .iter()
            .filter(move |e| e.node == node && e.round == round)
            .map(|e| &e.kind)
    }

    /// Perturbs `node`'s transmit burst for `round` in place: applies any
    /// scheduled reorder (a seeded deterministic shuffle), then any
    /// scheduled duplication (every frame appended a second time, *after*
    /// the shuffle). Returns the number of appended duplicate frames —
    /// the suffix the adapter must transmit but **not** charge to
    /// `wire_bytes`/`frames_sent`, so model accounting stays identical to
    /// a faultless wire.
    pub fn perturb_batch(
        &self,
        node: NodeId,
        round: Round,
        batch: &mut Vec<(NodeId, Frame)>,
    ) -> usize {
        if batch.is_empty() {
            return 0;
        }
        let mut reorder = false;
        let mut duplicate = false;
        for kind in self.kinds_for(node, round) {
            match kind {
                WireFaultKind::Reorder => reorder = true,
                WireFaultKind::Duplicate => duplicate = true,
                _ => {}
            }
        }
        if reorder {
            let mut s = self
                .seed
                .wrapping_add(u64::from(node.0) << 32)
                .wrapping_add(u64::from(round));
            // Fisher–Yates with splitmix draws: deterministic in
            // (seed, node, round), independent of substrate.
            for i in (1..batch.len()).rev() {
                let j = (splitmix(&mut s) % (i as u64 + 1)) as usize;
                batch.swap(i, j);
            }
        }
        if duplicate {
            let originals = batch.len();
            for k in 0..originals {
                let dup = batch[k].clone();
                batch.push(dup);
            }
            originals
        } else {
            0
        }
    }

    /// The tear fragment size scheduled for `node`'s burst at `round`, if
    /// any (clamped to ≥ 1; the smallest wins when several are scheduled).
    pub fn tear_chunk(&self, node: NodeId, round: Round) -> Option<usize> {
        self.kinds_for(node, round)
            .filter_map(|k| match k {
                WireFaultKind::Tear { chunk } => Some((*chunk).max(1)),
                _ => None,
            })
            .min()
    }

    /// The transmit delay scheduled for `node`'s burst at `round`, if any
    /// (summed when several are scheduled).
    pub fn delay(&self, node: NodeId, round: Round) -> Option<Duration> {
        let micros: u64 = self
            .kinds_for(node, round)
            .filter_map(|k| match k {
                WireFaultKind::Delay { micros } => Some(*micros),
                _ => None,
            })
            .sum();
        (micros > 0).then(|| Duration::from_micros(micros))
    }

    /// Degrades the wire plan to the nearest engine-expressible
    /// [`FaultPlan`], reporting the gap.
    ///
    /// Every v1 wire fault is delivery-preserving, so the nearest engine
    /// equivalent is the **empty** crash plan — the engine run that
    /// matches a wire-faulted cluster run is the unfaulted one. The
    /// returned residue strings document, per entry, which stack
    /// mechanism absorbs the fault; they are the "exact
    /// engine-inexpressible residue" a committed wire counterexample
    /// carries.
    pub fn degrade(&self) -> (FaultPlan, Vec<String>) {
        let residue = self
            .entries
            .iter()
            .map(|e| {
                format!(
                    "node {} round {}: {} absorbed by {}",
                    e.node.0,
                    e.round,
                    e.kind.name(),
                    e.kind.absorbed_by()
                )
            })
            .collect();
        (FaultPlan::new(), residue)
    }

    /// JSON encoding (compact, deterministic key order).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("seed".into(), Json::UInt(self.seed)),
            (
                "entries".into(),
                Json::Arr(
                    self.entries
                        .iter()
                        .map(|e| {
                            let mut fields = vec![
                                ("node".into(), Json::UInt(u64::from(e.node.0))),
                                ("round".into(), Json::UInt(u64::from(e.round))),
                                ("kind".into(), Json::Str(e.kind.name().into())),
                            ];
                            match &e.kind {
                                WireFaultKind::Tear { chunk } => {
                                    fields.push(("chunk".into(), Json::UInt(*chunk as u64)));
                                }
                                WireFaultKind::Delay { micros } => {
                                    fields.push(("micros".into(), Json::UInt(*micros)));
                                }
                                _ => {}
                            }
                            Json::Obj(fields)
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Decodes a plan from its [`WireFaultPlan::to_json`] form.
    pub fn from_json(v: &Json) -> Result<Self, JsonError> {
        let seed = v.field("seed")?.as_u64()?;
        let entries = v
            .field("entries")?
            .as_arr()?
            .iter()
            .map(|e| {
                let kind = match e.field("kind")?.as_str()? {
                    "reorder" => WireFaultKind::Reorder,
                    "duplicate" => WireFaultKind::Duplicate,
                    "tear" => WireFaultKind::Tear {
                        chunk: e.field("chunk")?.as_u64()? as usize,
                    },
                    "delay" => WireFaultKind::Delay {
                        micros: e.field("micros")?.as_u64()?,
                    },
                    other => {
                        return Err(JsonError {
                            message: format!("unknown wire fault kind {other}"),
                        })
                    }
                };
                Ok(WireFaultEntry {
                    node: NodeId(e.field("node")?.as_u64()? as u32),
                    round: e.field("round")?.as_u64()? as u32,
                    kind,
                })
            })
            .collect::<Result<Vec<_>, JsonError>>()?;
        Ok(WireFaultPlan { seed, entries })
    }
}

/// Receive-edge frame dedup, keyed by the frame identity `(height, round,
/// src, seq)` — exactly the tuple the cores sort deliveries by, so two
/// frames with equal keys are the same model message.
///
/// Adapters consult `admit` before feeding a frame into a [`RoundCore`]
/// whenever a wire plan is active: a duplicated frame would otherwise
/// falsely satisfy the core's `ready()` frame count for the round (and a
/// late duplicate drained in a later round would be rejected as a
/// past-round protocol violation). The set is kept for the whole run —
/// duplicates may legitimately straggle across the round boundary.
///
/// [`RoundCore`]: crate::core::RoundCore
#[derive(Debug, Default)]
pub struct FrameDedup {
    seen: HashSet<(u32, Round, u32, u32)>,
}

impl FrameDedup {
    /// An empty dedup set.
    pub fn new() -> Self {
        FrameDedup::default()
    }

    /// Whether `frame` is the first of its identity — feed it iff `true`.
    pub fn admit(&mut self, frame: &Frame) -> bool {
        self.seen
            .insert((frame.height, frame.round, frame.src.0, frame.seq))
    }
}

/// A [`Write`] adapter that tears every write into fragments of at most
/// `chunk` bytes — the torn-frame injector for coalescing runtimes.
///
/// Callers that loop until their buffer drains (e.g. `WriteBuf` in
/// `ftc-mesh`) still deliver every byte; the receiving decoder just sees
/// the worst fragmentation the schedule asks for.
#[derive(Debug)]
pub struct ChunkedWriter<'a, W: Write> {
    inner: &'a mut W,
    chunk: usize,
}

impl<'a, W: Write> ChunkedWriter<'a, W> {
    /// Wraps `inner`, capping each write at `chunk` bytes (≥ 1).
    pub fn new(inner: &'a mut W, chunk: usize) -> Self {
        ChunkedWriter {
            inner,
            chunk: chunk.max(1),
        }
    }
}

impl<W: Write> Write for ChunkedWriter<'_, W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let cap = buf.len().min(self.chunk);
        self.inner.write(&buf[..cap])
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(round: u32, src: u32, seq: u32) -> (NodeId, Frame) {
        (
            NodeId(90 + seq),
            Frame {
                height: 0,
                round,
                src: NodeId(src),
                seq,
                payload: vec![seq as u8; 3],
            },
        )
    }

    #[test]
    fn reorder_is_a_seeded_permutation() {
        let plan = WireFaultPlan::new(7).fault(NodeId(1), 2, WireFaultKind::Reorder);
        let original: Vec<_> = (0..6).map(|s| frame(2, 1, s)).collect();
        let mut a = original.clone();
        let mut b = original.clone();
        assert_eq!(plan.perturb_batch(NodeId(1), 2, &mut a), 0);
        assert_eq!(plan.perturb_batch(NodeId(1), 2, &mut b), 0);
        assert_eq!(a, b, "same (seed, node, round) must shuffle identically");
        assert_ne!(a, original, "6 frames under seed 7 must actually move");
        let mut sorted = a.clone();
        sorted.sort_by_key(|(_, f)| f.seq);
        assert_eq!(sorted, original, "a permutation, nothing lost");
        // A different round is untouched.
        let mut other = original.clone();
        assert_eq!(plan.perturb_batch(NodeId(1), 3, &mut other), 0);
        assert_eq!(other, original);
    }

    #[test]
    fn duplicate_appends_uncharged_copies_after_the_shuffle() {
        let plan = WireFaultPlan::new(1)
            .fault(NodeId(0), 0, WireFaultKind::Reorder)
            .fault(NodeId(0), 0, WireFaultKind::Duplicate);
        let mut batch: Vec<_> = (0..4).map(|s| frame(0, 0, s)).collect();
        let dups = plan.perturb_batch(NodeId(0), 0, &mut batch);
        assert_eq!(dups, 4);
        assert_eq!(batch.len(), 8);
        assert_eq!(
            &batch[..4],
            &batch[4..],
            "the suffix mirrors the shuffled prefix"
        );
    }

    #[test]
    fn tear_and_delay_lookups_pick_the_scheduled_entry() {
        let plan = WireFaultPlan::new(0)
            .fault(NodeId(3), 1, WireFaultKind::Tear { chunk: 0 })
            .fault(NodeId(3), 1, WireFaultKind::Tear { chunk: 5 })
            .fault(NodeId(3), 1, WireFaultKind::Delay { micros: 40 })
            .fault(NodeId(3), 1, WireFaultKind::Delay { micros: 2 });
        assert_eq!(plan.tear_chunk(NodeId(3), 1), Some(1), "chunk clamps to 1");
        assert_eq!(plan.delay(NodeId(3), 1), Some(Duration::from_micros(42)));
        assert_eq!(plan.tear_chunk(NodeId(3), 0), None);
        assert_eq!(plan.delay(NodeId(2), 1), None);
    }

    #[test]
    fn plan_round_trips_through_json() {
        let plan = WireFaultPlan::new(0xDEAD)
            .fault(NodeId(1), 0, WireFaultKind::Reorder)
            .fault(NodeId(2), 3, WireFaultKind::Duplicate)
            .fault(NodeId(3), 1, WireFaultKind::Tear { chunk: 7 })
            .fault(NodeId(4), 2, WireFaultKind::Delay { micros: 100 });
        let text = plan.to_json().render();
        let back = WireFaultPlan::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, plan);
        assert_eq!(back.to_json().render(), text, "deterministic rendering");
    }

    #[test]
    fn degrade_reports_the_empty_plan_plus_residue() {
        let plan = WireFaultPlan::new(9)
            .fault(NodeId(5), 2, WireFaultKind::Duplicate)
            .fault(NodeId(6), 0, WireFaultKind::Tear { chunk: 3 });
        let (engine, residue) = plan.degrade();
        assert!(engine.is_empty(), "delivery-preserving ⇒ no engine fault");
        assert_eq!(residue.len(), 2);
        assert!(residue[0].contains("node 5 round 2: duplicate absorbed by"));
        assert!(residue[1].contains("tear absorbed by"));
    }

    #[test]
    fn dedup_admits_each_identity_once() {
        let mut d = FrameDedup::new();
        let (_, f) = frame(1, 2, 3);
        assert!(d.admit(&f));
        assert!(!d.admit(&f.clone()), "the duplicate is rejected");
        let (_, g) = frame(1, 2, 4);
        assert!(d.admit(&g), "a distinct seq is a distinct message");
    }

    #[test]
    fn chunked_writer_fragments_every_write() {
        let mut sink = Vec::new();
        let mut w = ChunkedWriter::new(&mut sink, 3);
        let mut written = 0;
        while written < 10 {
            written += w.write(&[7u8; 10][written..]).unwrap();
        }
        assert_eq!(sink, vec![7u8; 10]);
    }
}
