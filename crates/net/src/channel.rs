//! The in-process channel transport.
//!
//! Every node owns an `mpsc` receiver; a single shared registry of senders
//! (one `Arc`, `O(n)` memory — not a per-pair matrix) lets any node push a
//! frame to any other. Frames are moved, not serialised, but byte
//! accounting still charges the exact [`Frame::encoded_len`] a socket
//! transport would pay, so channel runs and TCP runs report the same
//! `wire_bytes`.
//!
//! This transport is the fast, dependency-free way to exercise the full
//! network stack (frames, round reassembly, crash teardown) in tests, and
//! scales to thousands of nodes where TCP would drown in sockets.

use std::io;
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::Duration;

use ftc_sim::ids::NodeId;

use crate::frame::Frame;
use crate::transport::{Endpoint, RECV_TIMEOUT};

/// One node's attachment to the in-process channel mesh.
#[derive(Debug)]
pub struct ChannelEndpoint {
    node: NodeId,
    peers: Arc<Vec<Sender<Frame>>>,
    rx: Receiver<Frame>,
    timeout: Duration,
    torn: bool,
}

/// Builds a fully-connected `n`-node channel mesh with the default
/// [`RECV_TIMEOUT`], returning the endpoints in node-id order.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn mesh(n: u32) -> Vec<ChannelEndpoint> {
    mesh_with_timeout(n, RECV_TIMEOUT)
}

/// Like [`mesh`], but every endpoint's `recv` gives up after
/// `recv_timeout` instead of the default [`RECV_TIMEOUT`].
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn mesh_with_timeout(n: u32, recv_timeout: Duration) -> Vec<ChannelEndpoint> {
    assert!(n >= 2, "a complete network needs at least two nodes");
    let mut txs = Vec::with_capacity(n as usize);
    let mut rxs = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let (tx, rx) = channel();
        txs.push(tx);
        rxs.push(rx);
    }
    let peers = Arc::new(txs);
    rxs.into_iter()
        .enumerate()
        .map(|(i, rx)| ChannelEndpoint {
            node: NodeId(i as u32),
            peers: Arc::clone(&peers),
            rx,
            timeout: recv_timeout,
            torn: false,
        })
        .collect()
}

impl Endpoint for ChannelEndpoint {
    fn node(&self) -> NodeId {
        self.node
    }

    fn send(&mut self, dst: NodeId, frame: &Frame) -> io::Result<u64> {
        if self.torn {
            return Err(io::Error::new(
                io::ErrorKind::NotConnected,
                "endpoint torn down",
            ));
        }
        let tx = self.peers.get(dst.index()).ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, format!("no such node {dst}"))
        })?;
        // A receiver that already dropped its endpoint is indistinguishable
        // from a crashed peer; the bytes still count as sent.
        let _ = tx.send(frame.clone());
        Ok(frame.encoded_len())
    }

    fn recv(&mut self) -> io::Result<Frame> {
        if self.torn {
            return Err(io::Error::new(
                io::ErrorKind::NotConnected,
                "endpoint torn down",
            ));
        }
        self.rx.recv_timeout(self.timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => io::Error::new(
                io::ErrorKind::TimedOut,
                format!("node {} waited {:?} for a frame", self.node, self.timeout),
            ),
            RecvTimeoutError::Disconnected => {
                io::Error::new(io::ErrorKind::ConnectionAborted, "all peers gone")
            }
        })
    }

    fn teardown(&mut self) {
        self.torn = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(src: u32, seq: u32, payload: &[u8]) -> Frame {
        Frame {
            height: 0,
            round: 0,
            src: NodeId(src),
            seq,
            payload: payload.to_vec(),
        }
    }

    #[test]
    fn frames_reach_their_destination() {
        let mut eps = mesh(3);
        let f = frame(0, 0, b"hi");
        let bytes = eps[0].send(NodeId(2), &f).unwrap();
        assert_eq!(bytes, f.encoded_len());
        assert_eq!(eps[2].recv().unwrap(), f);
    }

    #[test]
    fn teardown_cuts_both_directions() {
        let mut eps = mesh(2);
        eps[0].teardown();
        assert!(eps[0].send(NodeId(1), &frame(0, 0, b"")).is_err());
        assert!(eps[0].recv().is_err());
        // The surviving side can still (pointlessly but harmlessly) send
        // towards the dead node — the bytes vanish, like a real socket
        // whose peer halted.
        assert!(eps[1].send(NodeId(0), &frame(1, 0, b"")).is_ok());
        eps[0].teardown(); // idempotent
    }

    #[test]
    fn custom_recv_timeout_fires_quickly() {
        let mut eps = mesh_with_timeout(2, Duration::from_millis(10));
        let start = std::time::Instant::now();
        let err = eps[1].recv().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        assert!(err.to_string().contains("10ms"), "{err}");
        // Well under the 60 s default — the configured timeout is in force.
        assert!(start.elapsed() < Duration::from_secs(10));
    }

    #[test]
    fn out_of_range_destination_is_rejected() {
        let mut eps = mesh(2);
        assert_eq!(
            eps[0]
                .send(NodeId(9), &frame(0, 0, b""))
                .unwrap_err()
                .kind(),
            io::ErrorKind::InvalidInput
        );
    }
}
