//! The localhost TCP transport: real sockets, real bytes.
//!
//! [`mesh_on`] builds a mesh of TCP connections over `127.0.0.1` — one
//! bidirectional connection per undirected edge of the run's topology
//! ([`EdgeSet`]), so a sparse graph opens exactly its own links;
//! [`mesh`] is the complete-graph special case. Each endpoint spawns one
//! reader thread per open link; readers decode length-prefixed [`Frame`]s
//! and funnel them into the endpoint's intake queue, so the owning node
//! sees a single merged stream (per-link FIFO preserved, which is all the
//! synchronizer needs).
//!
//! Crash teardown calls `shutdown` on every link of the crashed node: bytes
//! already written are still delivered (TCP flushes queued data before the
//! FIN), after which every peer's reader observes a clean EOF and exits —
//! precisely the partial-delivery semantics of the model's crash filters.
//!
//! The receiving side of a crash is graceful; the *sending* side needs
//! care. A live node may write to a peer that crashed in the same round
//! (the coordinator filters what the dead node *receives*, not what
//! others send toward it), and depending on how far the RST has
//! propagated that write nondeterministically succeeds or fails with
//! `EPIPE`/`ECONNRESET`. Both outcomes mean the same thing in the model —
//! the message was sent and will never be read — so [`Endpoint::send`]
//! maps peer-death write errors to success with the frame's full wire
//! bytes charged, exactly the accounting the channel transport and the
//! engine produce. Only a send from a node that itself tore down errors.
//!
//! Mesh setup is sequential and hello-tagged: node `u` dials node `v` for
//! every `u < v`, writes its 4-byte id, and the listener side reads the id
//! to label the accepted socket. `TCP_NODELAY` is set everywhere; with one
//! `write_all` per frame this keeps round latency at a localhost RTT
//! instead of Nagle's 40 ms.

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::thread;
use std::time::Duration;

use ftc_sim::ids::NodeId;
use ftc_sim::topology::{EdgeSet, Topology};

use crate::frame::Frame;
use crate::transport::{Endpoint, RECV_TIMEOUT};

/// Upper bound on TCP cluster size. A full mesh costs `n·(n-1)/2` sockets
/// and `n·(n-1)` reader threads; past this the experiment belongs on the
/// channel transport (identical semantics, no kernel involvement).
pub const MAX_TCP_NODES: u32 = 64;

/// One node's attachment to the localhost TCP mesh.
#[derive(Debug)]
pub struct TcpEndpoint {
    node: NodeId,
    /// Write halves, indexed by peer id (`None` for self and torn links).
    writers: Vec<Option<TcpStream>>,
    rx: Receiver<Frame>,
    timeout: Duration,
    /// The reader threads draining this node's links. Each reads from a
    /// clone of one of this node's own sockets, so `teardown`'s
    /// `Shutdown::Both` unblocks them and they can be joined right there —
    /// a long-lived service cycling through meshes (one per election
    /// height) must not accumulate orphaned readers.
    readers: Vec<thread::JoinHandle<()>>,
    /// This endpoint itself tore down (crashed): every later send errors.
    torn: bool,
    /// Peers whose link died under a write (the RST from a crashed peer's
    /// shutdown): later sends to them charge wire bytes and vanish, the
    /// model's partial-delivery semantics.
    dead_peers: Vec<bool>,
}

/// Write errors that mean "the peer is gone", not "the transport broke".
fn is_peer_death(kind: io::ErrorKind) -> bool {
    matches!(
        kind,
        io::ErrorKind::BrokenPipe
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
    )
}

/// Builds a fully-connected `n`-node localhost TCP mesh with the default
/// [`RECV_TIMEOUT`], returning the endpoints in node-id order.
///
/// Fails with [`io::ErrorKind::InvalidInput`] if `n < 2` or
/// `n > `[`MAX_TCP_NODES`], and propagates socket errors (bind, connect,
/// handshake) otherwise.
pub fn mesh(n: u32) -> io::Result<Vec<TcpEndpoint>> {
    mesh_with_timeout(n, RECV_TIMEOUT)
}

/// Like [`mesh`], but every endpoint's `recv` gives up after
/// `recv_timeout` instead of the default [`RECV_TIMEOUT`].
pub fn mesh_with_timeout(n: u32, recv_timeout: Duration) -> io::Result<Vec<TcpEndpoint>> {
    mesh_on(&Topology::Complete.edge_set(n, 0), recv_timeout)
}

/// Builds the TCP mesh of exactly the links in `edges` — the
/// topology-aware constructor: a sparse graph pays sockets and reader
/// threads for its own edges, not for `K_n`'s. [`mesh_with_timeout`] is
/// this with the complete edge set.
///
/// A send across a non-edge fails with [`io::ErrorKind::NotConnected`]
/// ("no link to ..."), which is correct: the model can never route a
/// message over an edge the topology does not have, so such a send is a
/// runtime bug, not a network event.
pub fn mesh_on(edges: &EdgeSet, recv_timeout: Duration) -> io::Result<Vec<TcpEndpoint>> {
    let n = edges.n();
    if n < 2 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "a complete network needs at least two nodes",
        ));
    }
    if n > MAX_TCP_NODES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("TCP mesh capped at {MAX_TCP_NODES} nodes (full mesh = O(n²) sockets); use the channel transport for larger networks"),
        ));
    }
    let nn = n as usize;
    let listeners: Vec<TcpListener> = (0..nn)
        .map(|_| TcpListener::bind("127.0.0.1:0"))
        .collect::<io::Result<_>>()?;
    let addrs: Vec<SocketAddr> = listeners
        .iter()
        .map(|l| l.local_addr())
        .collect::<io::Result<_>>()?;

    let mut intake_txs = Vec::with_capacity(nn);
    let mut intake_rxs = Vec::with_capacity(nn);
    for _ in 0..nn {
        let (tx, rx) = channel();
        intake_txs.push(tx);
        intake_rxs.push(rx);
    }
    let mut writers: Vec<Vec<Option<TcpStream>>> =
        (0..nn).map(|_| (0..nn).map(|_| None).collect()).collect();
    let mut readers: Vec<Vec<thread::JoinHandle<()>>> = (0..nn).map(|_| Vec::new()).collect();

    // Dial the upper triangle: u → v for u < v, one connection per
    // *existing* edge, accepting immediately after each dial so no
    // listener backlog builds.
    for v in 1..nn {
        for u in 0..v {
            if !edges.has_edge(u as u32, v as u32) {
                continue;
            }
            let dialed = TcpStream::connect(addrs[v])?;
            dialed.set_nodelay(true)?;
            (&dialed).write_all(&(u as u32).to_le_bytes())?;
            let (accepted, _) = listeners[v].accept()?;
            accepted.set_nodelay(true)?;
            let mut hello = [0u8; 4];
            (&accepted).read_exact(&mut hello)?;
            let who = u32::from_le_bytes(hello) as usize;
            if who != u {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("handshake mismatch: expected node {u}, peer says {who}"),
                ));
            }
            readers[u].push(spawn_reader(dialed.try_clone()?, intake_txs[u].clone()));
            readers[v].push(spawn_reader(accepted.try_clone()?, intake_txs[v].clone()));
            writers[u][v] = Some(dialed);
            writers[v][u] = Some(accepted);
        }
    }

    Ok(writers
        .into_iter()
        .zip(intake_rxs)
        .zip(readers)
        .enumerate()
        .map(|(i, ((writers, rx), readers))| TcpEndpoint {
            node: NodeId(i as u32),
            writers,
            rx,
            timeout: recv_timeout,
            readers,
            torn: false,
            dead_peers: vec![false; nn],
        })
        .collect())
}

/// Drains one link into the owning endpoint's intake queue until the peer
/// closes it (EOF), the stream errors, or the endpoint is torn down.
///
/// Returns the thread's handle; the owning endpoint keeps it and joins it
/// during teardown (its `Shutdown::Both` on the shared socket is what makes
/// the blocked `read` return), so reader threads exit deterministically
/// instead of lingering until process exit.
fn spawn_reader(stream: TcpStream, tx: Sender<Frame>) -> thread::JoinHandle<()> {
    thread::spawn(move || {
        let mut stream = io::BufReader::new(stream);
        while let Ok(Some(frame)) = Frame::read_from(&mut stream) {
            if tx.send(frame).is_err() {
                break;
            }
        }
    })
}

impl Endpoint for TcpEndpoint {
    fn node(&self) -> NodeId {
        self.node
    }

    fn send(&mut self, dst: NodeId, frame: &Frame) -> io::Result<u64> {
        if self.torn {
            return Err(io::Error::new(
                io::ErrorKind::NotConnected,
                format!("node {} is torn down", self.node),
            ));
        }
        if self.dead_peers.get(dst.index()) == Some(&true) {
            // The link already died under a write: the peer crashed, the
            // message is "sent" in the model's accounting and never read.
            return Ok(frame.encoded_len());
        }
        let stream = self
            .writers
            .get_mut(dst.index())
            .and_then(Option::as_mut)
            .ok_or_else(|| {
                io::Error::new(io::ErrorKind::NotConnected, format!("no link to {dst}"))
            })?;
        match frame.write_to(stream) {
            Ok(bytes) => Ok(bytes),
            Err(e) if is_peer_death(e.kind()) => {
                // The peer's crash teardown raced our write (whether the
                // kernel surfaced it depends on RST timing). Same model
                // meaning either way: charge the bytes, drop the link.
                self.writers[dst.index()] = None;
                self.dead_peers[dst.index()] = true;
                Ok(frame.encoded_len())
            }
            Err(e) => Err(e),
        }
    }

    fn recv(&mut self) -> io::Result<Frame> {
        self.rx.recv_timeout(self.timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => io::Error::new(
                io::ErrorKind::TimedOut,
                format!("node {} waited {:?} for a frame", self.node, self.timeout),
            ),
            RecvTimeoutError::Disconnected => {
                io::Error::new(io::ErrorKind::ConnectionAborted, "all links closed")
            }
        })
    }

    fn teardown(&mut self) {
        self.torn = true;
        for link in self.writers.iter_mut() {
            if let Some(stream) = link.take() {
                let _ = stream.shutdown(Shutdown::Both);
            }
        }
        // The shutdowns above hit the same sockets the readers block on
        // (writer and reader share one stream via `try_clone`), so every
        // reader is now unblocked and exits; joining here makes teardown a
        // barrier after which this endpoint owns zero threads. Draining
        // keeps the call idempotent.
        for reader in self.readers.drain(..) {
            let _ = reader.join();
        }
    }
}

impl Drop for TcpEndpoint {
    fn drop(&mut self) {
        // Closing the links lets every peer's reader thread observe EOF and
        // exit instead of lingering on a half-open socket.
        self.teardown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(round: u32, src: u32, seq: u32, payload: &[u8]) -> Frame {
        Frame {
            height: 0,
            round,
            src: NodeId(src),
            seq,
            payload: payload.to_vec(),
        }
    }

    #[test]
    fn mesh_moves_real_bytes_between_nodes() {
        let mut eps = mesh(4).unwrap();
        let f = frame(0, 0, 0, b"over the wire");
        let bytes = eps[0].send(NodeId(3), &f).unwrap();
        assert_eq!(bytes, f.encoded_len());
        assert_eq!(eps[3].recv().unwrap(), f);
        // And the reverse direction of the same edge.
        let g = frame(0, 3, 0, b"and back");
        eps[3].send(NodeId(0), &g).unwrap();
        assert_eq!(eps[0].recv().unwrap(), g);
    }

    #[test]
    fn in_flight_frames_survive_teardown() {
        let mut eps = mesh(2).unwrap();
        let f = frame(0, 0, 0, b"last words");
        eps[0].send(NodeId(1), &f).unwrap();
        eps[0].teardown();
        // TCP delivers written bytes before the FIN: the receiver still
        // gets the frame the crashed node sent on its way down.
        assert_eq!(eps[1].recv().unwrap(), f);
        // After the crash the link is gone from the crashed side.
        assert!(eps[0].send(NodeId(1), &f).is_err());
    }

    #[test]
    fn writes_to_a_crashed_peer_vanish_instead_of_erroring() {
        let mut eps = mesh_with_timeout(3, Duration::from_millis(200)).unwrap();
        // Pre-crash traffic lands: frames written before the teardown are
        // delivered (TCP flushes ahead of the FIN).
        let pre = frame(0, 1, 0, b"lands");
        eps[1].send(NodeId(0), &pre).unwrap();
        assert_eq!(eps[0].recv().unwrap(), pre);
        eps[0].teardown();
        // Post-crash traffic vanishes without error. Depending on RST
        // propagation the kernel may accept the first writes and fail the
        // later ones with EPIPE/ECONNRESET — the endpoint maps both
        // outcomes to a successful send charging exactly the frame's wire
        // bytes, which is what the engine's accounting says.
        let f = frame(1, 1, 0, b"into the void");
        for _ in 0..64 {
            assert_eq!(eps[1].send(NodeId(0), &f).unwrap(), f.encoded_len());
            std::thread::sleep(Duration::from_millis(1));
        }
        // The surviving edge 1–2 is untouched by node 0's crash.
        let g = frame(1, 1, 1, b"still alive");
        eps[1].send(NodeId(2), &g).unwrap();
        assert_eq!(eps[2].recv().unwrap(), g);
        // And the crashed node itself still cannot send.
        assert!(eps[0].send(NodeId(2), &g).is_err());
    }

    #[test]
    fn custom_recv_timeout_fires_quickly() {
        let mut eps = mesh_with_timeout(2, Duration::from_millis(10)).unwrap();
        let err = eps[0].recv().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        assert!(err.to_string().contains("10ms"), "{err}");
    }

    #[test]
    fn teardown_joins_every_reader_thread() {
        let mut eps = mesh(4).unwrap();
        // One reader per link: each node drains its n-1 edges.
        assert!(eps.iter().all(|ep| ep.readers.len() == 3));
        eps[0].teardown();
        // The joins completed (or teardown would still be blocked), so the
        // handles are gone and a second teardown has nothing left to do.
        assert!(eps[0].readers.is_empty());
        eps[0].teardown();
        // Peers tearing down afterwards join their own readers the same
        // way, even though node 0's half of the shared edges is gone.
        for ep in eps.iter_mut().skip(1) {
            ep.teardown();
            assert!(ep.readers.is_empty());
        }
    }

    #[test]
    fn sparse_mesh_opens_only_the_topology_links() {
        // The 4-node path 0–1–2–3: each endpoint gets one reader per
        // incident edge, real edges move frames, and a send across a
        // non-edge is a loud NotConnected — never a silent drop.
        let path = Topology::Explicit {
            adjacency: std::sync::Arc::new(vec![vec![1], vec![0, 2], vec![1, 3], vec![2]]),
        };
        let mut eps = mesh_on(&path.edge_set(4, 0), RECV_TIMEOUT).unwrap();
        let degrees: Vec<usize> = eps.iter().map(|ep| ep.readers.len()).collect();
        assert_eq!(degrees, [1, 2, 2, 1]);
        let f = frame(0, 1, 0, b"along the path");
        eps[1].send(NodeId(2), &f).unwrap();
        assert_eq!(eps[2].recv().unwrap(), f);
        let err = eps[0].send(NodeId(3), &f).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotConnected);
        assert!(err.to_string().contains("no link to"), "{err}");
    }

    #[test]
    fn size_limits_are_enforced() {
        assert_eq!(mesh(1).unwrap_err().kind(), io::ErrorKind::InvalidInput);
        assert_eq!(
            mesh(MAX_TCP_NODES + 1).unwrap_err().kind(),
            io::ErrorKind::InvalidInput
        );
    }
}
