//! Message-budget sweeps: empirical witnesses of the lower bound.
//!
//! Theorems 4.2 / 5.2 say any algorithm succeeding with constant
//! probability must spend `Ω(√n/α^{3/2})` messages. An impossibility
//! cannot be "run", but its *mechanism* can be observed. We model "an
//! algorithm that sends at most `B` messages" with the engine's per-node
//! send cap ([`ftc_sim::engine::SimConfig::send_cap`]): the paper's own
//! protocols run unchanged, but every node stops transmitting after its
//! budget. As the realised total spend falls towards and below the
//! threshold `√n/α^{3/2}`, the failure probability climbs from ~0 to a
//! constant — and the failures materialise as the proof's split worlds:
//! disjoint influence clouds deciding independently (see
//! [`crate::influence`] and the `lower_bound_probe` example).
//!
//! For agreement the inputs are split 50/50 (the assignment under which a
//! severed committee actually *can* decide both ways); for leader
//! election any budget-starved run can elect zero or multiple leaders.

use ftc_core::agreement::{AgreeNode, AgreeOutcome};
use ftc_core::leader_election::{LeNode, LeOutcome};
use ftc_core::params::Params;
use ftc_sim::prelude::*;

/// One point of a budget sweep.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// Per-node send cap (`None` = unlimited, the paper's own budget).
    pub cap: Option<u32>,
    /// Mean messages actually sent per trial.
    pub mean_messages: f64,
    /// Full distribution of per-trial messages sent (median/p95 feed the
    /// machine-format sweep columns).
    pub messages: Summary,
    /// Mean messages the protocol wanted to send but the budget suppressed.
    pub mean_suppressed: f64,
    /// Spend relative to the lower-bound threshold `√n/α^{3/2}`.
    pub threshold_ratio: f64,
    /// Fraction of trials that violated the problem definition.
    pub failure_rate: f64,
    /// Trials run.
    pub trials: u64,
}

/// Sweeps the agreement protocol across per-node send caps.
///
/// Inputs are split 50/50; faults are `(1−α)·n` eager random crashes.
/// Trials fan out over `jobs` worker threads (`0` = one per core); the
/// points are identical at any value.
pub fn sweep_agreement(
    n: u32,
    alpha: f64,
    caps: &[Option<u32>],
    trials: u64,
    base_seed: u64,
    jobs: usize,
) -> Vec<SweepPoint> {
    let params = Params::new(n, alpha).expect("valid params");
    let threshold = params.lower_bound_threshold();
    let f = params.max_faults();
    caps.iter()
        .map(|&cap| {
            let plan = TrialPlan::new(base_seed ^ cap_salt(cap), trials).jobs(jobs);
            let outcomes = ParRunner::new(plan).run(|_, seed| {
                let mut cfg = SimConfig::new(n)
                    .seed(seed)
                    .max_rounds(params.agreement_round_budget());
                if let Some(c) = cap {
                    cfg = cfg.send_cap(c);
                }
                let mut adv = EagerCrash::new(f);
                let result = run(
                    &cfg,
                    |id| AgreeNode::new(params.clone(), id.0 % 2 == 0),
                    &mut adv,
                );
                let o = AgreeOutcome::evaluate(&result);
                (
                    result.metrics.msgs_sent,
                    result.metrics.msgs_suppressed,
                    o.success,
                )
            });
            summarise(cap, threshold, &outcomes.outcomes)
        })
        .collect()
}

/// Sweeps the leader-election protocol across per-node send caps;
/// `jobs` as in [`sweep_agreement`].
pub fn sweep_leader_election(
    n: u32,
    alpha: f64,
    caps: &[Option<u32>],
    trials: u64,
    base_seed: u64,
    jobs: usize,
) -> Vec<SweepPoint> {
    let params = Params::new(n, alpha).expect("valid params");
    let threshold = params.lower_bound_threshold();
    let f = params.max_faults();
    caps.iter()
        .map(|&cap| {
            let plan = TrialPlan::new(base_seed ^ cap_salt(cap), trials).jobs(jobs);
            let outcomes = ParRunner::new(plan).run(|_, seed| {
                let mut cfg = SimConfig::new(n)
                    .seed(seed)
                    .max_rounds(params.le_round_budget());
                if let Some(c) = cap {
                    cfg = cfg.send_cap(c);
                }
                let mut adv = EagerCrash::new(f);
                let result = run(&cfg, |_| LeNode::new(params.clone()), &mut adv);
                let o = LeOutcome::evaluate(&result);
                (
                    result.metrics.msgs_sent,
                    result.metrics.msgs_suppressed,
                    o.success,
                )
            });
            summarise(cap, threshold, &outcomes.outcomes)
        })
        .collect()
}

fn cap_salt(cap: Option<u32>) -> u64 {
    cap.map_or(u64::MAX, u64::from)
}

fn summarise(
    cap: Option<u32>,
    threshold: f64,
    outcomes: &[TrialOutcome<(u64, u64, bool)>],
) -> SweepPoint {
    let trials = outcomes.len() as u64;
    let messages = Summary::of_iter(outcomes.iter().map(|t| t.value.0 as f64));
    let mean_messages = messages.mean;
    let mean_suppressed =
        outcomes.iter().map(|t| t.value.1 as f64).sum::<f64>() / trials.max(1) as f64;
    let failures = outcomes.iter().filter(|t| !t.value.2).count();
    SweepPoint {
        cap,
        mean_messages,
        messages,
        mean_suppressed,
        threshold_ratio: mean_messages / threshold,
        failure_rate: failures as f64 / trials.max(1) as f64,
        trials,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_budget_rarely_fails_starved_budget_often_fails() {
        let points = sweep_agreement(512, 0.5, &[None, Some(2)], 24, 99, 0);
        let full = &points[0];
        let starved = &points[1];
        assert!(
            full.failure_rate <= 0.1,
            "full budget failed too often: {full:?}"
        );
        assert!(
            starved.failure_rate > full.failure_rate + 0.3,
            "starving did not hurt: {starved:?} vs {full:?}"
        );
        assert!(starved.mean_messages < full.mean_messages);
        assert!(starved.mean_suppressed > 0.0);
        assert_eq!(full.mean_suppressed, 0.0);
    }

    #[test]
    fn sweep_spend_is_monotone_in_cap() {
        let points = sweep_agreement(256, 0.5, &[Some(1), Some(8), None], 8, 5, 0);
        assert!(points[0].mean_messages < points[1].mean_messages);
        assert!(points[1].mean_messages < points[2].mean_messages);
        for p in &points {
            assert!(p.threshold_ratio > 0.0);
        }
    }

    #[test]
    fn le_sweep_runs_and_reports() {
        let points = sweep_leader_election(256, 0.5, &[None], 8, 7, 0);
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].trials, 8);
        assert!(points[0].failure_rate <= 0.25, "{:?}", points[0]);
    }

    #[test]
    fn starved_le_fails_to_elect() {
        let points = sweep_leader_election(256, 0.5, &[Some(1)], 12, 13, 0);
        assert!(points[0].failure_rate >= 0.5, "{:?}", points[0]);
    }
}
