//! Influence clouds over recorded communication graphs.
//!
//! Section IV-B's lower-bound proof is built on three structural objects,
//! all of which this module computes from an execution [`Trace`]:
//!
//! * the **communication graph** `C^r` — an edge `u → v` iff `u` sent `v`
//!   a message in some round `≤ r`;
//! * **initiators** — nodes that send their first message before being
//!   influenced by anyone (paper: "if `u` sends its first message in round
//!   `r`, then `u` ... is an isolated vertex in `C^1..C^{r−1}`");
//! * **influence clouds** `IC^r_u` — for each initiator `u`, the set of
//!   nodes reachable from `u` along *time-respecting* chains of delivered
//!   messages.
//!
//! The proof's pivotal event `N` is that the clouds are pairwise disjoint:
//! a protocol that sends too few messages leaves ≥ 2 disjoint clouds, each
//! equally likely to elect a leader (or to decide an opposing value) —
//! hence the `Ω(√n/α^{3/2})` bound. [`InfluenceAnalysis`] lets experiments
//! observe exactly this structure in real executions.

use std::collections::BTreeSet;

use ftc_sim::ids::{NodeId, Round};
use ftc_sim::trace::Trace;

/// The influence structure of one execution.
#[derive(Clone, Debug)]
pub struct InfluenceAnalysis {
    n: u32,
    /// Initiator nodes in id order.
    pub initiators: Vec<NodeId>,
    /// `cloud_of[v]` = the initiator whose cloud `v` first joined, if any.
    /// Initiators map to themselves. `None` = never influenced.
    pub cloud_of: Vec<Option<NodeId>>,
    /// Whether any node was reachable from two different initiators (the
    /// complement of the proof's disjointness event `N`).
    pub clouds_merged: bool,
}

impl InfluenceAnalysis {
    /// Analyses the delivered-message structure of `trace` up to and
    /// including round `r` (use `u32::MAX` for the whole execution).
    pub fn up_to(trace: &Trace, r: Round) -> Self {
        let n = trace.n();
        let nn = n as usize;

        // First-send and first-receive rounds per node (delivered messages
        // only — a message that never arrived influences nobody, but any
        // *sent* message still marks its sender as active).
        let mut first_send: Vec<Option<Round>> = vec![None; nn];
        let mut first_recv: Vec<Option<Round>> = vec![None; nn];
        for ev in trace.events().iter().filter(|e| e.round <= r) {
            let s = &mut first_send[ev.src.index()];
            if s.is_none_or(|cur| ev.round < cur) {
                *s = Some(ev.round);
            }
            if ev.delivered {
                // Received at the start of round `ev.round + 1`.
                let rcv = &mut first_recv[ev.dst.index()];
                if rcv.is_none_or(|cur| ev.round + 1 < cur) {
                    *rcv = Some(ev.round + 1);
                }
            }
        }

        // Initiators: sent before (or without) ever being influenced.
        let initiators: Vec<NodeId> = (0..nn)
            .filter(|&u| match (first_send[u], first_recv[u]) {
                (Some(s), Some(rcv)) => s < rcv,
                (Some(_), None) => true,
                _ => false,
            })
            .map(NodeId::from)
            .collect();

        // Temporal forward pass: a delivered message extends the sender's
        // cloud to the receiver (at receipt time). `cloud_of` keeps the
        // *first* cloud a node joined; any later cross-cloud delivery
        // marks the clouds as merged.
        let mut cloud_of: Vec<Option<NodeId>> = vec![None; nn];
        for &i in &initiators {
            cloud_of[i.index()] = Some(i);
        }
        let mut clouds_merged = false;
        // Events are recorded in send order, which is time order.
        for ev in trace.events().iter().filter(|e| e.round <= r) {
            if !ev.delivered {
                continue;
            }
            let Some(src_cloud) = cloud_of[ev.src.index()] else {
                continue; // sender not yet influenced: its sends precede
                          // influence only for initiators, handled above
            };
            match cloud_of[ev.dst.index()] {
                None => cloud_of[ev.dst.index()] = Some(src_cloud),
                Some(existing) if existing != src_cloud => clouds_merged = true,
                Some(_) => {}
            }
        }

        InfluenceAnalysis {
            n,
            initiators,
            cloud_of,
            clouds_merged,
        }
    }

    /// Analyses the whole execution.
    pub fn full(trace: &Trace) -> Self {
        Self::up_to(trace, u32::MAX)
    }

    /// Network size.
    pub fn n(&self) -> u32 {
        self.n
    }

    /// Number of initiators.
    pub fn initiator_count(&self) -> usize {
        self.initiators.len()
    }

    /// The members of initiator `u`'s cloud (including `u`).
    pub fn cloud_members(&self, u: NodeId) -> Vec<NodeId> {
        self.cloud_of
            .iter()
            .enumerate()
            .filter(|(_, c)| **c == Some(u))
            .map(|(i, _)| NodeId::from(i))
            .collect()
    }

    /// Sizes of all clouds, keyed by initiator, in id order.
    pub fn cloud_sizes(&self) -> Vec<(NodeId, usize)> {
        self.initiators
            .iter()
            .map(|&u| (u, self.cloud_members(u).len()))
            .collect()
    }

    /// Nodes never influenced by anyone (isolated from all clouds).
    pub fn untouched(&self) -> usize {
        self.cloud_of.iter().filter(|c| c.is_none()).count()
    }

    /// Whether the disjointness event `N` held for this execution (when it
    /// does and there are ≥ 2 clouds, the lower-bound argument applies).
    pub fn event_n(&self) -> bool {
        !self.clouds_merged
    }

    /// Groups a set of *deciding* nodes by cloud: the number of distinct
    /// clouds containing at least one decider (Lemma 9's "deciding trees").
    pub fn deciding_clouds(&self, deciders: &[NodeId]) -> usize {
        let clouds: BTreeSet<NodeId> = deciders
            .iter()
            .filter_map(|d| self.cloud_of[d.index()])
            .collect();
        clouds.len()
    }
}

/// A crash target suggested by influence analysis: a node whose messages
/// shape many other nodes' views, paired with the round in which crashing
/// it first bites (its first send round) and a ranking weight.
///
/// This is the adversary-search guidance API: `ftc-hunt`'s trace-guided
/// strategy probes a fault-free execution, asks for the top-`k` targets,
/// and biases its schedule candidates towards crashing exactly these
/// `(node, round)` pairs — initiators and referee-like hubs, at the moment
/// their influence cloud starts growing — instead of sampling victims
/// uniformly.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CrashTarget {
    /// The suggested victim.
    pub node: NodeId,
    /// The round its influence starts (crash here or earlier to erase it).
    pub round: Round,
    /// Ranking weight (higher = more influential), deterministic for a
    /// given trace: delivered out-degree, doubled for initiators.
    pub weight: f64,
}

/// Ranks the `k` most influential senders of `trace` as crash targets, in
/// decreasing weight (ties broken by node id, so the ranking is a pure
/// function of the trace).
pub fn crash_targets(trace: &Trace, k: usize) -> Vec<CrashTarget> {
    let nn = trace.n() as usize;
    let analysis = InfluenceAnalysis::full(trace);
    let mut out_degree = vec![0u64; nn];
    let mut first_send: Vec<Option<Round>> = vec![None; nn];
    for ev in trace.events() {
        let s = &mut first_send[ev.src.index()];
        if s.is_none_or(|cur| ev.round < cur) {
            *s = Some(ev.round);
        }
        if ev.delivered {
            out_degree[ev.src.index()] += 1;
        }
    }
    let mut targets: Vec<CrashTarget> = (0..nn)
        .filter_map(|u| {
            let round = first_send[u]?;
            let initiator = analysis.initiators.contains(&NodeId::from(u));
            let weight = out_degree[u] as f64 * if initiator { 2.0 } else { 1.0 };
            (weight > 0.0).then_some(CrashTarget {
                node: NodeId::from(u),
                round,
                weight,
            })
        })
        .collect();
    targets.sort_by(|a, b| {
        b.weight
            .partial_cmp(&a.weight)
            .expect("finite weights")
            .then(a.node.cmp(&b.node))
    });
    targets.truncate(k);
    targets
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftc_sim::prelude::*;

    /// Protocol: node 0 and node `n/2` each broadcast a token wave of
    /// configurable depth; everyone else forwards once.
    #[derive(Clone)]
    struct Wave {
        start: bool,
        forwarded: bool,
    }

    impl Protocol for Wave {
        type Msg = ();
        fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
            if self.start {
                // Contact 3 random ports.
                for _ in 0..3 {
                    let p = ctx.random_port();
                    ctx.send(p, ());
                }
            }
        }
        fn on_round(&mut self, ctx: &mut Ctx<'_, ()>, inbox: &[Incoming<()>]) {
            // Forward once, and only during the first few rounds, so the
            // clouds stay small (the lower-bound regime of few messages).
            if !inbox.is_empty() && !self.forwarded && !self.start && ctx.round() <= 2 {
                self.forwarded = true;
                let p = ctx.random_port();
                ctx.send(p, ());
            }
        }
        fn is_terminated(&self) -> bool {
            true
        }
    }

    fn run_wave(n: u32, starters: &[u32], seed: u64) -> Trace {
        let cfg = SimConfig::new(n)
            .seed(seed)
            .max_rounds(12)
            .record_trace(true);
        let starters: Vec<u32> = starters.to_vec();
        let r = run(
            &cfg,
            |id| Wave {
                start: starters.contains(&id.0),
                forwarded: false,
            },
            &mut NoFaults,
        );
        r.trace.expect("trace recorded")
    }

    #[test]
    fn initiators_are_exactly_the_starters() {
        let trace = run_wave(64, &[0, 32], 5);
        let a = InfluenceAnalysis::full(&trace);
        // The two starters always initiate; a forwarding node could only
        // initiate if it sent before receiving, which Wave never does.
        assert!(a.initiators.contains(&NodeId(0)));
        assert!(a.initiators.contains(&NodeId(32)));
        assert_eq!(a.initiator_count(), 2);
    }

    #[test]
    fn sparse_waves_usually_stay_disjoint() {
        // Two shallow 3-fan waves in a 4000-node network rarely touch:
        // event N should hold for most seeds.
        let mut disjoint = 0;
        for seed in 0..20 {
            let trace = run_wave(4000, &[0, 2000], seed);
            let a = InfluenceAnalysis::full(&trace);
            if a.event_n() {
                disjoint += 1;
            }
        }
        assert!(disjoint >= 16, "only {disjoint}/20 disjoint");
    }

    #[test]
    fn clouds_partition_touched_nodes_when_disjoint() {
        let trace = run_wave(512, &[0, 256], 1);
        let a = InfluenceAnalysis::full(&trace);
        if !a.event_n() {
            return; // merged run: partition doesn't apply
        }
        let c0 = a.cloud_members(NodeId(0));
        let c1 = a.cloud_members(NodeId(256));
        let inter: Vec<_> = c0.iter().filter(|x| c1.contains(x)).collect();
        assert!(inter.is_empty());
        assert_eq!(
            c0.len() + c1.len() + a.untouched(),
            512,
            "clouds + untouched must cover the network"
        );
    }

    #[test]
    fn deciding_clouds_counts_distinct_clouds() {
        let trace = run_wave(256, &[0, 128], 3);
        let a = InfluenceAnalysis::full(&trace);
        let deciders = vec![NodeId(0), NodeId(128)];
        assert_eq!(a.deciding_clouds(&deciders), 2);
        assert_eq!(a.deciding_clouds(&[NodeId(0)]), 1);
        // An untouched node belongs to no deciding cloud.
        let untouched: Vec<NodeId> = (0..256)
            .map(NodeId)
            .filter(|v| a.cloud_of[v.index()].is_none())
            .take(1)
            .collect();
        if let Some(&u) = untouched.first() {
            assert_eq!(a.deciding_clouds(&[u]), 0);
        }
    }

    #[test]
    fn prefix_analysis_sees_fewer_edges() {
        let trace = run_wave(256, &[0], 7);
        let full = InfluenceAnalysis::full(&trace);
        let early = InfluenceAnalysis::up_to(&trace, 0);
        assert!(early.cloud_members(NodeId(0)).len() <= full.cloud_members(NodeId(0)).len());
    }

    #[test]
    fn crash_targets_rank_influential_senders_first() {
        let trace = run_wave(128, &[0, 64], 2);
        let targets = crash_targets(&trace, 4);
        assert!(!targets.is_empty());
        // The wave starters send 3 messages each and are initiators, so
        // they outrank the single-forward relay nodes.
        assert!(targets[0].node == NodeId(0) || targets[0].node == NodeId(64));
        assert_eq!(targets[0].round, 0);
        assert!(targets.windows(2).all(|w| w[0].weight >= w[1].weight));
        assert_eq!(targets, crash_targets(&trace, 4), "ranking must be pure");
        assert!(crash_targets(&trace, 1).len() == 1);
    }

    #[test]
    fn silent_execution_has_no_initiators() {
        struct Mute;
        impl Protocol for Mute {
            type Msg = ();
            fn on_start(&mut self, _ctx: &mut Ctx<'_, ()>) {}
            fn on_round(&mut self, _ctx: &mut Ctx<'_, ()>, _i: &[Incoming<()>]) {}
            fn is_terminated(&self) -> bool {
                true
            }
        }
        let cfg = SimConfig::new(16).seed(0).max_rounds(4).record_trace(true);
        let r = run(&cfg, |_| Mute, &mut NoFaults);
        let a = InfluenceAnalysis::full(&r.trace.expect("trace"));
        assert_eq!(a.initiator_count(), 0);
        assert_eq!(a.untouched(), 16);
        assert!(a.event_n());
    }
}
