//! # `ftc-lowerbound` — empirical machinery for the message lower bounds
//!
//! Theorems 4.2 and 5.2 of the paper prove that any leader-election or
//! agreement algorithm succeeding with constant probability must send
//! `Ω(√n/α^{3/2})` messages. This crate makes the proof's structure
//! observable on real executions:
//!
//! * [`influence`] — computes the communication graph `C^r`, initiators
//!   and influence clouds of a recorded [`ftc_sim::trace::Trace`], and
//!   checks the disjointness event `N` the proof hinges on;
//! * [`capped`] — starves the paper's own protocols of messages (scaling
//!   the Lemma-3 referee budget below 1×) and measures the failure
//!   probability climbing as the spend crosses the `√n/α^{3/2}` threshold.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod capped;
pub mod influence;

/// Convenient glob import.
pub mod prelude {
    pub use crate::capped::{sweep_agreement, sweep_leader_election, SweepPoint};
    pub use crate::influence::{crash_targets, CrashTarget, InfluenceAnalysis};
}
