//! Wall-clock benchmarks of the simulator substrate, including the D1
//! ablation (lazy Feistel ports vs materialised permutations).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ftc_sim::ids::NodeId;
use ftc_sim::perm::Perm;
use ftc_sim::ports::PortMap;
use ftc_sim::prelude::*;

/// A chatter protocol that stresses the delivery path: every node sends to
/// 4 random ports for 8 rounds.
struct Chat;

impl Protocol for Chat {
    type Msg = u64;
    fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
        for _ in 0..4 {
            let p = ctx.random_port();
            ctx.send(p, 1);
        }
    }
    fn on_round(&mut self, ctx: &mut Ctx<'_, u64>, _inbox: &[Incoming<u64>]) {
        if ctx.round() < 8 {
            for _ in 0..4 {
                let p = ctx.random_port();
                ctx.send(p, 1);
            }
        }
    }
    fn is_terminated(&self) -> bool {
        true
    }
}

fn bench_round_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine/rounds");
    g.sample_size(10);
    for &n in &[1024u32, 8192, 65536] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let cfg = SimConfig::new(n).seed(1).max_rounds(10);
            b.iter(|| {
                let r = run(&cfg, |_| Chat, &mut NoFaults);
                std::hint::black_box(r.metrics.msgs_sent)
            });
        });
    }
    g.finish();
}

/// D1 ablation: evaluating the lazy PRP port map vs building an explicit
/// permutation vector per node (the memory-hungry alternative).
fn bench_port_lookup(c: &mut Criterion) {
    let n: u32 = 1 << 16;
    let pm = PortMap::new(n, NodeId(7), 42);

    let mut g = c.benchmark_group("engine/ports");
    g.bench_function("lazy_feistel_lookup", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 1) % (n - 1);
            std::hint::black_box(pm.peer(ftc_sim::ids::Port(i)))
        });
    });
    g.bench_function("materialised_build_once", |b| {
        b.iter(|| {
            // The alternative design: materialise the whole permutation.
            let perm = Perm::new(u64::from(n) - 1, 42);
            let v: Vec<u32> = (0..u64::from(n) - 1)
                .map(|x| perm.apply(x) as u32)
                .collect();
            std::hint::black_box(v.len())
        });
    });
    g.finish();
}

/// Full-broadcast chatter: every node broadcasts a word per round. This is
/// the worst case for the delivery plane (`n·(n-1)` envelopes per round)
/// and the scenario the committed `BENCH_engine.json` baseline tracks.
struct Bcast {
    rounds_done: u32,
}

impl Protocol for Bcast {
    type Msg = u64;
    fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
        ctx.broadcast(0);
    }
    fn on_round(&mut self, ctx: &mut Ctx<'_, u64>, _inbox: &[Incoming<u64>]) {
        self.rounds_done += 1;
        if self.rounds_done < 3 {
            ctx.broadcast(u64::from(ctx.round()));
        }
    }
    fn is_terminated(&self) -> bool {
        self.rounds_done >= 3
    }
}

/// The hot-path scenarios the flat delivery plane optimises: fault-free
/// broadcast (pooled buffers + span index), eager crashes (dead-edge
/// cache) and probabilistic edge failures (flat edge accumulator).
fn bench_hot_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine/hot_path");
    g.sample_size(3);
    for &n in &[256u32, 1024, 4096] {
        let base = SimConfig::new(n).seed(11).max_rounds(5);
        g.bench_with_input(BenchmarkId::new("broadcast", n), &n, |b, _| {
            b.iter(|| {
                let r = run(&base, |_| Bcast { rounds_done: 0 }, &mut NoFaults);
                std::hint::black_box(r.metrics.msgs_delivered)
            });
        });
        g.bench_with_input(BenchmarkId::new("eager_crash", n), &n, |b, &n| {
            b.iter(|| {
                let mut adv = EagerCrash::new(n as usize / 2);
                let r = run(&base, |_| Bcast { rounds_done: 0 }, &mut adv);
                std::hint::black_box(r.metrics.msgs_delivered)
            });
        });
        let edgy = base.clone().edge_failure_prob(0.3);
        g.bench_with_input(BenchmarkId::new("edge_failure", n), &n, |b, _| {
            b.iter(|| {
                let r = run(&edgy, |_| Bcast { rounds_done: 0 }, &mut NoFaults);
                std::hint::black_box(r.metrics.msgs_delivered)
            });
        });
    }
    g.finish();
}

fn bench_trial_runner(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine/parallel_trials");
    g.sample_size(10);
    g.bench_function("16_trials_n1024", |b| {
        let cfg = SimConfig::new(1024).seed(3).max_rounds(10);
        b.iter(|| {
            let out = run_trials(&cfg, 16, |c| {
                let r = run(c, |_| Chat, &mut NoFaults);
                r.metrics.msgs_sent
            });
            std::hint::black_box(out.len())
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_round_engine,
    bench_hot_path,
    bench_port_lookup,
    bench_trial_runner
);
criterion_main!(benches);
