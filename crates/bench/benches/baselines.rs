//! Wall-clock benchmarks of the baseline protocols, for the engineering
//! side of the Table-I comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ftc_baselines::prelude::*;
use ftc_sim::prelude::*;

fn bench_floodset(c: &mut Criterion) {
    let mut g = c.benchmark_group("baselines/floodset");
    g.sample_size(10);
    for &n in &[1024u32, 4096] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let f = 16u32;
            let cfg = SimConfig::new(n).seed(1).max_rounds(flood_round_budget(f));
            b.iter(|| {
                let mut adv = RandomCrash::new(f as usize, f);
                let r = run(&cfg, |id| FloodAgreeNode::new(f, id.0 % 5 != 0), &mut adv);
                std::hint::black_box(r.metrics.msgs_sent)
            });
        });
    }
    g.finish();
}

fn bench_gk(c: &mut Criterion) {
    let mut g = c.benchmark_group("baselines/gilbert_kowalski");
    g.sample_size(10);
    for &n in &[1024u32, 4096, 16384] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let cfg = SimConfig::new(n)
                .seed(1)
                .kt1(true)
                .max_rounds(gk_round_budget(n));
            b.iter(|| {
                let mut adv = RandomCrash::new(n as usize / 4, 10);
                let r = run(&cfg, |id| GkNode::new(id.0 % 5 != 0), &mut adv);
                std::hint::black_box(r.metrics.msgs_sent)
            });
        });
    }
    g.finish();
}

fn bench_gossip(c: &mut Criterion) {
    let mut g = c.benchmark_group("baselines/gossip");
    g.sample_size(10);
    for &n in &[1024u32, 4096] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let cfg = SimConfig::new(n).seed(1).max_rounds(gossip_round_budget(n));
            b.iter(|| {
                let mut adv = RandomCrash::new(n as usize / 4, 10);
                let r = run(&cfg, |id| GossipNode::new(n, id.0 % 5 != 0), &mut adv);
                std::hint::black_box(r.metrics.msgs_sent)
            });
        });
    }
    g.finish();
}

fn bench_kutten(c: &mut Criterion) {
    let mut g = c.benchmark_group("baselines/kutten_le");
    g.sample_size(10);
    for &n in &[4096u32, 16384] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let cfg = SimConfig::new(n).seed(1).max_rounds(kutten_round_budget());
            b.iter(|| {
                let r = run(&cfg, |_| KuttenLeNode::new(), &mut NoFaults);
                std::hint::black_box(r.metrics.msgs_sent)
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_floodset,
    bench_gk,
    bench_gossip,
    bench_kutten
);
criterion_main!(benches);
