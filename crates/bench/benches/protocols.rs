//! End-to-end wall-clock benchmarks of the paper's protocols
//! (complementing the message/round measurements of the `fig_*` harnesses
//! with engineering cost).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ftc_core::agreement::AgreeNode;
use ftc_core::leader_election::LeNode;
use ftc_core::params::Params;
use ftc_sim::prelude::*;

fn bench_leader_election(c: &mut Criterion) {
    let mut g = c.benchmark_group("protocols/leader_election");
    g.sample_size(10);
    for &n in &[1024u32, 4096, 16384] {
        let params = Params::new(n, 0.5).expect("valid");
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let cfg = SimConfig::new(n)
                .seed(1)
                .max_rounds(params.le_round_budget());
            b.iter(|| {
                let mut adv = EagerCrash::new(params.max_faults());
                let r = run(&cfg, |_| LeNode::new(params.clone()), &mut adv);
                std::hint::black_box(r.metrics.msgs_sent)
            });
        });
    }
    g.finish();
}

fn bench_agreement(c: &mut Criterion) {
    let mut g = c.benchmark_group("protocols/agreement");
    g.sample_size(10);
    for &n in &[1024u32, 4096, 16384, 65536] {
        let params = Params::new(n, 0.5).expect("valid");
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let cfg = SimConfig::new(n)
                .seed(1)
                .max_rounds(params.agreement_round_budget());
            b.iter(|| {
                let mut adv = EagerCrash::new(params.max_faults());
                let r = run(
                    &cfg,
                    |id| AgreeNode::new(params.clone(), id.0 % 20 != 0),
                    &mut adv,
                );
                std::hint::black_box(r.metrics.msgs_sent)
            });
        });
    }
    g.finish();
}

fn bench_alpha_cost(c: &mut Criterion) {
    // How wall-clock cost scales with resilience (the 1/alpha factors).
    let mut g = c.benchmark_group("protocols/le_alpha");
    g.sample_size(10);
    for &alpha in &[1.0f64, 0.5, 0.25] {
        let n = 4096u32;
        let params = Params::new(n, alpha).expect("valid");
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("alpha_{alpha}")),
            &alpha,
            |b, _| {
                let cfg = SimConfig::new(n)
                    .seed(2)
                    .max_rounds(params.le_round_budget());
                b.iter(|| {
                    let mut adv = EagerCrash::new(params.max_faults());
                    let r = run(&cfg, |_| LeNode::new(params.clone()), &mut adv);
                    std::hint::black_box(r.metrics.rounds)
                });
            },
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_leader_election,
    bench_agreement,
    bench_alpha_cost
);
criterion_main!(benches);
