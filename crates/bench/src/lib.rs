//! # `ftc-bench` — the experiment harness
//!
//! One binary per table/figure of the paper (see `DESIGN.md` §4 and
//! `EXPERIMENTS.md`):
//!
//! | Binary | Experiment | Paper artifact |
//! |--------|-----------|----------------|
//! | `table1` | E1 | Table I (protocol comparison) |
//! | `fig_le_messages_vs_n` | E2 | Theorem 4.1 message scaling in `n` |
//! | `fig_messages_vs_alpha` | E3 | `α`-dependence of both protocols |
//! | `fig_rounds` | E4 | `O(log n/α)` round complexity |
//! | `fig_success` | E5/E6 | whp success + leader quality under all adversaries |
//! | `fig_explicit` | E7 | explicit extensions `O(n·log n/α)` |
//! | `fig_lowerbound` | E8 | Theorems 4.2/5.2 budget sweep |
//! | `fig_faultfree_gap` | E9 | "same as fault-free" (Corollaries 1/3) |
//! | `fig_sampling_lemmas` | E10 | Lemmas 1–3 concentration |
//!
//! This library crate hosts the shared measurement plumbing so the
//! binaries stay declarative.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ftc_core::adversaries::{MinRankCrasher, ZeroHolderCrasher};
use ftc_core::agreement::{AgreeNode, AgreeOutcome};
use ftc_core::leader_election::{LeNode, LeOutcome};
use ftc_core::messages::{AgreeMsg, LeMsg};
use ftc_core::params::Params;
use ftc_sim::adversary::{Adversary, EagerCrash, NoFaults, RandomCrash};
use ftc_sim::engine::{run, SimConfig};
use ftc_sim::ids::NodeId;
use ftc_sim::runner::{run_trials_jobs, ParRunner, TrialPlan};
use ftc_sim::stats::Summary;

/// Trials per cell in `--smoke` mode (unless `--trials` overrides it).
pub const SMOKE_TRIALS: u64 = 2;

/// Command-line options shared by every experiment binary.
///
/// All binaries accept the same flags so CI and humans can dial any
/// experiment up or down without editing constants:
///
/// * `--jobs N` — worker threads (`0` = one per core, the default). The
///   results are bit-identical at any value; only wall-clock changes.
/// * `--trials N` — trials per experimental cell, overriding the binary's
///   default (and `--smoke`'s reduction).
/// * `--seed N` — base seed, overriding the binary's default.
/// * `--smoke` — CI profile: small `n`, [`SMOKE_TRIALS`] trials per cell.
///   Each binary picks its own smoke-sized parameters via
///   [`ExpOpts::pick`]; the seed stays fixed so smoke runs are
///   reproducible.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ExpOpts {
    /// Worker threads per measurement (`0` = one per core).
    pub jobs: usize,
    /// `--trials` override, if given.
    pub trials_override: Option<u64>,
    /// `--seed` override, if given.
    pub seed_override: Option<u64>,
    /// Whether `--smoke` was given.
    pub smoke: bool,
}

impl ExpOpts {
    /// Parses `std::env::args()`, printing usage and exiting on `--help`
    /// or a malformed command line.
    pub fn parse() -> Self {
        match Self::try_parse(std::env::args().skip(1)) {
            Ok(opts) => opts,
            Err(ParseError::Help) => {
                println!("{}", Self::usage());
                std::process::exit(0);
            }
            Err(ParseError::Bad(msg)) => {
                eprintln!("error: {msg}\n\n{}", Self::usage());
                std::process::exit(2);
            }
        }
    }

    /// Parses an explicit argument list (testable core of [`parse`]).
    ///
    /// [`parse`]: ExpOpts::parse
    pub fn try_parse(args: impl IntoIterator<Item = String>) -> Result<Self, ParseError> {
        let mut opts = ExpOpts::default();
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            let (flag, inline) = match arg.split_once('=') {
                Some((f, v)) => (f.to_string(), Some(v.to_string())),
                None => (arg, None),
            };
            let mut value = |name: &str| {
                inline
                    .clone()
                    .or_else(|| args.next())
                    .ok_or_else(|| ParseError::Bad(format!("{name} needs a value")))
            };
            match flag.as_str() {
                "--jobs" | "-j" => {
                    opts.jobs = value("--jobs")?
                        .parse()
                        .map_err(|_| ParseError::Bad("--jobs expects an integer".into()))?;
                }
                "--trials" | "-t" => {
                    let t: u64 = value("--trials")?
                        .parse()
                        .map_err(|_| ParseError::Bad("--trials expects an integer".into()))?;
                    if t == 0 {
                        return Err(ParseError::Bad("--trials must be at least 1".into()));
                    }
                    opts.trials_override = Some(t);
                }
                "--seed" | "-s" => {
                    let s: u64 = value("--seed")?
                        .parse()
                        .map_err(|_| ParseError::Bad("--seed expects an integer".into()))?;
                    opts.seed_override = Some(s);
                }
                "--smoke" => opts.smoke = true,
                "--help" | "-h" => return Err(ParseError::Help),
                other => {
                    return Err(ParseError::Bad(format!("unknown argument `{other}`")));
                }
            }
        }
        Ok(opts)
    }

    /// The usage text shared by all binaries.
    pub fn usage() -> &'static str {
        "usage: <experiment> [--jobs N] [--trials N] [--seed N] [--smoke]\n\
         \n\
           --jobs N, -j N    worker threads (0 = one per core; default 0).\n\
                             Results are identical at any value.\n\
           --trials N, -t N  trials per experimental cell (overrides the\n\
                            binary's default and --smoke)\n\
           --seed N, -s N    base seed (overrides the binary's default)\n\
           --smoke           CI profile: small n, few trials, fixed seed\n\
           --help, -h        this text"
    }

    /// Trials per cell: `--trials` wins, then `--smoke`, then `default`.
    pub fn trials(&self, default: u64) -> u64 {
        self.trials_override.unwrap_or(if self.smoke {
            SMOKE_TRIALS.min(default)
        } else {
            default
        })
    }

    /// Base seed: `--seed` wins over `default`.
    pub fn seed(&self, default: u64) -> u64 {
        self.seed_override.unwrap_or(default)
    }

    /// Picks the full-size or smoke-size variant of a parameter.
    pub fn pick<T>(&self, full: T, smoke: T) -> T {
        if self.smoke {
            smoke
        } else {
            full
        }
    }

    /// One-line run description for experiment banners.
    pub fn banner(&self) -> String {
        let jobs = match self.jobs {
            0 => "all cores".to_string(),
            j => format!("{j} jobs"),
        };
        if self.smoke {
            format!("{jobs}, smoke profile")
        } else {
            jobs
        }
    }
}

/// Why [`ExpOpts::try_parse`] declined to produce options.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseError {
    /// `--help` was requested.
    Help,
    /// The command line was malformed.
    Bad(String),
}

/// Which crash schedule an experiment runs under.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdversaryKind {
    /// No crashes.
    None,
    /// All faulty nodes crash at round 0 before sending.
    Eager,
    /// Random crash rounds within the given horizon.
    Random(u32),
    /// The paper's worst case: assassinate the current minimum proposer
    /// (LE) / the current zero-forwarder (agreement).
    Targeted,
}

impl AdversaryKind {
    /// Human-readable label for tables.
    pub fn label(self) -> &'static str {
        match self {
            AdversaryKind::None => "fault-free",
            AdversaryKind::Eager => "eager",
            AdversaryKind::Random(_) => "random",
            AdversaryKind::Targeted => "targeted",
        }
    }

    fn le_adversary(self, f: usize) -> Box<dyn Adversary<LeMsg>> {
        match self {
            AdversaryKind::None => Box::new(NoFaults),
            AdversaryKind::Eager => Box::new(EagerCrash::new(f)),
            AdversaryKind::Random(h) => Box::new(RandomCrash::new(f, h)),
            AdversaryKind::Targeted => Box::new(MinRankCrasher::new(f)),
        }
    }

    fn agree_adversary(self, f: usize) -> Box<dyn Adversary<AgreeMsg>> {
        match self {
            AdversaryKind::None => Box::new(NoFaults),
            AdversaryKind::Eager => Box::new(EagerCrash::new(f)),
            AdversaryKind::Random(h) => Box::new(RandomCrash::new(f, h)),
            AdversaryKind::Targeted => Box::new(ZeroHolderCrasher::new(f)),
        }
    }
}

/// Aggregated measurements of one experimental cell.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Fraction of trials satisfying the problem definition.
    pub success_rate: f64,
    /// Among successful LE trials, fraction whose leader is faulty.
    pub faulty_leader_rate: f64,
    /// Messages sent.
    pub msgs: Summary,
    /// Bits sent.
    pub bits: Summary,
    /// Rounds executed.
    pub rounds: Summary,
    /// Trials run.
    pub trials: u64,
}

/// Measures the paper's implicit leader election, fanning trials over
/// `jobs` worker threads (`0` = one per core). Results are a function of
/// the arguments only — never of `jobs`.
pub fn measure_le(
    n: u32,
    alpha: f64,
    kind: AdversaryKind,
    trials: u64,
    seed: u64,
    jobs: usize,
) -> Measurement {
    let params = Params::new(n, alpha).expect("valid params");
    let f = params.max_faults();
    let cfg = SimConfig::new(n)
        .seed(seed)
        .max_rounds(params.le_round_budget());
    let out = run_trials_jobs(&cfg, trials, jobs, |c| {
        let mut adv = kind.le_adversary(f);
        let r = run(c, |_| LeNode::new(params.clone()), adv.as_mut());
        let o = LeOutcome::evaluate(&r);
        (
            o.success,
            o.success && o.leader_is_faulty,
            r.metrics.msgs_sent,
            r.metrics.bits_sent,
            r.metrics.rounds,
        )
    });
    aggregate(out.iter().map(|t| t.value))
}

/// Measures the paper's implicit agreement with a `zero_fraction` of
/// 0-inputs spread round-robin; `jobs` as in [`measure_le`].
pub fn measure_agreement(
    n: u32,
    alpha: f64,
    zero_fraction: f64,
    kind: AdversaryKind,
    trials: u64,
    seed: u64,
    jobs: usize,
) -> Measurement {
    let params = Params::new(n, alpha).expect("valid params");
    let f = params.max_faults();
    let stride = if zero_fraction <= 0.0 {
        u32::MAX
    } else {
        (1.0 / zero_fraction).round().max(1.0) as u32
    };
    let cfg = SimConfig::new(n)
        .seed(seed)
        .max_rounds(params.agreement_round_budget());
    let out = run_trials_jobs(&cfg, trials, jobs, |c| {
        let mut adv = kind.agree_adversary(f);
        let inputs = |id: NodeId| !(stride != u32::MAX && id.0 % stride == 0);
        let r = run(
            c,
            |id| AgreeNode::new(params.clone(), inputs(id)),
            adv.as_mut(),
        );
        let o = AgreeOutcome::evaluate(&r);
        (
            o.success,
            false,
            r.metrics.msgs_sent,
            r.metrics.bits_sent,
            r.metrics.rounds,
        )
    });
    aggregate(out.iter().map(|t| t.value))
}

/// Success count and mean cost of one experiment row (Table I style).
#[derive(Clone, Copy, Debug)]
pub struct RowResult {
    /// Trials that met the row's success predicate.
    pub success: u64,
    /// Mean messages per trial.
    pub msgs: f64,
    /// Mean rounds per trial.
    pub rounds: f64,
}

/// Runs `job` once per derived trial seed, in parallel over `jobs` worker
/// threads, and averages the `(success, msgs, rounds)` triples. The seed
/// passed to `job` is `stream_seed(base_seed, trial + 1)` — feed it to
/// [`SimConfig::seed`] so the trial is reproducible in isolation.
pub fn average_trials<F>(trials: u64, base_seed: u64, jobs: usize, job: F) -> RowResult
where
    F: Fn(u64) -> (bool, u64, u32) + Sync,
{
    let batch =
        ParRunner::new(TrialPlan::new(base_seed, trials).jobs(jobs)).run(|_, seed| job(seed));
    let n = batch.len().max(1) as f64;
    let mut success = 0u64;
    let mut msgs = 0.0;
    let mut rounds = 0.0;
    for (ok, m, r) in batch.values() {
        success += u64::from(*ok);
        msgs += *m as f64;
        rounds += f64::from(*r);
    }
    RowResult {
        success,
        msgs: msgs / n,
        rounds: rounds / n,
    }
}

fn aggregate(values: impl Iterator<Item = (bool, bool, u64, u64, u32)>) -> Measurement {
    let v: Vec<_> = values.collect();
    let trials = v.len() as u64;
    let successes = v.iter().filter(|x| x.0).count();
    let faulty_leaders = v.iter().filter(|x| x.1).count();
    Measurement {
        success_rate: successes as f64 / trials.max(1) as f64,
        faulty_leader_rate: faulty_leaders as f64 / successes.max(1) as f64,
        msgs: Summary::of_iter(v.iter().map(|x| x.2 as f64)),
        bits: Summary::of_iter(v.iter().map(|x| x.3 as f64)),
        rounds: Summary::of_iter(v.iter().map(|x| f64::from(x.4))),
        trials,
    }
}

/// Prints a fixed-width table: a header row and data rows.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            if i > 0 {
                s.push_str("  ");
            }
            s.push_str(&format!("{:>width$}", c, width = widths[i]));
        }
        s
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    println!("{}", line(&header_cells));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1)))
    );
    for row in rows {
        println!("{}", line(row));
    }
}

/// Formats a float with thousands grouping for table cells.
pub fn fmt_count(v: f64) -> String {
    let v = v.round() as i64;
    let s = v.abs().to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i) % 3 == 0 {
            out.push(',');
        }
        out.push(c);
    }
    if v < 0 {
        format!("-{out}")
    } else {
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_le_reports_sane_numbers() {
        let m = measure_le(128, 0.5, AdversaryKind::Eager, 4, 42, 0);
        assert_eq!(m.trials, 4);
        assert!(m.success_rate >= 0.75, "{m:?}");
        assert!(m.msgs.mean > 0.0);
        assert!(m.rounds.mean > 0.0);
    }

    #[test]
    fn measure_agreement_reports_sane_numbers() {
        let m = measure_agreement(128, 0.5, 0.1, AdversaryKind::Random(10), 4, 42, 0);
        assert_eq!(m.trials, 4);
        assert!(m.success_rate >= 0.75, "{m:?}");
        assert!(m.bits.mean >= m.msgs.mean);
    }

    #[test]
    fn measurements_are_jobs_invariant() {
        let at = |jobs| measure_le(128, 0.5, AdversaryKind::Random(10), 6, 7, jobs);
        let one = at(1);
        let eight = at(8);
        assert_eq!(one.success_rate, eight.success_rate);
        assert_eq!(one.msgs.mean, eight.msgs.mean);
        assert_eq!(one.rounds.mean, eight.rounds.mean);
    }

    #[test]
    fn average_trials_is_jobs_invariant() {
        let job = |seed: u64| (seed % 3 != 0, seed % 100, (seed % 7) as u32);
        let a = average_trials(50, 11, 1, job);
        let b = average_trials(50, 11, 8, job);
        assert_eq!(a.success, b.success);
        assert_eq!(a.msgs, b.msgs);
        assert_eq!(a.rounds, b.rounds);
    }

    #[test]
    fn exp_opts_parse_all_flags() {
        fn args(s: &str) -> std::vec::IntoIter<String> {
            s.split_whitespace()
                .map(String::from)
                .collect::<Vec<_>>()
                .into_iter()
        }
        let o = ExpOpts::try_parse(args("--jobs 4 --trials 9 --seed 3 --smoke")).unwrap();
        assert_eq!(o.jobs, 4);
        assert_eq!(o.trials(100), 9, "--trials beats --smoke");
        assert_eq!(o.seed(1), 3);
        assert!(o.smoke);

        let o = ExpOpts::try_parse(args("-j=2")).unwrap();
        assert_eq!(o.jobs, 2);

        let o = ExpOpts::try_parse(args("--smoke")).unwrap();
        assert_eq!(o.trials(100), SMOKE_TRIALS);
        assert_eq!(o.trials(1), 1, "smoke never raises the trial count");
        assert_eq!(o.pick(4096u32, 512), 512);

        let o = ExpOpts::try_parse(args("")).unwrap();
        assert_eq!(o, ExpOpts::default());
        assert_eq!(o.trials(8), 8);
        assert_eq!(o.seed(5), 5);
        assert_eq!(o.pick(4096u32, 512), 4096);

        assert_eq!(ExpOpts::try_parse(args("--help")), Err(ParseError::Help));
        assert!(matches!(
            ExpOpts::try_parse(args("--frobnicate")),
            Err(ParseError::Bad(_))
        ));
        assert!(matches!(
            ExpOpts::try_parse(args("--trials 0")),
            Err(ParseError::Bad(_))
        ));
        assert!(matches!(
            ExpOpts::try_parse(args("--jobs")),
            Err(ParseError::Bad(_))
        ));
        assert!(matches!(
            ExpOpts::try_parse(args("--trials zero")),
            Err(ParseError::Bad(_))
        ));
    }

    #[test]
    fn adversary_kinds_have_labels() {
        assert_eq!(AdversaryKind::None.label(), "fault-free");
        assert_eq!(AdversaryKind::Random(5).label(), "random");
        assert_eq!(AdversaryKind::Targeted.label(), "targeted");
    }

    #[test]
    fn fmt_count_groups_thousands() {
        assert_eq!(fmt_count(1234567.0), "1,234,567");
        assert_eq!(fmt_count(999.0), "999");
        assert_eq!(fmt_count(0.0), "0");
    }

    #[test]
    fn print_table_does_not_panic() {
        print_table(
            &["a", "bb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
    }
}
