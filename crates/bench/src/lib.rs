//! # `ftc-bench` — the experiment harness
//!
//! One binary per table/figure of the paper (see `DESIGN.md` §4 and
//! `EXPERIMENTS.md`):
//!
//! | Binary | Experiment | Paper artifact |
//! |--------|-----------|----------------|
//! | `table1` | E1 | Table I (protocol comparison) |
//! | `fig_le_messages_vs_n` | E2 | Theorem 4.1 message scaling in `n` |
//! | `fig_messages_vs_alpha` | E3 | `α`-dependence of both protocols |
//! | `fig_rounds` | E4 | `O(log n/α)` round complexity |
//! | `fig_success` | E5/E6 | whp success + leader quality under all adversaries |
//! | `fig_explicit` | E7 | explicit extensions `O(n·log n/α)` |
//! | `fig_lowerbound` | E8 | Theorems 4.2/5.2 budget sweep |
//! | `fig_faultfree_gap` | E9 | "same as fault-free" (Corollaries 1/3) |
//! | `fig_sampling_lemmas` | E10 | Lemmas 1–3 concentration |
//!
//! Every binary declares its parameter grid as an `ftc_lab`
//! [`CampaignSpec`](ftc_lab::CampaignSpec) and executes it through
//! [`run_campaign`](ftc_lab::run_campaign) — the same campaigns `ftc lab
//! run` can persist, diff, and gate on. This crate keeps only the shared
//! presentation plumbing (CLI options, table rendering).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Trials per cell in `--smoke` mode (unless `--trials` overrides it).
pub const SMOKE_TRIALS: u64 = 2;

/// Command-line options shared by every experiment binary.
///
/// All binaries accept the same flags so CI and humans can dial any
/// experiment up or down without editing constants:
///
/// * `--jobs N` — worker threads (`0` = one per core, the default). The
///   results are bit-identical at any value; only wall-clock changes.
/// * `--trials N` — trials per experimental cell, overriding the binary's
///   default (and `--smoke`'s reduction).
/// * `--seed N` — base seed, overriding the binary's default.
/// * `--smoke` — CI profile: small `n`, [`SMOKE_TRIALS`] trials per cell.
///   Each binary picks its own smoke-sized parameters via
///   [`ExpOpts::pick`]; the seed stays fixed so smoke runs are
///   reproducible.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ExpOpts {
    /// Worker threads per measurement (`0` = one per core).
    pub jobs: usize,
    /// `--trials` override, if given.
    pub trials_override: Option<u64>,
    /// `--seed` override, if given.
    pub seed_override: Option<u64>,
    /// Whether `--smoke` was given.
    pub smoke: bool,
}

impl ExpOpts {
    /// Parses `std::env::args()`, printing usage and exiting on `--help`
    /// or a malformed command line.
    pub fn parse() -> Self {
        match Self::try_parse(std::env::args().skip(1)) {
            Ok(opts) => opts,
            Err(ParseError::Help) => {
                println!("{}", Self::usage());
                std::process::exit(0);
            }
            Err(ParseError::Bad(msg)) => {
                eprintln!("error: {msg}\n\n{}", Self::usage());
                std::process::exit(2);
            }
        }
    }

    /// Parses an explicit argument list (testable core of [`parse`]).
    ///
    /// [`parse`]: ExpOpts::parse
    pub fn try_parse(args: impl IntoIterator<Item = String>) -> Result<Self, ParseError> {
        let mut opts = ExpOpts::default();
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            let (flag, inline) = match arg.split_once('=') {
                Some((f, v)) => (f.to_string(), Some(v.to_string())),
                None => (arg, None),
            };
            let mut value = |name: &str| {
                inline
                    .clone()
                    .or_else(|| args.next())
                    .ok_or_else(|| ParseError::Bad(format!("{name} needs a value")))
            };
            match flag.as_str() {
                "--jobs" | "-j" => {
                    opts.jobs = value("--jobs")?
                        .parse()
                        .map_err(|_| ParseError::Bad("--jobs expects an integer".into()))?;
                }
                "--trials" | "-t" => {
                    let t: u64 = value("--trials")?
                        .parse()
                        .map_err(|_| ParseError::Bad("--trials expects an integer".into()))?;
                    if t == 0 {
                        return Err(ParseError::Bad("--trials must be at least 1".into()));
                    }
                    opts.trials_override = Some(t);
                }
                "--seed" | "-s" => {
                    let s: u64 = value("--seed")?
                        .parse()
                        .map_err(|_| ParseError::Bad("--seed expects an integer".into()))?;
                    opts.seed_override = Some(s);
                }
                "--smoke" => opts.smoke = true,
                "--help" | "-h" => return Err(ParseError::Help),
                other => {
                    return Err(ParseError::Bad(format!("unknown argument `{other}`")));
                }
            }
        }
        Ok(opts)
    }

    /// The usage text shared by all binaries.
    pub fn usage() -> &'static str {
        "usage: <experiment> [--jobs N] [--trials N] [--seed N] [--smoke]\n\
         \n\
           --jobs N, -j N    worker threads (0 = one per core; default 0).\n\
                             Results are identical at any value.\n\
           --trials N, -t N  trials per experimental cell (overrides the\n\
                            binary's default and --smoke)\n\
           --seed N, -s N    base seed (overrides the binary's default)\n\
           --smoke           CI profile: small n, few trials, fixed seed\n\
           --help, -h        this text"
    }

    /// Trials per cell: `--trials` wins, then `--smoke`, then `default`.
    pub fn trials(&self, default: u64) -> u64 {
        self.trials_override.unwrap_or(if self.smoke {
            SMOKE_TRIALS.min(default)
        } else {
            default
        })
    }

    /// Base seed: `--seed` wins over `default`.
    pub fn seed(&self, default: u64) -> u64 {
        self.seed_override.unwrap_or(default)
    }

    /// Picks the full-size or smoke-size variant of a parameter.
    pub fn pick<T>(&self, full: T, smoke: T) -> T {
        if self.smoke {
            smoke
        } else {
            full
        }
    }

    /// One-line run description for experiment banners.
    pub fn banner(&self) -> String {
        let jobs = match self.jobs {
            0 => "all cores".to_string(),
            j => format!("{j} jobs"),
        };
        if self.smoke {
            format!("{jobs}, smoke profile")
        } else {
            jobs
        }
    }
}

/// Why [`ExpOpts::try_parse`] declined to produce options.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseError {
    /// `--help` was requested.
    Help,
    /// The command line was malformed.
    Bad(String),
}

/// Prints a fixed-width table: a header row and data rows.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            if i > 0 {
                s.push_str("  ");
            }
            s.push_str(&format!("{:>width$}", c, width = widths[i]));
        }
        s
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    println!("{}", line(&header_cells));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1)))
    );
    for row in rows {
        println!("{}", line(row));
    }
}

/// Formats a float with thousands grouping for table cells.
pub fn fmt_count(v: f64) -> String {
    let v = v.round() as i64;
    let s = v.abs().to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i) % 3 == 0 {
            out.push(',');
        }
        out.push(c);
    }
    if v < 0 {
        format!("-{out}")
    } else {
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exp_opts_parse_all_flags() {
        fn args(s: &str) -> std::vec::IntoIter<String> {
            s.split_whitespace()
                .map(String::from)
                .collect::<Vec<_>>()
                .into_iter()
        }
        let o = ExpOpts::try_parse(args("--jobs 4 --trials 9 --seed 3 --smoke")).unwrap();
        assert_eq!(o.jobs, 4);
        assert_eq!(o.trials(100), 9, "--trials beats --smoke");
        assert_eq!(o.seed(1), 3);
        assert!(o.smoke);

        let o = ExpOpts::try_parse(args("-j=2")).unwrap();
        assert_eq!(o.jobs, 2);

        let o = ExpOpts::try_parse(args("--smoke")).unwrap();
        assert_eq!(o.trials(100), SMOKE_TRIALS);
        assert_eq!(o.trials(1), 1, "smoke never raises the trial count");
        assert_eq!(o.pick(4096u32, 512), 512);

        let o = ExpOpts::try_parse(args("")).unwrap();
        assert_eq!(o, ExpOpts::default());
        assert_eq!(o.trials(8), 8);
        assert_eq!(o.seed(5), 5);
        assert_eq!(o.pick(4096u32, 512), 4096);

        assert_eq!(ExpOpts::try_parse(args("--help")), Err(ParseError::Help));
        assert!(matches!(
            ExpOpts::try_parse(args("--frobnicate")),
            Err(ParseError::Bad(_))
        ));
        assert!(matches!(
            ExpOpts::try_parse(args("--trials 0")),
            Err(ParseError::Bad(_))
        ));
        assert!(matches!(
            ExpOpts::try_parse(args("--jobs")),
            Err(ParseError::Bad(_))
        ));
        assert!(matches!(
            ExpOpts::try_parse(args("--trials zero")),
            Err(ParseError::Bad(_))
        ));
    }

    #[test]
    fn fmt_count_groups_thousands() {
        assert_eq!(fmt_count(1234567.0), "1,234,567");
        assert_eq!(fmt_count(999.0), "999");
        assert_eq!(fmt_count(0.0), "0");
    }

    #[test]
    fn print_table_does_not_panic() {
        print_table(
            &["a", "bb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
    }

    #[test]
    fn lab_campaign_replaces_measurement_plumbing() {
        // The old measure_le helper lived here; its semantics are pinned
        // by ftc-lab (see lab's le_cell_matches_bench_measurement_semantics
        // test). This guards that a bench binary's minimal campaign still
        // runs through the lab entry point.
        use ftc_lab::{run_campaign, Adv, CampaignSpec, CellSpec, LabSubstrate, Workload};
        let spec = CampaignSpec::new("bench-unit").cell(CellSpec::new(
            Workload::Le {
                adv: Adv::Random(10),
            },
            128,
            0.5,
            42,
            2,
        ));
        let record = run_campaign(&spec, 1, LabSubstrate::Engine).unwrap();
        assert_eq!(record.cells.len(), 1);
        assert!(record.cells[0].msgs.mean > 0.0);
    }
}
