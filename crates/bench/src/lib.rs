//! # `ftc-bench` — the experiment harness
//!
//! One binary per table/figure of the paper (see `DESIGN.md` §4 and
//! `EXPERIMENTS.md`):
//!
//! | Binary | Experiment | Paper artifact |
//! |--------|-----------|----------------|
//! | `table1` | E1 | Table I (protocol comparison) |
//! | `fig_le_messages_vs_n` | E2 | Theorem 4.1 message scaling in `n` |
//! | `fig_messages_vs_alpha` | E3 | `α`-dependence of both protocols |
//! | `fig_rounds` | E4 | `O(log n/α)` round complexity |
//! | `fig_success` | E5/E6 | whp success + leader quality under all adversaries |
//! | `fig_explicit` | E7 | explicit extensions `O(n·log n/α)` |
//! | `fig_lowerbound` | E8 | Theorems 4.2/5.2 budget sweep |
//! | `fig_faultfree_gap` | E9 | "same as fault-free" (Corollaries 1/3) |
//! | `fig_sampling_lemmas` | E10 | Lemmas 1–3 concentration |
//!
//! This library crate hosts the shared measurement plumbing so the
//! binaries stay declarative.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ftc_core::adversaries::{MinRankCrasher, ZeroHolderCrasher};
use ftc_core::agreement::{AgreeNode, AgreeOutcome};
use ftc_core::leader_election::{LeNode, LeOutcome};
use ftc_core::messages::{AgreeMsg, LeMsg};
use ftc_core::params::Params;
use ftc_sim::adversary::{Adversary, EagerCrash, NoFaults, RandomCrash};
use ftc_sim::engine::{run, SimConfig};
use ftc_sim::ids::NodeId;
use ftc_sim::runner::run_trials;
use ftc_sim::stats::Summary;

/// Which crash schedule an experiment runs under.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdversaryKind {
    /// No crashes.
    None,
    /// All faulty nodes crash at round 0 before sending.
    Eager,
    /// Random crash rounds within the given horizon.
    Random(u32),
    /// The paper's worst case: assassinate the current minimum proposer
    /// (LE) / the current zero-forwarder (agreement).
    Targeted,
}

impl AdversaryKind {
    /// Human-readable label for tables.
    pub fn label(self) -> &'static str {
        match self {
            AdversaryKind::None => "fault-free",
            AdversaryKind::Eager => "eager",
            AdversaryKind::Random(_) => "random",
            AdversaryKind::Targeted => "targeted",
        }
    }

    fn le_adversary(self, f: usize) -> Box<dyn Adversary<LeMsg>> {
        match self {
            AdversaryKind::None => Box::new(NoFaults),
            AdversaryKind::Eager => Box::new(EagerCrash::new(f)),
            AdversaryKind::Random(h) => Box::new(RandomCrash::new(f, h)),
            AdversaryKind::Targeted => Box::new(MinRankCrasher::new(f)),
        }
    }

    fn agree_adversary(self, f: usize) -> Box<dyn Adversary<AgreeMsg>> {
        match self {
            AdversaryKind::None => Box::new(NoFaults),
            AdversaryKind::Eager => Box::new(EagerCrash::new(f)),
            AdversaryKind::Random(h) => Box::new(RandomCrash::new(f, h)),
            AdversaryKind::Targeted => Box::new(ZeroHolderCrasher::new(f)),
        }
    }
}

/// Aggregated measurements of one experimental cell.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Fraction of trials satisfying the problem definition.
    pub success_rate: f64,
    /// Among successful LE trials, fraction whose leader is faulty.
    pub faulty_leader_rate: f64,
    /// Messages sent.
    pub msgs: Summary,
    /// Bits sent.
    pub bits: Summary,
    /// Rounds executed.
    pub rounds: Summary,
    /// Trials run.
    pub trials: u64,
}

/// Measures the paper's implicit leader election.
pub fn measure_le(
    n: u32,
    alpha: f64,
    kind: AdversaryKind,
    trials: u64,
    seed: u64,
) -> Measurement {
    let params = Params::new(n, alpha).expect("valid params");
    let f = params.max_faults();
    let cfg = SimConfig::new(n).seed(seed).max_rounds(params.le_round_budget());
    let out = run_trials(&cfg, trials, |c| {
        let mut adv = kind.le_adversary(f);
        let r = run(c, |_| LeNode::new(params.clone()), adv.as_mut());
        let o = LeOutcome::evaluate(&r);
        (
            o.success,
            o.success && o.leader_is_faulty,
            r.metrics.msgs_sent,
            r.metrics.bits_sent,
            r.metrics.rounds,
        )
    });
    aggregate(out.iter().map(|t| t.value))
}

/// Measures the paper's implicit agreement with a `zero_fraction` of
/// 0-inputs spread round-robin.
pub fn measure_agreement(
    n: u32,
    alpha: f64,
    zero_fraction: f64,
    kind: AdversaryKind,
    trials: u64,
    seed: u64,
) -> Measurement {
    let params = Params::new(n, alpha).expect("valid params");
    let f = params.max_faults();
    let stride = if zero_fraction <= 0.0 {
        u32::MAX
    } else {
        (1.0 / zero_fraction).round().max(1.0) as u32
    };
    let cfg = SimConfig::new(n)
        .seed(seed)
        .max_rounds(params.agreement_round_budget());
    let out = run_trials(&cfg, trials, |c| {
        let mut adv = kind.agree_adversary(f);
        let inputs = |id: NodeId| !(stride != u32::MAX && id.0 % stride == 0);
        let r = run(c, |id| AgreeNode::new(params.clone(), inputs(id)), adv.as_mut());
        let o = AgreeOutcome::evaluate(&r);
        (
            o.success,
            false,
            r.metrics.msgs_sent,
            r.metrics.bits_sent,
            r.metrics.rounds,
        )
    });
    aggregate(out.iter().map(|t| t.value))
}

fn aggregate(values: impl Iterator<Item = (bool, bool, u64, u64, u32)>) -> Measurement {
    let v: Vec<_> = values.collect();
    let trials = v.len() as u64;
    let successes = v.iter().filter(|x| x.0).count();
    let faulty_leaders = v.iter().filter(|x| x.1).count();
    Measurement {
        success_rate: successes as f64 / trials.max(1) as f64,
        faulty_leader_rate: faulty_leaders as f64 / successes.max(1) as f64,
        msgs: Summary::of_iter(v.iter().map(|x| x.2 as f64)),
        bits: Summary::of_iter(v.iter().map(|x| x.3 as f64)),
        rounds: Summary::of_iter(v.iter().map(|x| f64::from(x.4))),
        trials,
    }
}

/// Prints a fixed-width table: a header row and data rows.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            if i > 0 {
                s.push_str("  ");
            }
            s.push_str(&format!("{:>width$}", c, width = widths[i]));
        }
        s
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    println!("{}", line(&header_cells));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1)))
    );
    for row in rows {
        println!("{}", line(row));
    }
}

/// Formats a float with thousands grouping for table cells.
pub fn fmt_count(v: f64) -> String {
    let v = v.round() as i64;
    let s = v.abs().to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i) % 3 == 0 {
            out.push(',');
        }
        out.push(c);
    }
    if v < 0 {
        format!("-{out}")
    } else {
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_le_reports_sane_numbers() {
        let m = measure_le(128, 0.5, AdversaryKind::Eager, 4, 42);
        assert_eq!(m.trials, 4);
        assert!(m.success_rate >= 0.75, "{m:?}");
        assert!(m.msgs.mean > 0.0);
        assert!(m.rounds.mean > 0.0);
    }

    #[test]
    fn measure_agreement_reports_sane_numbers() {
        let m = measure_agreement(128, 0.5, 0.1, AdversaryKind::Random(10), 4, 42);
        assert_eq!(m.trials, 4);
        assert!(m.success_rate >= 0.75, "{m:?}");
        assert!(m.bits.mean >= m.msgs.mean);
    }

    #[test]
    fn adversary_kinds_have_labels() {
        assert_eq!(AdversaryKind::None.label(), "fault-free");
        assert_eq!(AdversaryKind::Random(5).label(), "random");
        assert_eq!(AdversaryKind::Targeted.label(), "targeted");
    }

    #[test]
    fn fmt_count_groups_thousands() {
        assert_eq!(fmt_count(1234567.0), "1,234,567");
        assert_eq!(fmt_count(999.0), "999");
        assert_eq!(fmt_count(0.0), "0");
    }

    #[test]
    fn print_table_does_not_panic() {
        print_table(
            &["a", "bb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
    }
}
