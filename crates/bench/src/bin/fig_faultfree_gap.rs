//! E9 — "asymptotically the same as fault-free" (Corollaries 1 and 3).
//!
//! The paper's headline surprise: for any constant fraction of faulty
//! nodes, the `Õ(√n)` message complexity matches the fault-free bounds of
//! Kutten et al. \[21\] (leader election) and Augustine et al. \[23\]
//! (agreement) up to polylog factors. We run the fault-free protocol and
//! the paper's fault-tolerant one side by side and report the ratio —
//! which must stay polylogarithmic (i.e. grow far slower than any power
//! of `n`) as `n` scales.
//!
//! Declares its grid as an [`ftc_lab`] campaign — `ftc lab run` can
//! execute, persist, and diff the same experiment.
//!
//! ```sh
//! cargo run --release -p ftc-bench --bin fig_faultfree_gap -- [--jobs N] [--trials N] [--seed N] [--smoke]
//! ```

use ftc_bench::{fmt_count, print_table, ExpOpts};
use ftc_lab::{run_campaign, Adv, CampaignSpec, CellSpec, LabSubstrate, Workload};
use ftc_sim::stats::fit_power_law;

fn main() {
    let opts = ExpOpts::parse();
    let sizes = opts.pick(vec![1024u32, 2048, 4096, 8192, 16384], vec![256, 512, 1024]);
    let trials = opts.trials(8);
    println!(
        "E9: fault-tolerant (alpha = 0.5, random crashes) vs fault-free [21] ({trials} trials, {})",
        opts.banner()
    );
    println!();

    let mut spec = CampaignSpec::new("fig-faultfree-gap");
    for &n in &sizes {
        spec = spec
            .cell(
                CellSpec::new(Workload::LeKutten, n, 0.5, opts.seed(0xE9), trials).label("kutten"),
            )
            .cell(
                CellSpec::new(
                    Workload::Le {
                        adv: Adv::Random(60),
                    },
                    n,
                    0.5,
                    opts.seed(0x9E),
                    trials,
                )
                .label("le-ft"),
            )
            .cell(
                CellSpec::new(
                    Workload::AgreeAugustine { zeros: 1.0 / 16.0 },
                    n,
                    0.5,
                    opts.seed(0x9B),
                    trials,
                )
                .label("augustine"),
            )
            .cell(
                CellSpec::new(
                    Workload::Agree {
                        zeros: 1.0 / 16.0,
                        adv: Adv::Random(20),
                    },
                    n,
                    0.5,
                    opts.seed(0xB9),
                    trials,
                )
                .label("agree-ft"),
            );
    }
    let record = run_campaign(&spec, opts.jobs, LabSubstrate::Engine).expect("campaign");
    let series = |label: &str| {
        record
            .cells
            .iter()
            .filter(|c| c.cell.label == label)
            .collect::<Vec<_>>()
    };

    let mut rows = Vec::new();
    let mut xs = Vec::new();
    let mut ratios = Vec::new();
    for ((ff, ft), &n) in series("kutten").iter().zip(series("le-ft")).zip(&sizes) {
        let ratio = ft.msgs.mean / ff.msgs.mean;
        xs.push(f64::from(n));
        ratios.push(ratio);
        rows.push(vec![
            n.to_string(),
            fmt_count(ff.msgs.mean),
            format!("{}/{trials}", ff.successes),
            fmt_count(ft.msgs.mean),
            format!("{:.2}", ft.success_rate()),
            format!("{ratio:.1}"),
        ]);
    }
    print_table(
        &[
            "n",
            "fault-free msgs [21]",
            "ok",
            "fault-tolerant msgs",
            "ok",
            "ratio",
        ],
        &rows,
    );

    let (exp, _) = fit_power_law(&xs, &ratios);
    println!();
    println!("fitted: LE ratio ~ n^{exp:.3}");
    println!("shape check: the exponent is ~0 — the gap is polylog(n), not a power");
    println!("of n, which is Corollary 1's claim (same Õ(√n) class despite n/2 faults).");
    println!();

    // --- Corollary 3: the agreement side, vs Augustine et al. [23]. ---
    println!("E9b: fault-tolerant agreement (alpha = 0.5) vs fault-free [23]");
    println!();
    let mut rows = Vec::new();
    let mut xs = Vec::new();
    let mut ratios = Vec::new();
    for ((ff, ft), &n) in series("augustine")
        .iter()
        .zip(series("agree-ft"))
        .zip(&sizes)
    {
        let ratio = ft.msgs.mean / ff.msgs.mean;
        xs.push(f64::from(n));
        ratios.push(ratio);
        rows.push(vec![
            n.to_string(),
            fmt_count(ff.msgs.mean),
            format!("{}/{trials}", ff.successes),
            fmt_count(ft.msgs.mean),
            format!("{:.2}", ft.success_rate()),
            format!("{ratio:.1}"),
        ]);
    }
    print_table(
        &[
            "n",
            "fault-free msgs [23]",
            "ok",
            "fault-tolerant msgs",
            "ok",
            "ratio",
        ],
        &rows,
    );
    let (exp, _) = fit_power_law(&xs, &ratios);
    println!();
    println!("fitted: agreement ratio ~ n^{exp:.3}");
    println!("shape check: again ~0 — Corollary 3's claim for agreement.");
}
