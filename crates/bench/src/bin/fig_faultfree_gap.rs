//! E9 — "asymptotically the same as fault-free" (Corollaries 1 and 3).
//!
//! The paper's headline surprise: for any constant fraction of faulty
//! nodes, the `Õ(√n)` message complexity matches the fault-free bounds of
//! Kutten et al. \[21\] (leader election) and Augustine et al. \[23\]
//! (agreement) up to polylog factors. We run the fault-free protocol and
//! the paper's fault-tolerant one side by side and report the ratio —
//! which must stay polylogarithmic (i.e. grow far slower than any power
//! of `n`) as `n` scales.
//!
//! ```sh
//! cargo run --release -p ftc-bench --bin fig_faultfree_gap -- [--jobs N] [--trials N] [--seed N] [--smoke]
//! ```

use ftc_baselines::augustine_agreement::{augustine_round_budget, AugustineNode, AugustineOutcome};
use ftc_baselines::kutten_le::{kutten_round_budget, KuttenLeNode, KuttenOutcome};
use ftc_bench::{fmt_count, measure_agreement, measure_le, print_table, AdversaryKind, ExpOpts};
use ftc_sim::prelude::*;
use ftc_sim::stats::fit_power_law;

fn main() {
    let opts = ExpOpts::parse();
    let sizes = opts.pick(vec![1024u32, 2048, 4096, 8192, 16384], vec![256, 512, 1024]);
    let trials = opts.trials(8);
    println!(
        "E9: fault-tolerant (alpha = 0.5, random crashes) vs fault-free [21] ({trials} trials, {})",
        opts.banner()
    );
    println!();

    let mut rows = Vec::new();
    let mut xs = Vec::new();
    let mut ratios = Vec::new();
    for &n in &sizes {
        // Fault-free comparator: Kutten et al. one-shot election.
        let cfg = SimConfig::new(n)
            .seed(opts.seed(0xE9))
            .max_rounds(kutten_round_budget());
        let ff = run_trials_jobs(&cfg, trials, opts.jobs, |c| {
            let r = run(c, |_| KuttenLeNode::new(), &mut NoFaults);
            let o = KuttenOutcome::evaluate(&r);
            (o.success, r.metrics.msgs_sent)
        });
        let ff_ok = ff.iter().filter(|t| t.value.0).count();
        let ff_msgs = ff.iter().map(|t| t.value.1 as f64).sum::<f64>() / trials as f64;

        // Fault-tolerant protocol under half faults.
        let ft = measure_le(
            n,
            0.5,
            AdversaryKind::Random(60),
            trials,
            opts.seed(0x9E),
            opts.jobs,
        );

        let ratio = ft.msgs.mean / ff_msgs;
        xs.push(f64::from(n));
        ratios.push(ratio);
        rows.push(vec![
            n.to_string(),
            fmt_count(ff_msgs),
            format!("{ff_ok}/{trials}"),
            fmt_count(ft.msgs.mean),
            format!("{:.2}", ft.success_rate),
            format!("{ratio:.1}"),
        ]);
    }
    print_table(
        &[
            "n",
            "fault-free msgs [21]",
            "ok",
            "fault-tolerant msgs",
            "ok",
            "ratio",
        ],
        &rows,
    );

    let (exp, _) = fit_power_law(&xs, &ratios);
    println!();
    println!("fitted: LE ratio ~ n^{exp:.3}");
    println!("shape check: the exponent is ~0 — the gap is polylog(n), not a power");
    println!("of n, which is Corollary 1's claim (same Õ(√n) class despite n/2 faults).");
    println!();

    // --- Corollary 3: the agreement side, vs Augustine et al. [23]. ---
    println!("E9b: fault-tolerant agreement (alpha = 0.5) vs fault-free [23]");
    println!();
    let mut rows = Vec::new();
    let mut xs = Vec::new();
    let mut ratios = Vec::new();
    for &n in &sizes {
        let cfg = SimConfig::new(n)
            .seed(opts.seed(0x9B))
            .max_rounds(augustine_round_budget());
        let ff = run_trials_jobs(&cfg, trials, opts.jobs, |c| {
            let r = run(c, |id| AugustineNode::new(id.0 % 16 != 0), &mut NoFaults);
            let o = AugustineOutcome::evaluate(&r);
            (o.success, r.metrics.msgs_sent)
        });
        let ff_ok = ff.iter().filter(|t| t.value.0).count();
        let ff_msgs = ff.iter().map(|t| t.value.1 as f64).sum::<f64>() / trials as f64;

        let ft = measure_agreement(
            n,
            0.5,
            1.0 / 16.0,
            AdversaryKind::Random(20),
            trials,
            opts.seed(0xB9),
            opts.jobs,
        );
        let ratio = ft.msgs.mean / ff_msgs;
        xs.push(f64::from(n));
        ratios.push(ratio);
        rows.push(vec![
            n.to_string(),
            fmt_count(ff_msgs),
            format!("{ff_ok}/{trials}"),
            fmt_count(ft.msgs.mean),
            format!("{:.2}", ft.success_rate),
            format!("{ratio:.1}"),
        ]);
    }
    print_table(
        &[
            "n",
            "fault-free msgs [23]",
            "ok",
            "fault-tolerant msgs",
            "ok",
            "ratio",
        ],
        &rows,
    );
    let (exp, _) = fit_power_law(&xs, &ratios);
    println!();
    println!("fitted: agreement ratio ~ n^{exp:.3}");
    println!("shape check: again ~0 — Corollary 3's claim for agreement.");
}
