//! E3 — message complexity vs `α` (the resilience dial).
//!
//! Fixes `n` and sweeps the guaranteed non-faulty fraction `α` down
//! towards the paper's limit `log²n/n`. Theorems 4.1/5.1 predict message
//! growth `α^{-5/2}` for leader election and `α^{-3/2}` for agreement; the
//! fitted exponents on `1/α` should land near 2.5 and 1.5 respectively.
//!
//! Declares its grid as an [`ftc_lab`] campaign — `ftc lab run` can
//! execute, persist, and diff the same experiment.
//!
//! ```sh
//! cargo run --release -p ftc-bench --bin fig_messages_vs_alpha -- [--jobs N] [--trials N] [--seed N] [--smoke]
//! ```

use ftc_bench::{fmt_count, print_table, ExpOpts};
use ftc_lab::{
    run_campaign, Adv, CampaignSpec, CellSpec, CheckAxis, CheckMetric, ExponentCheck, LabSubstrate,
    Workload,
};
use ftc_sim::stats::fit_power_law;

const ALPHAS: [f64; 4] = [1.0, 0.5, 0.25, 0.125];

fn main() {
    let opts = ExpOpts::parse();
    // alpha = 0.125 needs n with log2^2(n)/n <= 0.125, so the smoke size
    // floors at 1024.
    let n = opts.pick(4096u32, 1024);
    let trials = opts.trials(6);
    let seed = opts.seed(0xE3);
    println!(
        "E3: messages vs alpha (n = {n}, {trials} trials per point, {})",
        opts.banner()
    );
    println!("(alpha below 0.125 at this n leaves the asymptotic regime: the");
    println!("referee rank-forwarding term degenerates — see DESIGN.md)");
    println!("faults f = (1-alpha)*n, random crash schedule");
    println!();

    let mut spec = CampaignSpec::new("fig-messages-vs-alpha");
    for &alpha in &ALPHAS {
        spec = spec
            .cell(
                CellSpec::new(
                    Workload::Le {
                        adv: Adv::Random(60),
                    },
                    n,
                    alpha,
                    seed,
                    trials,
                )
                .label("le"),
            )
            .cell(
                CellSpec::new(
                    Workload::Agree {
                        zeros: 0.05,
                        adv: Adv::Random(20),
                    },
                    n,
                    alpha,
                    seed,
                    trials,
                )
                .label("agree"),
            );
    }
    spec = spec.check(ExponentCheck {
        name: "le-msgs-vs-inv-alpha".into(),
        series: "le".into(),
        metric: CheckMetric::Msgs,
        axis: CheckAxis::InvAlpha,
        min: 1.0,
        max: 3.5,
    });
    let record = run_campaign(&spec, opts.jobs, LabSubstrate::Engine).expect("campaign");
    let les: Vec<_> = record
        .cells
        .iter()
        .filter(|c| c.cell.label == "le")
        .collect();
    let ags: Vec<_> = record
        .cells
        .iter()
        .filter(|c| c.cell.label == "agree")
        .collect();

    let mut rows = Vec::new();
    let mut inv_alpha = Vec::new();
    let mut le_msgs = Vec::new();
    let mut ag_msgs = Vec::new();
    for ((le, ag), &alpha) in les.iter().zip(&ags).zip(&ALPHAS) {
        inv_alpha.push(1.0 / alpha);
        le_msgs.push(le.msgs.mean);
        ag_msgs.push(ag.msgs.mean);
        rows.push(vec![
            format!("{alpha}"),
            fmt_count((1.0 - alpha) * f64::from(n)),
            fmt_count(le.msgs.mean),
            format!("{:.2}", le.success_rate()),
            fmt_count(ag.msgs.mean),
            format!("{:.2}", ag.success_rate()),
        ]);
    }
    print_table(
        &[
            "alpha",
            "faults",
            "LE msgs",
            "LE ok",
            "agree msgs",
            "agree ok",
        ],
        &rows,
    );

    let (le_exp, _) = fit_power_law(&inv_alpha, &le_msgs);
    let (ag_exp, _) = fit_power_law(&inv_alpha, &ag_msgs);
    println!();
    println!("fitted: LE messages ~ (1/alpha)^{le_exp:.2}   (paper: 2.5)");
    println!("fitted: agreement messages ~ (1/alpha)^{ag_exp:.2}   (paper: 1.5)");
    println!("shape check: LE exponent > agreement exponent, both > 1.");
}
