//! E3 — message complexity vs `α` (the resilience dial).
//!
//! Fixes `n` and sweeps the guaranteed non-faulty fraction `α` down
//! towards the paper's limit `log²n/n`. Theorems 4.1/5.1 predict message
//! growth `α^{-5/2}` for leader election and `α^{-3/2}` for agreement; the
//! fitted exponents on `1/α` should land near 2.5 and 1.5 respectively.
//!
//! ```sh
//! cargo run --release -p ftc-bench --bin fig_messages_vs_alpha
//! ```

use ftc_bench::{fmt_count, measure_agreement, measure_le, print_table, AdversaryKind};
use ftc_sim::stats::fit_power_law;

const N: u32 = 4096;
const ALPHAS: [f64; 4] = [1.0, 0.5, 0.25, 0.125];
const TRIALS: u64 = 6;

fn main() {
    println!("E3: messages vs alpha (n = {N}, {TRIALS} trials per point)");
    println!("(alpha below 0.125 at this n leaves the asymptotic regime: the");
    println!("referee rank-forwarding term degenerates — see DESIGN.md)");
    println!("faults f = (1-alpha)*n, random crash schedule");
    println!();

    let mut rows = Vec::new();
    let mut inv_alpha = Vec::new();
    let mut le_msgs = Vec::new();
    let mut ag_msgs = Vec::new();
    for &alpha in &ALPHAS {
        let le = measure_le(N, alpha, AdversaryKind::Random(60), TRIALS, 0xE3);
        let ag = measure_agreement(N, alpha, 0.05, AdversaryKind::Random(20), TRIALS, 0xE3);
        inv_alpha.push(1.0 / alpha);
        le_msgs.push(le.msgs.mean);
        ag_msgs.push(ag.msgs.mean);
        rows.push(vec![
            format!("{alpha}"),
            fmt_count((1.0 - alpha) * f64::from(N)),
            fmt_count(le.msgs.mean),
            format!("{:.2}", le.success_rate),
            fmt_count(ag.msgs.mean),
            format!("{:.2}", ag.success_rate),
        ]);
    }
    print_table(
        &["alpha", "faults", "LE msgs", "LE ok", "agree msgs", "agree ok"],
        &rows,
    );

    let (le_exp, _) = fit_power_law(&inv_alpha, &le_msgs);
    let (ag_exp, _) = fit_power_law(&inv_alpha, &ag_msgs);
    println!();
    println!("fitted: LE messages ~ (1/alpha)^{le_exp:.2}   (paper: 2.5)");
    println!("fitted: agreement messages ~ (1/alpha)^{ag_exp:.2}   (paper: 1.5)");
    println!("shape check: LE exponent > agreement exponent, both > 1.");
}
