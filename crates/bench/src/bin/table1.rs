//! E1 — Table I: comparison with the best known agreement protocols.
//!
//! Reproduces the paper's Table I empirically: each row is one protocol
//! run in the same simulator at the same network size, at the maximum
//! resilience that row supports, under random crash schedules. The paper's
//! asymptotic columns are printed alongside the measured ones; the *shape*
//! to verify is the ordering — this paper's protocol uses the fewest
//! messages while tolerating the most faults, at the price of implicit
//! output and polylog rounds.
//!
//! Declares its grid as an [`ftc_lab`] campaign — `ftc lab run` can
//! execute, persist, and diff the same experiment.
//!
//! ```sh
//! cargo run --release -p ftc-bench --bin table1 -- [--jobs N] [--trials N] [--seed N] [--smoke]
//! ```

use ftc_bench::{fmt_count, print_table, ExpOpts};
use ftc_lab::{
    run_campaign, Adv, CampaignSpec, CellSpec, CheckAxis, CheckMetric, ExponentCheck, LabSubstrate,
    Workload,
};

/// Input density of the agreement rows: zeros at every id divisible by 7.
const SEVENTH: f64 = 1.0 / 7.0;

fn main() {
    let opts = ExpOpts::parse();
    let n = opts.pick(4096u32, 1024);
    let trials = opts.trials(10);
    let seed = opts.seed(0xE1);
    println!(
        "Table I reproduction — agreement protocols, n = {n}, {trials} trials each ({})",
        opts.banner()
    );
    println!("(crash schedule: uniformly random crash rounds over the protocol's run)");
    println!();

    let sizes = opts.pick(vec![2048u32, 8192, 32768], vec![1024, 2048]);
    let mut spec = CampaignSpec::new("table1")
        .cell(
            CellSpec::new(
                Workload::Flood {
                    faults: u64::from(n - 1) / 2,
                },
                n,
                0.5,
                seed ^ 0x1000,
                trials,
            )
            .label("flood"),
        )
        .cell(
            CellSpec::new(
                Workload::Gk {
                    faults: u64::from(n) / 2 - 1,
                },
                n,
                0.5,
                seed ^ 0x2000,
                trials,
            )
            .label("gk"),
        )
        .cell(
            CellSpec::new(
                Workload::Gossip {
                    faults: u64::from(n) / 2,
                },
                n,
                0.5,
                seed ^ 0x3000,
                trials,
            )
            .label("gossip"),
        );
    for &alpha in &[0.5, 0.125] {
        spec = spec.cell(
            CellSpec::new(
                Workload::Agree {
                    zeros: SEVENTH,
                    adv: Adv::Random(20),
                },
                n,
                alpha,
                seed ^ 0x4000,
                trials,
            )
            .label("ours"),
        );
    }
    spec = spec.cell(
        CellSpec::new(
            Workload::AgreeExplicit { zeros: SEVENTH },
            n,
            0.5,
            seed ^ 0x5000,
            trials,
        )
        .label("ours-explicit"),
    );
    // Scaling-fit series, one cell per size with the historical per-size
    // seed salts.
    for &sn in &sizes {
        spec = spec
            .cell(
                CellSpec::new(
                    Workload::Agree {
                        zeros: SEVENTH,
                        adv: Adv::Random(20),
                    },
                    sn,
                    0.5,
                    seed ^ 0x6000 ^ u64::from(sn),
                    trials,
                )
                .label("fit-ours"),
            )
            .cell(
                CellSpec::new(
                    Workload::Gk {
                        faults: u64::from(sn) / 4,
                    },
                    sn,
                    0.5,
                    seed ^ 0x7000 ^ u64::from(sn),
                    trials,
                )
                .label("fit-gk"),
            )
            .cell(
                CellSpec::new(
                    Workload::Gossip {
                        faults: u64::from(sn) / 4,
                    },
                    sn,
                    0.5,
                    seed ^ 0x8000 ^ u64::from(sn),
                    trials,
                )
                .label("fit-gossip"),
            );
    }
    spec = spec.check(ExponentCheck {
        name: "ours-msgs-sublinear".into(),
        series: "fit-ours".into(),
        metric: CheckMetric::Msgs,
        axis: CheckAxis::N,
        min: 0.1,
        max: 0.95,
    });
    let record = run_campaign(&spec, opts.jobs, LabSubstrate::Engine).expect("campaign");
    let series = |label: &str| {
        record
            .cells
            .iter()
            .filter(|c| c.cell.label == label)
            .collect::<Vec<_>>()
    };
    let measured = |cell: &ftc_lab::CellResult| {
        vec![
            format!("{:.0}", cell.rounds.mean),
            fmt_count(cell.msgs.mean),
            format!("{}/{}", cell.successes, trials),
        ]
    };

    let mut rows: Vec<Vec<String>> = Vec::new();
    rows.push(
        [
            vec![
                "FloodSet (folklore)".into(),
                "any f".into(),
                "KT0".into(),
                "O(f)".into(),
                "O(n^2)".into(),
            ],
            measured(series("flood")[0]),
        ]
        .concat(),
    );
    rows.push(
        [
            vec![
                "Gilbert-Kowalski'10 style [24]".into(),
                "n/2 - 1".into(),
                "KT1".into(),
                "O(log n)".into(),
                "O(n)".into(),
            ],
            measured(series("gk")[0]),
        ]
        .concat(),
    );
    rows.push(
        [
            vec![
                "Chlebus-Kowalski'09 style [36]".into(),
                "c*n (c<1)".into(),
                "KT0".into(),
                "O(log n)*".into(),
                "O(n log n)*".into(),
            ],
            measured(series("gossip")[0]),
        ]
        .concat(),
    );
    for (cell, &alpha) in series("ours").iter().zip(&[0.5, 0.125]) {
        rows.push(
            [
                vec![
                    format!("this paper (implicit, a={alpha})"),
                    "n - log^2 n".into(),
                    "KT0 anon".into(),
                    "O(log n/a)".into(),
                    "O(sqrt(n) log^1.5 n/a^1.5)".into(),
                ],
                measured(cell),
            ]
            .concat(),
        );
    }
    rows.push(
        [
            vec![
                "this paper (explicit, a=0.5)".into(),
                "n - log^2 n".into(),
                "KT0 anon".into(),
                "O(log n/a)".into(),
                "O(n log n/a)".into(),
            ],
            measured(series("ours-explicit")[0]),
        ]
        .concat(),
    );

    print_table(
        &[
            "protocol",
            "resilience",
            "model",
            "rounds (paper)",
            "messages (paper)",
            "rounds (meas.)",
            "msgs (meas.)",
            "success",
        ],
        &rows,
    );

    println!();
    println!("* bounds in expectation.  Shape checks at this n: (1) FloodSet pays");
    println!("Theta(n^2) msgs and Theta(f) rounds; (2) the GK10-style row is cheapest");
    println!("in raw messages here but needs KT1, non-anonymity and f < n/2 — the");
    println!("paper's rows tolerate n - log^2 n faults in an anonymous KT0 network;");
    println!("(3) higher resilience (a = 0.125) costs more messages (the 1/a^1.5");
    println!("factor). The asymptotic message ordering is the scaling fit below:");
    println!("this paper's agreement grows sublinearly, the linear-message rows at");
    println!("~n; extrapolating the fits puts the crossover in the millions of");
    println!("nodes at these constants.");
    println!();

    // --- scaling fit: measured growth exponents in n ---
    println!("scaling fit (messages vs n, alpha = 0.5, {trials} trials/point):");
    println!();
    let mut fit_rows: Vec<Vec<String>> = Vec::new();
    let xs: Vec<f64> = sizes.iter().map(|&sn| f64::from(sn)).collect();
    for (name, label) in &[
        ("this paper (implicit)", "fit-ours"),
        ("GK10-style", "fit-gk"),
        ("CK09-style gossip", "fit-gossip"),
    ] {
        let ys: Vec<f64> = series(label).iter().map(|c| c.msgs.mean).collect();
        let (exp, _) = ftc_sim::stats::fit_power_law(&xs, &ys);
        fit_rows.push(vec![
            name.to_string(),
            fmt_count(ys[0]),
            fmt_count(ys[ys.len() - 1]),
            format!("{exp:.2}"),
        ]);
    }
    let h_first = format!("msgs @ n={}", sizes[0]);
    let h_last = format!("msgs @ n={}", sizes[sizes.len() - 1]);
    print_table(
        &["protocol", &h_first, &h_last, "fitted n-exponent"],
        &fit_rows,
    );
    println!();
    println!("shape check: this paper's fitted exponent is decisively below 1");
    println!("(sublinear; polylog factors inflate the finite-size fit above the");
    println!("asymptotic 0.5), while the linear-message baselines sit at ~1.0.");
}
