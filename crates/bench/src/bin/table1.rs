//! E1 — Table I: comparison with the best known agreement protocols.
//!
//! Reproduces the paper's Table I empirically: each row is one protocol
//! run in the same simulator at the same network size, at the maximum
//! resilience that row supports, under random crash schedules. The paper's
//! asymptotic columns are printed alongside the measured ones; the *shape*
//! to verify is the ordering — this paper's protocol uses the fewest
//! messages while tolerating the most faults, at the price of implicit
//! output and polylog rounds.
//!
//! ```sh
//! cargo run --release -p ftc-bench --bin table1 -- [--jobs N] [--trials N] [--seed N] [--smoke]
//! ```

use ftc_baselines::prelude::*;
use ftc_bench::{average_trials, fmt_count, print_table, ExpOpts};
use ftc_core::prelude::*;
use ftc_sim::prelude::*;

fn main() {
    let opts = ExpOpts::parse();
    let n = opts.pick(4096u32, 1024);
    let trials = opts.trials(10);
    let seed = opts.seed(0xE1);
    let jobs = opts.jobs;
    println!(
        "Table I reproduction — agreement protocols, n = {n}, {trials} trials each ({})",
        opts.banner()
    );
    println!("(crash schedule: uniformly random crash rounds over the protocol's run)");
    println!();

    let mut rows: Vec<Vec<String>> = Vec::new();

    // --- folklore FloodSet: any f, O(n²) msgs, f+1 rounds, explicit ---
    {
        let f = (n - 1) as usize / 2; // run at n/2 for comparable fault load
        let r = average_trials(trials, seed ^ 0x1000, jobs, |s| {
            let cfg = SimConfig::new(n)
                .seed(s)
                .max_rounds(flood_round_budget(f as u32));
            let mut adv = RandomCrash::new(f, f as u32);
            let res = run(
                &cfg,
                |id| FloodAgreeNode::new(f as u32, id.0 % 7 != 0),
                &mut adv,
            );
            let o = FloodOutcome::evaluate(&res);
            (o.success, res.metrics.msgs_sent, res.metrics.rounds)
        });
        rows.push(vec![
            "FloodSet (folklore)".into(),
            "any f".into(),
            "KT0".into(),
            "O(f)".into(),
            "O(n^2)".into(),
            format!("{:.0}", r.rounds),
            fmt_count(r.msgs),
            format!("{}/{}", r.success, trials),
        ]);
    }

    // --- Gilbert–Kowalski SODA'10 style: f < n/2, O(n) msgs, KT1 ---
    {
        let f = (n as usize / 2) - 1;
        let r = average_trials(trials, seed ^ 0x2000, jobs, |s| {
            let cfg = SimConfig::new(n)
                .seed(s)
                .kt1(true)
                .max_rounds(gk_round_budget(n));
            let mut adv = RandomCrash::new(f, 20);
            let res = run(&cfg, |id| GkNode::new(id.0 % 7 != 0), &mut adv);
            let o = GkOutcome::evaluate(&res);
            (o.success, res.metrics.msgs_sent, res.metrics.rounds)
        });
        rows.push(vec![
            "Gilbert-Kowalski'10 style [24]".into(),
            "n/2 - 1".into(),
            "KT1".into(),
            "O(log n)".into(),
            "O(n)".into(),
            format!("{:.0}", r.rounds),
            fmt_count(r.msgs),
            format!("{}/{}", r.success, trials),
        ]);
    }

    // --- Chlebus–Kowalski SPAA'09 style gossip: linear f, O(n log n) ---
    {
        let f = n as usize / 2;
        let r = average_trials(trials, seed ^ 0x3000, jobs, |s| {
            let cfg = SimConfig::new(n).seed(s).max_rounds(gossip_round_budget(n));
            let mut adv = RandomCrash::new(f, 10);
            let res = run(&cfg, |id| GossipNode::new(n, id.0 % 7 != 0), &mut adv);
            let o = GossipOutcome::evaluate(&res);
            (o.success, res.metrics.msgs_sent, res.metrics.rounds)
        });
        rows.push(vec![
            "Chlebus-Kowalski'09 style [36]".into(),
            "c*n (c<1)".into(),
            "KT0".into(),
            "O(log n)*".into(),
            "O(n log n)*".into(),
            format!("{:.0}", r.rounds),
            fmt_count(r.msgs),
            format!("{}/{}", r.success, trials),
        ]);
    }

    // --- this paper, α = 1/2 (same fault load as the other rows) ---
    for &alpha in &[0.5, 0.125] {
        let params = Params::new(n, alpha).expect("valid");
        let f = params.max_faults();
        let r = average_trials(trials, seed ^ 0x4000, jobs, |s| {
            let cfg = SimConfig::new(n)
                .seed(s)
                .max_rounds(params.agreement_round_budget());
            let mut adv = RandomCrash::new(f, 20);
            let res = run(
                &cfg,
                |id| AgreeNode::new(params.clone(), id.0 % 7 != 0),
                &mut adv,
            );
            let o = AgreeOutcome::evaluate(&res);
            (o.success, res.metrics.msgs_sent, res.metrics.rounds)
        });
        rows.push(vec![
            format!("this paper (implicit, a={alpha})"),
            "n - log^2 n".into(),
            "KT0 anon".into(),
            "O(log n/a)".into(),
            "O(sqrt(n) log^1.5 n/a^1.5)".into(),
            format!("{:.0}", r.rounds),
            fmt_count(r.msgs),
            format!("{}/{}", r.success, trials),
        ]);
    }

    // --- this paper, explicit extension ---
    {
        let params = Params::new(n, 0.5).expect("valid");
        let f = params.max_faults();
        let r = average_trials(trials, seed ^ 0x5000, jobs, |s| {
            let cfg = SimConfig::new(n)
                .seed(s)
                .max_rounds(ExplicitAgreeNode::round_budget(&params));
            let mut adv = RandomCrash::new(f, 20);
            let res = run(
                &cfg,
                |id| ExplicitAgreeNode::new(params.clone(), id.0 % 7 != 0),
                &mut adv,
            );
            let o = ExplicitAgreeOutcome::evaluate(&res);
            (o.success, res.metrics.msgs_sent, res.metrics.rounds)
        });
        rows.push(vec![
            "this paper (explicit, a=0.5)".into(),
            "n - log^2 n".into(),
            "KT0 anon".into(),
            "O(log n/a)".into(),
            "O(n log n/a)".into(),
            format!("{:.0}", r.rounds),
            fmt_count(r.msgs),
            format!("{}/{}", r.success, trials),
        ]);
    }

    print_table(
        &[
            "protocol",
            "resilience",
            "model",
            "rounds (paper)",
            "messages (paper)",
            "rounds (meas.)",
            "msgs (meas.)",
            "success",
        ],
        &rows,
    );

    println!();
    println!("* bounds in expectation.  Shape checks at this n: (1) FloodSet pays");
    println!("Theta(n^2) msgs and Theta(f) rounds; (2) the GK10-style row is cheapest");
    println!("in raw messages here but needs KT1, non-anonymity and f < n/2 — the");
    println!("paper's rows tolerate n - log^2 n faults in an anonymous KT0 network;");
    println!("(3) higher resilience (a = 0.125) costs more messages (the 1/a^1.5");
    println!("factor). The asymptotic message ordering is the scaling fit below:");
    println!("this paper's agreement grows sublinearly, the linear-message rows at");
    println!("~n; extrapolating the fits puts the crossover in the millions of");
    println!("nodes at these constants.");
    println!();

    // --- scaling fit: measured growth exponents in n ---
    println!("scaling fit (messages vs n, alpha = 0.5, {trials} trials/point):");
    println!();
    let sizes = opts.pick(vec![2048u32, 8192, 32768], vec![1024, 2048]);
    let mut fit_rows: Vec<Vec<String>> = Vec::new();
    let mut series: Vec<(&str, Vec<f64>)> = Vec::new();

    let mut ours = Vec::new();
    for &n in &sizes {
        let params = Params::new(n, 0.5).expect("valid");
        let f = params.max_faults();
        let r = average_trials(trials, seed ^ 0x6000 ^ u64::from(n), jobs, |s| {
            let cfg = SimConfig::new(n)
                .seed(s)
                .max_rounds(params.agreement_round_budget());
            let mut adv = RandomCrash::new(f, 20);
            let res = run(
                &cfg,
                |id| AgreeNode::new(params.clone(), id.0 % 7 != 0),
                &mut adv,
            );
            (
                AgreeOutcome::evaluate(&res).success,
                res.metrics.msgs_sent,
                res.metrics.rounds,
            )
        });
        ours.push(r.msgs);
    }
    series.push(("this paper (implicit)", ours));

    let mut gk = Vec::new();
    for &n in &sizes {
        let r = average_trials(trials, seed ^ 0x7000 ^ u64::from(n), jobs, |s| {
            let cfg = SimConfig::new(n)
                .seed(s)
                .kt1(true)
                .max_rounds(gk_round_budget(n));
            let mut adv = RandomCrash::new(n as usize / 4, 20);
            let res = run(&cfg, |id| GkNode::new(id.0 % 7 != 0), &mut adv);
            (
                GkOutcome::evaluate(&res).success,
                res.metrics.msgs_sent,
                res.metrics.rounds,
            )
        });
        gk.push(r.msgs);
    }
    series.push(("GK10-style", gk));

    let mut gos = Vec::new();
    for &n in &sizes {
        let r = average_trials(trials, seed ^ 0x8000 ^ u64::from(n), jobs, |s| {
            let cfg = SimConfig::new(n).seed(s).max_rounds(gossip_round_budget(n));
            let mut adv = RandomCrash::new(n as usize / 4, 10);
            let res = run(&cfg, |id| GossipNode::new(n, id.0 % 7 != 0), &mut adv);
            (
                GossipOutcome::evaluate(&res).success,
                res.metrics.msgs_sent,
                res.metrics.rounds,
            )
        });
        gos.push(r.msgs);
    }
    series.push(("CK09-style gossip", gos));

    let xs: Vec<f64> = sizes.iter().map(|&n| f64::from(n)).collect();
    for (name, ys) in &series {
        let (exp, _) = ftc_sim::stats::fit_power_law(&xs, ys);
        fit_rows.push(vec![
            name.to_string(),
            fmt_count(ys[0]),
            fmt_count(ys[ys.len() - 1]),
            format!("{exp:.2}"),
        ]);
    }
    let h_first = format!("msgs @ n={}", sizes[0]);
    let h_last = format!("msgs @ n={}", sizes[sizes.len() - 1]);
    print_table(
        &["protocol", &h_first, &h_last, "fitted n-exponent"],
        &fit_rows,
    );
    println!();
    println!("shape check: this paper's fitted exponent is decisively below 1");
    println!("(sublinear; polylog factors inflate the finite-size fit above the");
    println!("asymptotic 0.5), while the linear-message baselines sit at ~1.0.");
}
