//! E13 (extension) — robustness to incomplete topologies
//! (towards the paper's open question 2: general graphs).
//!
//! The protocols are stated for complete networks, but their referee
//! redundancy (Lemma 3: every candidate pair shares *many* referees in
//! expectation) buys real slack: here we kill each edge of the complete
//! graph independently with probability `p` — messages across dead edges
//! silently vanish — and measure how far `p` can rise before the
//! guarantees crumble, with crash faults still active on top.
//!
//! Declares its grid as an [`ftc_lab`] campaign — `ftc lab run` can
//! execute, persist, and diff the same experiment.
//!
//! ```sh
//! cargo run --release -p ftc-bench --bin fig_edge_failures -- [--jobs N] [--trials N] [--seed N] [--smoke]
//! ```

use ftc_bench::{fmt_count, print_table, ExpOpts};
use ftc_core::params::Params;
use ftc_lab::{run_campaign, CampaignSpec, CellSpec, LabSubstrate, Workload};

const ALPHA: f64 = 0.5;
const PS: [f64; 7] = [0.0, 0.05, 0.2, 0.4, 0.6, 0.8, 0.9];

fn main() {
    let opts = ExpOpts::parse();
    let n = opts.pick(2048u32, 256);
    let trials = opts.trials(16);
    let params = Params::new(n, ALPHA).expect("valid");
    let f = params.max_faults();
    println!(
        "E13: edge failures on top of {f} crash faults, n = {n}, alpha = {ALPHA}, {trials} trials ({})",
        opts.banner()
    );
    println!();

    let mut spec = CampaignSpec::new("fig-edge-failures");
    for &p in &PS {
        spec = spec
            .cell(
                CellSpec::new(Workload::LeEdge { p }, n, ALPHA, opts.seed(0xE13), trials)
                    .label("le"),
            )
            .cell(
                CellSpec::new(
                    Workload::AgreeEdge { p },
                    n,
                    ALPHA,
                    opts.seed(0x13E),
                    trials,
                )
                .label("agree"),
            );
    }
    let record = run_campaign(&spec, opts.jobs, LabSubstrate::Engine).expect("campaign");
    let series = |label: &str| {
        record
            .cells
            .iter()
            .filter(|c| c.cell.label == label)
            .collect::<Vec<_>>()
    };

    let mut rows = Vec::new();
    for ((le, ag), &p) in series("le").iter().zip(series("agree")).zip(&PS) {
        let lost = le.extra("lost_edges").map_or(0.0, |s| s.mean);
        rows.push(vec![
            format!("{p:.2}"),
            format!("{}/{trials}", le.successes),
            format!("{}/{trials}", ag.successes),
            fmt_count(lost),
        ]);
    }
    print_table(
        &[
            "edge failure p",
            "LE success",
            "agree success",
            "LE msgs lost/trial",
        ],
        &rows,
    );

    println!();
    println!("shape check: candidate pairs share ~|R|^2/n non-faulty referees and");
    println!("each relay path survives with prob (1-p)^2, so the protocols absorb");
    println!("remarkably heavy edge loss and only crumble when (1-p)^2 |R|^2/n");
    println!("drops toward zero (p >~ 0.8 here). A full general-graph treatment");
    println!("is the paper's open question 2.");
}
