//! E13 (extension) — robustness to incomplete topologies
//! (towards the paper's open question 2: general graphs).
//!
//! The protocols are stated for complete networks, but their referee
//! redundancy (Lemma 3: every candidate pair shares *many* referees in
//! expectation) buys real slack: here we kill each edge of the complete
//! graph independently with probability `p` — messages across dead edges
//! silently vanish — and measure how far `p` can rise before the
//! guarantees crumble, with crash faults still active on top.
//!
//! ```sh
//! cargo run --release -p ftc-bench --bin fig_edge_failures
//! ```

use ftc_bench::{fmt_count, print_table};
use ftc_core::agreement::{AgreeNode, AgreeOutcome};
use ftc_core::leader_election::{LeNode, LeOutcome};
use ftc_core::params::Params;
use ftc_sim::prelude::*;

const N: u32 = 2048;
const ALPHA: f64 = 0.5;
const TRIALS: u64 = 16;

fn main() {
    let params = Params::new(N, ALPHA).expect("valid");
    let f = params.max_faults();
    println!(
        "E13: edge failures on top of {f} crash faults, n = {N}, alpha = {ALPHA}, {TRIALS} trials"
    );
    println!();

    let mut rows = Vec::new();
    for &p in &[0.0, 0.05, 0.2, 0.4, 0.6, 0.8, 0.9] {
        let mut le_ok = 0;
        let mut ag_ok = 0;
        let mut lost = 0u64;
        for t in 0..TRIALS {
            let mut cfg = SimConfig::new(N)
                .seed(0xE13 + t)
                .max_rounds(params.le_round_budget());
            if p > 0.0 {
                cfg = cfg.edge_failure_prob(p);
            }
            let mut adv = RandomCrash::new(f, 40);
            let r = run(&cfg, |_| LeNode::new(params.clone()), &mut adv);
            if LeOutcome::evaluate(&r).success {
                le_ok += 1;
            }
            lost += r.metrics.msgs_lost_edges;

            let mut cfg = SimConfig::new(N)
                .seed(0x13E + t)
                .max_rounds(params.agreement_round_budget());
            if p > 0.0 {
                cfg = cfg.edge_failure_prob(p);
            }
            let mut adv = RandomCrash::new(f, 20);
            let r = run(&cfg, |id| AgreeNode::new(params.clone(), id.0 % 8 == 0), &mut adv);
            if AgreeOutcome::evaluate(&r).success {
                ag_ok += 1;
            }
        }
        rows.push(vec![
            format!("{p:.2}"),
            format!("{le_ok}/{TRIALS}"),
            format!("{ag_ok}/{TRIALS}"),
            fmt_count(lost as f64 / TRIALS as f64),
        ]);
    }
    print_table(
        &["edge failure p", "LE success", "agree success", "LE msgs lost/trial"],
        &rows,
    );

    println!();
    println!("shape check: candidate pairs share ~|R|^2/n non-faulty referees and");
    println!("each relay path survives with prob (1-p)^2, so the protocols absorb");
    println!("remarkably heavy edge loss and only crumble when (1-p)^2 |R|^2/n");
    println!("drops toward zero (p >~ 0.8 here). A full general-graph treatment");
    println!("is the paper's open question 2.");
}
